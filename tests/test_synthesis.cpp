// Tests for the automatic composition synthesizer (the paper's future-work
// tool): domain profiling, candidate generation/evaluation, operator
// allocation (multiplier and DMA sizing) and end-to-end correctness of the
// winning composition.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/resource_model.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesis.hpp"

namespace cgra {
namespace {

struct LoweredDomain {
  std::vector<apps::Workload> workloads;
  std::vector<Cdfg> graphs;
  std::vector<DomainKernel> kernels;
};

LoweredDomain makeDomain(std::vector<apps::Workload> ws) {
  LoweredDomain d;
  d.workloads = std::move(ws);
  d.graphs.reserve(d.workloads.size());
  for (const apps::Workload& w : d.workloads)
    d.graphs.push_back(kir::lowerToCdfg(w.fn).graph);
  for (std::size_t i = 0; i < d.graphs.size(); ++i)
    d.kernels.push_back(DomainKernel{&d.graphs[i], 1.0, d.workloads[i].name});
  return d;
}

TEST(DomainProfile, DetectsMultiplierAndMemoryPressure) {
  const LoweredDomain mulHeavy =
      makeDomain({apps::makeMatMul(3, 1), apps::makeDotProduct(8, 2)});
  const LoweredDomain ctrlHeavy = makeDomain({apps::makeGcd(24, 36)});

  const DomainProfile pm = profileDomain(mulHeavy.kernels);
  const DomainProfile pc = profileDomain(ctrlHeavy.kernels);
  EXPECT_GT(pm.mulFraction, pc.mulFraction);
  EXPECT_GT(pm.memFraction, 0.1) << "matmul/dot are DMA heavy";
  EXPECT_EQ(pc.memFraction, 0.0) << "gcd never touches the heap";
  EXPECT_GE(pm.suggestedPEs, 2u);
  EXPECT_GT(pm.opHistogram[static_cast<unsigned>(Op::IMUL)], 0u);
  EXPECT_EQ(pc.opHistogram[static_cast<unsigned>(Op::IMUL)], 0u);
}

TEST(Synthesis, ProducesFeasibleRankedCandidates) {
  const LoweredDomain d = makeDomain(
      {apps::makeAdpcm(8, 1), apps::makeFir(6, 3, 2), apps::makeGcd(30, 12)});
  const SynthesisReport report = synthesizeComposition(d.kernels);

  ASSERT_FALSE(report.candidates.empty());
  EXPECT_TRUE(report.candidates.front().feasible);
  // Ranking is ascending by score among feasible candidates.
  for (std::size_t i = 1; i < report.candidates.size(); ++i) {
    if (!report.candidates[i].feasible) continue;
    EXPECT_LE(report.candidates[i - 1].score, report.candidates[i].score);
  }
  // The winner is a valid composition.
  EXPECT_NO_THROW(report.best.validate());
  EXPECT_GE(report.best.numPEs(), 4u);
  EXPECT_LE(report.best.dmaPEs().size(), 4u);
}

TEST(Synthesis, WinnerRunsEveryDomainKernelCorrectly) {
  auto d = makeDomain({apps::makeEwmaClip(8, 3), apps::makeBubbleSort(6, 4)});
  const SynthesisReport report = synthesizeComposition(d.kernels);

  for (std::size_t i = 0; i < d.workloads.size(); ++i) {
    const apps::Workload& w = d.workloads[i];
    HostMemory goldenHeap = w.heap;
    kir::Interpreter interp;
    const auto golden = interp.run(w.fn, w.initialLocals, goldenHeap);

    const ScheduleReport r = Scheduler(report.best).schedule(ScheduleRequest(d.graphs[i])).orThrow();
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : r.schedule.liveIns)
      liveIns[lb.var] = w.initialLocals[lb.var];
    HostMemory heap = w.heap;
    const SimResult sr = Simulator(report.best, r.schedule).run(liveIns, heap);
    EXPECT_TRUE(heap == goldenHeap) << w.name;
    for (const auto& [var, value] : sr.liveOuts)
      EXPECT_EQ(value, golden.locals[var]) << w.name;
  }
}

TEST(Synthesis, MultiplierAllocationFollowsDomain) {
  // A domain without multiplications should get few multiplier PEs; a
  // multiply-heavy one should get more.
  auto noMul = makeDomain({apps::makeGcd(100, 35), apps::makeEwmaClip(8, 1)});
  auto mulHeavy = makeDomain({apps::makeMatMul(4, 2)});
  const SynthesisReport a = synthesizeComposition(noMul.kernels);
  const SynthesisReport b = synthesizeComposition(mulHeavy.kernels);
  const double fracA =
      static_cast<double>(a.best.pesSupporting(Op::IMUL).size()) /
      a.best.numPEs();
  const double fracB =
      static_cast<double>(b.best.pesSupporting(Op::IMUL).size()) /
      b.best.numPEs();
  EXPECT_LT(fracA, 0.6) << "control domain wastes no multipliers";
  EXPECT_GE(fracB, fracA);
}

TEST(Synthesis, AreaWeightSteersTowardSmallerArrays) {
  auto d = makeDomain({apps::makeDotProduct(8, 1)});
  SynthesisOptions cheap;
  cheap.areaWeight = 0.0;
  SynthesisOptions frugal;
  frugal.areaWeight = 5.0;
  const SynthesisReport rich = synthesizeComposition(d.kernels, cheap);
  const SynthesisReport lean = synthesizeComposition(d.kernels, frugal);
  const ResourceEstimate richEst = estimateResources(rich.best);
  const ResourceEstimate leanEst = estimateResources(lean.best);
  EXPECT_LE(leanEst.lutLogic, richEst.lutLogic);
}

TEST(Synthesis, WeightsBiasTheChoice) {
  // Same kernels, but one weighted 100x: the winner must map it well. This
  // is mostly a smoke test that weights flow through scoring.
  auto d = makeDomain({apps::makeGcd(60, 24), apps::makeMatMul(3, 7)});
  d.kernels[1].weight = 100.0;
  const SynthesisReport report = synthesizeComposition(d.kernels);
  EXPECT_TRUE(report.candidates.front().feasible);
  EXPECT_GT(report.best.pesSupporting(Op::IMUL).size(), 0u);
}

TEST(Synthesis, EmptyDomainRejected) {
  EXPECT_THROW(synthesizeComposition({}), Error);
}

}  // namespace
}  // namespace cgra
