// Unit tests for the support utilities: bit vectors, bit-field packing,
// DOT writer, deterministic RNG and table formatting.
#include <gtest/gtest.h>

#include "support/bitvector.hpp"
#include "support/dot.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace cgra {
namespace {

TEST(BitVector, SetGetAcrossWordBoundary) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  for (std::size_t i = 0; i < 130; i += 7) bv.set(i, true);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_EQ(bv.get(i), i % 7 == 0);
  EXPECT_EQ(bv.popcount(), (130 + 6) / 7);
}

TEST(BitVector, PushBackGrows) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.pushBack(i % 3 == 0);
  EXPECT_EQ(bv.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(bv.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitVector, FilledConstructorTrimsTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.popcount(), 70u);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(10), b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  a.set(3, true);
  EXPECT_FALSE(a == c);
}

TEST(BitPacker, RoundTripMixedFields) {
  BitPacker bp;
  bp.write(0x2A, 7);
  bp.writeBool(true);
  bp.write(0xDEADBEEFull, 32);
  bp.write(0, 1);
  bp.write(0x1FFFF, 17);

  BitReader br(bp.bits());
  EXPECT_EQ(br.read(7), 0x2Au);
  EXPECT_TRUE(br.readBool());
  EXPECT_EQ(br.read(32), 0xDEADBEEFull);
  EXPECT_EQ(br.read(1), 0u);
  EXPECT_EQ(br.read(17), 0x1FFFFu);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitPacker, RejectsOverwideValue) {
  BitPacker bp;
  EXPECT_THROW(bp.write(16, 4), InternalError);
}

TEST(BitReader, ThrowsOnExhaustion) {
  BitPacker bp;
  bp.write(3, 2);
  BitReader br(bp.bits());
  br.read(2);
  EXPECT_THROW(br.read(1), InternalError);
}

class BitRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitRoundTrip, RandomFieldSequences) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitPacker bp;
  for (int i = 0; i < 64; ++i) {
    const unsigned width = static_cast<unsigned>(rng.range(1, 64));
    const std::uint64_t value =
        width == 64 ? rng.next() : rng.next() & ((1ull << width) - 1);
    fields.emplace_back(value, width);
    bp.write(value, width);
  }
  BitReader br(bp.bits());
  for (const auto& [value, width] : fields) EXPECT_EQ(br.read(width), value);
  EXPECT_TRUE(br.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

TEST(BitsFor, Boundaries) {
  EXPECT_EQ(bitsFor(1), 1u);
  EXPECT_EQ(bitsFor(2), 1u);
  EXPECT_EQ(bitsFor(3), 2u);
  EXPECT_EQ(bitsFor(4), 2u);
  EXPECT_EQ(bitsFor(5), 3u);
  EXPECT_EQ(bitsFor(256), 8u);
  EXPECT_EQ(bitsFor(257), 9u);
}

TEST(DotWriter, EscapesQuotesAndRendersEdges) {
  DotWriter dot("g");
  dot.addNode("a", "say \"hi\"");
  dot.addNode("b", "plain", {{"shape", "box"}});
  dot.addEdge("a", "b", {{"label", "1"}});
  const std::string out = dot.str();
  EXPECT_NE(out.find("say \\\"hi\\\""), std::string::npos);
  EXPECT_NE(out.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(out.find("shape=\"box\""), std::string::npos);
  EXPECT_EQ(out.find("digraph"), 0u);
}

TEST(DotWriter, ClustersNest) {
  DotWriter dot("g");
  dot.beginCluster("c1", "outer");
  dot.addNode("x", "x");
  dot.endCluster();
  const std::string out = dot.str();
  EXPECT_NE(out.find("subgraph \"cluster_c1\""), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= v == -2;
    sawHi |= v == 2;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Format, KiloFormatting) {
  EXPECT_EQ(fmtKilo(152300), "152.3k");
  EXPECT_EQ(fmt(7.345, 1), "7.3");
}

}  // namespace
}  // namespace cgra
