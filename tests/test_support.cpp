// Unit tests for the support utilities: bit vectors, bit-field packing,
// DOT writer, deterministic RNG, table formatting, capped cycle-occupancy
// maps, the worker pool and the log2-bucket latency histogram.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "support/bitvector.hpp"
#include "support/dot.hpp"
#include "support/metrics_registry.hpp"
#include "support/occupancy.hpp"
#include "support/rng.hpp"
#include "support/small_vector.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace cgra {
namespace {

TEST(BitVector, SetGetAcrossWordBoundary) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  for (std::size_t i = 0; i < 130; i += 7) bv.set(i, true);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_EQ(bv.get(i), i % 7 == 0);
  EXPECT_EQ(bv.popcount(), (130 + 6) / 7);
}

TEST(BitVector, PushBackGrows) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.pushBack(i % 3 == 0);
  EXPECT_EQ(bv.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(bv.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitVector, FilledConstructorTrimsTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.popcount(), 70u);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(10), b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  a.set(3, true);
  EXPECT_FALSE(a == c);
}

TEST(BitPacker, RoundTripMixedFields) {
  BitPacker bp;
  bp.write(0x2A, 7);
  bp.writeBool(true);
  bp.write(0xDEADBEEFull, 32);
  bp.write(0, 1);
  bp.write(0x1FFFF, 17);

  BitReader br(bp.bits());
  EXPECT_EQ(br.read(7), 0x2Au);
  EXPECT_TRUE(br.readBool());
  EXPECT_EQ(br.read(32), 0xDEADBEEFull);
  EXPECT_EQ(br.read(1), 0u);
  EXPECT_EQ(br.read(17), 0x1FFFFu);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitPacker, RejectsOverwideValue) {
  BitPacker bp;
  EXPECT_THROW(bp.write(16, 4), InternalError);
}

TEST(BitReader, ThrowsOnExhaustion) {
  BitPacker bp;
  bp.write(3, 2);
  BitReader br(bp.bits());
  br.read(2);
  EXPECT_THROW(br.read(1), InternalError);
}

class BitRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitRoundTrip, RandomFieldSequences) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitPacker bp;
  for (int i = 0; i < 64; ++i) {
    const unsigned width = static_cast<unsigned>(rng.range(1, 64));
    const std::uint64_t value =
        width == 64 ? rng.next() : rng.next() & ((1ull << width) - 1);
    fields.emplace_back(value, width);
    bp.write(value, width);
  }
  BitReader br(bp.bits());
  for (const auto& [value, width] : fields) EXPECT_EQ(br.read(width), value);
  EXPECT_TRUE(br.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

TEST(BitsFor, Boundaries) {
  EXPECT_EQ(bitsFor(1), 1u);
  EXPECT_EQ(bitsFor(2), 1u);
  EXPECT_EQ(bitsFor(3), 2u);
  EXPECT_EQ(bitsFor(4), 2u);
  EXPECT_EQ(bitsFor(5), 3u);
  EXPECT_EQ(bitsFor(256), 8u);
  EXPECT_EQ(bitsFor(257), 9u);
}

TEST(DotWriter, EscapesQuotesAndRendersEdges) {
  DotWriter dot("g");
  dot.addNode("a", "say \"hi\"");
  dot.addNode("b", "plain", {{"shape", "box"}});
  dot.addEdge("a", "b", {{"label", "1"}});
  const std::string out = dot.str();
  EXPECT_NE(out.find("say \\\"hi\\\""), std::string::npos);
  EXPECT_NE(out.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(out.find("shape=\"box\""), std::string::npos);
  EXPECT_EQ(out.find("digraph"), 0u);
}

TEST(DotWriter, ClustersNest) {
  DotWriter dot("g");
  dot.beginCluster("c1", "outer");
  dot.addNode("x", "x");
  dot.endCluster();
  const std::string out = dot.str();
  EXPECT_NE(out.find("subgraph \"cluster_c1\""), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= v == -2;
    sawHi |= v == 2;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Format, KiloFormatting) {
  EXPECT_EQ(fmtKilo(152300), "152.3k");
  EXPECT_EQ(fmt(7.345, 1), "7.3");
}

TEST(CycleOccupancy, MarkAndTestWithinCeiling) {
  CycleOccupancy occ(100);
  EXPECT_FALSE(occ.test(5));
  occ.mark(5, 3);
  EXPECT_TRUE(occ.test(5));
  EXPECT_TRUE(occ.test(7));
  EXPECT_FALSE(occ.test(8));
  EXPECT_TRUE(occ.anyBusy(4, 2));
  EXPECT_FALSE(occ.anyBusy(8, 10));
}

TEST(CycleOccupancy, ProbesBeyondCeilingReportBusy) {
  CycleOccupancy occ(10);
  // A cycle that can never exist is never free — no resize-on-probe.
  EXPECT_TRUE(occ.test(10));
  EXPECT_TRUE(occ.test(1u << 30));
  EXPECT_TRUE(occ.anyBusy(9, 2));    // window straddles the ceiling
  EXPECT_TRUE(occ.anyBusy(100, 1));
}

TEST(CycleOccupancy, FirstFreeStopsAtCeiling) {
  CycleOccupancy occ(4);
  occ.mark(0, 4);  // fully saturated
  EXPECT_EQ(occ.firstFreeAtOrAfter(0), std::nullopt);
  CycleOccupancy half(4);
  half.mark(0, 2);
  EXPECT_EQ(half.firstFreeAtOrAfter(0), std::optional<unsigned>(2));
  EXPECT_EQ(half.firstFreeAtOrAfter(4), std::nullopt);
}

TEST(CycleOccupancy, DownwardWindowScanTerminatesAtZero) {
  // The underflow regression: a downward scan from a low cycle with every
  // candidate busy must return nullopt, not wrap past 0.
  CycleOccupancy occ(8);
  occ.mark(0, 8);
  EXPECT_EQ(occ.lastFreeWindowAtOrBefore(3, 2), std::nullopt);
  CycleOccupancy open(8);
  EXPECT_EQ(open.lastFreeWindowAtOrBefore(3, 2), std::optional<unsigned>(3));
  open.mark(3, 2);
  EXPECT_EQ(open.lastFreeWindowAtOrBefore(3, 2), std::optional<unsigned>(1));
  open.mark(0, 3);
  EXPECT_EQ(open.lastFreeWindowAtOrBefore(3, 2), std::nullopt);
}

TEST(CycleSlots, SharedValueAndCeiling) {
  CycleSlots<unsigned> slots(10);
  EXPECT_TRUE(slots.freeFor(4, 7u));
  slots.claim(4, 7u);
  EXPECT_TRUE(slots.freeFor(4, 7u));    // same value may share the cycle
  EXPECT_FALSE(slots.freeFor(4, 8u));   // a different one may not
  EXPECT_FALSE(slots.freeFor(10, 7u));  // beyond the ceiling: never usable
  ASSERT_NE(slots.get(4), nullptr);
  EXPECT_EQ(*slots.get(4), 7u);
  EXPECT_EQ(slots.get(5), nullptr);
}

TEST(SmallVector, InlineThenSpillPreservesContents) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);  // still inline
  v.push_back(4);           // spills to the heap
  v.push_back(5);
  EXPECT_EQ(v.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(v.back(), 5);
}

TEST(SmallVector, PopBackAndClearAcrossSpillBoundary) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  v.pop_back();
  v.pop_back();
  v.pop_back();  // back below the inline capacity, stays spilled
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 1);
  v.push_back(7);
  EXPECT_EQ(v.back(), 7);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(9);  // inline again after clear
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 9);
}

TEST(SmallVector, CopyAssignIsDeep) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 3; ++i) a.push_back(i);
  SmallVector<int, 2> b;
  b = a;
  a.pop_back();
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.back(), 2);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) pool.submit([&sum, i] { sum += i; });
  pool.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ParallelFor, CoversEachIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(64);
    parallelFor(hits.size(), threads,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.maxUs(), 0u);
  EXPECT_EQ(h.meanUs(), 0.0);
  EXPECT_EQ(h.quantileUs(0.5), 0.0);
  EXPECT_EQ(h.quantileUs(0.99), 0.0);
}

TEST(LatencyHistogram, ExactStatsAndMonotoneQuantiles) {
  LatencyHistogram h;
  for (std::uint64_t us = 1; us <= 1000; ++us) h.record(us);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.maxUs(), 1000u);
  EXPECT_DOUBLE_EQ(h.meanUs(), 500.5);
  // Bucketed quantiles are estimates; for a uniform 1..1000 ramp they must
  // land within one power-of-two bucket of the true value and be monotone.
  const double p50 = h.quantileUs(0.50);
  const double p90 = h.quantileUs(0.90);
  const double p99 = h.quantileUs(0.99);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, 1000.0) << "quantiles are capped at the observed max";
  EXPECT_DOUBLE_EQ(h.quantileUs(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantileUs(1.0), 1000.0);
}

TEST(LatencyHistogram, SkewedTailSeparatesP50FromP99) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(100);    // fast bulk
  h.record(1u << 20);                            // one ~1 s straggler
  const double p50 = h.quantileUs(0.50);
  const double p99 = h.quantileUs(0.99);
  EXPECT_LT(p50, 200.0);
  EXPECT_GT(p99, 1000.0) << "the tail must be visible at p99";
  EXPECT_EQ(h.maxUs(), 1u << 20);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram both;
  for (std::uint64_t us : {3u, 17u, 200u}) {
    a.record(us);
    both.record(us);
  }
  for (std::uint64_t us : {9000u, 120u}) {
    b.record(us);
    both.record(us);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.maxUs(), both.maxUs());
  EXPECT_DOUBLE_EQ(a.meanUs(), both.meanUs());
  EXPECT_DOUBLE_EQ(a.quantileUs(0.5), both.quantileUs(0.5));
  EXPECT_DOUBLE_EQ(a.quantileUs(0.99), both.quantileUs(0.99));
}

TEST(LatencyHistogram, HugeSamplesClampIntoTheLastBucket) {
  LatencyHistogram h;
  h.record(~0ull);  // must not index out of bounds
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.maxUs(), ~0ull);
  EXPECT_GT(h.quantileUs(0.5), 0.0);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentityBothWays) {
  LatencyHistogram h;
  LatencyHistogram empty;
  for (std::uint64_t us : {5u, 77u, 1900u}) h.record(us);
  LatencyHistogram merged = h;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), h.count());
  EXPECT_EQ(merged.maxUs(), h.maxUs());
  EXPECT_DOUBLE_EQ(merged.quantileUs(0.99), h.quantileUs(0.99));
  empty.merge(h);
  EXPECT_EQ(empty.count(), h.count());
  EXPECT_DOUBLE_EQ(empty.meanUs(), h.meanUs());
}

TEST(LatencyHistogram, SingleBucketQuantilesInterpolateWithinSpan) {
  // All samples land in bucket 5 ([32, 63] µs): every quantile must stay
  // inside that bucket's span and never exceed the observed max.
  LatencyHistogram h;
  for (std::uint64_t us = 32; us <= 60; ++us) h.record(us);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantileUs(q);
    EXPECT_GE(v, 32.0) << "q=" << q;
    EXPECT_LE(v, 60.0) << "q=" << q;
  }
  EXPECT_LE(h.quantileUs(0.5), h.quantileUs(0.99));
}

TEST(LatencyHistogram, QuantileClampsOutOfRangeArguments) {
  LatencyHistogram h;
  h.record(10);
  h.record(40);
  EXPECT_DOUBLE_EQ(h.quantileUs(-1.0), h.quantileUs(0.0));
  EXPECT_DOUBLE_EQ(h.quantileUs(2.0), h.quantileUs(1.0));
}

TEST(LatencyHistogram, SaturatingSumSurvivesHugeSampleMerges) {
  // Two near-max samples overflow the 64-bit sum (wrapping, by design —
  // unsigned arithmetic); count, max, and quantiles must stay sane.
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(~0ull);
  b.record(~0ull - 1);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.maxUs(), ~0ull);
  EXPECT_EQ(a.bucket(Log2Histogram::kBuckets - 1), 2u);
  EXPECT_GT(a.quantileUs(0.5), 0.0);
}

TEST(AtomicHistogram, SnapshotMatchesSingleThreadedRecording) {
  AtomicHistogram ah;
  LatencyHistogram expect;
  for (std::uint64_t us : {1u, 2u, 3u, 100u, 5000u, 5000u}) {
    ah.record(us);
    expect.record(us);
  }
  const Log2Histogram snap = ah.snapshot();
  EXPECT_EQ(snap.count(), expect.count());
  EXPECT_EQ(snap.maxUs(), expect.maxUs());
  EXPECT_EQ(snap.sumUs(), expect.sumUs());
  EXPECT_DOUBLE_EQ(snap.quantileUs(0.5), expect.quantileUs(0.5));
}

TEST(AtomicHistogram, ConcurrentRecordLosesNothing) {
  // 8 threads × 10k records; also snapshots mid-flight so TSan exercises
  // the record/snapshot race the relaxed-atomic contract allows.
  AtomicHistogram ah;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&ah, &go, t] {
      while (!go.load()) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        ah.record((i % 64) + static_cast<std::uint64_t>(t));
    });
  go.store(true);
  const Log2Histogram racy = ah.snapshot();  // valid but possibly partial
  EXPECT_LE(racy.count(), kThreads * kPerThread);
  for (std::thread& t : threads) t.join();
  const Log2Histogram final = ah.snapshot();
  EXPECT_EQ(final.count(), kThreads * kPerThread);
  EXPECT_GE(final.maxUs(), 63u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("cgra_x_total", "first help wins");
  Counter& b = reg.counter("cgra_x_total", "ignored on re-registration");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  AtomicHistogram& h1 = reg.histogram("cgra_y_us", "h");
  AtomicHistogram& h2 = reg.histogram("cgra_y_us", "h");
  EXPECT_EQ(&h1, &h2);
  Gauge& g1 = reg.gauge("cgra_z", "g");
  Gauge& g2 = reg.gauge("cgra_z", "g");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistry, PrometheusExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("cgra_requests_total", "request lines read").inc(42);
  reg.gauge("cgra_queue_depth", "admitted requests in flight").set(-1);
  AtomicHistogram& h = reg.histogram("cgra_latency_us", "service latency");
  h.record(0);   // bucket 0, le="1"
  h.record(5);   // bucket 2, le="7"
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("# HELP cgra_requests_total request lines read\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cgra_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cgra_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("cgra_queue_depth -1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cgra_latency_us histogram\n"),
            std::string::npos);
  // Cumulative buckets up to the top populated one, then +Inf, sum, count.
  EXPECT_NE(text.find("cgra_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_latency_us_bucket{le=\"7\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_latency_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_latency_us_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("cgra_latency_us_count 2\n"), std::string::npos);
  // Trailing empty buckets are elided: nothing past le="7" but +Inf.
  EXPECT_EQ(text.find("cgra_latency_us_bucket{le=\"15\"}"),
            std::string::npos);
}

TEST(MetricsRegistry, EmptyHistogramExposesOnlyInfBucket) {
  MetricsRegistry reg;
  reg.histogram("cgra_idle_us", "never recorded");
  const std::string text = reg.renderPrometheus();
  EXPECT_NE(text.find("cgra_idle_us_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_idle_us_count 0\n"), std::string::npos);
}

}  // namespace
}  // namespace cgra
