// Tests for the design-space-exploration subsystem (DESIGN.md §14):
// space validation/sampling/repair, operator well-formedness, Pareto
// semantics, evaluator memoization, and the Explorer's acceptance
// properties — byte-identical stable reports across thread counts and
// repeats for a fixed seed, every front member non-dominated, exact
// budget accounting, and warm artifact-store re-runs with hits > 0 and
// an identical front.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "explore/evaluator.hpp"
#include "explore/explorer.hpp"
#include "explore/operators.hpp"
#include "explore/space.hpp"
#include "kir/lower_cdfg.hpp"
#include "support/rng.hpp"

namespace cgra::explore {
namespace {

namespace sfs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  sfs::path path;
  explicit TempDir(const std::string& tag) {
    path = sfs::temp_directory_path() /
           ("cgra_explore_test_" + tag + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    sfs::remove_all(path);
    sfs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    sfs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Small two-kernel workload shared by the search tests; graphs are owned
/// here so ExploreKernel pointers stay valid for the Explorer's lifetime.
struct Kernels {
  Cdfg gcd;
  Cdfg dot;

  Kernels()
      : gcd(kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph),
        dot(kir::lowerToCdfg(apps::makeDotProduct(4).fn).graph) {}

  std::vector<ExploreKernel> set() const {
    return {ExploreKernel{"gcd", &gcd, 1.0},
            ExploreKernel{"dotprod", &dot, 2.0}};
  }
};

/// A deliberately tiny space so search tests stay fast: 2x2 and 2x3
/// meshes/rings, two RF widths.
CompositionSpace tinySpace() {
  CompositionSpace space;
  space.topologies = {"mesh", "ring"};
  space.minRows = 2;
  space.maxRows = 2;
  space.minCols = 2;
  space.maxCols = 3;
  space.rfSizes = {64, 128};
  space.cboxChoices = {16, 32};
  space.contextLengths = {256};
  space.maxDmaPEs = 2;
  return space;
}

ExploreOptions smallOptions(const std::string& strategy, std::uint64_t seed,
                            unsigned budget = 8, unsigned population = 4) {
  ExploreOptions opts;
  opts.strategy = strategy;
  opts.seed = seed;
  opts.budget = budget;
  opts.population = population;
  return opts;
}

TEST(ExploreSpace, DefaultSpaceValidatesAndSamplesWellFormed) {
  CompositionSpace space;
  ASSERT_NO_THROW(space.validate());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Genotype g = space.sample(rng);
    EXPECT_TRUE(space.contains(g)) << g.key();
    // Every sampled point must pass both the factory's typed checks and
    // Composition::validate() — the well-formedness guarantee the search
    // relies on.
    ASSERT_NO_THROW(g.materialize()) << g.key();
  }
}

TEST(ExploreSpace, RepairIsAFixpointAndCanonicalizesFullMulSet) {
  const CompositionSpace space = tinySpace();
  Genotype g;
  g.topology = "torus";  // not in the space
  g.rows = 9;
  g.cols = 9;
  g.rfSize = 100;   // snaps to a listed choice
  g.cboxSlots = 3;  // snaps up
  g.contextLength = 1;
  g.dmaPEs = {17, 17, 3};  // out of range + duplicate
  g.mulPEs = {0, 1, 2, 3, 4, 5};

  space.repair(g);
  EXPECT_TRUE(space.contains(g)) << g.key();
  Genotype again = g;
  space.repair(again);
  EXPECT_EQ(again.key(), g.key()) << "repair must be a fixpoint";

  // A mul set covering every PE is the same hardware as "all multiply";
  // repair collapses it to the canonical empty encoding so equal machines
  // always share a key.
  Genotype full;
  full.topology = "mesh";
  full.rows = 2;
  full.cols = 2;
  full.mulPEs = {0, 1, 2, 3};
  space.repair(full);
  EXPECT_TRUE(full.mulPEs.empty());
  EXPECT_NE(full.key().find("-mall"), std::string::npos);
}

TEST(ExploreSpace, KeyIdentifiesHardwareAndNamesComposition) {
  Genotype g;
  g.topology = "mesh";
  g.rows = 2;
  g.cols = 3;
  g.rfSize = 64;
  g.cboxSlots = 16;
  g.contextLength = 128;
  g.dmaPEs = {0, 5};
  EXPECT_EQ(g.key(), "mesh2x3-rf64-cb16-cx128-d0.5-mall");
  const Composition comp = g.materialize();
  EXPECT_EQ(comp.name(), g.key());
  EXPECT_EQ(comp.numPEs(), 6u);
}

TEST(ExploreSpace, JsonRoundTripAndUnknownKeyRejection) {
  const CompositionSpace space = tinySpace();
  const CompositionSpace back = CompositionSpace::fromJson(space.toJson());
  EXPECT_EQ(back.toJson().dump(), space.toJson().dump());

  json::Object obj = space.toJson().asObject();
  obj["rfsizes"] = json::Array{};  // typo'd key must fail loudly
  EXPECT_THROW(CompositionSpace::fromJson(obj), Error);
}

TEST(ExploreSpace, ValidateRejectsDegenerateSpaces) {
  {
    CompositionSpace s = tinySpace();
    s.topologies.clear();
    EXPECT_THROW(s.validate(), Error);
  }
  {
    CompositionSpace s = tinySpace();
    s.minRows = 3;
    s.maxRows = 2;  // inverted range
    EXPECT_THROW(s.validate(), Error);
  }
  {
    CompositionSpace s = tinySpace();
    s.rfSizes = {0};  // RF width 0 can never validate
    EXPECT_THROW(s.validate(), Error);
  }
  {
    CompositionSpace s = tinySpace();
    s.maxDmaPEs = 0;
    EXPECT_THROW(s.validate(), Error);
  }
  {
    CompositionSpace s = tinySpace();
    s.maxDmaPEs = 5;  // paper caps DMA PEs at 4
    EXPECT_THROW(s.validate(), Error);
  }
  {
    // A torus-only space whose shape range cannot reach 2x2 has no valid
    // points at all.
    CompositionSpace s = tinySpace();
    s.topologies = {"torus"};
    s.minRows = 1;
    s.maxRows = 1;
    EXPECT_THROW(s.validate(), Error);
  }
}

TEST(ExploreOperators, MutationAndCrossoverStayInsideTheSpace) {
  const CompositionSpace space = tinySpace();
  Rng rng(11);
  Genotype a = space.sample(rng);
  Genotype b = space.sample(rng);
  for (int i = 0; i < 500; ++i) {
    const Genotype m = mutate(a, space, rng);
    EXPECT_TRUE(space.contains(m)) << m.key();
    ASSERT_NO_THROW(m.materialize()) << m.key();
    const Genotype c = crossover(a, b, space, rng);
    EXPECT_TRUE(space.contains(c)) << c.key();
    ASSERT_NO_THROW(c.materialize()) << c.key();
    a = m;
    b = c;
  }
}

TEST(ExploreOperators, MutationUsuallyMovesTheCandidate) {
  const CompositionSpace space = tinySpace();
  Rng rng(3);
  const Genotype g = space.sample(rng);
  int moved = 0;
  for (int i = 0; i < 64; ++i)
    if (mutate(g, space, rng).key() != g.key()) ++moved;
  // mutate retries up to 8 field edits looking for a key change; in this
  // multi-point space staying put should be rare.
  EXPECT_GT(moved, 48);
}

TEST(ExplorePareto, DominanceSemantics) {
  CandidateEval cheapShort, cheapLong, bigShort, infeasible;
  cheapShort.key = "a";
  cheapShort.feasible = true;
  cheapShort.areaLuts = 100;
  cheapShort.weightedLength = 10;
  cheapLong = cheapShort;
  cheapLong.key = "b";
  cheapLong.weightedLength = 20;
  bigShort = cheapShort;
  bigShort.key = "c";
  bigShort.areaLuts = 200;
  infeasible.key = "d";
  infeasible.feasible = false;
  infeasible.areaLuts = 1;
  infeasible.weightedLength = 1;

  EXPECT_TRUE(dominates(cheapShort, cheapLong));
  EXPECT_FALSE(dominates(cheapLong, cheapShort));
  EXPECT_TRUE(dominates(cheapShort, bigShort));
  // Trade-off points do not dominate each other.
  EXPECT_FALSE(dominates(cheapLong, bigShort));
  EXPECT_FALSE(dominates(bigShort, cheapLong));
  // Feasible always beats infeasible; infeasible never dominates.
  EXPECT_TRUE(dominates(cheapLong, infeasible));
  EXPECT_FALSE(dominates(infeasible, cheapShort));
  // Equal objectives: neither dominates (both stay on the front).
  CandidateEval twin = cheapShort;
  twin.key = "e";
  EXPECT_FALSE(dominates(cheapShort, twin));
  EXPECT_FALSE(dominates(twin, cheapShort));

  const std::vector<CandidateEval> all{cheapShort, cheapLong, bigShort,
                                       infeasible, twin};
  const std::vector<std::size_t> front = paretoFrontIndices(all);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 4}));
}

TEST(ExploreEvaluator, MemoizesByKeyAndCountsTraffic) {
  const Kernels kernels;
  Evaluator eval(kernels.set(), SweepOptions{}, nullptr);
  Genotype g;  // default 2x2 mesh
  const std::vector<Genotype> batch{g, g};

  const std::vector<CandidateEval> first = eval.evaluate(batch);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].key, first[1].key);
  EXPECT_EQ(eval.counters().evaluations, 1u);
  EXPECT_EQ(eval.counters().memoHits, 1u);
  EXPECT_EQ(eval.counters().jobs, kernels.set().size());
  EXPECT_TRUE(eval.known(g.key()));

  const std::vector<CandidateEval> second = eval.evaluate({g});
  EXPECT_EQ(eval.counters().evaluations, 1u) << "memo must absorb repeats";
  EXPECT_EQ(eval.counters().memoHits, 2u);
  EXPECT_EQ(second[0].toJson().dump(), first[0].toJson().dump());

  // A feasible evaluation carries the evidence the report shows.
  EXPECT_TRUE(first[0].feasible);
  EXPECT_GT(first[0].areaLuts, 0.0);
  EXPECT_GT(first[0].weightedLength, 0.0);
  ASSERT_EQ(first[0].kernels.size(), 2u);
  for (const KernelOutcome& k : first[0].kernels) EXPECT_TRUE(k.ok);
}

TEST(ExploreEvaluator, RejectsEmptyWorkload) {
  EXPECT_THROW(Evaluator({}, SweepOptions{}, nullptr), Error);
  ExploreKernel nullGraph{"broken", nullptr, 1.0};
  EXPECT_THROW(Evaluator({nullGraph}, SweepOptions{}, nullptr), Error);
}

TEST(Explorer, RejectsBadOptions) {
  const Kernels kernels;
  EXPECT_THROW(
      Explorer(tinySpace(), kernels.set(), smallOptions("anneal", 1)), Error);
  EXPECT_THROW(Explorer(tinySpace(), kernels.set(), smallOptions("random", 1, 0)),
               Error);
  ExploreOptions zeroPop = smallOptions("random", 1);
  zeroPop.population = 0;
  EXPECT_THROW(Explorer(tinySpace(), kernels.set(), zeroPop), Error);
  CompositionSpace bad = tinySpace();
  bad.topologies.clear();
  EXPECT_THROW(Explorer(bad, kernels.set(), smallOptions("random", 1)), Error);
}

TEST(Explorer, FrontMembersAreMutuallyNonDominated) {
  const Kernels kernels;
  for (const char* strategy : {"random", "hillclimb", "genetic"}) {
    Explorer explorer(tinySpace(), kernels.set(), smallOptions(strategy, 5));
    const ExploreReport report = explorer.run();
    ASSERT_FALSE(report.front.empty()) << strategy;
    for (const CandidateEval& e : report.front) {
      EXPECT_TRUE(e.feasible) << strategy << " " << e.key;
      for (const CandidateEval& other : report.front)
        EXPECT_FALSE(dominates(other, e))
            << strategy << ": " << other.key << " dominates " << e.key;
    }
    // The front is reported in sorted key order (stable bytes).
    EXPECT_TRUE(std::is_sorted(report.front.begin(), report.front.end(),
                               [](const CandidateEval& a,
                                  const CandidateEval& b) {
                                 return a.key < b.key;
                               }))
        << strategy;
  }
}

TEST(Explorer, BudgetBoundsDistinctEvaluationsExactly) {
  const Kernels kernels;
  Explorer explorer(tinySpace(), kernels.set(),
                    smallOptions("random", 9, /*budget=*/5, /*population=*/4));
  const ExploreReport report = explorer.run();
  EXPECT_LE(report.evaluations, 5u);
  EXPECT_EQ(report.counters.evaluations, report.evaluations);
  // Bookkeeping identity: archive = front + dominated + infeasible.
  EXPECT_EQ(report.evaluations, report.front.size() + report.dominatedCount +
                                    report.infeasibleCount);
  std::size_t evaluated = 0;
  for (const GenerationStats& g : report.generations) evaluated += g.evaluated;
  EXPECT_EQ(evaluated, report.evaluations);
}

TEST(Explorer, StableReportIsByteIdenticalAcrossThreadsAndRepeats) {
  const Kernels kernels;
  std::string baseline;
  for (unsigned threads : {1u, 2u, 8u}) {
    ExploreOptions opts = smallOptions("genetic", 42, 10, 4);
    opts.sweep.threads = threads;
    Explorer explorer(tinySpace(), kernels.set(), opts);
    const std::string stable = explorer.run().toJson(false).dump();
    EXPECT_EQ(stable.find("wallTimeMs"), std::string::npos)
        << "stable form must omit volatile fields";
    EXPECT_EQ(stable.find("storeHits"), std::string::npos);
    if (baseline.empty())
      baseline = stable;
    else
      EXPECT_EQ(stable, baseline) << threads << " threads";
  }
  // Repeat run, same seed: identical bytes.
  ExploreOptions opts = smallOptions("genetic", 42, 10, 4);
  Explorer repeat(tinySpace(), kernels.set(), opts);
  EXPECT_EQ(repeat.run().toJson(false).dump(), baseline);
  // A different seed explores differently (sanity that the seed matters).
  Explorer other(tinySpace(), kernels.set(), smallOptions("genetic", 43, 10, 4));
  EXPECT_NE(other.run().toJson(false).dump(), baseline);
}

TEST(Explorer, WarmStoreRerunHitsCacheAndKeepsTheFront) {
  const Kernels kernels;
  const TempDir dir("warm");
  artifact::StoreOptions storeOpts;
  storeOpts.directory = dir.str();

  std::string coldStable;
  std::uint64_t coldMisses = 0;
  {
    artifact::ArtifactStore store(storeOpts);
    Explorer cold(tinySpace(), kernels.set(), smallOptions("genetic", 42, 8, 4),
                  &store);
    const ExploreReport report = cold.run();
    coldStable = report.toJson(false).dump();
    coldMisses = report.counters.storeMisses;
    EXPECT_GT(coldMisses, 0u);
  }
  {
    artifact::ArtifactStore store(storeOpts);
    Explorer warm(tinySpace(), kernels.set(), smallOptions("genetic", 42, 8, 4),
                  &store);
    const ExploreReport report = warm.run();
    // Acceptance: warm re-run reports store hits > 0 and an identical front.
    EXPECT_GT(report.counters.storeHits, 0u);
    EXPECT_EQ(report.counters.storeMisses, 0u);
    EXPECT_EQ(report.counters.storeHits, coldMisses)
        << "every cold miss must be a warm hit";
    EXPECT_EQ(report.toJson(false).dump(), coldStable);
  }
}

TEST(Explorer, MetricsExposeSearchTraffic) {
  const Kernels kernels;
  Explorer explorer(tinySpace(), kernels.set(), smallOptions("random", 2, 6, 3));
  const ExploreReport report = explorer.run();
  const std::string text = explorer.metricsText();
  EXPECT_NE(text.find("cgra_explore_proposals_total"), std::string::npos);
  EXPECT_NE(text.find("cgra_explore_evaluations_total " +
                      std::to_string(report.counters.evaluations)),
            std::string::npos);
  EXPECT_NE(text.find("cgra_explore_front_size " +
                      std::to_string(report.front.size())),
            std::string::npos);
  EXPECT_NE(text.find("cgra_explore_generation_us"), std::string::npos);
}

TEST(Explorer, ReportJsonShape) {
  const Kernels kernels;
  Explorer explorer(tinySpace(), kernels.set(), smallOptions("hillclimb", 6, 6, 3));
  const ExploreReport report = explorer.run();
  const json::Value v = report.toJson(true);
  const json::Object& obj = v.asObject();
  EXPECT_EQ(obj.at("schema").asString(), "cgra-explore-v1");
  EXPECT_EQ(obj.at("strategy").asString(), "hillclimb");
  EXPECT_EQ(obj.at("seed").asString(), "6");
  EXPECT_EQ(static_cast<std::size_t>(obj.at("frontSize").asInt()),
            report.front.size());
  EXPECT_TRUE(obj.find("wallTimeMs") != nullptr);
  const json::Array& front = obj.at("front").asArray();
  ASSERT_EQ(front.size(), report.front.size());
  for (const json::Value& member : front) {
    const json::Object& m = member.asObject();
    EXPECT_TRUE(m.at("feasible").asBool());
    EXPECT_EQ(m.at("kernels").asArray().size(), kernels.set().size());
  }
}

}  // namespace
}  // namespace cgra::explore
