// Transactional placement probes. A (node, PE) placement probe may fail
// after mutating run state — variable homes, live-in bindings, routing
// copies, C-Box condition slots. The contract (DESIGN.md) is that a
// rejected probe leaves all of it untouched: only the per-node rejection
// bookkeeping and the decision trace may record that the probe happened.
// These tests pin the contract three ways: a constructed kernel where a
// leaked home used to steer later placements, schedule-level invariants
// over the random-kernel corpus, and a white-box journal round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/random_kernel.hpp"
#include "sched/passes/run_state.hpp"
#include "sched/scheduler.hpp"

namespace cgra {
namespace {

Node op(Op o, std::vector<Operand> operands) {
  Node n;
  n.kind = NodeKind::Operation;
  n.op = o;
  n.operands = std::move(operands);
  return n;
}

/// Three PEs in a ring with inhomogeneous op sets, parameterized by a
/// physical relabeling `perm` (role -> PE id). Roles:
///   0 "alu0": IADD but no IMUL, DMA — probed first in index order;
///   1 "alu1": IADD but no IMUL — the only PE that can read role 2;
///   2 "mul":  IMUL but no IADD.
/// Links (by role): 0->2, 2->1, 1->0, so role 2's result is routable only
/// to role 1 at the cycle it becomes ready.
Composition probeComp(const std::array<PEId, 3>& perm) {
  std::vector<PEDescriptor> pes(3);
  for (unsigned role = 0; role < 3; ++role) {
    PEDescriptor pe = PEDescriptor::fullInteger(
        role == 0 ? "alu0" : role == 1 ? "alu1" : "mul",
        /*regfileSize=*/32, /*hasDma=*/role == 0);
    pe.removeOp(role == 2 ? Op::IADD : Op::IMUL);
    pes[perm[role]] = std::move(pe);
  }
  Interconnect ic(3);
  ic.addLink(perm[0], perm[2]);
  ic.addLink(perm[2], perm[1]);
  ic.addLink(perm[1], perm[0]);
  ic.computeShortestPaths();
  return Composition("probe3", std::move(pes), std::move(ic),
                     /*contextMemoryLength=*/64, /*cboxSlots=*/4);
}

/// x (live-in) feeds n = IADD(x, m) where m = IMUL(3, 4) can only run on
/// the "mul" PE. When n is probed on "alu0" (first in index order) the
/// probe pins x's home there and then fails: m's result is not routable to
/// alu0 in time. The leaked home used to force a copy chain from alu0 and
/// bind the live-in to a PE the final schedule never uses.
struct ProbeKernel {
  Cdfg g;
  VarId x;
  NodeId m, n;
};

ProbeKernel makeProbeKernel() {
  ProbeKernel k;
  k.x = k.g.addVariable(Variable{"x", /*liveIn=*/true, false, 5});
  k.m = k.g.addNode(op(Op::IMUL, {Operand::immediate(3),
                                  Operand::immediate(4)}));
  k.n = k.g.addNode(op(Op::IADD, {Operand::variable(k.x),
                                  Operand::node(k.m)}));
  k.g.addEdge(k.m, k.n, DepKind::Flow);
  return k;
}

TEST(ProbeRollback, FailedProbeDoesNotPinHome) {
  const std::array<PEId, 3> identity{0, 1, 2};
  const Composition comp = probeComp(identity);
  const ProbeKernel k = makeProbeKernel();
  SchedulerOptions opts;
  opts.useAttraction = false;  // probe PEs in index order: alu0 first
  const ScheduleReport r =
      Scheduler(comp, opts).schedule(ScheduleRequest(k.g));
  ASSERT_TRUE(r.ok) << r.failure.message;

  // n must land on alu1 (PE 1), the only PE that can read m's result, and
  // x's home must follow it there — not stick on alu0 where the rejected
  // probe first touched it.
  const auto homeIt =
      std::find_if(r.schedule.varHomes.begin(), r.schedule.varHomes.end(),
                   [&](const LiveBinding& b) { return b.var == k.x; });
  ASSERT_NE(homeIt, r.schedule.varHomes.end());
  EXPECT_EQ(homeIt->pe, 1u);

  ASSERT_EQ(r.schedule.liveIns.size(), 1u);
  EXPECT_EQ(r.schedule.liveIns[0].var, k.x);
  EXPECT_EQ(r.schedule.liveIns[0].pe, 1u);
  EXPECT_EQ(r.schedule.liveIns[0].vreg, homeIt->vreg);

  // The leaked home used to cost a copy chain out of alu0; with rollback
  // the schedule never touches PE 0 and inserts no copies at all.
  EXPECT_EQ(r.stats.copiesInserted, 0u);
  for (const ScheduledOp& o : r.schedule.ops) EXPECT_NE(o.pe, 0u);
}

TEST(ProbeRollback, FailureClassificationPEOrderIndependent) {
  // The same kernel on every PE relabeling of the same composition must
  // classify an unmappable run identically: rejection-reason ranks are
  // strictly distinct, so the winner cannot depend on probe order.
  const ProbeKernel k = makeProbeKernel();
  std::array<PEId, 3> perm{0, 1, 2};
  std::optional<FailureReason> expected;
  do {
    SchedulerOptions opts;
    opts.maxContexts = 3;  // too tight for IMUL + its const operands
    const ScheduleReport r =
        Scheduler(probeComp(perm), opts).schedule(ScheduleRequest(k.g));
    ASSERT_FALSE(r.ok);
    if (!expected) expected = r.failure.reason;
    EXPECT_EQ(r.failure.reason, *expected)
        << "perm " << perm[0] << perm[1] << perm[2];
  } while (std::next_permutation(perm.begin(), perm.end()));
}

Composition corpusComposition(std::uint64_t seed) {
  const unsigned idx = static_cast<unsigned>(seed % 12);
  Composition comp = idx < 6 ? makeMesh(meshSizes()[idx])
                             : makeIrregular(irregularLabels()[idx - 6]);
  return Composition(comp.name(), comp.pes(), comp.interconnect(), 1024, 64);
}

TEST(ProbeRollback, LiveInsReferenceOnlyActualHomes) {
  // Corpus-level invariant: every live-in binding must agree with the
  // variable's final home. A leaked probe home broke this by binding the
  // transfer to a PE the committed schedule never chose.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const kir::RandomKernel k = kir::generateRandomKernel(seed);
    const kir::LoweringResult lowered = kir::lowerToCdfg(k.fn);
    const Composition comp = corpusComposition(seed);
    const ScheduleReport r =
        Scheduler(comp).schedule(ScheduleRequest(lowered.graph));
    if (!r.ok) continue;
    for (const LiveBinding& in : r.schedule.liveIns) {
      const auto home = std::find_if(
          r.schedule.varHomes.begin(), r.schedule.varHomes.end(),
          [&](const LiveBinding& h) { return h.var == in.var; });
      ASSERT_NE(home, r.schedule.varHomes.end()) << "seed " << seed;
      EXPECT_EQ(in.pe, home->pe) << "seed " << seed << " var " << in.var;
      EXPECT_EQ(in.vreg, home->vreg) << "seed " << seed << " var " << in.var;
    }
    // No variable is transferred twice.
    auto ins = r.schedule.liveIns;
    std::sort(ins.begin(), ins.end(),
              [](const LiveBinding& a, const LiveBinding& b) {
                return a.var < b.var;
              });
    EXPECT_EQ(std::adjacent_find(ins.begin(), ins.end(),
                                 [](const LiveBinding& a,
                                    const LiveBinding& b) {
                                   return a.var == b.var;
                                 }),
              ins.end())
        << "seed " << seed;
  }
}

TEST(ProbeRollback, NoOrphanConditionSlots) {
  // A C-Box AND entry materialized for a fusion that was then skipped (or
  // for a probe that failed) must not survive: every combine result must be
  // read by a predicated op, a branch, or a later combine.
  struct Case {
    Composition comp;
    Cdfg graph;
  };
  const Case cases[] = {
      {makeMesh(9), kir::lowerToCdfg(apps::makeAdpcm(8, 1).fn).graph},
      {makeMesh(4), kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph},
      {makeIrregular('D'), kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph},
  };
  for (const Case& c : cases) {
    const ScheduleReport r =
        Scheduler(c.comp).schedule(ScheduleRequest(c.graph));
    ASSERT_TRUE(r.ok) << c.comp.name();
    for (const CBoxOp& cb : r.schedule.cboxOps) {
      if (cb.logic != CBoxOp::Logic::And) continue;
      bool referenced = false;
      for (const ScheduledOp& o : r.schedule.ops)
        if (o.pred && o.pred->slot == cb.writeSlot) referenced = true;
      for (const BranchOp& b : r.schedule.branches)
        if (b.conditional && b.pred.slot == cb.writeSlot) referenced = true;
      for (const CBoxOp& other : r.schedule.cboxOps)
        for (const CBoxOp::Input& in : other.inputs)
          if (in.kind == CBoxOp::Input::Kind::Stored &&
              in.slot == cb.writeSlot && &other != &cb)
            referenced = true;
      EXPECT_TRUE(referenced) << c.comp.name() << " slot " << cb.writeSlot;
    }
  }
}

TEST(ProbeRollback, JournalRestoresStateExactly) {
  // White-box: every journaled mutator, exercised directly against a
  // hand-initialized RunState, must be undone bit-exactly by rollback.
  const Composition comp = makeMesh(4);
  Cdfg g;
  const VarId v = g.addVariable(Variable{"v", /*liveIn=*/true, false, 0});
  g.addNode(op(Op::IADD, {Operand::variable(v), Operand::immediate(1)}));
  const SchedulerOptions opts;
  passes::RunState st(comp, opts, g, nullptr);
  st.varHomes.resize(1);
  st.varCopies.resize(1);
  st.nodeLocs.resize(1);
  st.nextVreg.assign(comp.numPEs(), 0);
  for (unsigned pe = 0; pe < comp.numPEs(); ++pe) {
    st.peBusy.emplace_back(16);
    st.outPort.emplace_back(16);
  }
  st.cboxOpAt = CycleOccupancy(16);
  st.predUse = CycleSlots<PredRef>(16);

  // Pre-probe committed state the rollback must preserve.
  st.markBusy(0, 0, 2);
  st.claimOutPort(1, 3, 7);
  st.claimPredSignal(2, PredRef{0, true});

  st.beginProbe();
  st.homeFor(v, 2);
  st.markBusy(0, 4, 1);
  st.claimOutPort(1, 3, 7);  // re-claim: must survive rollback
  st.claimOutPort(1, 5, 9);  // fresh claim: must be released
  st.claimPredSignal(2, PredRef{0, true});  // re-claim
  st.claimPredSignal(4, PredRef{1, false}); // fresh
  st.insertCondSlot(1, passes::CondSlot{PredRef{3, true}, 2});
  st.addLocation(Operand::node(0), passes::Location{1, 0, 3});
  st.addLocation(Operand::variable(v), passes::Location{2, 1, 4});
  st.addConstLocation(42, passes::Location{0, 2, 1});
  st.sched.ops.emplace_back();
  ++st.stats.copiesInserted;
  st.rollbackProbe();

  EXPECT_FALSE(st.varHomes[v].has_value());
  EXPECT_TRUE(st.sched.liveIns.empty());
  EXPECT_TRUE(st.sched.ops.empty());
  EXPECT_EQ(st.stats.copiesInserted, 0u);
  EXPECT_EQ(st.nextVreg[2], 0u);
  EXPECT_TRUE(st.peBusy[0].anyBusy(0, 2)) << "committed mark preserved";
  EXPECT_FALSE(st.peBusy[0].test(4)) << "probe mark cleared";
  ASSERT_NE(st.outPort[1].get(3), nullptr) << "committed claim preserved";
  EXPECT_EQ(*st.outPort[1].get(3), 7u);
  EXPECT_EQ(st.outPort[1].get(5), nullptr) << "probe claim released";
  EXPECT_NE(st.predUse.get(2), nullptr);
  EXPECT_EQ(st.predUse.get(4), nullptr);
  EXPECT_TRUE(st.condSlots.empty());
  EXPECT_TRUE(st.nodeLocs[0].empty());
  EXPECT_TRUE(st.varCopies[v].empty());
  EXPECT_TRUE(st.constLocs[42].empty());

  // A committed probe keeps everything.
  st.beginProbe();
  st.homeFor(v, 2);
  st.commitProbe();
  ASSERT_TRUE(st.varHomes[v].has_value());
  EXPECT_EQ(st.varHomes[v]->pe, 2u);
  ASSERT_EQ(st.sched.liveIns.size(), 1u);
  EXPECT_EQ(st.sched.liveIns[0].pe, 2u);
}

}  // namespace
}  // namespace cgra
