// Property tests of the paper's headline claim: the scheduler handles
// *arbitrary* PE interconnects and *inhomogeneous* operation sets "without
// any manual intervention" (§I, §II). Random strongly-connected
// compositions with randomly thinned operator sets are generated and every
// bundled + random kernel must either map correctly (bit-exact vs the
// interpreter) or be rejected with a clean error — never mis-execute.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/composition.hpp"
#include "ctx/contexts.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/random_kernel.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

/// Random composition: 3–10 PEs, random links grown until strongly
/// connected, 1–2 DMA PEs, each non-essential operation removed from each
/// PE with probability 1/3 (but kept somewhere in the array).
Composition randomComposition(std::uint64_t seed) {
  Rng rng(seed);
  const unsigned n = static_cast<unsigned>(rng.range(3, 10));

  Interconnect ic(n);
  // A random ring guarantees strong connectivity, then random extra links.
  std::vector<PEId> order(n);
  for (PEId i = 0; i < n; ++i) order[i] = i;
  for (PEId i = n; i-- > 1;)
    std::swap(order[i], order[static_cast<std::size_t>(rng.range(0, i))]);
  for (PEId i = 0; i < n; ++i) ic.addLink(order[i], order[(i + 1) % n]);
  const unsigned extra = static_cast<unsigned>(rng.range(0, 2 * n));
  for (unsigned e = 0; e < extra; ++e) {
    const PEId a = static_cast<PEId>(rng.range(0, n - 1));
    const PEId b = static_cast<PEId>(rng.range(0, n - 1));
    if (a != b) ic.addLink(a, b);
  }
  ic.computeShortestPaths();

  const unsigned dmaCount = static_cast<unsigned>(rng.range(1, 2));
  std::vector<PEDescriptor> pes;
  for (PEId p = 0; p < n; ++p) {
    const bool dma = p < dmaCount;
    PEDescriptor pe = PEDescriptor::fullInteger(
        "rnd" + std::to_string(p), /*regfileSize=*/64, dma);
    for (unsigned opIdx = 0; opIdx < kNumOps; ++opIdx) {
      const Op op = static_cast<Op>(opIdx);
      if (op == Op::NOP || op == Op::MOVE || op == Op::CONST ||
          isMemoryOp(op))
        continue;
      // Keep every operation on PE 0 so all kernels stay mappable; thin the
      // rest randomly (inhomogeneity).
      if (p != 0 && rng.chance(1, 3)) pe.removeOp(op);
    }
    pes.push_back(std::move(pe));
  }
  return Composition("random" + std::to_string(seed), std::move(pes),
                     std::move(ic), /*contextMemoryLength=*/2048,
                     /*cboxSlots=*/64);
}

void expectCorrectOrCleanError(const apps::Workload& w,
                               const Composition& comp) {
  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  const auto golden = interp.run(w.fn, w.initialLocals, goldenHeap);

  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const ScheduleReport result =
      Scheduler(comp).schedule(ScheduleRequest(lowered.graph));
  if (!result.ok) {
    // Clean typed rejection (e.g. capacity) is acceptable; a programmer
    // error would have escaped as an exception and failed the test.
    EXPECT_NE(result.failure.reason, FailureReason::None);
    EXPECT_NE(result.failure.reason, FailureReason::Internal);
    return;
  }
  const auto issues = validateSchedule(result.schedule, lowered.graph, comp);
  ASSERT_TRUE(issues.empty())
      << w.name << " on " << comp.name() << ": " << issues.front();

  const Schedule runnable =
      decodeContexts(generateContexts(result.schedule, comp), comp);
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  const SimResult r = Simulator(comp, runnable).run(liveIns, heap);
  EXPECT_TRUE(heap == goldenHeap) << w.name << " on " << comp.name();
  for (const auto& [var, value] : r.liveOuts)
    EXPECT_EQ(value, golden.locals[var]) << w.name << " on " << comp.name();
}

class RandomCompositions : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCompositions, BundledKernelsMapWithoutIntervention) {
  const Composition comp = randomComposition(GetParam());
  // Rotate through the bundled kernels so each seed covers a different one.
  auto workloads = apps::allWorkloads();
  const apps::Workload& w = workloads[GetParam() % workloads.size()];
  expectCorrectOrCleanError(w, comp);
}

TEST_P(RandomCompositions, RandomKernelsMapWithoutIntervention) {
  const Composition comp = randomComposition(GetParam() * 31 + 7);
  const kir::RandomKernel k = kir::generateRandomKernel(GetParam() * 13 + 5);
  apps::Workload w;
  w.name = "random_kernel";
  w.fn = k.fn;
  w.initialLocals = k.initialLocals;
  w.heap = k.heap;
  expectCorrectOrCleanError(w, comp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCompositions,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(RandomCompositions, GeneratedCompositionsAreValid) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Composition comp = randomComposition(seed);
    EXPECT_NO_THROW(comp.validate()) << seed;
    EXPECT_TRUE(comp.interconnect().stronglyConnected()) << seed;
    EXPECT_FALSE(comp.pesSupporting(Op::IMUL).empty()) << seed;
  }
}

}  // namespace
}  // namespace cgra
