// Tests for context-image serialization: hex word round trips, JSON
// round trips (bit-exact), $readmemh output, malformed-input rejection, and
// the full persist→reload→simulate flow.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/serialize.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

TEST(HexWord, RoundTripsArbitraryWidths) {
  Rng rng(3);
  for (unsigned width : {1u, 3u, 4u, 7u, 8u, 13u, 31u, 32u, 63u, 64u, 100u}) {
    BitVector bits(width);
    for (unsigned i = 0; i < width; ++i) bits.set(i, rng.chance(1, 2));
    const std::string hex = contextWordToHex(bits);
    EXPECT_EQ(hex.size(), (width + 3) / 4);
    const BitVector back = contextWordFromHex(hex, width);
    EXPECT_TRUE(back == bits) << "width " << width << " hex " << hex;
  }
}

TEST(HexWord, KnownValues) {
  BitPacker bp;
  bp.write(0xDEADu, 16);
  EXPECT_EQ(contextWordToHex(bp.bits()), "dead");
  BitPacker bp2;
  bp2.write(0x5, 3);  // 3-bit word "101"
  EXPECT_EQ(contextWordToHex(bp2.bits()), "5");
}

TEST(HexWord, RejectsBadInput) {
  EXPECT_THROW(contextWordFromHex("xyz", 12), Error);
  EXPECT_THROW(contextWordFromHex("ab", 12), Error);  // wrong length
  // Upper-case hex accepted.
  const BitVector v = contextWordFromHex("AB", 8);
  EXPECT_EQ(contextWordToHex(v), "ab");
}

ContextImages makeImages() {
  const apps::Workload w = apps::makeAdpcm(8, 1);
  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Composition comp = makeMesh(6);
  const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  return generateContexts(sched, comp);
}

TEST(ContextJson, BitExactRoundTrip) {
  const ContextImages img = makeImages();
  const json::Value doc = contextImagesToJson(img);
  // Serialize to text and back (the realistic file path).
  const ContextImages back = contextImagesFromJson(json::parse(doc.dump()));

  EXPECT_EQ(back.length, img.length);
  EXPECT_EQ(back.peWidths, img.peWidths);
  EXPECT_EQ(back.cboxWidth, img.cboxWidth);
  EXPECT_EQ(back.ccuWidth, img.ccuWidth);
  EXPECT_EQ(back.physRegsUsed, img.physRegsUsed);
  EXPECT_EQ(back.cboxSlotsUsed, img.cboxSlotsUsed);
  ASSERT_EQ(back.peContexts.size(), img.peContexts.size());
  for (std::size_t p = 0; p < img.peContexts.size(); ++p)
    for (std::size_t t = 0; t < img.length; ++t)
      EXPECT_TRUE(back.peContexts[p][t] == img.peContexts[p][t])
          << "PE " << p << " t" << t;
  for (std::size_t t = 0; t < img.length; ++t) {
    EXPECT_TRUE(back.cboxContexts[t] == img.cboxContexts[t]);
    EXPECT_TRUE(back.ccuContexts[t] == img.ccuContexts[t]);
  }
  EXPECT_EQ(back.liveIns.size(), img.liveIns.size());
  EXPECT_EQ(back.liveOuts.size(), img.liveOuts.size());
  EXPECT_EQ(back.totalBits(), img.totalBits());
}

TEST(ContextJson, ReloadedImagesSimulateCorrectly) {
  const apps::Workload w = apps::makeAdpcm(12, 2);
  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Composition comp = makeMesh(6);
  const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  const ContextImages img = generateContexts(sched, comp);

  // Persist + reload, then run from the reloaded images.
  const ContextImages reloaded =
      contextImagesFromJson(json::parse(contextImagesToJson(img).dump()));
  const Schedule runnable = decodeContexts(reloaded, comp);

  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  interp.run(w.fn, w.initialLocals, goldenHeap);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  Simulator(comp, runnable).run(liveIns, heap);
  EXPECT_TRUE(heap == goldenHeap);
}

TEST(ContextJson, RejectsMalformedDocuments) {
  const ContextImages img = makeImages();
  json::Value doc = contextImagesToJson(img);

  json::Value noFormat = doc;
  noFormat.asObject()["format"] = "other";
  EXPECT_THROW(contextImagesFromJson(noFormat), Error);

  json::Value badCount = doc;
  badCount.asObject()["cbox_memory"].asObject()["contexts"].asArray().pop_back();
  EXPECT_THROW(contextImagesFromJson(badCount), Error);

  json::Value badWidth = doc;
  badWidth.asObject()["ccu_memory"].asObject()["width"] = -3;
  EXPECT_THROW(contextImagesFromJson(badWidth), Error);
}

unsigned countPredicated(const Schedule& s) {
  unsigned n = 0;
  for (const ScheduledOp& op : s.ops)
    if (op.pred.has_value()) ++n;
  return n;
}

TEST(ContextJson, DmaPortContextsRoundTripThroughSingleDmaPE) {
  // A grid with exactly one DMA-capable PE: every DMA_LOAD/DMA_STORE
  // funnels through that port, so its context stream concentrates the
  // memory-op encoding (predicated DMA fields, §V-D).
  const apps::Workload w = apps::makeDotProduct(4, 2);
  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Composition comp = makeMeshGrid(2, 3, {}, {4});
  const Schedule sched =
      Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;

  unsigned dmaOps = 0;
  for (const ScheduledOp& op : sched.ops)
    if (isMemoryOp(op.op)) {
      EXPECT_EQ(op.pe, 4u) << "memory ops must sit on the only DMA PE";
      ++dmaOps;
    }
  ASSERT_GT(dmaOps, 0u);

  const ContextImages img = generateContexts(sched, comp);
  const ContextImages reloaded =
      contextImagesFromJson(json::parse(contextImagesToJson(img).dump()));
  const Schedule decoded = decodeContexts(reloaded, comp);

  unsigned decodedDmaOps = 0;
  for (const ScheduledOp& op : decoded.ops)
    if (isMemoryOp(op.op)) {
      EXPECT_EQ(op.pe, 4u);
      ++decodedDmaOps;
    }
  EXPECT_EQ(decodedDmaOps, dmaOps);

  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  interp.run(w.fn, w.initialLocals, goldenHeap);
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : decoded.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  Simulator(comp, decoded).run(liveIns, heap);
  EXPECT_TRUE(heap == goldenHeap);
}

TEST(ContextJson, PredicatedWritesSurviveEncodeDecodeEncode) {
  // gcd's RF writes are gated on C-Box slots. The predication fields must
  // survive encode → JSON → decode, and re-encoding the decoded (physical)
  // schedule must reproduce the original images bit for bit.
  const apps::Workload w = apps::makeGcd(546, 2394);
  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Composition comp = makeMesh(4);
  const Schedule sched =
      Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  ASSERT_GT(countPredicated(sched), 0u)
      << "gcd must produce predicated register writes";

  const ContextImages img = generateContexts(sched, comp);
  const ContextImages reloaded =
      contextImagesFromJson(json::parse(contextImagesToJson(img).dump()));
  const Schedule decoded = decodeContexts(reloaded, comp);
  EXPECT_EQ(countPredicated(decoded), countPredicated(sched));

  const ContextImages again = encodePhysical(decoded, comp);
  EXPECT_EQ(contextImagesToJson(again).dump(), contextImagesToJson(img).dump())
      << "decode followed by re-encode must be the identity on the images";
}

TEST(ContextJson, MaxWidthContextWordsRoundTrip) {
  // Synthetic maximal image: one context memory at the 4096-bit format
  // limit next to a 1-bit one, with dense random words.
  Rng rng(7);
  const unsigned kMaxWidth = 4096;
  ContextImages img;
  img.length = 3;
  img.peWidths = {kMaxWidth, 1u};
  img.peContexts.resize(2);
  img.cboxWidth = kMaxWidth;
  img.ccuWidth = 17;
  img.physRegsUsed = {128u, 1u};
  img.cboxSlotsUsed = 32;
  auto randomWord = [&rng](unsigned width) {
    BitVector bits(width);
    for (unsigned b = 0; b < width; ++b) bits.set(b, rng.chance(1, 2));
    return bits;
  };
  for (unsigned t = 0; t < img.length; ++t) {
    img.peContexts[0].push_back(randomWord(kMaxWidth));
    img.peContexts[1].push_back(randomWord(1));
    img.cboxContexts.push_back(randomWord(kMaxWidth));
    img.ccuContexts.push_back(randomWord(17));
  }

  const ContextImages back =
      contextImagesFromJson(json::parse(contextImagesToJson(img).dump()));
  ASSERT_EQ(back.peWidths, img.peWidths);
  EXPECT_EQ(back.cboxWidth, img.cboxWidth);
  for (unsigned t = 0; t < img.length; ++t) {
    EXPECT_TRUE(back.peContexts[0][t] == img.peContexts[0][t]) << "t" << t;
    EXPECT_TRUE(back.peContexts[1][t] == img.peContexts[1][t]) << "t" << t;
    EXPECT_TRUE(back.cboxContexts[t] == img.cboxContexts[t]) << "t" << t;
    EXPECT_TRUE(back.ccuContexts[t] == img.ccuContexts[t]) << "t" << t;
  }
  EXPECT_EQ(back.totalBits(), img.totalBits());

  // One bit past the limit is rejected at parse time.
  ContextImages tooWide = img;
  tooWide.peWidths[0] = kMaxWidth + 1;
  for (unsigned t = 0; t < tooWide.length; ++t)
    tooWide.peContexts[0][t] = randomWord(kMaxWidth + 1);
  EXPECT_THROW(
      contextImagesFromJson(json::parse(contextImagesToJson(tooWide).dump())),
      Error);
}

TEST(MemFile, ReadmemhFormat) {
  const ContextImages img = makeImages();
  const std::string mem =
      toMemFile(img.peContexts[0], img.peWidths[0], "pe0 context memory");
  std::istringstream in(mem);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.rfind("//", 0), 0u) << "comment header";
  unsigned words = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.size(), (img.peWidths[0] + 3) / 4);
    ++words;
  }
  EXPECT_EQ(words, img.length);
}

}  // namespace
}  // namespace cgra
