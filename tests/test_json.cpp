// Unit tests for the JSON substrate: full-grammar parsing, error reporting
// with line/column, serialization round trips, and the order-preserving
// object semantics the composition files rely on.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace cgra::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").isNull());
  EXPECT_TRUE(parse("true").asBool());
  EXPECT_FALSE(parse("false").asBool());
  EXPECT_EQ(parse("42").asInt(), 42);
  EXPECT_EQ(parse("-17").asInt(), -17);
  EXPECT_DOUBLE_EQ(parse("2.5").asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").asDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5e-2").asDouble(), -0.025);
  EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, IntVsDouble) {
  EXPECT_TRUE(parse("3").isInt());
  EXPECT_TRUE(parse("3.0").isDouble());
  // Whole-valued doubles are still usable as ints.
  EXPECT_EQ(parse("3.0").asInt(), 3);
  EXPECT_THROW(parse("3.5").asInt(), Error);
}

TEST(JsonParse, LargeIntegersExact) {
  EXPECT_EQ(parse("9223372036854775807").asInt(), 9223372036854775807ll);
  EXPECT_EQ(parse("-9223372036854775808").asInt(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\tc\\d\"e\/f")").asString(), "a\nb\tc\\d\"e/f");
  EXPECT_EQ(parse(R"("Aé")").asString(), "A\xC3\xA9");
  EXPECT_EQ(parse(R"("€")").asString(), "\xE2\x82\xAC");  // euro sign
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\":1,}"), Error);
  EXPECT_THROW(parse("tru"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("1 2"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("\"bad\\q\""), Error);
  EXPECT_THROW(parse("\"ctrl\x01\""), Error);
}

TEST(JsonParse, ErrorCarriesLineAndColumn) {
  try {
    parse("{\n  \"a\": 1,\n  \"b\": ?\n}");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({
    "name": "CGRA1",
    "Number_of_PEs": 8,
    "PEs": {"0": "PE_no_mem", "1": "PE_mem"},
    "list": [1, [2, 3], {"x": null}]
  })");
  const Object& obj = v.asObject();
  EXPECT_EQ(obj.at("name").asString(), "CGRA1");
  EXPECT_EQ(obj.at("Number_of_PEs").asInt(), 8);
  EXPECT_EQ(obj.at("PEs").asObject().at("1").asString(), "PE_mem");
  const Array& list = obj.at("list").asArray();
  EXPECT_EQ(list[1].asArray()[1].asInt(), 3);
  EXPECT_TRUE(list[2].asObject().at("x").isNull());
}

TEST(JsonObject, PreservesInsertionOrder) {
  Object obj;
  obj["zeta"] = 1;
  obj["alpha"] = 2;
  obj["mid"] = 3;
  std::vector<std::string> keys;
  for (const auto& [k, v] : obj) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"zeta", "alpha", "mid"}));
}

TEST(JsonObject, FindAndContains) {
  Object obj;
  obj["a"] = 1;
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("b"));
  EXPECT_EQ(obj.find("a")->asInt(), 1);
  EXPECT_EQ(obj.find("b"), nullptr);
  EXPECT_THROW(obj.at("b"), Error);
}

TEST(JsonDump, RoundTripsComplexDocument) {
  const std::string src = R"({"a": [1, 2.5, "x\ny", true, null], "b": {"c": -7}})";
  const Value v = parse(src);
  const Value again = parse(v.dump());
  EXPECT_EQ(again.asObject().at("a").asArray()[2].asString(), "x\ny");
  EXPECT_EQ(again.asObject().at("b").asObject().at("c").asInt(), -7);
  EXPECT_DOUBLE_EQ(again.asObject().at("a").asArray()[1].asDouble(), 2.5);
}

TEST(JsonDump, CompactAndIndented) {
  Object obj;
  obj["k"] = Array{Value(1), Value(2)};
  const Value v(std::move(obj));
  EXPECT_EQ(v.dump(0), "{\"k\":[1,2]}");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"k\""), std::string::npos);
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v(std::string("a\x01" "b"));
  EXPECT_EQ(v.dump(0), "\"a\\u0001b\"");
  EXPECT_EQ(parse(v.dump()).asString(), std::string("a\x01" "b"));
}

TEST(JsonFile, WriteAndParseFile) {
  const std::string path = ::testing::TempDir() + "/cgra_json_test.json";
  Object obj;
  obj["answer"] = 42;
  writeFile(path, Value(std::move(obj)));
  const Value v = parseFile(path);
  EXPECT_EQ(v.asObject().at("answer").asInt(), 42);
  EXPECT_THROW(parseFile("/nonexistent/file.json"), Error);
}

TEST(JsonValue, TypeErrorsAreReported) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.asObject(), Error);
  EXPECT_THROW(v.asString(), Error);
  EXPECT_THROW(v.asArray()[0].asBool(), Error);
}

}  // namespace
}  // namespace cgra::json
