// Tests for the observability report layer: static schedule-quality metrics
// (sched/metrics), the combined static+runtime Report with its derived
// accessors and JSON/CSV exports (sim/report), deterministic key ordering
// (json::sortKeys), and the ASCII utilization heatmap.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/report.hpp"

namespace cgra {
namespace {

/// Schedules + simulates GCD on a 4-PE mesh with counters on.
struct Fixture {
  Composition comp;
  ScheduleReport report;
  SimResult sim;

  static Fixture make() {
    Fixture f{makeMesh(4), {}, {}};
    const apps::Workload w = apps::makeGcd(12, 18);
    const Cdfg graph = kir::lowerToCdfg(w.fn).graph;
    f.report = Scheduler(f.comp).schedule(ScheduleRequest(graph)).orThrow();
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : f.report.schedule.liveIns)
      liveIns[lb.var] = w.initialLocals.at(lb.var);
    HostMemory heap = w.heap;
    SimOptions opts;
    opts.collectCounters = true;
    f.sim = Simulator(f.comp, f.report.schedule).run(liveIns, heap, opts);
    return f;
  }
};

TEST(ScheduleQualityTest, ShapeMetricsAreConsistent) {
  const Fixture f = Fixture::make();
  const ScheduleQuality q =
      computeScheduleQuality(f.report.schedule, f.comp, &f.report.stats);
  EXPECT_EQ(q.length, f.report.schedule.length);
  EXPECT_EQ(q.numPEs, f.comp.numPEs());
  ASSERT_EQ(q.perPE.size(), f.comp.numPEs());
  EXPECT_EQ(q.totalOps, f.report.schedule.ops.size());
  EXPECT_GT(q.totalOps, 0u);
  EXPECT_GT(q.staticUtilization, 0.0);
  EXPECT_LE(q.staticUtilization, 1.0);
  EXPECT_GT(q.contextOccupancy, 0.0);
  EXPECT_LE(q.contextOccupancy, 1.0);
  double utilSum = 0.0;
  unsigned ops = 0, inserted = 0;
  bool sawZeroSlack = false;
  for (const PEQuality& pe : q.perPE) {
    EXPECT_LE(pe.busyCycles, q.length);
    EXPECT_DOUBLE_EQ(pe.utilization,
                     static_cast<double>(pe.busyCycles) / q.length);
    utilSum += pe.utilization;
    ops += pe.opsIssued;
    inserted += pe.insertedOps;
    if (pe.slack == 0) sawZeroSlack = true;
  }
  EXPECT_DOUBLE_EQ(q.staticUtilization, utilSum / q.numPEs);
  EXPECT_EQ(ops, q.totalOps);
  EXPECT_EQ(inserted, q.insertedOps);
  EXPECT_TRUE(sawZeroSlack) << "some PE must bound the schedule";
  EXPECT_DOUBLE_EQ(q.copyRatio,
                   static_cast<double>(q.insertedOps) / q.totalOps);
}

TEST(ReportTest, RuntimeAccessorsDeriveFromCounters) {
  const Fixture f = Fixture::make();
  const Report r =
      makeReport(f.report.schedule, f.comp, &f.report.stats, &f.sim);
  ASSERT_TRUE(r.hasRuntime);
  ASSERT_TRUE(r.counters.has_value());
  EXPECT_EQ(r.runCycles, f.sim.runCycles);

  // achievedUtilization == sum(busy) / (numPEs * runCycles), and the per-PE
  // view must average back to it.
  std::uint64_t busy = 0;
  double perPeSum = 0.0;
  for (PEId pe = 0; pe < f.comp.numPEs(); ++pe) {
    busy += r.counters->perPE[pe].busyCycles;
    perPeSum += r.peUtilization(pe);
  }
  const double expected =
      static_cast<double>(busy) /
      (static_cast<double>(f.comp.numPEs()) * f.sim.runCycles);
  EXPECT_DOUBLE_EQ(r.achievedUtilization(), expected);
  EXPECT_NEAR(perPeSum / f.comp.numPEs(), r.achievedUtilization(), 1e-12);
  EXPECT_GE(r.squashRate(), 0.0);
  EXPECT_LT(r.squashRate(), 1.0);
  EXPECT_GT(r.cyclesPerOp(), 0.0);
}

TEST(ReportTest, StaticOnlyReportFallsBackToStaticUtilization) {
  const Fixture f = Fixture::make();
  const Report r = makeReport(f.report.schedule, f.comp, &f.report.stats);
  EXPECT_FALSE(r.hasRuntime);
  EXPECT_FALSE(r.counters.has_value());
  EXPECT_DOUBLE_EQ(r.achievedUtilization(), r.staticUtilization());
  EXPECT_DOUBLE_EQ(r.squashRate(), 0.0);
  EXPECT_FALSE(r.toJson().asObject().contains("runtime"))
      << "static-only report must not fabricate a runtime section";
}

TEST(ReportTest, JsonIsKeySortedAndByteStable) {
  const Fixture f = Fixture::make();
  const Report r =
      makeReport(f.report.schedule, f.comp, &f.report.stats, &f.sim);
  const std::string dump = r.toJson().dump();
  EXPECT_EQ(dump, r.toJson().dump());
  // Spot-check lexicographic top-level order: "runtime" < "schedule".
  EXPECT_LT(dump.find("\"runtime\""), dump.find("\"schedule\""));
  // sortKeys orders nested objects too (Object preserves insertion order).
  json::Object inner;
  inner["b"] = 2;
  inner["a"] = 3;
  json::Object obj;
  obj["zebra"] = 1;
  obj["alpha"] = std::move(inner);
  EXPECT_EQ(json::sortKeys(json::Value(std::move(obj))).dump(0),
            "{\"alpha\":{\"a\":3,\"b\":2},\"zebra\":1}");
}

TEST(ReportTest, CsvHasOneRowPerPE) {
  const Fixture f = Fixture::make();
  const Report r =
      makeReport(f.report.schedule, f.comp, &f.report.stats, &f.sim);
  const std::string csv = r.toCsv();
  EXPECT_EQ(csv.compare(0, 3, "pe,"), 0);
  std::size_t rows = 0;
  for (char ch : csv)
    if (ch == '\n') ++rows;
  EXPECT_EQ(rows, 1u + f.comp.numPEs()) << "header plus one row per PE";
}

TEST(HeatmapTest, OneRowPerPEAndBoundedWidth) {
  const Fixture f = Fixture::make();
  const std::string map =
      utilizationHeatmap(f.report.schedule, f.comp,
                         &*f.sim.counters, 16);
  std::size_t rows = 0;
  for (char ch : map)
    if (ch == '\n') ++rows;
  EXPECT_GE(rows, static_cast<std::size_t>(f.comp.numPEs()));
  EXPECT_NE(map.find("PE0"), std::string::npos);
  // Runtime weighting must differ from the static view for a loop kernel:
  // the loop body dominates execution but not the context memory.
  const std::string staticMap =
      utilizationHeatmap(f.report.schedule, f.comp, nullptr, 16);
  EXPECT_NE(map, staticMap);
}

}  // namespace
}  // namespace cgra
