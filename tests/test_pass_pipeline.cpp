// Pass-pipeline equivalence tests. The scheduler was decomposed into
// explicit passes over a shared immutable ArchModel; these tests pin the
// refactor to the monolith's observable behaviour:
//  * schedule fingerprints over a 60-seed random-kernel corpus (with CSE /
//    unrolling mixed in) must match the checked-in golden file captured
//    from the pre-refactor scheduler;
//  * decision traces must still carry the pass-boundary phase spans
//    (setup / plan / finalize) in order, for a mappable kernel on a mesh
//    and on an irregular composition alike.
// The byte-level golden `explain` transcripts live in tests/golden/ and are
// diffed by the cli_explain_golden_* tests in tools/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "kir/random_kernel.hpp"
#include "sched/scheduler.hpp"

#ifndef CGRA_GOLDEN_DIR
#error "CGRA_GOLDEN_DIR must point at tests/golden"
#endif

namespace cgra {
namespace {

Composition compositionForSeed(std::uint64_t seed) {
  const unsigned idx = static_cast<unsigned>(seed % 12);
  if (idx < 6) return makeMesh(meshSizes()[idx]);
  return makeIrregular(irregularLabels()[idx - 6]);
}

/// One corpus line, exactly as captured into the golden file: either the
/// schedule fingerprint or "FAIL:<typed-reason>".
std::string corpusLine(std::uint64_t seed) {
  const kir::RandomKernel k = kir::generateRandomKernel(seed);
  kir::Function fn = k.fn;
  if (seed % 3 == 1) fn = kir::eliminateCommonSubexpressions(fn);
  if (seed % 4 == 2) fn = kir::unrollLoops(fn, 2, true);
  const kir::LoweringResult lowered = kir::lowerToCdfg(fn);
  Composition comp = compositionForSeed(seed);
  // Widen the budgets like the random-kernel property suite does, so the
  // corpus exercises scheduling rather than tiny context memories.
  comp = Composition(comp.name(), comp.pes(), comp.interconnect(), 1024, 64);
  const Scheduler scheduler(comp);
  const ScheduleReport r = scheduler.schedule(ScheduleRequest(lowered.graph));
  return std::to_string(seed) + " " +
         (r.ok ? std::to_string(r.schedule.fingerprint())
               : ("FAIL:" + std::string(failureReasonName(r.failure.reason))));
}

TEST(PassPipeline, RandomKernelFingerprintsMatchGolden) {
  const std::string path =
      std::string(CGRA_GOLDEN_DIR) + "/random_kernel_fingerprints.txt";
  // Regeneration mode (tools/regen_goldens.sh): rewrite the corpus from the
  // current scheduler instead of comparing. Intentional behavior changes
  // refresh the golden in the same commit; accidental ones fail the diff.
  if (std::getenv("CGRA_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    for (std::uint64_t seed = 1; seed <= 60; ++seed)
      out << corpusLine(seed) << "\n";
    return;
  }

  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing tests/golden corpus file";
  std::vector<std::string> expected;
  for (std::string line; std::getline(golden, line);)
    if (!line.empty()) expected.push_back(line);
  ASSERT_EQ(expected.size(), 60u);

  for (std::uint64_t seed = 1; seed <= 60; ++seed)
    EXPECT_EQ(corpusLine(seed), expected[seed - 1]) << "seed " << seed;
}

/// Collects the ordered phase-boundary markers of a run's trace.
std::vector<std::string> phaseSpans(const Trace& trace) {
  std::vector<std::string> spans;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.event(i);
    if (e.kind == TraceEventKind::PhaseBegin)
      spans.push_back("B:" + std::string(e.detail.str));
    else if (e.kind == TraceEventKind::PhaseEnd)
      spans.push_back("E:" + std::string(e.detail.str));
  }
  return spans;
}

TEST(PassPipeline, TraceCarriesPassBoundaries) {
  struct Case {
    Composition comp;
    Cdfg graph;
  };
  const Case cases[] = {
      {makeMesh(9), kir::lowerToCdfg(apps::makeAdpcm(8, 1).fn).graph},
      {makeIrregular('D'), kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph},
  };
  for (const Case& c : cases) {
    const Scheduler scheduler(c.comp);
    ScheduleRequest request(c.graph);
    request.trace.enabled = true;
    const ScheduleReport report = scheduler.schedule(request);
    ASSERT_TRUE(report.ok) << c.comp.name();
    ASSERT_NE(report.trace, nullptr);
    const std::vector<std::string> expected = {"B:setup", "E:setup", "B:plan",
                                               "E:plan", "B:finalize",
                                               "E:finalize"};
    EXPECT_EQ(phaseSpans(*report.trace), expected) << c.comp.name();
  }
}

TEST(PassPipeline, FailedRunClosesOpenPhaseSpan) {
  // An unmappable run must still emit balanced B/E pairs (the Chrome trace
  // contract) with the Failure event in between.
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph;
  SchedulerOptions opts;
  opts.maxContexts = 4;
  const Scheduler scheduler(comp, opts);
  ScheduleRequest request(graph);
  request.trace.enabled = true;
  const ScheduleReport report = scheduler.schedule(request);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure.reason, FailureReason::ContextBudget);
  const std::vector<std::string> expected = {"B:setup", "E:setup", "B:plan",
                                             "E:plan"};
  EXPECT_EQ(phaseSpans(*report.trace), expected);
}

}  // namespace
}  // namespace cgra
