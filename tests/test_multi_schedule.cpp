// Tests for multi-schedule context memories (§IV-A.3): packing several
// kernels into one shared context memory, invoking by start CCNT, register
// reuse across kernels, window isolation, and the packed-image round trip.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/multi.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

struct PackedDomain {
  std::vector<apps::Workload> workloads;
  std::vector<std::vector<VarId>> localToVar;
  Composition comp = makeMesh(6);
  PackedSchedules packed;
};

PackedDomain makeDomain() {
  PackedDomain d;
  d.workloads.push_back(apps::makeGcd(18, 12));
  d.workloads.push_back(apps::makeEwmaClip(6, 2));
  d.workloads.push_back(apps::makeDotProduct(5, 3));
  std::vector<Schedule> schedules;
  for (const apps::Workload& w : d.workloads) {
    kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
    schedules.push_back(Scheduler(d.comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule);
    d.localToVar.push_back(std::move(lowered.localToVar));
  }
  d.packed = packSchedules(schedules, d.comp);
  return d;
}

TEST(MultiSchedule, PlacementsAreContiguousAndOrdered) {
  const PackedDomain d = makeDomain();
  ASSERT_EQ(d.packed.placements.size(), 3u);
  unsigned expectedStart = 0;
  for (const SchedulePlacement& pl : d.packed.placements) {
    EXPECT_EQ(pl.startCcnt, expectedStart);
    EXPECT_GT(pl.length, 0u);
    expectedStart += pl.length;
  }
  EXPECT_EQ(d.packed.merged.length, expectedStart);
}

TEST(MultiSchedule, RegistersAreSharedNotSummed) {
  // Packing reuses physical registers across kernels (runs never overlap):
  // the merged per-PE demand is the max, not the sum.
  const PackedDomain d = makeDomain();
  std::vector<unsigned> individualMax(d.comp.numPEs(), 0);
  unsigned individualSum = 0;
  for (const apps::Workload& w : d.workloads) {
    kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
    const Schedule s = Scheduler(d.comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
    const RegAllocation alloc = allocateRegisters(s, d.comp);
    for (PEId p = 0; p < d.comp.numPEs(); ++p) {
      individualMax[p] = std::max(individualMax[p], alloc.physRegsUsed[p]);
      individualSum += alloc.physRegsUsed[p];
    }
  }
  unsigned mergedSum = 0;
  for (PEId p = 0; p < d.comp.numPEs(); ++p) {
    EXPECT_EQ(d.packed.merged.vregsPerPE[p], individualMax[p]);
    mergedSum += d.packed.merged.vregsPerPE[p];
  }
  EXPECT_LT(mergedSum, individualSum);
}

TEST(MultiSchedule, EachWindowRunsCorrectlyInAnyOrder) {
  const PackedDomain d = makeDomain();
  const Simulator sim(d.comp, d.packed.merged);

  // Invoke in reverse order — placements must be independent.
  for (std::size_t i = d.workloads.size(); i-- > 0;) {
    const apps::Workload& w = d.workloads[i];
    const SchedulePlacement& pl = d.packed.placements[i];

    HostMemory goldenHeap = w.heap;
    kir::Interpreter interp;
    const auto golden = interp.run(w.fn, w.initialLocals, goldenHeap);

    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : pl.liveIns)
      liveIns[lb.var] = w.initialLocals[lb.var];
    HostMemory heap = w.heap;
    const SimResult r = sim.runWindow(liveIns, heap, pl.liveIns, pl.liveOuts,
                                      pl.startCcnt, pl.startCcnt + pl.length);
    EXPECT_TRUE(heap == goldenHeap) << w.name;
    for (const auto& [var, value] : r.liveOuts)
      EXPECT_EQ(value, golden.locals[var]) << w.name;
  }
}

TEST(MultiSchedule, RepeatedInvocationsOfOneWindow) {
  const PackedDomain d = makeDomain();
  const Simulator sim(d.comp, d.packed.merged);
  const SchedulePlacement& pl = d.packed.placements[0];  // gcd(18, 12)

  std::map<VarId, std::int32_t> liveIns;
  // gcd's variables: x, y at locals 0, 1.
  liveIns[d.localToVar[0][0]] = 18;
  liveIns[d.localToVar[0][1]] = 12;
  HostMemory heap;
  const SimResult r1 = sim.runWindow(liveIns, heap, pl.liveIns, pl.liveOuts,
                                     pl.startCcnt, pl.startCcnt + pl.length);
  EXPECT_EQ(r1.liveOuts.at(d.localToVar[0][0]), 6);

  liveIns[d.localToVar[0][0]] = 81;
  liveIns[d.localToVar[0][1]] = 54;
  const SimResult r2 = sim.runWindow(liveIns, heap, pl.liveIns, pl.liveOuts,
                                     pl.startCcnt, pl.startCcnt + pl.length);
  EXPECT_EQ(r2.liveOuts.at(d.localToVar[0][0]), 27);
}

TEST(MultiSchedule, PackedImagesRoundTripAndRun) {
  const PackedDomain d = makeDomain();
  const ContextImages img = encodePacked(d.packed, d.comp);
  EXPECT_EQ(img.length, d.packed.merged.length);
  const Schedule dec = decodeContexts(img, d.comp);
  const Simulator sim(d.comp, dec);

  const apps::Workload& w = d.workloads[1];  // ewma
  const SchedulePlacement& pl = d.packed.placements[1];
  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  interp.run(w.fn, w.initialLocals, goldenHeap);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : pl.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  sim.runWindow(liveIns, heap, pl.liveIns, pl.liveOuts, pl.startCcnt,
                pl.startCcnt + pl.length);
  EXPECT_TRUE(heap == goldenHeap);
}

TEST(MultiSchedule, RejectsOverflowingContextMemory) {
  const Composition comp = makeMesh(4);
  std::vector<Schedule> schedules;
  unsigned total = 0;
  for (int i = 0; i < 3; ++i) {
    kir::LoweringResult lowered =
        kir::lowerToCdfg(apps::makeGcd(18, 12).fn);
    schedules.push_back(Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule);
    total += schedules.back().length;
  }
  // A context memory one entry too small for the pack.
  const Composition tight("tight", comp.pes(), comp.interconnect(), total - 1,
                          comp.cboxSlots());
  EXPECT_THROW(packSchedules(schedules, tight), Error);
  EXPECT_NO_THROW(packSchedules(schedules, comp));
  EXPECT_THROW(packSchedules({}, comp), Error);
}

}  // namespace
}  // namespace cgra
