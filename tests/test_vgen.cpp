// Unit tests for the Verilog generator: structural completeness (one module
// per PE + the four static modules + top), operation case arms matching the
// PE's supported set, DMA ports only on DMA PEs, interconnect wiring in the
// top module, and stability across compositions.
#include <gtest/gtest.h>

#include "arch/factory.hpp"
#include "vgen/verilog.hpp"

namespace cgra {
namespace {

TEST(Verilog, EmitsAllModules) {
  const Composition comp = makeMesh(4);
  const std::string rtl = generateVerilog(comp);
  for (const char* mod :
       {"module context_memory", "module regfile", "module cbox",
        "module ccu", "module pe0", "module pe1", "module pe2", "module pe3",
        "module mesh4_top"})
    EXPECT_NE(rtl.find(mod), std::string::npos) << mod;
  const VerilogStats stats = analyzeVerilog(rtl);
  EXPECT_EQ(stats.modules, 4u + 4u + 1u);
  EXPECT_GT(stats.lines, 200u);
  EXPECT_GT(stats.alwaysBlocks, 4u);
}

TEST(Verilog, AluCaseArmsFollowOperationSet) {
  // Composition F: only PEs 1 and 6 multiply.
  const Composition comp = makeIrregular('F');
  const std::string rtl = generateVerilog(comp);

  auto peModule = [&](PEId p) {
    const std::string tag = "module pe" + std::to_string(p) + " ";
    const std::size_t begin = rtl.find(tag);
    EXPECT_NE(begin, std::string::npos);
    const std::size_t end = rtl.find("endmodule", begin);
    return rtl.substr(begin, end - begin);
  };

  EXPECT_NE(peModule(1).find("// IMUL"), std::string::npos);
  EXPECT_NE(peModule(6).find("// IMUL"), std::string::npos);
  EXPECT_EQ(peModule(0).find("// IMUL"), std::string::npos);
  EXPECT_EQ(peModule(7).find("// IMUL"), std::string::npos);
  // All PEs keep the basic integer set and comparisons.
  for (PEId p = 0; p < 8; ++p) {
    EXPECT_NE(peModule(p).find("// IADD"), std::string::npos) << p;
    EXPECT_NE(peModule(p).find("// IFLT"), std::string::npos) << p;
  }
}

TEST(Verilog, DmaPortsOnlyOnDmaPEs) {
  const Composition comp = makeMesh(9);
  const std::string rtl = generateVerilog(comp);
  for (PEId p = 0; p < comp.numPEs(); ++p) {
    const std::string tag = "module pe" + std::to_string(p) + " ";
    const std::size_t begin = rtl.find(tag);
    const std::size_t end = rtl.find("endmodule", begin);
    const std::string body = rtl.substr(begin, end - begin);
    if (comp.pe(p).hasDma())
      EXPECT_NE(body.find("dma_req"), std::string::npos) << p;
    else
      EXPECT_EQ(body.find("dma_req"), std::string::npos) << p;
  }
}

TEST(Verilog, TopModuleWiresInterconnect) {
  const Composition comp = makeIrregular('B');  // unidirectional ring
  const std::string rtl = generateVerilog(comp);
  // PE1 reads PE0's output register: .in0(rf_out[0]) inside u_pe1.
  EXPECT_NE(rtl.find(".in0(rf_out[0])"), std::string::npos);
  // The ring is unidirectional: pe0 sources only from pe7.
  EXPECT_NE(rtl.find(".in0(rf_out[7])"), std::string::npos);
}

TEST(Verilog, InputPortsMatchSourceCounts) {
  const Composition comp = makeMesh(6);
  const std::string rtl = generateVerilog(comp);
  for (PEId p = 0; p < comp.numPEs(); ++p) {
    const std::string tag = "module pe" + std::to_string(p) + " ";
    const std::size_t begin = rtl.find(tag);
    const std::size_t end = rtl.find("endmodule", begin);
    const std::string body = rtl.substr(begin, end - begin);
    const std::size_t numSources = comp.interconnect().sources(p).size();
    for (unsigned i = 0; i < numSources; ++i)
      EXPECT_NE(body.find("in" + std::to_string(i) + ","), std::string::npos)
          << "pe" << p << " in" << i;
    EXPECT_EQ(body.find("input  wire [31:0] in" + std::to_string(numSources)),
              std::string::npos);
  }
}

TEST(Verilog, SignedOpsUseSignedComparisons) {
  const Composition comp = makeMesh(4);
  const std::string rtl = generateVerilog(comp);
  EXPECT_NE(rtl.find("$signed(op_a) < $signed(op_b)"), std::string::npos);
  EXPECT_NE(rtl.find(">>>"), std::string::npos) << "arithmetic shift right";
}

TEST(Verilog, CommentsCanBeDisabled) {
  VerilogOptions opts;
  opts.emitComments = false;
  const std::string rtl = generateVerilog(makeMesh(4), opts);
  EXPECT_EQ(rtl.find("// ----"), std::string::npos);
  EXPECT_NE(rtl.find("module pe0"), std::string::npos);
}

TEST(Verilog, GrowsWithCompositionSize) {
  const std::size_t lines4 = analyzeVerilog(generateVerilog(makeMesh(4))).lines;
  const std::size_t lines16 =
      analyzeVerilog(generateVerilog(makeMesh(16))).lines;
  EXPECT_GT(lines16, lines4 + 400) << "per-PE modules dominate";
}

}  // namespace
}  // namespace cgra
