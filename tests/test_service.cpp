// Batch compile service (artifact/service.hpp): JSONL request/response
// framing, request-order streaming, per-key dedup of concurrent identical
// requests, store-backed cache hits, per-line error reporting, artifact
// attachment, and backpressure with a tiny in-flight window.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"
#include "artifact/service.hpp"
#include "artifact/store.hpp"
#include "json/json.hpp"

namespace cgra {
namespace {

std::vector<json::Value> runService(const std::string& requests,
                                    artifact::ArtifactStore& store,
                                    artifact::ServiceOptions options,
                                    artifact::ServiceStats* statsOut = nullptr) {
  std::istringstream in(requests);
  std::ostringstream out;
  const artifact::ServiceStats stats =
      artifact::serveJsonl(in, out, store, options);
  if (statsOut != nullptr) *statsOut = stats;

  std::vector<json::Value> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "each response is exactly one line";
    responses.push_back(json::parse(line));
  }
  return responses;
}

TEST(Service, AnswersInRequestOrderAndDedupesIdenticalJobs) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"comp\":\"mesh9\",\"kernel\":\"dotprod\"}\n",
      store, options, &stats);

  ASSERT_EQ(responses.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const json::Object& o = responses[i].asObject();
    EXPECT_EQ(o.at("id").asInt(), static_cast<std::int64_t>(i + 1))
        << "responses stream in request order";
    EXPECT_TRUE(o.at("ok").asBool());
    EXPECT_FALSE(o.at("fingerprint").asString().empty());
  }
  // Identical requests share one key (and one scheduling run); the distinct
  // one does not.
  const std::string key1 = responses[0].asObject().at("key").asString();
  EXPECT_EQ(responses[1].asObject().at("key").asString(), key1);
  EXPECT_NE(responses[2].asObject().at("key").asString(), key1);
  EXPECT_EQ(responses[0].asObject().at("fingerprint").asString(),
            responses[1].asObject().at("fingerprint").asString());

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.parseErrors, 0u);
  EXPECT_EQ(stats.scheduled, 2u) << "the duplicate must not be rescheduled";
  EXPECT_EQ(stats.cacheHits + stats.deduped, 1u);
}

TEST(Service, WarmStoreAnswersWithoutScheduling) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::string request =
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n";

  runService(request, store, options);  // cold: fills the store
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses =
      runService(request, store, options, &stats);

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].asObject().at("ok").asBool());
  EXPECT_TRUE(responses[0].asObject().at("cached").asBool());
  EXPECT_EQ(stats.scheduled, 0u);
  EXPECT_EQ(stats.cacheHits, 1u);
}

TEST(Service, ReportsBadLinesWithoutAbortingTheSession) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "this is not json\n"
      "{\"id\":2,\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"comp\":\"mesh4\",\"kernel\":\"no-such-kernel\"}\n"
      "{\"id\":4,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n",
      store, options, &stats);

  ASSERT_EQ(responses.size(), 4u);
  EXPECT_FALSE(responses[0].asObject().at("ok").asBool());
  EXPECT_FALSE(responses[1].asObject().at("ok").asBool())
      << "a request without comp is malformed";
  EXPECT_FALSE(responses[2].asObject().at("ok").asBool());
  EXPECT_FALSE(
      responses[2].asObject().at("error").asString().empty());
  EXPECT_TRUE(responses[3].asObject().at("ok").asBool())
      << "good requests after bad lines are still served";
  EXPECT_GE(stats.parseErrors, 2u);
  EXPECT_EQ(stats.requests, 4u);
}

TEST(Service, UnmappableJobsAnswerWithTypedFailure) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\",\"maxContexts\":4}\n",
      store, options);
  ASSERT_EQ(responses.size(), 1u);
  const json::Object& o = responses[0].asObject();
  EXPECT_FALSE(o.at("ok").asBool());
  EXPECT_EQ(o.at("failureReason").asString(), "context-budget");
  EXPECT_FALSE(o.at("error").asString().empty());
}

TEST(Service, AttachesDeserializableArtifactsOnRequest) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\",\"artifact\":true}\n",
      store, options);
  ASSERT_EQ(responses.size(), 1u);
  const json::Object& o = responses[0].asObject();
  ASSERT_TRUE(o.at("ok").asBool());

  const artifact::ScheduleArtifact art =
      artifact::ScheduleArtifact::fromJson(o.at("artifact"));
  EXPECT_TRUE(art.ok);
  EXPECT_EQ(std::to_string(art.schedule.fingerprint()),
            o.at("fingerprint").asString());
  EXPECT_TRUE(art.contexts.has_value())
      << "attached artifacts carry deployable context images";
}

TEST(Service, TinyInFlightWindowPreservesOrderUnderBackpressure) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 4;
  options.maxInFlight = 1;  // strictest window: one request at a time
  std::string requests;
  for (int i = 1; i <= 6; ++i)
    requests += "{\"id\":" + std::to_string(i) +
                ",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n";
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses =
      runService(requests, store, options, &stats);

  ASSERT_EQ(responses.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(responses[i].asObject().at("id").asInt(), i + 1);
    EXPECT_TRUE(responses[i].asObject().at("ok").asBool());
  }
  EXPECT_EQ(stats.scheduled, 1u);
  EXPECT_EQ(stats.cacheHits, 5u)
      << "with a window of 1 every repeat hits the store";
}

TEST(Service, EchoesArbitraryIdValuesVerbatim) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::vector<json::Value> responses = runService(
      "{\"id\":\"job-a\",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n",
      store, options);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].asObject().at("id").asString(), "job-a");
  // A request without an id still gets a response carrying a null id.
  EXPECT_TRUE(responses[1].asObject().at("id").isNull());
}

}  // namespace
}  // namespace cgra
