// Concurrent compile server (artifact/service.hpp): v1 wire protocol (every
// response versioned, typed error objects), JSONL framing and request-order
// streaming, per-key dedup across sessions, store-backed cache hits,
// admission control (per-connection in-flight pause + global queue bound
// with `overloaded` shedding), graceful drain (`shutdown` shedding), live
// {"stats":true} metrics, unix/TCP listeners with the stale-socket guard,
// and an 8-client concurrent stress run clean under the tsan preset.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "artifact/artifact.hpp"
#include "artifact/client.hpp"
#include "artifact/service.hpp"
#include "artifact/store.hpp"
#include "json/json.hpp"

#ifdef __unix__
#include <sys/stat.h>
#endif

namespace cgra {
namespace {

namespace sfs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  sfs::path path;
  explicit TempDir(const std::string& tag) {
    path = sfs::temp_directory_path() /
           ("cgra_service_test_" + tag + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    sfs::remove_all(path);
    sfs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    sfs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<json::Value> parseLines(const std::string& text) {
  std::vector<json::Value> docs;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "each response is exactly one line";
    docs.push_back(json::parse(line));
  }
  return docs;
}

std::vector<json::Value> runService(const std::string& requests,
                                    artifact::ArtifactStore& store,
                                    artifact::ServiceOptions options,
                                    artifact::ServiceStats* statsOut = nullptr) {
  std::istringstream in(requests);
  std::ostringstream out;
  const artifact::ServiceStats stats =
      artifact::serveJsonl(in, out, store, options);
  if (statsOut != nullptr) *statsOut = stats;
  return parseLines(out.str());
}

std::string errorCode(const json::Value& response) {
  const json::Object& o = response.asObject();
  EXPECT_FALSE(o.at("ok").asBool());
  return o.at("error").asObject().at("code").asString();
}

/// Polls `pred` for up to ~10 s; the generous ceiling keeps sanitizer runs
/// from flaking while real waits stay in the milliseconds.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(Service, AnswersInRequestOrderAndDedupesIdenticalJobs) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"comp\":\"mesh9\",\"kernel\":\"dotprod\"}\n",
      store, options, &stats);

  ASSERT_EQ(responses.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const json::Object& o = responses[i].asObject();
    EXPECT_EQ(o.at("v").asInt(), artifact::kWireVersion)
        << "every response carries the wire protocol version";
    EXPECT_EQ(o.at("id").asInt(), static_cast<std::int64_t>(i + 1))
        << "responses stream in request order";
    EXPECT_TRUE(o.at("ok").asBool());
    EXPECT_FALSE(o.at("fingerprint").asString().empty());
  }
  // Identical requests share one key (and one scheduling run); the distinct
  // one does not.
  const std::string key1 = responses[0].asObject().at("key").asString();
  EXPECT_EQ(responses[1].asObject().at("key").asString(), key1);
  EXPECT_NE(responses[2].asObject().at("key").asString(), key1);
  EXPECT_EQ(responses[0].asObject().at("fingerprint").asString(),
            responses[1].asObject().at("fingerprint").asString());

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.parseErrors, 0u);
  EXPECT_EQ(stats.scheduled, 2u) << "the duplicate must not be rescheduled";
  EXPECT_EQ(stats.cacheHits + stats.deduped, 1u);
}

TEST(Service, WarmStoreAnswersWithoutScheduling) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::string request =
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n";

  runService(request, store, options);  // cold: fills the store
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses =
      runService(request, store, options, &stats);

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].asObject().at("ok").asBool());
  EXPECT_TRUE(responses[0].asObject().at("cached").asBool());
  EXPECT_EQ(stats.scheduled, 0u);
  EXPECT_EQ(stats.cacheHits, 1u);
}

TEST(Service, ReportsBadLinesWithTypedErrorsWithoutAbortingTheSession) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "this is not json\n"
      "{\"id\":2,\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"comp\":\"mesh4\",\"kernel\":\"no-such-kernel\"}\n"
      "{\"id\":4,\"comp\":\"nope99\",\"kernel\":\"gcd\"}\n"
      "{\"id\":5,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n",
      store, options, &stats);

  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(errorCode(responses[0]), "parse");
  EXPECT_EQ(errorCode(responses[1]), "parse")
      << "a request without comp is malformed";
  EXPECT_EQ(errorCode(responses[2]), "unknown_comp");
  EXPECT_EQ(errorCode(responses[3]), "unknown_comp");
  EXPECT_FALSE(responses[2]
                   .asObject()
                   .at("error")
                   .asObject()
                   .at("message")
                   .asString()
                   .empty());
  EXPECT_TRUE(responses[4].asObject().at("ok").asBool())
      << "good requests after bad lines are still served";
  for (const json::Value& r : responses)
    EXPECT_EQ(r.asObject().at("v").asInt(), artifact::kWireVersion);
  EXPECT_GE(stats.parseErrors, 4u);
  EXPECT_EQ(stats.requests, 5u);
}

TEST(Service, UnmappableJobsAnswerWithTypedFailure) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\",\"maxContexts\":4}\n",
      store, options);
  ASSERT_EQ(responses.size(), 1u);
  const json::Object& o = responses[0].asObject();
  EXPECT_FALSE(o.at("ok").asBool());
  const json::Object& err = o.at("error").asObject();
  EXPECT_EQ(err.at("code").asString(), "unmappable");
  EXPECT_EQ(err.at("reason").asString(), "context-budget");
  EXPECT_FALSE(err.at("message").asString().empty());
}

TEST(Service, AttachesDeserializableArtifactsOnRequest) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\",\"artifact\":true}\n",
      store, options);
  ASSERT_EQ(responses.size(), 1u);
  const json::Object& o = responses[0].asObject();
  ASSERT_TRUE(o.at("ok").asBool());

  const artifact::ScheduleArtifact art =
      artifact::ScheduleArtifact::fromJson(o.at("artifact"));
  EXPECT_TRUE(art.ok);
  EXPECT_EQ(std::to_string(art.schedule.fingerprint()),
            o.at("fingerprint").asString());
  EXPECT_TRUE(art.contexts.has_value())
      << "attached artifacts carry deployable context images";
}

TEST(Service, TinyInFlightWindowPreservesOrderUnderBackpressure) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 4;
  options.maxInFlight = 1;  // strictest window: one request at a time
  std::string requests;
  for (int i = 1; i <= 6; ++i)
    requests += "{\"id\":" + std::to_string(i) +
                ",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n";
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses =
      runService(requests, store, options, &stats);

  ASSERT_EQ(responses.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(responses[i].asObject().at("id").asInt(), i + 1);
    EXPECT_TRUE(responses[i].asObject().at("ok").asBool());
  }
  EXPECT_EQ(stats.scheduled, 1u);
  EXPECT_EQ(stats.cacheHits, 5u)
      << "with a window of 1 every repeat hits the store";
}

TEST(Service, EchoesArbitraryIdValuesVerbatim) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  const std::vector<json::Value> responses = runService(
      "{\"id\":\"job-a\",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n",
      store, options);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].asObject().at("id").asString(), "job-a");
  // A request without an id still gets a response carrying a null id.
  EXPECT_TRUE(responses[1].asObject().at("id").isNull());
}

TEST(Service, StatsRequestAnswersLiveMetrics) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  options.maxInFlight = 1;  // serialize: the counters below are then exact
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"stats\":true}\n",
      store, options, &stats);

  ASSERT_EQ(responses.size(), 3u);
  const json::Object& o = responses[2].asObject();
  EXPECT_TRUE(o.at("ok").asBool());
  const json::Object& doc = o.at("stats").asObject();
  const json::Object& svc = doc.at("service").asObject();
  EXPECT_EQ(svc.at("requests").asInt(), 3);
  EXPECT_EQ(svc.at("scheduled").asInt(), 1);
  EXPECT_EQ(svc.at("cacheHits").asInt(), 1);
  EXPECT_GE(svc.at("latencyCount").asInt(), 2);
  EXPECT_GE(svc.at("latencyP99Us").asDouble(), svc.at("latencyP50Us").asDouble());
  // The store section carries the shared-cache hit rate.
  const json::Object& st = doc.at("store").asObject();
  EXPECT_EQ(st.at("hits").asInt(), 1);
  EXPECT_GT(st.at("hitRatePct").asDouble(), 0.0);
  // Per-connection counters list this very session.
  EXPECT_FALSE(doc.at("connections").asArray().empty());
  EXPECT_EQ(stats.statsRequests, 1u);
}

TEST(Service, StatsHeavyTrafficDoesNotPerturbCompileLatency) {
  // Regression: control-plane requests ({"stats":true}, {"metrics":true})
  // used to be recorded into the same latency histogram as compile
  // requests, so a stats-polling client dragged the CI-gated compile p50
  // into the microsecond range. They now land in a separate histogram.
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  std::string requests =
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n";
  constexpr int kStatsProbes = 50;
  for (int i = 0; i < kStatsProbes; ++i)
    requests += "{\"id\":" + std::to_string(100 + i) + ",\"stats\":true}\n";
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses =
      runService(requests, store, options, &stats);
  ASSERT_EQ(responses.size(), 2u + kStatsProbes);

  EXPECT_EQ(stats.latencyCount, 2u)
      << "only compile requests may enter the compile-latency histogram";
  EXPECT_EQ(stats.controlLatencyCount,
            static_cast<std::uint64_t>(kStatsProbes));
  EXPECT_EQ(stats.statsRequests, static_cast<std::uint64_t>(kStatsProbes));
  // Every stats response snapshots the live counters; none of them may see
  // control traffic leaking into the compile count.
  for (std::size_t i = 2; i < responses.size(); ++i) {
    const json::Object& svc = responses[i]
                                  .asObject()
                                  .at("stats")
                                  .asObject()
                                  .at("service")
                                  .asObject();
    EXPECT_LE(svc.at("latencyCount").asInt(), 2);
  }
}

TEST(Service, MetricsRequestAnswersPrometheusExposition) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"metrics\":true}\n",
      store, options, &stats);

  ASSERT_EQ(responses.size(), 3u);
  const json::Object& o = responses[2].asObject();
  EXPECT_TRUE(o.at("ok").asBool());
  EXPECT_EQ(o.at("id").asInt(), 3);
  const std::string text = o.at("metrics").asString();
  // The exposition is scraped mid-session: both compile requests have been
  // answered, the metrics request itself is counted as read.
  EXPECT_NE(text.find("# TYPE cgra_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("cgra_scheduled_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cgra_compile_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("cgra_compile_latency_us_count 2\n"),
            std::string::npos);
  EXPECT_EQ(stats.statsRequests, 1u)
      << "metrics probes count as control-plane traffic";
}

TEST(Service, AccessLogSpansSumToReportedTotal) {
  TempDir dir("accesslog");
  const std::string logPath = (dir.path / "access.jsonl").string();
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  options.maxInFlight = 1;  // serialize: line order and cacheHit are exact
  options.accessLogPath = logPath;
  artifact::ServiceStats stats;
  const std::vector<json::Value> responses = runService(
      "{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
      "{\"id\":3,\"bad\":1}\n"
      "{\"id\":4,\"stats\":true}\n",
      store, options, &stats);
  ASSERT_EQ(responses.size(), 4u);

  std::ifstream in(logPath);
  ASSERT_TRUE(in.good()) << "access log must exist at " << logPath;
  std::vector<json::Value> lines;
  for (std::string line; std::getline(in, line);)
    lines.push_back(json::parse(line));
  ASSERT_EQ(lines.size(), 4u) << "one access-log line per request";

  for (const json::Value& v : lines) {
    const json::Object& o = v.asObject();
    // Span additivity: the breakdown accounts for every microsecond of the
    // reported end-to-end latency.
    const std::int64_t total = o.at("totalUs").asInt();
    const std::int64_t sum = o.at("admitUs").asInt() +
                             o.at("queueUs").asInt() +
                             o.at("serviceUs").asInt() +
                             o.at("writeUs").asInt();
    EXPECT_EQ(sum, total);
    EXPECT_GE(o.at("serviceUs").asInt(),
              o.at("storeUs").asInt() + o.at("scheduleUs").asInt() +
                  o.at("serializeUs").asInt())
        << "service time contains its sub-spans";
    EXPECT_EQ(o.at("peer").asString(), "stream");
  }
  EXPECT_EQ(lines[0].asObject().at("outcome").asString(), "ok");
  EXPECT_FALSE(lines[0].asObject().at("cacheHit").asBool());
  EXPECT_TRUE(lines[1].asObject().at("cacheHit").asBool() ||
              lines[1].asObject().at("outcome").asString() == "ok");
  EXPECT_EQ(lines[2].asObject().at("outcome").asString(), "parse");
  EXPECT_EQ(lines[3].asObject().at("outcome").asString(), "stats");
  EXPECT_EQ(lines[0].asObject().at("key").asString(),
            lines[1].asObject().at("key").asString());
  EXPECT_EQ(lines[0].asObject().at("key").asString().size(), 12u);
}

#ifdef __unix__

/// A FIFO-backed kernelFile deterministically blocks the worker inside
/// parseKernelFile (opening a FIFO for reading blocks until a writer
/// appears), holding one admitted job in flight for as long as a test
/// needs; `release()` unblocks it with unparsable bytes, so the job answers
/// `unknown_comp`.
struct BlockingKernel {
  TempDir dir;
  std::string path;
  explicit BlockingKernel(const std::string& tag) : dir("fifo_" + tag) {
    path = (dir.path / "kernel.fifo").string();
    EXPECT_EQ(::mkfifo(path.c_str(), 0600), 0);
  }
  std::string request(int id) const {
    return "{\"id\":" + std::to_string(id) +
           ",\"comp\":\"mesh4\",\"kernelFile\":\"" + path + "\"}\n";
  }
  void release() const {
    std::ofstream w(path);
    w << "not a kernel\n";
  }
};

TEST(Service, OverloadShedsWithTypedErrorInsteadOfStalling) {
  BlockingKernel fifo("overload");
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  options.maxInFlight = 8;  // the per-connection cap must not kick in
  options.queueBound = 1;   // one admitted job fills the service
  artifact::Service service(store, options);

  std::istringstream in(fifo.request(1) +
                        "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
                        "{\"id\":3,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
                        "{\"id\":4,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n");
  std::ostringstream out;
  std::thread session([&] { service.serveStream(in, out); });
  // Requests 2-4 shed synchronously (the FIFO job holds the only queue
  // slot); only then unblock it.
  ASSERT_TRUE(eventually([&] { return service.stats().requests == 4; }));
  EXPECT_EQ(service.stats().shedOverload, 3u);
  fifo.release();
  session.join();

  const std::vector<json::Value> responses = parseLines(out.str());
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(errorCode(responses[0]), "unknown_comp")
      << "the blocked job still answers (its kernel bytes do not parse)";
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(responses[i].asObject().at("id").asInt(), i + 1)
        << "shed responses keep the request order";
    EXPECT_EQ(errorCode(responses[i]), "overloaded");
  }
  EXPECT_EQ(service.stats().scheduled, 0u) << "shed work never runs";
}

TEST(Service, DrainShedsNotYetAdmittedRequestsAndAnswersEverything) {
  BlockingKernel fifo("drain");
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  options.maxInFlight = 1;  // requests 2-4 queue behind the blocked job
  artifact::Service service(store, options);

  std::istringstream in(fifo.request(1) +
                        "{\"id\":2,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
                        "{\"id\":3,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n"
                        "{\"id\":4,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}\n");
  std::ostringstream out;
  std::thread session([&] { service.serveStream(in, out); });
  ASSERT_TRUE(eventually([&] { return service.stats().requests == 1; }));

  service.drain();  // stream-only: flips to draining and returns
  ASSERT_TRUE(eventually([&] { return service.stats().requests == 4; }));
  fifo.release();
  session.join();

  const std::vector<json::Value> responses = parseLines(out.str());
  ASSERT_EQ(responses.size(), 4u)
      << "drain answers every accepted request before the session ends";
  EXPECT_EQ(errorCode(responses[0]), "unknown_comp");
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(errorCode(responses[i]), "shutdown");
  EXPECT_EQ(service.stats().shedShutdown, 3u);
  EXPECT_EQ(service.stats().scheduled, 0u);
}

TEST(Service, RefusesToUnlinkNonSocketFiles) {
  TempDir dir("stale");
  const std::string path = (dir.path / "precious.json").string();
  {
    std::ofstream f(path);
    f << "{\"not\":\"a socket\"}";
  }
  artifact::ArtifactStore store;
  artifact::Service service(store);
  EXPECT_THROW(service.addUnixListener(path), Error);
  EXPECT_TRUE(sfs::exists(path)) << "the non-socket file must survive";
  // The wrapper goes through the same guard.
  EXPECT_THROW(artifact::serveUnixSocket(path, store, {}, 1), Error);
  EXPECT_TRUE(sfs::exists(path));
}

TEST(Service, ReplacesStaleSocketFiles) {
  TempDir dir("resock");
  const std::string path = (dir.path / "serve.sock").string();
  artifact::ArtifactStore store;
  {
    artifact::Service service(store);
    service.addUnixListener(path);  // leaves a socket file behind on close
  }
  EXPECT_TRUE(sfs::exists(path));
  artifact::Service service(store);
  EXPECT_NO_THROW(service.addUnixListener(path))
      << "a stale socket from a dead server is replaced";
}

TEST(Service, TcpRoundTripStreamsInRequestOrder) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  ASSERT_NE(port, 0u);
  service.start();

  artifact::JsonlClient client = artifact::JsonlClient::connectTcp(port);
  for (int i = 1; i <= 5; ++i)
    client.sendLine("{\"id\":" + std::to_string(i) +
                    ",\"comp\":\"mesh4\",\"kernel\":\"" +
                    (i % 2 == 0 ? "gcd" : "ewma") + "\"}");
  client.shutdownWrite();  // half-close: the batch must still be answered
  std::string line;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.recvLine(line)) << "response " << i;
    const json::Value doc = json::parse(line);
    const json::Object& o = doc.asObject();
    EXPECT_EQ(o.at("id").asInt(), i);
    EXPECT_TRUE(o.at("ok").asBool());
    EXPECT_EQ(o.at("v").asInt(), artifact::kWireVersion);
  }
  EXPECT_FALSE(client.recvLine(line)) << "server closes after the batch";
  client.close();

  service.drain();
  service.stop();
  const artifact::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.connectionsAccepted, 1u);
  EXPECT_EQ(stats.connectionsClosed, 1u);
}

TEST(Service, DrainClosesIdleSocketClientsGracefully) {
  TempDir dir("sockdrain");
  const std::string path = (dir.path / "serve.sock").string();
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  artifact::Service service(store, options);
  service.addUnixListener(path);
  service.start();

  artifact::JsonlClient client = artifact::JsonlClient::connectUnix(path);
  client.sendLine("{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}");
  std::string line;
  ASSERT_TRUE(client.recvLine(line));
  EXPECT_TRUE(json::parse(line).asObject().at("ok").asBool());

  service.notifyDrain();  // what a SIGTERM handler runs
  EXPECT_FALSE(client.recvLine(line))
      << "drain closes the idle connection after answering everything";
  service.waitDone();
  service.stop();
  EXPECT_EQ(service.stats().connectionsClosed, 1u);
  EXPECT_FALSE(sfs::exists(path)) << "drain unlinks the unix socket";
}

TEST(Service, MaxClientsRefusesExtraConnectionsWithTypedError) {
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 1;
  options.maxClients = 1;
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  service.start();

  artifact::JsonlClient first = artifact::JsonlClient::connectTcp(port);
  first.sendLine("{\"id\":1,\"comp\":\"mesh4\",\"kernel\":\"gcd\"}");
  std::string line;
  ASSERT_TRUE(first.recvLine(line)) << "the first client is served";

  artifact::JsonlClient second = artifact::JsonlClient::connectTcp(port);
  ASSERT_TRUE(second.recvLine(line));
  EXPECT_EQ(errorCode(json::parse(line)), "overloaded");
  EXPECT_FALSE(second.recvLine(line)) << "refused connections are closed";
  second.close();
  first.close();

  service.drain();
  service.stop();
  EXPECT_EQ(service.stats().connectionsRefused, 1u);
  EXPECT_EQ(service.stats().connectionsAccepted, 1u);
}

TEST(Service, HalfCloseWithBacklogBeyondTheCapAnswersEveryLine) {
  // A client may write a whole batch and shut down its write side before
  // the first response: lines buffered past the in-flight cap must still
  // be answered after the EOF is seen (the resume path must not skip
  // half-closed connections).
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  options.maxInFlight = 2;  // far fewer than the buffered batch
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  service.start();

  artifact::JsonlClient client = artifact::JsonlClient::connectTcp(port);
  for (int i = 1; i <= 20; ++i)
    client.sendLine("{\"id\":" + std::to_string(i) +
                    ",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}");
  client.shutdownWrite();
  std::string line;
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(client.recvLine(line)) << "response " << i;
    const json::Value doc = json::parse(line);
    EXPECT_EQ(doc.asObject().at("id").asInt(), i);
    EXPECT_TRUE(doc.asObject().at("ok").asBool());
  }
  EXPECT_FALSE(client.recvLine(line)) << "server closes after the batch";
  client.close();
  service.drain();
  service.stop();
  EXPECT_EQ(service.stats().requests, 20u);
}

TEST(Service, SlowReaderCannotStarveTheWorkerPool) {
  // A client that stops reading parks its responses in the service's
  // bounded per-connection output buffer and window (the IO thread owns
  // all socket writes, non-blocking); it must never block pool workers in
  // send(), so other clients keep being answered promptly.
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  service.start();

  artifact::JsonlClient greedy = artifact::JsonlClient::connectTcp(port);
  for (int i = 0; i < 600; ++i)
    greedy.sendLine(
        "{\"id\":" + std::to_string(i) +
        ",\"comp\":\"mesh4\",\"kernel\":\"gcd\",\"artifact\":true}");
  // The multi-KB artifact responses overflow the socket buffers many
  // times over; the greedy client never reads a byte of them.

  artifact::JsonlClient other = artifact::JsonlClient::connectTcp(port);
  std::string line;
  for (int i = 0; i < 3; ++i) {
    other.sendLine("{\"id\":" + std::to_string(1000 + i) +
                   ",\"comp\":\"mesh4\",\"kernel\":\"ewma\"}");
    ASSERT_TRUE(other.recvLine(line))
        << "a non-reading client must not starve others (response " << i
        << ")";
    EXPECT_TRUE(json::parse(line).asObject().at("ok").asBool());
  }
  other.close();

  greedy.close();  // unread responses are forfeited, not leaked
  service.drain();
  service.stop();
  EXPECT_EQ(service.stats().connectionsClosed,
            service.stats().connectionsAccepted);
}

TEST(Service, ShedResponsesHonorThePerConnectionCap) {
  // While the service is overloaded, a connection whose lines all shed
  // must stop being read at its in-flight cap — the shed responses queue
  // behind the blocked front slot, each holding an admission slot until
  // it can head to the wire — instead of growing the window and the pool
  // queue without bound.
  BlockingKernel fifo("shedcap");
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;
  options.maxInFlight = 8;
  options.queueBound = 1;  // the blocked job fills the service
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  service.start();

  artifact::JsonlClient client = artifact::JsonlClient::connectTcp(port);
  client.sendLine("{\"id\":0,\"comp\":\"mesh4\",\"kernelFile\":\"" +
                  fifo.path + "\"}");
  for (int i = 1; i <= 100; ++i)
    client.sendLine("{\"id\":" + std::to_string(i) +
                    ",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}");

  // Reading stops at the cap: 1 blocked job + 7 shed responses. The state
  // is stable (nothing can flush past the blocked front slot), so the
  // equality holds however long the service runs.
  ASSERT_TRUE(eventually([&] { return service.stats().requests == 8; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(service.stats().requests, 8u)
      << "shed lines must hold in-flight slots and pause the reads";
  EXPECT_EQ(service.stats().shedOverload, 7u);

  fifo.release();
  client.shutdownWrite();
  std::string line;
  ASSERT_TRUE(client.recvLine(line));
  EXPECT_EQ(errorCode(json::parse(line)), "unknown_comp")
      << "the blocked job answers first (its kernel bytes do not parse)";
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(client.recvLine(line)) << "response " << i;
    const json::Value doc = json::parse(line);
    EXPECT_EQ(doc.asObject().at("id").asInt(), i)
        << "responses keep request order";
    if (i <= 7)
      EXPECT_EQ(errorCode(doc), "overloaded")
          << "lines read while the queue slot was held must shed";
  }
  EXPECT_FALSE(client.recvLine(line));
  client.close();
  service.drain();
  service.stop();
  EXPECT_EQ(service.stats().requests, 101u)
      << "every line is answered once the pause lifts";
}

TEST(Service, UnixSocketWrapperServesConcurrentClients) {
  TempDir dir("wrapper");
  const std::string path = (dir.path / "serve.sock").string();
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 2;

  artifact::ServiceStats stats;
  std::thread server([&] {
    stats = artifact::serveUnixSocket(path, store, options,
                                      /*maxConnections=*/2);
  });
  ASSERT_TRUE(eventually([&] { return sfs::exists(path); }));

  auto runClient = [&path](int base) {
    artifact::JsonlClient c = artifact::JsonlClient::connectUnix(path);
    for (int i = 0; i < 3; ++i)
      c.sendLine("{\"id\":" + std::to_string(base + i) +
                 ",\"comp\":\"mesh4\",\"kernel\":\"gcd\"}");
    c.shutdownWrite();
    std::string line;
    int got = 0;
    while (c.recvLine(line)) {
      EXPECT_TRUE(json::parse(line).asObject().at("ok").asBool());
      ++got;
    }
    EXPECT_EQ(got, 3);
  };
  std::thread c1([&] { runClient(100); });
  std::thread c2([&] { runClient(200); });
  c1.join();
  c2.join();
  server.join();  // maxConnections=2 reached: the wrapper returns

  EXPECT_EQ(stats.requests, 6u);
  EXPECT_EQ(stats.connectionsAccepted, 2u);
  EXPECT_EQ(stats.scheduled, 1u) << "one cold job; the rest hit or dedupe";
  EXPECT_EQ(stats.cacheHits + stats.deduped, 5u);
}

TEST(Service, EightClientStressSharesOneStoreCleanly) {
  // The tsan preset runs this suite: 8 concurrent connections hammer one
  // service/store with mixed hits, misses, dedup, bad lines and stats
  // probes. Assertions are per-client (order, count, version) and global
  // (counter conservation).
  artifact::ArtifactStore store;
  artifact::ServiceOptions options;
  options.threads = 4;
  options.maxInFlight = 4;
  artifact::Service service(store, options);
  const std::uint16_t port = service.addTcpListener(0);
  service.start();

  constexpr int kClients = 8;
  constexpr int kRequests = 12;
  const char* kernels[] = {"gcd", "ewma", "dotprod"};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      artifact::JsonlClient client = artifact::JsonlClient::connectTcp(port);
      for (int i = 0; i < kRequests; ++i) {
        const int id = c * 1000 + i;
        if (i == 5) {
          client.sendLine("{\"id\":" + std::to_string(id) + ",\"bad\":1}");
        } else if (i == 9) {
          client.sendLine("{\"id\":" + std::to_string(id) +
                          ",\"stats\":true}");
        } else {
          client.sendLine("{\"id\":" + std::to_string(id) +
                          ",\"comp\":\"mesh4\",\"kernel\":" + "\"" +
                          kernels[(c + i) % 3] + "\"}");
        }
      }
      client.shutdownWrite();
      std::string line;
      for (int i = 0; i < kRequests; ++i) {
        if (!client.recvLine(line)) {
          ++failures;
          return;
        }
        const json::Value doc = json::parse(line);
        const json::Object& o = doc.asObject();
        if (o.at("id").asInt() != c * 1000 + i) ++failures;
        if (o.at("v").asInt() != artifact::kWireVersion) ++failures;
        const bool expectOk = i != 5;
        if (o.at("ok").asBool() != expectOk) ++failures;
        if (i == 9) {
          // Mid-run snapshot consistency: the stats document is assembled
          // under the admission lock, so per-connection request counts
          // (live + closed rollup) must sum to the service total exactly —
          // even while 7 other clients are hammering the same service.
          const json::Object& stats = o.at("stats").asObject();
          std::int64_t perConn = 0;
          for (const json::Value& e : stats.at("connections").asArray())
            perConn += e.asObject().at("requests").asInt();
          perConn += stats.at("closed").asObject().at("requests").asInt();
          if (perConn !=
              stats.at("service").asObject().at("requests").asInt())
            ++failures;
        }
      }
      if (client.recvLine(line)) ++failures;  // nothing extra on the wire
    });
  }
  for (std::thread& t : clients) t.join();
  service.drain();
  service.stop();

  EXPECT_EQ(failures.load(), 0);
  const artifact::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(stats.connectionsAccepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.connectionsClosed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.parseErrors, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.statsRequests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.scheduled, 3u) << "three distinct jobs across all clients";
  EXPECT_EQ(stats.scheduled + stats.cacheHits + stats.deduped,
            static_cast<std::uint64_t>(kClients * (kRequests - 2)));
  EXPECT_EQ(stats.shedOverload, 0u)
      << "the default queue bound absorbs this load";

  // Quiescent snapshot consistency: every session reaped, so the closed
  // rollup alone accounts for every request and response of the run.
  const json::Value statsDoc = service.statsJson();
  const json::Object& doc = statsDoc.asObject();
  EXPECT_TRUE(doc.at("connections").asArray().empty());
  const json::Object& closed = doc.at("closed").asObject();
  EXPECT_EQ(closed.at("connections").asInt(), kClients);
  EXPECT_EQ(closed.at("requests").asInt(), kClients * kRequests);
  EXPECT_EQ(closed.at("responses").asInt(), kClients * kRequests);
  EXPECT_EQ(closed.at("shed").asInt(), 0);
}

#endif  // __unix__

}  // namespace
}  // namespace cgra
