// Tests for schedule analysis: utilization accounting, Gantt rendering,
// and the MII lower bounds (ResMII/RecMII) that quantify modulo-scheduling
// headroom (paper §VII future work).
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/analysis.hpp"
#include "sched/scheduler.hpp"

namespace cgra {
namespace {

struct Prepared {
  Cdfg graph;
  Composition comp;
  Schedule schedule;
};

Prepared prepare(const apps::Workload& w, Composition comp) {
  kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  return Prepared{std::move(lowered.graph), std::move(comp), std::move(sched)};
}

TEST(Analysis, UtilizationAccountingIsConsistent) {
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(4));
  const ScheduleAnalysis a = analyzeSchedule(p.schedule, p.comp);

  ASSERT_EQ(a.perPE.size(), 4u);
  unsigned busySum = 0, opSum = 0;
  for (const PEUtilization& pe : a.perPE) {
    EXPECT_LE(pe.utilization, 1.0);
    EXPECT_GE(pe.utilization, 0.0);
    busySum += pe.busyCycles;
    opSum += pe.opsIssued;
  }
  EXPECT_EQ(opSum, a.totalOps);
  EXPECT_EQ(a.totalOps, p.schedule.ops.size());
  EXPECT_GE(a.peakParallelism, 1u);
  EXPECT_LE(a.peakParallelism, 4u);
  EXPECT_NEAR(a.avgUtilization,
              static_cast<double>(busySum) / (4.0 * p.schedule.length), 1e-9);
  EXPECT_EQ(a.cboxBusyCycles, p.schedule.cboxOps.size());
}

TEST(Analysis, BiggerArraysLowerAverageUtilization) {
  const apps::Workload w = apps::makeAdpcm(8, 1);
  const Prepared small = prepare(w, makeMesh(4));
  const Prepared large = prepare(w, makeMesh(16));
  EXPECT_GT(analyzeSchedule(small.schedule, small.comp).avgUtilization,
            analyzeSchedule(large.schedule, large.comp).avgUtilization);
}

TEST(Analysis, GanttChartShape) {
  const Prepared p = prepare(apps::makeGcd(9, 6), makeMesh(4));
  const std::string gantt = ganttChart(p.schedule, p.comp);
  // One row per PE + CBOX + CCU + one per loop.
  const std::size_t rows = std::count(gantt.begin(), gantt.end(), '\n');
  EXPECT_EQ(rows, 4u + 2u + p.schedule.loops.size());
  EXPECT_NE(gantt.find('^'), std::string::npos) << "back-branch marker";
  EXPECT_NE(gantt.find('?'), std::string::npos) << "comparison marker";
  EXPECT_NE(gantt.find('['), std::string::npos) << "loop interval";
  // Row width = schedule length (between the pipes).
  const std::size_t firstPipe = gantt.find('|');
  const std::size_t secondPipe = gantt.find('|', firstPipe + 1);
  EXPECT_EQ(secondPipe - firstPipe - 1, p.schedule.length);
}

TEST(Analysis, GanttMarksPredicationAndMultiCycle) {
  const Prepared p = prepare(apps::makeDotProduct(6, 1), makeMesh(4));
  const std::string gantt = ganttChart(p.schedule, p.comp);
  EXPECT_NE(gantt.find('-'), std::string::npos) << "2-cycle multiplier tail";
  // Predicated commits are uppercase (the loop body writes are predicated).
  EXPECT_TRUE(gantt.find('C') != std::string::npos ||
              gantt.find('A') != std::string::npos ||
              gantt.find('D') != std::string::npos);
}

TEST(Mii, BoundsAreSaneAndBelowAchieved) {
  for (const auto& make :
       {+[] { return apps::makeAdpcm(8, 1); },
        +[] { return apps::makeFir(6, 3, 2); },
        +[] { return apps::makeMatMul(3, 3); }}) {
    const apps::Workload w = make();
    const Prepared p = prepare(w, makeMesh(8));
    const auto bounds = computeMiiBounds(p.graph, p.schedule, p.comp);
    ASSERT_EQ(bounds.size(), p.graph.numLoops() - 1) << w.name;
    for (const LoopMii& m : bounds) {
      EXPECT_GE(m.resMii, 0.0) << w.name;
      EXPECT_GE(m.recMii, 1.0) << w.name;
      EXPECT_GT(m.achievedInterval, 0u) << w.name;
      // The list schedule can never beat the lower bound.
      EXPECT_GE(static_cast<double>(m.achievedInterval) + 1e-9, m.mii())
          << w.name << " loop " << m.loop;
      EXPECT_GE(m.headroom(), 1.0 - 1e-9) << w.name;
    }
  }
}

TEST(Mii, RecurrenceBoundSeesLongChains) {
  // i = i + 1 has a 2-op recurrence (ADD, then the fused/standalone write);
  // x = ((x*3)+1) has a longer one — RecMII must rank them accordingly.
  using kir::FunctionBuilder;
  auto build = [](bool longChain) {
    FunctionBuilder b("rec");
    const auto n = b.param("n");
    const auto i = b.localVar("i");
    const auto x = b.localVar("x");
    std::vector<kir::StmtId> body{
        b.assign(i, b.add(b.use(i), b.cint(1)))};
    if (longChain)
      body.push_back(b.assign(
          x, b.add(b.mul(b.mul(b.use(x), b.cint(3)), b.cint(5)), b.cint(1))));
    return b.finish(b.block({
        b.assign(i, b.cint(0)),
        b.assign(x, b.cint(1)),
        b.whileLoop(b.lt(b.use(i), b.use(n)), b.block(std::move(body))),
    }));
  };
  const Composition comp = makeMesh(4);
  auto miiOf = [&](const kir::Function& fn) {
    kir::LoweringResult lowered = kir::lowerToCdfg(fn);
    const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
    const auto bounds = computeMiiBounds(lowered.graph, sched, comp);
    return bounds.at(0).recMii;
  };
  EXPECT_GT(miiOf(build(true)), miiOf(build(false)));
}

TEST(Mii, ResourceBoundScalesWithArray) {
  // Memory-heavy loop: ResMII is limited by DMA ports, so a composition
  // with fewer DMA PEs has a higher bound.
  const apps::Workload w = apps::makeDotProduct(8, 1);
  kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Composition few = makeMesh(4);    // 2 DMA PEs
  const Composition many = makeMesh(16);  // 4 DMA PEs
  const Schedule s1 = Scheduler(few).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  const Schedule s2 = Scheduler(many).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  const auto b1 = computeMiiBounds(lowered.graph, s1, few);
  const auto b2 = computeMiiBounds(lowered.graph, s2, many);
  EXPECT_GE(b1.at(0).resMii, b2.at(0).resMii);
}

}  // namespace
}  // namespace cgra
