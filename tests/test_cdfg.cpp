// Unit tests for the CDFG IR: node/edge construction, condition-tree
// interning, loop-tree queries, validation rules, longest-path priorities
// and DOT export.
#include <gtest/gtest.h>

#include "cdfg/cdfg.hpp"

namespace cgra {
namespace {

Node op(Op o, std::vector<Operand> operands, LoopId loop = kRootLoop,
        CondId cond = kCondTrue) {
  Node n;
  n.kind = NodeKind::Operation;
  n.op = o;
  n.operands = std::move(operands);
  n.loop = loop;
  n.cond = cond;
  return n;
}

Node pwrite(VarId var, Operand value, LoopId loop = kRootLoop,
            CondId cond = kCondTrue) {
  Node n;
  n.kind = NodeKind::PWrite;
  n.var = var;
  n.operands = {value};
  n.loop = loop;
  n.cond = cond;
  return n;
}

TEST(Cdfg, ConditionInterning) {
  Cdfg g;
  g.addVariable(Variable{"x", true, false, 0});
  const NodeId cmp = g.addNode(
      op(Op::IFLT, {Operand::variable(0), Operand::immediate(0)}));
  const CondId a = g.makeCondition(kCondTrue, cmp, true);
  const CondId b = g.makeCondition(kCondTrue, cmp, true);
  const CondId c = g.makeCondition(kCondTrue, cmp, false);
  EXPECT_EQ(a, b) << "identical conditions are interned";
  EXPECT_NE(a, c);
  const CondId nested = g.makeCondition(a, cmp, false);
  EXPECT_TRUE(g.conditionImplies(nested, a));
  EXPECT_FALSE(g.conditionImplies(a, nested));
  EXPECT_TRUE(g.conditionImplies(a, kCondTrue));

  const auto lits = g.conditionLiterals(nested);
  ASSERT_EQ(lits.size(), 2u);
  EXPECT_EQ(lits[0], std::make_pair(cmp, true)) << "outermost first";
  EXPECT_EQ(lits[1], std::make_pair(cmp, false));
}

TEST(Cdfg, LoopTreeQueries) {
  Cdfg g;
  g.addVariable(Variable{"x", true, false, 0});
  const NodeId cmp1 = g.addNode(
      op(Op::IFLT, {Operand::variable(0), Operand::immediate(10)}));
  Loop l1;
  l1.parent = kRootLoop;
  l1.controllingNode = cmp1;
  const LoopId loop1 = g.addLoop(l1);
  g.node(cmp1).loop = loop1;

  const NodeId cmp2 = g.addNode(
      op(Op::IFLT, {Operand::variable(0), Operand::immediate(5)}));
  Loop l2;
  l2.parent = loop1;
  l2.controllingNode = cmp2;
  const LoopId loop2 = g.addLoop(l2);
  g.node(cmp2).loop = loop2;

  EXPECT_TRUE(g.loopContains(kRootLoop, loop2));
  EXPECT_TRUE(g.loopContains(loop1, loop2));
  EXPECT_FALSE(g.loopContains(loop2, loop1));
  EXPECT_EQ(g.loopDepth(loop2), 2u);
  EXPECT_EQ(g.loopAncestry(loop2), (std::vector<LoopId>{loop2, loop1}));
  EXPECT_EQ(g.loopChildren(loop1), (std::vector<LoopId>{loop2}));
}

TEST(Cdfg, VarWrittenInLoop) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const VarId y = g.addVariable(Variable{"y", true, true, 0});
  const NodeId cmp = g.addNode(
      op(Op::IFLT, {Operand::variable(x), Operand::immediate(10)}));
  Loop l;
  l.parent = kRootLoop;
  l.controllingNode = cmp;
  const LoopId loop = g.addLoop(l);
  g.node(cmp).loop = loop;
  g.addNode(pwrite(x, Operand::immediate(1), loop));
  g.addNode(pwrite(y, Operand::immediate(2), kRootLoop));
  EXPECT_TRUE(g.varWrittenInLoop(x, loop));
  EXPECT_FALSE(g.varWrittenInLoop(y, loop));
  EXPECT_TRUE(g.varWrittenInLoop(y, kRootLoop));
}

TEST(Cdfg, ValidateRejectsBadOperandCounts) {
  Cdfg g;
  g.addVariable(Variable{"x", true, false, 0});
  Node n = op(Op::IADD, {Operand::variable(0)});  // needs 2
  g.addNode(std::move(n));
  EXPECT_THROW(g.validate(), Error);
}

TEST(Cdfg, ValidateRejectsStatusAsDataOperand) {
  Cdfg g;
  g.addVariable(Variable{"x", true, false, 0});
  const NodeId cmp = g.addNode(
      op(Op::IFEQ, {Operand::variable(0), Operand::immediate(0)}));
  g.addNode(op(Op::IADD, {Operand::node(cmp), Operand::immediate(1)}));
  EXPECT_THROW(g.validate(), Error);
}

TEST(Cdfg, ValidateRejectsPWriteResultAsOperand) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId w = g.addNode(pwrite(x, Operand::immediate(1)));
  g.addNode(op(Op::IADD, {Operand::node(w), Operand::immediate(1)}));
  EXPECT_THROW(g.validate(), Error);
}

TEST(Cdfg, ValidateRejectsSchedulerInternalOps) {
  Cdfg g;
  Node n;
  n.kind = NodeKind::Operation;
  n.op = Op::MOVE;
  n.operands = {Operand::immediate(1)};
  g.addNode(std::move(n));
  EXPECT_THROW(g.validate(), Error);
}

TEST(Cdfg, ValidateRejectsCycles) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId a = g.addNode(pwrite(x, Operand::immediate(1)));
  const NodeId b = g.addNode(pwrite(x, Operand::immediate(2)));
  g.addEdge(a, b, DepKind::Output);
  g.addEdge(b, a, DepKind::Output);
  EXPECT_THROW(g.validate(), Error);
}

TEST(Cdfg, ValidateRequiresControlEdgesForConditions) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId cmp = g.addNode(
      op(Op::IFEQ, {Operand::variable(x), Operand::immediate(0)}));
  const CondId c = g.makeCondition(kCondTrue, cmp, true);
  g.addNode(pwrite(x, Operand::immediate(1), kRootLoop, c));
  EXPECT_THROW(g.validate(), Error);  // missing Control edge

  Cdfg g2;
  const VarId x2 = g2.addVariable(Variable{"x", true, true, 0});
  const NodeId cmp2 = g2.addNode(
      op(Op::IFEQ, {Operand::variable(x2), Operand::immediate(0)}));
  const CondId c2 = g2.makeCondition(kCondTrue, cmp2, true);
  const NodeId w = g2.addNode(pwrite(x2, Operand::immediate(1), kRootLoop, c2));
  g2.addEdge(cmp2, w, DepKind::Control);
  EXPECT_NO_THROW(g2.validate());
}

TEST(Cdfg, EdgesAreDeduplicated) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId a = g.addNode(pwrite(x, Operand::immediate(1)));
  const NodeId b = g.addNode(pwrite(x, Operand::immediate(2)));
  g.addEdge(a, b, DepKind::Output);
  g.addEdge(a, b, DepKind::Output);
  g.addEdge(a, b, DepKind::Anti);  // distinct kind kept
  EXPECT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.outEdges(a).size(), 2u);
  EXPECT_EQ(g.inEdges(b).size(), 2u);
}

TEST(Cdfg, LongestPathWeights) {
  // add1 -> add2 -> add3 chain plus a lone node.
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId a1 = g.addNode(
      op(Op::IADD, {Operand::variable(x), Operand::immediate(1)}));
  const NodeId a2 =
      g.addNode(op(Op::IADD, {Operand::node(a1), Operand::immediate(1)}));
  const NodeId a3 =
      g.addNode(op(Op::IMUL, {Operand::node(a2), Operand::immediate(1)}));
  const NodeId lone = g.addNode(
      op(Op::IADD, {Operand::variable(x), Operand::immediate(2)}));
  g.addEdge(a1, a2, DepKind::Flow);
  g.addEdge(a2, a3, DepKind::Flow);

  const auto w = g.longestPathWeights();
  EXPECT_GT(w[a1], w[a2]);
  EXPECT_GT(w[a2], w[a3]);
  EXPECT_DOUBLE_EQ(w[a3], 2.0) << "IMUL default duration";
  EXPECT_DOUBLE_EQ(w[a1], 1.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(w[lone], 1.0);
}

TEST(Cdfg, RootNodes) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId a = g.addNode(pwrite(x, Operand::immediate(1)));
  const NodeId b = g.addNode(pwrite(x, Operand::immediate(2)));
  g.addEdge(a, b, DepKind::Output);
  EXPECT_EQ(g.rootNodes(), std::vector<NodeId>{a});
}

TEST(Cdfg, DotExportShowsLoopsAndControlEdges) {
  Cdfg g;
  const VarId x = g.addVariable(Variable{"x", true, true, 0});
  const NodeId cmp = g.addNode(
      op(Op::IFLT, {Operand::variable(x), Operand::immediate(10)}));
  Loop l;
  l.parent = kRootLoop;
  l.controllingNode = cmp;
  l.label = "while#1";
  const LoopId loop = g.addLoop(l);
  g.node(cmp).loop = loop;
  const CondId c = g.makeCondition(kCondTrue, cmp, true);
  g.loop(loop).bodyCond = c;
  const NodeId w = g.addNode(pwrite(x, Operand::immediate(1), loop, c));
  g.addEdge(cmp, w, DepKind::Control);

  const std::string dot = g.toDot("t");
  EXPECT_NE(dot.find("cluster_loop1"), std::string::npos);
  EXPECT_NE(dot.find("pWRITE x"), std::string::npos);
  EXPECT_NE(dot.find("color=\"red\""), std::string::npos) << "control edge";
}

}  // namespace
}  // namespace cgra
