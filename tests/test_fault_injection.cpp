// Fault-injection robustness tests: corrupted context images (single-bit
// flips, the classic BRAM upset model) must never crash the toolchain —
// every flip either decodes to a schedule that is rejected/flagged, or
// executes to completion within a cycle budget. Also covers corrupted
// serialized documents and hostile schedule fields.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/serialize.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

struct Baseline {
  apps::Workload workload;
  Composition comp;
  ContextImages images;
};

Baseline makeBaseline() {
  apps::Workload w = apps::makeGcd(18, 12);
  const Composition comp = makeMesh(4);
  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  return Baseline{std::move(w), comp, generateContexts(sched, comp)};
}

/// Runs a (possibly corrupt) image set; returns true when execution
/// completed, false when it was cleanly rejected. Crashes/UB fail the test
/// harness itself (and the ASan build).
bool tryRun(const Baseline& base, const ContextImages& images) {
  try {
    const Schedule sched = decodeContexts(images, base.comp);
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : sched.liveIns)
      liveIns[lb.var] = base.workload.initialLocals[lb.var];
    HostMemory heap = base.workload.heap;
    SimOptions opts;
    opts.maxCycles = 200'000;  // corrupt branches may loop; bound them
    Simulator(base.comp, sched).run(liveIns, heap, opts);
    return true;
  } catch (const Error&) {
    return false;  // clean rejection
  } catch (const InternalError&) {
    return false;  // clean rejection via invariant check
  }
}

TEST(FaultInjection, SingleBitFlipsInPEContexts) {
  const Baseline base = makeBaseline();
  unsigned completed = 0, rejected = 0;
  for (PEId pe = 0; pe < base.comp.numPEs(); ++pe) {
    for (unsigned t = 0; t < base.images.length; ++t) {
      const std::size_t width = base.images.peContexts[pe][t].size();
      for (std::size_t bit = 0; bit < width; ++bit) {
        ContextImages corrupt = base.images;
        BitVector& word = corrupt.peContexts[pe][t];
        word.set(bit, !word.get(bit));
        (tryRun(base, corrupt) ? completed : rejected) += 1;
      }
    }
  }
  // Every flip must resolve one way or the other without crashing; a
  // meaningful share must be caught by the decoder/validator layers.
  EXPECT_GT(completed + rejected, 0u);
  EXPECT_GT(rejected, 0u) << "no corruption ever detected?";
}

TEST(FaultInjection, SingleBitFlipsInCcuAndCboxContexts) {
  const Baseline base = makeBaseline();
  for (unsigned t = 0; t < base.images.length; ++t) {
    for (std::size_t bit = 0; bit < base.images.ccuContexts[t].size(); ++bit) {
      ContextImages corrupt = base.images;
      corrupt.ccuContexts[t].set(bit, !corrupt.ccuContexts[t].get(bit));
      tryRun(base, corrupt);  // must not crash
    }
    for (std::size_t bit = 0; bit < base.images.cboxContexts[t].size(); ++bit) {
      ContextImages corrupt = base.images;
      corrupt.cboxContexts[t].set(bit, !corrupt.cboxContexts[t].get(bit));
      tryRun(base, corrupt);  // must not crash
    }
  }
  SUCCEED();
}

TEST(FaultInjection, HostileScheduleFieldsRejected) {
  const Baseline base = makeBaseline();
  const Schedule good = decodeContexts(base.images, base.comp);

  {
    Schedule bad = good;
    ASSERT_FALSE(bad.ops.empty());
    bad.ops[0].destVreg = 1u << 20;
    bad.ops[0].writesDest = true;
    EXPECT_THROW(Simulator(base.comp, bad), Error);
  }
  {
    Schedule bad = good;
    bad.ops[0].pe = 99;
    EXPECT_THROW(Simulator(base.comp, bad), Error);
  }
  {
    Schedule bad = good;
    bad.ops[0].src[0] =
        OperandSource{OperandSource::Kind::Route, 2, 1u << 16, 0};
    EXPECT_THROW(Simulator(base.comp, bad), Error);
  }
  {
    Schedule bad = good;
    bad.branches.push_back(BranchOp{0, 1u << 14, false, {}, kRootLoop});
    EXPECT_THROW(Simulator(base.comp, bad), Error);
  }
  {
    Schedule bad = good;
    bad.liveOuts.push_back(LiveBinding{0, 0, 1u << 18});
    EXPECT_THROW(Simulator(base.comp, bad), Error);
  }
  {
    Schedule bad = good;
    bad.vregsPerPE.pop_back();
    EXPECT_THROW(Simulator(base.comp, bad), Error);
  }
}

TEST(FaultInjection, TruncatedSerializedDocumentRejected) {
  const Baseline base = makeBaseline();
  const std::string doc = contextImagesToJson(base.images).dump();
  // Progressive truncation must always throw, never crash.
  for (std::size_t keep : {doc.size() / 4, doc.size() / 2, doc.size() - 2}) {
    EXPECT_THROW(contextImagesFromJson(json::parse(doc.substr(0, keep))),
                 Error);
  }
}

TEST(FaultInjection, GarbageHexRejected) {
  const Baseline base = makeBaseline();
  json::Value doc = contextImagesToJson(base.images);
  doc.asObject()["ccu_memory"].asObject()["contexts"].asArray()[0] = "zz";
  EXPECT_THROW(contextImagesFromJson(doc), Error);
}

}  // namespace
}  // namespace cgra
