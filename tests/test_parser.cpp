// Tests for the kernel-language parser: grammar coverage, precedence,
// diagnostics with line/column, and end-to-end equivalence (parsed kernels
// run on the CGRA and match the interpreter).
#include <gtest/gtest.h>

#include <fstream>

#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace cgra::kir {
namespace {

std::int32_t evalKernel(const std::string& src,
                        std::vector<std::int32_t> locals,
                        const std::string& resultLocal,
                        HostMemory* heap = nullptr) {
  const Function fn = parseKernel(src);
  HostMemory localHeap;
  HostMemory& h = heap ? *heap : localHeap;
  Interpreter interp;
  const auto r = interp.run(fn, std::move(locals), h);
  return r.locals[fn.localByName(resultLocal)];
}

TEST(Parser, MinimalKernel) {
  const Function fn = parseKernel("kernel f(a) { var x = a + 1; }");
  EXPECT_EQ(fn.name(), "f");
  EXPECT_EQ(fn.numLocals(), 2u);
  EXPECT_TRUE(fn.local(0).isParameter);
  EXPECT_FALSE(fn.local(1).isParameter);
}

TEST(Parser, PrecedenceMatchesC) {
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 2 + 3 * 4; }", {0}, "r"), 14);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = (2 + 3) * 4; }", {0}, "r"), 20);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 1 << 2 + 1; }", {0}, "r"), 8)
      << "shift binds looser than +";
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 7 & 3 == 3; }", {0}, "r"), 1)
      << "== binds tighter than &";
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 1 | 2 ^ 2; }", {0}, "r"), 1);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = -a * 2; }", {5}, "r"), -10);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = !a; }", {5}, "r"), 0);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = !a; }", {0}, "r"), 1);
}

TEST(Parser, ShiftVariants) {
  EXPECT_EQ(evalKernel("kernel f(a) { var r = a >> 1; }", {-8}, "r"), -4);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = a >>> 1; }", {-8}, "r"),
            0x7FFFFFFC);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = a << 3; }", {3}, "r"), 24);
}

TEST(Parser, LiteralsIncludingHexAndIntMin) {
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 0xFF + 1; }", {0}, "r"), 256);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 0xdeadbeef; }", {0}, "r"),
            static_cast<std::int32_t>(0xDEADBEEFu));
  EXPECT_EQ(evalKernel("kernel f(a) { var r = -2147483648; }", {0}, "r"),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Parser, LogicalOperatorsNormalize) {
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a && b; }", {5, 7}, "r"), 1);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a && b; }", {5, 0}, "r"), 0);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a || b; }", {0, 7}, "r"), 1);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a || b; }", {0, 0}, "r"), 0);
}

TEST(Parser, ControlFlowAndArrays) {
  const std::string src = R"(
    // sum of array maxima against a floor value
    kernel f(data, n, floor) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        var v = data[i];       /* block comment */
        if (v < floor) { v = floor; } else if (v > 100) { v = 100; }
        sum = sum + v;
        data[i] = v;
        i = i + 1;
      }
    }
  )";
  HostMemory heap;
  const Handle h = heap.alloc({-5, 50, 200});
  EXPECT_EQ(evalKernel(src, {h, 3, 0}, "sum", &heap), 0 + 50 + 100);
  EXPECT_EQ(heap.array(h)[0], 0);
  EXPECT_EQ(heap.array(h)[2], 100);
}

TEST(Parser, DiagnosticsCarryLineAndColumn) {
  auto expectError = [](const std::string& src, const std::string& what) {
    try {
      parseKernel(src);
      FAIL() << "expected error for: " << src;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expectError("kernel f(a) { x = 1; }", "undeclared identifier 'x'");
  expectError("kernel f(a) { var a = 1; }", "duplicate declaration");
  expectError("kernel f(a) { var x = ; }", "expected an expression");
  expectError("kernel f(a) { var x = 1 }", "expected ';'");
  expectError("kernel f(a) {", "unterminated block");
  expectError("kernel f(a) { var x = 99999999999; }", "too large");
  expectError("nope f() {}", "expected 'kernel'");
  try {
    parseKernel("kernel f(a) {\n  var x = $;\n}");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, ParsedKernelRunsOnTheCgra) {
  // The ADPCM-style inner structure written in the text language.
  const std::string src = R"(
    kernel vpdiff(delta, step) {
      var vp = step >> 3;
      var bit = 4;
      var sh = 0;
      while (bit >= 1) {
        if ((delta & bit) != 0) { vp = vp + (step >> sh); }
        bit = bit >> 1;
        sh = sh + 1;
      }
    }
  )";
  const Function fn = parseKernel(src);

  HostMemory goldenHeap;
  Interpreter interp;
  const auto golden = interp.run(fn, {5, 1024}, goldenHeap);

  const LoweringResult lowered = lowerToCdfg(fn);
  const Composition comp = makeMesh(4);
  const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : sched.liveIns)
    liveIns[lb.var] = lb.var == lowered.localToVar[0] ? 5 : 1024;
  HostMemory heap;
  const SimResult r = Simulator(comp, sched).run(liveIns, heap);
  EXPECT_EQ(r.liveOuts.at(lowered.localToVar[fn.localByName("vp")]),
            golden.locals[fn.localByName("vp")]);
}

TEST(Parser, RoundTripThroughToString) {
  // toString produces pseudo-C close enough to re-parse for simple kernels.
  const std::string src =
      "kernel f(a, b) { var r = 0; while (r < a) { r = r + b; } }";
  const Function fn = parseKernel(src);
  const std::string printed = fn.toString();
  EXPECT_NE(printed.find("while (r < a)"), std::string::npos);
  EXPECT_NE(printed.find("r = (r + b);"), std::string::npos);
}

TEST(Parser, FileLoading) {
  const std::string path = ::testing::TempDir() + "/k.kir";
  {
    std::ofstream out(path);
    out << "kernel f(a) { var r = a * a; }";
  }
  const Function fn = parseKernelFile(path);
  EXPECT_EQ(fn.name(), "f");
  EXPECT_THROW(parseKernelFile("/nonexistent.kir"), Error);
}

}  // namespace
}  // namespace cgra::kir
