// Tests for the kernel-language parser: grammar coverage, precedence,
// diagnostics with line/column, and end-to-end equivalence (parsed kernels
// run on the CGRA and match the interpreter).
#include <gtest/gtest.h>

#include <fstream>

#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace cgra::kir {
namespace {

std::int32_t evalKernel(const std::string& src,
                        std::vector<std::int32_t> locals,
                        const std::string& resultLocal,
                        HostMemory* heap = nullptr) {
  const Function fn = parseKernel(src);
  HostMemory localHeap;
  HostMemory& h = heap ? *heap : localHeap;
  Interpreter interp;
  const auto r = interp.run(fn, std::move(locals), h);
  return r.locals[fn.localByName(resultLocal)];
}

TEST(Parser, MinimalKernel) {
  const Function fn = parseKernel("kernel f(a) { var x = a + 1; }");
  EXPECT_EQ(fn.name(), "f");
  EXPECT_EQ(fn.numLocals(), 2u);
  EXPECT_TRUE(fn.local(0).isParameter);
  EXPECT_FALSE(fn.local(1).isParameter);
}

TEST(Parser, PrecedenceMatchesC) {
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 2 + 3 * 4; }", {0}, "r"), 14);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = (2 + 3) * 4; }", {0}, "r"), 20);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 1 << 2 + 1; }", {0}, "r"), 8)
      << "shift binds looser than +";
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 7 & 3 == 3; }", {0}, "r"), 1)
      << "== binds tighter than &";
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 1 | 2 ^ 2; }", {0}, "r"), 1);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = -a * 2; }", {5}, "r"), -10);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = !a; }", {5}, "r"), 0);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = !a; }", {0}, "r"), 1);
}

TEST(Parser, ShiftVariants) {
  EXPECT_EQ(evalKernel("kernel f(a) { var r = a >> 1; }", {-8}, "r"), -4);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = a >>> 1; }", {-8}, "r"),
            0x7FFFFFFC);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = a << 3; }", {3}, "r"), 24);
}

TEST(Parser, LiteralsIncludingHexAndIntMin) {
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 0xFF + 1; }", {0}, "r"), 256);
  EXPECT_EQ(evalKernel("kernel f(a) { var r = 0xdeadbeef; }", {0}, "r"),
            static_cast<std::int32_t>(0xDEADBEEFu));
  EXPECT_EQ(evalKernel("kernel f(a) { var r = -2147483648; }", {0}, "r"),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Parser, LogicalOperatorsNormalize) {
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a && b; }", {5, 7}, "r"), 1);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a && b; }", {5, 0}, "r"), 0);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a || b; }", {0, 7}, "r"), 1);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a || b; }", {0, 0}, "r"), 0);
}

TEST(Parser, ControlFlowAndArrays) {
  const std::string src = R"(
    // sum of array maxima against a floor value
    kernel f(data, n, floor) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        var v = data[i];       /* block comment */
        if (v < floor) { v = floor; } else if (v > 100) { v = 100; }
        sum = sum + v;
        data[i] = v;
        i = i + 1;
      }
    }
  )";
  HostMemory heap;
  const Handle h = heap.alloc({-5, 50, 200});
  EXPECT_EQ(evalKernel(src, {h, 3, 0}, "sum", &heap), 0 + 50 + 100);
  EXPECT_EQ(heap.array(h)[0], 0);
  EXPECT_EQ(heap.array(h)[2], 100);
}

TEST(Parser, DiagnosticsCarryLineAndColumn) {
  auto expectError = [](const std::string& src, const std::string& what) {
    try {
      parseKernel(src);
      FAIL() << "expected error for: " << src;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expectError("kernel f(a) { x = 1; }", "undeclared identifier 'x'");
  expectError("kernel f(a) { var a = 1; }", "duplicate declaration");
  expectError("kernel f(a) { var x = ; }", "expected an expression");
  expectError("kernel f(a) { var x = 1 }", "expected ';'");
  expectError("kernel f(a) {", "unterminated block");
  expectError("kernel f(a) { var x = 99999999999; }", "too large");
  expectError("nope f() {}", "expected 'kernel'");
  try {
    parseKernel("kernel f(a) {\n  var x = $;\n}");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, ParsedKernelRunsOnTheCgra) {
  // The ADPCM-style inner structure written in the text language.
  const std::string src = R"(
    kernel vpdiff(delta, step) {
      var vp = step >> 3;
      var bit = 4;
      var sh = 0;
      while (bit >= 1) {
        if ((delta & bit) != 0) { vp = vp + (step >> sh); }
        bit = bit >> 1;
        sh = sh + 1;
      }
    }
  )";
  const Function fn = parseKernel(src);

  HostMemory goldenHeap;
  Interpreter interp;
  const auto golden = interp.run(fn, {5, 1024}, goldenHeap);

  const LoweringResult lowered = lowerToCdfg(fn);
  const Composition comp = makeMesh(4);
  const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : sched.liveIns)
    liveIns[lb.var] = lb.var == lowered.localToVar[0] ? 5 : 1024;
  HostMemory heap;
  const SimResult r = Simulator(comp, sched).run(liveIns, heap);
  EXPECT_EQ(r.liveOuts.at(lowered.localToVar[fn.localByName("vp")]),
            golden.locals[fn.localByName("vp")]);
}

TEST(Parser, RoundTripThroughToString) {
  // toString produces pseudo-C close enough to re-parse for simple kernels.
  const std::string src =
      "kernel f(a, b) { var r = 0; while (r < a) { r = r + b; } }";
  const Function fn = parseKernel(src);
  const std::string printed = fn.toString();
  EXPECT_NE(printed.find("while (r < a)"), std::string::npos);
  EXPECT_NE(printed.find("r = (r + b);"), std::string::npos);
}

TEST(Parser, ShortCircuitAndOr) {
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a > 1 && b > 1; }", {2, 2},
                       "r"),
            1);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a > 1 && b > 1; }", {2, 0},
                       "r"),
            0);
  EXPECT_EQ(evalKernel("kernel f(a,b) { var r = a > 1 || b > 1; }", {0, 2},
                       "r"),
            1);
  // Precedence: && binds tighter than ||; both bind looser than compares.
  EXPECT_EQ(
      evalKernel("kernel f(a,b,c) { var r = a == 1 || b == 1 && c == 1; }",
                 {1, 0, 0}, "r"),
      1);
  EXPECT_EQ(
      evalKernel("kernel f(a,b,c) { var r = a == 1 || b == 1 && c == 1; }",
                 {0, 1, 0}, "r"),
      0);
}

TEST(Parser, ShortCircuitIsLazy) {
  // The right operand must not evaluate when the left decides: the guarded
  // load is out of bounds whenever it executes with n == 0.
  const std::string srcAnd =
      "kernel f(data, n) { var r = n > 0 && data[n - 1] > 2; }";
  const std::string srcOr =
      "kernel f(data, n) { var r = n == 0 || data[n - 1] > 2; }";
  HostMemory heap;
  const Handle h = heap.alloc(std::vector<std::int32_t>{5});
  EXPECT_EQ(evalKernel(srcAnd, {h, 1}, "r", &heap), 1);
  EXPECT_EQ(evalKernel(srcAnd, {h, 0}, "r", &heap), 0);
  EXPECT_EQ(evalKernel(srcOr, {h, 0}, "r", &heap), 1);
  EXPECT_EQ(evalKernel(srcOr, {h, 1}, "r", &heap), 1);
}

TEST(Parser, BreakAndContinue) {
  // break: stop summing at the first zero; continue: skip negatives.
  const std::string src = R"(
    kernel f(data, n) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        var v = data[i];
        i = i + 1;
        if (v == 0) { break; }
        if (v < 0) { continue; }
        sum = sum + v;
      }
    }
  )";
  HostMemory heap;
  const Handle h = heap.alloc({3, -7, 4, 0, 99});
  EXPECT_EQ(evalKernel(src, {h, 5}, "sum", &heap), 7);
}

TEST(Parser, ReturnExitsEarlyAndBindsResult) {
  const std::string src = R"(
    kernel f(data, n, needle) {
      var i = 0;
      while (i < n) {
        if (data[i] == needle) { return i; }
        i = i + 1;
      }
      return -1;
    }
  )";
  HostMemory heap;
  const Handle h = heap.alloc({10, 20, 30});
  EXPECT_EQ(evalKernel(src, {h, 3, 20}, "result", &heap), 1);
  EXPECT_EQ(evalKernel(src, {h, 3, 99}, "result", &heap), -1);
  // A bare `return;` needs no result local.
  const Function fn =
      parseKernel("kernel f(a) { if (a == 0) { return; } var r = 1; }");
  EXPECT_THROW(fn.localByName("result"), Error);
}

TEST(Parser, SwitchSelectsArm) {
  const std::string src = R"(
    kernel f(op, a, b) {
      var r = 0;
      switch (op) {
        case 0: { r = a + b; }
        case 1: { r = a - b; }
        case -2: { r = a * b; }
        default: { r = -1; }
      }
    }
  )";
  EXPECT_EQ(evalKernel(src, {0, 7, 3}, "r"), 10);
  EXPECT_EQ(evalKernel(src, {1, 7, 3}, "r"), 4);
  EXPECT_EQ(evalKernel(src, {-2, 7, 3}, "r"), 21);
  EXPECT_EQ(evalKernel(src, {9, 7, 3}, "r"), -1);
  // No fall-through and no default: a missed switch is a no-op.
  const std::string noDefault =
      "kernel f(op) { var r = 5; switch (op) { case 1: { r = 9; } } }";
  EXPECT_EQ(evalKernel(noDefault, {1}, "r"), 9);
  EXPECT_EQ(evalKernel(noDefault, {2}, "r"), 5);
}

TEST(Parser, IrregularConstructDiagnostics) {
  auto expectError = [](const std::string& src, const std::string& what) {
    try {
      parseKernel(src);
      FAIL() << "expected error for: " << src;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expectError("kernel f(a) { break; }", "break outside of a loop");
  expectError("kernel f(a) { continue; }", "continue outside of a loop");
  expectError(
      "kernel f(a) { switch (a) { default: { a = 1; } case 1: { a = 2; } } }",
      "'case' after 'default'");
  expectError(
      "kernel f(a) { switch (a) { default: { a = 1; } default: { a = 2; } } }",
      "duplicate 'default'");
  expectError("kernel f(a) { switch (a) { case a: { a = 1; } } }",
              "expected integer case value");
  expectError("kernel f(a) { switch (a) { } }",
              "switch without any case or default arm");
  expectError(
      "kernel f(a) { switch (a) { case 3: { a = 1; } case 3: { a = 2; } } }",
      "duplicate switch case 3");
  // `return expr;` materializes the implicit `result` local, so a later
  // explicit declaration collides with it.
  expectError("kernel f(a) { if (a > 0) { return a; } var result = 0; }",
              "duplicate declaration");
}

TEST(Parser, NewConstructsPrintStructurally) {
  const std::string src = R"(
    kernel f(op, n) {
      var r = 0;
      while (r < n) {
        if (op == 0 && r > 2) { break; }
        if (op == 1 || r == 0) { r = r + 2; continue; }
        switch (op) {
          case 2: { r = r + 1; }
          default: { return r; }
        }
      }
    }
  )";
  const std::string printed = parseKernel(src).toString();
  for (const char* piece :
       {"break;", "continue;", "return r;", "case 2: {", "default: {",
        "((op == 0) && (r > 2))", "((op == 1) || (r == 0))"})
    EXPECT_NE(printed.find(piece), std::string::npos)
        << "missing " << piece << " in:\n" << printed;
}

TEST(Parser, FileLoading) {
  const std::string path = ::testing::TempDir() + "/k.kir";
  {
    std::ofstream out(path);
    out << "kernel f(a) { var r = a * a; }";
  }
  const Function fn = parseKernelFile(path);
  EXPECT_EQ(fn.name(), "f");
  EXPECT_THROW(parseKernelFile("/nonexistent.kir"), Error);
}

}  // namespace
}  // namespace cgra::kir
