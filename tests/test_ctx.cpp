// Unit tests for context generation: left-edge register allocation with
// loop-extended lifetimes (§V-I), capacity errors, bit-level encode/decode
// round trips and simulation equivalence of decoded images.
#include <gtest/gtest.h>

#include <set>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

struct Prepared {
  apps::Workload workload;
  Cdfg graph;
  Composition comp;
  Schedule schedule;
};

Prepared prepare(apps::Workload w, Composition comp) {
  kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Scheduler scheduler(comp);
  Schedule sched = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  return Prepared{std::move(w), std::move(lowered.graph), std::move(comp),
                  std::move(sched)};
}

TEST(RegAlloc, CompactsVirtualRegisters) {
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(9));
  const RegAllocation alloc = allocateRegisters(p.schedule, p.comp);
  // Left edge must not use more physical than virtual registers, and for a
  // kernel with many short-lived temporaries it should use strictly fewer.
  unsigned virtTotal = 0, physTotal = 0;
  for (PEId pe = 0; pe < p.comp.numPEs(); ++pe) {
    EXPECT_LE(alloc.physRegsUsed[pe], p.schedule.vregsPerPE[pe]);
    virtTotal += p.schedule.vregsPerPE[pe];
    physTotal += alloc.physRegsUsed[pe];
  }
  EXPECT_LT(physTotal, virtTotal);
  EXPECT_LE(alloc.cboxSlotsUsed, p.schedule.cboxSlotsUsed);
  EXPECT_GT(alloc.maxRfEntries(), 0u);
}

TEST(RegAlloc, ThrowsWhenRegisterFileTooSmall) {
  FactoryOptions opts;
  opts.regfileSize = 4;  // minimum allowed, too small for ADPCM
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(4, opts));
  EXPECT_THROW(allocateRegisters(p.schedule, p.comp), Error);
}

TEST(RegAlloc, ThrowsWhenCBoxTooSmall) {
  FactoryOptions opts;
  opts.cboxSlots = 2;  // "limits the maximum number of parallel branches"
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(4, opts));
  EXPECT_THROW(allocateRegisters(p.schedule, p.comp), Error);
}

TEST(RegAlloc, AllocatedScheduleStillSimulatesCorrectly) {
  // The decisive lifetime test: after compaction (including loop-extended
  // lifetimes) the physical schedule must produce bit-identical results.
  for (const apps::Workload& w : apps::allWorkloads()) {
    const Prepared p = prepare(w, makeMesh(8));
    const RegAllocation alloc = allocateRegisters(p.schedule, p.comp);
    const Schedule phys = applyAllocation(p.schedule, alloc);

    HostMemory goldenHeap = w.heap;
    kir::Interpreter interp;
    const auto golden = interp.run(w.fn, w.initialLocals, goldenHeap);

    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : phys.liveIns)
      liveIns[lb.var] = w.initialLocals[lb.var];
    HostMemory heap = w.heap;
    const SimResult r = Simulator(p.comp, phys).run(liveIns, heap);
    EXPECT_TRUE(heap == goldenHeap) << w.name;
    for (const auto& [var, value] : r.liveOuts)
      EXPECT_EQ(value, golden.locals[var]) << w.name;
  }
}

TEST(RegAlloc, LoopExtendedLifetimePreventsFalseReuse) {
  // A value written before a loop and read inside it must survive the whole
  // loop even though its last textual read is early in the interval.
  const Prepared p = prepare(apps::makeConditionalHalving(6, 3), makeMesh(4));
  const RegAllocation alloc = allocateRegisters(p.schedule, p.comp);
  const Schedule phys = applyAllocation(p.schedule, alloc);

  // Simulation equivalence is the proof.
  HostMemory goldenHeap = p.workload.heap;
  kir::Interpreter interp;
  const auto golden =
      interp.run(p.workload.fn, p.workload.initialLocals, goldenHeap);
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : phys.liveIns)
    liveIns[lb.var] = p.workload.initialLocals[lb.var];
  HostMemory heap = p.workload.heap;
  const SimResult r = Simulator(p.comp, phys).run(liveIns, heap);
  for (const auto& [var, value] : r.liveOuts)
    EXPECT_EQ(value, golden.locals[var]);
}

TEST(Contexts, EncodeDecodeRoundTripFieldLevel) {
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(9));
  const RegAllocation alloc = allocateRegisters(p.schedule, p.comp);
  const Schedule phys = applyAllocation(p.schedule, alloc);
  const ContextImages img = generateContexts(p.schedule, p.comp);
  const Schedule dec = decodeContexts(img, p.comp);

  EXPECT_EQ(dec.length, phys.length);
  ASSERT_EQ(dec.ops.size(), phys.ops.size());

  auto key = [](const ScheduledOp& op) {
    return std::make_tuple(op.pe, op.start);
  };
  std::map<std::tuple<PEId, unsigned>, const ScheduledOp*> physOps;
  for (const ScheduledOp& op : phys.ops) physOps[key(op)] = &op;
  for (const ScheduledOp& op : dec.ops) {
    const auto it = physOps.find(key(op));
    ASSERT_NE(it, physOps.end());
    const ScheduledOp& ref = *it->second;
    EXPECT_EQ(op.op, ref.op);
    EXPECT_EQ(op.duration, ref.duration);
    EXPECT_EQ(op.writesDest, ref.writesDest);
    if (op.writesDest) EXPECT_EQ(op.destVreg, ref.destVreg);
    EXPECT_EQ(op.pred.has_value(), ref.pred.has_value());
    if (op.pred) {
      EXPECT_EQ(op.pred->slot, ref.pred->slot);
      EXPECT_EQ(op.pred->polarity, ref.pred->polarity);
    }
    for (unsigned i = 0; i < operandCount(op.op); ++i) {
      EXPECT_EQ(op.src[i].kind, ref.src[i].kind);
      if (op.src[i].kind == OperandSource::Kind::Own) {
        EXPECT_EQ(op.src[i].vreg, ref.src[i].vreg);
      }
      if (op.src[i].kind == OperandSource::Kind::Route) {
        EXPECT_EQ(op.src[i].srcPE, ref.src[i].srcPE);
        EXPECT_EQ(op.src[i].vreg, ref.src[i].vreg);
      }
      if (op.src[i].kind == OperandSource::Kind::Imm) {
        EXPECT_EQ(op.src[i].imm, ref.src[i].imm);
      }
    }
  }

  ASSERT_EQ(dec.branches.size(), phys.branches.size());
  ASSERT_EQ(dec.cboxOps.size(), phys.cboxOps.size());
  EXPECT_EQ(dec.liveIns.size(), phys.liveIns.size());
  EXPECT_EQ(dec.liveOuts.size(), phys.liveOuts.size());
}

TEST(Contexts, NegativeImmediatesSurviveEncoding) {
  {
    kir::FunctionBuilder b("neg");
    const auto x = b.param("x");
    const auto r = b.localVar("r");
    const kir::Function fn = b.finish(b.block({
        b.assign(r, b.add(b.use(x), b.cint(-32768))),
    }));
    kir::LoweringResult lowered = kir::lowerToCdfg(fn);
    const Composition comp = makeMesh(4);
    const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
    const ContextImages img = generateContexts(sched, comp);
    const Schedule dec = decodeContexts(img, comp);
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : dec.liveIns) liveIns[lb.var] = 100000;
    HostMemory heap;
    const SimResult result = Simulator(comp, dec).run(liveIns, heap);
    EXPECT_EQ(result.liveOuts.at(lowered.localToVar[r]), 100000 - 32768);
  }
}

TEST(Contexts, WidthsAreMinimizedPerPE) {
  const Prepared p = prepare(apps::makeDotProduct(6, 1), makeMesh(6));
  const ContextImages img = generateContexts(p.schedule, p.comp);
  ASSERT_EQ(img.peWidths.size(), p.comp.numPEs());
  for (PEId pe = 0; pe < p.comp.numPEs(); ++pe) {
    EXPECT_GE(img.peWidths[pe], 1u);
    // Idle-heavy PEs still pad to their own widest context, never wider
    // than a generous bound (op+3 operands with imm+dest+pred < 128 bits).
    EXPECT_LT(img.peWidths[pe], 128u);
    for (const BitVector& ctx : img.peContexts[pe])
      EXPECT_EQ(ctx.size(), img.peWidths[pe]);
  }
  EXPECT_GT(img.totalBits(), 0u);
}

TEST(Contexts, GenerateRejectsOverlongSchedules) {
  FactoryOptions opts;
  opts.contextMemoryLength = 256;
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(4, opts));
  Schedule tooLong = p.schedule;
  tooLong.length = 257;
  EXPECT_THROW(generateContexts(tooLong, p.comp), Error);
}

TEST(Contexts, DecodedImagesSimulateIdentically) {
  for (char c : irregularLabels()) {
    const Composition comp = makeIrregular(c);
    const Prepared p = prepare(apps::makeBubbleSort(6, 2), comp);
    const ContextImages img = generateContexts(p.schedule, p.comp);
    const Schedule dec = decodeContexts(img, p.comp);

    HostMemory goldenHeap = p.workload.heap;
    kir::Interpreter interp;
    interp.run(p.workload.fn, p.workload.initialLocals, goldenHeap);

    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : dec.liveIns)
      liveIns[lb.var] = p.workload.initialLocals[lb.var];
    HostMemory heap = p.workload.heap;
    Simulator(p.comp, dec).run(liveIns, heap);
    EXPECT_TRUE(heap == goldenHeap) << "composition " << c;
  }
}


TEST(RegAlloc, SuppressedHomeWriteDoesNotLeakReusedRegister) {
  // Regression (found by random-composition property testing): a live-out
  // variable whose only writes are predicated OFF must read back its
  // initial zero — the home register may not be reused by e.g. a constant
  // before the (suppressed) first write.
  kir::FunctionBuilder b("suppressed");
  const auto a = b.param("a");
  const auto out = b.localVar("out");
  const auto t = b.localVar("t");
  const kir::Function fn = b.finish(b.block({
      // Condition false for a >= 0: the branch never commits.
      b.ifElse(b.lt(b.use(a), b.cint(0)),
               b.block({
                   b.assign(out, b.cint(1)),
                   b.assign(t, b.add(b.use(a), b.cint(123))),
                   b.assign(out, b.add(b.use(out), b.use(t))),
               })),
  }));
  kir::LoweringResult lowered = kir::lowerToCdfg(fn);
  const Composition comp = makeMesh(4);
  const Schedule sched = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow().schedule;
  const Schedule runnable = decodeContexts(generateContexts(sched, comp), comp);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns) liveIns[lb.var] = 5;
  HostMemory heap;
  const SimResult r = Simulator(comp, runnable).run(liveIns, heap);
  EXPECT_EQ(r.liveOuts.at(lowered.localToVar[out]), 0)
      << "suppressed writes must leave the home register untouched";
  EXPECT_EQ(r.liveOuts.at(lowered.localToVar[t]), 0);
}

TEST(RegAlloc, VarHomesArePinnedAndDistinct) {
  const Prepared p = prepare(apps::makeAdpcm(8, 1), makeMesh(4));
  const RegAllocation alloc = allocateRegisters(p.schedule, p.comp);
  const Schedule phys = applyAllocation(p.schedule, alloc);
  std::set<std::pair<PEId, unsigned>> homes;
  for (const LiveBinding& lb : phys.varHomes)
    EXPECT_TRUE(homes.insert({lb.pe, lb.vreg}).second)
        << "two homes share a register";
}

}  // namespace
}  // namespace cgra
