// Unit tests for the architecture model: operation semantics, PE
// descriptors (JSON round trip), interconnect shortest paths (Floyd vs a
// BFS oracle on random graphs), composition validation, the Fig. 13/14
// factories and the calibrated resource model.
#include <gtest/gtest.h>

#include <queue>

#include "arch/composition.hpp"
#include "arch/factory.hpp"
#include "arch/resource_model.hpp"
#include "support/rng.hpp"

namespace cgra {
namespace {

TEST(Operation, MetadataConsistency) {
  for (unsigned i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_EQ(opFromName(opName(op)), op);
    EXPECT_GE(defaultDuration(op), 1u);
    EXPECT_GT(defaultEnergy(op), 0.0);
    if (producesStatus(op)) {
      EXPECT_FALSE(writesRegister(op));
    }
  }
  EXPECT_FALSE(opFromName("FADD").has_value());
  EXPECT_EQ(defaultDuration(Op::IMUL), 2u) << "block multiplier default";
}

TEST(Operation, CompareSemantics) {
  EXPECT_TRUE(evalCompare(Op::IFEQ, 3, 3));
  EXPECT_TRUE(evalCompare(Op::IFNE, 3, 4));
  EXPECT_TRUE(evalCompare(Op::IFLT, -1, 0));
  EXPECT_FALSE(evalCompare(Op::IFLT, 0, -1));
  EXPECT_TRUE(evalCompare(Op::IFGE, 5, 5));
  EXPECT_TRUE(evalCompare(Op::IFGT, 1, 0));
  EXPECT_TRUE(evalCompare(Op::IFLE, -5, -5));
}

TEST(Operation, ArithWrapsTwosComplement) {
  EXPECT_EQ(evalArith(Op::IADD, std::numeric_limits<std::int32_t>::max(), 1),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(evalArith(Op::ISUB, std::numeric_limits<std::int32_t>::min(), 1),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(evalArith(Op::IMUL, 65536, 65536), 0);
  EXPECT_EQ(evalArith(Op::INEG, std::numeric_limits<std::int32_t>::min(), 0),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(evalArith(Op::ISHR, -8, 1), -4) << "arithmetic shift";
  EXPECT_EQ(evalArith(Op::IUSHR, -8, 1), 0x7FFFFFFC);
  EXPECT_EQ(evalArith(Op::ISHL, 1, 33), 2) << "shift amount masked to 5 bits";
}

TEST(PEDescriptor, StructuralOpsAlwaysSupported) {
  PEDescriptor pe("bare", 16, false);
  EXPECT_TRUE(pe.supports(Op::NOP));
  EXPECT_TRUE(pe.supports(Op::MOVE));
  EXPECT_TRUE(pe.supports(Op::CONST));
  EXPECT_FALSE(pe.supports(Op::IADD));
  EXPECT_FALSE(pe.supports(Op::DMA_LOAD)) << "no DMA port";
  PEDescriptor dma("mem", 16, true);
  EXPECT_TRUE(dma.supports(Op::DMA_LOAD));
  EXPECT_TRUE(dma.supports(Op::DMA_STORE));
}

TEST(PEDescriptor, ImplThrowsForUnsupported) {
  PEDescriptor pe("bare", 16, false);
  EXPECT_THROW(pe.impl(Op::IMUL), Error);
  EXPECT_EQ(pe.impl(Op::MOVE).duration, 1u);
}

TEST(PEDescriptor, JsonRoundTrip) {
  PEDescriptor pe = PEDescriptor::fullInteger("PE_mem", 128, true);
  pe.addOp(Op::IMUL, OpImpl{1.7, 2});
  const json::Value v = pe.toJson();
  const PEDescriptor back = PEDescriptor::fromJson(v);
  EXPECT_EQ(back.name(), "PE_mem");
  EXPECT_EQ(back.regfileSize(), 128u);
  EXPECT_TRUE(back.hasDma());
  EXPECT_EQ(back.impl(Op::IMUL).duration, 2u);
  EXPECT_DOUBLE_EQ(back.impl(Op::IMUL).energy, 1.7);
  EXPECT_EQ(back.ops().size(), pe.ops().size());
}

TEST(PEDescriptor, FromJsonRejectsBadFields) {
  json::Object obj;
  obj["name"] = "x";
  obj["Regfile_size"] = -1;
  EXPECT_THROW(PEDescriptor::fromJson(json::Value(obj)), Error);
  obj["Regfile_size"] = 16;
  json::Object op;
  op["energy"] = 1.0;
  op["duration"] = 1;
  obj["FDIV"] = std::move(op);
  EXPECT_THROW(PEDescriptor::fromJson(json::Value(obj)), Error);
}

// BFS oracle for Floyd–Warshall checks.
std::vector<unsigned> bfsDistances(const Interconnect& ic, PEId from) {
  std::vector<unsigned> dist(ic.numPEs(), kUnreachable);
  std::queue<PEId> q;
  dist[from] = 0;
  q.push(from);
  while (!q.empty()) {
    const PEId cur = q.front();
    q.pop();
    for (PEId next = 0; next < ic.numPEs(); ++next)
      if (ic.hasLink(cur, next) && dist[next] == kUnreachable) {
        dist[next] = dist[cur] + 1;
        q.push(next);
      }
  }
  return dist;
}

class FloydVsBfs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloydVsBfs, RandomGraphsMatchOracle) {
  Rng rng(GetParam());
  const unsigned n = static_cast<unsigned>(rng.range(2, 12));
  Interconnect ic(n);
  for (PEId a = 0; a < n; ++a)
    for (PEId b = 0; b < n; ++b)
      if (a != b && rng.chance(1, 3)) ic.addLink(a, b);
  ic.computeShortestPaths();

  for (PEId from = 0; from < n; ++from) {
    const auto oracle = bfsDistances(ic, from);
    for (PEId to = 0; to < n; ++to) {
      EXPECT_EQ(ic.distance(from, to), oracle[to])
          << "from " << from << " to " << to;
      if (oracle[to] != kUnreachable) {
        const auto path = ic.pathTo(from, to);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), from);
        EXPECT_EQ(path.back(), to);
        EXPECT_EQ(path.size(), oracle[to] + 1) << "path is shortest";
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
          EXPECT_TRUE(ic.hasLink(path[i], path[i + 1]));
      } else {
        EXPECT_TRUE(ic.pathTo(from, to).empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloydVsBfs,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Interconnect, JsonRoundTrip) {
  Interconnect ic(3);
  ic.addBidirectional(0, 1);
  ic.addLink(1, 2);
  ic.addLink(2, 0);
  ic.computeShortestPaths();
  const Interconnect back = Interconnect::fromJson(ic.toJson(), 3);
  EXPECT_TRUE(back.hasLink(0, 1));
  EXPECT_TRUE(back.hasLink(1, 0));
  EXPECT_TRUE(back.hasLink(1, 2));
  EXPECT_FALSE(back.hasLink(2, 1));
  EXPECT_EQ(back.distance(0, 2), 2u);
}

TEST(Interconnect, SelfLinksIgnored) {
  Interconnect ic(2);
  ic.addLink(0, 0);
  ic.addBidirectional(0, 1);
  EXPECT_EQ(ic.numLinks(), 2u);
}

TEST(Composition, ValidatesStructuralConstraints) {
  FactoryOptions opts;
  // More than 4 DMA PEs is rejected (paper §IV-A.1).
  {
    std::vector<PEDescriptor> pes;
    for (unsigned i = 0; i < 6; ++i)
      pes.push_back(PEDescriptor::fullInteger("p", 32, true));
    Interconnect ic(6);
    for (PEId i = 0; i < 6; ++i) ic.addBidirectional(i, (i + 1) % 6);
    ic.computeShortestPaths();
    EXPECT_THROW(Composition("bad", pes, ic, 256, 32), Error);
  }
  // Disconnected interconnect is rejected.
  {
    std::vector<PEDescriptor> pes;
    pes.push_back(PEDescriptor::fullInteger("p", 32, true));
    pes.push_back(PEDescriptor::fullInteger("p", 32, false));
    Interconnect ic(2);  // no links
    ic.computeShortestPaths();
    EXPECT_THROW(Composition("bad", pes, ic, 256, 32), Error);
  }
  (void)opts;
}

TEST(Composition, JsonRoundTrip) {
  const Composition comp = makeIrregular('F');
  const json::Value v = comp.toJson();
  const Composition back = Composition::fromJson(v);
  EXPECT_EQ(back.name(), comp.name());
  EXPECT_EQ(back.numPEs(), comp.numPEs());
  EXPECT_EQ(back.contextMemoryLength(), comp.contextMemoryLength());
  EXPECT_EQ(back.cboxSlots(), comp.cboxSlots());
  EXPECT_EQ(back.pesSupporting(Op::IMUL).size(),
            comp.pesSupporting(Op::IMUL).size());
  for (PEId to = 0; to < comp.numPEs(); ++to)
    EXPECT_EQ(back.interconnect().sources(to), comp.interconnect().sources(to));
}

TEST(Factory, MeshShapesMatchFig13) {
  for (unsigned n : meshSizes()) {
    const Composition comp = makeMesh(n);
    EXPECT_EQ(comp.numPEs(), n);
    EXPECT_GE(comp.dmaPEs().size(), 1u);
    EXPECT_LE(comp.dmaPEs().size(), 4u);
    EXPECT_TRUE(comp.interconnect().stronglyConnected());
    // Mesh: every PE has 2..4 neighbours, links are symmetric.
    for (PEId p = 0; p < n; ++p) {
      const auto& sources = comp.interconnect().sources(p);
      EXPECT_GE(sources.size(), 2u);
      EXPECT_LE(sources.size(), 4u);
      for (PEId s : sources) EXPECT_TRUE(comp.interconnect().hasLink(p, s));
    }
  }
  EXPECT_THROW(makeMesh(5), Error);
}

TEST(Factory, IrregularTopologiesMatchFig14Properties) {
  for (char c : irregularLabels()) {
    const Composition comp = makeIrregular(c);
    EXPECT_EQ(comp.numPEs(), 8u);
    EXPECT_TRUE(comp.interconnect().stronglyConnected());
  }
  // B has the sparsest interconnect; D the richest.
  const std::size_t linksB = makeIrregular('B').interconnect().numLinks();
  const std::size_t linksD = makeIrregular('D').interconnect().numLinks();
  for (char c : irregularLabels()) {
    const std::size_t links = makeIrregular(c).interconnect().numLinks();
    EXPECT_GE(links, linksB) << c;
    EXPECT_LE(links, linksD) << c;
  }
  // F: only two PEs multiply ("only the black PEs support multiplication").
  EXPECT_EQ(makeIrregular('F').pesSupporting(Op::IMUL).size(), 2u);
  EXPECT_EQ(makeIrregular('D').pesSupporting(Op::IMUL).size(), 8u);
  EXPECT_THROW(makeIrregular('G'), Error);
}

TEST(Factory, SingleCycleMultiplierOption) {
  FactoryOptions opts;
  opts.blockMultiplier = false;
  const Composition comp = makeMesh(4, opts);
  for (PEId p = 0; p < 4; ++p)
    EXPECT_EQ(comp.pe(p).impl(Op::IMUL).duration, 1u);
}

// The resource model is calibrated against Table II; check the anchor rows.
TEST(ResourceModel, MatchesTable2Anchors) {
  const ResourceEstimate m4 = estimateResources(makeMesh(4));
  EXPECT_NEAR(m4.frequencyMHz, 103.6, 1.5);
  EXPECT_NEAR(m4.lutLogicPct(), 1.01, 0.15);
  EXPECT_NEAR(m4.lutMemoryPct(), 0.61, 0.05);
  EXPECT_NEAR(m4.dspPct(), 0.33, 0.01);
  EXPECT_NEAR(m4.bramPct(), 0.34, 0.01);

  const ResourceEstimate m16 = estimateResources(makeMesh(16));
  EXPECT_NEAR(m16.frequencyMHz, 86.9, 1.5);
  EXPECT_NEAR(m16.lutLogicPct(), 3.61, 0.3);
  EXPECT_NEAR(m16.lutMemoryPct(), 1.82, 0.1);
  EXPECT_NEAR(m16.dspPct(), 1.33, 0.01);
  EXPECT_NEAR(m16.bramPct(), 1.16, 0.01);
}

TEST(ResourceModel, ShapesFromThePaper) {
  // Utilization grows ~linearly with PE count (§VI-B).
  double prevLut = 0;
  for (unsigned n : meshSizes()) {
    const ResourceEstimate est = estimateResources(makeMesh(n));
    EXPECT_GT(est.lutLogicPct(), prevLut);
    prevLut = est.lutLogicPct();
  }
  // Composition F uses 75% fewer DSPs than D (Table II: 0.17 vs 0.67).
  const ResourceEstimate d = estimateResources(makeIrregular('D'));
  const ResourceEstimate f = estimateResources(makeIrregular('F'));
  EXPECT_NEAR(static_cast<double>(f.dsp) / d.dsp, 0.25, 0.01);
  // Smaller RF clocks faster (§VI-B: +7.2% going 128 -> 32 entries).
  FactoryOptions rf32;
  rf32.regfileSize = 32;
  const double gain = estimateResources(makeMesh(4, rf32)).frequencyMHz /
                      estimateResources(makeMesh(4)).frequencyMHz;
  EXPECT_GT(gain, 1.03);
  EXPECT_LT(gain, 1.12);
  // Single-cycle multipliers clock lower (Table III).
  FactoryOptions single;
  single.blockMultiplier = false;
  EXPECT_LT(estimateResources(makeMesh(4, single)).frequencyMHz,
            estimateResources(makeMesh(4)).frequencyMHz);
}

TEST(Composition, DotRenderingMarksDmaAndMul) {
  const std::string dot = makeIrregular('F').toDot();
  EXPECT_NE(dot.find("DMA"), std::string::npos);
  EXPECT_NE(dot.find("no-MUL"), std::string::npos);
}


TEST(Factory, RingTopologies) {
  const Composition uni = makeRing(6, /*bidirectional=*/false);
  EXPECT_EQ(uni.interconnect().numLinks(), 6u);
  EXPECT_EQ(uni.interconnect().distance(0, 5), 5u) << "one-way around";
  EXPECT_EQ(uni.interconnect().distance(5, 0), 1u);
  const Composition bi = makeRing(6, /*bidirectional=*/true);
  EXPECT_EQ(bi.interconnect().numLinks(), 12u);
  EXPECT_EQ(bi.interconnect().distance(0, 5), 1u);
  EXPECT_THROW(makeRing(1), Error);
}

TEST(Factory, TorusWrapsBothDimensions) {
  const Composition t = makeTorus(3, 4);
  EXPECT_EQ(t.numPEs(), 12u);
  // Wrap links: corner reaches the opposite corner in 2 hops (wrap both).
  EXPECT_EQ(t.interconnect().distance(0, 11), 2u);
  // Every PE has exactly 4 sources in a torus.
  for (PEId p = 0; p < 12; ++p)
    EXPECT_EQ(t.interconnect().sources(p).size(), 4u);
  EXPECT_THROW(makeTorus(1, 4), Error);
}

TEST(Factory, StarRoutesThroughHub) {
  const Composition s = makeStar(6);
  EXPECT_EQ(s.interconnect().distance(1, 5), 2u) << "spoke-hub-spoke";
  EXPECT_EQ(s.interconnect().sources(0).size(), 5u);
  EXPECT_EQ(s.dmaPEs(), std::vector<PEId>{0});
  EXPECT_TRUE(s.interconnect().stronglyConnected());
}


TEST(Composition, FromJsonFileResolvesReferences) {
  // Fig. 8-style split description: the composition file references
  // separate PE and interconnect files.
  const std::string dir = ::testing::TempDir();
  const Composition ref = makeIrregular('F');
  json::Value doc = ref.toJson();
  json::Object& obj = doc.asObject();

  // Externalize PE 0 and the interconnect into their own files.
  json::writeFile(dir + "/pe0.json", obj["PEs"].asObject().at("0"));
  json::writeFile(dir + "/intercon.json", obj.at("Interconnect"));
  obj["PEs"].asObject()["0"] = "pe0.json";             // relative reference
  obj["Interconnect"] = dir + "/intercon.json";        // absolute reference
  json::writeFile(dir + "/comp.json", doc);

  const Composition back = Composition::fromJsonFile(dir + "/comp.json");
  EXPECT_EQ(back.numPEs(), ref.numPEs());
  EXPECT_EQ(back.pe(0).name(), ref.pe(0).name());
  EXPECT_EQ(back.pe(0).hasDma(), ref.pe(0).hasDma());
  for (PEId to = 0; to < ref.numPEs(); ++to)
    EXPECT_EQ(back.interconnect().sources(to), ref.interconnect().sources(to));

  // Repeated references to one PE file share the descriptor.
  obj["PEs"].asObject()["3"] = "pe0.json";
  json::writeFile(dir + "/comp2.json", doc);
  const Composition shared = Composition::fromJsonFile(dir + "/comp2.json");
  EXPECT_EQ(shared.pe(3).name(), ref.pe(0).name());

  EXPECT_THROW(Composition::fromJsonFile(dir + "/nonexistent.json"), Error);
}

TEST(Factory, MakeTopologyBuildsEveryFamily) {
  const FactoryOptions opts;
  for (const char* topo : {"mesh", "torus", "ring", "uniring", "star"}) {
    const Composition comp = makeTopology(topo, topo, 2, 3, opts, {0});
    EXPECT_EQ(comp.numPEs(), 6u) << topo;
    EXPECT_TRUE(comp.interconnect().stronglyConnected()) << topo;
    EXPECT_EQ(comp.dmaPEs(), std::vector<PEId>{0}) << topo;
  }
}

TEST(Factory, MakeTopologyRejectsDegenerateInputs) {
  const FactoryOptions opts;
  // Zero-PE arrays, in both orientations.
  EXPECT_THROW(makeTopology("z", "mesh", 0, 4, opts, {0}), Error);
  EXPECT_THROW(makeTopology("z", "mesh", 4, 0, opts, {0}), Error);
  // DMA placement that cannot reach the array: none at all, or an id past
  // the last PE.
  EXPECT_THROW(makeTopology("d", "mesh", 2, 2, opts, {}), Error);
  EXPECT_THROW(makeTopology("d", "mesh", 2, 2, opts, {4}), Error);
  EXPECT_THROW(makeTopology("d", "mesh", 2, 2, opts, {0}, {7}), Error);
  // Shape floors per family.
  EXPECT_THROW(makeTopology("t", "torus", 1, 4, opts, {0}), Error);
  EXPECT_THROW(makeTopology("t", "torus", 4, 1, opts, {0}), Error);
  EXPECT_THROW(makeTopology("r", "ring", 1, 1, opts, {0}), Error);
  EXPECT_THROW(makeTopology("s", "star", 1, 1, opts, {0}), Error);
  // Unknown family is a typed error, not a silent mesh.
  EXPECT_THROW(makeTopology("u", "moebius", 2, 2, opts, {0}), Error);
  // RF width 0 (more generally < 4) fails Composition::validate().
  FactoryOptions tinyRf;
  tinyRf.regfileSize = 0;
  EXPECT_THROW(makeTopology("rf", "mesh", 2, 2, tinyRf, {0}), Error);
}

TEST(Composition, RejectsOpLessPE) {
  // A PE whose op set is empty can never host an operation or a route
  // endpoint; Composition::validate() must reject it with a typed error
  // rather than letting the scheduler fail deep inside.
  Composition ok = makeMeshGrid(2, 2);
  std::vector<PEDescriptor> pes;
  for (PEId i = 0; i < ok.numPEs(); ++i) pes.push_back(ok.pe(i));
  pes[2] = PEDescriptor("mute", 128, false);  // no ops registered
  try {
    Composition bad("bad", pes, ok.interconnect(), 256, 32);
    FAIL() << "op-less PE must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("supports no operations"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace cgra
