// Integration sweep: every bundled workload on every paper composition
// (Fig. 13 meshes and Fig. 14 irregular compositions), validated and
// simulated against the interpreter — the broadest correctness matrix in
// the suite. A second sweep covers frontend-pass combinations on the
// evaluation kernel, and a third stresses capacity-constrained compositions.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

Composition compositionByIndex(std::size_t idx) {
  if (idx < 6) return makeMesh(meshSizes()[idx]);
  return makeIrregular(irregularLabels()[idx - 6]);
}

void runAndCompare(const apps::Workload& w, const kir::Function& fn,
                   const Composition& comp, bool viaContexts) {
  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  const auto golden = interp.run(fn, w.initialLocals, goldenHeap);

  const kir::LoweringResult lowered = kir::lowerToCdfg(fn);
  const ScheduleReport result = Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow();
  const auto issues = validateSchedule(result.schedule, lowered.graph, comp);
  ASSERT_TRUE(issues.empty()) << w.name << " on " << comp.name() << ": "
                              << issues.front();

  Schedule runnable = result.schedule;
  if (viaContexts)
    runnable = decodeContexts(generateContexts(result.schedule, comp), comp);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  const SimResult r = Simulator(comp, runnable).run(liveIns, heap);

  EXPECT_TRUE(heap == goldenHeap) << w.name << " on " << comp.name();
  for (const auto& [var, value] : r.liveOuts)
    EXPECT_EQ(value, golden.locals[var])
        << w.name << " on " << comp.name() << ", variable "
        << lowered.graph.variable(var).name;
}

using SweepParam = std::tuple<std::size_t, std::size_t>;  // workload, comp

class WorkloadCompositionSweep
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(WorkloadCompositionSweep, ScheduleLevel) {
  const auto [wIdx, cIdx] = GetParam();
  const auto workloads = apps::allWorkloads();
  runAndCompare(workloads[wIdx], workloads[wIdx].fn, compositionByIndex(cIdx),
                /*viaContexts=*/false);
}

TEST_P(WorkloadCompositionSweep, ContextLevel) {
  const auto [wIdx, cIdx] = GetParam();
  const auto workloads = apps::allWorkloads();
  runAndCompare(workloads[wIdx], workloads[wIdx].fn, compositionByIndex(cIdx),
                /*viaContexts=*/true);
}

std::string sweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto workloads = apps::allWorkloads();
  const std::size_t cIdx = std::get<1>(info.param);
  const std::string comp =
      cIdx < 6 ? "mesh" + std::to_string(meshSizes()[cIdx])
               : std::string("irr") + irregularLabels()[cIdx - 6];
  return workloads[std::get<0>(info.param)].name + "_" + comp;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, WorkloadCompositionSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, 12),
                       ::testing::Range<std::size_t>(0, 12)),
    sweepName);

// Frontend-pass combinations on the paper's evaluation kernel.
class AdpcmPassSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdpcmPassSweep, PassesComposeCorrectlyOnCgra) {
  const apps::Workload w = apps::makeAdpcm(16, 5);
  kir::Function fn = w.fn;
  switch (GetParam()) {
    case 0: break;
    case 1: fn = kir::eliminateCommonSubexpressions(fn); break;
    case 2: fn = kir::unrollLoops(fn, 2, true); break;
    case 3: fn = kir::unrollLoops(fn, 3, true); break;
    case 4:
      fn = kir::unrollLoops(kir::eliminateCommonSubexpressions(fn), 2, true);
      break;
    case 5: fn = kir::unrollLoops(fn, 2, false); break;
  }
  runAndCompare(w, fn, makeMesh(9), /*viaContexts=*/true);
}

INSTANTIATE_TEST_SUITE_P(Variants, AdpcmPassSweep, ::testing::Range(0, 6));

// Capacity-constrained compositions still produce correct (or cleanly
// rejected) results.
TEST(CapacityStress, SmallRegisterFilesStillCorrectOrRejected) {
  for (unsigned rf : {8u, 12u, 16u, 24u}) {
    FactoryOptions opts;
    opts.regfileSize = rf;
    const Composition comp = makeMesh(4, opts);
    const apps::Workload w = apps::makeAdpcm(8, 2);
    try {
      runAndCompare(w, w.fn, comp, /*viaContexts=*/true);
    } catch (const Error& e) {
      // A clean capacity error is acceptable; silent corruption is not.
      EXPECT_NE(std::string(e.what()).find("register"), std::string::npos)
          << e.what();
    }
  }
}

TEST(CapacityStress, TinyCBoxStillCorrectOrRejected) {
  for (unsigned slots : {4u, 6u, 8u}) {
    FactoryOptions opts;
    opts.cboxSlots = slots;
    const Composition comp = makeMesh(4, opts);
    const apps::Workload w = apps::makeEwmaClip(6, 3);
    try {
      runAndCompare(w, w.fn, comp, /*viaContexts=*/true);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("C-Box"), std::string::npos)
          << e.what();
    }
  }
}

}  // namespace
}  // namespace cgra
