// Persistent schedule artifacts + content-addressed store (DESIGN.md §10):
// bit-exact round trips, equivalence of deserialized schedules (validator +
// simulator), cache-key sensitivity and salting, store hit/miss/evict/LRU
// behavior, corruption detection, negative caching, warm-vs-cold cached
// sweeps, and 8 threads hammering one cache directory (run under tsan by
// the thread-sanitize preset).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "artifact/artifact.hpp"
#include "artifact/store.hpp"
#include "artifact/sweep_cache.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/job_key.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

namespace sfs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  sfs::path path;
  explicit TempDir(const std::string& tag) {
    path = sfs::temp_directory_path() /
           ("cgra_artifact_test_" + tag + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    sfs::remove_all(path);
    sfs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    sfs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

ScheduleReport scheduleKernel(const Composition& comp, const Cdfg& graph,
                              SchedulerOptions opts = {}) {
  ScheduleRequest request(graph);
  request.options = opts;
  return Scheduler(comp, opts).schedule(request);
}

TEST(Artifact, ScheduleRoundTripIsBitExact) {
  // The adpcm kernel exercises every schedule feature: loops, predication,
  // C-Box combines, branches, DMA and live bindings.
  const Composition comp = makeMesh(9);
  const Cdfg graph = kir::lowerToCdfg(apps::makeAdpcm(8, 1).fn).graph;
  const ScheduleReport report = scheduleKernel(comp, graph);
  ASSERT_TRUE(report.ok);

  const json::Value doc = artifact::scheduleToJson(report.schedule);
  const Schedule back =
      artifact::scheduleFromJson(json::parse(doc.dump()));
  EXPECT_EQ(back.fingerprint(), report.schedule.fingerprint());
  EXPECT_EQ(back.toString(comp), report.schedule.toString(comp));
  // Serialization is canonical: a round-tripped schedule re-serializes to
  // the same bytes.
  EXPECT_EQ(artifact::scheduleToJson(back).dump(), doc.dump());
}

TEST(Artifact, SuccessfulArtifactRoundTrips) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(12, 18).fn).graph;
  const ScheduleReport report = scheduleKernel(comp, graph);
  ASSERT_TRUE(report.ok);
  const std::string key = scheduleJobKey(comp, graph, SchedulerOptions{});

  const artifact::ScheduleArtifact art =
      artifact::ScheduleArtifact::fromReport(key, report);
  EXPECT_EQ(art.stats.wallTimeMs, 0.0) << "volatile field must be zeroed";
  EXPECT_EQ(art.metrics.totalMs, 0.0);

  const std::string bytes = art.toJson().dump();
  const artifact::ScheduleArtifact back =
      artifact::ScheduleArtifact::fromJson(json::parse(bytes));
  EXPECT_EQ(back.key, key);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.fingerprint, report.schedule.fingerprint());
  EXPECT_EQ(back.schedule.fingerprint(), report.schedule.fingerprint());
  EXPECT_EQ(back.stats.contextsUsed, report.stats.contextsUsed);
  EXPECT_EQ(back.stats.copiesInserted, report.stats.copiesInserted);
  EXPECT_EQ(back.metrics.nodesScheduled, report.metrics.nodesScheduled);
  EXPECT_EQ(back.metrics.probeRejections, report.metrics.probeRejections);
  // Content-determinism: re-serializing the parsed artifact is byte-exact.
  EXPECT_EQ(back.toJson().dump(), bytes);
}

TEST(Artifact, DeserializedScheduleValidatesAndSimulatesIdentically) {
  const apps::Workload w = apps::makeAdpcm(12, 1);
  const Cdfg graph = kir::lowerToCdfg(w.fn).graph;
  const Composition comp = makeMesh(9);
  const ScheduleReport report = scheduleKernel(comp, graph);
  ASSERT_TRUE(report.ok);

  const Schedule restored = artifact::scheduleFromJson(
      json::parse(artifact::scheduleToJson(report.schedule).dump()));

  // Same verdict from the validator...
  checkSchedule(restored, graph, comp);

  // ...and the same memory state out of the simulator, matching the golden
  // interpreter, from both the fresh and the deserialized schedule.
  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  interp.run(w.fn, w.initialLocals, goldenHeap);

  for (const Schedule* sched : {&report.schedule, &restored}) {
    std::map<VarId, std::int32_t> liveIns;
    for (const LiveBinding& lb : sched->liveIns)
      liveIns[lb.var] = w.initialLocals[lb.var];
    HostMemory heap = w.heap;
    Simulator(comp, *sched).run(liveIns, heap);
    EXPECT_TRUE(heap == goldenHeap);
  }
}

TEST(Artifact, FailureArtifactRoundTripsTypedReason) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph;
  SchedulerOptions opts;
  opts.maxContexts = 4;  // gcd does not fit in 4 contexts
  const ScheduleReport report = scheduleKernel(comp, graph, opts);
  ASSERT_FALSE(report.ok);
  ASSERT_EQ(report.failure.reason, FailureReason::ContextBudget);

  const artifact::ScheduleArtifact art =
      artifact::ScheduleArtifact::fromReport("k-fail", report);
  const artifact::ScheduleArtifact back =
      artifact::ScheduleArtifact::fromJson(
          json::parse(art.toJson().dump()));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.failure.reason, FailureReason::ContextBudget);
  EXPECT_EQ(back.failure.message, report.failure.message);
}

TEST(Artifact, TamperedScheduleIsRejectedByFingerprint) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const ScheduleReport report = scheduleKernel(comp, graph);
  ASSERT_TRUE(report.ok);
  const artifact::ScheduleArtifact art =
      artifact::ScheduleArtifact::fromReport("k", report);

  // Flip one scheduled op's PE in the document: the recomputed fingerprint
  // no longer matches the stored one.
  json::Value doc = json::parse(art.toJson().dump());
  json::Object& sched =
      doc.asObject()["schedule"].asObject();
  json::Object& op = sched["ops"].asArray().at(0).asObject();
  op["pe"] = op.at("pe").asInt() == 0 ? 1 : 0;
  EXPECT_THROW(artifact::ScheduleArtifact::fromJson(doc), Error);
}

TEST(Artifact, UnknownFormatTagIsRejected) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const artifact::ScheduleArtifact art =
      artifact::ScheduleArtifact::fromReport("k",
                                             scheduleKernel(comp, graph));
  json::Value doc = json::parse(art.toJson().dump());
  doc.asObject()["format"] = "cgra-artifact-v999";
  EXPECT_THROW(artifact::ScheduleArtifact::fromJson(doc), Error);
}

TEST(JobKey, SensitiveToEveryInputAndSalt) {
  const Composition mesh4 = makeMesh(4);
  const Composition mesh9 = makeMesh(9);
  const Cdfg gcd = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const Cdfg dot = kir::lowerToCdfg(apps::makeDotProduct(4, 2).fn).graph;
  const SchedulerOptions defaults;
  SchedulerOptions budget;
  budget.maxContexts = 7;

  const std::string base = scheduleJobKey(mesh4, gcd, defaults);
  EXPECT_EQ(scheduleJobKey(mesh4, gcd, defaults), base)
      << "the key must be deterministic";
  EXPECT_EQ(base.size(), 64u) << "SHA-256 hex";
  EXPECT_NE(scheduleJobKey(mesh9, gcd, defaults), base);
  EXPECT_NE(scheduleJobKey(mesh4, dot, defaults), base);
  EXPECT_NE(scheduleJobKey(mesh4, gcd, budget), base);
  EXPECT_NE(scheduleJobKey(mesh4, gcd, defaults, "other-salt"), base)
      << "bumping the version salt must invalidate every key";
}

TEST(JobKey, PrecomputedDigestVariantsAgree) {
  // Every overload funnels into the double-digest recipe, so keys computed
  // by the sweep engine (precomputed per-graph digests), the cache layer
  // (comp digest only) and the CLI (full recompute) must be identical.
  const Composition mesh4 = makeMesh(4);
  const Cdfg gcd = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const SchedulerOptions defaults;

  const std::string base = scheduleJobKey(mesh4, gcd, defaults);
  EXPECT_EQ(scheduleJobKeyWithCompDigest(compositionDigest(mesh4), gcd,
                                         defaults),
            base);
  EXPECT_EQ(scheduleJobKeyWithDigests(compositionDigest(mesh4),
                                      cdfgDigest(gcd), defaults),
            base);
  EXPECT_EQ(cdfgDigest(gcd).size(), 64u) << "SHA-256 hex";
  EXPECT_EQ(cdfgDigest(gcd), cdfgDigest(gcd)) << "deterministic";
}

artifact::ScheduleArtifact makeArtifact(const Composition& comp,
                                        const Cdfg& graph,
                                        const std::string& key) {
  return artifact::ScheduleArtifact::fromReport(key,
                                                scheduleKernel(comp, graph));
}

TEST(ArtifactStore, MemoryOnlyHitsAndMisses) {
  artifact::ArtifactStore store;  // no directory
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const std::string key = scheduleJobKey(comp, graph, SchedulerOptions{});

  EXPECT_EQ(store.lookup(key), nullptr);
  store.insert(std::make_shared<const artifact::ScheduleArtifact>(
      makeArtifact(comp, graph, key)));
  const auto hit = store.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->key, key);
  EXPECT_EQ(store.lookup("missing-key"), nullptr);

  const artifact::StoreCounters c = store.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.memoryHits, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.inserts, 1u);
}

TEST(ArtifactStore, DiskEntriesSurviveReopen) {
  const TempDir dir("reopen");
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const std::string key = scheduleJobKey(comp, graph, SchedulerOptions{});
  const std::uint64_t fp = [&] {
    artifact::StoreOptions so;
    so.directory = dir.str();
    artifact::ArtifactStore store(so);
    const auto art = makeArtifact(comp, graph, key);
    store.insert(std::make_shared<const artifact::ScheduleArtifact>(art));
    return art.fingerprint;
  }();

  artifact::StoreOptions so;
  so.directory = dir.str();
  artifact::ArtifactStore reopened(so);
  EXPECT_GT(reopened.diskBytes(), 0u) << "existing entries are indexed";
  const auto hit = reopened.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->schedule.fingerprint(), fp);
  EXPECT_EQ(reopened.counters().diskHits, 1u);
  // Second lookup is served by the hot layer.
  reopened.lookup(key);
  EXPECT_EQ(reopened.counters().memoryHits, 1u);
}

TEST(ArtifactStore, CorruptFileIsDiscardedAsMiss) {
  const TempDir dir("corrupt");
  artifact::StoreOptions so;
  so.directory = dir.str();
  artifact::ArtifactStore store(so);

  const std::string key(64, 'a');
  std::ofstream(dir.path / (key + ".json")) << "{\"format\": \"truncated";
  EXPECT_EQ(store.lookup(key), nullptr);
  EXPECT_EQ(store.counters().invalid, 1u);
  EXPECT_FALSE(sfs::exists(dir.path / (key + ".json")))
      << "corrupt files are deleted so they cannot miss forever";
}

TEST(ArtifactStore, WrongKeyFileIsRejected) {
  // An artifact stored under the wrong filename (e.g. a manually renamed
  // file) must not be served for that key.
  const TempDir dir("wrongkey");
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  artifact::StoreOptions so;
  so.directory = dir.str();
  artifact::ArtifactStore store(so);
  store.insert(std::make_shared<const artifact::ScheduleArtifact>(
      makeArtifact(comp, graph, "real-key")));

  sfs::rename(dir.path / "real-key.json", dir.path / "other-key.json");
  artifact::ArtifactStore fresh(so);
  EXPECT_EQ(fresh.lookup("other-key"), nullptr);
  EXPECT_EQ(fresh.counters().invalid, 1u);
}

TEST(ArtifactStore, ByteCapEvictsLeastRecentlyUsed) {
  const TempDir dir("lru");
  const Composition comp = makeMesh(4);
  // Three kernels → three artifacts of a few KB each.
  const Cdfg g1 = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  const Cdfg g2 = kir::lowerToCdfg(apps::makeDotProduct(4, 2).fn).graph;
  const Cdfg g3 = kir::lowerToCdfg(apps::makeEwmaClip(4, 6).fn).graph;
  const SchedulerOptions defaults;
  const std::string k1 = scheduleJobKey(comp, g1, defaults);
  const std::string k2 = scheduleJobKey(comp, g2, defaults);
  const std::string k3 = scheduleJobKey(comp, g3, defaults);

  artifact::StoreOptions so;
  so.directory = dir.str();
  so.maxMemoryEntries = 0;  // exercise the disk layer alone
  artifact::ArtifactStore probe(so);
  probe.insert(std::make_shared<const artifact::ScheduleArtifact>(
      makeArtifact(comp, g1, k1)));
  const std::size_t oneArtifact = probe.diskBytes();
  ASSERT_GT(oneArtifact, 0u);

  // Cap at two artifacts: inserting the third must evict the LRU one (k1).
  so.maxDiskBytes = 2 * oneArtifact + oneArtifact / 2;
  artifact::ArtifactStore store(so);
  store.insert(std::make_shared<const artifact::ScheduleArtifact>(
      makeArtifact(comp, g2, k2)));
  store.insert(std::make_shared<const artifact::ScheduleArtifact>(
      makeArtifact(comp, g3, k3)));
  EXPECT_GE(store.counters().evictions, 1u);
  EXPECT_LE(store.diskBytes(), so.maxDiskBytes);
  EXPECT_FALSE(sfs::exists(dir.path / (k1 + ".json")))
      << "the least-recently-used entry's file is removed";
  EXPECT_TRUE(sfs::exists(dir.path / (k3 + ".json")));
}

TEST(CachedSweep, WarmRunMatchesColdRunExactly) {
  const TempDir dir("warm");
  std::deque<Composition> comps;
  comps.push_back(makeMesh(4));
  comps.push_back(makeMesh(9));
  std::deque<Cdfg> graphs;
  graphs.push_back(kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph);
  graphs.push_back(kir::lowerToCdfg(apps::makeDotProduct(4, 2).fn).graph);
  std::vector<SweepJob> jobs;
  for (const Composition& comp : comps)
    for (const Cdfg& graph : graphs)
      jobs.push_back(SweepJob{&comp, &graph, "", SchedulerOptions{}});

  SweepOptions opts;
  opts.threads = 2;
  artifact::StoreOptions so;
  so.directory = dir.str();

  artifact::ArtifactStore cold(so);
  const SweepReport coldReport = artifact::runCachedSweep(jobs, opts, cold);
  ASSERT_EQ(coldReport.failures, 0u);
  EXPECT_EQ(coldReport.cacheMisses, jobs.size());
  EXPECT_EQ(coldReport.cacheHits, 0u);

  artifact::ArtifactStore warm(so);  // fresh store: only disk is warm
  const SweepReport warmReport = artifact::runCachedSweep(jobs, opts, warm);
  ASSERT_EQ(warmReport.failures, 0u);
  EXPECT_EQ(warmReport.cacheHits, jobs.size());
  EXPECT_EQ(warmReport.cacheMisses, 0u);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(warmReport.results[i].fromCache);
    EXPECT_EQ(warmReport.results[i].fingerprint,
              coldReport.results[i].fingerprint);
    EXPECT_EQ(warmReport.results[i].cacheKey, coldReport.results[i].cacheKey);
    // Warm schedules validate like fresh ones.
    checkSchedule(warmReport.results[i].schedule, *jobs[i].graph,
                  *jobs[i].comp);
  }
  // The byte-stable JSON cannot tell a warm run from a cold one.
  EXPECT_EQ(warmReport.toJson(false).dump(), coldReport.toJson(false).dump());
  // The volatile JSON can: it carries the cache traffic.
  const json::Value volatileDoc = warmReport.toJson(true);
  const json::Object& volatileJson =
      volatileDoc.asObject().at("cache").asObject();
  EXPECT_EQ(volatileJson.at("hits").asInt(),
            static_cast<std::int64_t>(jobs.size()));
}

TEST(CachedSweep, NegativeResultsAreCachedToo) {
  const TempDir dir("negative");
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(546, 2394).fn).graph;
  SchedulerOptions opts;
  opts.maxContexts = 4;  // unmappable
  const std::vector<SweepJob> jobs = {SweepJob{&comp, &graph, "gcd", opts}};

  artifact::StoreOptions so;
  so.directory = dir.str();
  artifact::ArtifactStore store(so);
  const SweepReport coldReport =
      artifact::runCachedSweep(jobs, SweepOptions{}, store);
  EXPECT_EQ(coldReport.failures, 1u);
  EXPECT_EQ(coldReport.cacheMisses, 1u);

  const SweepReport warmReport =
      artifact::runCachedSweep(jobs, SweepOptions{}, store);
  EXPECT_EQ(warmReport.cacheHits, 1u) << "failures must be cached (negative "
                                         "caching) — they are deterministic";
  EXPECT_EQ(warmReport.failures, 1u);
  EXPECT_EQ(warmReport.results[0].failure.reason,
            FailureReason::ContextBudget);
  EXPECT_EQ(warmReport.results[0].failure.message,
            coldReport.results[0].failure.message);
}

TEST(Sweep, InSweepDedupCooperatesWithStore) {
  // Duplicate jobs inside one cached sweep: the store sees each distinct
  // key once, and every result carries the shared key.
  const TempDir dir("dedup");
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  std::vector<SweepJob> jobs(4, SweepJob{&comp, &graph, "gcd",
                                         SchedulerOptions{}});

  artifact::StoreOptions so;
  so.directory = dir.str();
  artifact::ArtifactStore store(so);
  SweepOptions opts;
  opts.threads = 2;
  const SweepReport report = artifact::runCachedSweep(jobs, opts, store);
  ASSERT_EQ(report.failures, 0u);
  EXPECT_EQ(report.dedupedJobs, 3u);
  EXPECT_EQ(store.counters().inserts, 1u)
      << "one artifact insert for four identical jobs";
  for (const SweepJobResult& r : report.results)
    EXPECT_EQ(r.cacheKey, report.results[0].cacheKey);
}

TEST(ArtifactStore, EightThreadsHammerOneCacheDirectory) {
  // The tsan preset runs this binary too: 8 threads race lookups and
  // inserts (including overlapping same-key inserts, which the atomic
  // temp+rename publication must keep safe) against one shared directory.
  const TempDir dir("hammer");
  const Composition comp = makeMesh(4);
  const SchedulerOptions defaults;
  std::deque<Cdfg> graphs;
  graphs.push_back(kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph);
  graphs.push_back(kir::lowerToCdfg(apps::makeDotProduct(4, 2).fn).graph);
  graphs.push_back(kir::lowerToCdfg(apps::makeEwmaClip(4, 6).fn).graph);

  std::vector<std::string> keys;
  std::vector<std::shared_ptr<const artifact::ScheduleArtifact>> artifacts;
  for (const Cdfg& graph : graphs) {
    keys.push_back(scheduleJobKey(comp, graph, defaults));
    artifacts.push_back(std::make_shared<const artifact::ScheduleArtifact>(
        makeArtifact(comp, graph, keys.back())));
  }

  artifact::StoreOptions so;
  so.directory = dir.str();
  so.maxMemoryEntries = 1;  // force constant disk traffic + memory churn
  artifact::ArtifactStore store(so);

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      for (unsigned i = 0; i < 40; ++i) {
        const std::size_t j = (t + i) % artifacts.size();
        store.insert(artifacts[j]);
        const auto hit = store.lookup(keys[j]);
        if (hit != nullptr) {
          EXPECT_EQ(hit->key, keys[j]);
        }
        store.lookup("absent-" + std::to_string(i % 4));
      }
    });
  for (std::thread& t : threads) t.join();

  // Every artifact must be intact afterwards.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto hit = store.lookup(keys[i]);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->schedule.fingerprint(), artifacts[i]->schedule.fingerprint());
  }
  EXPECT_EQ(store.counters().invalid, 0u);
}

}  // namespace
}  // namespace cgra
