// Tests for the KIR frontend normalization pipeline (src/kir/passes/):
// each pass alone (short-circuit lowering, switch lowering, exit
// normalization) is checked for interpreter equivalence and for the
// structural guarantees it advertises; the assembled pipeline is checked
// for identity on construct-free kernels, for composition with unrolling
// and CSE, and end-to-end (pipeline -> CDFG -> schedule -> simulate).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "kir/passes.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace cgra::kir {
namespace {

/// Runs `fn` and `transformed` on the same inputs and expects identical
/// heap plus identical values for every local of the ORIGINAL function
/// (passes append helper locals; those are not compared).
void expectEquivalent(const Function& fn, const Function& transformed,
                      const std::vector<std::int32_t>& locals,
                      const HostMemory& heap = HostMemory()) {
  Interpreter interp;
  HostMemory h1 = heap, h2 = heap;
  const auto before = interp.run(fn, locals, h1);
  const auto after = interp.run(transformed, locals, h2);
  EXPECT_TRUE(h1 == h2) << fn.name();
  for (LocalId l = 0; l < fn.numLocals(); ++l)
    EXPECT_EQ(after.locals[l], before.locals[l])
        << fn.name() << " local " << fn.local(l).name << "\n"
        << transformed.toString();
}

// ---------------------------------------------------------------------------
// Short-circuit lowering

TEST(ShortCircuit, RemovesLogicalOperators) {
  const Function fn = parseKernel(
      "kernel f(a,b,c) { var r = a > 0 && (b > 0 || c > 0); }");
  const Function low = lowerShortCircuit(fn);
  EXPECT_FALSE(containsExprKind(low, ExprKind::LogicalAnd));
  EXPECT_FALSE(containsExprKind(low, ExprKind::LogicalOr));
  for (std::int32_t a : {-1, 1})
    for (std::int32_t b : {-1, 1})
      for (std::int32_t c : {-1, 1}) expectEquivalent(fn, low, {a, b, c});
}

TEST(ShortCircuit, PreservesLaziness) {
  // The guarded load is out of bounds whenever n == 0; lowering must keep
  // it inside the conditional.
  const Function fn = parseKernel(
      "kernel f(data, n) { var r = n > 0 && data[n - 1] > 2; }");
  const Function low = lowerShortCircuit(fn);
  Interpreter interp;
  HostMemory heap;
  const Handle h = heap.alloc(std::vector<std::int32_t>{9});
  HostMemory h1 = heap;
  EXPECT_EQ(interp.run(low, {h, 0}, h1).locals[fn.localByName("r")], 0);
  HostMemory h2 = heap;
  EXPECT_EQ(interp.run(low, {h, 1}, h2).locals[fn.localByName("r")], 1);
}

TEST(ShortCircuit, LowersWhileCondition) {
  // insertion sort's inner loop guard: j > 0 && a[j-1] > key. The lowered
  // loop gains a break (cleaned up by exit normalization, which runs next
  // in the pipeline) but must behave identically.
  const Function fn = parseKernelFile(
      std::string(CGRA_KERNEL_DIR) + "/insertion_sort.kir");
  const Function low = lowerShortCircuit(fn);
  EXPECT_FALSE(containsExprKind(low, ExprKind::LogicalAnd));
  HostMemory heap;
  const Handle a = heap.alloc({5, 2, 9, 1, 7, 3});
  expectEquivalent(fn, low, {a, 6}, heap);
}

// ---------------------------------------------------------------------------
// Switch lowering

Function makeSwitchProbe(std::size_t numCases, bool withDefault) {
  FunctionBuilder b("swp");
  const LocalId op = b.param("op");
  const LocalId r = b.localVar("r");
  std::vector<std::int32_t> values;
  std::vector<StmtId> arms;
  for (std::size_t i = 0; i < numCases; ++i) {
    // Sparse, unsorted, with negatives: stresses the bucket ordering.
    const std::int32_t v =
        static_cast<std::int32_t>((i * 7) % (numCases * 3)) - 4;
    values.push_back(v);
    arms.push_back(b.assign(r, b.cint(1000 + v)));
  }
  const StmtId dflt = withDefault ? b.assign(r, b.cint(-77)) : kNoStmt;
  return b.finish(b.block({
      b.assign(r, b.cint(0)),
      b.switchStmt(b.use(op), std::move(values), std::move(arms), dflt),
  }));
}

TEST(SwitchLower, LinearAndBucketAgreeWithInterpreter) {
  for (std::size_t cases : {1u, 2u, 5u, 6u, 9u}) {
    for (bool withDefault : {false, true}) {
      const Function fn = makeSwitchProbe(cases, withDefault);
      for (SwitchStrategy strat :
           {SwitchStrategy::Linear, SwitchStrategy::Bucket,
            SwitchStrategy::Auto}) {
        const Function low = lowerSwitches(fn, strat);
        EXPECT_FALSE(containsStmtKind(low, StmtKind::Switch));
        // Sweep every value around the case range, hitting every arm, the
        // gaps between cases, and both out-of-range sides.
        for (std::int32_t op = -8;
             op <= static_cast<std::int32_t>(cases) * 3 + 4; ++op)
          expectEquivalent(fn, low, {op});
      }
    }
  }
}

TEST(SwitchLower, AutoPicksBucketForWideSwitches) {
  // Auto = Linear below the bucket threshold (6 cases), Bucket at/above.
  // The bucket tree introduces a range-test structure whose statement count
  // differs from the linear ladder, so the strategies are distinguishable.
  const Function wide = makeSwitchProbe(8, true);
  const Function linear = lowerSwitches(wide, SwitchStrategy::Linear);
  const Function bucket = lowerSwitches(wide, SwitchStrategy::Bucket);
  const Function autoed = lowerSwitches(wide, SwitchStrategy::Auto);
  EXPECT_NE(countStmtNodes(linear), countStmtNodes(bucket));
  EXPECT_EQ(autoed.toString(), bucket.toString());

  const Function narrow = makeSwitchProbe(3, true);
  EXPECT_EQ(lowerSwitches(narrow, SwitchStrategy::Auto).toString(),
            lowerSwitches(narrow, SwitchStrategy::Linear).toString());
}

// ---------------------------------------------------------------------------
// Exit normalization

TEST(ExitNormalize, RemovesBreakContinueReturn) {
  const Function fn = parseKernel(R"(
    kernel f(data, n) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        var v = data[i];
        i = i + 1;
        if (v == 0) { break; }
        if (v < 0) { continue; }
        if (v > 100) { return sum + v; }
        sum = sum + v;
      }
      return sum;
    }
  )");
  const Function norm = normalizeExits(fn);
  EXPECT_EQ(firstIrregularConstruct(norm), nullptr) << norm.toString();
  HostMemory heap;
  const Handle h = heap.alloc({3, -7, 4, 200, 5, 0, 9});
  for (std::int32_t n : {0, 1, 2, 3, 4, 5, 6, 7})
    expectEquivalent(fn, norm, {h, n}, heap);
}

TEST(ExitNormalize, ContinueOnlyLoopKeepsRunning) {
  // continue must re-test the condition and proceed with later iterations
  // (a wrong lowering that treats continue like break terminates early).
  const Function fn = parseKernel(R"(
    kernel f(n) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        i = i + 1;
        if ((i & 1) == 1) { continue; }
        sum = sum + i;
      }
    }
  )");
  const Function norm = normalizeExits(fn);
  EXPECT_EQ(firstIrregularConstruct(norm), nullptr);
  Interpreter interp;
  HostMemory heap;
  EXPECT_EQ(interp.run(norm, {10}, heap).locals[fn.localByName("sum")],
            2 + 4 + 6 + 8 + 10);
}

TEST(ExitNormalize, NestedLoopsExitIndependently) {
  const Function fn = parseKernelFile(
      std::string(CGRA_KERNEL_DIR) + "/string_search.kir");
  const Function norm = normalizeExits(fn);
  EXPECT_EQ(firstIrregularConstruct(norm), nullptr);
  Interpreter interp;
  const LocalId result = fn.localByName("result");
  // hello / ll -> 2; hello / lo -> 3; hello / xy -> -1 (return never fires,
  // result keeps its initializer).
  const std::vector<std::pair<std::vector<std::int32_t>, std::int32_t>>
      cases = {{{108, 108}, 2}, {{108, 111}, 3}, {{120, 121}, -1}};
  for (const auto& [needle, expected] : cases) {
    HostMemory heap;
    const Handle hs = heap.alloc({104, 101, 108, 108, 111});
    const Handle nd = heap.alloc(needle);
    const std::vector<std::int32_t> in = {
        hs, 5, nd, static_cast<std::int32_t>(needle.size())};
    HostMemory h2 = heap;
    EXPECT_EQ(interp.run(norm, in, h2).locals[result], expected);
    expectEquivalent(fn, norm, in, heap);
  }
}

TEST(ExitNormalize, IdentityOnStructuredCode) {
  // A kernel with no irregular constructs must come back byte-identical —
  // the pass (and the whole pipeline) leaves structured code alone.
  const Function fn = parseKernelFile(std::string(CGRA_KERNEL_DIR) +
                                      "/matmul.kir");
  EXPECT_EQ(normalizeExits(fn).toString(), fn.toString());
  const FrontendResult piped = runFrontendPipeline(fn);
  EXPECT_EQ(piped.fn.toString(), fn.toString());
  for (const StageRecord& s : piped.stages)
    if (s.name != "input") {
      EXPECT_FALSE(s.ran) << s.name;
    }
}

// ---------------------------------------------------------------------------
// Pipeline composition

TEST(Pipeline, UnrollComposesWithExitNormalize) {
  // Regression: a break inside a loop that is later unrolled. Unrolling
  // runs AFTER normalization, so it only ever sees structured loops; the
  // unrolled guard variables must still stop the copies mid-body.
  const Function fn = parseKernel(R"(
    kernel f(data, n, stop) {
      var sum = 0;
      var i = 0;
      while (i < n) {
        if (data[i] == stop) { break; }
        sum = sum + data[i];
        i = i + 1;
      }
    }
  )");
  HostMemory heap;
  const Handle h = heap.alloc({4, 1, 5, 9, 2, 6, 5, 3});
  for (unsigned factor : {2u, 3u, 4u}) {
    FrontendOptions opts;
    opts.unrollFactor = factor;
    opts.unrollInnermostOnly = true;
    const FrontendResult r = runFrontendPipeline(fn, opts);
    EXPECT_EQ(firstIrregularConstruct(r.fn), nullptr) << "factor " << factor;
    for (std::int32_t stop : {9, 5, 77})
      expectEquivalent(fn, r.fn, {h, 8, stop}, heap);
  }
}

TEST(Pipeline, CseComposesWithNormalizedExits) {
  FrontendOptions opts;
  opts.cse = true;
  const Function fn = parseKernelFile(std::string(CGRA_KERNEL_DIR) +
                                      "/vm_accumulate.kir");
  const FrontendResult r = runFrontendPipeline(fn, opts);
  EXPECT_EQ(firstIrregularConstruct(r.fn), nullptr);
  HostMemory heap;
  const Handle ops = heap.alloc({0, 5, 2, 3, 4, 0, 1, 7, 5, 0, 0, 9});
  const Handle out = heap.alloc(std::vector<std::int32_t>(7, 0));
  expectEquivalent(fn, r.fn, {ops, 6, out}, heap);
}

TEST(Pipeline, InlinedCalleeReturnStaysInsideCallee) {
  // callee: clamp(p) { if (p > 9) { return 9; } return p; }
  // caller: out = clamp(a) + 1. The callee's return must not leak into the
  // caller's control flow after inlining.
  Program prog;
  FunctionBuilder cb("clamp");
  const LocalId p = cb.param("p");
  const LocalId res = cb.localVar("result");
  (void)res;
  const FuncId callee = prog.addFunction(cb.finish(cb.block({
      cb.ifElse(cb.gt(cb.use(p), cb.cint(9)),
                cb.block({cb.ret(cb.cint(9))})),
      cb.ret(cb.use(p)),
  })));

  FunctionBuilder mb("main");
  const LocalId a = mb.param("a");
  const LocalId out = mb.localVar("out");
  const Function caller = mb.finish(mb.block({
      mb.call(out, callee, {mb.use(a)}),
      mb.assign(out, mb.add(mb.use(out), mb.cint(1))),
  }));

  const Function flat = inlineCalls(prog, caller);
  EXPECT_EQ(firstIrregularConstruct(flat), nullptr) << flat.toString();
  Interpreter interp(&prog);
  Interpreter flatInterp;
  for (std::int32_t v : {3, 9, 50}) {
    HostMemory h1, h2;
    EXPECT_EQ(flatInterp.run(flat, {v}, h2).locals[out],
              interp.run(caller, {v}, h1).locals[out]);
  }
}

TEST(Pipeline, RejectsCallsWithoutProgram) {
  Program prog;
  FunctionBuilder cb("id");
  const LocalId p = cb.param("p");
  const LocalId res = cb.localVar("result");
  const FuncId callee = prog.addFunction(
      cb.finish(cb.block({cb.assign(res, cb.use(p))})));
  FunctionBuilder mb("main");
  const LocalId a = mb.param("a");
  const LocalId out = mb.localVar("out");
  const Function caller =
      mb.finish(mb.block({mb.call(out, callee, {mb.use(a)})}));
  EXPECT_THROW(runFrontendPipeline(caller), Error);
  EXPECT_NO_THROW(runFrontendPipeline(caller, {}, &prog));
}

TEST(Pipeline, StageRecordsAreDeterministic) {
  const Function fn = parseKernelFile(std::string(CGRA_KERNEL_DIR) +
                                      "/vm_accumulate.kir");
  FrontendOptions opts;
  opts.captureStages = true;
  const FrontendResult r1 = runFrontendPipeline(fn, opts);
  const FrontendResult r2 = runFrontendPipeline(fn, opts);
  ASSERT_EQ(r1.stages.size(), r2.stages.size());
  const std::vector<std::string> expectedNames = {
      "input",          "inline", "shortcircuit", "switch-lower",
      "exit-normalize", "cse",    "unroll"};
  ASSERT_EQ(r1.stages.size(), expectedNames.size());
  for (std::size_t i = 0; i < r1.stages.size(); ++i) {
    EXPECT_EQ(r1.stages[i].name, expectedNames[i]);
    EXPECT_EQ(r1.stages[i].ran, r2.stages[i].ran);
    EXPECT_EQ(r1.stages[i].ir, r2.stages[i].ir) << r1.stages[i].name;
  }
  // vm_accumulate exercises ||, switch and break/continue; with default
  // options those three normalization stages run, inline/cse/unroll skip.
  auto stage = [&](const std::string& name) -> const StageRecord& {
    for (const StageRecord& s : r1.stages)
      if (s.name == name) return s;
    throw Error("no stage " + name);
  };
  EXPECT_TRUE(stage("shortcircuit").ran);
  EXPECT_TRUE(stage("switch-lower").ran);
  EXPECT_TRUE(stage("exit-normalize").ran);
  EXPECT_FALSE(stage("inline").ran);
  EXPECT_FALSE(stage("cse").ran);
  EXPECT_FALSE(stage("unroll").ran);
}

// ---------------------------------------------------------------------------
// CDFG boundary

TEST(LowerCdfg, RejectsIrregularConstructsByName) {
  auto expectRejects = [](const std::string& src, const std::string& what) {
    const Function fn = parseKernel(src);
    try {
      lowerToCdfg(fn);
      FAIL() << "expected rejection: " << src;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("normalization pipeline"),
                std::string::npos)
          << e.what();
    }
    // The fix it suggests works: the pipeline output lowers cleanly.
    EXPECT_NO_THROW(lowerToCdfg(runFrontendPipeline(fn).fn));
  };
  expectRejects("kernel f(a) { while (a > 0) { break; } }", "a 'break'");
  expectRejects("kernel f(a) { while (a > 0) { continue; } }",
                "a 'continue'");
  expectRejects("kernel f(a) { return a; }", "a 'return'");
  expectRejects("kernel f(a) { var r = a > 0 && a < 9; }",
                "a short-circuit '&&'");
  expectRejects("kernel f(a) { var r = a > 0 || a < 9; }",
                "a short-circuit '||'");
  expectRejects("kernel f(a) { switch (a) { case 1: { a = 0; } } }",
                "a 'switch'");
}

TEST(Pipeline, EndToEndOnCgra) {
  // pipeline -> CDFG -> schedule -> simulate for a kernel that uses every
  // new construct, compared against the interpreter on the ORIGINAL.
  const Function fn = parseKernelFile(std::string(CGRA_KERNEL_DIR) +
                                      "/vm_accumulate.kir");
  HostMemory goldenHeap;
  const Handle ops = goldenHeap.alloc({0, 5, 2, 3, 4, 0, 1, 7, 5, 0, 0, 9});
  const Handle out = goldenHeap.alloc(std::vector<std::int32_t>(7, 0));
  const std::vector<std::int32_t> initial = {ops, 6, out};
  Interpreter interp;
  HostMemory refHeap = goldenHeap;
  interp.run(fn, initial, refHeap);

  const Function norm = runFrontendPipeline(fn).fn;
  const LoweringResult lowered = lowerToCdfg(norm);
  FactoryOptions fo;
  fo.contextMemoryLength = 2048;
  fo.cboxSlots = 64;
  const Composition comp = makeMesh(9, fo);
  const ScheduleReport report =
      Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow();
  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : report.schedule.liveIns)
    liveIns[lb.var] = initial[lb.var];
  HostMemory simHeap = goldenHeap;
  Simulator(comp, report.schedule).run(liveIns, simHeap);
  EXPECT_TRUE(simHeap == refHeap);
}

}  // namespace
}  // namespace cgra::kir
