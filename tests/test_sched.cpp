// Unit tests for the scheduler: mapping failures, option knobs (attraction,
// fusing, priority), home-PE pinning for pWRITEs, the C-Box one-status-per-
// cycle constraint, loop-interval construction, and validator coverage of
// every invariant class.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"

namespace cgra {
namespace {

Cdfg lowerWorkload(const apps::Workload& w) {
  return kir::lowerToCdfg(w.fn).graph;
}

TEST(Scheduler, RejectsUnsupportedOperations) {
  // A composition whose PEs cannot multiply cannot map a kernel with IMUL.
  FactoryOptions opts;
  Composition base = makeMesh(4, opts);
  std::vector<PEDescriptor> pes;
  for (PEId p = 0; p < 4; ++p) {
    PEDescriptor pe = base.pe(p);
    pe.removeOp(Op::IMUL);
    pes.push_back(std::move(pe));
  }
  const Composition noMul("noMul", std::move(pes), base.interconnect(), 256, 32);

  const Cdfg graph = lowerWorkload(apps::makeDotProduct(4, 1));
  const Scheduler scheduler(noMul);
  const ScheduleReport report = scheduler.schedule(ScheduleRequest(graph));
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure.reason, FailureReason::UnsupportedOp);
  EXPECT_NE(report.failure.node, kNoNode);
  EXPECT_NE(report.failure.message.find("IMUL"), std::string::npos);
  // The legacy overload still surfaces the same condition as an exception.
  EXPECT_THROW(scheduler.schedule(ScheduleRequest(graph)).orThrow(), Error);
}

TEST(Scheduler, RejectsWhenContextMemoryTooSmall) {
  FactoryOptions opts;
  opts.contextMemoryLength = 8;  // far too small for ADPCM
  const Composition comp = makeMesh(4, opts);
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const Scheduler scheduler(comp);
  const ScheduleReport report = scheduler.schedule(ScheduleRequest(graph));
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure.reason, FailureReason::ContextBudget);
}

TEST(Scheduler, MaxContextsOptionOverridesComposition) {
  const Composition comp = makeMesh(4);
  SchedulerOptions opts;
  opts.maxContexts = 4;
  const Cdfg graph = lowerWorkload(apps::makeGcd(4, 6));
  const Scheduler scheduler(comp, opts);
  const ScheduleReport report = scheduler.schedule(ScheduleRequest(graph));
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure.reason, FailureReason::ContextBudget);
  EXPECT_NE(report.failure.message.find("4 contexts"), std::string::npos);
}

TEST(Scheduler, SaturatedSinglePECompositionFailsGracefully) {
  // Regression for the occupancy underflow/unbounded-growth class of bugs:
  // a single-PE composition with a tiny context budget saturates every
  // resource map. The scheduler must report unmappable promptly — a hang or
  // runaway allocation here means a downward scan wrapped past cycle 0 or a
  // probe grew a busy table without bound. State is shared with the worker
  // thread via shared_ptr so a hung run (test failure) cannot dangle.
  std::vector<PEDescriptor> pes;
  pes.push_back(PEDescriptor::fullInteger("solo", 32, /*hasDma=*/true));
  Interconnect ic(1);
  ic.computeShortestPaths();
  const auto comp = std::make_shared<Composition>("solo1", std::move(pes),
                                                  std::move(ic), 6, 8);
  const auto graph =
      std::make_shared<Cdfg>(lowerWorkload(apps::makeAdpcm(8, 1)));

  const auto outcome = std::make_shared<std::promise<bool>>();
  std::future<bool> done = outcome->get_future();
  std::thread([comp, graph, outcome] {
    const ScheduleReport r = Scheduler(*comp).schedule(ScheduleRequest(*graph));
    // The kernel cannot possibly fit in 6 contexts: success would be wrong.
    outcome->set_value(!r.ok);
  }).detach();

  ASSERT_EQ(done.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "scheduler hung on a saturated composition";
  EXPECT_TRUE(done.get());
}

TEST(Scheduler, SchedulesAreValidOnAllCompositions) {
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  for (unsigned n : meshSizes()) {
    const Composition comp = makeMesh(n);
    const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
    EXPECT_TRUE(validateSchedule(r.schedule, graph, comp).empty()) << n;
  }
  for (char c : irregularLabels()) {
    const Composition comp = makeIrregular(c);
    const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
    EXPECT_TRUE(validateSchedule(r.schedule, graph, comp).empty()) << c;
  }
}

TEST(Scheduler, EveryPWriteLandsOnItsHomePE) {
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const Composition comp = makeMesh(9);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();

  // All ops representing pWRITEs of the same variable write one (pe, vreg).
  std::map<VarId, std::pair<PEId, unsigned>> homes;
  for (const ScheduledOp& op : r.schedule.ops) {
    if (op.node == kNoNode || !graph.node(op.node).isPWrite()) continue;
    ASSERT_TRUE(op.writesDest);
    const VarId var = graph.node(op.node).var;
    const auto key = std::make_pair(op.pe, op.destVreg);
    const auto [it, inserted] = homes.try_emplace(var, key);
    if (!inserted) {
      EXPECT_EQ(it->second, key) << "variable " << var;
    }
  }
}

TEST(Scheduler, LiveBindingsCoverLiveInsAndOuts) {
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const Composition comp = makeMesh(4);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();

  std::set<VarId> liveIn, liveOut;
  for (const LiveBinding& lb : r.schedule.liveIns) liveIn.insert(lb.var);
  for (const LiveBinding& lb : r.schedule.liveOuts) liveOut.insert(lb.var);
  for (VarId v = 0; v < graph.numVariables(); ++v) {
    // Every live-out variable that was touched must be bound.
    if (graph.variable(v).liveOut) {
      EXPECT_TRUE(liveOut.contains(v)) << v;
    }
    // Live-in bindings only for live-in variables.
    if (liveIn.contains(v)) {
      EXPECT_TRUE(graph.variable(v).liveIn) << v;
    }
  }
}

TEST(Scheduler, OneStatusPerCycle) {
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const Composition comp = makeMesh(16);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();

  std::map<unsigned, unsigned> statusCycles;
  for (const ScheduledOp& op : r.schedule.ops)
    if (op.emitsStatus) ++statusCycles[op.lastCycle()];
  for (const auto& [cycle, count] : statusCycles)
    EXPECT_EQ(count, 1u) << "two comparisons finish at t" << cycle;
}

TEST(Scheduler, LoopIntervalsAreProperlyNested) {
  const Cdfg graph = lowerWorkload(apps::makeMatMul(3, 1));
  const Composition comp = makeMesh(8);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
  ASSERT_EQ(r.schedule.loops.size(), 3u) << "three nested loops";

  std::map<LoopId, LoopInterval> byLoop;
  for (const LoopInterval& li : r.schedule.loops) byLoop[li.loop] = li;
  for (LoopId l = 1; l < graph.numLoops(); ++l) {
    ASSERT_TRUE(byLoop.contains(l));
    const LoopId parent = graph.loop(l).parent;
    if (parent == kRootLoop) continue;
    EXPECT_GE(byLoop[l].start, byLoop[parent].start);
    EXPECT_LT(byLoop[l].end, byLoop[parent].end);
  }
}

TEST(Scheduler, FusingReducesScheduleLength) {
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const Composition comp = makeMesh(8);
  SchedulerOptions noFuse;
  noFuse.fuseWrites = false;
  const ScheduleReport fused = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
  const ScheduleReport plain = Scheduler(comp, noFuse).schedule(ScheduleRequest(graph)).orThrow();
  EXPECT_GT(fused.stats.fusedWrites, 0u);
  EXPECT_EQ(plain.stats.fusedWrites, 0u);
  EXPECT_LE(fused.schedule.length, plain.schedule.length);
}

TEST(Scheduler, AttractionImprovesScheduleQuality) {
  // The attraction criterion (§V-G) orders PEs by data locality; across the
  // evaluated compositions it must not lose in aggregate schedule length.
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  SchedulerOptions noAtt;
  noAtt.useAttraction = false;
  unsigned withAtt = 0, withoutAtt = 0;
  for (char c : {'B', 'D', 'E'}) {
    const Composition comp = makeIrregular(c);
    withAtt += Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow().schedule.length;
    withoutAtt += Scheduler(comp, noAtt).schedule(ScheduleRequest(graph)).orThrow().schedule.length;
  }
  for (unsigned n : {8u, 9u}) {
    const Composition comp = makeMesh(n);
    withAtt += Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow().schedule.length;
    withoutAtt += Scheduler(comp, noAtt).schedule(ScheduleRequest(graph)).orThrow().schedule.length;
  }
  EXPECT_LE(withAtt, withoutAtt);
}

TEST(Scheduler, StatsAreConsistent) {
  const Cdfg graph = lowerWorkload(apps::makeFir(6, 3, 1));
  const Composition comp = makeMesh(6);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
  EXPECT_EQ(r.stats.contextsUsed, r.schedule.length);
  EXPECT_EQ(r.stats.cboxSlotsUsed, r.schedule.cboxSlotsUsed);
  EXPECT_GE(r.stats.wallTimeMs, 0.0);
  unsigned moveCount = 0, constCount = 0;
  for (const ScheduledOp& op : r.schedule.ops) {
    if (op.node != kNoNode) continue;
    if (op.op == Op::MOVE) ++moveCount;
    if (op.op == Op::CONST) ++constCount;
  }
  EXPECT_EQ(moveCount, r.stats.copiesInserted);
  EXPECT_EQ(constCount, r.stats.constsInserted);
}

TEST(Scheduler, DmaOpsOnlyOnDmaPEs) {
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const Composition comp = makeMesh(9);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
  for (const ScheduledOp& op : r.schedule.ops)
    if (isMemoryOp(op.op)) {
      EXPECT_TRUE(comp.pe(op.pe).hasDma());
    }
}

TEST(Scheduler, ToStringListsBranchesAndPredication) {
  const Cdfg graph = lowerWorkload(apps::makeGcd(9, 6));
  const Composition comp = makeMesh(4);
  const ScheduleReport r = Scheduler(comp).schedule(ScheduleRequest(graph)).orThrow();
  const std::string dump = r.schedule.toString(comp);
  EXPECT_NE(dump.find("CCU if"), std::string::npos);
  EXPECT_NE(dump.find("[pred"), std::string::npos);
  EXPECT_NE(dump.find("CBOX"), std::string::npos);
}


TEST(Scheduler, MultiHopCopiesOnUnidirectionalRing) {
  // On a one-way ring a value produced "behind" its consumer must travel
  // almost the whole ring through inserted MOVE hops (§V-G routing).
  FactoryOptions opts;
  opts.contextMemoryLength = 512;
  const Composition ring = makeRing(6, /*bidirectional=*/false, opts);
  const Cdfg graph = lowerWorkload(apps::makeEwmaClip(6, 2));
  const ScheduleReport r = Scheduler(ring).schedule(ScheduleRequest(graph)).orThrow();
  EXPECT_TRUE(validateSchedule(r.schedule, graph, ring).empty());
  EXPECT_GT(r.stats.copiesInserted, 0u) << "sparse topology forces copies";
}

TEST(Scheduler, StarTopologyRoutesThroughHub) {
  FactoryOptions opts;
  opts.contextMemoryLength = 512;
  const Composition star = makeStar(5, opts);
  const Cdfg graph = lowerWorkload(apps::makeGcd(21, 14));
  const ScheduleReport r = Scheduler(star).schedule(ScheduleRequest(graph)).orThrow();
  EXPECT_TRUE(validateSchedule(r.schedule, graph, star).empty());
  // Any Route between two spokes is impossible directly; every such access
  // must be a hub read or preceded by a copy through PE 0.
  for (const ScheduledOp& op : r.schedule.ops)
    for (const OperandSource& src : op.src)
      if (src.kind == OperandSource::Kind::Route) {
        EXPECT_TRUE(src.srcPE == 0 || op.pe == 0)
            << "spoke-to-spoke route without the hub";
      }
}

TEST(Scheduler, TorusWrapLinksShortenRoutes) {
  FactoryOptions opts;
  opts.contextMemoryLength = 512;
  const Composition torus = makeTorus(3, 3, opts);
  const Composition mesh = makeMeshGrid(3, 3, opts, {0, 8});
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const ScheduleReport onTorus = Scheduler(torus).schedule(ScheduleRequest(graph)).orThrow();
  const ScheduleReport onMesh = Scheduler(mesh).schedule(ScheduleRequest(graph)).orThrow();
  EXPECT_TRUE(validateSchedule(onTorus.schedule, graph, torus).empty());
  // Wrap links can only help: never more contexts than the open mesh with
  // a small tolerance for heuristic noise.
  EXPECT_LE(onTorus.schedule.length, onMesh.schedule.length + 2);
}

// ---------------------------------------------------------------------------
// Validator coverage: corrupt valid schedules and expect detection.

class ValidatorDetects : public ::testing::Test {
protected:
  void SetUp() override {
    graph_ = lowerWorkload(apps::makeEwmaClip(6, 1));
    comp_ = makeMesh(4);
    sched_ = Scheduler(*comp_).schedule(ScheduleRequest(graph_)).orThrow().schedule;
    ASSERT_TRUE(validateSchedule(sched_, graph_, *comp_).empty());
  }

  Cdfg graph_;
  std::optional<Composition> comp_;
  Schedule sched_;
};

TEST_F(ValidatorDetects, DoubleBookedPE) {
  Schedule bad = sched_;
  ASSERT_GE(bad.ops.size(), 2u);
  // Force two ops onto the same PE and cycle.
  bad.ops[1].pe = bad.ops[0].pe;
  bad.ops[1].start = bad.ops[0].start;
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

TEST_F(ValidatorDetects, MissingNode) {
  Schedule bad = sched_;
  // Drop a scheduled CDFG node entirely.
  for (std::size_t i = 0; i < bad.ops.size(); ++i)
    if (bad.ops[i].node != kNoNode &&
        !graph_.node(bad.ops[i].node).isPWrite()) {
      bad.ops.erase(bad.ops.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

TEST_F(ValidatorDetects, BrokenRouting) {
  Schedule bad = sched_;
  bool mutated = false;
  for (ScheduledOp& op : bad.ops)
    for (OperandSource& src : op.src)
      if (!mutated && src.kind == OperandSource::Kind::Route) {
        // Route from a PE that is not connected to op.pe (itself).
        src.srcPE = op.pe;
        mutated = true;
      }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

TEST_F(ValidatorDetects, MissingPredication) {
  Schedule bad = sched_;
  bool mutated = false;
  for (ScheduledOp& op : bad.ops)
    if (!mutated && op.pred) {
      op.pred.reset();
      mutated = true;
    }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

TEST_F(ValidatorDetects, MissingBackBranch) {
  Schedule bad = sched_;
  ASSERT_FALSE(bad.branches.empty());
  bad.branches.pop_back();
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

TEST_F(ValidatorDetects, ScheduleTooLong) {
  Schedule bad = sched_;
  bad.length = comp_->contextMemoryLength() + 1;
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

TEST_F(ValidatorDetects, ViolatedFlowDependency) {
  Schedule bad = sched_;
  // Move the last-starting node op to cycle 0 — some dependency must break.
  ScheduledOp* latest = nullptr;
  for (ScheduledOp& op : bad.ops)
    if (op.node != kNoNode && !graph_.inEdges(op.node).empty() &&
        (!latest || op.start > latest->start))
      latest = &op;
  ASSERT_NE(latest, nullptr);
  latest->start = 0;
  EXPECT_FALSE(validateSchedule(bad, graph_, *comp_).empty());
}

}  // namespace
}  // namespace cgra
