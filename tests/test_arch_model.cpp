// Tests for the shared immutable ArchModel: table correctness against the
// composition it was built from, digest equivalence with the job-key layer,
// per-instance memoization (copies share, distinct instances do not), and
// the headline guarantee of the pass-pipeline refactor — a 64-job
// single-composition sweep performs exactly one model build.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "apps/kernels.hpp"
#include "arch/arch_model.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/job_key.hpp"
#include "sched/sweep.hpp"

namespace cgra {
namespace {

TEST(ArchModel, TablesMatchComposition) {
  const Composition comp = makeMesh(9);
  const ArchModel model = ArchModel::build(comp);

  ASSERT_EQ(model.numPEs(), comp.numPEs());
  ASSERT_EQ(model.sinks.size(), comp.numPEs());
  ASSERT_EQ(model.sources.size(), comp.numPEs());
  ASSERT_EQ(model.connectivity.size(), comp.numPEs());
  ASSERT_EQ(model.reachCount.size(), comp.numPEs());

  for (PEId p = 0; p < comp.numPEs(); ++p) {
    // sinks/sources mirror the interconnect's directed links exactly.
    for (PEId q = 0; q < comp.numPEs(); ++q) {
      const bool link = comp.interconnect().hasLink(p, q);
      const bool inSinks =
          std::find(model.sinks[p].begin(), model.sinks[p].end(), q) !=
          model.sinks[p].end();
      const bool inSources =
          std::find(model.sources[q].begin(), model.sources[q].end(), p) !=
          model.sources[q].end();
      EXPECT_EQ(link, inSinks) << "pe " << p << " -> " << q;
      EXPECT_EQ(link, inSources) << "pe " << p << " -> " << q;
    }
    EXPECT_EQ(model.connectivity[p],
              model.sinks[p].size() + model.sources[p].size());
    EXPECT_EQ(model.peHasDma[p], comp.pe(p).hasDma());
  }

  EXPECT_EQ(model.dmaPEs, comp.dmaPEs());
  EXPECT_EQ(model.cboxSlots, comp.cboxSlots());
  EXPECT_EQ(model.contextMemoryLength, comp.contextMemoryLength());
  for (unsigned op = 0; op < kNumOps; ++op)
    EXPECT_EQ(model.supportingPEs[op],
              comp.pesSupporting(static_cast<Op>(op)))
        << opName(static_cast<Op>(op));
}

TEST(ArchModel, DigestMatchesJobKeyLayer) {
  const Composition comp = makeIrregular('D');
  const std::string json = comp.toJson().dump();
  EXPECT_EQ(ArchModel::get(comp)->digest(),
            ArchModel::digestCompositionJson(json));
  EXPECT_EQ(ArchModel::get(comp)->digest(), compositionDigest(comp));
  EXPECT_EQ(compositionDigest(json), ArchModel::digestCompositionJson(json));
}

TEST(ArchModel, GetMemoizesPerInstance) {
  const Composition comp = makeMesh(4);
  const std::uint64_t before = ArchModel::buildsPerformed();
  const auto a = ArchModel::get(comp);
  EXPECT_EQ(ArchModel::buildsPerformed() - before, 1u);
  const auto b = ArchModel::get(comp);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(ArchModel::buildsPerformed() - before, 1u)
      << "second get() must be served from the memo";

  // A copy of the composition shares the memo slot (and thus the model);
  // an independently constructed equal composition builds its own.
  const Composition copy = comp;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(ArchModel::get(copy).get(), a.get());
  EXPECT_EQ(ArchModel::buildsPerformed() - before, 1u);

  const Composition fresh = makeMesh(4);
  EXPECT_NE(ArchModel::get(fresh).get(), a.get());
  EXPECT_EQ(ArchModel::get(fresh)->digest(), a->digest())
      << "equal content must still digest identically";
}

TEST(ArchModel, RepeatedSchedulingBuildsModelOnce) {
  // Satellite guarantee: N schedulers + N schedule() calls on one
  // composition instance never recompute the Floyd–Warshall tables.
  const Composition comp = makeMesh(9);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(12, 18).fn).graph;
  const std::uint64_t before = ArchModel::buildsPerformed();
  std::uint64_t fingerprint = 0;
  for (int i = 0; i < 8; ++i) {
    const Scheduler scheduler(comp);
    const ScheduleReport r =
        scheduler.schedule(ScheduleRequest(graph)).orThrow();
    if (i == 0) fingerprint = r.schedule.fingerprint();
    EXPECT_EQ(r.schedule.fingerprint(), fingerprint);
  }
  EXPECT_EQ(ArchModel::buildsPerformed() - before, 1u);
}

TEST(ArchModel, SixtyFourJobSweepBuildsModelOnce) {
  // Acceptance criterion of the pass-pipeline refactor: a 64-job sweep over
  // one composition performs exactly one ArchModel build, and the
  // SweepReport says so.
  const Composition comp = makeMesh(9);
  std::deque<Cdfg> graphs;
  std::vector<SweepJob> jobs;
  const char* kernels[] = {"adpcm", "gcd", "dotprod", "fir"};
  for (unsigned i = 0; i < 64; ++i) {
    switch (i % 4) {
      case 0: graphs.push_back(kir::lowerToCdfg(apps::makeAdpcm(8, 1).fn).graph); break;
      case 1: graphs.push_back(kir::lowerToCdfg(apps::makeGcd(4 + i, 6).fn).graph); break;
      case 2: graphs.push_back(kir::lowerToCdfg(apps::makeDotProduct(4, 1).fn).graph); break;
      default: graphs.push_back(kir::lowerToCdfg(apps::makeFir(8, 3).fn).graph); break;
    }
    jobs.push_back(SweepJob{&comp, &graphs.back(),
                            std::string(kernels[i % 4]) + std::to_string(i),
                            SchedulerOptions{}});
  }

  const std::uint64_t before = ArchModel::buildsPerformed();
  SweepOptions opts;
  opts.threads = 4;
  const SweepReport report = runSweep(jobs, opts);
  EXPECT_EQ(ArchModel::buildsPerformed() - before, 1u);
  EXPECT_EQ(report.archModelBuilds, 1u);
  EXPECT_EQ(report.routingCacheEntries, 1u);
  EXPECT_EQ(report.results.size(), 64u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GE(report.archModelBuildMs, 0.0);

  // The volatile JSON form reports the build counters; the stable form must
  // not (builds depend on memo warmth from earlier sweeps).
  const std::string vol = report.toJson(true).dump();
  const std::string stable = report.toJson(false).dump();
  EXPECT_NE(vol.find("archModelBuilds"), std::string::npos);
  EXPECT_EQ(stable.find("archModelBuilds"), std::string::npos);
  EXPECT_EQ(stable.find("archModelBuildMs"), std::string::npos);
}

}  // namespace
}  // namespace cgra
