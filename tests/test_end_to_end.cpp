// End-to-end pipeline tests: KIR kernel → golden interpreter result vs
//  (a) baseline bytecode on the token machine,
//  (b) CDFG → scheduler → schedule-level simulation,
//  (c) CDFG → scheduler → register allocation → context images → decoded
//      context-level simulation,
// each compared bit-exactly (locals and heap).
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "host/token_machine.hpp"
#include "kir/interp.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

struct Golden {
  std::vector<std::int32_t> locals;
  HostMemory heap;
};

Golden runGolden(const apps::Workload& w) {
  Golden g;
  g.heap = w.heap;
  kir::Interpreter interp;
  g.locals = interp.run(w.fn, w.initialLocals, g.heap).locals;
  return g;
}

/// Runs the CGRA pipeline on `comp` and compares against the golden run.
void expectCgraMatch(const apps::Workload& w, const Composition& comp,
                     bool viaContexts) {
  const Golden golden = runGolden(w);

  const kir::LoweringResult lowered = kir::lowerToCdfg(w.fn);
  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  checkSchedule(result.schedule, lowered.graph, comp);

  Schedule runnable = result.schedule;
  if (viaContexts) {
    const ContextImages images = generateContexts(result.schedule, comp);
    runnable = decodeContexts(images, comp);
  }

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : runnable.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];

  HostMemory heap = w.heap;
  const Simulator sim(comp, runnable);
  const SimResult simResult = sim.run(liveIns, heap);

  // Heap must match bit-exactly.
  EXPECT_TRUE(heap == golden.heap) << w.name << ": heap mismatch";

  // Live-out variables must match the golden locals.
  for (const auto& [var, value] : simResult.liveOuts)
    EXPECT_EQ(value, golden.locals[var])
        << w.name << ": live-out mismatch for "
        << lowered.graph.variable(var).name;

  EXPECT_GT(simResult.runCycles, 0u);
}

class WorkloadPipeline : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadPipeline, BaselineMatchesInterpreter) {
  const auto workloads = apps::allWorkloads();
  const apps::Workload& w = workloads[GetParam()];
  const Golden golden = runGolden(w);

  const BytecodeFunction bc = kir::lowerToBytecode(w.fn);
  HostMemory heap = w.heap;
  const TokenMachine machine;
  const TokenRunResult result = machine.run(bc, w.initialLocals, heap);

  EXPECT_TRUE(heap == golden.heap) << w.name << ": heap mismatch";
  ASSERT_EQ(result.locals.size(), golden.locals.size());
  for (std::size_t i = 0; i < result.locals.size(); ++i)
    EXPECT_EQ(result.locals[i], golden.locals[i])
        << w.name << ": local " << w.fn.local(static_cast<kir::LocalId>(i)).name;
  EXPECT_GT(result.cycles, 0u);
}

TEST_P(WorkloadPipeline, CgraScheduleLevelMatchesInterpreter) {
  const auto workloads = apps::allWorkloads();
  expectCgraMatch(workloads[GetParam()], makeMesh(4), /*viaContexts=*/false);
}

TEST_P(WorkloadPipeline, CgraContextLevelMatchesInterpreter) {
  const auto workloads = apps::allWorkloads();
  expectCgraMatch(workloads[GetParam()], makeMesh(9), /*viaContexts=*/true);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadPipeline,
                         ::testing::Range<std::size_t>(0, 12),
                         [](const auto& info) {
                           return apps::allWorkloads()[info.param].name;
                         });

}  // namespace
}  // namespace cgra
