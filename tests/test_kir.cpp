// Unit tests for the KIR frontend: builder + validation, the reference
// interpreter, liveness, the optimization passes (inlining, partial loop
// unrolling, CSE) and lowering to baseline bytecode — each pass checked for
// semantic equivalence on concrete and randomized inputs.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "host/token_machine.hpp"
#include "kir/interp.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/parser.hpp"
#include "kir/passes.hpp"
#include "support/rng.hpp"

namespace cgra::kir {
namespace {

/// x = a+b; y = (a+b)*(a+b); if (y > t) { y = y - (a+b); }
Function makeCseProbe() {
  FunctionBuilder b("cse_probe");
  const LocalId a = b.param("a");
  const LocalId bb = b.param("b");
  const LocalId t = b.param("t");
  const LocalId x = b.localVar("x");
  const LocalId y = b.localVar("y");
  const StmtId body = b.block({
      b.assign(x, b.add(b.use(a), b.use(bb))),
      b.assign(y, b.mul(b.add(b.use(a), b.use(bb)),
                        b.add(b.use(a), b.use(bb)))),
      b.ifElse(b.gt(b.use(y), b.use(t)),
               b.assign(y, b.sub(b.use(y), b.add(b.use(a), b.use(bb))))),
  });
  return b.finish(body);
}

TEST(Builder, ValidatesAndPrints) {
  const Function fn = makeCseProbe();
  const std::string s = fn.toString();
  EXPECT_NE(s.find("kernel cse_probe(a, b, t)"), std::string::npos);
  EXPECT_NE(s.find("x = (a + b);"), std::string::npos);
  EXPECT_NE(s.find("if (y > t)"), std::string::npos);
}

TEST(Builder, LocalByName) {
  const Function fn = makeCseProbe();
  EXPECT_EQ(fn.localByName("y"), 4u);
  EXPECT_THROW(fn.localByName("nope"), Error);
}

TEST(Interp, EvaluatesExpressions) {
  const Function fn = makeCseProbe();
  HostMemory heap;
  Interpreter interp;
  const auto r = interp.run(fn, {3, 4, 10}, heap);
  EXPECT_EQ(r.locals[fn.localByName("x")], 7);
  EXPECT_EQ(r.locals[fn.localByName("y")], 49 - 7);
}

TEST(Interp, CompareProducesZeroOne) {
  FunctionBuilder b("cmp");
  const LocalId a = b.param("a");
  const LocalId r = b.localVar("r");
  const Function fn = b.finish(b.block({
      b.assign(r, b.band(b.lt(b.use(a), b.cint(5)), b.ne(b.use(a), b.cint(3)))),
  }));
  HostMemory heap;
  Interpreter interp;
  EXPECT_EQ(interp.run(fn, {2}, heap).locals[r], 1);
  EXPECT_EQ(interp.run(fn, {3}, heap).locals[r], 0);
  EXPECT_EQ(interp.run(fn, {9}, heap).locals[r], 0);
}

TEST(Interp, BudgetGuardsInfiniteLoops) {
  FunctionBuilder b("inf");
  const LocalId x = b.param("x");
  const Function fn = b.finish(
      b.block({b.whileLoop(b.ge(b.use(x), b.cint(0)),
                           b.assign(x, b.use(x)))}));
  HostMemory heap;
  Interpreter interp;
  EXPECT_THROW(interp.run(fn, {1}, heap, 1000), Error);
}

TEST(Liveness, ParametersAndWrittenLocals) {
  const apps::Workload w = apps::makeAdpcm(8, 1);
  const auto liveIns = w.fn.liveInLocals();
  const auto liveOuts = w.fn.liveOutLocals();
  // Every parameter is live-in.
  for (LocalId l = 0; l < w.fn.numLocals(); ++l)
    if (w.fn.local(l).isParameter) {
      EXPECT_NE(std::find(liveIns.begin(), liveIns.end(), l), liveIns.end());
    }
  // Pure working locals initialized before use are not live-in.
  const LocalId i = w.fn.localByName("i");
  EXPECT_EQ(std::find(liveIns.begin(), liveIns.end(), i), liveIns.end());
  // valpred/index are written (live-out).
  EXPECT_NE(std::find(liveOuts.begin(), liveOuts.end(),
                      w.fn.localByName("valpred")),
            liveOuts.end());
}

// ---------------------------------------------------------------------------
// Passes

TEST(Inline, ReplacesCallsAndPreservesSemantics) {
  Program prog;
  // callee: result = p*p + 1
  FunctionBuilder cb("square_plus");
  const LocalId p = cb.param("p");
  const LocalId res = cb.localVar("result");
  const FuncId callee = prog.addFunction(cb.finish(
      cb.block({cb.assign(res, cb.add(cb.mul(cb.use(p), cb.use(p)),
                                      cb.cint(1)))})));

  FunctionBuilder mb("main");
  const LocalId a = mb.param("a");
  const LocalId out = mb.localVar("out");
  const Function caller = mb.finish(mb.block({
      mb.call(out, callee, {mb.add(mb.use(a), mb.cint(2))}),
      mb.assign(out, mb.add(mb.use(out), mb.use(a))),
  }));

  const Function flat = inlineCalls(prog, caller);
  // No Call statements remain.
  EXPECT_NO_THROW(lowerToBytecode(flat));

  HostMemory heap;
  Interpreter interp(&prog);
  const auto before = interp.run(caller, {5}, heap);
  HostMemory heap2;
  Interpreter flatInterp;
  const auto after = flatInterp.run(flat, {5}, heap2);
  EXPECT_EQ(after.locals[out], before.locals[out]);
  EXPECT_EQ(after.locals[out], (5 + 2) * (5 + 2) + 1 + 5);
}

TEST(Inline, RejectsRecursion) {
  Program prog;
  FunctionBuilder fb("rec");
  const LocalId p = fb.param("p");
  const LocalId res = fb.localVar("result");
  Function f = fb.fn();
  // rec calls itself.
  const FuncId self = prog.addFunction(Function("rec"));
  FunctionBuilder fb2("rec");
  const LocalId p2 = fb2.param("p");
  const LocalId res2 = fb2.localVar("result");
  const StmtId body = fb2.call(res2, self, {fb2.use(p2)});
  prog.function(self) = fb2.finish(body);
  EXPECT_THROW(inlineCalls(prog, prog.function(self)), Error);
  (void)p;
  (void)res;
  (void)f;
}

TEST(Unroll, PreservesSemanticsOnAdpcm) {
  const apps::Workload w = apps::makeAdpcm(32, 3);
  Interpreter interp;
  HostMemory heapA = w.heap;
  const auto golden = interp.run(w.fn, w.initialLocals, heapA);
  for (unsigned factor : {2u, 3u, 4u}) {
    const Function unrolled = unrollLoops(w.fn, factor, true);
    HostMemory heapB = w.heap;
    const auto r = interp.run(unrolled, w.initialLocals, heapB);
    EXPECT_TRUE(heapA == heapB) << "factor " << factor;
    EXPECT_EQ(r.locals, golden.locals) << "factor " << factor;
  }
}

TEST(Unroll, InnermostOnlyLeavesOuterLoop) {
  const apps::Workload w = apps::makeFir(8, 3, 1);
  const Function unrolled = unrollLoops(w.fn, 2, true);
  // The inner loop body is duplicated: statement count grows, but only from
  // the innermost loop.
  EXPECT_GT(countStmtNodes(unrolled), countStmtNodes(w.fn));
  const Function unrolledAll = unrollLoops(w.fn, 2, false);
  EXPECT_GT(countStmtNodes(unrolledAll), countStmtNodes(unrolled));
}

TEST(Unroll, FactorOneIsIdentity) {
  const apps::Workload w = apps::makeGcd(12, 18);
  const Function same = unrollLoops(w.fn, 1, true);
  EXPECT_EQ(countStmtNodes(same), countStmtNodes(w.fn));
}

TEST(Cse, HoistsRepeatedSubexpressions) {
  const Function fn = makeCseProbe();
  const Function opt = eliminateCommonSubexpressions(fn);
  EXPECT_LT(countExprNodes(opt), countExprNodes(fn));
  // Semantics preserved across inputs.
  Interpreter interp;
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<std::int32_t> in = {
        rng.nextI32() % 100, rng.nextI32() % 100, rng.nextI32() % 1000};
    HostMemory h1, h2;
    const auto before = interp.run(fn, in, h1).locals;
    const auto after = interp.run(opt, in, h2).locals;
    for (LocalId l = 0; l < fn.numLocals(); ++l)
      EXPECT_EQ(before[l], after[l]) << "local " << l;
  }
}

TEST(Cse, DoesNotMergeAcrossWrites) {
  FunctionBuilder b("wb");
  const LocalId a = b.param("a");
  const LocalId x = b.localVar("x");
  const LocalId y = b.localVar("y");
  // x = a+a; a = a+1 is impossible (a is param but writable): use x.
  const Function fn = b.finish(b.block({
      b.assign(x, b.add(b.use(a), b.cint(1))),
      b.assign(a, b.add(b.use(a), b.cint(5))),
      b.assign(y, b.add(b.use(a), b.cint(1))),  // NOT the same value as x
  }));
  const Function opt = eliminateCommonSubexpressions(fn);
  Interpreter interp;
  HostMemory h1, h2;
  const auto before = interp.run(fn, {10}, h1);
  const auto after = interp.run(opt, {10}, h2);
  EXPECT_EQ(before.locals, after.locals);
  EXPECT_EQ(after.locals[y], 16);
}

TEST(Cse, PreservesSemanticsOnAllWorkloads) {
  for (const apps::Workload& w : apps::allWorkloads()) {
    const Function opt = eliminateCommonSubexpressions(w.fn);
    Interpreter interp;
    HostMemory h1 = w.heap, h2 = w.heap;
    const auto before = interp.run(w.fn, w.initialLocals, h1);
    const auto after = interp.run(opt, w.initialLocals, h2);
    EXPECT_TRUE(h1 == h2) << w.name;
    // CSE adds temps; compare the original locals prefix.
    for (LocalId l = 0; l < w.fn.numLocals(); ++l)
      EXPECT_EQ(before.locals[l], after.locals[l]) << w.name << " local " << l;
  }
}

// ---------------------------------------------------------------------------
// Bytecode lowering

TEST(Bytecode, DisassembleShowsStructure) {
  const apps::Workload w = apps::makeGcd(6, 4);
  const BytecodeFunction bc = lowerToBytecode(w.fn);
  const std::string dis = disassemble(bc);
  EXPECT_NE(dis.find("if_icmp"), std::string::npos);
  EXPECT_NE(dis.find("goto"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
}

TEST(Bytecode, CompareInValuePositionMaterializes) {
  FunctionBuilder b("cmpval");
  const LocalId a = b.param("a");
  const LocalId r = b.localVar("r");
  const Function fn = b.finish(b.block({
      b.assign(r, b.add(b.le(b.use(a), b.cint(4)), b.cint(10))),
  }));
  const BytecodeFunction bc = lowerToBytecode(fn);
  HostMemory heap;
  const TokenMachine tm;
  EXPECT_EQ(tm.run(bc, {4}, heap).locals[r], 11);
  EXPECT_EQ(tm.run(bc, {5}, heap).locals[r], 10);
}

TEST(Bytecode, MatchesInterpreterOnAllWorkloads) {
  const TokenMachine tm;
  Interpreter interp;
  for (const apps::Workload& w : apps::allWorkloads()) {
    const BytecodeFunction bc = lowerToBytecode(w.fn);
    HostMemory h1 = w.heap, h2 = w.heap;
    const auto golden = interp.run(w.fn, w.initialLocals, h1);
    const auto result = tm.run(bc, w.initialLocals, h2);
    EXPECT_TRUE(h1 == h2) << w.name;
    EXPECT_EQ(result.locals, golden.locals) << w.name;
  }
}

// ---------------------------------------------------------------------------
// Irregular control flow (break / continue / return / && / || / switch)

// Builds: sum = 0; i = 0; while (i < n) { i = i + 1; if (i == stop) break;
//         if (i & 1) continue; sum = sum + i; }
Function makeExitProbe() {
  FunctionBuilder b("exits");
  const LocalId n = b.param("n");
  const LocalId stop = b.param("stop");
  const LocalId sum = b.localVar("sum");
  const LocalId i = b.localVar("i");
  return b.finish(b.block({
      b.assign(sum, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(
          b.lt(b.use(i), b.use(n)),
          b.block({
              b.assign(i, b.add(b.use(i), b.cint(1))),
              b.ifElse(b.eq(b.use(i), b.use(stop)), b.block({b.breakLoop()})),
              b.ifElse(b.ne(b.band(b.use(i), b.cint(1)), b.cint(0)),
                       b.block({b.continueLoop()})),
              b.assign(sum, b.add(b.use(sum), b.use(i))),
          })),
  }));
}

TEST(Builder, IrregularConstructsValidateAndPrint) {
  const Function fn = makeExitProbe();
  const std::string s = fn.toString();
  EXPECT_NE(s.find("break;"), std::string::npos);
  EXPECT_NE(s.find("continue;"), std::string::npos);

  FunctionBuilder b("sw");
  const LocalId a = b.param("a");
  const LocalId r = b.localVar("r");
  const Function sw = b.finish(b.block({
      b.assign(r, b.lor(b.land(b.use(a), b.cint(1)), b.cint(0))),
      b.switchStmt(b.use(a), {2, 4}, {b.assign(r, b.cint(20)),
                                      b.assign(r, b.cint(40))},
                   b.assign(r, b.cint(-1))),
      b.ret(b.use(r)),
  }));
  const std::string t = sw.toString();
  EXPECT_NE(t.find("case 2: {"), std::string::npos);
  EXPECT_NE(t.find("default: {"), std::string::npos);
  EXPECT_NE(t.find("return r;"), std::string::npos);
  EXPECT_NE(t.find("&&"), std::string::npos);
  EXPECT_NE(t.find("||"), std::string::npos);
}

TEST(Builder, RejectsExitsOutsideLoops) {
  {
    FunctionBuilder b("badbreak");
    b.param("a");
    EXPECT_THROW(b.finish(b.block({b.breakLoop()})), Error);
  }
  {
    FunctionBuilder b("badcontinue");
    b.param("a");
    EXPECT_THROW(b.finish(b.block({b.continueLoop()})), Error);
  }
  {
    // break inside a switch arm still needs an enclosing loop: switch is
    // not a break target in this language.
    FunctionBuilder b("swbreak");
    const LocalId a = b.param("a");
    EXPECT_THROW(
        b.finish(b.block({b.switchStmt(b.use(a), {1}, {b.breakLoop()})})),
        Error);
  }
  {
    FunctionBuilder b("dupcase");
    const LocalId a = b.param("a");
    EXPECT_THROW(b.finish(b.block({b.switchStmt(
                     b.use(a), {3, 3},
                     {b.assign(a, b.cint(1)), b.assign(a, b.cint(2))})})),
                 Error);
  }
}

TEST(Interp, BreakAndContinue) {
  const Function fn = makeExitProbe();
  Interpreter interp;
  HostMemory heap;
  const LocalId sum = fn.localByName("sum");
  // stop=4: i=1 skip, i=2 add, i=3 skip, i=4 break → sum=2.
  EXPECT_EQ(interp.run(fn, {10, 4}, heap).locals[sum], 2);
  // stop beyond range: evens 2+4+6+8+10.
  EXPECT_EQ(interp.run(fn, {10, 99}, heap).locals[sum], 30);
  // Break only exits the innermost loop: run the probe body under an outer
  // counter loop and check the outer loop still completes.
  FunctionBuilder b("nested");
  const LocalId lim = b.param("lim");
  const LocalId outer = b.localVar("outer");
  const LocalId k = b.localVar("k");
  const Function nested = b.finish(b.block({
      b.assign(outer, b.cint(0)),
      b.whileLoop(
          b.lt(b.use(outer), b.use(lim)),
          b.block({
              b.assign(outer, b.add(b.use(outer), b.cint(1))),
              b.assign(k, b.cint(0)),
              b.whileLoop(b.lt(b.use(k), b.cint(100)),
                          b.block({
                              b.ifElse(b.ge(b.use(k), b.cint(3)),
                                       b.block({b.breakLoop()})),
                              b.assign(k, b.add(b.use(k), b.cint(1))),
                          })),
          })),
  }));
  const auto r = interp.run(nested, {5}, heap);
  EXPECT_EQ(r.locals[outer], 5);
  EXPECT_EQ(r.locals[k], 3);
}

TEST(Interp, ReturnUnwindsNestedLoops) {
  FunctionBuilder b("ret");
  const LocalId n = b.param("n");
  const LocalId i = b.localVar("i");
  const LocalId j = b.localVar("j");
  const Function fn = b.finish(b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(
          b.lt(b.use(i), b.use(n)),
          b.block({
              b.assign(j, b.cint(0)),
              b.whileLoop(b.lt(b.use(j), b.use(n)),
                          b.block({
                              b.ifElse(b.eq(b.add(b.use(i), b.use(j)),
                                            b.cint(5)),
                                       b.block({b.ret(b.mul(b.use(i),
                                                            b.cint(10)))})),
                              b.assign(j, b.add(b.use(j), b.cint(1))),
                          })),
              b.assign(i, b.add(b.use(i), b.cint(1))),
          })),
      b.ret(b.cint(-1)),
  }));
  Interpreter interp;
  HostMemory heap;
  const LocalId result = fn.localByName("result");
  // i=0: j reaches 5 first → return 0.
  EXPECT_EQ(interp.run(fn, {10}, heap).locals[result], 0);
  // n=3: i+j never hits 5 (max 2+2) → fall through to return -1.
  EXPECT_EQ(interp.run(fn, {3}, heap).locals[result], -1);
}

TEST(Interp, ShortCircuitSkipsSideEffectOperand) {
  // r = (n != 0) && (load a[n-1] > 2): heap load throws when executed with
  // n == 0, so laziness is observable.
  FunctionBuilder b("sc");
  const LocalId a = b.param("a");
  const LocalId n = b.param("n");
  const LocalId r = b.localVar("r");
  const Function fn = b.finish(b.block({
      b.assign(r, b.land(b.ne(b.use(n), b.cint(0)),
                         b.gt(b.load(b.use(a),
                                     b.sub(b.use(n), b.cint(1))),
                              b.cint(2)))),
  }));
  Interpreter interp;
  HostMemory heap;
  const Handle h = heap.alloc(std::vector<std::int32_t>{7});
  EXPECT_EQ(interp.run(fn, {h, 1}, heap).locals[r], 1);
  EXPECT_EQ(interp.run(fn, {h, 0}, heap).locals[r], 0);
}

TEST(Interp, SwitchMatchesArmOrDefault) {
  FunctionBuilder b("sw");
  const LocalId op = b.param("op");
  const LocalId r = b.localVar("r");
  const Function fn = b.finish(b.block({
      b.assign(r, b.cint(0)),
      b.switchStmt(b.use(op), {1, 5, -3},
                   {b.assign(r, b.cint(100)), b.assign(r, b.cint(500)),
                    b.assign(r, b.cint(-300))},
                   b.assign(r, b.cint(7))),
  }));
  Interpreter interp;
  HostMemory heap;
  EXPECT_EQ(interp.run(fn, {1}, heap).locals[r], 100);
  EXPECT_EQ(interp.run(fn, {5}, heap).locals[r], 500);
  EXPECT_EQ(interp.run(fn, {-3}, heap).locals[r], -300);
  EXPECT_EQ(interp.run(fn, {2}, heap).locals[r], 7);
}

TEST(Bytecode, MatchesInterpreterOnIrregularConstructs) {
  // The bytecode backend lowers the UNnormalized constructs directly with
  // jumps; it must agree with the tree-walking interpreter.
  const std::string src = R"(
    kernel vm(ops, n) {
      var acc = 0;
      var pc = 0;
      while (pc < n) {
        var op = ops[pc];
        pc = pc + 1;
        if (op == 9 || acc > 500) { break; }
        if (op == 8 && acc != 0) { continue; }
        switch (op) {
          case 0: { acc = acc + 10; }
          case 1: { acc = acc - 3; }
          case 2: { if (acc > 5) { return acc; } }
          default: { acc = acc + 1; }
        }
      }
      return acc;
    }
  )";
  const Function fn = parseKernel(src);
  const TokenMachine tm;
  Interpreter interp;
  const std::vector<std::vector<std::int32_t>> programs = {
      {0, 0, 2, 1},  // returns from inside the switch
      {0, 8, 8, 1, 9, 0},
      {3, 3, 3, 3},
      {9},
      {},
  };
  for (const auto& prog : programs) {
    HostMemory h1, h2;
    const Handle a1 = h1.alloc(prog.empty() ? std::vector<std::int32_t>{0}
                                            : prog);
    const Handle a2 = h2.alloc(prog.empty() ? std::vector<std::int32_t>{0}
                                            : prog);
    const std::vector<std::int32_t> in1 = {
        a1, static_cast<std::int32_t>(prog.size())};
    const std::vector<std::int32_t> in2 = {
        a2, static_cast<std::int32_t>(prog.size())};
    const auto golden = interp.run(fn, in1, h1);
    const auto result = tm.run(lowerToBytecode(fn), in2, h2);
    EXPECT_TRUE(h1 == h2);
    // The bytecode backend appends a scratch local for switch dispatch;
    // compare the function's own locals.
    for (LocalId l = 0; l < fn.numLocals(); ++l)
      EXPECT_EQ(result.locals[l], golden.locals[l]) << "local " << l;
  }
}

TEST(Bytecode, CostModelScalesWithWork) {
  const TokenMachine tm;
  const apps::Workload small = apps::makeDotProduct(4, 1);
  const apps::Workload large = apps::makeDotProduct(64, 1);
  HostMemory h1 = small.heap, h2 = large.heap;
  const auto rs = tm.run(lowerToBytecode(small.fn), small.initialLocals, h1);
  const auto rl = tm.run(lowerToBytecode(large.fn), large.initialLocals, h2);
  EXPECT_GT(rl.cycles, rs.cycles * 10);
  EXPECT_GT(rl.bytecodes, rs.bytecodes * 10);
}

}  // namespace
}  // namespace cgra::kir
