// Tests for host/CGRA co-execution: bytecode patching (INVOKE_CGRA),
// branch-target fixup across assembled stages, live-in/out frame exchange,
// cycle accounting and equivalence with pure-host execution.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "sim/accelerated_host.hpp"

namespace cgra {
namespace {

/// A two-stage app over a shared frame: params {h, n, acc}; stage A doubles
/// every array element (the kernel), stage B sums the array on the host.
struct TwoStageApp {
  kir::Function kernel = kir::Function("k");
  kir::Function sumStage = kir::Function("s");
  std::vector<std::int32_t> locals;
  HostMemory heap;
};

TwoStageApp makeTwoStageApp() {
  TwoStageApp app;
  {
    kir::FunctionBuilder b("double_all");
    const auto h = b.param("h");
    const auto n = b.param("n");
    b.param("acc");
    const auto i = b.localVar("i");
    const auto body = b.block({
        b.arrayStore(b.use(h), b.use(i),
                     b.shl(b.load(b.use(h), b.use(i)), b.cint(1))),
        b.assign(i, b.add(b.use(i), b.cint(1))),
    });
    app.kernel = b.finish(b.block({
        b.assign(i, b.cint(0)),
        b.whileLoop(b.lt(b.use(i), b.use(n)), body),
    }));
  }
  {
    kir::FunctionBuilder b("sum_all");
    const auto h = b.param("h");
    const auto n = b.param("n");
    const auto acc = b.param("acc");
    b.localVar("$pad");  // skip the kernel's "i" slot
    const auto j = b.localVar("j");
    const auto body = b.block({
        b.assign(acc, b.add(b.use(acc), b.load(b.use(h), b.use(j)))),
        b.assign(j, b.add(b.use(j), b.cint(1))),
    });
    app.sumStage = b.finish(b.block({
        b.assign(acc, b.cint(0)),
        b.assign(j, b.cint(0)),
        b.whileLoop(b.lt(b.use(j), b.use(n)), body),
    }));
  }
  const Handle h = app.heap.alloc({1, 2, 3, 4, 5, 6});
  app.locals = {h, 6, 0};
  return app;
}

TEST(AcceleratedHost, PatchedAppMatchesHostOnly) {
  TwoStageApp app = makeTwoStageApp();
  AcceleratedHost system(makeMesh(4));
  const unsigned k = system.addKernel(app.kernel, 1);

  HostMemory heapAccel = app.heap;
  const AcceleratedRunResult accel = system.run(
      {CgraStage{k}, HostStage{&app.sumStage}}, app.locals, heapAccel);

  HostMemory heapPure = app.heap;
  const AcceleratedRunResult pure = system.run(
      {HostStage{&app.kernel}, HostStage{&app.sumStage}}, app.locals, heapPure);

  EXPECT_TRUE(heapAccel == heapPure);
  EXPECT_EQ(accel.locals[2], pure.locals[2]);
  EXPECT_EQ(accel.locals[2], 2 * (1 + 2 + 3 + 4 + 5 + 6));
  EXPECT_EQ(accel.cgraInvocations, 1u);
  EXPECT_EQ(pure.cgraInvocations, 0u);
  EXPECT_EQ(accel.totalCycles, accel.hostCycles + accel.cgraCycles);
  EXPECT_GT(accel.cgraCycles, 0u);
}

TEST(AcceleratedHost, AssembleFixesBranchTargets) {
  TwoStageApp app = makeTwoStageApp();
  AcceleratedHost system(makeMesh(4));
  const unsigned k = system.addKernel(app.kernel, 1);
  const BytecodeFunction patched = system.assemble(
      {HostStage{&app.sumStage}, CgraStage{k}, HostStage{&app.sumStage}});

  // Two host stages with internal loops: every branch target must stay
  // inside the assembled code and the INVOKE sits between them.
  unsigned invokeCount = 0;
  for (std::size_t pc = 0; pc < patched.code.size(); ++pc) {
    const BcInstr& in = patched.code[pc];
    if (in.op == Bc::INVOKE_CGRA) ++invokeCount;
    switch (in.op) {
      case Bc::GOTO:
      case Bc::IF_ICMPEQ:
      case Bc::IF_ICMPNE:
      case Bc::IF_ICMPLT:
      case Bc::IF_ICMPGE:
      case Bc::IF_ICMPGT:
      case Bc::IF_ICMPLE:
        EXPECT_GE(in.arg, 0);
        EXPECT_LT(static_cast<std::size_t>(in.arg), patched.code.size());
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(invokeCount, 1u);
  EXPECT_EQ(patched.code.back().op, Bc::HALT);
  const std::string dis = disassemble(patched);
  EXPECT_NE(dis.find("invoke_cgra 0"), std::string::npos);
}

TEST(AcceleratedHost, RepeatedInvocationsReuseTheSchedule) {
  TwoStageApp app = makeTwoStageApp();
  AcceleratedHost system(makeMesh(4));
  const unsigned k = system.addKernel(app.kernel, 1);
  HostMemory heap = app.heap;
  const AcceleratedRunResult r =
      system.run({CgraStage{k}, CgraStage{k}}, app.locals, heap);
  EXPECT_EQ(r.cgraInvocations, 2u);
  EXPECT_EQ(heap.array(0)[0], 4) << "doubled twice";
}

TEST(AcceleratedHost, MultipleKernelsShareContextMemory) {
  TwoStageApp app = makeTwoStageApp();
  AcceleratedHost system(makeMesh(4));
  const unsigned k1 = system.addKernel(app.kernel, 1);
  const unsigned k2 = system.addKernel(app.sumStage, 1);
  EXPECT_NE(k1, k2);
  EXPECT_GT(system.contextsUsed(), 0u);

  HostMemory heap = app.heap;
  const AcceleratedRunResult r =
      system.run({CgraStage{k1}, CgraStage{k2}}, app.locals, heap);
  EXPECT_EQ(r.locals[2], 2 * 21);
  EXPECT_EQ(r.cgraInvocations, 2u);
}

TEST(AcceleratedHost, UnknownKernelIdRejected) {
  AcceleratedHost system(makeMesh(4));
  TwoStageApp app = makeTwoStageApp();
  HostMemory heap = app.heap;
  EXPECT_THROW(system.run({CgraStage{7}}, app.locals, heap), Error);
}

TEST(AcceleratedHost, InvokeWithoutHookRejectedByMachine) {
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 0;
  fn.code = {{Bc::INVOKE_CGRA, 0}, {Bc::HALT, 0}};
  HostMemory heap;
  const TokenMachine tm;
  EXPECT_THROW(tm.run(fn, {}, heap), Error);
}

TEST(AcceleratedHost, AdpcmEndToEndAgainstInterpreter) {
  const apps::Workload w = apps::makeAdpcm(48, 4);
  AcceleratedHost system(makeIrregular('D'));
  const unsigned k = system.addKernel(w.fn, 2);

  HostMemory heap = w.heap;
  const AcceleratedRunResult r = system.run({CgraStage{k}}, w.initialLocals, heap);

  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  interp.run(w.fn, w.initialLocals, goldenHeap);
  EXPECT_TRUE(heap == goldenHeap);
  EXPECT_GT(r.cgraCycles, 0u);
  EXPECT_EQ(r.hostBytecodes, 2u) << "invoke + halt";
}

}  // namespace
}  // namespace cgra
