// Property-based tests: randomly generated structured kernels (nested
// counted + data-dependent loops, if/else trees, array traffic) are run
// through the complete pipeline on varying compositions and must match the
// reference interpreter bit-exactly. The frontend passes (CSE, unrolling)
// are mixed in to stress their interaction with the scheduler.
#include <gtest/gtest.h>

#include "arch/factory.hpp"
#include "ctx/contexts.hpp"
#include "host/token_machine.hpp"
#include "kir/interp.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/passes.hpp"
#include "kir/random_kernel.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

Composition compositionForSeed(std::uint64_t seed) {
  // Rotate through all 12 paper compositions.
  const unsigned idx = static_cast<unsigned>(seed % 12);
  if (idx < 6) return makeMesh(meshSizes()[idx]);
  return makeIrregular(irregularLabels()[idx - 6]);
}

struct GoldenRun {
  std::vector<std::int32_t> locals;
  HostMemory heap;
};

GoldenRun golden(const kir::RandomKernel& k, const kir::Function& fn) {
  GoldenRun g;
  g.heap = k.heap;
  kir::Interpreter interp;
  g.locals = interp.run(fn, k.initialLocals, g.heap).locals;
  return g;
}

class RandomKernelPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomKernelPipeline, CgraMatchesInterpreter) {
  const std::uint64_t seed = GetParam();
  const kir::RandomKernel k = kir::generateRandomKernel(seed);

  // Optionally apply frontend passes, varying by seed.
  kir::Function fn = k.fn;
  if (seed % 3 == 1) fn = kir::eliminateCommonSubexpressions(fn);
  if (seed % 4 == 2) fn = kir::unrollLoops(fn, 2, true);

  const GoldenRun g = golden(k, fn);

  const kir::LoweringResult lowered = kir::lowerToCdfg(fn);
  FactoryOptions opts;
  opts.contextMemoryLength = 1024;  // generated kernels can be long
  Composition comp = compositionForSeed(seed);
  comp = Composition(comp.name(), comp.pes(), comp.interconnect(),
                     opts.contextMemoryLength, 64);

  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  const auto issues = validateSchedule(result.schedule, lowered.graph, comp);
  EXPECT_TRUE(issues.empty()) << "seed " << seed << ": " << issues.front();

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = k.initialLocals[lb.var];
  HostMemory heap = k.heap;
  const Simulator sim(comp, result.schedule);
  const SimResult r = sim.run(liveIns, heap);

  EXPECT_TRUE(heap == g.heap) << "seed " << seed << ": heap mismatch\n"
                              << fn.toString();
  for (const auto& [var, value] : r.liveOuts)
    EXPECT_EQ(value, g.locals[var])
        << "seed " << seed << ": live-out "
        << lowered.graph.variable(var).name << "\n"
        << fn.toString();
}

TEST_P(RandomKernelPipeline, ContextLevelMatchesInterpreter) {
  const std::uint64_t seed = GetParam() + 1000;
  const kir::RandomKernel k = kir::generateRandomKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  const kir::LoweringResult lowered = kir::lowerToCdfg(k.fn);
  FactoryOptions fo;
  fo.contextMemoryLength = 1024;
  fo.cboxSlots = 64;
  const Composition comp = makeMesh(meshSizes()[seed % 6], fo);

  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  const ContextImages images = generateContexts(result.schedule, comp);
  const Schedule dec = decodeContexts(images, comp);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : dec.liveIns)
    liveIns[lb.var] = k.initialLocals[lb.var];
  HostMemory heap = k.heap;
  Simulator(comp, dec).run(liveIns, heap);
  EXPECT_TRUE(heap == g.heap) << "seed " << seed << "\n" << k.fn.toString();
}

TEST_P(RandomKernelPipeline, BaselineMatchesInterpreter) {
  const std::uint64_t seed = GetParam() + 2000;
  const kir::RandomKernel k = kir::generateRandomKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  const BytecodeFunction bc = kir::lowerToBytecode(k.fn);
  HostMemory heap = k.heap;
  const TokenMachine tm;
  const TokenRunResult r = tm.run(bc, k.initialLocals, heap);
  EXPECT_TRUE(heap == g.heap) << "seed " << seed;
  EXPECT_EQ(r.locals, g.locals) << "seed " << seed;
}

TEST_P(RandomKernelPipeline, PassesPreserveSemantics) {
  const std::uint64_t seed = GetParam() + 3000;
  const kir::RandomKernel k = kir::generateRandomKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  for (int variant = 0; variant < 3; ++variant) {
    kir::Function fn = k.fn;
    switch (variant) {
      case 0: fn = kir::eliminateCommonSubexpressions(fn); break;
      case 1: fn = kir::unrollLoops(fn, 2, true); break;
      case 2:
        fn = kir::unrollLoops(kir::eliminateCommonSubexpressions(fn), 3,
                              false);
        break;
    }
    HostMemory heap = k.heap;
    kir::Interpreter interp;
    const auto r = interp.run(fn, k.initialLocals, heap);
    EXPECT_TRUE(heap == g.heap) << "seed " << seed << " variant " << variant;
    for (kir::LocalId l = 0; l < k.fn.numLocals(); ++l)
      EXPECT_EQ(r.locals[l], g.locals[l])
          << "seed " << seed << " variant " << variant << " local " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelPipeline,
                         ::testing::Range<std::uint64_t>(1, 101));

// Distinct kernel shapes: each option set stresses a different part of the
// scheduler (deep loop nesting, heavy array traffic, pure control flow).
struct ShapeCase {
  const char* name;
  kir::RandomKernelOptions opts;
};

class RandomKernelShapes
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RandomKernelShapes, CgraMatchesInterpreter) {
  const auto [shapeIdx, seed] = GetParam();
  kir::RandomKernelOptions opts;
  switch (shapeIdx) {
    case 0:  // deep nesting, small bodies
      opts.maxDepth = 4;
      opts.maxStmtsPerBlock = 2;
      opts.maxExprDepth = 2;
      break;
    case 1:  // array-heavy
      opts.numArrays = 4;
      opts.arraySizeLog2 = 3;
      opts.maxDepth = 2;
      break;
    case 2:  // pure control flow, no heap traffic
      opts.numArrays = 0;
      opts.maxDepth = 3;
      opts.allowCompareAsValue = true;
      break;
    case 3:  // wide straight-line blocks, shallow control
      opts.maxDepth = 1;
      opts.maxStmtsPerBlock = 8;
      opts.maxExprDepth = 4;
      break;
  }
  const kir::RandomKernel k = kir::generateRandomKernel(seed * 7919, opts);
  const GoldenRun g = golden(k, k.fn);

  const kir::LoweringResult lowered = kir::lowerToCdfg(k.fn);
  FactoryOptions fo;
  fo.contextMemoryLength = 2048;
  fo.cboxSlots = 64;
  const Composition comp =
      shapeIdx % 2 ? makeMesh(meshSizes()[seed % 6], fo)
                   : Composition("irr", makeIrregular(irregularLabels()[seed % 6]).pes(),
                                 makeIrregular(irregularLabels()[seed % 6]).interconnect(),
                                 fo.contextMemoryLength, fo.cboxSlots);

  const Scheduler scheduler(comp);
  const ScheduleReport result = scheduler.schedule(ScheduleRequest(lowered.graph)).orThrow();
  const auto issues = validateSchedule(result.schedule, lowered.graph, comp);
  EXPECT_TRUE(issues.empty()) << "shape " << shapeIdx << " seed " << seed
                              << ": " << issues.front();

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] = k.initialLocals[lb.var];
  HostMemory heap = k.heap;
  const SimResult r = Simulator(comp, result.schedule).run(liveIns, heap);
  EXPECT_TRUE(heap == g.heap)
      << "shape " << shapeIdx << " seed " << seed << "\n" << k.fn.toString();
  for (const auto& [var, value] : r.liveOuts)
    EXPECT_EQ(value, g.locals[var])
        << "shape " << shapeIdx << " seed " << seed << " live-out "
        << lowered.graph.variable(var).name << "\n" << k.fn.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomKernelShapes,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Range<std::uint64_t>(1, 16)));

// ---------------------------------------------------------------------------
// Irregular constructs: kernels generated with break / continue / return,
// short-circuit booleans and switch mixed in. Each normalization pass alone
// must preserve interpreter semantics, and the full pipeline output must
// survive the complete CGRA flow differentially (bounded fuzz).

kir::RandomKernel irregularKernel(std::uint64_t seed) {
  kir::RandomKernelOptions opts;
  opts.irregularConstructs = true;
  return kir::generateRandomKernel(seed, opts);
}

/// Passes append helper locals ($sc / $sw / $brk...), so equivalence is
/// heap plus the ORIGINAL function's locals prefix.
void expectPrefixEquivalent(const kir::RandomKernel& k,
                            const kir::Function& transformed,
                            const GoldenRun& g, const char* label) {
  HostMemory heap = k.heap;
  kir::Interpreter interp;
  const auto r = interp.run(transformed, k.initialLocals, heap);
  EXPECT_TRUE(heap == g.heap) << label << "\n" << transformed.toString();
  for (kir::LocalId l = 0; l < k.fn.numLocals(); ++l)
    EXPECT_EQ(r.locals[l], g.locals[l])
        << label << " local " << k.fn.local(l).name << "\n"
        << transformed.toString();
}

class IrregularRandomKernel : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IrregularRandomKernel, EachPassPreservesSemantics) {
  const std::uint64_t seed = GetParam();
  const kir::RandomKernel k = irregularKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  expectPrefixEquivalent(k, kir::lowerShortCircuit(k.fn), g, "shortcircuit");
  expectPrefixEquivalent(
      k, kir::lowerSwitches(k.fn, kir::SwitchStrategy::Linear), g,
      "switch-linear");
  expectPrefixEquivalent(
      k, kir::lowerSwitches(k.fn, kir::SwitchStrategy::Bucket), g,
      "switch-bucket");
  expectPrefixEquivalent(k, kir::normalizeExits(k.fn), g, "exit-normalize");
}

TEST_P(IrregularRandomKernel, PipelinePreservesSemantics) {
  const std::uint64_t seed = GetParam() + 4000;
  const kir::RandomKernel k = irregularKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  const kir::Function norm = kir::runFrontendPipeline(k.fn).fn;
  EXPECT_EQ(kir::firstIrregularConstruct(norm), nullptr)
      << "seed " << seed << "\n" << norm.toString();
  expectPrefixEquivalent(k, norm, g, "pipeline");

  // With the optimization stages on, composed behind normalization.
  kir::FrontendOptions opts;
  opts.cse = true;
  opts.unrollFactor = 2;
  const kir::Function optd = kir::runFrontendPipeline(k.fn, opts).fn;
  EXPECT_EQ(kir::firstIrregularConstruct(optd), nullptr);
  expectPrefixEquivalent(k, optd, g, "pipeline+cse+unroll");
}

TEST_P(IrregularRandomKernel, BaselineMatchesInterpreter) {
  // The bytecode backend lowers the irregular constructs directly with
  // jumps — no normalization involved — and must agree with the
  // tree-walking interpreter.
  const std::uint64_t seed = GetParam() + 5000;
  const kir::RandomKernel k = irregularKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  HostMemory heap = k.heap;
  const TokenMachine tm;
  const TokenRunResult r = tm.run(kir::lowerToBytecode(k.fn),
                                  k.initialLocals, heap);
  EXPECT_TRUE(heap == g.heap) << "seed " << seed << "\n" << k.fn.toString();
  // The bytecode backend appends a scratch local for switch dispatch;
  // compare the function's own locals.
  for (kir::LocalId l = 0; l < k.fn.numLocals(); ++l)
    EXPECT_EQ(r.locals[l], g.locals[l])
        << "seed " << seed << " local " << l << "\n" << k.fn.toString();
}

TEST_P(IrregularRandomKernel, CgraMatchesInterpreter) {
  // Bounded differential fuzz of the full flow: generate -> normalize ->
  // CDFG -> schedule -> simulate, against the interpreter on the original.
  const std::uint64_t seed = GetParam() + 6000;
  const kir::RandomKernel k = irregularKernel(seed);
  const GoldenRun g = golden(k, k.fn);

  const kir::Function norm = kir::runFrontendPipeline(k.fn).fn;
  const kir::LoweringResult lowered = kir::lowerToCdfg(norm);
  FactoryOptions fo;
  fo.contextMemoryLength = 4096;  // guard flags make normalized bodies long
  fo.cboxSlots = 64;
  const Composition comp = makeMesh(meshSizes()[seed % 3 + 3], fo);

  const ScheduleReport result =
      Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow();
  const auto issues = validateSchedule(result.schedule, lowered.graph, comp);
  EXPECT_TRUE(issues.empty()) << "seed " << seed << ": " << issues.front();

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : result.schedule.liveIns)
    liveIns[lb.var] =
        lb.var < k.initialLocals.size() ? k.initialLocals[lb.var] : 0;
  HostMemory heap = k.heap;
  const SimResult r = Simulator(comp, result.schedule).run(liveIns, heap);
  EXPECT_TRUE(heap == g.heap) << "seed " << seed << "\n" << norm.toString();
  for (const auto& [var, value] : r.liveOuts) {
    if (var >= k.fn.numLocals()) continue;  // pipeline-introduced temp
    EXPECT_EQ(value, g.locals[var])
        << "seed " << seed << ": live-out "
        << lowered.graph.variable(var).name << "\n" << norm.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularRandomKernel,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace cgra
