// Unit tests for the cycle-accurate simulator using hand-built schedules:
// precise commit timing, routed operand reads, predication gating, branch
// timing, multi-cycle operations across back-branches, DMA suppression and
// the invocation cycle accounting.
#include <gtest/gtest.h>

#include "arch/factory.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

/// Minimal composition for hand-built schedules.
Composition smallComp() {
  FactoryOptions opts;
  opts.regfileSize = 16;
  return makeMeshGrid(1, 2, opts, {0});
}

ScheduledOp makeOp(Op op, PEId pe, unsigned start, unsigned duration) {
  ScheduledOp out;
  out.op = op;
  out.pe = pe;
  out.start = start;
  out.duration = duration;
  return out;
}

OperandSource own(unsigned vreg) {
  return OperandSource{OperandSource::Kind::Own, 0, vreg, 0};
}
OperandSource route(PEId pe, unsigned vreg) {
  return OperandSource{OperandSource::Kind::Route, pe, vreg, 0};
}
OperandSource imm(std::int32_t v) {
  return OperandSource{OperandSource::Kind::Imm, 0, 0, v};
}

TEST(Simulator, ConstThenAddCommitTiming) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 3;
  s.vregsPerPE = {4, 4};
  // t0: r0 = 7; t1: r1 = 8; t2: r2 = r0 + r1.
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(7);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto c1 = makeOp(Op::CONST, 0, 1, 1);
  c1.src[0] = imm(8);
  c1.writesDest = true;
  c1.destVreg = 1;
  auto add = makeOp(Op::IADD, 0, 2, 1);
  add.src[0] = own(0);
  add.src[1] = own(1);
  add.writesDest = true;
  add.destVreg = 2;
  s.ops = {c0, c1, add};
  s.liveOuts = {LiveBinding{0, 0, 2}};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.liveOuts.at(0), 15);
  EXPECT_EQ(r.runCycles, 3u);
  // Invocation: run + one live-out transfer (2 cycles) + fixed overhead.
  EXPECT_EQ(r.invocationCycles,
            3u + Simulator::kCyclesPerTransfer + Simulator::kInvocationOverhead);
}

TEST(Simulator, RoutedReadSeesNeighborRegister) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 2;
  s.vregsPerPE = {4, 4};
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(41);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto add = makeOp(Op::IADD, 1, 1, 1);  // PE1 reads PE0's r0 via the link
  add.src[0] = route(0, 0);
  auto cOne = makeOp(Op::CONST, 1, 0, 1);
  cOne.src[0] = imm(1);
  cOne.writesDest = true;
  cOne.destVreg = 0;
  add.src[1] = own(0);
  add.writesDest = true;
  add.destVreg = 1;
  s.ops = {c0, cOne, add};
  s.liveOuts = {LiveBinding{0, 1, 1}};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.liveOuts.at(0), 42);
}

TEST(Simulator, LiveInValuesArriveBeforeCycle0) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 1;
  s.vregsPerPE = {4, 4};
  auto add = makeOp(Op::IADD, 0, 0, 1);
  add.src[0] = own(0);
  add.src[1] = own(0);
  add.writesDest = true;
  add.destVreg = 1;
  s.ops = {add};
  s.liveIns = {LiveBinding{0, 0, 0}};
  s.liveOuts = {LiveBinding{1, 0, 1}};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({{0, 21}}, heap);
  EXPECT_EQ(r.liveOuts.at(1), 42);
}

TEST(Simulator, PredicationSuppressesRegisterWrite) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 4;
  s.vregsPerPE = {4, 4};
  s.cboxSlotsUsed = 1;
  // t0: r0 = 5. t1: cmp r0 < 3 -> status, cbox stores it in slot 0.
  // t2: predicated CONST r0 = 99 (pred true) — must be suppressed.
  // t3: predicated CONST r0 = 77 (pred false) — must commit.
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(5);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto three = makeOp(Op::CONST, 1, 0, 1);
  three.src[0] = imm(3);
  three.writesDest = true;
  three.destVreg = 0;
  auto cmp = makeOp(Op::IFLT, 0, 1, 1);
  cmp.src[0] = own(0);
  cmp.src[1] = route(1, 0);
  cmp.emitsStatus = true;
  CBoxOp store;
  store.time = 1;
  store.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  store.logic = CBoxOp::Logic::Pass;
  store.writeSlot = 0;
  auto wTrue = makeOp(Op::CONST, 0, 2, 1);
  wTrue.src[0] = imm(99);
  wTrue.writesDest = true;
  wTrue.destVreg = 0;
  wTrue.pred = PredRef{0, true};
  auto wFalse = makeOp(Op::CONST, 0, 3, 1);
  wFalse.src[0] = imm(77);
  wFalse.writesDest = true;
  wFalse.destVreg = 0;
  wFalse.pred = PredRef{0, false};
  s.ops = {c0, three, cmp, wTrue, wFalse};
  s.cboxOps = {store};
  s.liveOuts = {LiveBinding{0, 0, 0}};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.liveOuts.at(0), 77) << "5 < 3 is false: slot=0";
}

TEST(Simulator, PredicationSuppressesDmaAccess) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 2;
  s.vregsPerPE = {4, 4};
  s.cboxSlotsUsed = 1;
  // Condition slot 0 stays 0; a predicated-ON store with an out-of-bounds
  // index must be skipped entirely (this is why DMA is always predicated).
  auto handle = makeOp(Op::CONST, 0, 0, 1);
  handle.src[0] = imm(0);
  handle.writesDest = true;
  handle.destVreg = 0;
  auto store = makeOp(Op::DMA_STORE, 0, 1, 1);
  store.src[0] = own(0);
  store.src[1] = imm(9999);  // way out of bounds
  store.src[2] = imm(1);
  store.pred = PredRef{0, true};
  s.ops = {handle, store};

  HostMemory heap;
  heap.alloc(4);
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.dmaStores, 0u);
}

TEST(Simulator, UnpredicatedOutOfBoundsAccessFaults) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 1;
  s.vregsPerPE = {4, 4};
  auto load = makeOp(Op::DMA_LOAD, 0, 0, 1);
  load.src[0] = imm(0);
  load.src[1] = imm(50);
  load.writesDest = true;
  load.destVreg = 0;
  s.ops = {load};

  HostMemory heap;
  heap.alloc(4);
  EXPECT_THROW(Simulator(comp, s).run({}, heap), Error);
}

TEST(Simulator, BackBranchLoopsAndExits) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 3;
  s.vregsPerPE = {4, 4};
  s.cboxSlotsUsed = 1;
  // r0 starts 0 (live-in default); loop body t1..t2 increments r0 and loops
  // while r0 < 3: executes 4 passes (3 committed + dry-pass semantics are
  // the scheduler's business; here the branch reads the raw condition).
  auto one = makeOp(Op::CONST, 0, 0, 1);
  one.src[0] = imm(1);
  one.writesDest = true;
  one.destVreg = 1;
  auto three = makeOp(Op::CONST, 1, 0, 1);
  three.src[0] = imm(3);
  three.writesDest = true;
  three.destVreg = 0;
  auto add = makeOp(Op::IADD, 0, 1, 1);
  add.src[0] = own(0);
  add.src[1] = own(1);
  add.writesDest = true;
  add.destVreg = 0;
  auto cmp = makeOp(Op::IFLT, 0, 2, 1);
  cmp.src[0] = own(0);
  cmp.src[1] = route(1, 0);
  cmp.emitsStatus = true;
  CBoxOp store;
  store.time = 2;
  store.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  store.logic = CBoxOp::Logic::Pass;
  store.writeSlot = 0;
  // Branch at t2 reads the PREVIOUS pass's condition value (slots commit at
  // end of cycle), so the loop runs one extra pass after r0 reaches 3.
  BranchOp br;
  br.time = 2;
  br.target = 1;
  br.conditional = true;
  br.pred = PredRef{0, true};
  s.ops = {one, three, add, cmp};
  s.cboxOps = {store};
  s.branches = {br};
  s.liveIns = {LiveBinding{0, 0, 0}};
  s.liveOuts = {LiveBinding{0, 0, 0}};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({{0, 0}}, heap);
  // Pass 1: r0=1, slot<-1 (branch read slot=0 initial -> falls?); the branch
  // at t2 of pass 1 reads slot value from BEFORE this cycle's write: 0.
  // Hence exactly one pass: r0 == 1. This pins down the read-before-write
  // branch timing.
  EXPECT_EQ(r.liveOuts.at(0), 1);
  EXPECT_EQ(r.runCycles, 3u);
}

TEST(Simulator, BranchReadsSlotWrittenInEarlierCycle) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 4;
  s.vregsPerPE = {4, 4};
  s.cboxSlotsUsed = 1;
  // t0: r0=1; t1: cmp 1<2 -> slot0=1 (end of t1); t3: branch back to t2 if
  // slot0 — infinite unless the slot is later rewritten; we instead branch
  // on polarity false to verify the branch does NOT fire when slot is 1.
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(1);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto two = makeOp(Op::CONST, 1, 0, 1);
  two.src[0] = imm(2);
  two.writesDest = true;
  two.destVreg = 0;
  auto cmp = makeOp(Op::IFLT, 0, 1, 1);
  cmp.src[0] = own(0);
  cmp.src[1] = route(1, 0);
  cmp.emitsStatus = true;
  CBoxOp store;
  store.time = 1;
  store.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  store.logic = CBoxOp::Logic::Pass;
  store.writeSlot = 0;
  BranchOp br;
  br.time = 3;
  br.target = 2;
  br.conditional = true;
  br.pred = PredRef{0, false};  // taken only when slot is 0 — it is 1
  s.ops = {c0, two, cmp};
  s.cboxOps = {store};
  s.branches = {br};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.runCycles, 4u) << "branch not taken, linear execution";
}

TEST(Simulator, MultiCycleOpCommitsAtEnd) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 4;
  s.vregsPerPE = {4, 4};
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(6);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto mul = makeOp(Op::IMUL, 0, 1, 2);  // occupies t1..t2, commits end t2
  mul.src[0] = own(0);
  mul.src[1] = own(0);
  mul.writesDest = true;
  mul.destVreg = 1;
  auto add = makeOp(Op::IADD, 0, 3, 1);
  add.src[0] = own(1);
  add.src[1] = own(0);
  add.writesDest = true;
  add.destVreg = 2;
  s.ops = {c0, mul, add};
  s.liveOuts = {LiveBinding{0, 0, 2}};

  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.liveOuts.at(0), 42);
}

TEST(Simulator, CBoxAndCombine) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 4;
  s.vregsPerPE = {4, 4};
  s.cboxSlotsUsed = 3;
  // slot0 <- 1 (status of 1<2), slot1 <- 0 (status of 2<1), then
  // slot2 <- slot0 & !slot1 = 1; verify via predicated write.
  auto one = makeOp(Op::CONST, 0, 0, 1);
  one.src[0] = imm(1);
  one.writesDest = true;
  one.destVreg = 0;
  auto two = makeOp(Op::CONST, 1, 0, 1);
  two.src[0] = imm(2);
  two.writesDest = true;
  two.destVreg = 0;
  auto cmpA = makeOp(Op::IFLT, 0, 1, 1);
  cmpA.src[0] = own(0);
  cmpA.src[1] = route(1, 0);
  cmpA.emitsStatus = true;
  auto cmpB = makeOp(Op::IFLT, 1, 2, 1);
  cmpB.src[0] = own(0);
  cmpB.src[1] = route(0, 0);
  cmpB.emitsStatus = true;
  CBoxOp s0;
  s0.time = 1;
  s0.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  s0.writeSlot = 0;
  CBoxOp s1;
  s1.time = 2;
  s1.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  s1.writeSlot = 1;
  CBoxOp comb;
  comb.time = 3;
  comb.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Stored, 0, true},
                 CBoxOp::Input{CBoxOp::Input::Kind::Stored, 1, false}};
  comb.logic = CBoxOp::Logic::And;
  comb.writeSlot = 2;
  s.ops = {one, two, cmpA, cmpB};
  s.cboxOps = {s0, s1, comb};

  HostMemory heap;
  // No predicated consumer needed: absence of exceptions plus cycle count.
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_EQ(r.runCycles, 4u);
  // cmpB computes 2<1? No wait: cmpB on PE1 reads own r0=2, routes PE0 r0=1:
  // 2<1 = false -> slot1 = 0, so slot2 = 1 & !0 = 1. Checked implicitly by
  // the C-Box assertions (consuming a status that exists).
}

TEST(Simulator, CycleBudgetGuard) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 2;
  s.vregsPerPE = {1, 1};
  s.cboxSlotsUsed = 1;
  BranchOp br;
  br.time = 1;
  br.target = 0;
  br.conditional = false;  // unconditional infinite loop
  s.branches = {br};
  HostMemory heap;
  SimOptions opts;
  opts.maxCycles = 1000;
  EXPECT_THROW(Simulator(comp, s).run({}, heap, opts), Error);
}

TEST(Simulator, EnergyAccumulates) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 1;
  s.vregsPerPE = {2, 1};
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(5);
  c0.writesDest = true;
  c0.destVreg = 0;
  s.ops = {c0};
  HostMemory heap;
  const SimResult r = Simulator(comp, s).run({}, heap);
  EXPECT_GT(r.energy, 0.0);
  SimOptions noEnergy;
  noEnergy.collectEnergy = false;
  HostMemory heap2;
  const SimResult r2 = Simulator(comp, s).run({}, heap2, noEnergy);
  EXPECT_EQ(r2.energy, 0.0);
}

TEST(SimCountersTest, OffByDefaultAndEngagedOnRequest) {
  const Composition comp = smallComp();
  Schedule s;
  s.length = 1;
  s.vregsPerPE = {2, 1};
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(5);
  c0.writesDest = true;
  c0.destVreg = 0;
  s.ops = {c0};
  HostMemory heap;
  const SimResult off = Simulator(comp, s).run({}, heap);
  EXPECT_FALSE(off.counters.has_value());
  SimOptions opts;
  opts.collectCounters = true;
  HostMemory heap2;
  const SimResult on = Simulator(comp, s).run({}, heap2, opts);
  ASSERT_TRUE(on.counters.has_value());
  EXPECT_EQ(on.counters->cycles, on.runCycles);
}

TEST(SimCountersTest, PerPECyclesPartitionRunCycles) {
  // Two PEs, three contexts: PE0 busy at t0/t2 and NOP at t1, PE1 busy only
  // at t0 (via a routed read at t2, still idle there). For every PE the
  // busy/nop/idle split must partition SimResult.runCycles exactly.
  const Composition comp = smallComp();
  Schedule s;
  s.length = 3;
  s.vregsPerPE = {4, 4};
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(2);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto c1 = makeOp(Op::CONST, 1, 0, 1);
  c1.src[0] = imm(3);
  c1.writesDest = true;
  c1.destVreg = 0;
  auto nop = makeOp(Op::NOP, 0, 1, 1);
  auto add = makeOp(Op::IADD, 0, 2, 1);
  add.src[0] = own(0);
  add.src[1] = route(1, 0);
  add.writesDest = true;
  add.destVreg = 1;
  s.ops = {c0, c1, nop, add};
  s.liveOuts = {LiveBinding{0, 0, 1}};

  HostMemory heap;
  SimOptions opts;
  opts.collectCounters = true;
  const SimResult r = Simulator(comp, s).run({}, heap, opts);
  ASSERT_TRUE(r.counters.has_value());
  const SimCounters& c = *r.counters;
  ASSERT_EQ(c.perPE.size(), 2u);
  for (const PECounters& pc : c.perPE)
    EXPECT_EQ(pc.busyCycles + pc.nopCycles + pc.idleCycles, r.runCycles);
  EXPECT_EQ(c.perPE[0].busyCycles, 2u);
  EXPECT_EQ(c.perPE[0].nopCycles, 1u);
  EXPECT_EQ(c.perPE[0].idleCycles, 0u);
  EXPECT_EQ(c.perPE[1].busyCycles, 1u);
  EXPECT_EQ(c.perPE[1].idleCycles, 2u);
  // Op-class histogram: PE0 issued CONST, NOP, IADD (Alu).
  EXPECT_EQ(c.perPE[0].byClass[static_cast<std::size_t>(OpClass::Const)], 1u);
  EXPECT_EQ(c.perPE[0].byClass[static_cast<std::size_t>(OpClass::Nop)], 1u);
  EXPECT_EQ(c.perPE[0].byClass[static_cast<std::size_t>(OpClass::Alu)], 1u);
  // The routed operand is an RF read on the *producer* PE and one transfer
  // on the 1 -> 0 link.
  EXPECT_EQ(c.perPE[1].rfReads, 1u);
  EXPECT_EQ(c.transfersOn(1, 0), 1u);
  EXPECT_EQ(c.totalLinkTransfers(), 1u);
  // Committed writes: c0 + add on PE0 (2 distinct vregs), c1 on PE1.
  EXPECT_EQ(c.perPE[0].rfWrites, 2u);
  EXPECT_EQ(c.perPE[0].regsTouched, 2u);
  EXPECT_EQ(c.perPE[1].rfWrites, 1u);
}

TEST(SimCountersTest, SquashedOpFetchesOperandsButCommitsNothing) {
  // Same shape as PredicationSuppressesRegisterWrite: slot 0 ends up false,
  // so the pred-true CONST is squashed and the pred-false CONST commits.
  // The squashed op still counts as issued (operand latch happens before
  // the predication gate); its RF write must not.
  const Composition comp = smallComp();
  Schedule s;
  s.length = 4;
  s.vregsPerPE = {4, 4};
  s.cboxSlotsUsed = 1;
  auto c0 = makeOp(Op::CONST, 0, 0, 1);
  c0.src[0] = imm(5);
  c0.writesDest = true;
  c0.destVreg = 0;
  auto three = makeOp(Op::CONST, 1, 0, 1);
  three.src[0] = imm(3);
  three.writesDest = true;
  three.destVreg = 0;
  auto cmp = makeOp(Op::IFLT, 0, 1, 1);
  cmp.src[0] = own(0);
  cmp.src[1] = route(1, 0);
  cmp.emitsStatus = true;
  CBoxOp store;
  store.time = 1;
  store.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  store.logic = CBoxOp::Logic::Pass;
  store.writeSlot = 0;
  auto wTrue = makeOp(Op::CONST, 0, 2, 1);
  wTrue.src[0] = imm(99);
  wTrue.writesDest = true;
  wTrue.destVreg = 0;
  wTrue.pred = PredRef{0, true};
  auto wFalse = makeOp(Op::CONST, 0, 3, 1);
  wFalse.src[0] = imm(77);
  wFalse.writesDest = true;
  wFalse.destVreg = 0;
  wFalse.pred = PredRef{0, false};
  s.ops = {c0, three, cmp, wTrue, wFalse};
  s.cboxOps = {store};
  s.liveOuts = {LiveBinding{0, 0, 0}};

  HostMemory heap;
  SimOptions opts;
  opts.collectCounters = true;
  const SimResult r = Simulator(comp, s).run({}, heap, opts);
  ASSERT_TRUE(r.counters.has_value());
  const SimCounters& c = *r.counters;
  EXPECT_EQ(c.perPE[0].opsIssued, 4u);  // c0, cmp, wTrue, wFalse
  EXPECT_EQ(c.perPE[0].squashedOps, 1u);
  EXPECT_EQ(c.totalSquashed(), 1u);
  // Commits: c0 and wFalse only, both to vreg 0.
  EXPECT_EQ(c.perPE[0].rfWrites, 2u);
  EXPECT_EQ(c.perPE[0].regsTouched, 1u);
  EXPECT_EQ(c.perPE[0].byClass[static_cast<std::size_t>(OpClass::Compare)],
            1u);
  // One slot write from one live status wire; no combine network involved.
  EXPECT_EQ(c.cboxSlotWrites, 1u);
  EXPECT_EQ(c.cboxStatusReads, 1u);
  EXPECT_EQ(c.cboxCombines, 0u);
}

TEST(SimCountersTest, WindowResetsPerInvocationAndSkipsOutsideContexts) {
  // Three contexts, each a CONST into PE0 r0; the window covers [1, 3) only.
  // Counters must show zero executions of context 0, the live-in/out
  // transfers must land in the invocation protocol (never PE busy), and a
  // second runWindow call must restart from zero rather than accumulate.
  const Composition comp = smallComp();
  Schedule s;
  s.length = 3;
  s.vregsPerPE = {4, 4};
  for (unsigned t = 0; t < 3; ++t) {
    auto op = makeOp(Op::CONST, 0, t, 1);
    op.src[0] = imm(static_cast<std::int32_t>(100 + t));
    op.writesDest = true;
    op.destVreg = 0;
    s.ops.push_back(op);
  }
  const std::vector<LiveBinding> liveIns = {LiveBinding{7, 1, 0}};
  const std::vector<LiveBinding> liveOuts = {LiveBinding{8, 0, 0}};

  HostMemory heap;
  SimOptions opts;
  opts.collectCounters = true;
  const Simulator sim(comp, s);
  const SimResult r1 = sim.runWindow({{7, 1}}, heap, liveIns, liveOuts, 1, 3,
                                     opts);
  ASSERT_TRUE(r1.counters.has_value());
  const SimCounters& c = *r1.counters;
  EXPECT_EQ(r1.liveOuts.at(8), 102) << "window must end on context 2's value";
  EXPECT_EQ(r1.runCycles, 2u);
  ASSERT_EQ(c.contextExec.size(), 3u);
  EXPECT_EQ(c.contextExec[0], 0u) << "context 0 is outside the window";
  EXPECT_EQ(c.contextExec[1], 1u);
  EXPECT_EQ(c.contextExec[2], 1u);
  // One live-in and one live-out transfer at 2 cycles each, plus the fixed
  // handshake: invocation protocol only, not PE busy time.
  EXPECT_EQ(c.liveInTransferCycles, 2u);
  EXPECT_EQ(c.liveOutTransferCycles, 2u);
  EXPECT_EQ(c.overheadCycles, Simulator::kInvocationOverhead);
  EXPECT_EQ(r1.invocationCycles,
            r1.runCycles + c.liveInTransferCycles + c.liveOutTransferCycles +
                Simulator::kInvocationOverhead);
  EXPECT_EQ(c.perPE[0].busyCycles, 2u);
  EXPECT_EQ(c.perPE[0].rfWrites, 2u);

  HostMemory heap2;
  const SimResult r2 = sim.runWindow({{7, 1}}, heap2, liveIns, liveOuts, 1, 3,
                                     opts);
  ASSERT_TRUE(r2.counters.has_value());
  EXPECT_EQ(r2.counters->perPE[0].busyCycles, c.perPE[0].busyCycles)
      << "counters must reset per invocation, not accumulate";
  EXPECT_EQ(r2.counters->contextExec, c.contextExec);
  EXPECT_EQ(r2.counters->toJson().dump(), c.toJson().dump())
      << "identical invocations must serialize byte-identically";
}

}  // namespace
}  // namespace cgra
