// Unit tests for the host substrate: heap semantics, token-machine cost
// accounting and error handling, and the hardware-profiler analog.
#include <gtest/gtest.h>

#include "apps/kernels.hpp"
#include "host/profiler.hpp"
#include "host/token_machine.hpp"
#include "kir/lower_bytecode.hpp"

namespace cgra {
namespace {

TEST(HostMemory, AllocLoadStore) {
  HostMemory mem;
  const Handle h = mem.alloc({1, 2, 3});
  EXPECT_EQ(mem.size(h), 3u);
  EXPECT_EQ(mem.load(h, 2), 3);
  mem.store(h, 0, 42);
  EXPECT_EQ(mem.load(h, 0), 42);
  EXPECT_EQ(mem.loadCount(), 2u);
  EXPECT_EQ(mem.storeCount(), 1u);
}

TEST(HostMemory, BoundsAndHandleChecks) {
  HostMemory mem;
  const Handle h = mem.alloc(2);
  EXPECT_THROW(mem.load(h, 2), Error);
  EXPECT_THROW(mem.load(h, -1), Error);
  EXPECT_THROW(mem.store(h, 5, 0), Error);
  EXPECT_THROW(mem.load(7, 0), Error);
  EXPECT_THROW(mem.load(-1, 0), Error);
}

TEST(HostMemory, EqualityComparesContents) {
  HostMemory a, b;
  a.alloc({1, 2});
  b.alloc({1, 2});
  EXPECT_TRUE(a == b);
  b.store(0, 1, 3);
  EXPECT_FALSE(a == b);
}

TEST(TokenMachine, ArithmeticProgram) {
  // r2 = (r0 + r1) * r0
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 3;
  fn.code = {
      {Bc::ILOAD, 0}, {Bc::ILOAD, 1}, {Bc::IADD, 0},  {Bc::ILOAD, 0},
      {Bc::IMUL, 0},  {Bc::ISTORE, 2}, {Bc::HALT, 0},
  };
  HostMemory heap;
  const TokenMachine tm;
  const auto r = tm.run(fn, {3, 4}, heap);
  EXPECT_EQ(r.locals[2], 21);
  EXPECT_EQ(r.bytecodes, 7u);
  // Cost model: 3 local loads + 1 store (4×localOp) + add (aluOp) + mul.
  const TokenCostModel c;
  EXPECT_EQ(r.cycles, 4 * c.localOp + c.aluOp + c.mulOp);
}

TEST(TokenMachine, BranchAndArrayCosts) {
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 1;
  fn.code = {
      {Bc::ICONST, 0}, {Bc::ICONST, 1}, {Bc::IF_ICMPLT, 4}, {Bc::HALT, 0},
      {Bc::ICONST, 0}, {Bc::ICONST, 5}, {Bc::IALOAD, 0},   {Bc::ISTORE, 0},
      {Bc::HALT, 0},
  };
  HostMemory heap;
  const Handle h = heap.alloc({9, 8, 7, 6, 5, 4});
  ASSERT_EQ(h, 0);
  const TokenMachine tm;
  const auto r = tm.run(fn, {}, heap);
  EXPECT_EQ(r.locals[0], 4);
}

TEST(TokenMachine, DetectsStackUnderflow) {
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 0;
  fn.code = {{Bc::IADD, 0}, {Bc::HALT, 0}};
  HostMemory heap;
  const TokenMachine tm;
  EXPECT_THROW(tm.run(fn, {}, heap), Error);
}

TEST(TokenMachine, DetectsRunawayLoop) {
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 0;
  fn.code = {{Bc::GOTO, 0}};
  HostMemory heap;
  const TokenMachine tm;
  EXPECT_THROW(tm.run(fn, {}, heap, 1000), Error);
}

TEST(TokenMachine, DetectsResidualStack) {
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 0;
  fn.code = {{Bc::ICONST, 1}, {Bc::HALT, 0}};
  HostMemory heap;
  const TokenMachine tm;
  EXPECT_THROW(tm.run(fn, {}, heap), Error);
}

TEST(TokenMachine, CustomCostModel) {
  TokenCostModel costs;
  costs.constOp = 100;
  const TokenMachine tm(costs);
  BytecodeFunction fn;
  fn.name = "t";
  fn.numLocals = 1;
  fn.code = {{Bc::ICONST, 5}, {Bc::ISTORE, 0}, {Bc::HALT, 0}};
  HostMemory heap;
  const auto r = tm.run(fn, {}, heap);
  EXPECT_EQ(r.cycles, 100u + costs.localOp);
}

TEST(Profiler, FindsHotLoopInAdpcm) {
  const apps::Workload w = apps::makeAdpcm(64, 1);
  const BytecodeFunction bc = kir::lowerToBytecode(w.fn);
  Profiler profiler(/*threshold=*/32);
  HostMemory heap = w.heap;
  profiler.profile(bc, w.initialLocals, heap);

  const auto regions = profiler.hotRegions();
  ASSERT_FALSE(regions.empty()) << "the sample loop must be hot";
  // Hottest region first; the outer loop executes ~64 times, the inner
  // bit-scan loop up to 3x per sample.
  EXPECT_GE(regions.front().executions, 64u);
  for (const HotRegion& r : regions) EXPECT_LE(r.startPc, r.endPc);
  // The profile run has the same architectural effect as a normal run.
  HostMemory plainHeap = w.heap;
  const TokenMachine tm;
  tm.run(bc, w.initialLocals, plainHeap);
  EXPECT_TRUE(heap == plainHeap);
}

TEST(Profiler, ThresholdFiltersColdBranches) {
  const apps::Workload w = apps::makeGcd(12, 8);
  const BytecodeFunction bc = kir::lowerToBytecode(w.fn);
  Profiler hot(1'000'000);
  HostMemory heap = w.heap;
  hot.profile(bc, w.initialLocals, heap);
  EXPECT_TRUE(hot.hotRegions().empty());
  EXPECT_FALSE(hot.branchCounts().empty()) << "raw counters still collected";
}

}  // namespace
}  // namespace cgra
