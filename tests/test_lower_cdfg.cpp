// Unit tests for KIR→CDFG lowering: pWRITE creation and predication,
// condition-tree construction for nested control flow, dependency-edge
// annotation (flow/anti/output per variable, memory alias classes), loop
// records and the speculation rules (ALU unpredicated, memory predicated).
#include <gtest/gtest.h>

#include "kir/lower_cdfg.hpp"

namespace cgra {
namespace {

using kir::FunctionBuilder;
using kir::LoweringResult;

/// Counts nodes matching a predicate.
template <typename Pred>
unsigned countNodes(const Cdfg& g, Pred pred) {
  unsigned count = 0;
  for (NodeId id = 0; id < g.numNodes(); ++id)
    if (pred(g.node(id))) ++count;
  return count;
}

/// Finds the single node matching a predicate.
template <typename Pred>
NodeId findNode(const Cdfg& g, Pred pred) {
  NodeId found = kNoNode;
  for (NodeId id = 0; id < g.numNodes(); ++id)
    if (pred(g.node(id))) {
      EXPECT_EQ(found, kNoNode) << "predicate matches twice";
      found = id;
    }
  EXPECT_NE(found, kNoNode);
  return found;
}

bool hasEdge(const Cdfg& g, NodeId from, NodeId to, DepKind kind) {
  for (const Edge& e : g.outEdges(from))
    if (e.to == to && e.kind == kind) return true;
  return false;
}

TEST(LowerCdfg, StraightLineAssignments) {
  FunctionBuilder b("straight");
  const auto a = b.param("a");
  const auto x = b.localVar("x");
  const auto y = b.localVar("y");
  const auto fn = b.finish(b.block({
      b.assign(x, b.add(b.use(a), b.cint(1))),
      b.assign(y, b.mul(b.use(x), b.use(x))),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;

  const NodeId add = findNode(g, [](const Node& n) {
    return n.kind == NodeKind::Operation && n.op == Op::IADD;
  });
  const NodeId mul = findNode(g, [](const Node& n) {
    return n.kind == NodeKind::Operation && n.op == Op::IMUL;
  });
  const NodeId wx = findNode(g, [&](const Node& n) {
    return n.isPWrite() && n.var == r.localToVar[x];
  });
  // x's write feeds the multiply through the variable (fused read).
  EXPECT_TRUE(hasEdge(g, add, wx, DepKind::Flow));
  EXPECT_TRUE(hasEdge(g, wx, mul, DepKind::Flow));
  EXPECT_EQ(g.node(mul).operands[0], Operand::variable(r.localToVar[x]));
  // Unconditional writes carry no condition.
  EXPECT_EQ(g.node(wx).cond, kCondTrue);
  // Variables: a is live-in, x and y live-out.
  EXPECT_TRUE(g.variable(r.localToVar[a]).liveIn);
  EXPECT_TRUE(g.variable(r.localToVar[x]).liveOut);
  EXPECT_FALSE(g.variable(r.localToVar[x]).liveIn);
}

TEST(LowerCdfg, IfElsePredicationAndMerge) {
  FunctionBuilder b("ifelse");
  const auto a = b.param("a");
  const auto x = b.localVar("x");
  const auto y = b.localVar("y");
  const auto fn = b.finish(b.block({
      b.ifElse(b.lt(b.use(a), b.cint(0)),
               b.assign(x, b.cint(1)),
               b.assign(x, b.cint(2))),
      b.assign(y, b.use(x)),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;

  const NodeId cmp = findNode(g, [](const Node& n) {
    return n.isStatusProducer();
  });
  // The comparison itself is speculated (unpredicated).
  EXPECT_EQ(g.node(cmp).cond, kCondTrue);

  std::vector<NodeId> writesX;
  for (NodeId id = 0; id < g.numNodes(); ++id)
    if (g.node(id).isPWrite() && g.node(id).var == r.localToVar[x])
      writesX.push_back(id);
  ASSERT_EQ(writesX.size(), 2u);
  // Opposite-polarity single-literal conditions rooted at the comparison.
  const Condition& c0 = g.condition(g.node(writesX[0]).cond);
  const Condition& c1 = g.condition(g.node(writesX[1]).cond);
  EXPECT_EQ(c0.statusNode, cmp);
  EXPECT_EQ(c1.statusNode, cmp);
  EXPECT_EQ(c0.parent, kCondTrue);
  EXPECT_NE(c0.polarity, c1.polarity);
  // Control edges from the comparison to both predicated writes.
  EXPECT_TRUE(hasEdge(g, cmp, writesX[0], DepKind::Control));
  EXPECT_TRUE(hasEdge(g, cmp, writesX[1], DepKind::Control));
  // No ordering edge between the mutually exclusive writes...
  EXPECT_FALSE(hasEdge(g, writesX[0], writesX[1], DepKind::Output));
  // ...but the merged read depends on both.
  const NodeId wy = findNode(g, [&](const Node& n) {
    return n.isPWrite() && n.var == r.localToVar[y];
  });
  EXPECT_TRUE(hasEdge(g, writesX[0], wy, DepKind::Flow));
  EXPECT_TRUE(hasEdge(g, writesX[1], wy, DepKind::Flow));
}

TEST(LowerCdfg, NestedConditionsChainThroughParents) {
  FunctionBuilder b("nested");
  const auto a = b.param("a");
  const auto x = b.localVar("x");
  const auto fn = b.finish(b.block({
      b.ifElse(b.gt(b.use(a), b.cint(0)),
               b.ifElse(b.lt(b.use(a), b.cint(10)),
                        b.assign(x, b.cint(7)))),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;

  const NodeId wx = findNode(g, [&](const Node& n) {
    return n.isPWrite() && n.var == r.localToVar[x];
  });
  const auto lits = g.conditionLiterals(g.node(wx).cond);
  ASSERT_EQ(lits.size(), 2u) << "conjunction of outer and inner literal";
  EXPECT_TRUE(lits[0].second && lits[1].second);
  // Control edges from both comparisons.
  EXPECT_TRUE(hasEdge(g, lits[0].first, wx, DepKind::Control));
  EXPECT_TRUE(hasEdge(g, lits[1].first, wx, DepKind::Control));
}

TEST(LowerCdfg, AntiAndOutputEdges) {
  FunctionBuilder b("waw");
  const auto a = b.param("a");
  const auto x = b.localVar("x");
  const auto y = b.localVar("y");
  const auto fn = b.finish(b.block({
      b.assign(x, b.cint(1)),
      b.assign(y, b.use(x)),   // read of x...
      b.assign(x, b.use(a)),   // ...before this overwrite
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;

  std::vector<NodeId> writesX;
  for (NodeId id = 0; id < g.numNodes(); ++id)
    if (g.node(id).isPWrite() && g.node(id).var == r.localToVar[x])
      writesX.push_back(id);
  ASSERT_EQ(writesX.size(), 2u);
  const NodeId wy = findNode(g, [&](const Node& n) {
    return n.isPWrite() && n.var == r.localToVar[y];
  });
  EXPECT_TRUE(hasEdge(g, writesX[0], writesX[1], DepKind::Output));
  EXPECT_TRUE(hasEdge(g, wy, writesX[1], DepKind::Anti))
      << "reader ordered before the overwrite";
}

TEST(LowerCdfg, LoopRecordAndControllingNode) {
  FunctionBuilder b("loop");
  const auto n = b.param("n");
  const auto i = b.localVar("i");
  const auto fn = b.finish(b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(n)),
                  b.assign(i, b.add(b.use(i), b.cint(1)))),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;

  ASSERT_EQ(g.numLoops(), 2u);
  const Loop& loop = g.loop(1);
  EXPECT_EQ(loop.parent, kRootLoop);
  EXPECT_EQ(loop.entryCond, kCondTrue);
  ASSERT_NE(loop.controllingNode, kNoNode);
  EXPECT_TRUE(g.node(loop.controllingNode).isStatusProducer());
  EXPECT_EQ(g.node(loop.controllingNode).loop, 1u)
      << "condition re-evaluated inside the loop";
  // Body condition = TRUE ∧ (cmp == true).
  const Condition& bc = g.condition(loop.bodyCond);
  EXPECT_EQ(bc.statusNode, loop.controllingNode);
  EXPECT_TRUE(bc.polarity);
  // The increment's pWRITE is inside the loop and predicated on bodyCond
  // (dry-pass safety).
  const NodeId wi = findNode(g, [&](const Node& node) {
    return node.isPWrite() && node.var == r.localToVar[i] && node.loop == 1;
  });
  EXPECT_EQ(g.node(wi).cond, loop.bodyCond);
  // The comparison reads i before the increment overwrites it.
  EXPECT_TRUE(hasEdge(g, loop.controllingNode, wi, DepKind::Control));
  EXPECT_TRUE(hasEdge(g, loop.controllingNode, wi, DepKind::Anti));
}

TEST(LowerCdfg, MemoryAliasClassesByHandle) {
  FunctionBuilder b("alias");
  const auto ha = b.param("a");
  const auto hb = b.param("b");
  const auto x = b.localVar("x");
  const auto fn = b.finish(b.block({
      b.arrayStore(b.use(ha), b.cint(0), b.cint(1)),
      b.assign(x, b.load(b.use(hb), b.cint(0))),  // distinct array
      b.assign(x, b.add(b.use(x), b.load(b.use(ha), b.cint(0)))),  // same
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;

  const NodeId store = findNode(g, [](const Node& n) {
    return n.kind == NodeKind::Operation && n.op == Op::DMA_STORE;
  });
  std::vector<NodeId> loads;
  for (NodeId id = 0; id < g.numNodes(); ++id)
    if (g.node(id).kind == NodeKind::Operation &&
        g.node(id).op == Op::DMA_LOAD)
      loads.push_back(id);
  ASSERT_EQ(loads.size(), 2u);
  // Load from b is independent of the store to a; load from a is ordered.
  const NodeId loadB = loads[0];
  const NodeId loadA = loads[1];
  EXPECT_FALSE(hasEdge(g, store, loadB, DepKind::Flow));
  EXPECT_TRUE(hasEdge(g, store, loadA, DepKind::Flow));
}

TEST(LowerCdfg, NonSimpleHandlesCollapseToOneClass) {
  FunctionBuilder b("alias2");
  const auto ha = b.param("a");
  const auto x = b.localVar("x");
  // Handle computed from an expression: conservative single class.
  const auto fn = b.finish(b.block({
      b.arrayStore(b.add(b.use(ha), b.cint(0)), b.cint(0), b.cint(1)),
      b.assign(x, b.load(b.use(ha), b.cint(0))),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;
  const NodeId store = findNode(g, [](const Node& n) {
    return n.kind == NodeKind::Operation && n.op == Op::DMA_STORE;
  });
  const NodeId load = findNode(g, [](const Node& n) {
    return n.kind == NodeKind::Operation && n.op == Op::DMA_LOAD;
  });
  EXPECT_TRUE(hasEdge(g, store, load, DepKind::Flow));
}

TEST(LowerCdfg, MemoryOpsArePredicatedInBranches) {
  FunctionBuilder b("mempred");
  const auto ha = b.param("a");
  const auto x = b.localVar("x");
  const auto fn = b.finish(b.block({
      b.ifElse(b.gt(b.use(x), b.cint(0)),
               b.assign(x, b.load(b.use(ha), b.cint(1)))),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;
  const NodeId load = findNode(g, [](const Node& n) {
    return n.kind == NodeKind::Operation && n.op == Op::DMA_LOAD;
  });
  EXPECT_NE(g.node(load).cond, kCondTrue) << "loads are always predicated";
  // Speculated ALU in the same branch would be unpredicated; check via the
  // comparison's operands being plain.
  for (NodeId id = 0; id < g.numNodes(); ++id) {
    const Node& n = g.node(id);
    if (n.kind == NodeKind::Operation && !n.isMemory()) {
      EXPECT_EQ(n.cond, kCondTrue) << "ALU ops are speculated";
    }
  }
}

TEST(LowerCdfg, CompareAsValueMaterializesThroughTemp) {
  FunctionBuilder b("cmpval");
  const auto a = b.param("a");
  const auto x = b.localVar("x");
  const auto fn = b.finish(b.block({
      b.assign(x, b.add(b.lt(b.use(a), b.cint(3)), b.cint(5))),
  }));
  const LoweringResult r = kir::lowerToCdfg(fn);
  const Cdfg& g = r.graph;
  // One comparison, two temp writes (0 and predicated 1), one x write.
  EXPECT_EQ(countNodes(g, [](const Node& n) { return n.isStatusProducer(); }),
            1u);
  EXPECT_EQ(countNodes(g, [](const Node& n) { return n.isPWrite(); }), 3u);
  EXPECT_GT(g.numVariables(), r.localToVar.size())
      << "a temp variable was created";
  g.validate();
}

TEST(LowerCdfg, RejectsCalls) {
  kir::Program prog;
  FunctionBuilder cb("callee");
  cb.param("p");
  cb.localVar("result");
  const auto callee = prog.addFunction(cb.finish(cb.block({})));
  FunctionBuilder b("caller");
  const auto out = b.localVar("out");
  const auto fn = b.finish(b.block({b.call(out, callee, {b.cint(1)})}));
  EXPECT_THROW(kir::lowerToCdfg(fn), Error);
}

}  // namespace
}  // namespace cgra
