// Tests for the parallel composition-sweep engine: determinism across
// thread counts (byte-identical schedules), arch-model transparency,
// per-job failure capture, metrics aggregation/JSON shape, and simulator
// verification of a schedule produced by a parallel sweep.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "apps/kernels.hpp"
#include "arch/arch_model.hpp"
#include "arch/factory.hpp"
#include "kir/interp.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/sweep.hpp"
#include "sim/simulator.hpp"

namespace cgra {
namespace {

struct Domain {
  std::deque<Composition> comps;
  std::deque<std::pair<std::string, Cdfg>> graphs;
  std::vector<SweepJob> jobs;

  static Domain make() {
    Domain d;
    d.comps.push_back(makeMesh(4));
    d.comps.push_back(makeMesh(9));
    d.comps.push_back(makeIrregular('A'));
    d.graphs.emplace_back("adpcm",
                          kir::lowerToCdfg(apps::makeAdpcm(8, 1).fn).graph);
    d.graphs.emplace_back("gcd",
                          kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph);
    for (const Composition& comp : d.comps)
      for (const auto& [name, graph] : d.graphs)
        d.jobs.push_back(SweepJob{&comp, &graph, name + "@" + comp.name(),
                                  SchedulerOptions{}});
    return d;
  }
};

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const Domain d = Domain::make();
  SweepOptions serial;
  serial.threads = 1;
  const SweepReport baseline = runSweep(d.jobs, serial);
  ASSERT_EQ(baseline.failures, 0u);
  ASSERT_EQ(baseline.results.size(), d.jobs.size());

  for (unsigned threads : {2u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    const SweepReport report = runSweep(d.jobs, opts);
    EXPECT_EQ(report.threadsUsed, threads);
    ASSERT_EQ(report.failures, 0u);
    for (std::size_t i = 0; i < d.jobs.size(); ++i) {
      EXPECT_EQ(report.results[i].fingerprint, baseline.results[i].fingerprint)
          << d.jobs[i].label << " @ " << threads << " threads";
      // Fingerprints fold every schedule field, but assert the dump too so a
      // fingerprint bug cannot mask a divergence.
      EXPECT_EQ(report.results[i].schedule.toString(*d.jobs[i].comp),
                baseline.results[i].schedule.toString(*d.jobs[i].comp))
          << d.jobs[i].label << " @ " << threads << " threads";
    }
  }
}

TEST(Sweep, JsonByteStableAcrossThreadCounts) {
  // With volatile fields (threads, wall times) excluded, the full report
  // JSON must be byte-for-byte identical no matter how many worker threads
  // produced it — the property the bench regression harness relies on.
  const Domain d = Domain::make();
  SweepOptions serial;
  serial.threads = 1;
  const std::string baseline = runSweep(d.jobs, serial).toJson(false).dump();
  EXPECT_NE(baseline.find("meanStaticUtilization"), std::string::npos);
  EXPECT_EQ(baseline.find("wallTimeMs"), std::string::npos)
      << "volatile fields must be omitted from the stable form";
  EXPECT_EQ(baseline.find("\"threads\""), std::string::npos);
  for (unsigned threads : {2u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    EXPECT_EQ(runSweep(d.jobs, opts).toJson(false).dump(), baseline)
        << "sweep JSON diverged at " << threads << " threads";
  }
}

TEST(Sweep, SharedArchModelMatchesDirectScheduling) {
  const Domain d = Domain::make();
  SweepOptions opts;
  opts.threads = 2;
  const SweepReport report = runSweep(d.jobs, opts);
  ASSERT_EQ(report.failures, 0u);
  EXPECT_EQ(report.routingCacheEntries, d.comps.size());
  for (std::size_t i = 0; i < d.jobs.size(); ++i) {
    // Direct scheduling and the sweep both read the composition's memoized
    // ArchModel. Schedules must be identical either way.
    const ScheduleReport direct =
        Scheduler(*d.jobs[i].comp).schedule(ScheduleRequest(*d.jobs[i].graph)).orThrow();
    EXPECT_EQ(direct.schedule.fingerprint(), report.results[i].fingerprint)
        << d.jobs[i].label;
  }
}

TEST(Sweep, ArchModelSharesOneEntryPerComposition) {
  const Composition comp = makeMesh(4);
  const auto a = ArchModel::get(comp);
  const auto b = ArchModel::get(comp);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->sinks.size(), comp.numPEs());
  EXPECT_EQ(a->connectivity.size(), comp.numPEs());
}

TEST(Sweep, RecordsFailuresWithoutAborting) {
  // One infeasible pair (IMUL kernel on a multiplier-less composition) must
  // not prevent the feasible job from completing.
  Composition base = makeMesh(4);
  std::vector<PEDescriptor> pes;
  for (PEId p = 0; p < 4; ++p) {
    PEDescriptor pe = base.pe(p);
    pe.removeOp(Op::IMUL);
    pes.push_back(std::move(pe));
  }
  const Composition noMul("noMul", std::move(pes), base.interconnect(), 256,
                          32);
  const Cdfg mulKernel = kir::lowerToCdfg(apps::makeDotProduct(4, 1).fn).graph;
  const Cdfg intKernel = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;

  const std::vector<SweepJob> jobs = {
      SweepJob{&noMul, &mulKernel, "dot@noMul", SchedulerOptions{}},
      SweepJob{&noMul, &intKernel, "gcd@noMul", SchedulerOptions{}},
  };
  SweepOptions opts;
  opts.threads = 2;
  const SweepReport report = runSweep(jobs, opts);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_FALSE(report.results[0].error.empty());
  EXPECT_TRUE(report.results[1].ok);
  EXPECT_EQ(report.aggregate.runs, 1u);

  // Failures are tallied by typed reason, not by string-matching messages.
  EXPECT_EQ(report.results[0].failure.reason, FailureReason::UnsupportedOp);
  EXPECT_EQ(report.failuresByReason[static_cast<std::size_t>(
                FailureReason::UnsupportedOp)],
            1u);
  const json::Value v = report.toJson();
  const json::Object& byReason =
      v.asObject().at("failuresByReason").asObject();
  ASSERT_TRUE(byReason.contains("unsupported-op"));
  EXPECT_EQ(byReason.at("unsupported-op").asInt(), 1);
  const json::Object& failedJob =
      v.asObject().at("jobs").asArray()[0].asObject();
  ASSERT_TRUE(failedJob.contains("failureReason"));
  EXPECT_EQ(failedJob.at("failureReason").asString(), "unsupported-op");
}

TEST(Sweep, AggregatesMetricsAndExportsJson) {
  const Domain d = Domain::make();
  SweepOptions opts;
  opts.threads = 2;
  opts.keepSchedules = false;
  const SweepReport report = runSweep(d.jobs, opts);
  ASSERT_EQ(report.failures, 0u);

  std::uint64_t nodes = 0;
  for (const SweepJobResult& r : report.results) {
    EXPECT_GT(r.metrics.nodesScheduled, 0u) << r.label;
    EXPECT_GT(r.metrics.candidateIterations, 0u) << r.label;
    EXPECT_GE(r.metrics.totalMs, 0.0) << r.label;
    nodes += r.metrics.nodesScheduled;
  }
  EXPECT_EQ(report.aggregate.nodesScheduled, nodes);
  EXPECT_EQ(report.aggregate.runs, d.jobs.size());

  const json::Value v = report.toJson();
  ASSERT_TRUE(v.isObject());
  const json::Object& o = v.asObject();
  for (const char* key : {"threads", "jobsTotal", "jobsFailed",
                          "routingCacheEntries", "wallTimeMs", "aggregate",
                          "jobs"})
    EXPECT_TRUE(o.contains(key)) << key;
  EXPECT_EQ(o.at("jobsTotal").asInt(),
            static_cast<std::int64_t>(d.jobs.size()));
  EXPECT_EQ(o.at("jobsFailed").asInt(), 0);
  const json::Object& agg = o.at("aggregate").asObject();
  for (const char* key : {"nodesScheduled", "copiesInserted", "cboxOps",
                          "candidateIterations", "probeRejections", "steps",
                          "setupMs", "planMs", "finalizeMs", "totalMs",
                          "loopCloseMs", "placementMs", "runs"})
    EXPECT_TRUE(agg.contains(key)) << key;
  EXPECT_EQ(static_cast<std::uint64_t>(agg.at("nodesScheduled").asInt()),
            nodes);

  // The per-pass planning breakdown is populated and bounded by the plan
  // phase it subdivides (a small bookkeeping remainder is expected).
  EXPECT_GT(report.aggregate.placementMs, 0.0);
  EXPECT_LE(report.aggregate.loopCloseMs + report.aggregate.placementMs,
            report.aggregate.planMs + 1.0);

  // Wall times are volatile by definition: the stable form drops them all.
  const json::Value stable = report.toJson(/*includeVolatile=*/false);
  const json::Object& stableAgg = stable.asObject().at("aggregate").asObject();
  for (const char* key : {"setupMs", "planMs", "finalizeMs", "totalMs",
                          "loopCloseMs", "placementMs"})
    EXPECT_FALSE(stableAgg.contains(key)) << key;
}

TEST(Sweep, ParallelScheduleSimulatesCorrectly) {
  // End-to-end: a schedule produced inside a multi-threaded sweep must drive
  // the simulator to the same memory state as the reference interpreter.
  const apps::Workload w = apps::makeAdpcm(16, 1);
  const Cdfg graph = kir::lowerToCdfg(w.fn).graph;
  const Composition comp = makeMesh(9);
  const std::vector<SweepJob> jobs = {
      SweepJob{&comp, &graph, "adpcm@mesh9", SchedulerOptions{}}};
  SweepOptions opts;
  opts.threads = 4;
  const SweepReport report = runSweep(jobs, opts);
  ASSERT_EQ(report.failures, 0u);
  const Schedule& schedule = report.results[0].schedule;

  HostMemory goldenHeap = w.heap;
  kir::Interpreter interp;
  interp.run(w.fn, w.initialLocals, goldenHeap);

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : schedule.liveIns)
    liveIns[lb.var] = w.initialLocals[lb.var];
  HostMemory heap = w.heap;
  Simulator(comp, schedule).run(liveIns, heap);
  EXPECT_TRUE(heap == goldenHeap);
}

TEST(Sweep, DeduplicatesIdenticalJobsWithinOneSweep) {
  // Four copies of one job plus one job with different options: the engine
  // schedules each distinct cache key once and copies the result to the
  // duplicates, preserving per-job labels and job order.
  const Composition comp = makeMesh(4);
  const Cdfg graph = kir::lowerToCdfg(apps::makeGcd(4, 6).fn).graph;
  std::vector<SweepJob> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(
        SweepJob{&comp, &graph, "gcd#" + std::to_string(i), SchedulerOptions{}});
  SchedulerOptions variant;
  variant.longestPathPriority = false;
  jobs.push_back(SweepJob{&comp, &graph, "gcd-variant", variant});

  SweepOptions opts;
  opts.threads = 2;
  const SweepReport report = runSweep(jobs, opts);
  ASSERT_EQ(report.results.size(), 5u);
  ASSERT_EQ(report.failures, 0u);
  EXPECT_EQ(report.dedupedJobs, 3u);

  EXPECT_FALSE(report.results[0].fromCache);
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(report.results[i].fromCache) << i;
    EXPECT_EQ(report.results[i].cacheKey, report.results[0].cacheKey);
    EXPECT_EQ(report.results[i].fingerprint, report.results[0].fingerprint);
    EXPECT_EQ(report.results[i].label, "gcd#" + std::to_string(i))
        << "copied results keep their own label";
  }
  // Different options → different key → scheduled independently.
  EXPECT_FALSE(report.results[4].fromCache);
  EXPECT_NE(report.results[4].cacheKey, report.results[0].cacheKey);

  // dedupedJobs is deterministic for a job list, so the stable JSON form
  // carries it.
  const std::string stable = report.toJson(false).dump();
  EXPECT_NE(stable.find("\"dedupedJobs\": 3"), std::string::npos) << stable;
}

TEST(Sweep, DedupMatchesIndependentScheduling) {
  // A sweep with duplicates must report exactly what a duplicate-free sweep
  // reports for the same distinct jobs — dedup is a pure optimization.
  const Domain d = Domain::make();
  std::vector<SweepJob> doubled = d.jobs;
  doubled.insert(doubled.end(), d.jobs.begin(), d.jobs.end());

  SweepOptions opts;
  opts.threads = 2;
  const SweepReport unique = runSweep(d.jobs, opts);
  const SweepReport report = runSweep(doubled, opts);
  ASSERT_EQ(report.failures, 0u);
  EXPECT_EQ(report.dedupedJobs, d.jobs.size());
  for (std::size_t i = 0; i < d.jobs.size(); ++i) {
    const SweepJobResult& copy = report.results[d.jobs.size() + i];
    EXPECT_EQ(copy.fingerprint, unique.results[i].fingerprint);
    EXPECT_EQ(copy.cacheKey, unique.results[i].cacheKey);
    EXPECT_EQ(copy.schedule.toString(*d.jobs[i].comp),
              unique.results[i].schedule.toString(*d.jobs[i].comp));
  }
}

}  // namespace
}  // namespace cgra
