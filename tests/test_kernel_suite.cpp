// The examples/kernels/ suite, tested end to end: every .kir kernel is
// parsed, run through the frontend normalization pipeline, scheduled onto a
// mesh and simulated, and the CGRA result is differentially checked against
// the reference interpreter running the ORIGINAL (unnormalized) kernel —
// heap and live-out locals both. The schedule fingerprints are pinned in
// tests/golden/kernel_suite_fingerprints.txt (regenerate with
// CGRA_REGEN_GOLDENS=1, see tools/regen_goldens.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "arch/factory.hpp"
#include "host/token_machine.hpp"
#include "kir/interp.hpp"
#include "kir/lower_bytecode.hpp"
#include "kir/lower_cdfg.hpp"
#include "kir/parser.hpp"
#include "kir/passes.hpp"
#include "sched/scheduler.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"

#ifndef CGRA_KERNEL_DIR
#error "CGRA_KERNEL_DIR must point at examples/kernels"
#endif
#ifndef CGRA_GOLDEN_DIR
#error "CGRA_GOLDEN_DIR must point at tests/golden"
#endif

namespace cgra {
namespace {

/// Reference inputs for one suite kernel: parameters are looked up by name;
/// a name present in `arrays` is allocated on the heap and passed as its
/// handle, anything else must be in `scalars`.
struct SuiteCase {
  std::map<std::string, std::vector<std::int32_t>> arrays;
  std::map<std::string, std::int32_t> scalars;
};

const std::map<std::string, SuiteCase>& suiteCases() {
  static const std::map<std::string, SuiteCase> cases = {
      {"popcount_sum", {{{"data", {7, 255, 1, 0, 1023, -1}}}, {{"n", 6}}}},
      {"saturating_diff",
       {{{"a", {10, 20, 30, -40}},
         {"b", {5, 50, 0, 40}},
         {"out", {0, 0, 0, 0}}},
        {{"n", 4}, {"limit", 15}}}},
      {"fir",
       {{{"x", {1, 2, 3, 4, 5, 6, 7, 8}},
         {"coeff", {1, -2, 1}},
         {"out", {0, 0, 0, 0, 0, 0}}},
        {{"n", 6}, {"taps", 3}}}},
      {"iir",
       {{{"x", {100, 200, -300, 50, 400, -100}}, {"y", {0, 0, 0, 0, 0, 0}}},
        {{"n", 6}, {"a", 200}, {"b", 120}, {"limit", 180}}}},
      {"crc32",
       {{{"data", {49, 50, 51, 52}}, {"out", {0}}}, {{"n", 4}}}},
      {"insertion_sort",
       {{{"a", {5, 2, 9, 1, 7, 3, 3, -8}}}, {{"n", 8}}}},
      {"matmul",
       {{{"a", {1, 2, 3, 4, 5, 6}},
         {"b", {7, 8, 9, 10, 11, 12}},
         {"c", {0, 0, 0, 0}}},
        {{"n", 2}, {"m", 3}, {"p", 2}}}},
      {"string_search",
       {{{"haystack", {104, 101, 108, 108, 111}}, {"needle", {108, 108}}},
        {{"n", 5}, {"m", 2}}}},
      {"vm_accumulate",
       {{{"ops", {0, 5, 2, 3, 4, 0, 1, 7, 5, 0, 0, 9}},
         {"out", {0, 0, 0, 0, 0, 0, 0}}},
        {{"n", 6}}}},
  };
  return cases;
}

std::string kernelPath(const std::string& name) {
  return std::string(CGRA_KERNEL_DIR) + "/" + name + ".kir";
}

/// Builds the initial-locals vector (parameters by position, zeros for
/// non-parameter locals) and allocates the case's arrays into `heap`.
std::vector<std::int32_t> bindInputs(const kir::Function& fn,
                                     const SuiteCase& c, HostMemory& heap) {
  std::vector<std::int32_t> locals(fn.numLocals(), 0);
  for (kir::LocalId l = 0; l < fn.numLocals(); ++l) {
    if (!fn.local(l).isParameter) continue;
    const std::string& name = fn.local(l).name;
    if (auto it = c.arrays.find(name); it != c.arrays.end()) {
      locals[l] = heap.alloc(it->second);
    } else {
      auto sit = c.scalars.find(name);
      if (sit == c.scalars.end())
        throw Error("suite case has no input for parameter '" + name + "'");
      locals[l] = sit->second;
    }
  }
  return locals;
}

class KernelSuite : public ::testing::TestWithParam<std::string> {};

TEST(KernelSuiteIndex, EveryKirFileHasACaseAndViceVersa) {
  std::vector<std::string> onDisk;
  for (const auto& entry :
       std::filesystem::directory_iterator(CGRA_KERNEL_DIR))
    if (entry.path().extension() == ".kir")
      onDisk.push_back(entry.path().stem().string());
  EXPECT_EQ(onDisk.size(), suiteCases().size())
      << "examples/kernels/ and suiteCases() disagree — add the reference "
         "inputs (and golden fingerprint) for new suite kernels here";
  for (const std::string& name : onDisk)
    EXPECT_TRUE(suiteCases().contains(name)) << name;
}

TEST_P(KernelSuite, NormalizesToStructuredForm) {
  const kir::Function fn = kir::parseKernelFile(kernelPath(GetParam()));
  EXPECT_EQ(fn.name(), GetParam()) << "file name and kernel name must match";
  const kir::FrontendResult r = kir::runFrontendPipeline(fn);
  EXPECT_EQ(kir::firstIrregularConstruct(r.fn), nullptr) << r.fn.toString();
}

TEST_P(KernelSuite, CgraMatchesInterpreter) {
  const kir::Function fn = kir::parseKernelFile(kernelPath(GetParam()));
  const SuiteCase& c = suiteCases().at(GetParam());

  HostMemory refHeap;
  const std::vector<std::int32_t> initial = bindInputs(fn, c, refHeap);
  HostMemory goldenHeap = refHeap;
  kir::Interpreter interp;
  const auto golden = interp.run(fn, initial, goldenHeap);

  const kir::Function norm = kir::runFrontendPipeline(fn).fn;
  const kir::LoweringResult lowered = kir::lowerToCdfg(norm);
  FactoryOptions fo;
  fo.contextMemoryLength = 2048;
  fo.cboxSlots = 64;
  const Composition comp = makeMesh(9, fo);
  const ScheduleReport report =
      Scheduler(comp).schedule(ScheduleRequest(lowered.graph)).orThrow();
  const auto issues = validateSchedule(report.schedule, lowered.graph, comp);
  ASSERT_TRUE(issues.empty()) << issues.front();

  std::map<VarId, std::int32_t> liveIns;
  for (const LiveBinding& lb : report.schedule.liveIns)
    liveIns[lb.var] = initial[lb.var];
  HostMemory simHeap = refHeap;
  const SimResult r = Simulator(comp, report.schedule).run(liveIns, simHeap);

  // Heap AND live-outs: string_search writes no arrays at all, so its
  // entire observable result is the `result` live-out.
  EXPECT_TRUE(simHeap == goldenHeap) << GetParam();
  for (const auto& [var, value] : r.liveOuts) {
    const std::string& name = lowered.graph.variable(var).name;
    // Pipeline-introduced guard temps ($brkN...) have no counterpart in the
    // original function; every original local must agree.
    try {
      EXPECT_EQ(value, golden.locals[fn.localByName(name)])
          << GetParam() << " live-out " << name;
    } catch (const Error&) {
      EXPECT_EQ(name[0], '$') << GetParam() << " unexpected live-out "
                              << name;
    }
  }
}

TEST_P(KernelSuite, BaselineBytecodeMatchesInterpreter) {
  const kir::Function fn = kir::parseKernelFile(kernelPath(GetParam()));
  const SuiteCase& c = suiteCases().at(GetParam());
  HostMemory h1;
  const std::vector<std::int32_t> initial = bindInputs(fn, c, h1);
  HostMemory h2 = h1;
  kir::Interpreter interp;
  const auto golden = interp.run(fn, initial, h1);
  const TokenMachine tm;
  const auto result = tm.run(kir::lowerToBytecode(fn), initial, h2);
  EXPECT_TRUE(h1 == h2) << GetParam();
  // The bytecode backend appends a scratch local for switch dispatch;
  // compare the function's own locals.
  for (kir::LocalId l = 0; l < fn.numLocals(); ++l)
    EXPECT_EQ(result.locals[l], golden.locals[l])
        << GetParam() << " local " << fn.local(l).name;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSuite,
    ::testing::Values("popcount_sum", "saturating_diff", "fir", "iir",
                      "crc32", "insertion_sort", "matmul", "string_search",
                      "vm_accumulate"),
    [](const auto& info) { return info.param; });

/// One golden line per kernel: "<name> <schedule-fingerprint>" on the
/// widened mesh9 the differential test schedules onto.
std::string fingerprintLine(const std::string& name) {
  const kir::Function fn = kir::parseKernelFile(kernelPath(name));
  const kir::LoweringResult lowered =
      kir::lowerToCdfg(kir::runFrontendPipeline(fn).fn);
  FactoryOptions fo;
  fo.contextMemoryLength = 2048;
  fo.cboxSlots = 64;
  const ScheduleReport r =
      Scheduler(makeMesh(9, fo)).schedule(ScheduleRequest(lowered.graph));
  return name + " " +
         (r.ok ? std::to_string(r.schedule.fingerprint())
               : ("FAIL:" + std::string(failureReasonName(r.failure.reason))));
}

TEST(KernelSuiteIndex, FingerprintsMatchGolden) {
  const std::string path =
      std::string(CGRA_GOLDEN_DIR) + "/kernel_suite_fingerprints.txt";
  std::vector<std::string> names;
  for (const auto& [name, c] : suiteCases()) names.push_back(name);

  if (std::getenv("CGRA_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    for (const std::string& name : names) out << fingerprintLine(name) << "\n";
    return;
  }

  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing " << path;
  std::vector<std::string> expected;
  for (std::string line; std::getline(golden, line);)
    if (!line.empty()) expected.push_back(line);
  ASSERT_EQ(expected.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(fingerprintLine(names[i]), expected[i]);
}

}  // namespace
}  // namespace cgra
