// Tests for the scheduler decision-trace layer: determinism across sweep
// thread counts, Chrome trace-event JSON schema conformance, golden
// `explain` output for unmappable kernels (typed rejection reasons), ring
// overflow behavior, and the request/report API around it (trace is null
// when disabled, tracing never perturbs the schedule, request options
// inherit from the Scheduler's constructor).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "arch/factory.hpp"
#include "kir/lower_cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sched/sweep.hpp"

namespace cgra {
namespace {

Cdfg lowerWorkload(const apps::Workload& w) {
  return kir::lowerToCdfg(w.fn).graph;
}

ScheduleReport traced(const Composition& comp, const Cdfg& graph,
                      std::size_t capacity = 1u << 16) {
  ScheduleRequest request(graph);
  request.trace.enabled = true;
  request.trace.capacity = capacity;
  return Scheduler(comp).schedule(request);
}

/// A composition whose PEs cannot multiply (forces UnsupportedOp).
Composition makeNoMul() {
  Composition base = makeMesh(4);
  std::vector<PEDescriptor> pes;
  for (PEId p = 0; p < 4; ++p) {
    PEDescriptor pe = base.pe(p);
    pe.removeOp(Op::IMUL);
    pes.push_back(std::move(pe));
  }
  return Composition("noMul", std::move(pes), base.interconnect(), 256, 32);
}

TEST(Trace, DisabledRequestYieldsNullTraceAndIdenticalSchedule) {
  const Composition comp = makeMesh(9);
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));

  const ScheduleReport plain =
      Scheduler(comp).schedule(ScheduleRequest(graph));
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(plain.trace, nullptr);

  const ScheduleReport withTrace = traced(comp, graph);
  ASSERT_TRUE(withTrace.ok);
  ASSERT_NE(withTrace.trace, nullptr);
  EXPECT_GT(withTrace.trace->totalEmitted(), 0u);

  // Observability must never perturb the decision sequence.
  EXPECT_EQ(plain.schedule.fingerprint(), withTrace.schedule.fingerprint());
}

TEST(Trace, RecordsPlacementsCopiesAndPhases) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const ScheduleReport report = traced(comp, graph);
  ASSERT_TRUE(report.ok);

  std::size_t placed = 0, fused = 0, phases = 0, copies = 0;
  for (std::size_t i = 0; i < report.trace->size(); ++i) {
    const TraceEvent& e = report.trace->event(i);
    if (e.kind == TraceEventKind::NodePlaced) ++placed;
    if (e.kind == TraceEventKind::WriteFused) ++fused;
    if (e.kind == TraceEventKind::PhaseBegin) ++phases;
    if (e.kind == TraceEventKind::CopyInserted) ++copies;
  }
  // Every scheduled node is either an explicit placement or a pWRITE fused
  // into its producer (§V-E).
  EXPECT_EQ(placed + fused,
            static_cast<std::size_t>(report.metrics.nodesScheduled));
  EXPECT_EQ(fused, static_cast<std::size_t>(report.stats.fusedWrites));
  EXPECT_EQ(phases, 3u);  // setup, plan, finalize
  // The trace keeps events from rolled-back probes (the transactional-probe
  // contract lets a failed probe touch only rejection bookkeeping and the
  // trace), so CopyInserted events bound the committed copies from above.
  EXPECT_GE(copies, static_cast<std::size_t>(report.stats.copiesInserted));
  std::size_t committedCopies = 0;
  for (const ScheduledOp& op : report.schedule.ops)
    if (op.node == kNoNode && op.op == Op::MOVE) ++committedCopies;
  EXPECT_EQ(committedCopies,
            static_cast<std::size_t>(report.stats.copiesInserted));
}

TEST(Trace, RingOverflowKeepsMostRecentEvents) {
  const Composition comp = makeMesh(9);
  const Cdfg graph = lowerWorkload(apps::makeAdpcm(8, 1));
  const ScheduleReport report = traced(comp, graph, /*capacity=*/16);
  ASSERT_TRUE(report.ok);
  ASSERT_NE(report.trace, nullptr);

  EXPECT_EQ(report.trace->size(), 16u);
  EXPECT_GT(report.trace->totalEmitted(), 16u);
  EXPECT_EQ(report.trace->droppedEvents(),
            report.trace->totalEmitted() - 16u);
  // Retained events are the tail of the run, in emission order.
  for (std::size_t i = 1; i < report.trace->size(); ++i)
    EXPECT_LT(report.trace->event(i - 1).seq, report.trace->event(i).seq);
  EXPECT_EQ(report.trace->event(15).seq, report.trace->totalEmitted() - 1);

  const std::string text = report.trace->explain(&graph, &comp);
  EXPECT_NE(text.find("dropped"), std::string::npos);
}

TEST(Trace, RequestOptionsDefaultToConstructorOptions) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = lowerWorkload(apps::makeGcd(4, 6));
  SchedulerOptions tight;
  tight.maxContexts = 4;
  const Scheduler scheduler(comp, tight);

  // No per-request options: the constructor's maxContexts=4 applies.
  const ScheduleReport inherited = scheduler.schedule(ScheduleRequest(graph));
  ASSERT_FALSE(inherited.ok);
  EXPECT_EQ(inherited.failure.reason, FailureReason::ContextBudget);

  // Explicit per-request options override the constructor's.
  ScheduleRequest relaxedReq(graph);
  relaxedReq.options = SchedulerOptions{};
  EXPECT_TRUE(scheduler.schedule(relaxedReq).ok);
}

TEST(Trace, ExplainNamesRejectionReasonForUnsupportedOp) {
  const Composition noMul = makeNoMul();
  const Cdfg graph = lowerWorkload(apps::makeDotProduct(4, 1));
  const ScheduleReport report = traced(noMul, graph);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure.reason, FailureReason::UnsupportedOp);
  ASSERT_NE(report.trace, nullptr);

  const std::string text = report.trace->explain(&graph, &noMul);
  EXPECT_NE(text.find("composition: noMul"), std::string::npos);
  EXPECT_NE(text.find("FAILED: unsupported-op"), std::string::npos);
  EXPECT_NE(text.find("IMUL"), std::string::npos);
}

TEST(Trace, ExplainNamesFinalFailingNodeOnBudgetExhaustion) {
  const Composition comp = makeMesh(4);
  const Cdfg graph = lowerWorkload(apps::makeGcd(4, 6));
  ScheduleRequest request(graph);
  SchedulerOptions tight;
  tight.maxContexts = 4;
  request.options = tight;
  request.trace.enabled = true;
  const ScheduleReport report = Scheduler(comp).schedule(request);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure.reason, FailureReason::ContextBudget);

  const std::string text = report.trace->explain(&graph, &comp);
  EXPECT_NE(text.find("FAILED: context-budget"), std::string::npos);
  EXPECT_NE(text.find("final failing node"), std::string::npos);
  // The decision log names per-PE rejection reasons along the way.
  EXPECT_NE(text.find("reject"), std::string::npos);

  // The report's failing node matches the trace's Failure event.
  bool sawFailure = false;
  for (std::size_t i = 0; i < report.trace->size(); ++i) {
    const TraceEvent& e = report.trace->event(i);
    if (e.kind != TraceEventKind::Failure) continue;
    sawFailure = true;
    EXPECT_EQ(e.node, static_cast<std::int32_t>(report.failure.node));
  }
  EXPECT_TRUE(sawFailure);
}

// --- Chrome trace-event JSON schema -------------------------------------

void validateChromeTraceSchema(const json::Value& v) {
  ASSERT_TRUE(v.isObject());
  const json::Object& top = v.asObject();
  ASSERT_TRUE(top.contains("traceEvents"));
  ASSERT_TRUE(top.contains("otherData"));
  const json::Object& other = top.at("otherData").asObject();
  EXPECT_TRUE(other.contains("label"));
  EXPECT_TRUE(other.contains("eventsEmitted"));
  EXPECT_TRUE(other.contains("eventsDropped"));

  const json::Array& events = top.at("traceEvents").asArray();
  ASSERT_FALSE(events.empty());
  static const std::set<std::string> kPhases = {"B", "E", "i", "M"};
  std::int64_t lastTs = -1;
  int beginDepth = 0;
  for (const json::Value& ev : events) {
    ASSERT_TRUE(ev.isObject());
    const json::Object& o = ev.asObject();
    ASSERT_TRUE(o.contains("name"));
    ASSERT_TRUE(o.contains("ph"));
    ASSERT_TRUE(o.contains("pid"));
    ASSERT_TRUE(o.contains("tid"));
    const std::string& ph = o.at("ph").asString();
    EXPECT_TRUE(kPhases.contains(ph)) << ph;
    if (ph == "M") continue;  // metadata events carry no timestamp
    ASSERT_TRUE(o.contains("ts"));
    // Logical timestamps are monotone non-decreasing (they are sequence
    // numbers), which Perfetto requires within a track.
    EXPECT_GE(o.at("ts").asInt(), lastTs);
    lastTs = o.at("ts").asInt();
    if (ph == "B") ++beginDepth;
    if (ph == "E") --beginDepth;
    EXPECT_GE(beginDepth, 0);  // E never precedes its B
    if (ph == "i") {
      EXPECT_EQ(o.at("s").asString(), "t");
    }
  }
  EXPECT_EQ(beginDepth, 0);  // every B span is closed
}

TEST(Trace, ChromeJsonMatchesSchemaForSuccessAndFailure) {
  const Composition mesh = makeMesh(9);
  const Cdfg adpcm = lowerWorkload(apps::makeAdpcm(8, 1));
  const ScheduleReport ok = traced(mesh, adpcm);
  ASSERT_TRUE(ok.ok);
  validateChromeTraceSchema(ok.trace->toChromeJson("adpcm@mesh9"));

  const Composition noMul = makeNoMul();
  const Cdfg dot = lowerWorkload(apps::makeDotProduct(4, 1));
  const ScheduleReport bad = traced(noMul, dot);
  ASSERT_FALSE(bad.ok);
  validateChromeTraceSchema(bad.trace->toChromeJson("dot@noMul"));
}

// --- Sweep integration ---------------------------------------------------

struct SweepSetup {
  std::vector<Composition> comps;
  std::vector<std::pair<std::string, Cdfg>> graphs;
  std::vector<SweepJob> jobs;

  static SweepSetup make() {
    SweepSetup s;
    s.comps.push_back(makeMesh(4));
    s.comps.push_back(makeMesh(9));
    s.graphs.emplace_back("adpcm", lowerWorkload(apps::makeAdpcm(8, 1)));
    s.graphs.emplace_back("gcd", lowerWorkload(apps::makeGcd(4, 6)));
    for (const Composition& comp : s.comps)
      for (const auto& [name, graph] : s.graphs)
        s.jobs.push_back(SweepJob{&comp, &graph, name + "@" + comp.name(),
                                  SchedulerOptions{}});
    return s;
  }
};

TEST(Trace, SweepTracesAreByteIdenticalAcrossThreadCounts) {
  const SweepSetup s = SweepSetup::make();

  std::vector<std::vector<std::string>> dumps;
  for (unsigned threads : {1u, 2u, 8u}) {
    SweepOptions opts;
    opts.threads = threads;
    opts.keepSchedules = false;
    opts.trace.enabled = true;
    const SweepReport report = runSweep(s.jobs, opts);
    ASSERT_EQ(report.failures, 0u);
    std::vector<std::string> d;
    for (const SweepJobResult& r : report.results) {
      ASSERT_NE(r.trace, nullptr) << r.label;
      d.push_back(r.trace->toChromeJson(r.label).dump());
    }
    dumps.push_back(std::move(d));
  }
  for (std::size_t t = 1; t < dumps.size(); ++t) {
    ASSERT_EQ(dumps[t].size(), dumps[0].size());
    for (std::size_t i = 0; i < dumps[0].size(); ++i)
      EXPECT_EQ(dumps[t][i], dumps[0][i])
          << "trace of job " << i << " differs between threads=1 and a "
          << "multi-threaded sweep";
  }
}

TEST(Trace, SweepTraceDirWritesOneValidFilePerJob) {
  const SweepSetup s = SweepSetup::make();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cgra_trace_test_dir";
  std::filesystem::remove_all(dir);

  SweepOptions opts;
  opts.threads = 2;
  opts.keepSchedules = false;
  opts.traceDir = dir.string();  // implies trace.enabled
  const SweepReport report = runSweep(s.jobs, opts);
  ASSERT_EQ(report.failures, 0u);

  for (const SweepJobResult& r : report.results) {
    std::string stem = r.label;
    for (char& c : stem)
      if (c == '@') c = '_';
    const std::filesystem::path file = dir / (stem + ".trace.json");
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    validateChromeTraceSchema(json::parseFile(file.string()));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cgra
