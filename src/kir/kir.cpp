#include "kir/kir.hpp"

#include <functional>
#include <set>
#include <sstream>

namespace cgra::kir {

// ---------------------------------------------------------------------------
// Function

LocalId Function::addLocal(std::string name, bool isParameter) {
  locals_.push_back(LocalDecl{std::move(name), isParameter});
  return static_cast<LocalId>(locals_.size() - 1);
}

const LocalDecl& Function::local(LocalId id) const {
  CGRA_ASSERT(id < locals_.size());
  return locals_[id];
}

LocalId Function::localByName(const std::string& name) const {
  for (LocalId i = 0; i < locals_.size(); ++i)
    if (locals_[i].name == name) return i;
  throw Error("function " + name_ + ": no local named \"" + name + '"');
}

ExprId Function::addExpr(Expr e) {
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

const Expr& Function::expr(ExprId id) const {
  CGRA_ASSERT(id < exprs_.size());
  return exprs_[id];
}

StmtId Function::addStmt(Stmt s) {
  stmts_.push_back(std::move(s));
  return static_cast<StmtId>(stmts_.size() - 1);
}

const Stmt& Function::stmt(StmtId id) const {
  CGRA_ASSERT(id < stmts_.size());
  return stmts_[id];
}

Stmt& Function::stmt(StmtId id) {
  CGRA_ASSERT(id < stmts_.size());
  return stmts_[id];
}

void Function::validate() const {
  if (body_ == kNoStmt) throw Error("function " + name_ + ": no body");

  auto checkExpr = [&](ExprId id, auto&& self) -> void {
    if (id >= exprs_.size())
      throw Error("function " + name_ + ": expression id out of range");
    const Expr& e = exprs_[id];
    switch (e.kind) {
      case ExprKind::Const: break;
      case ExprKind::Local:
        if (e.local >= locals_.size())
          throw Error("function " + name_ + ": local id out of range");
        break;
      case ExprKind::Binary:
        if (producesStatus(e.op) || isMemoryOp(e.op) || operandCount(e.op) != 2)
          throw Error("function " + name_ + ": bad binary op");
        self(e.lhs, self);
        self(e.rhs, self);
        break;
      case ExprKind::Unary:
        if (e.op != Op::INEG)
          throw Error("function " + name_ + ": bad unary op");
        self(e.lhs, self);
        break;
      case ExprKind::Compare:
        if (!producesStatus(e.op))
          throw Error("function " + name_ + ": compare with non-status op");
        self(e.lhs, self);
        self(e.rhs, self);
        break;
      case ExprKind::ArrayLoad:
      case ExprKind::LogicalAnd:
      case ExprKind::LogicalOr:
        self(e.lhs, self);
        self(e.rhs, self);
        break;
    }
  };

  std::function<void(StmtId, int)> checkStmt = [&](StmtId id, int loopDepth) {
    if (id >= stmts_.size())
      throw Error("function " + name_ + ": statement id out of range");
    const Stmt& s = stmts_[id];
    switch (s.kind) {
      case StmtKind::Assign:
        if (s.target >= locals_.size())
          throw Error("function " + name_ + ": assign target out of range");
        checkExpr(s.value, checkExpr);
        break;
      case StmtKind::ArrayStore:
        checkExpr(s.handle, checkExpr);
        checkExpr(s.index, checkExpr);
        checkExpr(s.value, checkExpr);
        break;
      case StmtKind::If:
        checkExpr(s.cond, checkExpr);
        checkStmt(s.thenBlock, loopDepth);
        if (s.elseBlock != kNoStmt) checkStmt(s.elseBlock, loopDepth);
        break;
      case StmtKind::While:
        checkExpr(s.cond, checkExpr);
        checkStmt(s.body, loopDepth + 1);
        break;
      case StmtKind::Call:
        if (s.target >= locals_.size())
          throw Error("function " + name_ + ": call target out of range");
        for (ExprId a : s.args) checkExpr(a, checkExpr);
        break;
      case StmtKind::Block:
        for (StmtId c : s.stmts) checkStmt(c, loopDepth);
        break;
      case StmtKind::Break:
        if (loopDepth == 0)
          throw Error("function " + name_ + ": break outside of a loop");
        break;
      case StmtKind::Continue:
        if (loopDepth == 0)
          throw Error("function " + name_ + ": continue outside of a loop");
        break;
      case StmtKind::Return:
        if (s.value != kNoExpr) {
          checkExpr(s.value, checkExpr);
          if (s.target >= locals_.size())
            throw Error("function " + name_ + ": return target out of range");
        }
        break;
      case StmtKind::Switch: {
        checkExpr(s.cond, checkExpr);
        if (s.caseValues.size() != s.stmts.size())
          throw Error("function " + name_ +
                      ": switch case values and arms differ in count");
        std::set<std::int32_t> seen;
        for (std::int32_t v : s.caseValues)
          if (!seen.insert(v).second)
            throw Error("function " + name_ + ": duplicate switch case " +
                        std::to_string(v));
        for (StmtId arm : s.stmts) checkStmt(arm, loopDepth);
        if (s.body != kNoStmt) checkStmt(s.body, loopDepth);
        break;
      }
    }
  };
  checkStmt(body_, 0);
}

namespace {

void printExpr(const Function& fn, ExprId id, std::ostream& os) {
  const Expr& e = fn.expr(id);
  switch (e.kind) {
    case ExprKind::Const: os << e.value; break;
    case ExprKind::Local: os << fn.local(e.local).name; break;
    case ExprKind::Binary: {
      const char* sym = opName(e.op);
      switch (e.op) {
        case Op::IADD: sym = "+"; break;
        case Op::ISUB: sym = "-"; break;
        case Op::IMUL: sym = "*"; break;
        case Op::IAND: sym = "&"; break;
        case Op::IOR: sym = "|"; break;
        case Op::IXOR: sym = "^"; break;
        case Op::ISHL: sym = "<<"; break;
        case Op::ISHR: sym = ">>"; break;
        case Op::IUSHR: sym = ">>>"; break;
        default: break;
      }
      os << '(';
      printExpr(fn, e.lhs, os);
      os << ' ' << sym << ' ';
      printExpr(fn, e.rhs, os);
      os << ')';
      break;
    }
    case ExprKind::Unary:
      os << "(-";
      printExpr(fn, e.lhs, os);
      os << ')';
      break;
    case ExprKind::Compare: {
      const char* sym = "?";
      switch (e.op) {
        case Op::IFEQ: sym = "=="; break;
        case Op::IFNE: sym = "!="; break;
        case Op::IFLT: sym = "<"; break;
        case Op::IFGE: sym = ">="; break;
        case Op::IFGT: sym = ">"; break;
        case Op::IFLE: sym = "<="; break;
        default: break;
      }
      os << '(';
      printExpr(fn, e.lhs, os);
      os << ' ' << sym << ' ';
      printExpr(fn, e.rhs, os);
      os << ')';
      break;
    }
    case ExprKind::ArrayLoad:
      printExpr(fn, e.lhs, os);
      os << '[';
      printExpr(fn, e.rhs, os);
      os << ']';
      break;
    case ExprKind::LogicalAnd:
    case ExprKind::LogicalOr:
      os << '(';
      printExpr(fn, e.lhs, os);
      os << (e.kind == ExprKind::LogicalAnd ? " && " : " || ");
      printExpr(fn, e.rhs, os);
      os << ')';
      break;
  }
}

void printStmt(const Function& fn, StmtId id, std::ostream& os, int depth) {
  const std::string ind(static_cast<std::size_t>(depth) * 2, ' ');
  const Stmt& s = fn.stmt(id);
  switch (s.kind) {
    case StmtKind::Assign:
      os << ind << fn.local(s.target).name << " = ";
      printExpr(fn, s.value, os);
      os << ";\n";
      break;
    case StmtKind::ArrayStore:
      os << ind;
      printExpr(fn, s.handle, os);
      os << '[';
      printExpr(fn, s.index, os);
      os << "] = ";
      printExpr(fn, s.value, os);
      os << ";\n";
      break;
    case StmtKind::If:
      os << ind << "if ";
      printExpr(fn, s.cond, os);
      os << " {\n";
      printStmt(fn, s.thenBlock, os, depth + 1);
      if (s.elseBlock != kNoStmt) {
        os << ind << "} else {\n";
        printStmt(fn, s.elseBlock, os, depth + 1);
      }
      os << ind << "}\n";
      break;
    case StmtKind::While:
      os << ind << "while ";
      printExpr(fn, s.cond, os);
      os << " {\n";
      printStmt(fn, s.body, os, depth + 1);
      os << ind << "}\n";
      break;
    case StmtKind::Call: {
      os << ind << fn.local(s.target).name << " = call#" << s.callee << '(';
      bool first = true;
      for (ExprId a : s.args) {
        if (!first) os << ", ";
        first = false;
        printExpr(fn, a, os);
      }
      os << ");\n";
      break;
    }
    case StmtKind::Block:
      for (StmtId c : s.stmts) printStmt(fn, c, os, depth);
      break;
    case StmtKind::Break:
      os << ind << "break;\n";
      break;
    case StmtKind::Continue:
      os << ind << "continue;\n";
      break;
    case StmtKind::Return:
      os << ind << "return";
      if (s.value != kNoExpr) {
        os << ' ';
        printExpr(fn, s.value, os);
      }
      os << ";\n";
      break;
    case StmtKind::Switch:
      os << ind << "switch ";
      printExpr(fn, s.cond, os);
      os << " {\n";
      for (std::size_t i = 0; i < s.stmts.size(); ++i) {
        os << ind << "case " << s.caseValues[i] << ": {\n";
        printStmt(fn, s.stmts[i], os, depth + 1);
        os << ind << "}\n";
      }
      if (s.body != kNoStmt) {
        os << ind << "default: {\n";
        printStmt(fn, s.body, os, depth + 1);
        os << ind << "}\n";
      }
      os << ind << "}\n";
      break;
  }
}

/// Collects locals read / written, walking the whole tree. A local counts as
/// live-in when some read is not dominated by a write in straight-line
/// order; the analysis is conservative for branches (a write inside an if
/// does not kill the variable).
struct Liveness {
  std::set<LocalId> liveIn;
  std::set<LocalId> written;
};

void exprReads(const Function& fn, ExprId id, const std::set<LocalId>& defined,
               Liveness& lv) {
  const Expr& e = fn.expr(id);
  switch (e.kind) {
    case ExprKind::Const: break;
    case ExprKind::Local:
      if (!defined.contains(e.local)) lv.liveIn.insert(e.local);
      break;
    case ExprKind::Unary: exprReads(fn, e.lhs, defined, lv); break;
    case ExprKind::Binary:
    case ExprKind::Compare:
    case ExprKind::ArrayLoad:
    // Conservative for short-circuit: the rhs may not run, but counting its
    // reads as live-in is safe (over-approximation).
    case ExprKind::LogicalAnd:
    case ExprKind::LogicalOr:
      exprReads(fn, e.lhs, defined, lv);
      exprReads(fn, e.rhs, defined, lv);
      break;
  }
}

void stmtLiveness(const Function& fn, StmtId id, std::set<LocalId>& defined,
                  Liveness& lv) {
  const Stmt& s = fn.stmt(id);
  switch (s.kind) {
    case StmtKind::Assign:
      exprReads(fn, s.value, defined, lv);
      defined.insert(s.target);
      lv.written.insert(s.target);
      break;
    case StmtKind::ArrayStore:
      exprReads(fn, s.handle, defined, lv);
      exprReads(fn, s.index, defined, lv);
      exprReads(fn, s.value, defined, lv);
      break;
    case StmtKind::If: {
      exprReads(fn, s.cond, defined, lv);
      std::set<LocalId> thenDef = defined;
      stmtLiveness(fn, s.thenBlock, thenDef, lv);
      std::set<LocalId> elseDef = defined;
      if (s.elseBlock != kNoStmt) stmtLiveness(fn, s.elseBlock, elseDef, lv);
      // A variable is definitely defined after the if only when both arms
      // define it.
      for (LocalId l : thenDef)
        if (elseDef.contains(l)) defined.insert(l);
      break;
    }
    case StmtKind::While: {
      exprReads(fn, s.cond, defined, lv);
      // The body may execute zero times: definitions inside do not count as
      // definite, but reads inside see the pre-loop state conservatively.
      std::set<LocalId> bodyDef = defined;
      stmtLiveness(fn, s.body, bodyDef, lv);
      break;
    }
    case StmtKind::Call:
      for (ExprId a : s.args) exprReads(fn, a, defined, lv);
      defined.insert(s.target);
      lv.written.insert(s.target);
      break;
    case StmtKind::Block:
      for (StmtId c : s.stmts) stmtLiveness(fn, c, defined, lv);
      break;
    case StmtKind::Break:
    case StmtKind::Continue:
      break;
    case StmtKind::Return:
      if (s.value != kNoExpr) {
        exprReads(fn, s.value, defined, lv);
        // Nothing on this path executes after the return, so the write is
        // both definite and a live-out.
        defined.insert(s.target);
        lv.written.insert(s.target);
      }
      break;
    case StmtKind::Switch: {
      exprReads(fn, s.cond, defined, lv);
      // A variable is definitely defined after the switch only when every
      // arm (including a default — without one, some values skip all arms)
      // defines it.
      std::vector<std::set<LocalId>> armDefs;
      for (StmtId arm : s.stmts) {
        std::set<LocalId> d = defined;
        stmtLiveness(fn, arm, d, lv);
        armDefs.push_back(std::move(d));
      }
      if (s.body != kNoStmt) {
        std::set<LocalId> d = defined;
        stmtLiveness(fn, s.body, d, lv);
        armDefs.push_back(std::move(d));
        for (LocalId l : armDefs.front()) {
          bool everywhere = true;
          for (const auto& d : armDefs)
            if (!d.contains(l)) { everywhere = false; break; }
          if (everywhere) defined.insert(l);
        }
      }
      break;
    }
  }
}

Liveness computeLiveness(const Function& fn) {
  Liveness lv;
  std::set<LocalId> defined;
  // Parameters are defined by the host transfer.
  for (LocalId i = 0; i < fn.numLocals(); ++i)
    if (fn.local(i).isParameter) {
      defined.insert(i);
      lv.liveIn.insert(i);
    }
  stmtLiveness(fn, fn.body(), defined, lv);
  return lv;
}

}  // namespace

std::string Function::toString() const {
  std::ostringstream os;
  os << "kernel " << name_ << "(";
  bool first = true;
  for (const LocalDecl& l : locals_)
    if (l.isParameter) {
      if (!first) os << ", ";
      first = false;
      os << l.name;
    }
  os << ") {\n";
  if (body_ != kNoStmt) printStmt(*this, body_, os, 1);
  os << "}\n";
  return os.str();
}

std::vector<LocalId> Function::liveInLocals() const {
  const Liveness lv = computeLiveness(*this);
  return {lv.liveIn.begin(), lv.liveIn.end()};
}

std::vector<LocalId> Function::liveOutLocals() const {
  const Liveness lv = computeLiveness(*this);
  return {lv.written.begin(), lv.written.end()};
}

namespace {

const char* irregularInExpr(const Function& fn, ExprId id) {
  if (id == kNoExpr) return nullptr;
  const Expr& e = fn.expr(id);
  if (e.kind == ExprKind::LogicalAnd) return "a short-circuit '&&'";
  if (e.kind == ExprKind::LogicalOr) return "a short-circuit '||'";
  switch (e.kind) {
    case ExprKind::Const:
    case ExprKind::Local:
      return nullptr;
    case ExprKind::Unary:
      return irregularInExpr(fn, e.lhs);
    default:
      if (const char* c = irregularInExpr(fn, e.lhs)) return c;
      return irregularInExpr(fn, e.rhs);
  }
}

const char* irregularInStmt(const Function& fn, StmtId id) {
  if (id == kNoStmt) return nullptr;
  const Stmt& s = fn.stmt(id);
  switch (s.kind) {
    case StmtKind::Break: return "a 'break'";
    case StmtKind::Continue: return "a 'continue'";
    case StmtKind::Return: return "a 'return'";
    case StmtKind::Switch: return "a 'switch'";
    case StmtKind::Assign:
      return irregularInExpr(fn, s.value);
    case StmtKind::ArrayStore:
      if (const char* c = irregularInExpr(fn, s.handle)) return c;
      if (const char* c = irregularInExpr(fn, s.index)) return c;
      return irregularInExpr(fn, s.value);
    case StmtKind::If:
      if (const char* c = irregularInExpr(fn, s.cond)) return c;
      if (const char* c = irregularInStmt(fn, s.thenBlock)) return c;
      return irregularInStmt(fn, s.elseBlock);
    case StmtKind::While:
      if (const char* c = irregularInExpr(fn, s.cond)) return c;
      return irregularInStmt(fn, s.body);
    case StmtKind::Call:
      for (ExprId a : s.args)
        if (const char* c = irregularInExpr(fn, a)) return c;
      return nullptr;
    case StmtKind::Block:
      for (StmtId c : s.stmts)
        if (const char* r = irregularInStmt(fn, c)) return r;
      return nullptr;
  }
  return nullptr;
}

}  // namespace

const char* firstIrregularConstruct(const Function& fn) {
  if (fn.body() == kNoStmt) return nullptr;
  return irregularInStmt(fn, fn.body());
}

// ---------------------------------------------------------------------------
// Program

FuncId Program::addFunction(Function f) {
  funcs_.push_back(std::move(f));
  return static_cast<FuncId>(funcs_.size() - 1);
}

const Function& Program::function(FuncId id) const {
  CGRA_ASSERT(id < funcs_.size());
  return funcs_[id];
}

Function& Program::function(FuncId id) {
  CGRA_ASSERT(id < funcs_.size());
  return funcs_[id];
}

FuncId Program::functionByName(const std::string& name) const {
  for (FuncId i = 0; i < funcs_.size(); ++i)
    if (funcs_[i].name() == name) return i;
  throw Error("program has no function named \"" + name + '"');
}

// ---------------------------------------------------------------------------
// FunctionBuilder

ExprId FunctionBuilder::cint(std::int32_t v) {
  Expr e;
  e.kind = ExprKind::Const;
  e.value = v;
  return fn_.addExpr(e);
}

ExprId FunctionBuilder::use(LocalId l) {
  Expr e;
  e.kind = ExprKind::Local;
  e.local = l;
  return fn_.addExpr(e);
}

ExprId FunctionBuilder::bin(Op op, ExprId a, ExprId b) {
  Expr e;
  e.kind = ExprKind::Binary;
  e.op = op;
  e.lhs = a;
  e.rhs = b;
  return fn_.addExpr(e);
}

ExprId FunctionBuilder::neg(ExprId a) {
  Expr e;
  e.kind = ExprKind::Unary;
  e.op = Op::INEG;
  e.lhs = a;
  return fn_.addExpr(e);
}

ExprId FunctionBuilder::cmp(Op op, ExprId a, ExprId b) {
  Expr e;
  e.kind = ExprKind::Compare;
  e.op = op;
  e.lhs = a;
  e.rhs = b;
  return fn_.addExpr(e);
}

ExprId FunctionBuilder::load(ExprId handle, ExprId index) {
  Expr e;
  e.kind = ExprKind::ArrayLoad;
  e.lhs = handle;
  e.rhs = index;
  return fn_.addExpr(e);
}

StmtId FunctionBuilder::assign(LocalId target, ExprId value) {
  Stmt s;
  s.kind = StmtKind::Assign;
  s.target = target;
  s.value = value;
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::arrayStore(ExprId handle, ExprId index, ExprId value) {
  Stmt s;
  s.kind = StmtKind::ArrayStore;
  s.handle = handle;
  s.index = index;
  s.value = value;
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::ifElse(ExprId cond, StmtId thenB, StmtId elseB) {
  Stmt s;
  s.kind = StmtKind::If;
  s.cond = cond;
  s.thenBlock = thenB;
  s.elseBlock = elseB;
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::whileLoop(ExprId cond, StmtId body) {
  Stmt s;
  s.kind = StmtKind::While;
  s.cond = cond;
  s.body = body;
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::forLoop(StmtId init, ExprId cond, StmtId step,
                                StmtId body) {
  const StmtId bodyWithStep = block({body, step});
  const StmtId loop = whileLoop(cond, bodyWithStep);
  return block({init, loop});
}

StmtId FunctionBuilder::call(LocalId target, FuncId callee,
                             std::vector<ExprId> args) {
  Stmt s;
  s.kind = StmtKind::Call;
  s.target = target;
  s.callee = callee;
  s.args = std::move(args);
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::block(std::vector<StmtId> stmts) {
  Stmt s;
  s.kind = StmtKind::Block;
  s.stmts = std::move(stmts);
  return fn_.addStmt(std::move(s));
}

ExprId FunctionBuilder::land(ExprId a, ExprId b) {
  Expr e;
  e.kind = ExprKind::LogicalAnd;
  e.lhs = a;
  e.rhs = b;
  return fn_.addExpr(e);
}

ExprId FunctionBuilder::lor(ExprId a, ExprId b) {
  Expr e;
  e.kind = ExprKind::LogicalOr;
  e.lhs = a;
  e.rhs = b;
  return fn_.addExpr(e);
}

StmtId FunctionBuilder::breakLoop() {
  Stmt s;
  s.kind = StmtKind::Break;
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::continueLoop() {
  Stmt s;
  s.kind = StmtKind::Continue;
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::ret(ExprId value) {
  Stmt s;
  s.kind = StmtKind::Return;
  s.value = value;
  if (value != kNoExpr) {
    LocalId result;
    try {
      result = fn_.localByName("result");
    } catch (const Error&) {
      result = fn_.addLocal("result", false);
    }
    s.target = result;
  }
  return fn_.addStmt(std::move(s));
}

StmtId FunctionBuilder::switchStmt(ExprId scrutinee,
                                   std::vector<std::int32_t> values,
                                   std::vector<StmtId> blocks,
                                   StmtId defaultB) {
  Stmt s;
  s.kind = StmtKind::Switch;
  s.cond = scrutinee;
  s.caseValues = std::move(values);
  s.stmts = std::move(blocks);
  s.body = defaultB;
  return fn_.addStmt(std::move(s));
}

Function FunctionBuilder::finish(StmtId body) {
  fn_.setBody(body);
  fn_.validate();
  return std::move(fn_);
}

}  // namespace cgra::kir
