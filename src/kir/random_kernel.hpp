// Random structured-kernel generator for property-based testing.
//
// Generates KIR functions with the full control-flow range the scheduler
// supports — nested counted loops, data-dependent (halving) loops, if/else
// trees, array loads/stores — while guaranteeing termination and in-bounds
// committed memory accesses:
//  * every counted loop gets a dedicated counter local that nothing else
//    writes;
//  * data-dependent loops iterate on a strictly decreasing shifted value;
//  * array indices are masked to the (power-of-two) array size.
// Speculatively executed (predicated-off) accesses may still see garbage
// indices — exactly the situation the CGRA's always-predicated DMA handles —
// so these kernels also stress the predication machinery.
#pragma once

#include <cstdint>

#include "host/memory.hpp"
#include "kir/kir.hpp"

namespace cgra::kir {

struct RandomKernelOptions {
  unsigned maxDepth = 3;          ///< maximum loop/if nesting depth
  unsigned maxStmtsPerBlock = 4;  ///< statements per generated block
  unsigned numArrays = 2;
  unsigned arraySizeLog2 = 4;     ///< arrays hold 2^n words
  unsigned numDataParams = 3;
  unsigned numScratchLocals = 3;
  unsigned maxLoopTrip = 4;
  unsigned maxExprDepth = 3;
  bool allowDataDependentLoops = true;
  bool allowCompareAsValue = true;
  /// Emit the irregular constructs the frontend pipeline normalizes:
  /// guarded break/continue/early-return, short-circuit && / ||, and
  /// switch. Off by default — the flag only ADDS rng draws, so every seed's
  /// output with the flag off is byte-identical to older revisions (the
  /// fingerprint corpus depends on this). Loops generated with the flag on
  /// advance their counter at the TOP of the body so a continue cannot skip
  /// the update and loop forever.
  bool irregularConstructs = false;
};

/// A generated kernel with matching inputs.
struct RandomKernel {
  Function fn;
  std::vector<std::int32_t> initialLocals;
  HostMemory heap;
};

/// Deterministic per seed.
RandomKernel generateRandomKernel(std::uint64_t seed,
                                  const RandomKernelOptions& opts = {});

}  // namespace cgra::kir
