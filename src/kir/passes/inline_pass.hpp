// Method-inlining pass — the "inline methods" step of the paper's synthesis
// flow (Fig. 1). Must run first in the frontend pipeline: every later pass
// and both lowerings reject Call statements.
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

/// Replaces every Call statement by the callee's body with renamed locals
/// (recursively — callees may call further functions; recursion depth is
/// bounded and cycles are rejected).
Function inlineCalls(const Program& program, const Function& fn);

}  // namespace cgra::kir
