#include "kir/passes/inline_pass.hpp"

#include <set>
#include <string>

#include "kir/passes/exit_normalize_pass.hpp"
#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

namespace {

Function inlineCallsImpl(const Program& program, const Function& fn,
                         std::set<const Function*>& active) {
  if (active.contains(&fn))
    throw Error("inlineCalls: recursive call cycle through " + fn.name());
  active.insert(&fn);

  Function out(fn.name());
  std::vector<LocalId> map = identityMap(fn, out);

  unsigned inlineCounter = 0;
  Cloner::CallHook hook = [&](const Stmt& s, Cloner& cl) -> StmtId {
    Function flatCallee =
        inlineCallsImpl(program, program.function(s.callee), active);
    // A `return` in the callee must not escape into the caller's control
    // flow — demote it to guard variables before splicing the body in.
    if (containsStmtKind(flatCallee, StmtKind::Return))
      flatCallee = normalizeExits(flatCallee);
    // Fresh locals for the callee, suffixed to stay unique.
    const std::string suffix =
        "$" + flatCallee.name() + std::to_string(inlineCounter++);
    std::vector<LocalId> calleeMap;
    for (LocalId i = 0; i < flatCallee.numLocals(); ++i)
      calleeMap.push_back(
          cl.dst().addLocal(flatCallee.local(i).name + suffix, false));

    std::vector<StmtId> seq;
    // Bind arguments (argument expressions evaluate in the caller's frame).
    unsigned argIdx = 0;
    for (LocalId i = 0; i < flatCallee.numLocals(); ++i)
      if (flatCallee.local(i).isParameter) {
        if (argIdx >= s.args.size())
          throw Error("inlineCalls: too few arguments for " +
                      flatCallee.name());
        Stmt bind;
        bind.kind = StmtKind::Assign;
        bind.target = calleeMap[i];
        bind.value = cl.cloneExpr(s.args[argIdx++]);
        seq.push_back(cl.dst().addStmt(std::move(bind)));
      }
    if (argIdx != s.args.size())
      throw Error("inlineCalls: too many arguments for " + flatCallee.name());

    // Clone the (already call-free) callee body with renamed locals.
    Cloner bodyCl(flatCallee, cl.dst(), calleeMap);
    seq.push_back(bodyCl.cloneStmt(flatCallee.body()));

    // Return value: the callee's "result" local.
    Stmt ret;
    ret.kind = StmtKind::Assign;
    ret.target = cl.localMap()[s.target];
    Expr read;
    read.kind = ExprKind::Local;
    read.local = calleeMap[flatCallee.localByName("result")];
    ret.value = cl.dst().addExpr(read);
    seq.push_back(cl.dst().addStmt(std::move(ret)));

    Stmt blockS;
    blockS.kind = StmtKind::Block;
    blockS.stmts = std::move(seq);
    return cl.dst().addStmt(std::move(blockS));
  };

  Cloner cl(fn, out, std::move(map), hook);
  out.setBody(cl.cloneStmt(fn.body()));
  active.erase(&fn);
  out.validate();
  return out;
}

}  // namespace

Function inlineCalls(const Program& program, const Function& fn) {
  std::set<const Function*> active;
  return inlineCallsImpl(program, fn, active);
}

}  // namespace cgra::kir
