#include "kir/passes/shortcircuit_pass.hpp"

#include <string>
#include <vector>

#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

namespace {

bool exprHasSc(const Function& fn, ExprId id) {
  const Expr& e = fn.expr(id);
  if (e.kind == ExprKind::LogicalAnd || e.kind == ExprKind::LogicalOr)
    return true;
  return (e.lhs != kNoExpr && exprHasSc(fn, e.lhs)) ||
         (e.rhs != kNoExpr && exprHasSc(fn, e.rhs));
}

struct ScLowerer {
  const Function& src;
  Function& out;
  Cloner& cl;
  unsigned tempCounter = 0;

  ExprId readLocal(LocalId l) {
    Expr e;
    e.kind = ExprKind::Local;
    e.local = l;
    return out.addExpr(e);
  }

  ExprId constant(std::int32_t v) {
    Expr e;
    e.kind = ExprKind::Const;
    e.value = v;
    return out.addExpr(e);
  }

  ExprId compare(Op op, ExprId a, ExprId b) {
    Expr e;
    e.kind = ExprKind::Compare;
    e.op = op;
    e.lhs = a;
    e.rhs = b;
    return out.addExpr(e);
  }

  StmtId assignExpr(LocalId target, ExprId value) {
    Stmt s;
    s.kind = StmtKind::Assign;
    s.target = target;
    s.value = value;
    return out.addStmt(std::move(s));
  }

  StmtId ifStmt(ExprId cond, StmtId thenB) {
    Stmt s;
    s.kind = StmtKind::If;
    s.cond = cond;
    s.thenBlock = thenB;
    return out.addStmt(std::move(s));
  }

  StmtId block(std::vector<StmtId> stmts) {
    Stmt s;
    s.kind = StmtKind::Block;
    s.stmts = std::move(stmts);
    return out.addStmt(std::move(s));
  }

  /// Branch condition "x is truthy" — comparisons pass through, anything
  /// else is wrapped in `!= 0`.
  ExprId truthy(ExprId x) {
    if (out.expr(x).kind == ExprKind::Compare) return x;
    return compare(Op::IFNE, x, constant(0));
  }

  ExprId falsy(ExprId x) { return compare(Op::IFEQ, x, constant(0)); }

  /// Rewrites `id` (a src expression), appending prelude statements to
  /// `seq`; returns the replacement dst expression.
  ExprId lowerExpr(ExprId id, std::vector<StmtId>& seq) {
    const Expr& e = src.expr(id);
    switch (e.kind) {
      case ExprKind::LogicalAnd: {
        const LocalId t =
            out.addLocal("$sc" + std::to_string(tempCounter++), false);
        const ExprId a = lowerExpr(e.lhs, seq);
        seq.push_back(assignExpr(t, constant(0)));
        std::vector<StmtId> lazy;
        const ExprId b = lowerExpr(e.rhs, lazy);
        lazy.push_back(ifStmt(truthy(b), assignExpr(t, constant(1))));
        seq.push_back(ifStmt(truthy(a), block(std::move(lazy))));
        return readLocal(t);
      }
      case ExprKind::LogicalOr: {
        const LocalId t =
            out.addLocal("$sc" + std::to_string(tempCounter++), false);
        const ExprId a = lowerExpr(e.lhs, seq);
        seq.push_back(assignExpr(t, constant(1)));
        std::vector<StmtId> lazy;
        const ExprId b = lowerExpr(e.rhs, lazy);
        lazy.push_back(ifStmt(falsy(b), assignExpr(t, constant(0))));
        seq.push_back(ifStmt(falsy(a), block(std::move(lazy))));
        return readLocal(t);
      }
      default: {
        Expr outE = e;
        if (e.kind == ExprKind::Local) outE.local = cl.localMap()[e.local];
        if (e.lhs != kNoExpr) outE.lhs = lowerExpr(e.lhs, seq);
        if (e.rhs != kNoExpr) outE.rhs = lowerExpr(e.rhs, seq);
        return out.addExpr(outE);
      }
    }
  }

  /// Appends the transformed statement(s) for `id` to `seq`.
  void lowerStmt(StmtId id, std::vector<StmtId>& seq) {
    const Stmt& s = src.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign: {
        const ExprId v = lowerExpr(s.value, seq);
        seq.push_back(assignExpr(cl.localMap()[s.target], v));
        return;
      }
      case StmtKind::ArrayStore: {
        Stmt store;
        store.kind = StmtKind::ArrayStore;
        store.handle = lowerExpr(s.handle, seq);
        store.index = lowerExpr(s.index, seq);
        store.value = lowerExpr(s.value, seq);
        seq.push_back(out.addStmt(std::move(store)));
        return;
      }
      case StmtKind::If: {
        const ExprId c = lowerExpr(s.cond, seq);
        Stmt ifS;
        ifS.kind = StmtKind::If;
        ifS.cond = c;
        ifS.thenBlock = lowerSingle(s.thenBlock);
        ifS.elseBlock =
            s.elseBlock == kNoStmt ? kNoStmt : lowerSingle(s.elseBlock);
        seq.push_back(out.addStmt(std::move(ifS)));
        return;
      }
      case StmtKind::While: {
        if (!exprHasSc(src, s.cond)) {
          std::vector<StmtId> condPre;  // stays empty: no sc in cond
          const ExprId c = lowerExpr(s.cond, condPre);
          CGRA_ASSERT(condPre.empty());
          Stmt loop;
          loop.kind = StmtKind::While;
          loop.cond = c;
          loop.body = lowerSingle(s.body);
          seq.push_back(out.addStmt(std::move(loop)));
          return;
        }
        // Lazy condition: re-evaluate at the top of every iteration.
        std::vector<StmtId> bodySeq;
        const ExprId c = lowerExpr(s.cond, bodySeq);
        Stmt brk;
        brk.kind = StmtKind::Break;
        bodySeq.push_back(ifStmt(falsy(c), out.addStmt(std::move(brk))));
        lowerStmt(s.body, bodySeq);
        Stmt loop;
        loop.kind = StmtKind::While;
        loop.cond = compare(Op::IFNE, constant(1), constant(0));
        loop.body = block(std::move(bodySeq));
        seq.push_back(out.addStmt(std::move(loop)));
        return;
      }
      case StmtKind::Switch: {
        const ExprId scrut = lowerExpr(s.cond, seq);
        Stmt sw;
        sw.kind = StmtKind::Switch;
        sw.cond = scrut;
        sw.caseValues = s.caseValues;
        for (StmtId arm : s.stmts) sw.stmts.push_back(lowerSingle(arm));
        sw.body = s.body == kNoStmt ? kNoStmt : lowerSingle(s.body);
        seq.push_back(out.addStmt(std::move(sw)));
        return;
      }
      case StmtKind::Return: {
        if (s.value == kNoExpr) {
          seq.push_back(cl.cloneStmt(id));
          return;
        }
        const ExprId v = lowerExpr(s.value, seq);
        Stmt ret;
        ret.kind = StmtKind::Return;
        ret.target = cl.localMap()[s.target];
        ret.value = v;
        seq.push_back(out.addStmt(std::move(ret)));
        return;
      }
      case StmtKind::Call: {
        Stmt call;
        call.kind = StmtKind::Call;
        call.target = cl.localMap()[s.target];
        call.callee = s.callee;
        for (ExprId a : s.args) call.args.push_back(lowerExpr(a, seq));
        seq.push_back(out.addStmt(std::move(call)));
        return;
      }
      case StmtKind::Block: {
        std::vector<StmtId> inner;
        for (StmtId c : s.stmts) lowerStmt(c, inner);
        seq.push_back(block(std::move(inner)));
        return;
      }
      default:  // Break / Continue
        seq.push_back(cl.cloneStmt(id));
        return;
    }
  }

  /// Transforms `id` into exactly one statement (wrapping preludes).
  StmtId lowerSingle(StmtId id) {
    std::vector<StmtId> seq;
    lowerStmt(id, seq);
    if (seq.size() == 1) return seq[0];
    return block(std::move(seq));
  }
};

}  // namespace

Function lowerShortCircuit(const Function& fn) {
  Function out(fn.name());
  Cloner cl(fn, out, identityMap(fn, out));
  ScLowerer lowerer{fn, out, cl, 0};
  out.setBody(lowerer.lowerSingle(fn.body()));
  out.validate();
  return out;
}

}  // namespace cgra::kir
