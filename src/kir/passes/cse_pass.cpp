#include "kir/passes/cse_pass.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <string>

#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

namespace {

/// Canonical key of a pure expression over versioned locals; empty when the
/// expression is not CSE-eligible (contains an array load or a short-circuit
/// operator — hoisting the latter would force evaluation of the lazy side).
std::string exprKey(const Function& fn, ExprId id,
                    const std::map<LocalId, unsigned>& versions) {
  const Expr& e = fn.expr(id);
  switch (e.kind) {
    case ExprKind::Const: return "C" + std::to_string(e.value);
    case ExprKind::Local: {
      const auto it = versions.find(e.local);
      const unsigned v = it == versions.end() ? 0 : it->second;
      return "L" + std::to_string(e.local) + "v" + std::to_string(v);
    }
    case ExprKind::Unary: {
      const std::string a = exprKey(fn, e.lhs, versions);
      return a.empty() ? "" : "N(" + a + ")";
    }
    case ExprKind::Binary:
    case ExprKind::Compare: {
      const std::string a = exprKey(fn, e.lhs, versions);
      const std::string b = exprKey(fn, e.rhs, versions);
      if (a.empty() || b.empty()) return "";
      return std::string(opName(e.op)) + "(" + a + "," + b + ")";
    }
    case ExprKind::ArrayLoad: return "";
    case ExprKind::LogicalAnd:
    case ExprKind::LogicalOr: return "";
  }
  CGRA_UNREACHABLE("bad expr kind");
}

bool hoistable(const Function& fn, ExprId id) {
  const ExprKind k = fn.expr(id).kind;
  return k == ExprKind::Binary || k == ExprKind::Unary;
}

struct CseState {
  Function& out;
  const Function& src;
  Cloner& cl;
  unsigned tempCounter = 0;
};

/// CSE over one statement list (the children of a Block). Returns the new
/// statement ids.
std::vector<StmtId> cseRun(CseState& st, const std::vector<StmtId>& stmts);

/// Recursively applies CSE inside nested structures of one statement.
StmtId cseStmt(CseState& st, StmtId id) {
  const Stmt& s = st.src.stmt(id);
  switch (s.kind) {
    case StmtKind::If: {
      Stmt out;
      out.kind = StmtKind::If;
      out.cond = st.cl.cloneExpr(s.cond);
      out.thenBlock = cseStmt(st, s.thenBlock);
      out.elseBlock =
          s.elseBlock == kNoStmt ? kNoStmt : cseStmt(st, s.elseBlock);
      return st.out.addStmt(std::move(out));
    }
    case StmtKind::While: {
      Stmt out;
      out.kind = StmtKind::While;
      out.cond = st.cl.cloneExpr(s.cond);
      out.body = cseStmt(st, s.body);
      return st.out.addStmt(std::move(out));
    }
    case StmtKind::Switch: {
      Stmt out;
      out.kind = StmtKind::Switch;
      out.cond = st.cl.cloneExpr(s.cond);
      out.caseValues = s.caseValues;
      for (StmtId arm : s.stmts) out.stmts.push_back(cseStmt(st, arm));
      out.body = s.body == kNoStmt ? kNoStmt : cseStmt(st, s.body);
      return st.out.addStmt(std::move(out));
    }
    case StmtKind::Block: {
      Stmt out;
      out.kind = StmtKind::Block;
      out.stmts = cseRun(st, s.stmts);
      return st.out.addStmt(std::move(out));
    }
    default: return st.cl.cloneStmt(id);
  }
}

std::vector<StmtId> cseRun(CseState& st, const std::vector<StmtId>& stmts) {
  // Pass 1: count keys of hoistable subexpressions within straight-line runs
  // of Assign/ArrayStore. Control flow flushes the run.
  struct Info {
    unsigned count = 0;
    std::size_t firstStmt = 0;
    ExprId expr = kNoExpr;
  };
  // Keys are prefixed with the straight-line run index so occurrences in
  // different runs (separated by control flow) never merge.
  std::map<std::string, Info> table;
  std::map<LocalId, unsigned> versions;
  unsigned runId = 0;

  auto countExpr = [&](ExprId id, std::size_t stmtIdx, auto&& self) -> void {
    const Expr& e = st.src.expr(id);
    if (e.lhs != kNoExpr) self(e.lhs, stmtIdx, self);
    if (e.rhs != kNoExpr) self(e.rhs, stmtIdx, self);
    if (!hoistable(st.src, id)) return;
    const std::string key = exprKey(st.src, id, versions);
    if (key.empty()) return;
    auto [it, inserted] = table.try_emplace(
        "R" + std::to_string(runId) + ":" + key, Info{0, stmtIdx, id});
    ++it->second.count;
    (void)inserted;
  };

  auto isStraight = [&](StmtId id) {
    const StmtKind k = st.src.stmt(id).kind;
    return k == StmtKind::Assign || k == StmtKind::ArrayStore;
  };

  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& s = st.src.stmt(stmts[i]);
    if (!isStraight(stmts[i])) {
      ++runId;
      versions.clear();
      continue;
    }
    if (s.kind == StmtKind::Assign) {
      countExpr(s.value, i, countExpr);
      ++versions[s.target];
    } else {
      countExpr(s.handle, i, countExpr);
      countExpr(s.index, i, countExpr);
      countExpr(s.value, i, countExpr);
    }
  }

  // Keys worth hoisting.
  std::map<std::string, LocalId> hoisted;  // key → temp local (assigned below)

  // Pass 2: rebuild statements; maintain versions again; emit temp
  // assignments right before the first statement using the key.
  std::vector<StmtId> result;
  versions.clear();
  runId = 0;

  // Rewrites an expression, replacing hoisted subtrees by temp reads.
  std::function<ExprId(ExprId)> rewrite = [&](ExprId id) -> ExprId {
    const Expr& e = st.src.expr(id);
    if (hoistable(st.src, id)) {
      const std::string key =
          "R" + std::to_string(runId) + ":" + exprKey(st.src, id, versions);
      {
        if (auto it = hoisted.find(key); it != hoisted.end()) {
          Expr read;
          read.kind = ExprKind::Local;
          read.local = it->second;
          return st.out.addExpr(read);
        }
      }
    }
    Expr out = e;
    if (e.kind == ExprKind::Local) out.local = st.cl.localMap()[e.local];
    if (e.lhs != kNoExpr) out.lhs = rewrite(e.lhs);
    if (e.rhs != kNoExpr) out.rhs = rewrite(e.rhs);
    return st.out.addExpr(out);
  };

  // Emits hoists scheduled for statement index i (keys whose first
  // occurrence is i and count ≥ 2), smallest subexpressions first so larger
  // hoists can reuse smaller temps.
  auto emitHoists = [&](std::size_t i) {
    std::vector<std::pair<std::string, Info>> due;
    for (const auto& [key, info] : table)
      if (info.count >= 2 && info.firstStmt == i && !hoisted.contains(key))
        due.emplace_back(key, info);
    std::sort(due.begin(), due.end(), [](const auto& a, const auto& b) {
      return a.first.size() < b.first.size();
    });
    for (const auto& [key, info] : due) {
      const LocalId temp =
          st.out.addLocal("$cse" + std::to_string(st.tempCounter++), false);
      Stmt assign;
      assign.kind = StmtKind::Assign;
      assign.target = temp;
      assign.value = rewrite(info.expr);  // may reuse earlier hoists
      result.push_back(st.out.addStmt(std::move(assign)));
      hoisted[key] = temp;
    }
  };

  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& s = st.src.stmt(stmts[i]);
    if (!isStraight(stmts[i])) {
      ++runId;
      versions.clear();
      hoisted.clear();
      result.push_back(cseStmt(st, stmts[i]));
      continue;
    }
    emitHoists(i);
    if (s.kind == StmtKind::Assign) {
      Stmt out;
      out.kind = StmtKind::Assign;
      out.target = st.cl.localMap()[s.target];
      out.value = rewrite(s.value);
      result.push_back(st.out.addStmt(std::move(out)));
      ++versions[s.target];
      // Temps derived from the overwritten local are now stale.
      std::erase_if(hoisted, [&](const auto& kv) {
        return kv.first.find("L" + std::to_string(s.target) + "v") !=
               std::string::npos;
      });
    } else {
      Stmt out;
      out.kind = StmtKind::ArrayStore;
      out.handle = rewrite(s.handle);
      out.index = rewrite(s.index);
      out.value = rewrite(s.value);
      result.push_back(st.out.addStmt(std::move(out)));
    }
  }
  return result;
}

}  // namespace

Function eliminateCommonSubexpressions(const Function& fn) {
  Function out(fn.name());
  std::vector<LocalId> map;
  for (LocalId i = 0; i < fn.numLocals(); ++i) {
    const LocalDecl& l = fn.local(i);
    map.push_back(out.addLocal(l.name, l.isParameter));
  }
  Cloner cl(fn, out, std::move(map));
  CseState st{out, fn, cl, 0};
  out.setBody(cseStmt(st, fn.body()));
  out.validate();
  return out;
}

}  // namespace cgra::kir
