// Exit normalization — demotes irregular exits (break / continue / early
// return) into guard variables so the CDFG lowering only ever sees
// structured if/while control flow. This is the structural analogue of the
// LCSSA-style predication a modulo scheduler needs: every statement that
// used to be skipped by a jump becomes a statement guarded by a flag.
//
// Rewrite recipe:
//   return v;   ->  result = v; $ret = 1;      ($ret is function-wide)
//   break;      ->  $brkN = 1;                 (one flag per loop N)
//   continue;   ->  $cntN = 1;
// After any statement that may set a flag, the remaining statements of the
// enclosing block are wrapped in `if ((flags | ...) == 0) { rest }`. A loop
// whose body may break or return hoists its condition into a temp `$lcN`
// that is only recomputed when the loop is still live:
//   $brkN = 0; $lcN = cond;
//   while (((($brkN | $ret) == 0) & ($lcN != 0)) != 0) {
//     $cntN = 0;
//     <guarded body>
//     if (($brkN | $ret) == 0) { $lcN = cond; }
//   }
// The recompute guard deliberately excludes $cntN: a continue still reaches
// the next condition check. Loops whose body only continues keep their
// original condition. The pass emits no short-circuit operators, so it can
// run after lowerShortCircuit without reintroducing work.
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

/// Demotes break/continue/return into guard variables. Functions without
/// irregular exits come back as an exact structural copy. The input must be
/// call-free (inline first).
Function normalizeExits(const Function& fn);

}  // namespace cgra::kir
