// Shared infrastructure for the frontend pass pipeline: the arena-to-arena
// Cloner every pass rebuilds through, construct scans used to skip passes
// whose input lacks their construct (keeping untouched kernels byte-stable),
// and the IR size statistics helpers.
#pragma once

#include <functional>
#include <vector>

#include "kir/kir.hpp"

namespace cgra::kir {

/// Copies expressions/statements from `src` into `dst`, renaming locals
/// through `localMap`. Call statements are handled by the caller via
/// `onCall` (inlining) or rejected.
class Cloner {
public:
  using CallHook = std::function<StmtId(const Stmt&, Cloner&)>;

  Cloner(const Function& src, Function& dst, std::vector<LocalId> localMap,
         CallHook onCall = {});

  ExprId cloneExpr(ExprId id);
  StmtId cloneStmt(StmtId id);

  const std::vector<LocalId>& localMap() const { return localMap_; }
  Function& dst() { return dst_; }

private:
  const Function& src_;
  Function& dst_;
  std::vector<LocalId> localMap_;
  CallHook onCall_;
};

/// Re-declares every local of `fn` in `dst` and returns the identity map.
std::vector<LocalId> identityMap(const Function& fn, Function& dst);

/// True when the subtree rooted at `id` contains a While statement.
bool containsLoop(const Function& fn, StmtId id);

/// True when the function contains a statement of the given kind.
bool containsStmtKind(const Function& fn, StmtKind kind);
/// True when the function contains an expression of the given kind
/// (reachable from the body).
bool containsExprKind(const Function& fn, ExprKind kind);

/// Statistics helper: number of expression nodes reachable from the body.
std::size_t countExprNodes(const Function& fn);
/// Statistics helper: number of statements reachable from the body.
std::size_t countStmtNodes(const Function& fn);

}  // namespace cgra::kir
