#include "kir/passes/unroll_pass.hpp"

#include <functional>

#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

Function unrollLoops(const Function& fn, unsigned factor, bool innermostOnly) {
  if (factor < 2) {
    Function out(fn.name());
    Cloner cl(fn, out, identityMap(fn, out));
    out.setBody(cl.cloneStmt(fn.body()));
    return out;
  }

  Function out(fn.name());
  auto map = identityMap(fn, out);

  // Rebuild recursively; While nodes meeting the criterion get their body
  // replicated `factor` times, each repetition after the first guarded by a
  // fresh evaluation of the loop condition.
  std::function<StmtId(StmtId, Cloner&)> rebuild = [&](StmtId id,
                                                       Cloner& cl) -> StmtId {
    const Stmt& s = fn.stmt(id);
    switch (s.kind) {
      case StmtKind::While: {
        const bool unrollThis = !innermostOnly || !containsLoop(fn, s.body);
        if (!unrollThis) {
          Stmt loop;
          loop.kind = StmtKind::While;
          loop.cond = cl.cloneExpr(s.cond);
          loop.body = rebuild(s.body, cl);
          return out.addStmt(std::move(loop));
        }
        // innermost copies first: if (c) { B } nested (factor-1) deep.
        StmtId tail = kNoStmt;
        for (unsigned rep = factor; rep >= 2; --rep) {
          std::vector<StmtId> seq{rebuild(s.body, cl)};
          if (tail != kNoStmt) seq.push_back(tail);
          Stmt blockS;
          blockS.kind = StmtKind::Block;
          blockS.stmts = std::move(seq);
          const StmtId blk = out.addStmt(std::move(blockS));
          Stmt guard;
          guard.kind = StmtKind::If;
          guard.cond = cl.cloneExpr(s.cond);
          guard.thenBlock = blk;
          tail = out.addStmt(std::move(guard));
        }
        Stmt bodyS;
        bodyS.kind = StmtKind::Block;
        bodyS.stmts = {rebuild(s.body, cl), tail};
        const StmtId newBody = out.addStmt(std::move(bodyS));
        Stmt loop;
        loop.kind = StmtKind::While;
        loop.cond = cl.cloneExpr(s.cond);
        loop.body = newBody;
        return out.addStmt(std::move(loop));
      }
      case StmtKind::If: {
        Stmt ifS;
        ifS.kind = StmtKind::If;
        ifS.cond = cl.cloneExpr(s.cond);
        ifS.thenBlock = rebuild(s.thenBlock, cl);
        ifS.elseBlock =
            s.elseBlock == kNoStmt ? kNoStmt : rebuild(s.elseBlock, cl);
        return out.addStmt(std::move(ifS));
      }
      case StmtKind::Switch: {
        Stmt sw;
        sw.kind = StmtKind::Switch;
        sw.cond = cl.cloneExpr(s.cond);
        sw.caseValues = s.caseValues;
        for (StmtId arm : s.stmts) sw.stmts.push_back(rebuild(arm, cl));
        sw.body = s.body == kNoStmt ? kNoStmt : rebuild(s.body, cl);
        return out.addStmt(std::move(sw));
      }
      case StmtKind::Block: {
        Stmt blockS;
        blockS.kind = StmtKind::Block;
        for (StmtId c : s.stmts) blockS.stmts.push_back(rebuild(c, cl));
        return out.addStmt(std::move(blockS));
      }
      default: return cl.cloneStmt(id);
    }
  };

  Cloner cl(fn, out, std::move(map));
  out.setBody(rebuild(fn.body(), cl));
  out.validate();
  return out;
}

}  // namespace cgra::kir
