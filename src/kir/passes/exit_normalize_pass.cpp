#include "kir/passes/exit_normalize_pass.hpp"

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

namespace {

constexpr LocalId kNoLocal = static_cast<LocalId>(-1);

/// Which abort flags a (transformed) statement may set at the current
/// nesting level.
enum : unsigned { kRet = 1u, kBrk = 2u, kCnt = 4u };

struct LoopCtx {
  LocalId brk = kNoLocal;
  LocalId cnt = kNoLocal;
};

/// True when the subtree contains a Break/Continue binding to the current
/// loop level, i.e. not nested inside an inner While (switch arms do not
/// capture break — it always binds to the enclosing loop).
bool exitsAtLevel(const Function& fn, StmtId id, StmtKind kind) {
  const Stmt& s = fn.stmt(id);
  if (s.kind == kind) return true;
  switch (s.kind) {
    case StmtKind::If:
      return exitsAtLevel(fn, s.thenBlock, kind) ||
             (s.elseBlock != kNoStmt && exitsAtLevel(fn, s.elseBlock, kind));
    case StmtKind::Block:
      for (StmtId c : s.stmts)
        if (exitsAtLevel(fn, c, kind)) return true;
      return false;
    case StmtKind::Switch:
      for (StmtId arm : s.stmts)
        if (exitsAtLevel(fn, arm, kind)) return true;
      return s.body != kNoStmt && exitsAtLevel(fn, s.body, kind);
    default: return false;  // While starts a new level; leaves cannot exit
  }
}

/// True when the subtree contains a Return at any depth (return crosses
/// loop levels).
bool containsReturn(const Function& fn, StmtId id) {
  const Stmt& s = fn.stmt(id);
  if (s.kind == StmtKind::Return) return true;
  switch (s.kind) {
    case StmtKind::If:
      return containsReturn(fn, s.thenBlock) ||
             (s.elseBlock != kNoStmt && containsReturn(fn, s.elseBlock));
    case StmtKind::While: return containsReturn(fn, s.body);
    case StmtKind::Block:
      for (StmtId c : s.stmts)
        if (containsReturn(fn, c)) return true;
      return false;
    case StmtKind::Switch:
      for (StmtId arm : s.stmts)
        if (containsReturn(fn, arm)) return true;
      return s.body != kNoStmt && containsReturn(fn, s.body);
    default: return false;
  }
}

struct ExitNormalizer {
  const Function& src;
  Function& out;
  Cloner& cl;
  LocalId retFlag = kNoLocal;
  unsigned loopCounter = 0;
  std::vector<LoopCtx> loops;

  ExprId readLocal(LocalId l) {
    Expr e;
    e.kind = ExprKind::Local;
    e.local = l;
    return out.addExpr(e);
  }

  ExprId constant(std::int32_t v) {
    Expr e;
    e.kind = ExprKind::Const;
    e.value = v;
    return out.addExpr(e);
  }

  ExprId compare(Op op, ExprId a, ExprId b) {
    Expr e;
    e.kind = ExprKind::Compare;
    e.op = op;
    e.lhs = a;
    e.rhs = b;
    return out.addExpr(e);
  }

  ExprId binary(Op op, ExprId a, ExprId b) {
    Expr e;
    e.kind = ExprKind::Binary;
    e.op = op;
    e.lhs = a;
    e.rhs = b;
    return out.addExpr(e);
  }

  StmtId assignExpr(LocalId target, ExprId value) {
    Stmt s;
    s.kind = StmtKind::Assign;
    s.target = target;
    s.value = value;
    return out.addStmt(std::move(s));
  }

  StmtId assignConst(LocalId target, std::int32_t v) {
    return assignExpr(target, constant(v));
  }

  StmtId ifStmt(ExprId cond, StmtId thenB) {
    Stmt s;
    s.kind = StmtKind::If;
    s.cond = cond;
    s.thenBlock = thenB;
    return out.addStmt(std::move(s));
  }

  StmtId block(std::vector<StmtId> stmts) {
    Stmt s;
    s.kind = StmtKind::Block;
    s.stmts = std::move(stmts);
    return out.addStmt(std::move(s));
  }

  /// Bitwise OR of the abort flags named by `mask` (all flags hold 0 or 1,
  /// so IOR is an exact disjunction).
  ExprId flagsOr(unsigned mask) {
    std::vector<LocalId> flags;
    if (mask & kBrk) flags.push_back(loops.back().brk);
    if (mask & kCnt) flags.push_back(loops.back().cnt);
    if (mask & kRet) flags.push_back(retFlag);
    CGRA_ASSERT(!flags.empty());
    ExprId acc = readLocal(flags[0]);
    for (std::size_t i = 1; i < flags.size(); ++i)
      acc = binary(Op::IOR, acc, readLocal(flags[i]));
    return acc;
  }

  ExprId flagsClear(unsigned mask) {
    return compare(Op::IFEQ, flagsOr(mask), constant(0));
  }

  std::pair<StmtId, unsigned> transform(StmtId id);

  /// Transforms a statement list; after any statement that may set a flag,
  /// the remaining statements are nested under `if (flags == 0)`.
  std::pair<std::vector<StmtId>, unsigned> transformList(
      const std::vector<StmtId>& children, std::size_t from) {
    std::vector<StmtId> result;
    unsigned mask = 0;
    for (std::size_t i = from; i < children.size(); ++i) {
      auto [stmt, m] = transform(children[i]);
      result.push_back(stmt);
      mask |= m;
      if (m != 0 && i + 1 < children.size()) {
        auto [rest, mRest] = transformList(children, i + 1);
        result.push_back(ifStmt(flagsClear(m), block(std::move(rest))));
        return {std::move(result), mask | mRest};
      }
    }
    return {std::move(result), mask};
  }

  std::pair<StmtId, unsigned> transformLoop(const Stmt& s) {
    const bool needBrk = exitsAtLevel(src, s.body, StmtKind::Break);
    const bool needCnt = exitsAtLevel(src, s.body, StmtKind::Continue);
    const bool needRet = containsReturn(src, s.body);

    if (!needBrk && !needCnt && !needRet) {
      Stmt loop;
      loop.kind = StmtKind::While;
      loop.cond = cl.cloneExpr(s.cond);
      loop.body = transform(s.body).first;
      return {out.addStmt(std::move(loop)), 0};
    }

    const unsigned n = loopCounter++;
    LoopCtx ctx;
    if (needBrk)
      ctx.brk = out.addLocal("$brk" + std::to_string(n), false);
    if (needCnt)
      ctx.cnt = out.addLocal("$cnt" + std::to_string(n), false);
    loops.push_back(ctx);
    const StmtId bodyS = transform(s.body).first;
    std::vector<StmtId> bodySeq;
    if (needCnt) bodySeq.push_back(assignConst(ctx.cnt, 0));
    bodySeq.push_back(bodyS);

    const unsigned exitMask =
        (needBrk ? kBrk : 0u) | (needRet ? kRet : 0u);
    if (exitMask == 0) {
      // Only continue: the original condition still runs every iteration.
      loops.pop_back();
      Stmt loop;
      loop.kind = StmtKind::While;
      loop.cond = cl.cloneExpr(s.cond);
      loop.body = block(std::move(bodySeq));
      return {out.addStmt(std::move(loop)), 0};
    }

    // Break or return may abort the loop: hoist the condition into $lcN and
    // only recompute it while the loop is live (a condition with array loads
    // must not be re-evaluated after an exit).
    const LocalId lc = out.addLocal("$lc" + std::to_string(n), false);
    std::vector<StmtId> seq;
    if (needBrk) seq.push_back(assignConst(ctx.brk, 0));
    seq.push_back(assignExpr(lc, cl.cloneExpr(s.cond)));
    bodySeq.push_back(
        ifStmt(flagsClear(exitMask),
               assignExpr(lc, cl.cloneExpr(s.cond))));
    Stmt loop;
    loop.kind = StmtKind::While;
    loop.cond = binary(Op::IAND, flagsClear(exitMask),
                       compare(Op::IFNE, readLocal(lc), constant(0)));
    loop.body = block(std::move(bodySeq));
    seq.push_back(out.addStmt(std::move(loop)));
    loops.pop_back();
    return {block(std::move(seq)), needRet ? kRet : 0u};
  }

  std::pair<StmtId, unsigned> transformStmt(StmtId id) {
    const Stmt& s = src.stmt(id);
    switch (s.kind) {
      case StmtKind::Break:
        CGRA_ASSERT(!loops.empty() && loops.back().brk != kNoLocal);
        return {assignConst(loops.back().brk, 1), kBrk};
      case StmtKind::Continue:
        CGRA_ASSERT(!loops.empty() && loops.back().cnt != kNoLocal);
        return {assignConst(loops.back().cnt, 1), kCnt};
      case StmtKind::Return: {
        CGRA_ASSERT(retFlag != kNoLocal);
        std::vector<StmtId> seq;
        if (s.value != kNoExpr)
          seq.push_back(assignExpr(cl.localMap()[s.target],
                                   cl.cloneExpr(s.value)));
        seq.push_back(assignConst(retFlag, 1));
        if (seq.size() == 1) return {seq[0], kRet};
        return {block(std::move(seq)), kRet};
      }
      case StmtKind::If: {
        auto [thenS, m1] = transform(s.thenBlock);
        StmtId elseS = kNoStmt;
        unsigned m2 = 0;
        if (s.elseBlock != kNoStmt)
          std::tie(elseS, m2) = transform(s.elseBlock);
        Stmt ifS;
        ifS.kind = StmtKind::If;
        ifS.cond = cl.cloneExpr(s.cond);
        ifS.thenBlock = thenS;
        ifS.elseBlock = elseS;
        return {out.addStmt(std::move(ifS)), m1 | m2};
      }
      case StmtKind::While: return transformLoop(s);
      case StmtKind::Switch: {
        // Normally lowered before this pass; handled for direct use.
        Stmt sw;
        sw.kind = StmtKind::Switch;
        sw.cond = cl.cloneExpr(s.cond);
        sw.caseValues = s.caseValues;
        unsigned mask = 0;
        for (StmtId arm : s.stmts) {
          auto [armS, m] = transform(arm);
          sw.stmts.push_back(armS);
          mask |= m;
        }
        if (s.body != kNoStmt) {
          auto [defS, m] = transform(s.body);
          sw.body = defS;
          mask |= m;
        }
        return {out.addStmt(std::move(sw)), mask};
      }
      case StmtKind::Block: {
        auto [stmts, mask] = transformList(s.stmts, 0);
        return {block(std::move(stmts)), mask};
      }
      default: return {cl.cloneStmt(id), 0};
    }
  }
};

std::pair<StmtId, unsigned> ExitNormalizer::transform(StmtId id) {
  return transformStmt(id);
}

}  // namespace

Function normalizeExits(const Function& fn) {
  Function out(fn.name());
  Cloner cl(fn, out, identityMap(fn, out));
  ExitNormalizer norm{fn, out, cl};
  if (containsStmtKind(fn, StmtKind::Return))
    norm.retFlag = out.addLocal("$ret", false);
  StmtId body = norm.transform(fn.body()).first;
  if (norm.retFlag != kNoLocal)
    body = norm.block({norm.assignConst(norm.retFlag, 0), body});
  out.setBody(body);
  out.validate();
  return out;
}

}  // namespace cgra::kir
