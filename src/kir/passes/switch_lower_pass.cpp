#include "kir/passes/switch_lower_pass.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

namespace {

/// Bucket dispatch kicks in at this case count under SwitchStrategy::Auto.
constexpr std::size_t kAutoBucketThreshold = 6;

struct SwitchLowerer {
  const Function& src;
  Function& out;
  Cloner& cl;
  SwitchStrategy strategy;
  unsigned tempCounter = 0;

  ExprId readLocal(LocalId l) {
    Expr e;
    e.kind = ExprKind::Local;
    e.local = l;
    return out.addExpr(e);
  }

  ExprId constant(std::int32_t v) {
    Expr e;
    e.kind = ExprKind::Const;
    e.value = v;
    return out.addExpr(e);
  }

  ExprId compare(Op op, ExprId a, ExprId b) {
    Expr e;
    e.kind = ExprKind::Compare;
    e.op = op;
    e.lhs = a;
    e.rhs = b;
    return out.addExpr(e);
  }

  StmtId assignConst(LocalId target, std::int32_t v) {
    Stmt s;
    s.kind = StmtKind::Assign;
    s.target = target;
    s.value = constant(v);
    return out.addStmt(std::move(s));
  }

  StmtId ifStmt(ExprId cond, StmtId thenB, StmtId elseB = kNoStmt) {
    Stmt s;
    s.kind = StmtKind::If;
    s.cond = cond;
    s.thenBlock = thenB;
    s.elseBlock = elseB;
    return out.addStmt(std::move(s));
  }

  StmtId block(std::vector<StmtId> stmts) {
    Stmt s;
    s.kind = StmtKind::Block;
    s.stmts = std::move(stmts);
    return out.addStmt(std::move(s));
  }

  /// Linear strategy: if (sw == v0) arm0 else if (sw == v1) arm1 ... else
  /// default — the ladder follows declaration order.
  StmtId lowerLinear(const Stmt& s, LocalId sw, StmtId defaultArm) {
    StmtId chain = defaultArm;  // may be kNoStmt
    for (std::size_t i = s.stmts.size(); i-- > 0;) {
      const ExprId eq = compare(Op::IFEQ, readLocal(sw),
                                constant(s.caseValues[i]));
      chain = ifStmt(eq, lower(s.stmts[i]), chain);
    }
    return chain;
  }

  /// Bucket strategy: binary range tree over the sorted case values, with
  /// equality tests at the leaves. `hit` (kNoHit when there is no default
  /// arm) is set when an arm runs so the default can be appended once,
  /// outside the tree.
  static constexpr LocalId kNoHit = static_cast<LocalId>(-1);

  StmtId lowerBucketTree(const Stmt& s, LocalId sw, LocalId hit,
                         const std::vector<std::size_t>& order,
                         std::size_t lo, std::size_t hi) {
    if (hi - lo == 1) {
      const std::size_t armIdx = order[lo];
      const ExprId eq = compare(Op::IFEQ, readLocal(sw),
                                constant(s.caseValues[armIdx]));
      if (hit == kNoHit) return ifStmt(eq, lower(s.stmts[armIdx]));
      return ifStmt(eq, block({lower(s.stmts[armIdx]), assignConst(hit, 1)}));
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    const ExprId lt = compare(Op::IFLT, readLocal(sw),
                              constant(s.caseValues[order[mid]]));
    return ifStmt(lt, lowerBucketTree(s, sw, hit, order, lo, mid),
                  lowerBucketTree(s, sw, hit, order, mid, hi));
  }

  StmtId lowerSwitchStmt(const Stmt& s) {
    const bool bucket =
        strategy == SwitchStrategy::Bucket ||
        (strategy == SwitchStrategy::Auto &&
         s.stmts.size() >= kAutoBucketThreshold);
    const unsigned n = tempCounter++;

    // Evaluate the scrutinee exactly once.
    const LocalId sw = out.addLocal("$sw" + std::to_string(n), false);
    Stmt bind;
    bind.kind = StmtKind::Assign;
    bind.target = sw;
    bind.value = cl.cloneExpr(s.cond);
    std::vector<StmtId> seq{out.addStmt(std::move(bind))};

    const StmtId defaultArm = s.body == kNoStmt ? kNoStmt : lower(s.body);

    if (s.stmts.empty()) {
      // Degenerate switch: only a default arm (or nothing at all).
      if (defaultArm != kNoStmt) seq.push_back(defaultArm);
      return block(std::move(seq));
    }

    if (!bucket) {
      seq.push_back(lowerLinear(s, sw, defaultArm));
      return block(std::move(seq));
    }

    std::vector<std::size_t> order(s.stmts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return s.caseValues[a] < s.caseValues[b];
    });

    if (defaultArm == kNoStmt) {
      seq.push_back(lowerBucketTree(s, sw, kNoHit, order, 0, order.size()));
      return block(std::move(seq));
    }
    const LocalId hit = out.addLocal("$swhit" + std::to_string(n), false);
    seq.push_back(assignConst(hit, 0));
    seq.push_back(lowerBucketTree(s, sw, hit, order, 0, order.size()));
    seq.push_back(
        ifStmt(compare(Op::IFEQ, readLocal(hit), constant(0)), defaultArm));
    return block(std::move(seq));
  }

  StmtId lower(StmtId id) {
    const Stmt& s = src.stmt(id);
    switch (s.kind) {
      case StmtKind::Switch: return lowerSwitchStmt(s);
      case StmtKind::If: {
        Stmt ifS;
        ifS.kind = StmtKind::If;
        ifS.cond = cl.cloneExpr(s.cond);
        ifS.thenBlock = lower(s.thenBlock);
        ifS.elseBlock = s.elseBlock == kNoStmt ? kNoStmt : lower(s.elseBlock);
        return out.addStmt(std::move(ifS));
      }
      case StmtKind::While: {
        Stmt loop;
        loop.kind = StmtKind::While;
        loop.cond = cl.cloneExpr(s.cond);
        loop.body = lower(s.body);
        return out.addStmt(std::move(loop));
      }
      case StmtKind::Block: {
        Stmt blk;
        blk.kind = StmtKind::Block;
        for (StmtId c : s.stmts) blk.stmts.push_back(lower(c));
        return out.addStmt(std::move(blk));
      }
      default: return cl.cloneStmt(id);
    }
  }
};

}  // namespace

Function lowerSwitches(const Function& fn, SwitchStrategy strategy) {
  Function out(fn.name());
  Cloner cl(fn, out, identityMap(fn, out));
  SwitchLowerer lowerer{fn, out, cl, strategy, 0};
  out.setBody(lowerer.lower(fn.body()));
  out.validate();
  return out;
}

}  // namespace cgra::kir
