// Partial loop unrolling (paper evaluation: "a maximum unroll factor of 2
// for inner loops was used"). In the frontend pipeline this runs AFTER exit
// normalization, so a break inside an unrolled loop has already been demoted
// to a guard variable — replicating the body replicates plain guarded
// statements instead of duplicating the loop's exit edge.
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

/// Partially unrolls loops by `factor`. A while loop
///   while (c) { B }
/// becomes
///   while (c) { B; if (c) { B } }        (factor 2)
/// When `innermostOnly`, only loops without nested loops are unrolled.
Function unrollLoops(const Function& fn, unsigned factor,
                     bool innermostOnly = true);

}  // namespace cgra::kir
