#include "kir/passes/pipeline.hpp"

#include <utility>

#include "kir/passes/cse_pass.hpp"
#include "kir/passes/exit_normalize_pass.hpp"
#include "kir/passes/inline_pass.hpp"
#include "kir/passes/pass_utils.hpp"
#include "kir/passes/shortcircuit_pass.hpp"
#include "kir/passes/unroll_pass.hpp"

namespace cgra::kir {

namespace {

bool containsAnyExit(const Function& fn) {
  return containsStmtKind(fn, StmtKind::Break) ||
         containsStmtKind(fn, StmtKind::Continue) ||
         containsStmtKind(fn, StmtKind::Return);
}

bool containsSc(const Function& fn) {
  return containsExprKind(fn, ExprKind::LogicalAnd) ||
         containsExprKind(fn, ExprKind::LogicalOr);
}

}  // namespace

FrontendResult runFrontendPipeline(const Function& fn,
                                   const FrontendOptions& options,
                                   const Program* program) {
  FrontendResult result;
  result.fn = fn;

  auto record = [&](const char* name, bool ran) {
    StageRecord rec;
    rec.name = name;
    rec.ran = ran;
    if (options.captureStages) rec.ir = result.fn.toString();
    result.stages.push_back(std::move(rec));
  };

  if (options.captureStages) record("input", true);

  // 1. Inline. The pass itself demotes callee returns before splicing.
  {
    const bool hasCalls = containsStmtKind(result.fn, StmtKind::Call);
    const bool run = options.inlineCalls && hasCalls;
    if (run) {
      if (!program)
        throw Error("runFrontendPipeline: function '" + fn.name() +
                    "' contains calls but no Program was provided");
      result.fn = inlineCalls(*program, result.fn);
    } else if (hasCalls) {
      throw Error("runFrontendPipeline: function '" + fn.name() +
                  "' contains calls but the inline stage is disabled");
    }
    record("inline", run);
  }

  // 2. Short-circuit booleans (may introduce breaks — cleaned up next).
  {
    const bool run = options.lowerShortCircuit && containsSc(result.fn);
    if (run) result.fn = lowerShortCircuit(result.fn);
    record("shortcircuit", run);
  }

  // 3. Switch.
  {
    const bool run = options.lowerSwitches &&
                     containsStmtKind(result.fn, StmtKind::Switch);
    if (run) result.fn = lowerSwitches(result.fn, options.switchStrategy);
    record("switch-lower", run);
  }

  // 4. Exit normalization — after this the IR is structured if/while only.
  {
    const bool run = options.normalizeExits && containsAnyExit(result.fn);
    if (run) result.fn = normalizeExits(result.fn);
    record("exit-normalize", run);
  }

  // 5. CSE — before unroll, matching the historical cse-then-unroll
  // composition the fingerprint corpus pins. (CSE is run-local, so the two
  // orders find the same redundancies; keeping the old order preserves
  // golden outputs.)
  {
    const bool run = options.cse;
    if (run) result.fn = eliminateCommonSubexpressions(result.fn);
    record("cse", run);
  }

  // 6. Unroll — after normalization so replicated bodies carry guard
  // variables instead of duplicated exit edges.
  {
    const bool run = options.unrollFactor >= 2;
    if (run)
      result.fn = unrollLoops(result.fn, options.unrollFactor,
                              options.unrollInnermostOnly);
    record("unroll", run);
  }

  return result;
}

}  // namespace cgra::kir
