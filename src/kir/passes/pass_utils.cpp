#include "kir/passes/pass_utils.hpp"

namespace cgra::kir {

Cloner::Cloner(const Function& src, Function& dst,
               std::vector<LocalId> localMap, CallHook onCall)
    : src_(src),
      dst_(dst),
      localMap_(std::move(localMap)),
      onCall_(std::move(onCall)) {}

ExprId Cloner::cloneExpr(ExprId id) {
  const Expr& e = src_.expr(id);
  Expr out = e;
  if (e.kind == ExprKind::Local) {
    CGRA_ASSERT(e.local < localMap_.size());
    out.local = localMap_[e.local];
  }
  if (out.lhs != kNoExpr) out.lhs = cloneExpr(e.lhs);
  if (out.rhs != kNoExpr) out.rhs = cloneExpr(e.rhs);
  return dst_.addExpr(out);
}

StmtId Cloner::cloneStmt(StmtId id) {
  const Stmt& s = src_.stmt(id);
  switch (s.kind) {
    case StmtKind::Assign: {
      Stmt out;
      out.kind = StmtKind::Assign;
      out.target = localMap_[s.target];
      out.value = cloneExpr(s.value);
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::ArrayStore: {
      Stmt out;
      out.kind = StmtKind::ArrayStore;
      out.handle = cloneExpr(s.handle);
      out.index = cloneExpr(s.index);
      out.value = cloneExpr(s.value);
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::If: {
      Stmt out;
      out.kind = StmtKind::If;
      out.cond = cloneExpr(s.cond);
      out.thenBlock = cloneStmt(s.thenBlock);
      out.elseBlock = s.elseBlock == kNoStmt ? kNoStmt : cloneStmt(s.elseBlock);
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::While: {
      Stmt out;
      out.kind = StmtKind::While;
      out.cond = cloneExpr(s.cond);
      out.body = cloneStmt(s.body);
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::Call:
      if (!onCall_)
        throw Error("pass cannot handle Call statements; inline first");
      return onCall_(s, *this);
    case StmtKind::Block: {
      Stmt out;
      out.kind = StmtKind::Block;
      for (StmtId c : s.stmts) out.stmts.push_back(cloneStmt(c));
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::Break:
    case StmtKind::Continue: {
      Stmt out;
      out.kind = s.kind;
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::Return: {
      Stmt out;
      out.kind = StmtKind::Return;
      if (s.value != kNoExpr) {
        out.value = cloneExpr(s.value);
        out.target = localMap_[s.target];
      }
      return dst_.addStmt(std::move(out));
    }
    case StmtKind::Switch: {
      Stmt out;
      out.kind = StmtKind::Switch;
      out.cond = cloneExpr(s.cond);
      out.caseValues = s.caseValues;
      for (StmtId arm : s.stmts) out.stmts.push_back(cloneStmt(arm));
      out.body = s.body == kNoStmt ? kNoStmt : cloneStmt(s.body);
      return dst_.addStmt(std::move(out));
    }
  }
  CGRA_UNREACHABLE("bad statement kind");
}

std::vector<LocalId> identityMap(const Function& fn, Function& dst) {
  std::vector<LocalId> map;
  map.reserve(fn.numLocals());
  for (LocalId i = 0; i < fn.numLocals(); ++i) {
    const LocalDecl& l = fn.local(i);
    map.push_back(dst.addLocal(l.name, l.isParameter));
  }
  return map;
}

bool containsLoop(const Function& fn, StmtId id) {
  const Stmt& s = fn.stmt(id);
  switch (s.kind) {
    case StmtKind::While: return true;
    case StmtKind::If:
      return containsLoop(fn, s.thenBlock) ||
             (s.elseBlock != kNoStmt && containsLoop(fn, s.elseBlock));
    case StmtKind::Block:
      for (StmtId c : s.stmts)
        if (containsLoop(fn, c)) return true;
      return false;
    case StmtKind::Switch:
      for (StmtId arm : s.stmts)
        if (containsLoop(fn, arm)) return true;
      return s.body != kNoStmt && containsLoop(fn, s.body);
    default: return false;
  }
}

namespace {

/// Walks every statement (and optionally every expression) under `id`.
void walkStmts(const Function& fn, StmtId id,
               const std::function<void(const Stmt&)>& onStmt,
               const std::function<void(const Expr&)>& onExpr) {
  std::function<void(ExprId)> walkE = [&](ExprId eid) {
    const Expr& e = fn.expr(eid);
    if (onExpr) onExpr(e);
    if (e.lhs != kNoExpr) walkE(e.lhs);
    if (e.rhs != kNoExpr) walkE(e.rhs);
  };
  std::function<void(StmtId)> walkS = [&](StmtId sid) {
    const Stmt& s = fn.stmt(sid);
    if (onStmt) onStmt(s);
    switch (s.kind) {
      case StmtKind::Assign:
        if (onExpr) walkE(s.value);
        break;
      case StmtKind::ArrayStore:
        if (onExpr) {
          walkE(s.handle);
          walkE(s.index);
          walkE(s.value);
        }
        break;
      case StmtKind::If:
        if (onExpr) walkE(s.cond);
        walkS(s.thenBlock);
        if (s.elseBlock != kNoStmt) walkS(s.elseBlock);
        break;
      case StmtKind::While:
        if (onExpr) walkE(s.cond);
        walkS(s.body);
        break;
      case StmtKind::Call:
        if (onExpr)
          for (ExprId a : s.args) walkE(a);
        break;
      case StmtKind::Block:
        for (StmtId c : s.stmts) walkS(c);
        break;
      case StmtKind::Break:
      case StmtKind::Continue:
        break;
      case StmtKind::Return:
        if (onExpr && s.value != kNoExpr) walkE(s.value);
        break;
      case StmtKind::Switch:
        if (onExpr) walkE(s.cond);
        for (StmtId arm : s.stmts) walkS(arm);
        if (s.body != kNoStmt) walkS(s.body);
        break;
    }
  };
  walkS(id);
}

}  // namespace

bool containsStmtKind(const Function& fn, StmtKind kind) {
  if (fn.body() == kNoStmt) return false;
  bool found = false;
  walkStmts(fn, fn.body(),
            [&](const Stmt& s) { found = found || s.kind == kind; }, nullptr);
  return found;
}

bool containsExprKind(const Function& fn, ExprKind kind) {
  if (fn.body() == kNoStmt) return false;
  bool found = false;
  walkStmts(fn, fn.body(), nullptr,
            [&](const Expr& e) { found = found || e.kind == kind; });
  return found;
}

std::size_t countExprNodes(const Function& fn) {
  std::size_t count = 0;
  walkStmts(fn, fn.body(), nullptr, [&](const Expr&) { ++count; });
  return count;
}

std::size_t countStmtNodes(const Function& fn) {
  std::size_t count = 0;
  walkStmts(fn, fn.body(), [&](const Stmt&) { ++count; }, nullptr);
  return count;
}

}  // namespace cgra::kir
