// Short-circuit lowering — rewrites lazy `&&` / `||` expressions into
// explicit control flow over fresh 0/1 temporaries:
//
//   t = a && b   ->   t = 0; if (a != 0) { if (b != 0) { t = 1 } }
//   t = a || b   ->   t = 1; if (a == 0) { if (b == 0) { t = 0 } }
//
// The right operand's own prelude statements (nested short-circuits, etc.)
// are emitted inside the conditional, preserving laziness: `b`'s array
// loads never execute when `a` already decides the result.
//
// A while condition containing a short-circuit operator becomes
//   while (1) { t = cond; if (t == 0) { break; } body }
// so the lazy evaluation runs every iteration (including after a continue).
// The introduced break is demoted by normalizeExits, which runs next in the
// pipeline.
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

/// Rewrites every LogicalAnd/LogicalOr in `fn` into eager control flow.
/// Functions without short-circuit operators come back as an exact
/// structural copy.
Function lowerShortCircuit(const Function& fn);

}  // namespace cgra::kir
