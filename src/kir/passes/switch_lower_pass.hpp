// Switch lowering — rewrites structured `switch` statements into if/else
// chains. Two strategies mirror how a bytecode compiler picks between
// LOOKUPSWITCH-style linear dispatch and TABLESWITCH-style tree dispatch:
//
//   Linear: an equality ladder in declaration order — O(n) comparisons, no
//           extra state, best for small switches.
//   Bucket: cases sorted by value and dispatched through a binary range
//           tree — O(log n) comparisons on the scrutinee, using a `$swhit`
//           flag so the default arm is emitted exactly once.
//   Auto:   Bucket at >= 6 cases, Linear otherwise.
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

enum class SwitchStrategy : std::uint8_t { Linear, Bucket, Auto };

/// Rewrites every Switch statement in `fn` into if/else form. Functions
/// without switches come back as an exact structural copy.
Function lowerSwitches(const Function& fn,
                       SwitchStrategy strategy = SwitchStrategy::Auto);

}  // namespace cgra::kir
