// The frontend normalization pipeline — the fixed-order pass sequence that
// takes source-level KIR (calls, short-circuit booleans, switch,
// break/continue/return) down to the structured if/while subset the CDFG
// lowering accepts:
//
//   1. inline          calls spliced in (callee returns demoted first)
//   2. shortcircuit    && / || -> eager control flow over 0/1 temps
//   3. switch-lower    switch -> equality ladder or binary bucket tree
//   4. exit-normalize  break/continue/return -> guard variables
//   5. cse             local common-subexpression elimination
//   6. unroll          partial loop unrolling (after normalization, so
//                      replicated bodies carry guards, not exit edges)
//
// Each stage is skipped when its construct is absent from the input, so a
// kernel that never uses the richer constructs flows through byte-identical
// to the pre-pipeline frontend (golden outputs stay stable).
#pragma once

#include <string>
#include <vector>

#include "kir/kir.hpp"
#include "kir/passes/switch_lower_pass.hpp"

namespace cgra::kir {

/// Pipeline configuration. Defaults run the normalization stages and leave
/// the optimization stages (unroll, cse) off.
struct FrontendOptions {
  bool inlineCalls = true;      ///< requires `program` when calls are present
  bool lowerShortCircuit = true;
  bool lowerSwitches = true;
  SwitchStrategy switchStrategy = SwitchStrategy::Auto;
  bool normalizeExits = true;
  unsigned unrollFactor = 1;    ///< < 2 disables unrolling
  bool unrollInnermostOnly = true;
  bool cse = false;
  bool captureStages = false;   ///< record IR text after every stage
};

/// One pipeline stage's outcome (for `cgra-tool kir` and debugging).
struct StageRecord {
  std::string name;  ///< "inline", "shortcircuit", ...
  bool ran = false;  ///< false when skipped (construct absent / disabled)
  std::string ir;    ///< IR text after the stage (captureStages only)
};

struct FrontendResult {
  Function fn;
  std::vector<StageRecord> stages;
};

/// Runs the normalization pipeline on `fn`. `program` is only needed for
/// the inline stage; pass nullptr for call-free functions. The result
/// satisfies `firstIrregularConstruct(result.fn) == nullptr` when the
/// normalization stages are enabled.
FrontendResult runFrontendPipeline(const Function& fn,
                                   const FrontendOptions& options = {},
                                   const Program* program = nullptr);

}  // namespace cgra::kir
