// Local common-subexpression elimination — the optional CSE step of the
// paper's synthesis flow (Fig. 1).
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

/// Local common-subexpression elimination: within straight-line statement
/// runs, pure arithmetic subexpressions (no array loads, no short-circuit
/// operators) computed more than once over identical variable versions are
/// hoisted into fresh temps.
Function eliminateCommonSubexpressions(const Function& fn);

}  // namespace cgra::kir
