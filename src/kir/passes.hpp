// Frontend optimization passes — the optional steps of the paper's synthesis
// flow (Fig. 1): method inlining, partial loop unrolling and common
// subexpression elimination. Each pass returns a new Function; semantics are
// preserved (tests check interpreter equivalence on random inputs).
#pragma once

#include "kir/kir.hpp"

namespace cgra::kir {

/// Replaces every Call statement by the callee's body with renamed locals
/// (recursively — callees may call further functions; recursion depth is
/// bounded and cycles are rejected).
Function inlineCalls(const Program& program, const Function& fn);

/// Partially unrolls loops by `factor` (paper evaluation: "a maximum unroll
/// factor of 2 for inner loops was used"). A while loop
///   while (c) { B }
/// becomes
///   while (c) { B; if (c) { B } }        (factor 2)
/// When `innermostOnly`, only loops without nested loops are unrolled.
Function unrollLoops(const Function& fn, unsigned factor,
                     bool innermostOnly = true);

/// Local common-subexpression elimination: within straight-line statement
/// runs, pure arithmetic subexpressions (no array loads) computed more than
/// once over identical variable versions are hoisted into fresh temps.
Function eliminateCommonSubexpressions(const Function& fn);

/// Statistics helper: number of expression nodes reachable from the body.
std::size_t countExprNodes(const Function& fn);
/// Statistics helper: number of statements reachable from the body.
std::size_t countStmtNodes(const Function& fn);

}  // namespace cgra::kir
