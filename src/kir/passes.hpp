// Umbrella header for the frontend pass pipeline. The passes live in
// kir/passes/ (one file per pass); this header keeps the historical
// `#include "kir/passes.hpp"` spelling working and pulls in the pipeline
// driver. New code can include the individual pass headers directly.
#pragma once

#include "kir/passes/cse_pass.hpp"
#include "kir/passes/exit_normalize_pass.hpp"
#include "kir/passes/inline_pass.hpp"
#include "kir/passes/pass_utils.hpp"
#include "kir/passes/pipeline.hpp"
#include "kir/passes/shortcircuit_pass.hpp"
#include "kir/passes/switch_lower_pass.hpp"
#include "kir/passes/unroll_pass.hpp"
