// Reference interpreter for KIR — the golden functional model.
//
// Every kernel's CGRA execution (simulator) and baseline execution (token
// machine) are checked bit-exactly against this interpreter in the test
// suite. It also reports simple dynamic statistics used by tests.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "host/memory.hpp"
#include "kir/kir.hpp"

namespace cgra::kir {

/// Result of interpreting one kernel.
struct InterpResult {
  std::vector<std::int32_t> locals;  ///< final values of all locals
  std::uint64_t statements = 0;      ///< executed statement count
  std::uint64_t loopIterations = 0;  ///< total committed loop iterations
};

/// Tree-walking evaluator.
class Interpreter {
public:
  /// `program` supplies callees for Call statements; pass nullptr for
  /// call-free kernels.
  explicit Interpreter(const Program* program = nullptr)
      : program_(program) {}

  /// Runs `fn` with the given initial local values (index-aligned; missing
  /// entries start at 0). Throws cgra::Error on heap faults or when
  /// `maxStatements` is exceeded.
  InterpResult run(const Function& fn, std::vector<std::int32_t> initialLocals,
                   HostMemory& heap,
                   std::uint64_t maxStatements = 50'000'000) const;

  /// Evaluates a single expression against fixed locals (used in tests).
  std::int32_t evalExpr(const Function& fn, ExprId id,
                        const std::vector<std::int32_t>& locals,
                        HostMemory& heap) const;

private:
  const Program* program_;
};

}  // namespace cgra::kir
