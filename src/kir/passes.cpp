#include "kir/passes.hpp"

#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace cgra::kir {

namespace {

/// Copies expressions/statements from `src` into `dst`, renaming locals
/// through `localMap`. Call statements are handled by the caller via
/// `onCall` (inlining) or rejected.
class Cloner {
public:
  using CallHook = std::function<StmtId(const Stmt&, Cloner&)>;

  Cloner(const Function& src, Function& dst, std::vector<LocalId> localMap,
         CallHook onCall = {})
      : src_(src), dst_(dst), localMap_(std::move(localMap)),
        onCall_(std::move(onCall)) {}

  ExprId cloneExpr(ExprId id) {
    const Expr& e = src_.expr(id);
    Expr out = e;
    if (e.kind == ExprKind::Local) {
      CGRA_ASSERT(e.local < localMap_.size());
      out.local = localMap_[e.local];
    }
    if (out.lhs != kNoExpr) out.lhs = cloneExpr(e.lhs);
    if (out.rhs != kNoExpr) out.rhs = cloneExpr(e.rhs);
    return dst_.addExpr(out);
  }

  StmtId cloneStmt(StmtId id) {
    const Stmt& s = src_.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign: {
        Stmt out;
        out.kind = StmtKind::Assign;
        out.target = localMap_[s.target];
        out.value = cloneExpr(s.value);
        return dst_.addStmt(std::move(out));
      }
      case StmtKind::ArrayStore: {
        Stmt out;
        out.kind = StmtKind::ArrayStore;
        out.handle = cloneExpr(s.handle);
        out.index = cloneExpr(s.index);
        out.value = cloneExpr(s.value);
        return dst_.addStmt(std::move(out));
      }
      case StmtKind::If: {
        Stmt out;
        out.kind = StmtKind::If;
        out.cond = cloneExpr(s.cond);
        out.thenBlock = cloneStmt(s.thenBlock);
        out.elseBlock = s.elseBlock == kNoStmt ? kNoStmt : cloneStmt(s.elseBlock);
        return dst_.addStmt(std::move(out));
      }
      case StmtKind::While: {
        Stmt out;
        out.kind = StmtKind::While;
        out.cond = cloneExpr(s.cond);
        out.body = cloneStmt(s.body);
        return dst_.addStmt(std::move(out));
      }
      case StmtKind::Call:
        if (!onCall_)
          throw Error("pass cannot handle Call statements; inline first");
        return onCall_(s, *this);
      case StmtKind::Block: {
        Stmt out;
        out.kind = StmtKind::Block;
        for (StmtId c : s.stmts) out.stmts.push_back(cloneStmt(c));
        return dst_.addStmt(std::move(out));
      }
    }
    CGRA_UNREACHABLE("bad statement kind");
  }

  const std::vector<LocalId>& localMap() const { return localMap_; }
  Function& dst() { return dst_; }

private:
  const Function& src_;
  Function& dst_;
  std::vector<LocalId> localMap_;
  CallHook onCall_;
};

std::vector<LocalId> identityMap(const Function& fn, Function& dst) {
  std::vector<LocalId> map;
  map.reserve(fn.numLocals());
  for (LocalId i = 0; i < fn.numLocals(); ++i) {
    const LocalDecl& l = fn.local(i);
    map.push_back(dst.addLocal(l.name, l.isParameter));
  }
  return map;
}

Function inlineCallsImpl(const Program& program, const Function& fn,
                         std::set<const Function*>& active) {
  if (active.contains(&fn))
    throw Error("inlineCalls: recursive call cycle through " + fn.name());
  active.insert(&fn);

  Function out(fn.name());
  std::vector<LocalId> map = identityMap(fn, out);

  unsigned inlineCounter = 0;
  Cloner::CallHook hook = [&](const Stmt& s, Cloner& cl) -> StmtId {
    const Function flatCallee =
        inlineCallsImpl(program, program.function(s.callee), active);
    // Fresh locals for the callee, suffixed to stay unique.
    const std::string suffix =
        "$" + flatCallee.name() + std::to_string(inlineCounter++);
    std::vector<LocalId> calleeMap;
    for (LocalId i = 0; i < flatCallee.numLocals(); ++i)
      calleeMap.push_back(
          cl.dst().addLocal(flatCallee.local(i).name + suffix, false));

    std::vector<StmtId> seq;
    // Bind arguments (argument expressions evaluate in the caller's frame).
    unsigned argIdx = 0;
    for (LocalId i = 0; i < flatCallee.numLocals(); ++i)
      if (flatCallee.local(i).isParameter) {
        if (argIdx >= s.args.size())
          throw Error("inlineCalls: too few arguments for " + flatCallee.name());
        Stmt bind;
        bind.kind = StmtKind::Assign;
        bind.target = calleeMap[i];
        bind.value = cl.cloneExpr(s.args[argIdx++]);
        seq.push_back(cl.dst().addStmt(std::move(bind)));
      }
    if (argIdx != s.args.size())
      throw Error("inlineCalls: too many arguments for " + flatCallee.name());

    // Clone the (already call-free) callee body with renamed locals.
    Cloner bodyCl(flatCallee, cl.dst(), calleeMap);
    seq.push_back(bodyCl.cloneStmt(flatCallee.body()));

    // Return value: the callee's "result" local.
    Stmt ret;
    ret.kind = StmtKind::Assign;
    ret.target = cl.localMap()[s.target];
    Expr read;
    read.kind = ExprKind::Local;
    read.local = calleeMap[flatCallee.localByName("result")];
    ret.value = cl.dst().addExpr(read);
    seq.push_back(cl.dst().addStmt(std::move(ret)));

    Stmt blockS;
    blockS.kind = StmtKind::Block;
    blockS.stmts = std::move(seq);
    return cl.dst().addStmt(std::move(blockS));
  };

  Cloner cl(fn, out, std::move(map), hook);
  out.setBody(cl.cloneStmt(fn.body()));
  active.erase(&fn);
  out.validate();
  return out;
}

bool containsLoop(const Function& fn, StmtId id) {
  const Stmt& s = fn.stmt(id);
  switch (s.kind) {
    case StmtKind::While: return true;
    case StmtKind::If:
      return containsLoop(fn, s.thenBlock) ||
             (s.elseBlock != kNoStmt && containsLoop(fn, s.elseBlock));
    case StmtKind::Block:
      for (StmtId c : s.stmts)
        if (containsLoop(fn, c)) return true;
      return false;
    default: return false;
  }
}

}  // namespace

Function inlineCalls(const Program& program, const Function& fn) {
  std::set<const Function*> active;
  return inlineCallsImpl(program, fn, active);
}

Function unrollLoops(const Function& fn, unsigned factor, bool innermostOnly) {
  if (factor < 2) {
    Function out(fn.name());
    Cloner cl(fn, out, identityMap(fn, out));
    out.setBody(cl.cloneStmt(fn.body()));
    return out;
  }

  Function out(fn.name());
  auto map = identityMap(fn, out);

  // Rebuild recursively; While nodes meeting the criterion get their body
  // replicated `factor` times, each repetition after the first guarded by a
  // fresh evaluation of the loop condition.
  std::function<StmtId(StmtId, Cloner&)> rebuild = [&](StmtId id,
                                                       Cloner& cl) -> StmtId {
    const Stmt& s = fn.stmt(id);
    switch (s.kind) {
      case StmtKind::While: {
        const bool unrollThis = !innermostOnly || !containsLoop(fn, s.body);
        if (!unrollThis) {
          Stmt loop;
          loop.kind = StmtKind::While;
          loop.cond = cl.cloneExpr(s.cond);
          loop.body = rebuild(s.body, cl);
          return out.addStmt(std::move(loop));
        }
        // innermost copies first: if (c) { B } nested (factor-1) deep.
        StmtId tail = kNoStmt;
        for (unsigned rep = factor; rep >= 2; --rep) {
          std::vector<StmtId> seq{rebuild(s.body, cl)};
          if (tail != kNoStmt) seq.push_back(tail);
          Stmt blockS;
          blockS.kind = StmtKind::Block;
          blockS.stmts = std::move(seq);
          const StmtId blk = out.addStmt(std::move(blockS));
          Stmt guard;
          guard.kind = StmtKind::If;
          guard.cond = cl.cloneExpr(s.cond);
          guard.thenBlock = blk;
          tail = out.addStmt(std::move(guard));
        }
        Stmt bodyS;
        bodyS.kind = StmtKind::Block;
        bodyS.stmts = {rebuild(s.body, cl), tail};
        const StmtId newBody = out.addStmt(std::move(bodyS));
        Stmt loop;
        loop.kind = StmtKind::While;
        loop.cond = cl.cloneExpr(s.cond);
        loop.body = newBody;
        return out.addStmt(std::move(loop));
      }
      case StmtKind::If: {
        Stmt ifS;
        ifS.kind = StmtKind::If;
        ifS.cond = cl.cloneExpr(s.cond);
        ifS.thenBlock = rebuild(s.thenBlock, cl);
        ifS.elseBlock =
            s.elseBlock == kNoStmt ? kNoStmt : rebuild(s.elseBlock, cl);
        return out.addStmt(std::move(ifS));
      }
      case StmtKind::Block: {
        Stmt blockS;
        blockS.kind = StmtKind::Block;
        for (StmtId c : s.stmts) blockS.stmts.push_back(rebuild(c, cl));
        return out.addStmt(std::move(blockS));
      }
      default: return cl.cloneStmt(id);
    }
  };

  Cloner cl(fn, out, std::move(map));
  out.setBody(rebuild(fn.body(), cl));
  out.validate();
  return out;
}

// ---------------------------------------------------------------------------
// Common subexpression elimination

namespace {

/// Canonical key of a pure expression over versioned locals; empty when the
/// expression is not CSE-eligible (contains an array load).
std::string exprKey(const Function& fn, ExprId id,
                    const std::map<LocalId, unsigned>& versions) {
  const Expr& e = fn.expr(id);
  switch (e.kind) {
    case ExprKind::Const: return "C" + std::to_string(e.value);
    case ExprKind::Local: {
      const auto it = versions.find(e.local);
      const unsigned v = it == versions.end() ? 0 : it->second;
      return "L" + std::to_string(e.local) + "v" + std::to_string(v);
    }
    case ExprKind::Unary: {
      const std::string a = exprKey(fn, e.lhs, versions);
      return a.empty() ? "" : "N(" + a + ")";
    }
    case ExprKind::Binary:
    case ExprKind::Compare: {
      const std::string a = exprKey(fn, e.lhs, versions);
      const std::string b = exprKey(fn, e.rhs, versions);
      if (a.empty() || b.empty()) return "";
      return std::string(opName(e.op)) + "(" + a + "," + b + ")";
    }
    case ExprKind::ArrayLoad: return "";
  }
  CGRA_UNREACHABLE("bad expr kind");
}

bool hoistable(const Function& fn, ExprId id) {
  const ExprKind k = fn.expr(id).kind;
  return k == ExprKind::Binary || k == ExprKind::Unary;
}

struct CseState {
  Function& out;
  const Function& src;
  Cloner& cl;
  unsigned tempCounter = 0;
};

/// CSE over one statement list (the children of a Block). Returns the new
/// statement ids.
std::vector<StmtId> cseRun(CseState& st, const std::vector<StmtId>& stmts);

/// Recursively applies CSE inside nested structures of one statement.
StmtId cseStmt(CseState& st, StmtId id) {
  const Stmt& s = st.src.stmt(id);
  switch (s.kind) {
    case StmtKind::If: {
      Stmt out;
      out.kind = StmtKind::If;
      out.cond = st.cl.cloneExpr(s.cond);
      out.thenBlock = cseStmt(st, s.thenBlock);
      out.elseBlock =
          s.elseBlock == kNoStmt ? kNoStmt : cseStmt(st, s.elseBlock);
      return st.out.addStmt(std::move(out));
    }
    case StmtKind::While: {
      Stmt out;
      out.kind = StmtKind::While;
      out.cond = st.cl.cloneExpr(s.cond);
      out.body = cseStmt(st, s.body);
      return st.out.addStmt(std::move(out));
    }
    case StmtKind::Block: {
      Stmt out;
      out.kind = StmtKind::Block;
      out.stmts = cseRun(st, s.stmts);
      return st.out.addStmt(std::move(out));
    }
    default: return st.cl.cloneStmt(id);
  }
}

std::vector<StmtId> cseRun(CseState& st, const std::vector<StmtId>& stmts) {
  // Pass 1: count keys of hoistable subexpressions within straight-line runs
  // of Assign/ArrayStore. Control flow flushes the run.
  struct Info {
    unsigned count = 0;
    std::size_t firstStmt = 0;
    ExprId expr = kNoExpr;
  };
  // Keys are prefixed with the straight-line run index so occurrences in
  // different runs (separated by control flow) never merge.
  std::map<std::string, Info> table;
  std::map<LocalId, unsigned> versions;
  unsigned runId = 0;

  auto countExpr = [&](ExprId id, std::size_t stmtIdx, auto&& self) -> void {
    const Expr& e = st.src.expr(id);
    if (e.lhs != kNoExpr) self(e.lhs, stmtIdx, self);
    if (e.rhs != kNoExpr) self(e.rhs, stmtIdx, self);
    if (!hoistable(st.src, id)) return;
    const std::string key = exprKey(st.src, id, versions);
    if (key.empty()) return;
    auto [it, inserted] = table.try_emplace(
        "R" + std::to_string(runId) + ":" + key, Info{0, stmtIdx, id});
    ++it->second.count;
    (void)inserted;
  };

  auto isStraight = [&](StmtId id) {
    const StmtKind k = st.src.stmt(id).kind;
    return k == StmtKind::Assign || k == StmtKind::ArrayStore;
  };

  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& s = st.src.stmt(stmts[i]);
    if (!isStraight(stmts[i])) {
      ++runId;
      versions.clear();
      continue;
    }
    if (s.kind == StmtKind::Assign) {
      countExpr(s.value, i, countExpr);
      ++versions[s.target];
    } else {
      countExpr(s.handle, i, countExpr);
      countExpr(s.index, i, countExpr);
      countExpr(s.value, i, countExpr);
    }
  }

  // Keys worth hoisting.
  std::map<std::string, LocalId> hoisted;  // key → temp local (assigned below)

  // Pass 2: rebuild statements; maintain versions again; emit temp
  // assignments right before the first statement using the key.
  std::vector<StmtId> result;
  versions.clear();
  runId = 0;

  // Rewrites an expression, replacing hoisted subtrees by temp reads.
  std::function<ExprId(ExprId)> rewrite = [&](ExprId id) -> ExprId {
    const Expr& e = st.src.expr(id);
    if (hoistable(st.src, id)) {
      const std::string key =
          "R" + std::to_string(runId) + ":" + exprKey(st.src, id, versions);
      {
        if (auto it = hoisted.find(key); it != hoisted.end()) {
          Expr read;
          read.kind = ExprKind::Local;
          read.local = it->second;
          return st.out.addExpr(read);
        }
      }
    }
    Expr out = e;
    if (e.kind == ExprKind::Local) out.local = st.cl.localMap()[e.local];
    if (e.lhs != kNoExpr) out.lhs = rewrite(e.lhs);
    if (e.rhs != kNoExpr) out.rhs = rewrite(e.rhs);
    return st.out.addExpr(out);
  };

  // Emits hoists scheduled for statement index i (keys whose first
  // occurrence is i and count ≥ 2), smallest subexpressions first so larger
  // hoists can reuse smaller temps.
  auto emitHoists = [&](std::size_t i) {
    std::vector<std::pair<std::string, Info>> due;
    for (const auto& [key, info] : table)
      if (info.count >= 2 && info.firstStmt == i && !hoisted.contains(key))
        due.emplace_back(key, info);
    std::sort(due.begin(), due.end(), [](const auto& a, const auto& b) {
      return a.first.size() < b.first.size();
    });
    for (const auto& [key, info] : due) {
      const LocalId temp = st.out.addLocal(
          "$cse" + std::to_string(st.tempCounter++), false);
      Stmt assign;
      assign.kind = StmtKind::Assign;
      assign.target = temp;
      assign.value = rewrite(info.expr);  // may reuse earlier hoists
      result.push_back(st.out.addStmt(std::move(assign)));
      hoisted[key] = temp;
    }
  };

  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& s = st.src.stmt(stmts[i]);
    if (!isStraight(stmts[i])) {
      ++runId;
      versions.clear();
      hoisted.clear();
      result.push_back(cseStmt(st, stmts[i]));
      continue;
    }
    emitHoists(i);
    if (s.kind == StmtKind::Assign) {
      Stmt out;
      out.kind = StmtKind::Assign;
      out.target = st.cl.localMap()[s.target];
      out.value = rewrite(s.value);
      result.push_back(st.out.addStmt(std::move(out)));
      ++versions[s.target];
      // Temps derived from the overwritten local are now stale.
      std::erase_if(hoisted, [&](const auto& kv) {
        return kv.first.find("L" + std::to_string(s.target) + "v") !=
               std::string::npos;
      });
    } else {
      Stmt out;
      out.kind = StmtKind::ArrayStore;
      out.handle = rewrite(s.handle);
      out.index = rewrite(s.index);
      out.value = rewrite(s.value);
      result.push_back(st.out.addStmt(std::move(out)));
    }
  }
  return result;
}

}  // namespace

Function eliminateCommonSubexpressions(const Function& fn) {
  Function out(fn.name());
  std::vector<LocalId> map;
  for (LocalId i = 0; i < fn.numLocals(); ++i) {
    const LocalDecl& l = fn.local(i);
    map.push_back(out.addLocal(l.name, l.isParameter));
  }
  Cloner cl(fn, out, std::move(map));
  CseState st{out, fn, cl, 0};
  out.setBody(cseStmt(st, fn.body()));
  out.validate();
  return out;
}

std::size_t countExprNodes(const Function& fn) {
  std::size_t count = 0;
  std::function<void(ExprId)> walkE = [&](ExprId id) {
    ++count;
    const Expr& e = fn.expr(id);
    if (e.lhs != kNoExpr) walkE(e.lhs);
    if (e.rhs != kNoExpr) walkE(e.rhs);
  };
  std::function<void(StmtId)> walkS = [&](StmtId id) {
    const Stmt& s = fn.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign: walkE(s.value); break;
      case StmtKind::ArrayStore:
        walkE(s.handle);
        walkE(s.index);
        walkE(s.value);
        break;
      case StmtKind::If:
        walkE(s.cond);
        walkS(s.thenBlock);
        if (s.elseBlock != kNoStmt) walkS(s.elseBlock);
        break;
      case StmtKind::While:
        walkE(s.cond);
        walkS(s.body);
        break;
      case StmtKind::Call:
        for (ExprId a : s.args) walkE(a);
        break;
      case StmtKind::Block:
        for (StmtId c : s.stmts) walkS(c);
        break;
    }
  };
  walkS(fn.body());
  return count;
}

std::size_t countStmtNodes(const Function& fn) {
  std::size_t count = 0;
  std::function<void(StmtId)> walkS = [&](StmtId id) {
    ++count;
    const Stmt& s = fn.stmt(id);
    switch (s.kind) {
      case StmtKind::If:
        walkS(s.thenBlock);
        if (s.elseBlock != kNoStmt) walkS(s.elseBlock);
        break;
      case StmtKind::While: walkS(s.body); break;
      case StmtKind::Block:
        for (StmtId c : s.stmts) walkS(c);
        break;
      default: break;
    }
  };
  walkS(fn.body());
  return count;
}

}  // namespace cgra::kir
