// Text front end for the kernel IR: parses a small C-like kernel language
// into a kir::Function, so kernels can be supplied as files (see
// tools/cgra_tool.cpp --kernel-file) instead of built programmatically.
//
// Grammar (C-like precedence; integers are 32-bit two's complement):
//
//   kernel     := "kernel" IDENT "(" [IDENT ("," IDENT)*] ")" block
//   block      := "{" stmt* "}"
//   stmt       := "var" IDENT ["=" expr] ";"          declare local
//               | IDENT "=" expr ";"                  assign
//               | IDENT "[" expr "]" "=" expr ";"     array store
//               | "if" "(" expr ")" block ["else" (block | ifstmt)]
//               | "while" "(" expr ")" block
//   expr       := logical-or with C precedence:
//                 || && | ^ & ==/!= </<=/>/>= <</>>/>>> +- * unary(- !)
//               | IDENT | IDENT "[" expr "]" | INT | "(" expr ")"
//
// Notes on semantics: `||`/`&&` are non-short-circuit (both sides evaluate;
// operands are normalized to 0/1 — this matches the CGRA's speculative
// execution, where both sides execute anyway); `!e` is `e == 0`;
// `>>` is arithmetic, `>>>` logical shift right.
#pragma once

#include <string>

#include "kir/kir.hpp"

namespace cgra::kir {

/// Parses one kernel; throws cgra::Error with line/column on syntax errors,
/// undeclared identifiers or duplicate declarations.
Function parseKernel(const std::string& source);

/// Reads and parses a kernel file.
Function parseKernelFile(const std::string& path);

}  // namespace cgra::kir
