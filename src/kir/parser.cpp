#include "kir/parser.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

namespace cgra::kir {

namespace {

enum class Tok : std::uint8_t {
  End, Ident, Int,
  KwKernel, KwVar, KwIf, KwElse, KwWhile,
  KwBreak, KwContinue, KwReturn, KwSwitch, KwCase, KwDefault,
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, Assign,
  OrOr, AndAnd, Pipe, Caret, Amp,
  EqEq, NotEq, Lt, Le, Gt, Ge,
  Shl, Shr, Ushr,
  Plus, Minus, Star, Bang,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  std::int32_t value = 0;
  int line = 1, col = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "kernel parse error at line " << line_ << ", column " << col_
       << ": " << msg;
    throw Error(os.str());
  }

  char cur() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char next() const { return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0'; }

  void bump() {
    if (cur() == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skipWsAndComments() {
    while (true) {
      while (std::isspace(static_cast<unsigned char>(cur()))) bump();
      if (cur() == '/' && next() == '/') {
        while (cur() && cur() != '\n') bump();
        continue;
      }
      if (cur() == '/' && next() == '*') {
        bump();
        bump();
        while (cur() && !(cur() == '*' && next() == '/')) bump();
        if (!cur()) fail("unterminated block comment");
        bump();
        bump();
        continue;
      }
      break;
    }
  }

  void advance() {
    skipWsAndComments();
    tok_ = Token{};
    tok_.line = line_;
    tok_.col = col_;
    const char c = cur();
    if (!c) {
      tok_.kind = Tok::End;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (std::isalnum(static_cast<unsigned char>(cur())) || cur() == '_') {
        id.push_back(cur());
        bump();
      }
      tok_.text = id;
      if (id == "kernel") tok_.kind = Tok::KwKernel;
      else if (id == "var") tok_.kind = Tok::KwVar;
      else if (id == "if") tok_.kind = Tok::KwIf;
      else if (id == "else") tok_.kind = Tok::KwElse;
      else if (id == "while") tok_.kind = Tok::KwWhile;
      else if (id == "break") tok_.kind = Tok::KwBreak;
      else if (id == "continue") tok_.kind = Tok::KwContinue;
      else if (id == "return") tok_.kind = Tok::KwReturn;
      else if (id == "switch") tok_.kind = Tok::KwSwitch;
      else if (id == "case") tok_.kind = Tok::KwCase;
      else if (id == "default") tok_.kind = Tok::KwDefault;
      else tok_.kind = Tok::Ident;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t v = 0;
      if (c == '0' && (next() == 'x' || next() == 'X')) {
        bump();
        bump();
        if (!std::isxdigit(static_cast<unsigned char>(cur())))
          fail("expected hex digits after 0x");
        while (std::isxdigit(static_cast<unsigned char>(cur()))) {
          const char h = cur();
          v = v * 16 +
              static_cast<std::uint64_t>(
                  h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          if (v > 0xFFFFFFFFull) fail("integer literal too large");
          bump();
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(cur()))) {
          v = v * 10 + static_cast<std::uint64_t>(cur() - '0');
          if (v > 0xFFFFFFFFull) fail("integer literal too large");
          bump();
        }
      }
      tok_.kind = Tok::Int;
      tok_.value = static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
      return;
    }
    auto two = [&](char a, char b) { return c == a && next() == b; };
    if (two('|', '|')) { bump(); bump(); tok_.kind = Tok::OrOr; return; }
    if (two('&', '&')) { bump(); bump(); tok_.kind = Tok::AndAnd; return; }
    if (two('=', '=')) { bump(); bump(); tok_.kind = Tok::EqEq; return; }
    if (two('!', '=')) { bump(); bump(); tok_.kind = Tok::NotEq; return; }
    if (two('<', '=')) { bump(); bump(); tok_.kind = Tok::Le; return; }
    if (two('>', '=')) { bump(); bump(); tok_.kind = Tok::Ge; return; }
    if (c == '>' && next() == '>' && pos_ + 2 < src_.size() &&
        src_[pos_ + 2] == '>') {
      bump(); bump(); bump();
      tok_.kind = Tok::Ushr;
      return;
    }
    if (two('<', '<')) { bump(); bump(); tok_.kind = Tok::Shl; return; }
    if (two('>', '>')) { bump(); bump(); tok_.kind = Tok::Shr; return; }
    bump();
    switch (c) {
      case '(': tok_.kind = Tok::LParen; return;
      case ')': tok_.kind = Tok::RParen; return;
      case '{': tok_.kind = Tok::LBrace; return;
      case '}': tok_.kind = Tok::RBrace; return;
      case '[': tok_.kind = Tok::LBracket; return;
      case ']': tok_.kind = Tok::RBracket; return;
      case ',': tok_.kind = Tok::Comma; return;
      case ';': tok_.kind = Tok::Semi; return;
      case ':': tok_.kind = Tok::Colon; return;
      case '=': tok_.kind = Tok::Assign; return;
      case '|': tok_.kind = Tok::Pipe; return;
      case '^': tok_.kind = Tok::Caret; return;
      case '&': tok_.kind = Tok::Amp; return;
      case '<': tok_.kind = Tok::Lt; return;
      case '>': tok_.kind = Tok::Gt; return;
      case '+': tok_.kind = Tok::Plus; return;
      case '-': tok_.kind = Tok::Minus; return;
      case '*': tok_.kind = Tok::Star; return;
      case '!': tok_.kind = Tok::Bang; return;
      default: fail(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1, col_ = 1;
  Token tok_;
};

class Parser {
public:
  explicit Parser(const std::string& src) : lex_(src) {}

  Function parse() {
    expect(Tok::KwKernel, "expected 'kernel'");
    const Token name = expect(Tok::Ident, "expected kernel name");
    builder_.emplace(name.text);
    expect(Tok::LParen, "expected '('");
    if (lex_.peek().kind != Tok::RParen) {
      while (true) {
        const Token param = expect(Tok::Ident, "expected parameter name");
        declare(param, /*isParam=*/true);
        if (lex_.peek().kind != Tok::Comma) break;
        lex_.take();
      }
    }
    expect(Tok::RParen, "expected ')'");
    const StmtId body = parseBlock();
    return builder_->finish(body);
  }

private:
  [[noreturn]] void fail(const Token& at, const std::string& msg) const {
    std::ostringstream os;
    os << "kernel parse error at line " << at.line << ", column " << at.col
       << ": " << msg;
    throw Error(os.str());
  }

  Token expect(Tok kind, const std::string& msg) {
    if (lex_.peek().kind != kind) fail(lex_.peek(), msg);
    return lex_.take();
  }

  LocalId declare(const Token& name, bool isParam) {
    if (locals_.contains(name.text))
      fail(name, "duplicate declaration of '" + name.text + "'");
    const LocalId id = isParam ? builder_->param(name.text)
                               : builder_->localVar(name.text);
    locals_[name.text] = id;
    return id;
  }

  LocalId resolve(const Token& name) const {
    const auto it = locals_.find(name.text);
    if (it == locals_.end())
      fail(name, "use of undeclared identifier '" + name.text + "'");
    return it->second;
  }

  StmtId parseBlock() {
    expect(Tok::LBrace, "expected '{'");
    std::vector<StmtId> stmts;
    while (lex_.peek().kind != Tok::RBrace) {
      if (lex_.peek().kind == Tok::End) fail(lex_.peek(), "unterminated block");
      stmts.push_back(parseStmt());
    }
    lex_.take();
    return builder_->block(std::move(stmts));
  }

  StmtId parseStmt() {
    const Token& t = lex_.peek();
    switch (t.kind) {
      case Tok::KwVar: {
        lex_.take();
        const Token name = expect(Tok::Ident, "expected variable name");
        const LocalId id = declare(name, false);
        ExprId init = builder_->cint(0);
        if (lex_.peek().kind == Tok::Assign) {
          lex_.take();
          init = parseExpr();
        }
        expect(Tok::Semi, "expected ';'");
        return builder_->assign(id, init);
      }
      case Tok::KwIf: {
        lex_.take();
        expect(Tok::LParen, "expected '(' after if");
        const ExprId cond = parseExpr();
        expect(Tok::RParen, "expected ')'");
        const StmtId thenB = parseBlock();
        StmtId elseB = kNoStmt;
        if (lex_.peek().kind == Tok::KwElse) {
          lex_.take();
          elseB = lex_.peek().kind == Tok::KwIf ? parseStmt() : parseBlock();
        }
        return builder_->ifElse(asCondition(cond), thenB, elseB);
      }
      case Tok::KwWhile: {
        lex_.take();
        expect(Tok::LParen, "expected '(' after while");
        const ExprId cond = parseExpr();
        expect(Tok::RParen, "expected ')'");
        return builder_->whileLoop(asCondition(cond), parseBlock());
      }
      case Tok::KwBreak: {
        lex_.take();
        expect(Tok::Semi, "expected ';' after break");
        return builder_->breakLoop();
      }
      case Tok::KwContinue: {
        lex_.take();
        expect(Tok::Semi, "expected ';' after continue");
        return builder_->continueLoop();
      }
      case Tok::KwReturn: {
        lex_.take();
        ExprId value = kNoExpr;
        if (lex_.peek().kind != Tok::Semi) value = parseExpr();
        expect(Tok::Semi, "expected ';' after return");
        const StmtId s = builder_->ret(value);
        // `return expr;` materializes the implicit "result" local; register
        // it so later statements can read it and redeclaration is an error.
        if (value != kNoExpr && !locals_.contains("result"))
          locals_["result"] = builder_->fn().localByName("result");
        return s;
      }
      case Tok::KwSwitch:
        return parseSwitch();
      case Tok::Ident: {
        const Token name = lex_.take();
        const LocalId id = resolve(name);
        if (lex_.peek().kind == Tok::LBracket) {
          lex_.take();
          const ExprId index = parseExpr();
          expect(Tok::RBracket, "expected ']'");
          expect(Tok::Assign, "expected '=' after array subscript");
          const ExprId value = parseExpr();
          expect(Tok::Semi, "expected ';'");
          return builder_->arrayStore(builder_->use(id), index, value);
        }
        expect(Tok::Assign, "expected '='");
        const ExprId value = parseExpr();
        expect(Tok::Semi, "expected ';'");
        return builder_->assign(id, value);
      }
      default:
        fail(t, "expected a statement");
    }
  }

  /// switch (expr) { case N: {...} ... default: {...} } — each arm is a
  /// braced block (no fall-through), values are integer literals, `default`
  /// is optional and must come last.
  StmtId parseSwitch() {
    lex_.take();
    expect(Tok::LParen, "expected '(' after switch");
    const ExprId scrutinee = parseExpr();
    expect(Tok::RParen, "expected ')'");
    expect(Tok::LBrace, "expected '{' after switch (...)");
    std::vector<std::int32_t> values;
    std::vector<StmtId> arms;
    StmtId defaultB = kNoStmt;
    while (lex_.peek().kind != Tok::RBrace) {
      if (lex_.peek().kind == Tok::KwCase) {
        const Token at = lex_.take();
        if (defaultB != kNoStmt) fail(at, "'case' after 'default'");
        bool negate = false;
        if (lex_.peek().kind == Tok::Minus) {
          lex_.take();
          negate = true;
        }
        const Token lit = expect(Tok::Int, "expected integer case value");
        expect(Tok::Colon, "expected ':' after case value");
        values.push_back(negate ? static_cast<std::int32_t>(
                                      -static_cast<std::int64_t>(lit.value))
                                : lit.value);
        arms.push_back(parseBlock());
      } else if (lex_.peek().kind == Tok::KwDefault) {
        const Token at = lex_.take();
        if (defaultB != kNoStmt) fail(at, "duplicate 'default'");
        expect(Tok::Colon, "expected ':' after default");
        defaultB = parseBlock();
      } else {
        fail(lex_.peek(), "expected 'case', 'default' or '}' in switch");
      }
    }
    lex_.take();
    if (values.empty() && defaultB == kNoStmt)
      fail(lex_.peek(), "switch without any case or default arm");
    return builder_->switchStmt(scrutinee, std::move(values), std::move(arms),
                                defaultB);
  }

  /// if/while conditions: a bare integer expression means `expr != 0`;
  /// comparisons and short-circuit operators pass through.
  ExprId asCondition(ExprId e) {
    const ExprKind k = builder_->fn().expr(e).kind;
    if (k == ExprKind::Compare || k == ExprKind::LogicalAnd ||
        k == ExprKind::LogicalOr)
      return e;
    return builder_->ne(e, builder_->cint(0));
  }

  ExprId parseExpr() { return parseOrOr(); }

  ExprId parseOrOr() {
    ExprId lhs = parseAndAnd();
    while (lex_.peek().kind == Tok::OrOr) {
      lex_.take();
      // Short-circuit: the operands keep their raw form; LogicalOr itself
      // normalizes to 0/1 and skips the rhs when the lhs decides.
      lhs = builder_->lor(lhs, parseAndAnd());
    }
    return lhs;
  }

  ExprId parseAndAnd() {
    ExprId lhs = parseBitOr();
    while (lex_.peek().kind == Tok::AndAnd) {
      lex_.take();
      lhs = builder_->land(lhs, parseBitOr());
    }
    return lhs;
  }

  ExprId parseBitOr() {
    ExprId lhs = parseBitXor();
    while (lex_.peek().kind == Tok::Pipe) {
      lex_.take();
      lhs = builder_->bor(lhs, parseBitXor());
    }
    return lhs;
  }

  ExprId parseBitXor() {
    ExprId lhs = parseBitAnd();
    while (lex_.peek().kind == Tok::Caret) {
      lex_.take();
      lhs = builder_->bxor(lhs, parseBitAnd());
    }
    return lhs;
  }

  ExprId parseBitAnd() {
    ExprId lhs = parseEquality();
    while (lex_.peek().kind == Tok::Amp) {
      lex_.take();
      lhs = builder_->band(lhs, parseEquality());
    }
    return lhs;
  }

  ExprId parseEquality() {
    ExprId lhs = parseRelational();
    while (true) {
      const Tok k = lex_.peek().kind;
      if (k == Tok::EqEq) {
        lex_.take();
        lhs = builder_->eq(lhs, parseRelational());
      } else if (k == Tok::NotEq) {
        lex_.take();
        lhs = builder_->ne(lhs, parseRelational());
      } else {
        return lhs;
      }
    }
  }

  ExprId parseRelational() {
    ExprId lhs = parseShift();
    while (true) {
      const Tok k = lex_.peek().kind;
      if (k == Tok::Lt) { lex_.take(); lhs = builder_->lt(lhs, parseShift()); }
      else if (k == Tok::Le) { lex_.take(); lhs = builder_->le(lhs, parseShift()); }
      else if (k == Tok::Gt) { lex_.take(); lhs = builder_->gt(lhs, parseShift()); }
      else if (k == Tok::Ge) { lex_.take(); lhs = builder_->ge(lhs, parseShift()); }
      else return lhs;
    }
  }

  ExprId parseShift() {
    ExprId lhs = parseAdditive();
    while (true) {
      const Tok k = lex_.peek().kind;
      if (k == Tok::Shl) { lex_.take(); lhs = builder_->shl(lhs, parseAdditive()); }
      else if (k == Tok::Shr) { lex_.take(); lhs = builder_->shr(lhs, parseAdditive()); }
      else if (k == Tok::Ushr) { lex_.take(); lhs = builder_->ushr(lhs, parseAdditive()); }
      else return lhs;
    }
  }

  ExprId parseAdditive() {
    ExprId lhs = parseMultiplicative();
    while (true) {
      const Tok k = lex_.peek().kind;
      if (k == Tok::Plus) { lex_.take(); lhs = builder_->add(lhs, parseMultiplicative()); }
      else if (k == Tok::Minus) { lex_.take(); lhs = builder_->sub(lhs, parseMultiplicative()); }
      else return lhs;
    }
  }

  ExprId parseMultiplicative() {
    ExprId lhs = parseUnary();
    while (lex_.peek().kind == Tok::Star) {
      lex_.take();
      lhs = builder_->mul(lhs, parseUnary());
    }
    return lhs;
  }

  ExprId parseUnary() {
    const Tok k = lex_.peek().kind;
    if (k == Tok::Minus) {
      lex_.take();
      // Fold -literal directly so INT_MIN is expressible.
      if (lex_.peek().kind == Tok::Int) {
        const Token lit = lex_.take();
        return builder_->cint(static_cast<std::int32_t>(
            -static_cast<std::int64_t>(lit.value)));
      }
      return builder_->neg(parseUnary());
    }
    if (k == Tok::Bang) {
      lex_.take();
      return builder_->eq(parseUnary(), builder_->cint(0));
    }
    return parsePrimary();
  }

  ExprId parsePrimary() {
    const Token t = lex_.take();
    switch (t.kind) {
      case Tok::Int:
        return builder_->cint(t.value);
      case Tok::Ident: {
        const LocalId id = resolve(t);
        if (lex_.peek().kind == Tok::LBracket) {
          lex_.take();
          const ExprId index = parseExpr();
          expect(Tok::RBracket, "expected ']'");
          return builder_->load(builder_->use(id), index);
        }
        return builder_->use(id);
      }
      case Tok::LParen: {
        const ExprId e = parseExpr();
        expect(Tok::RParen, "expected ')'");
        return e;
      }
      default:
        fail(t, "expected an expression");
    }
  }

  Lexer lex_;
  std::optional<FunctionBuilder> builder_;
  std::map<std::string, LocalId> locals_;
};

}  // namespace

Function parseKernel(const std::string& source) {
  return Parser(source).parse();
}

Function parseKernelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open kernel file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parseKernel(os.str());
}

}  // namespace cgra::kir
