#include "kir/interp.hpp"

namespace cgra::kir {

namespace {

class Frame {
public:
  Frame(const Program* program, const Function& fn,
        std::vector<std::int32_t> locals, HostMemory& heap,
        std::uint64_t maxStatements, InterpResult& result)
      : program_(program),
        fn_(fn),
        locals_(std::move(locals)),
        heap_(heap),
        maxStatements_(maxStatements),
        result_(result) {
    locals_.resize(fn.numLocals(), 0);
  }

  std::int32_t eval(ExprId id) const {
    const Expr& e = fn_.expr(id);
    switch (e.kind) {
      case ExprKind::Const: return e.value;
      case ExprKind::Local: return locals_[e.local];
      case ExprKind::Binary: return evalArith(e.op, eval(e.lhs), eval(e.rhs));
      case ExprKind::Unary: return evalArith(Op::INEG, eval(e.lhs), 0);
      case ExprKind::Compare:
        return evalCompare(e.op, eval(e.lhs), eval(e.rhs)) ? 1 : 0;
      case ExprKind::ArrayLoad: return heap_.load(eval(e.lhs), eval(e.rhs));
      case ExprKind::LogicalAnd:
        return eval(e.lhs) != 0 ? (eval(e.rhs) != 0 ? 1 : 0) : 0;
      case ExprKind::LogicalOr:
        return eval(e.lhs) != 0 ? 1 : (eval(e.rhs) != 0 ? 1 : 0);
    }
    CGRA_UNREACHABLE("bad expr kind");
  }

  /// How a statement finished: normally, or by unwinding toward the
  /// innermost loop (Break/Continue) or the function exit (Return).
  enum class Flow : std::uint8_t { Normal, Break, Continue, Return };

  Flow exec(StmtId id) {
    if (++result_.statements > maxStatements_)
      throw Error("interpreter: statement budget exceeded in " + fn_.name());
    const Stmt& s = fn_.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign:
        locals_[s.target] = eval(s.value);
        break;
      case StmtKind::ArrayStore: {
        const std::int32_t handle = eval(s.handle);
        const std::int32_t index = eval(s.index);
        heap_.store(handle, index, eval(s.value));
        break;
      }
      case StmtKind::If:
        if (eval(s.cond) != 0)
          return exec(s.thenBlock);
        else if (s.elseBlock != kNoStmt)
          return exec(s.elseBlock);
        break;
      case StmtKind::While:
        while (eval(s.cond) != 0) {
          ++result_.loopIterations;
          const Flow f = exec(s.body);
          if (result_.statements > maxStatements_)
            throw Error("interpreter: statement budget exceeded in " +
                        fn_.name());
          if (f == Flow::Break) break;
          if (f == Flow::Return) return Flow::Return;
          // Flow::Continue re-checks the condition, same as Normal here.
        }
        break;
      case StmtKind::Call: {
        if (!program_)
          throw Error("interpreter: Call statement without a program context");
        const Function& callee = program_->function(s.callee);
        std::vector<std::int32_t> args;
        unsigned paramIdx = 0;
        std::vector<std::int32_t> calleeLocals(callee.numLocals(), 0);
        for (LocalId l = 0; l < callee.numLocals(); ++l)
          if (callee.local(l).isParameter) {
            if (paramIdx >= s.args.size())
              throw Error("interpreter: too few call arguments");
            calleeLocals[l] = eval(s.args[paramIdx++]);
          }
        if (paramIdx != s.args.size())
          throw Error("interpreter: too many call arguments");
        Frame inner(program_, callee, std::move(calleeLocals), heap_,
                    maxStatements_, result_);
        inner.exec(callee.body());
        // Convention: the callee's result is its local named "result".
        locals_[s.target] = inner.locals_[callee.localByName("result")];
        break;
      }
      case StmtKind::Block:
        for (StmtId c : s.stmts) {
          const Flow f = exec(c);
          if (f != Flow::Normal) return f;
        }
        break;
      case StmtKind::Break:
        return Flow::Break;
      case StmtKind::Continue:
        return Flow::Continue;
      case StmtKind::Return:
        if (s.value != kNoExpr) locals_[s.target] = eval(s.value);
        return Flow::Return;
      case StmtKind::Switch: {
        const std::int32_t scrutinee = eval(s.cond);
        for (std::size_t i = 0; i < s.stmts.size(); ++i)
          if (s.caseValues[i] == scrutinee) return exec(s.stmts[i]);
        if (s.body != kNoStmt) return exec(s.body);
        break;
      }
    }
    return Flow::Normal;
  }

  std::vector<std::int32_t> takeLocals() { return std::move(locals_); }

private:
  const Program* program_;
  const Function& fn_;
  std::vector<std::int32_t> locals_;
  HostMemory& heap_;
  std::uint64_t maxStatements_;
  InterpResult& result_;
};

}  // namespace

InterpResult Interpreter::run(const Function& fn,
                              std::vector<std::int32_t> initialLocals,
                              HostMemory& heap,
                              std::uint64_t maxStatements) const {
  InterpResult result;
  Frame frame(program_, fn, std::move(initialLocals), heap, maxStatements,
              result);
  frame.exec(fn.body());
  result.locals = frame.takeLocals();
  return result;
}

std::int32_t Interpreter::evalExpr(const Function& fn, ExprId id,
                                   const std::vector<std::int32_t>& locals,
                                   HostMemory& heap) const {
  InterpResult scratch;
  Frame frame(program_, fn, locals, heap, 1'000'000, scratch);
  return frame.eval(id);
}

}  // namespace cgra::kir
