// Lowers a (call-free) KIR function to baseline stack bytecode so the token
// machine can execute exactly the kernel the CGRA runs — the AMIDAR side of
// the paper's speedup comparison.
#pragma once

#include "host/bytecode.hpp"
#include "kir/kir.hpp"

namespace cgra::kir {

/// Compiles `fn` to stack bytecode. Call statements must be inlined first
/// (throws cgra::Error otherwise). Local indices are preserved, so the same
/// initial-locals vector drives interpreter, baseline and CGRA runs.
BytecodeFunction lowerToBytecode(const Function& fn);

}  // namespace cgra::kir
