#include "kir/lower_bytecode.hpp"

#include <functional>

namespace cgra::kir {

namespace {

class Codegen {
public:
  explicit Codegen(const Function& fn) : fn_(fn) {
    out_.name = fn.name();
    out_.numLocals = static_cast<unsigned>(fn.numLocals());
  }

  BytecodeFunction finish() {
    emitStmt(fn_.body());
    const std::int32_t end = here();
    emit(Bc::HALT);
    // `return` anywhere in the body jumps straight to the terminal HALT.
    for (std::size_t p : returnPatches_) patch(p, end);
    return std::move(out_);
  }

private:
  std::size_t emit(Bc op, std::int32_t arg = 0) {
    out_.code.push_back(BcInstr{op, arg});
    return out_.code.size() - 1;
  }

  void patch(std::size_t at, std::int32_t target) {
    out_.code[at].arg = target;
  }

  std::int32_t here() const { return static_cast<std::int32_t>(out_.code.size()); }

  void emitExpr(ExprId id) {
    const Expr& e = fn_.expr(id);
    switch (e.kind) {
      case ExprKind::Const:
        emit(Bc::ICONST, e.value);
        break;
      case ExprKind::Local:
        emit(Bc::ILOAD, static_cast<std::int32_t>(e.local));
        break;
      case ExprKind::Unary:
        emitExpr(e.lhs);
        emit(Bc::INEG);
        break;
      case ExprKind::Binary: {
        emitExpr(e.lhs);
        emitExpr(e.rhs);
        switch (e.op) {
          case Op::IADD: emit(Bc::IADD); break;
          case Op::ISUB: emit(Bc::ISUB); break;
          case Op::IMUL: emit(Bc::IMUL); break;
          case Op::IAND: emit(Bc::IAND); break;
          case Op::IOR: emit(Bc::IOR); break;
          case Op::IXOR: emit(Bc::IXOR); break;
          case Op::ISHL: emit(Bc::ISHL); break;
          case Op::ISHR: emit(Bc::ISHR); break;
          case Op::IUSHR: emit(Bc::IUSHR); break;
          default: throw Error("lowerToBytecode: bad binary op");
        }
        break;
      }
      case ExprKind::Compare: {
        // Materialize the 0/1 value via a branch, like javac would.
        emitExpr(e.lhs);
        emitExpr(e.rhs);
        const std::size_t branch = emit(branchFor(e.op), 0);
        emit(Bc::ICONST, 0);
        const std::size_t jumpEnd = emit(Bc::GOTO, 0);
        patch(branch, here());
        emit(Bc::ICONST, 1);
        patch(jumpEnd, here());
        break;
      }
      case ExprKind::ArrayLoad:
        emitExpr(e.lhs);
        emitExpr(e.rhs);
        emit(Bc::IALOAD);
        break;
      case ExprKind::LogicalAnd: {
        // Short-circuit: the rhs only runs when the lhs is true.
        const std::size_t lhsFalse = emitCondJumpIfFalse(e.lhs);
        const std::size_t rhsFalse = emitCondJumpIfFalse(e.rhs);
        emit(Bc::ICONST, 1);
        const std::size_t jumpEnd = emit(Bc::GOTO, 0);
        patch(lhsFalse, here());
        patch(rhsFalse, here());
        emit(Bc::ICONST, 0);
        patch(jumpEnd, here());
        break;
      }
      case ExprKind::LogicalOr: {
        // Short-circuit: the rhs only runs when the lhs is false.
        const std::size_t lhsFalse = emitCondJumpIfFalse(e.lhs);
        emit(Bc::ICONST, 1);
        const std::size_t jumpEnd1 = emit(Bc::GOTO, 0);
        patch(lhsFalse, here());
        const std::size_t rhsFalse = emitCondJumpIfFalse(e.rhs);
        emit(Bc::ICONST, 1);
        const std::size_t jumpEnd2 = emit(Bc::GOTO, 0);
        patch(rhsFalse, here());
        emit(Bc::ICONST, 0);
        patch(jumpEnd1, here());
        patch(jumpEnd2, here());
        break;
      }
    }
  }

  static Bc branchFor(Op op) {
    switch (op) {
      case Op::IFEQ: return Bc::IF_ICMPEQ;
      case Op::IFNE: return Bc::IF_ICMPNE;
      case Op::IFLT: return Bc::IF_ICMPLT;
      case Op::IFGE: return Bc::IF_ICMPGE;
      case Op::IFGT: return Bc::IF_ICMPGT;
      case Op::IFLE: return Bc::IF_ICMPLE;
      default: throw Error("lowerToBytecode: bad compare op");
    }
  }

  static Bc invertedBranchFor(Op op) {
    switch (op) {
      case Op::IFEQ: return Bc::IF_ICMPNE;
      case Op::IFNE: return Bc::IF_ICMPEQ;
      case Op::IFLT: return Bc::IF_ICMPGE;
      case Op::IFGE: return Bc::IF_ICMPLT;
      case Op::IFGT: return Bc::IF_ICMPLE;
      case Op::IFLE: return Bc::IF_ICMPGT;
      default: throw Error("lowerToBytecode: bad compare op");
    }
  }

  /// Emits a conditional jump taken when `cond` is FALSE; returns the
  /// instruction index to patch with the jump target.
  std::size_t emitCondJumpIfFalse(ExprId cond) {
    const Expr& e = fn_.expr(cond);
    if (e.kind == ExprKind::Compare) {
      emitExpr(e.lhs);
      emitExpr(e.rhs);
      return emit(invertedBranchFor(e.op), 0);
    }
    // Generic integer condition: false when == 0.
    emitExpr(cond);
    emit(Bc::ICONST, 0);
    return emit(Bc::IF_ICMPEQ, 0);
  }

  void emitStmt(StmtId id) {
    const Stmt& s = fn_.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign:
        emitExpr(s.value);
        emit(Bc::ISTORE, static_cast<std::int32_t>(s.target));
        break;
      case StmtKind::ArrayStore:
        emitExpr(s.handle);
        emitExpr(s.index);
        emitExpr(s.value);
        emit(Bc::IASTORE);
        break;
      case StmtKind::If: {
        const std::size_t skipThen = emitCondJumpIfFalse(s.cond);
        emitStmt(s.thenBlock);
        if (s.elseBlock != kNoStmt) {
          const std::size_t skipElse = emit(Bc::GOTO, 0);
          patch(skipThen, here());
          emitStmt(s.elseBlock);
          patch(skipElse, here());
        } else {
          patch(skipThen, here());
        }
        break;
      }
      case StmtKind::While: {
        const std::int32_t loopTop = here();
        const std::size_t exitJump = emitCondJumpIfFalse(s.cond);
        loops_.push_back(LoopCtx{loopTop, {}});
        emitStmt(s.body);
        emit(Bc::GOTO, loopTop);
        patch(exitJump, here());
        for (std::size_t p : loops_.back().breakPatches) patch(p, here());
        loops_.pop_back();
        break;
      }
      case StmtKind::Call:
        throw Error("lowerToBytecode: inline calls before lowering (" +
                    fn_.name() + ")");
      case StmtKind::Block:
        for (StmtId c : s.stmts) emitStmt(c);
        break;
      case StmtKind::Break:
        if (loops_.empty())
          throw Error("lowerToBytecode: break outside of a loop");
        loops_.back().breakPatches.push_back(emit(Bc::GOTO, 0));
        break;
      case StmtKind::Continue:
        if (loops_.empty())
          throw Error("lowerToBytecode: continue outside of a loop");
        emit(Bc::GOTO, loops_.back().top);
        break;
      case StmtKind::Return:
        if (s.value != kNoExpr) {
          emitExpr(s.value);
          emit(Bc::ISTORE, static_cast<std::int32_t>(s.target));
        }
        returnPatches_.push_back(emit(Bc::GOTO, 0));
        break;
      case StmtKind::Switch: {
        // Dispatch: store the scrutinee once, then a compare chain (the
        // shared scratch local is dead once an arm is entered, so nested
        // switches can reuse it).
        if (switchTemp_ < 0) {
          switchTemp_ = static_cast<std::int32_t>(out_.numLocals);
          ++out_.numLocals;
        }
        emitExpr(s.cond);
        emit(Bc::ISTORE, switchTemp_);
        std::vector<std::size_t> armJumps;
        for (std::int32_t v : s.caseValues) {
          emit(Bc::ILOAD, switchTemp_);
          emit(Bc::ICONST, v);
          armJumps.push_back(emit(Bc::IF_ICMPEQ, 0));
        }
        const std::size_t noMatch = emit(Bc::GOTO, 0);
        std::vector<std::size_t> endJumps;
        for (std::size_t i = 0; i < s.stmts.size(); ++i) {
          patch(armJumps[i], here());
          emitStmt(s.stmts[i]);
          endJumps.push_back(emit(Bc::GOTO, 0));
        }
        patch(noMatch, here());
        if (s.body != kNoStmt) emitStmt(s.body);
        for (std::size_t p : endJumps) patch(p, here());
        break;
      }
    }
  }

  struct LoopCtx {
    std::int32_t top;
    std::vector<std::size_t> breakPatches;
  };

  const Function& fn_;
  BytecodeFunction out_;
  std::vector<LoopCtx> loops_;
  std::vector<std::size_t> returnPatches_;
  std::int32_t switchTemp_ = -1;
};

}  // namespace

BytecodeFunction lowerToBytecode(const Function& fn) {
  fn.validate();
  return Codegen(fn).finish();
}

}  // namespace cgra::kir
