#include "kir/random_kernel.hpp"

#include <set>

#include "support/rng.hpp"

namespace cgra::kir {

namespace {

class Generator {
public:
  Generator(std::uint64_t seed, const RandomKernelOptions& opts)
      : rng_(seed), opts_(opts), b_("random_kernel") {}

  RandomKernel generate() {
    RandomKernel out;

    // Array handle parameters with random contents.
    const std::size_t arraySize = 1ull << opts_.arraySizeLog2;
    for (unsigned a = 0; a < opts_.numArrays; ++a) {
      arrays_.push_back(b_.param("h" + std::to_string(a)));
      std::vector<std::int32_t> contents(arraySize);
      for (auto& v : contents) v = static_cast<std::int32_t>(rng_.range(-64, 64));
      handles_.push_back(out.heap.alloc(std::move(contents)));
    }
    // Integer data parameters.
    for (unsigned d = 0; d < opts_.numDataParams; ++d) {
      const LocalId l = b_.param("d" + std::to_string(d));
      dataLocals_.push_back(l);
      paramValues_.push_back(static_cast<std::int32_t>(rng_.range(-50, 50)));
    }
    // Scratch locals, initialized up front so no read is undefined.
    std::vector<StmtId> init;
    for (unsigned s = 0; s < opts_.numScratchLocals; ++s) {
      const LocalId l = b_.localVar("s" + std::to_string(s));
      dataLocals_.push_back(l);
      init.push_back(b_.assign(
          l, b_.cint(static_cast<std::int32_t>(rng_.range(-20, 20)))));
    }

    std::vector<StmtId> body{b_.block(std::move(init)), genBlock(0)};
    out.fn = b_.finish(b_.block(std::move(body)));

    out.initialLocals.assign(out.fn.numLocals(), 0);
    for (unsigned a = 0; a < opts_.numArrays; ++a)
      out.initialLocals[arrays_[a]] = handles_[a];
    for (unsigned d = 0; d < opts_.numDataParams; ++d)
      out.initialLocals[dataLocals_[d]] = paramValues_[d];
    return out;
  }

private:
  LocalId randomReadable() {
    return dataLocals_[static_cast<std::size_t>(
        rng_.range(0, static_cast<std::int64_t>(dataLocals_.size()) - 1))];
  }

  /// A local that statements may overwrite (never a loop counter).
  LocalId randomWritable() {
    for (int attempts = 0; attempts < 16; ++attempts) {
      const LocalId l = randomReadable();
      if (!reserved_.contains(l)) return l;
    }
    // All data locals reserved (deep nesting): make a fresh one.
    const LocalId l = b_.localVar("w" + std::to_string(freshCounter_++));
    // Fresh locals start at 0 in initialLocals (value irrelevant: it is
    // written before this statement's consumers can observe anything else).
    dataLocals_.push_back(l);
    return l;
  }

  ExprId maskedIndex(ExprId raw) {
    return b_.band(raw, b_.cint(static_cast<std::int32_t>(
                             (1u << opts_.arraySizeLog2) - 1)));
  }

  ExprId genExpr(unsigned depth) {
    if (opts_.irregularConstructs && depth < opts_.maxExprDepth) {
      // Occasional short-circuit operators; every draw here is behind the
      // flag so legacy seeds keep their rng stream.
      const std::int64_t sc = rng_.range(0, 14);
      if (sc == 0) return b_.land(genExpr(depth + 1), genExpr(depth + 1));
      if (sc == 1) return b_.lor(genExpr(depth + 1), genExpr(depth + 1));
    }
    const std::int64_t pick = rng_.range(0, 9);
    if (depth >= opts_.maxExprDepth || pick <= 1)
      return b_.cint(static_cast<std::int32_t>(rng_.range(-30, 30)));
    if (pick <= 4) return b_.use(randomReadable());
    if (pick == 5 && opts_.numArrays > 0) {
      const LocalId h = arrays_[static_cast<std::size_t>(
          rng_.range(0, static_cast<std::int64_t>(arrays_.size()) - 1))];
      return b_.load(b_.use(h), maskedIndex(genExpr(depth + 1)));
    }
    if (pick == 6 && opts_.allowCompareAsValue)
      return b_.cmp(randomCompareOp(), genExpr(depth + 1), genExpr(depth + 1));
    // Binary arithmetic; shifts keep the right operand small.
    switch (rng_.range(0, 6)) {
      case 0: return b_.add(genExpr(depth + 1), genExpr(depth + 1));
      case 1: return b_.sub(genExpr(depth + 1), genExpr(depth + 1));
      case 2: return b_.mul(genExpr(depth + 1), genExpr(depth + 1));
      case 3: return b_.band(genExpr(depth + 1), genExpr(depth + 1));
      case 4: return b_.bor(genExpr(depth + 1), genExpr(depth + 1));
      case 5: return b_.bxor(genExpr(depth + 1), genExpr(depth + 1));
      default:
        return b_.shr(genExpr(depth + 1),
                      b_.cint(static_cast<std::int32_t>(rng_.range(0, 4))));
    }
  }

  Op randomCompareOp() {
    constexpr Op kOps[] = {Op::IFEQ, Op::IFNE, Op::IFLT,
                           Op::IFGE, Op::IFGT, Op::IFLE};
    return kOps[rng_.range(0, 5)];
  }

  StmtId genStmt(unsigned depth) {
    if (opts_.irregularConstructs) {
      const std::int64_t xpick = rng_.range(0, 19);
      if (xpick == 0 && loopDepth_ > 0) return genGuardedExit(StmtKind::Break);
      if (xpick == 1 && loopDepth_ > 0)
        return genGuardedExit(StmtKind::Continue);
      if (xpick == 2) return genGuardedExit(StmtKind::Return);
      if (xpick == 3 && depth < opts_.maxDepth) return genSwitch(depth);
    }
    const std::int64_t pick = rng_.range(0, 9);
    if (depth < opts_.maxDepth && pick == 0) return genCountedLoop(depth);
    if (depth < opts_.maxDepth && pick == 1 && opts_.allowDataDependentLoops)
      return genHalvingLoop(depth);
    if (depth < opts_.maxDepth && pick <= 3) return genIf(depth);
    if (pick == 4 && opts_.numArrays > 0) {
      const LocalId h = arrays_[static_cast<std::size_t>(
          rng_.range(0, static_cast<std::int64_t>(arrays_.size()) - 1))];
      return b_.arrayStore(b_.use(h), maskedIndex(genExpr(1)), genExpr(1));
    }
    return b_.assign(randomWritable(), genExpr(0));
  }

  StmtId genBlock(unsigned depth) {
    std::vector<StmtId> stmts;
    const std::int64_t count = rng_.range(1, opts_.maxStmtsPerBlock);
    for (std::int64_t i = 0; i < count; ++i) stmts.push_back(genStmt(depth));
    return b_.block(std::move(stmts));
  }

  /// `if (cmp) { break; }` (or continue/return) — conditioned so the exit
  /// actually depends on data instead of firing on the first iteration.
  StmtId genGuardedExit(StmtKind kind) {
    const ExprId cond = b_.cmp(randomCompareOp(), genExpr(1), genExpr(1));
    StmtId exit = kNoStmt;
    switch (kind) {
      case StmtKind::Break: exit = b_.breakLoop(); break;
      case StmtKind::Continue: exit = b_.continueLoop(); break;
      default: exit = b_.ret(genExpr(1)); break;
    }
    return b_.ifElse(cond, b_.block({exit}));
  }

  StmtId genSwitch(unsigned depth) {
    // Scrutinee masked to a small range so cases are reachable.
    const ExprId scrut = b_.band(genExpr(1), b_.cint(7));
    const std::int64_t numCases = rng_.range(2, 4);
    std::vector<std::int32_t> values;
    std::vector<StmtId> arms;
    std::set<std::int32_t> used;
    for (std::int64_t c = 0; c < numCases; ++c) {
      const auto v = static_cast<std::int32_t>(rng_.range(0, 7));
      const StmtId arm = genBlock(depth + 1);
      if (!used.insert(v).second) continue;  // duplicate value: drop the arm
      values.push_back(v);
      arms.push_back(arm);
    }
    const StmtId defaultB = rng_.chance(1, 2) ? genBlock(depth + 1) : kNoStmt;
    return b_.switchStmt(scrut, std::move(values), std::move(arms), defaultB);
  }

  StmtId genIf(unsigned depth) {
    const ExprId cond = b_.cmp(randomCompareOp(), genExpr(1), genExpr(1));
    const StmtId thenB = genBlock(depth + 1);
    if (rng_.chance(1, 2)) return b_.ifElse(cond, thenB, genBlock(depth + 1));
    return b_.ifElse(cond, thenB);
  }

  StmtId genCountedLoop(unsigned depth) {
    // Dedicated counter: nothing inside may write it.
    const LocalId counter = b_.localVar("lc" + std::to_string(freshCounter_++));
    reserved_.insert(counter);
    dataLocals_.push_back(counter);
    const std::int32_t trip =
        static_cast<std::int32_t>(rng_.range(1, opts_.maxLoopTrip));
    const StmtId init = b_.assign(counter, b_.cint(0));
    ++loopDepth_;
    const StmtId inner = genBlock(depth + 1);
    --loopDepth_;
    const StmtId step = b_.assign(counter, b_.add(b_.use(counter), b_.cint(1)));
    // With irregular constructs the step leads the body so a continue can
    // never skip it (and loop forever).
    const StmtId body = opts_.irregularConstructs
                            ? b_.block({step, inner})
                            : b_.block({inner, step});
    const StmtId loop =
        b_.whileLoop(b_.lt(b_.use(counter), b_.cint(trip)), body);
    reserved_.erase(counter);
    return b_.block({init, loop});
  }

  StmtId genHalvingLoop(unsigned depth) {
    // g = expr & 63; while (g > 0) { body; g = g >> 1; } — terminates in at
    // most 6 iterations with a data-dependent trip count.
    const LocalId g = b_.localVar("g" + std::to_string(freshCounter_++));
    reserved_.insert(g);
    dataLocals_.push_back(g);
    const StmtId init = b_.assign(g, b_.band(genExpr(1), b_.cint(63)));
    ++loopDepth_;
    const StmtId inner = genBlock(depth + 1);
    --loopDepth_;
    const StmtId step = b_.assign(g, b_.shr(b_.use(g), b_.cint(1)));
    const StmtId body = opts_.irregularConstructs ? b_.block({step, inner})
                                                  : b_.block({inner, step});
    const StmtId loop = b_.whileLoop(b_.gt(b_.use(g), b_.cint(0)), body);
    reserved_.erase(g);
    return b_.block({init, loop});
  }

  Rng rng_;
  const RandomKernelOptions& opts_;
  FunctionBuilder b_;
  std::vector<LocalId> arrays_;
  std::vector<Handle> handles_;
  std::vector<LocalId> dataLocals_;
  std::vector<std::int32_t> paramValues_;
  std::set<LocalId> reserved_;
  unsigned freshCounter_ = 0;
  unsigned loopDepth_ = 0;
};

}  // namespace

RandomKernel generateRandomKernel(std::uint64_t seed,
                                  const RandomKernelOptions& opts) {
  return Generator(seed, opts).generate();
}

}  // namespace cgra::kir
