// Kernel IR: the frontend language of the reproduction.
//
// The paper's frontend is Java bytecode captured by the AMIDAR profiler and
// turned into an instruction graph (Fig. 1). We substitute a small
// structured imperative IR with the same expressive range the scheduler
// needs — assignments, if/else, while/for with data-dependent bounds, array
// load/store through handles, calls (for the method-inlining pass), and the
// irregular control-flow constructs real kernels use: break/continue/return,
// short-circuit && and ||, and switch. The irregular constructs are source
// conveniences: the frontend pipeline (kir/passes/pipeline.hpp) normalizes
// them into plain structured if/while form before CDFG lowering, which
// rejects them.
// Kernels written in KIR are lowered both to the CDFG (CGRA path) and to
// baseline stack bytecode (AMIDAR path), so speedups compare the same
// program.
//
// Expressions and statements live in per-function arenas and are referenced
// by index; `Function` owns everything. `FunctionBuilder` offers a concise
// construction API used by the bundled applications and tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/operation.hpp"
#include "support/assert.hpp"

namespace cgra::kir {

using ExprId = std::uint32_t;
using StmtId = std::uint32_t;
using LocalId = std::uint32_t;
using FuncId = std::uint32_t;

inline constexpr ExprId kNoExpr = static_cast<ExprId>(-1);
inline constexpr StmtId kNoStmt = static_cast<StmtId>(-1);

/// Expression node kinds.
enum class ExprKind : std::uint8_t {
  Const,       ///< 32-bit immediate
  Local,       ///< read of a local variable
  Binary,      ///< op(lhs, rhs) with op an arithmetic/logic Op
  Unary,       ///< op(lhs) — INEG
  Compare,     ///< comparison producing 0/1 (op is an IF* Op)
  ArrayLoad,   ///< heap[lhs (handle)][rhs (index)]
  LogicalAnd,  ///< lhs && rhs — short-circuit: rhs evaluated only if lhs != 0
  LogicalOr,   ///< lhs || rhs — short-circuit: rhs evaluated only if lhs == 0
};

struct Expr {
  ExprKind kind = ExprKind::Const;
  Op op = Op::IADD;      ///< Binary/Unary/Compare
  std::int32_t value = 0;  ///< Const
  LocalId local = 0;       ///< Local
  ExprId lhs = kNoExpr;
  ExprId rhs = kNoExpr;
};

/// Statement node kinds.
enum class StmtKind : std::uint8_t {
  Assign,      ///< locals[target] = value
  ArrayStore,  ///< heap[handle][index] = value
  If,          ///< if (cond) thenBlock else elseBlock
  While,       ///< while (cond) body
  Call,        ///< locals[target] = callee(args...)
  Block,       ///< statement sequence
  Break,       ///< exit the innermost enclosing loop
  Continue,    ///< jump to the innermost enclosing loop's next condition check
  Return,      ///< exit the function; `value` (optional) assigns `target`
               ///< (the local named "result") before leaving
  Switch,      ///< structured switch on `cond`: caseValues[i] selects
               ///< stmts[i]; `body` is the optional default arm. Arms are
               ///< blocks — no fall-through. break/continue inside an arm
               ///< bind to the enclosing *loop*, never to the switch.
};

struct Stmt {
  StmtKind kind = StmtKind::Block;
  LocalId target = 0;                ///< Assign / Call / Return (with value)
  ExprId value = kNoExpr;            ///< Assign / ArrayStore / Return
  ExprId handle = kNoExpr;           ///< ArrayStore
  ExprId index = kNoExpr;            ///< ArrayStore
  ExprId cond = kNoExpr;             ///< If / While / Switch (scrutinee)
  StmtId thenBlock = kNoStmt;        ///< If
  StmtId elseBlock = kNoStmt;        ///< If (may be kNoStmt)
  StmtId body = kNoStmt;             ///< While / Switch default (may be kNoStmt)
  FuncId callee = 0;                 ///< Call
  std::vector<ExprId> args;          ///< Call
  std::vector<StmtId> stmts;         ///< Block / Switch case arms
  std::vector<std::int32_t> caseValues;  ///< Switch (parallel to stmts)
};

/// A local variable declaration.
struct LocalDecl {
  std::string name;
  bool isParameter = false;  ///< transferred in from the host (live-in)
};

/// One kernel function.
class Function {
public:
  Function() = default;
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  LocalId addLocal(std::string name, bool isParameter = false);
  const LocalDecl& local(LocalId id) const;
  std::size_t numLocals() const { return locals_.size(); }
  /// Resolves a local by name; throws cgra::Error when absent.
  LocalId localByName(const std::string& name) const;

  ExprId addExpr(Expr e);
  const Expr& expr(ExprId id) const;
  std::size_t numExprs() const { return exprs_.size(); }

  StmtId addStmt(Stmt s);
  const Stmt& stmt(StmtId id) const;
  Stmt& stmt(StmtId id);
  std::size_t numStmts() const { return stmts_.size(); }

  StmtId body() const { return body_; }
  void setBody(StmtId b) { body_ = b; }

  /// Structural checks (ids in range, If/While conditions present, Block
  /// children valid); throws cgra::Error.
  void validate() const;

  /// Pretty-prints as pseudo-C (tests and docs).
  std::string toString() const;

  /// Locals read before any write on some path (must be provided by host).
  std::vector<LocalId> liveInLocals() const;
  /// Locals possibly written (must be copied back to the host).
  std::vector<LocalId> liveOutLocals() const;

private:
  std::string name_;
  std::vector<LocalDecl> locals_;
  std::vector<Expr> exprs_;
  std::vector<Stmt> stmts_;
  StmtId body_ = kNoStmt;
};

/// Returns a human-readable name of the first irregular control-flow
/// construct (break/continue/return/switch/&&/||) found in `fn`, or nullptr
/// when the function is fully structured. CDFG lowering only accepts
/// functions for which this returns nullptr; the frontend pipeline
/// (kir/passes/pipeline.hpp) establishes that invariant.
const char* firstIrregularConstruct(const Function& fn);

/// A program: functions referenced by Call statements.
class Program {
public:
  FuncId addFunction(Function f);
  const Function& function(FuncId id) const;
  Function& function(FuncId id);
  std::size_t numFunctions() const { return funcs_.size(); }
  FuncId functionByName(const std::string& name) const;

private:
  std::vector<Function> funcs_;
};

/// Fluent construction helper for kernels.
///
///   FunctionBuilder b("saxpy");
///   auto n = b.param("n"); auto a = b.param("a"); ...
///   b.loopFor(i, b.cint(0), b.lt(b.use(i), b.use(n)), ... );
class FunctionBuilder {
public:
  explicit FunctionBuilder(std::string name) : fn_(std::move(name)) {}

  // Locals.
  LocalId param(const std::string& name) { return fn_.addLocal(name, true); }
  LocalId localVar(const std::string& name) { return fn_.addLocal(name, false); }

  // Expressions.
  ExprId cint(std::int32_t v);
  ExprId use(LocalId l);
  ExprId bin(Op op, ExprId a, ExprId b);
  ExprId add(ExprId a, ExprId b) { return bin(Op::IADD, a, b); }
  ExprId sub(ExprId a, ExprId b) { return bin(Op::ISUB, a, b); }
  ExprId mul(ExprId a, ExprId b) { return bin(Op::IMUL, a, b); }
  ExprId band(ExprId a, ExprId b) { return bin(Op::IAND, a, b); }
  ExprId bor(ExprId a, ExprId b) { return bin(Op::IOR, a, b); }
  ExprId bxor(ExprId a, ExprId b) { return bin(Op::IXOR, a, b); }
  ExprId shl(ExprId a, ExprId b) { return bin(Op::ISHL, a, b); }
  ExprId shr(ExprId a, ExprId b) { return bin(Op::ISHR, a, b); }
  ExprId ushr(ExprId a, ExprId b) { return bin(Op::IUSHR, a, b); }
  ExprId neg(ExprId a);
  ExprId cmp(Op op, ExprId a, ExprId b);
  ExprId eq(ExprId a, ExprId b) { return cmp(Op::IFEQ, a, b); }
  ExprId ne(ExprId a, ExprId b) { return cmp(Op::IFNE, a, b); }
  ExprId lt(ExprId a, ExprId b) { return cmp(Op::IFLT, a, b); }
  ExprId ge(ExprId a, ExprId b) { return cmp(Op::IFGE, a, b); }
  ExprId gt(ExprId a, ExprId b) { return cmp(Op::IFGT, a, b); }
  ExprId le(ExprId a, ExprId b) { return cmp(Op::IFLE, a, b); }
  ExprId load(ExprId handle, ExprId index);
  /// Short-circuit logical operators (normalized away by the frontend
  /// pipeline before CDFG lowering).
  ExprId land(ExprId a, ExprId b);
  ExprId lor(ExprId a, ExprId b);

  // Statements (return the StmtId; compose with block()).
  StmtId assign(LocalId target, ExprId value);
  StmtId arrayStore(ExprId handle, ExprId index, ExprId value);
  StmtId ifElse(ExprId cond, StmtId thenB, StmtId elseB = kNoStmt);
  StmtId whileLoop(ExprId cond, StmtId body);
  /// for (init; cond; step) body — sugar: block{init, while(cond){body, step}}.
  StmtId forLoop(StmtId init, ExprId cond, StmtId step, StmtId body);
  StmtId call(LocalId target, FuncId callee, std::vector<ExprId> args);
  StmtId block(std::vector<StmtId> stmts);
  StmtId breakLoop();
  StmtId continueLoop();
  /// `return;` (no value) or `return value;` — the latter assigns the local
  /// named "result", creating it on first use.
  StmtId ret(ExprId value = kNoExpr);
  /// switch (scrutinee) { case values[i]: blocks[i] ... default: defaultB }.
  /// `values` and `blocks` are parallel; values must be distinct.
  StmtId switchStmt(ExprId scrutinee, std::vector<std::int32_t> values,
                    std::vector<StmtId> blocks, StmtId defaultB = kNoStmt);

  /// Sets the body and returns the finished function.
  Function finish(StmtId body);

  Function& fn() { return fn_; }

private:
  Function fn_;
};

}  // namespace cgra::kir
