#include "kir/lower_cdfg.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace cgra::kir {

namespace {

/// Per-variable dataflow state along one lowering path.
struct VarState {
  std::vector<NodeId> defs;     ///< pWRITEs that may define the current value
  std::vector<NodeId> readers;  ///< consumers since the last write
};

/// Per-alias-class heap state along one lowering path.
struct MemState {
  std::vector<NodeId> lastStores;
  std::vector<NodeId> loadsSinceStore;
};

void mergeInto(std::vector<NodeId>& into, const std::vector<NodeId>& from) {
  for (NodeId n : from)
    if (std::find(into.begin(), into.end(), n) == into.end()) into.push_back(n);
}

class Lowering {
public:
  explicit Lowering(const Function& fn) : fn_(fn) {}

  LoweringResult run() {
    fn_.validate();
    if (const char* c = firstIrregularConstruct(fn_))
      throw Error("lowerToCdfg: function '" + fn_.name() + "' contains " +
                  std::string(c) +
                  " — run the frontend normalization pipeline first");

    // Variables for all locals.
    const auto liveIns = fn_.liveInLocals();
    const auto liveOuts = fn_.liveOutLocals();
    for (LocalId l = 0; l < fn_.numLocals(); ++l) {
      Variable v;
      v.name = fn_.local(l).name;
      v.liveIn = std::find(liveIns.begin(), liveIns.end(), l) != liveIns.end();
      v.liveOut =
          std::find(liveOuts.begin(), liveOuts.end(), l) != liveOuts.end();
      localToVar_.push_back(g_.addVariable(v));
    }
    varStates_.resize(fn_.numLocals());

    decideAliasClasses();
    memStates_.resize(numAliasClasses_);

    lowerStmt(fn_.body());

    g_.validate();
    return LoweringResult{std::move(g_), std::move(localToVar_)};
  }

private:
  // -- alias analysis -------------------------------------------------------

  /// Handle-based disambiguation: when every array access uses a plain read
  /// of a never-written parameter as handle, each such parameter is its own
  /// alias class (KIR arrays are distinct objects per handle parameter);
  /// otherwise everything shares class 0.
  void decideAliasClasses() {
    bool simple = true;
    std::set<LocalId> writtenLocals;
    std::function<void(StmtId)> scanWrites = [&](StmtId id) {
      const Stmt& s = fn_.stmt(id);
      switch (s.kind) {
        case StmtKind::Assign: writtenLocals.insert(s.target); break;
        case StmtKind::If:
          scanWrites(s.thenBlock);
          if (s.elseBlock != kNoStmt) scanWrites(s.elseBlock);
          break;
        case StmtKind::While: scanWrites(s.body); break;
        case StmtKind::Block:
          for (StmtId c : s.stmts) scanWrites(c);
          break;
        default: break;
      }
    };
    scanWrites(fn_.body());

    std::set<LocalId> handleLocals;
    std::function<void(ExprId)> scanExpr = [&](ExprId id) {
      const Expr& e = fn_.expr(id);
      if (e.kind == ExprKind::ArrayLoad) {
        const Expr& h = fn_.expr(e.lhs);
        if (h.kind == ExprKind::Local && fn_.local(h.local).isParameter &&
            !writtenLocals.contains(h.local))
          handleLocals.insert(h.local);
        else
          simple = false;
      }
      if (e.lhs != kNoExpr) scanExpr(e.lhs);
      if (e.rhs != kNoExpr) scanExpr(e.rhs);
    };
    std::function<void(StmtId)> scanStmt = [&](StmtId id) {
      const Stmt& s = fn_.stmt(id);
      switch (s.kind) {
        case StmtKind::Assign: scanExpr(s.value); break;
        case StmtKind::ArrayStore: {
          const Expr& h = fn_.expr(s.handle);
          if (h.kind == ExprKind::Local && fn_.local(h.local).isParameter &&
              !writtenLocals.contains(h.local))
            handleLocals.insert(h.local);
          else
            simple = false;
          scanExpr(s.handle);
          scanExpr(s.index);
          scanExpr(s.value);
          break;
        }
        case StmtKind::If:
          scanExpr(s.cond);
          scanStmt(s.thenBlock);
          if (s.elseBlock != kNoStmt) scanStmt(s.elseBlock);
          break;
        case StmtKind::While:
          scanExpr(s.cond);
          scanStmt(s.body);
          break;
        case StmtKind::Block:
          for (StmtId c : s.stmts) scanStmt(c);
          break;
        default: break;
      }
    };
    scanStmt(fn_.body());

    if (simple) {
      unsigned next = 0;
      for (LocalId l : handleLocals) handleToClass_[l] = next++;
      numAliasClasses_ = std::max(1u, next);
    } else {
      handleToClass_.clear();
      numAliasClasses_ = 1;
    }
    aliasSimple_ = simple;
  }

  unsigned aliasClassFor(ExprId handleExpr) const {
    if (!aliasSimple_) return 0;
    const Expr& h = fn_.expr(handleExpr);
    CGRA_ASSERT(h.kind == ExprKind::Local);
    const auto it = handleToClass_.find(h.local);
    CGRA_ASSERT(it != handleToClass_.end());
    return it->second;
  }

  // -- node creation helpers ------------------------------------------------

  /// Wires operand dependencies for a freshly created node: Flow edges from
  /// producing nodes / all possible variable definitions, reader
  /// registration for Anti edges.
  void wireOperands(NodeId id) {
    const Node& n = g_.node(id);
    for (const Operand& o : n.operands) {
      switch (o.kind()) {
        case Operand::Kind::Node:
          g_.addEdge(o.nodeId(), id, DepKind::Flow);
          break;
        case Operand::Kind::Variable: {
          VarState& vs = varStates_[o.varId()];
          for (NodeId def : vs.defs) g_.addEdge(def, id, DepKind::Flow);
          if (std::find(vs.readers.begin(), vs.readers.end(), id) ==
              vs.readers.end())
            vs.readers.push_back(id);
          break;
        }
        case Operand::Kind::Immediate:
          break;
      }
    }
  }

  /// Control edges from every literal of the node's condition.
  void wireCondition(NodeId id) {
    for (const auto& [statusNode, pol] :
         g_.conditionLiterals(g_.node(id).cond)) {
      (void)pol;
      g_.addEdge(statusNode, id, DepKind::Control);
    }
  }

  NodeId makeOperation(Op op, std::vector<Operand> operands, CondId cond,
                       std::string label = {}) {
    Node n;
    n.kind = NodeKind::Operation;
    n.op = op;
    n.operands = std::move(operands);
    // Plain ALU operations execute speculatively on every path (§V-B) and
    // carry no condition; only memory operations are predicated (§V-D).
    n.cond = isMemoryOp(op) ? cond : kCondTrue;
    n.loop = curLoop_;
    n.label = std::move(label);
    const NodeId id = g_.addNode(std::move(n));
    wireOperands(id);
    wireCondition(id);
    return id;
  }

  NodeId makePWrite(VarId var, Operand value, std::string label = {}) {
    Node n;
    n.kind = NodeKind::PWrite;
    n.var = var;
    n.operands = {value};
    n.cond = curCond_;
    n.loop = curLoop_;
    n.label = std::move(label);
    const NodeId id = g_.addNode(std::move(n));
    wireOperands(id);
    wireCondition(id);

    VarState& vs = varStates_[var];
    for (NodeId reader : vs.readers)
      if (reader != id) g_.addEdge(reader, id, DepKind::Anti);
    for (NodeId def : vs.defs) g_.addEdge(def, id, DepKind::Output);
    vs.defs = {id};
    vs.readers.clear();
    return id;
  }

  // -- expression lowering ---------------------------------------------------

  Operand lowerExpr(ExprId id) {
    const Expr& e = fn_.expr(id);
    switch (e.kind) {
      case ExprKind::Const:
        return Operand::immediate(e.value);
      case ExprKind::Local:
        return Operand::variable(localToVar_[e.local]);
      case ExprKind::Unary: {
        const Operand a = lowerExpr(e.lhs);
        return Operand::node(
            makeOperation(Op::INEG, {a}, curCond_));
      }
      case ExprKind::Binary: {
        const Operand a = lowerExpr(e.lhs);
        const Operand b = lowerExpr(e.rhs);
        return Operand::node(makeOperation(e.op, {a, b}, curCond_));
      }
      case ExprKind::Compare: {
        // Value position: materialize 0/1 through a predicated write
        // (the CGRA's comparison result is a status bit, not a word).
        Variable tmp;
        tmp.name = "$cmp" + std::to_string(tempCounter_++);
        const VarId tv = g_.addVariable(tmp);
        varStates_.emplace_back();
        makePWrite(tv, Operand::immediate(0), tmp.name + "=0");
        const NodeId status = lowerCompare(id);
        const CondId saved = curCond_;
        curCond_ = g_.makeCondition(saved, status, true);
        makePWrite(tv, Operand::immediate(1), tmp.name + "=1");
        curCond_ = saved;
        // Both writes may define the value (they are ordered by the Output
        // edge, so the predicated one wins when its condition holds).
        return Operand::variable(tv);
      }
      case ExprKind::ArrayLoad: {
        const Operand handle = lowerExpr(e.lhs);
        const Operand index = lowerExpr(e.rhs);
        const unsigned cls = aliasClassFor(e.lhs);
        const NodeId load =
            makeOperation(Op::DMA_LOAD, {handle, index}, curCond_);
        MemState& ms = memStates_[cls];
        for (NodeId st : ms.lastStores) g_.addEdge(st, load, DepKind::Flow);
        ms.loadsSinceStore.push_back(load);
        return Operand::node(load);
      }
      case ExprKind::LogicalAnd:
      case ExprKind::LogicalOr:
        // Unreachable behind the run() normalization check; kept for
        // exhaustiveness.
        throw Error("lowerToCdfg: short-circuit operator not normalized (" +
                    fn_.name() + ")");
    }
    CGRA_UNREACHABLE("bad expr kind");
  }

  /// Lowers a condition expression to a comparison node (status producer).
  NodeId lowerCompare(ExprId id) {
    const Expr& e = fn_.expr(id);
    if (e.kind == ExprKind::Compare) {
      const Operand a = lowerExpr(e.lhs);
      const Operand b = lowerExpr(e.rhs);
      return makeOperation(e.op, {a, b}, curCond_);
    }
    // Generic integer condition: true when != 0.
    const Operand v = lowerExpr(id);
    return makeOperation(Op::IFNE, {v, Operand::immediate(0)}, curCond_);
  }

  // -- statement lowering -----------------------------------------------------

  void lowerStmt(StmtId id) {
    const Stmt& s = fn_.stmt(id);
    switch (s.kind) {
      case StmtKind::Assign: {
        const Operand v = lowerExpr(s.value);
        makePWrite(localToVar_[s.target], v,
                   fn_.local(s.target).name + "=");
        break;
      }
      case StmtKind::ArrayStore: {
        const Operand handle = lowerExpr(s.handle);
        const Operand index = lowerExpr(s.index);
        const Operand value = lowerExpr(s.value);
        const unsigned cls = aliasClassFor(s.handle);
        const NodeId store =
            makeOperation(Op::DMA_STORE, {handle, index, value}, curCond_);
        MemState& ms = memStates_[cls];
        for (NodeId ld : ms.loadsSinceStore)
          g_.addEdge(ld, store, DepKind::Anti);
        for (NodeId st : ms.lastStores) g_.addEdge(st, store, DepKind::Output);
        ms.lastStores = {store};
        ms.loadsSinceStore.clear();
        break;
      }
      case StmtKind::If: {
        const NodeId status = lowerCompare(s.cond);
        const CondId saved = curCond_;
        const auto savedVars = varStates_;
        const auto savedMem = memStates_;

        curCond_ = g_.makeCondition(saved, status, true);
        lowerStmt(s.thenBlock);
        auto thenVars = varStates_;
        const auto thenMem = memStates_;

        // Arms may create fresh temp variables (compare-in-value-position),
        // so the state vectors must be re-aligned to the variable count
        // before restoring/merging.
        varStates_ = savedVars;
        varStates_.resize(g_.numVariables());
        memStates_ = savedMem;
        if (s.elseBlock != kNoStmt) {
          curCond_ = g_.makeCondition(saved, status, false);
          lowerStmt(s.elseBlock);
        }
        // Merge: either arm may have committed.
        varStates_.resize(g_.numVariables());
        thenVars.resize(g_.numVariables());
        for (std::size_t v = 0; v < varStates_.size(); ++v) {
          mergeInto(varStates_[v].defs, thenVars[v].defs);
          mergeInto(varStates_[v].readers, thenVars[v].readers);
        }
        for (std::size_t c = 0; c < memStates_.size(); ++c) {
          mergeInto(memStates_[c].lastStores, thenMem[c].lastStores);
          mergeInto(memStates_[c].loadsSinceStore, thenMem[c].loadsSinceStore);
        }
        curCond_ = saved;
        break;
      }
      case StmtKind::While: {
        const CondId entryCond = curCond_;
        Loop loop;
        loop.parent = curLoop_;
        loop.entryCond = entryCond;
        loop.label = "while#" + std::to_string(g_.numLoops());
        const LoopId l = g_.addLoop(loop);

        const LoopId savedLoop = curLoop_;
        curLoop_ = l;
        // The controlling comparison is re-evaluated every iteration and
        // belongs to the loop.
        const NodeId status = lowerCompare(s.cond);
        const CondId bodyCond = g_.makeCondition(entryCond, status, true);
        // Patch the loop record now that its pieces exist.
        g_.loop(l).controllingNode = status;
        g_.loop(l).continueWhen = true;
        g_.loop(l).bodyCond = bodyCond;

        auto preVars = varStates_;
        const auto preMem = memStates_;
        curCond_ = bodyCond;
        lowerStmt(s.body);
        // Merge pre-loop state (zero committed iterations possible); the
        // body may have created fresh temp variables, so re-align first.
        varStates_.resize(g_.numVariables());
        preVars.resize(g_.numVariables());
        for (std::size_t v = 0; v < varStates_.size(); ++v) {
          mergeInto(varStates_[v].defs, preVars[v].defs);
          mergeInto(varStates_[v].readers, preVars[v].readers);
        }
        for (std::size_t c = 0; c < memStates_.size(); ++c) {
          mergeInto(memStates_[c].lastStores, preMem[c].lastStores);
          mergeInto(memStates_[c].loadsSinceStore, preMem[c].loadsSinceStore);
        }
        curCond_ = entryCond;
        curLoop_ = savedLoop;
        break;
      }
      case StmtKind::Call:
        throw Error("lowerToCdfg: inline calls before lowering (" +
                    fn_.name() + ")");
      case StmtKind::Block:
        for (StmtId c : s.stmts) lowerStmt(c);
        break;
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Return:
      case StmtKind::Switch:
        // Unreachable behind the run() normalization check; kept for
        // exhaustiveness.
        throw Error("lowerToCdfg: irregular control flow not normalized (" +
                    fn_.name() + ")");
    }
  }

  const Function& fn_;
  Cdfg g_;
  std::vector<VarId> localToVar_;
  std::vector<VarState> varStates_;
  std::vector<MemState> memStates_;
  std::map<LocalId, unsigned> handleToClass_;
  unsigned numAliasClasses_ = 1;
  bool aliasSimple_ = true;
  CondId curCond_ = kCondTrue;
  LoopId curLoop_ = kRootLoop;
  unsigned tempCounter_ = 0;
};

}  // namespace

LoweringResult lowerToCdfg(const Function& fn) { return Lowering(fn).run(); }

}  // namespace cgra::kir
