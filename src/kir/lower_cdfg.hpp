// Lowers a (call-free) KIR function to the scheduler's CDFG — the "build
// instruction graph / annotate dependencies and operand src/dest" steps of
// the paper's synthesis flow (Fig. 1).
//
// Highlights of the translation:
//  * Every KIR local becomes a CDFG Variable; every assignment becomes a
//    pWRITE predicated on the lowering-time path condition (§V-B: no phi
//    nodes — wrong-path results are dismissed by predication).
//  * if/else arms are both lowered (speculation); their commits carry
//    conditions parent ∧ literal built from the arm's comparison node.
//  * while loops become Loop-tree entries whose controlling comparison is
//    re-evaluated inside the loop; body commits are predicated on
//    entry-condition ∧ continue-literal, giving the "dry final pass"
//    execution model described in DESIGN.md.
//  * Dependency edges are annotated per variable (Flow from possible
//    definitions, Anti from readers to the next write, Output between
//    same-path writes) and per heap alias class (handle-based
//    disambiguation, conservative fallback to one class).
//  * Array accesses lower to DMA_LOAD / DMA_STORE nodes that are always
//    predicated (§V-D).
#pragma once

#include "cdfg/cdfg.hpp"
#include "kir/kir.hpp"

namespace cgra::kir {

/// Lowering output: the graph plus the KIR-local → CDFG-variable map
/// (index-aligned: localToVar[i] is the variable for local i).
struct LoweringResult {
  Cdfg graph;
  std::vector<VarId> localToVar;
};

/// Lowers `fn`; throws cgra::Error on Call statements (inline first), on
/// irregular control flow — break/continue/return/switch/short-circuit
/// operators must have been normalized away by the frontend pipeline
/// (kir/passes/pipeline.hpp) — or on malformed functions. The result graph
/// passes Cdfg::validate().
LoweringResult lowerToCdfg(const Function& fn);

}  // namespace cgra::kir
