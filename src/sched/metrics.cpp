#include "sched/metrics.hpp"

namespace cgra {

void SchedulerMetrics::merge(const SchedulerMetrics& other) {
  nodesScheduled += other.nodesScheduled;
  copiesInserted += other.copiesInserted;
  constsInserted += other.constsInserted;
  fusedWrites += other.fusedWrites;
  cboxOps += other.cboxOps;
  branches += other.branches;
  steps += other.steps;
  candidateIterations += other.candidateIterations;
  placementAttempts += other.placementAttempts;
  backtracks += other.backtracks;
  setupMs += other.setupMs;
  planMs += other.planMs;
  finalizeMs += other.finalizeMs;
  totalMs += other.totalMs;
  runs += other.runs;
}

json::Value SchedulerMetrics::toJson() const {
  json::Object o;
  o["nodesScheduled"] = nodesScheduled;
  o["copiesInserted"] = copiesInserted;
  o["constsInserted"] = constsInserted;
  o["fusedWrites"] = fusedWrites;
  o["cboxOps"] = cboxOps;
  o["branches"] = branches;
  o["steps"] = steps;
  o["candidateIterations"] = candidateIterations;
  o["placementAttempts"] = placementAttempts;
  o["backtracks"] = backtracks;
  o["setupMs"] = setupMs;
  o["planMs"] = planMs;
  o["finalizeMs"] = finalizeMs;
  o["totalMs"] = totalMs;
  o["runs"] = runs;
  return o;
}

}  // namespace cgra
