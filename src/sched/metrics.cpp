#include "sched/metrics.hpp"

#include <algorithm>

namespace cgra {

void SchedulerMetrics::merge(const SchedulerMetrics& other) {
  nodesScheduled += other.nodesScheduled;
  copiesInserted += other.copiesInserted;
  constsInserted += other.constsInserted;
  fusedWrites += other.fusedWrites;
  cboxOps += other.cboxOps;
  branches += other.branches;
  steps += other.steps;
  candidateIterations += other.candidateIterations;
  placementAttempts += other.placementAttempts;
  probeRejections += other.probeRejections;
  setupMs += other.setupMs;
  planMs += other.planMs;
  finalizeMs += other.finalizeMs;
  totalMs += other.totalMs;
  loopCloseMs += other.loopCloseMs;
  placementMs += other.placementMs;
  passAnalysisMs += other.passAnalysisMs;
  passCandidateMs += other.passCandidateMs;
  passCostModelMs += other.passCostModelMs;
  passPlacementMs += other.passPlacementMs;
  passRoutingMs += other.passRoutingMs;
  passFusingMs += other.passFusingMs;
  passCboxMs += other.passCboxMs;
  passLoopMs += other.passLoopMs;
  passFinalizeMs += other.passFinalizeMs;
  runs += other.runs;
}

json::Value SchedulerMetrics::toJson(bool includeTimings) const {
  json::Object o;
  o["nodesScheduled"] = nodesScheduled;
  o["copiesInserted"] = copiesInserted;
  o["constsInserted"] = constsInserted;
  o["fusedWrites"] = fusedWrites;
  o["cboxOps"] = cboxOps;
  o["branches"] = branches;
  o["steps"] = steps;
  o["candidateIterations"] = candidateIterations;
  o["placementAttempts"] = placementAttempts;
  o["probeRejections"] = probeRejections;
  if (includeTimings) {
    o["setupMs"] = setupMs;
    o["planMs"] = planMs;
    o["finalizeMs"] = finalizeMs;
    o["totalMs"] = totalMs;
    o["loopCloseMs"] = loopCloseMs;
    o["placementMs"] = placementMs;
    o["passAnalysisMs"] = passAnalysisMs;
    o["passCandidateMs"] = passCandidateMs;
    o["passCostModelMs"] = passCostModelMs;
    o["passPlacementMs"] = passPlacementMs;
    o["passRoutingMs"] = passRoutingMs;
    o["passFusingMs"] = passFusingMs;
    o["passCboxMs"] = passCboxMs;
    o["passLoopMs"] = passLoopMs;
    o["passFinalizeMs"] = passFinalizeMs;
  }
  o["runs"] = runs;
  return json::sortKeys(json::Value(std::move(o)));
}

ScheduleQuality computeScheduleQuality(const Schedule& sched,
                                       const Composition& comp,
                                       const ScheduleStats* stats) {
  ScheduleQuality q;
  q.length = sched.length;
  q.numPEs = comp.numPEs();
  q.cboxSlotsUsed = sched.cboxSlotsUsed;

  q.perPE.resize(comp.numPEs());
  for (PEId p = 0; p < comp.numPEs(); ++p) q.perPE[p].pe = p;

  // Per-PE busy masks and per-context issue occupancy in one pass.
  std::vector<std::vector<std::uint8_t>> busy(comp.numPEs());
  for (auto& b : busy) b.assign(std::max(1u, sched.length), 0);
  std::vector<std::uint8_t> ctxIssues(std::max(1u, sched.length), 0);
  std::vector<unsigned> lastCycle(comp.numPEs(), 0);
  std::vector<std::uint8_t> hasOps(comp.numPEs(), 0);
  for (const ScheduledOp& op : sched.ops) {
    PEQuality& pq = q.perPE[op.pe];
    ++pq.opsIssued;
    ++q.totalOps;
    if (op.node == kNoNode) {
      ++pq.insertedOps;
      ++q.insertedOps;
    }
    ctxIssues[op.start] = 1;
    for (unsigned c = op.start; c <= op.lastCycle(); ++c) busy[op.pe][c] = 1;
    hasOps[op.pe] = 1;
    lastCycle[op.pe] = std::max(lastCycle[op.pe], op.lastCycle());
  }

  double utilSum = 0.0;
  for (PEId p = 0; p < comp.numPEs(); ++p) {
    PEQuality& pq = q.perPE[p];
    for (unsigned c = 0; c < sched.length; ++c) pq.busyCycles += busy[p][c];
    pq.utilization =
        sched.length > 0 ? static_cast<double>(pq.busyCycles) / sched.length
                         : 0.0;
    pq.slack = hasOps[p] ? sched.length - 1 - lastCycle[p] : sched.length;
    utilSum += pq.utilization;
  }
  q.staticUtilization = comp.numPEs() > 0 ? utilSum / comp.numPEs() : 0.0;

  unsigned occupied = 0;
  for (unsigned c = 0; c < sched.length; ++c) occupied += ctxIssues[c];
  q.contextOccupancy =
      sched.length > 0 ? static_cast<double>(occupied) / sched.length : 0.0;

  std::vector<std::uint8_t> cboxBusy(std::max(1u, sched.length), 0);
  for (const CBoxOp& cb : sched.cboxOps) cboxBusy[cb.time] = 1;
  for (unsigned c = 0; c < sched.length; ++c) q.cboxBusyCycles += cboxBusy[c];

  if (stats) q.fusedWrites = stats->fusedWrites;
  if (q.totalOps > 0) {
    q.copyRatio = static_cast<double>(q.insertedOps) / q.totalOps;
    q.fusedRatio = static_cast<double>(q.fusedWrites) / q.totalOps;
  }
  return q;
}

json::Value ScheduleQuality::toJson() const {
  json::Object o;
  o["length"] = static_cast<std::int64_t>(length);
  o["numPEs"] = static_cast<std::int64_t>(numPEs);
  o["totalOps"] = static_cast<std::int64_t>(totalOps);
  o["insertedOps"] = static_cast<std::int64_t>(insertedOps);
  o["fusedWrites"] = static_cast<std::int64_t>(fusedWrites);
  o["staticUtilization"] = staticUtilization;
  o["contextOccupancy"] = contextOccupancy;
  o["copyRatio"] = copyRatio;
  o["fusedRatio"] = fusedRatio;
  o["cboxSlotsUsed"] = static_cast<std::int64_t>(cboxSlotsUsed);
  o["cboxBusyCycles"] = static_cast<std::int64_t>(cboxBusyCycles);
  json::Array pes;
  for (const PEQuality& pq : perPE) {
    json::Object e;
    e["pe"] = static_cast<std::int64_t>(pq.pe);
    e["busyCycles"] = static_cast<std::int64_t>(pq.busyCycles);
    e["opsIssued"] = static_cast<std::int64_t>(pq.opsIssued);
    e["insertedOps"] = static_cast<std::int64_t>(pq.insertedOps);
    e["utilization"] = pq.utilization;
    e["slack"] = static_cast<std::int64_t>(pq.slack);
    pes.emplace_back(std::move(e));
  }
  o["perPE"] = std::move(pes);
  return json::sortKeys(json::Value(std::move(o)));
}

}  // namespace cgra
