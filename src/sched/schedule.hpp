// Schedule representation: the scheduler's output, consumed by the context
// generator (bit-level encoding) and the cycle-accurate simulator.
//
// A schedule is a linear sequence of contexts (cycles) 0..length-1 executed
// by the global context counter. Loops occupy contiguous context intervals
// whose last context carries a conditional back-branch in the CCU steered by
// a C-Box condition slot. Register references are *virtual* at this stage
// (per-PE virtual registers, virtual C-Box slots); the ctx module performs
// left-edge allocation onto physical registers afterwards (§V-I).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/composition.hpp"
#include "cdfg/cdfg.hpp"

namespace cgra {

/// Where an ALU operand comes from at execution time.
struct OperandSource {
  enum class Kind : std::uint8_t {
    None,  ///< operand unused
    Own,   ///< this PE's register file
    Route, ///< a source PE's output port exposing one of its registers
    Imm,   ///< immediate from the context word (CONST only)
  };
  Kind kind = Kind::None;
  PEId srcPE = 0;        ///< Route: whose output port
  unsigned vreg = 0;     ///< Own/Route: virtual register in that PE
  std::int32_t imm = 0;  ///< Imm
};

/// Reference to a C-Box condition slot with read polarity.
struct PredRef {
  unsigned slot = 0;
  bool polarity = true;

  bool operator==(const PredRef&) const = default;
};

/// One operation instance in the schedule (a PE context entry occupancy).
struct ScheduledOp {
  NodeId node = kNoNode;  ///< CDFG origin; kNoNode for inserted MOVE/CONST
  Op op = Op::NOP;
  PEId pe = 0;
  unsigned start = 0;     ///< first cycle
  unsigned duration = 1;  ///< cycles the PE is busy; result commits at end
  std::array<OperandSource, 3> src{};
  bool writesDest = false;
  unsigned destVreg = 0;               ///< own-RF virtual register
  std::optional<PredRef> pred;         ///< RF-write / memory-op gate
  bool emitsStatus = false;            ///< comparison: status wire to C-Box
  std::string label;                   ///< debug

  unsigned lastCycle() const { return start + duration - 1; }
};

/// One C-Box context entry: combine up to two condition sources into a slot.
struct CBoxOp {
  /// A combine input: the live status wire or a stored slot, with polarity.
  struct Input {
    enum class Kind : std::uint8_t { Status, Stored };
    Kind kind = Kind::Status;
    unsigned slot = 0;  ///< Stored
    bool polarity = true;
  };

  unsigned time = 0;
  std::vector<Input> inputs;  ///< 1 or 2 inputs; at most one Status
  enum class Logic : std::uint8_t { Pass, And, Or } logic = Logic::Pass;
  unsigned writeSlot = 0;  ///< virtual condition slot written (end of cycle)
  CondId cond = kCondTrue; ///< bookkeeping: which condition the slot holds
};

/// One CCU branch entry.
struct BranchOp {
  unsigned time = 0;    ///< context whose successor is redirected
  unsigned target = 0;  ///< next CCNT when taken
  bool conditional = true;
  PredRef pred;         ///< taken when slot reads `polarity`
  LoopId loop = kRootLoop;  ///< bookkeeping: which loop this back-branch closes
};

/// Context interval occupied by a loop.
struct LoopInterval {
  LoopId loop = kRootLoop;
  unsigned start = 0;
  unsigned end = 0;  ///< context holding the back-branch
};

/// Host-transfer binding of a variable to its home register.
struct LiveBinding {
  VarId var = 0;
  PEId pe = 0;
  unsigned vreg = 0;
};

/// Complete schedule for one kernel on one composition.
struct Schedule {
  unsigned length = 0;  ///< number of contexts used
  std::vector<ScheduledOp> ops;
  std::vector<CBoxOp> cboxOps;
  std::vector<BranchOp> branches;
  std::vector<LoopInterval> loops;
  std::vector<LiveBinding> liveIns;
  std::vector<LiveBinding> liveOuts;
  /// Home registers of ALL variables (superset of liveIns/liveOuts). Homes
  /// are reserved for the entire invocation: their writes are predicated,
  /// so the pre-write register content is observable (dry passes, untaken
  /// branches, live-out read-back) and must not be clobbered by register
  /// reuse (§V-B/V-D).
  std::vector<LiveBinding> varHomes;
  std::vector<unsigned> vregsPerPE;  ///< virtual register count per PE
  unsigned cboxSlotsUsed = 0;        ///< virtual condition slot count

  /// Ops sorted by (start, pe); built lazily by callers that need it.
  std::vector<const ScheduledOp*> opsByTime() const;

  /// Multi-line human-readable dump (tests, debugging).
  std::string toString(const Composition& comp) const;

  /// Order-sensitive FNV-1a digest over every schedule field. Two schedules
  /// with equal fingerprints are byte-identical for all practical purposes;
  /// the sweep engine uses this to assert parallel runs match serial ones.
  std::uint64_t fingerprint() const;
};

/// Scheduler statistics reported alongside the schedule (Table I metrics).
struct ScheduleStats {
  unsigned contextsUsed = 0;
  unsigned cboxSlotsUsed = 0;
  unsigned copiesInserted = 0;
  unsigned constsInserted = 0;
  unsigned fusedWrites = 0;
  double wallTimeMs = 0.0;
};

}  // namespace cgra
