// Structural validation of a schedule against its CDFG and composition.
// Used by the test suite as the invariant oracle: every property the
// scheduler is supposed to guarantee (§V) is checked independently here.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace cgra {

/// Returns a list of human-readable violations (empty = valid). Checked
/// invariants:
///  * every CDFG node appears exactly once; inserted ops are MOVE/CONST;
///  * PE occupancy is exclusive and every op is supported by its PE
///    (memory ops only on DMA PEs);
///  * routed operands follow existing interconnect links and no PE output
///    port exposes two registers in one cycle;
///  * dependency edges hold (Flow: consumer starts after producer finishes;
///    Anti: writer starts no earlier than reader; Output: ordered);
///  * predicated commits (pWRITE, memory ops) carry predication exactly when
///    their condition is not TRUE, and at most one distinct predication
///    signal is read per cycle (single outPE wire);
///  * at most one C-Box operation and one branch per cycle; comparisons have
///    a same-cycle C-Box consumer (one status per cycle);
///  * loop intervals are contiguous, properly nested, end in a conditional
///    back-branch, and contain exactly the ops of their loop subtree;
///  * the schedule fits the composition's context memory.
std::vector<std::string> validateSchedule(const Schedule& sched,
                                          const Cdfg& graph,
                                          const Composition& comp);

/// Convenience wrapper that throws cgra::Error listing all violations.
void checkSchedule(const Schedule& sched, const Cdfg& graph,
                   const Composition& comp);

}  // namespace cgra
