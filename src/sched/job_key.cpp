#include "sched/job_key.hpp"

#include "arch/arch_model.hpp"
#include "arch/composition.hpp"
#include "support/sha256.hpp"

namespace cgra {

namespace {

/// Digests every CDFG field that can influence scheduling, in a fixed
/// declaration order. Structure markers (section tags) keep distinct shapes
/// from colliding by concatenation (e.g. one node with two operands vs. two
/// nodes with one).
void hashCdfg(Sha256& h, const Cdfg& g) {
  h.update("nodes:");
  h.updateU64(g.numNodes());
  for (NodeId id = 0; id < g.numNodes(); ++id) {
    const Node& n = g.node(id);
    h.updateU64(static_cast<std::uint64_t>(n.kind));
    h.updateU64(static_cast<std::uint64_t>(n.op));
    h.updateU64(n.var);
    h.updateU64(n.cond);
    h.updateU64(n.loop);
    h.updateU64(n.operands.size());
    for (const Operand& op : n.operands) {
      h.updateU64(static_cast<std::uint64_t>(op.kind()));
      switch (op.kind()) {
        case Operand::Kind::Node: h.updateU64(op.nodeId()); break;
        case Operand::Kind::Variable: h.updateU64(op.varId()); break;
        case Operand::Kind::Immediate:
          h.updateU64(static_cast<std::uint32_t>(op.imm()));
          break;
      }
    }
    h.updateU64(n.label.size());
    h.update(n.label);
  }
  h.update("edges:");
  h.updateU64(g.edges().size());
  for (const Edge& e : g.edges()) {
    h.updateU64(e.from);
    h.updateU64(e.to);
    h.updateU64(static_cast<std::uint64_t>(e.kind));
  }
  h.update("vars:");
  h.updateU64(g.numVariables());
  for (VarId v = 0; v < g.numVariables(); ++v) {
    const Variable& var = g.variable(v);
    h.updateU64(var.name.size());
    h.update(var.name);
    h.updateU64(var.liveIn ? 1 : 0);
    h.updateU64(var.liveOut ? 1 : 0);
    h.updateU64(static_cast<std::uint32_t>(var.initialValue));
  }
  h.update("conds:");
  h.updateU64(g.numConditions());
  for (CondId c = 0; c < g.numConditions(); ++c) {
    const Condition& cond = g.condition(c);
    h.updateU64(cond.parent);
    h.updateU64(cond.statusNode);
    h.updateU64(cond.polarity ? 1 : 0);
  }
  h.update("loops:");
  h.updateU64(g.numLoops());
  for (LoopId l = 0; l < g.numLoops(); ++l) {
    const Loop& loop = g.loop(l);
    h.updateU64(loop.parent);
    h.updateU64(loop.controllingNode);
    h.updateU64(loop.continueWhen ? 1 : 0);
    h.updateU64(loop.entryCond);
    h.updateU64(loop.bodyCond);
    h.updateU64(loop.label.size());
    h.update(loop.label);
  }
}

void hashOptions(Sha256& h, const SchedulerOptions& o) {
  h.update("opts:");
  h.updateU64(o.useAttraction ? 1 : 0);
  h.updateU64(o.fuseWrites ? 1 : 0);
  h.updateU64(o.longestPathPriority ? 1 : 0);
  h.updateU64(o.maxContexts);
}

}  // namespace

std::string compositionDigest(const std::string& compJson) {
  return ArchModel::digestCompositionJson(compJson);
}

std::string compositionDigest(const Composition& comp) {
  // Served from the composition's memoized ArchModel: digesting the same
  // Composition instance twice hashes its JSON only once.
  return ArchModel::get(comp)->digest();
}

std::string cdfgDigest(const Cdfg& graph) {
  Sha256 h;
  hashCdfg(h, graph);
  return h.hex();
}

std::string scheduleJobKeyWithDigests(const std::string& compDigest,
                                      const std::string& cdfgDigest,
                                      const SchedulerOptions& options,
                                      const std::string& salt) {
  Sha256 h;
  h.update("salt:");
  h.update(salt);
  h.update("comp-digest:");
  h.update(compDigest);
  h.update("cdfg-digest:");
  h.update(cdfgDigest);
  hashOptions(h, options);
  return h.hex();
}

std::string scheduleJobKeyWithCompDigest(const std::string& compDigest,
                                         const Cdfg& graph,
                                         const SchedulerOptions& options,
                                         const std::string& salt) {
  return scheduleJobKeyWithDigests(compDigest, cdfgDigest(graph), options,
                                   salt);
}

std::string scheduleJobKeyWithCompJson(const std::string& compJson,
                                       const Cdfg& graph,
                                       const SchedulerOptions& options,
                                       const std::string& salt) {
  return scheduleJobKeyWithCompDigest(compositionDigest(compJson), graph,
                                      options, salt);
}

std::string scheduleJobKey(const Composition& comp, const Cdfg& graph,
                           const SchedulerOptions& options,
                           const std::string& salt) {
  return scheduleJobKeyWithCompJson(comp.toJson().dump(), graph, options,
                                    salt);
}

}  // namespace cgra
