// Scheduler decision trace: the observability substrate behind
// `cgra-tool explain` and `--trace`.
//
// PR 1's SchedulerMetrics say *how much* work a run did; this layer says
// *why* each decision fell the way it did: which candidate was picked at
// which step (with its longest-path weight), which PE placements were
// probed and why each was rejected, where MOVE copies and CONST
// materializations were injected along the Floyd–Warshall paths (§V-D,
// §V-G), which pWRITEs fused into their producers (§V-E), how C-Box slots
// were allocated (§V-H), and where loops opened and closed (§V-C).
//
// Design constraints:
//  * Zero cost when disabled. Every instrumentation point is a macro that
//    compiles to a single null-pointer test (`if (sink)`); the whole layer
//    can additionally be compiled out with -DCGRA_TRACE_DISABLED.
//  * One preallocated ring buffer per scheduler run. The sweep engine runs
//    N jobs concurrently; each run owns its buffer, so worker threads never
//    contend and no locks appear on the scheduling hot path. On overflow
//    the ring keeps the most recent events (failures are diagnosed from the
//    tail) and counts what it dropped — emission never allocates.
//  * Deterministic. Events carry a logical sequence number and the
//    scheduler's own cycle counter, never wall-clock time, so the exported
//    trace of a run is byte-identical for any sweep thread count.
//
// Two exporters: Chrome trace-event JSON (load in Perfetto / chrome://
// tracing) and a human-readable `explain` listing that resolves node/PE ids
// against the CDFG and composition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace cgra {

class Cdfg;
class Composition;

/// Trace configuration carried by a ScheduleRequest.
struct TraceOptions {
  /// Master switch: off ⇒ no buffer is allocated, no events are recorded
  /// and ScheduleReport::trace stays null.
  bool enabled = false;
  /// Ring capacity in events (preallocated up front). When a run emits
  /// more, the oldest events are overwritten and `droppedEvents()` counts
  /// the loss.
  std::size_t capacity = 1u << 16;
};

/// What happened. Grouped by the scheduler phase that emits it.
enum class TraceEventKind : std::uint8_t {
  PhaseBegin,         ///< detail = "setup" | "plan" | "finalize"
  PhaseEnd,           ///< detail mirrors the matching PhaseBegin
  StepBegin,          ///< a new context (cycle) opened; cycle = t
  CandidateSelected,  ///< node entered a placement round; a = weight×1000
  PlacementRejected,  ///< (node, pe) probe failed; reject = why
  NodePlaced,         ///< node committed on pe at cycle; a = duration
  CopyInserted,       ///< routing MOVE hop; a = source PE, b = dest vreg
  ConstInserted,      ///< CONST materialized on pe; a = value
  WriteFused,         ///< pWRITE a folded into producer node (§V-E)
  CBoxSlotAllocated,  ///< a = slot, b = condition id; detail = "status"|"and"
  LoopOpened,         ///< a = loop id; cycle = first context of the interval
  LoopClosed,         ///< a = loop id, b = back-branch context
  BranchPlaced,       ///< back-branch at cycle; a = target context
  Failure,            ///< run abandoned; reject/node describe the blocker
  CacheLookup,        ///< artifact-store probe; detail = "hit" | "miss"
};

/// Why a (node, PE) placement probe was rejected.
enum class TraceReject : std::uint8_t {
  None,
  Incompatible,       ///< PE lacks the op / is not the variable's home PE
  PeBusy,             ///< PE occupied for the op's duration at this cycle
  CBoxWritePortBusy,  ///< status cycle already writes a C-Box slot (§V-H)
  PredUnavailable,    ///< condition not materializable / outPE wire taken
  OperandUnroutable,  ///< no reachable location or copy insertion failed
};

const char* traceEventName(TraceEventKind kind);
const char* traceRejectName(TraceReject reject);

/// Compile-time-checked annotation string. The consteval constructor only
/// accepts pointers that are constant expressions — in practice, string
/// literals — so no instrumentation point can ever hand the ring a pointer
/// into freed or mutated storage, and emission never needs to copy.
struct TraceLiteral {
  const char* str = "";
  TraceLiteral() = default;
  consteval TraceLiteral(const char* s) : str(s) {}

  /// Escape hatch for pointers the caller knows live in static storage
  /// (e.g. the enum name tables) but that are not constant expressions.
  static constexpr TraceLiteral fromStatic(const char* s) {
    TraceLiteral l;
    l.str = s;
    return l;
  }
};

/// One trace record. Fixed-size POD: emission is a bounds-checked store
/// into the preallocated ring, never an allocation. Field meaning varies by
/// kind (see TraceEventKind); unused fields stay at their defaults.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::PhaseBegin;
  TraceReject reject = TraceReject::None;
  std::uint32_t seq = 0;    ///< logical timestamp, assigned by emit()
  std::uint32_t cycle = 0;  ///< scheduler step (context index)
  std::int32_t node = -1;   ///< CDFG node, -1 when not node-scoped
  std::int32_t pe = -1;     ///< PE, -1 when not PE-scoped
  std::int64_t a = 0;       ///< kind-specific payload
  std::int64_t b = 0;       ///< kind-specific payload
  TraceLiteral detail;      ///< static annotation (phase name, hop label)
};

/// Per-run decision log over a preallocated ring buffer.
class Trace {
public:
  explicit Trace(const TraceOptions& opts);

  /// Records one event; assigns the logical sequence number. O(1), no
  /// allocation; overwrites the oldest event when the ring is full.
  void emit(TraceEvent e);

  /// Events currently retained (≤ capacity).
  std::size_t size() const { return ring_.size(); }
  /// Events emitted over the run's lifetime.
  std::uint64_t totalEmitted() const { return totalEmitted_; }
  /// Events lost to ring wrap-around.
  std::uint64_t droppedEvents() const {
    return totalEmitted_ - static_cast<std::uint64_t>(ring_.size());
  }

  /// i-th retained event in emission order (0 = oldest retained).
  const TraceEvent& event(std::size_t i) const;

  /// Chrome trace-event JSON ("JSON object format"): `traceEvents` holds
  /// B/E phase spans and instant events with ts = logical sequence number
  /// (microseconds in the viewer). Deterministic: no wall-clock anywhere.
  /// `label` names the process in the viewer (e.g. "adpcm@mesh9").
  json::Value toChromeJson(const std::string& label) const;

  /// Human-readable decision log. `graph` and `comp` resolve node labels
  /// and op names; either may be null (ids are printed instead).
  std::string explain(const Cdfg* graph, const Composition* comp) const;

private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t totalEmitted_ = 0;
};

}  // namespace cgra

// Instrumentation macro. `sink` is a `Trace*` (null ⇒ disabled: the whole
// statement is one predictable branch). The remaining arguments are C++20
// designated initializers for TraceEvent, checked at compile time: the
// event kind must name a TraceEventKind enumerator and every field
// initializer must match a TraceEvent member in declaration order —
// mistyped fields or payloads fail the build instead of producing silently
// empty events.
//
//   CGRA_TRACE(trace_, NodePlaced,
//              .cycle = t, .node = int(id), .pe = int(pe), .a = dur);
//
// Compile with -DCGRA_TRACE_DISABLED to remove even the null test (the
// overhead-budget escape hatch; the default build keeps it — measured cost
// is < 2% on the Table IV walltime bench).
#ifdef CGRA_TRACE_DISABLED
#define CGRA_TRACE(sink, kindTok, ...) \
  do {                                 \
    (void)(sink);                      \
  } while (false)
#else
#define CGRA_TRACE(sink, kindTok, ...)                                     \
  do {                                                                     \
    if ((sink) != nullptr) {                                               \
      _Pragma("GCC diagnostic push")                                       \
      _Pragma("GCC diagnostic ignored \"-Wmissing-field-initializers\"")   \
      (sink)->emit(::cgra::TraceEvent{                                     \
          .kind = ::cgra::TraceEventKind::kindTok, __VA_ARGS__});          \
      _Pragma("GCC diagnostic pop")                                        \
    }                                                                      \
  } while (false)
#endif
