#include "sched/routing_cache.hpp"

namespace cgra {

RoutingInfo RoutingInfo::build(const Composition& comp) {
  const unsigned n = comp.numPEs();
  const Interconnect& ic = comp.interconnect();

  RoutingInfo info;
  info.sinks.assign(n, {});
  info.connectivity.assign(n, 0);
  info.reachCount.assign(n, 0);
  for (PEId from = 0; from < n; ++from) {
    info.sinks[from] = ic.sinks(from);
    info.connectivity[from] = static_cast<unsigned>(
        ic.sources(from).size() + info.sinks[from].size());
    for (PEId to = 0; to < n; ++to)
      if (ic.distance(from, to) != kUnreachable) ++info.reachCount[from];
  }

  info.supportingPEs.assign(kNumOps, {});
  for (unsigned op = 0; op < kNumOps; ++op)
    info.supportingPEs[op] = comp.pesSupporting(static_cast<Op>(op));
  return info;
}

std::shared_ptr<const RoutingInfo> RoutingCache::lookup(
    const Composition& comp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[&comp];
  if (!entry)
    entry = std::make_shared<const RoutingInfo>(RoutingInfo::build(comp));
  return entry;
}

std::size_t RoutingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace cgra
