#include "sched/scheduler.hpp"

#include <memory>
#include <utility>

#include "arch/arch_model.hpp"
#include "sched/passes/pipeline.hpp"

namespace cgra {

const char* failureReasonName(FailureReason reason) {
  switch (reason) {
    case FailureReason::None: return "none";
    case FailureReason::UnsupportedOp: return "unsupported-op";
    case FailureReason::UnroutableOperand: return "unroutable-operand";
    case FailureReason::ContextBudget: return "context-budget";
    case FailureReason::CBoxCapacity: return "cbox-capacity";
    case FailureReason::Internal: return "internal";
  }
  CGRA_UNREACHABLE("bad FailureReason");
}

const ScheduleReport& ScheduleReport::orThrow() const& {
  if (!ok) throw Error(failure.message);
  return *this;
}

ScheduleReport&& ScheduleReport::orThrow() && {
  if (!ok) throw Error(failure.message);
  return std::move(*this);
}

Scheduler::Scheduler(const Composition& comp, SchedulerOptions opts)
    : comp_(&comp), opts_(opts), model_(ArchModel::get(comp)) {}

ScheduleReport Scheduler::schedule(const ScheduleRequest& request) const {
  CGRA_ASSERT_MSG(request.graph != nullptr,
                  "ScheduleRequest carries no graph");
  const SchedulerOptions& opts = request.options ? *request.options : opts_;
  std::shared_ptr<Trace> trace;
  if (request.trace.enabled) trace = std::make_shared<Trace>(request.trace);
  ScheduleReport report =
      passes::runPipeline(*model_, *comp_, opts, *request.graph, trace.get());
  report.trace = std::move(trace);
  return report;
}

}  // namespace cgra
