#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "sched/routing_cache.hpp"
#include "support/occupancy.hpp"

namespace cgra {

namespace {

/// Internal control-flow signal for "this kernel cannot be mapped". Thrown
/// deep inside a run, caught at the end of Run::execute and converted into
/// ScheduleReport::failure — it never crosses the public API. Exceptions
/// that do escape (InternalError, malformed-graph Error) are programmer
/// errors by contract.
struct Unmappable {
  ScheduleFailure failure;
  /// Last placement-rejection reason of the stuck node, for the trace's
  /// Failure event.
  TraceReject lastReject = TraceReject::None;
};

/// One place a value can be read from: a (PE, virtual register) pair with
/// the first cycle a read succeeds and the last cycle it is still valid
/// (copies of variables become stale when the home is rewritten or when a
/// loop that rewrites the variable opens — see DESIGN.md §5/§6 rationale).
struct Location {
  PEId pe = 0;
  unsigned vreg = 0;
  unsigned ready = 0;
  unsigned validUntil = kNoLimit;

  static constexpr unsigned kNoLimit = static_cast<unsigned>(-1);
};

/// Materialized condition: C-Box slot + polarity and first readable cycle.
struct CondSlot {
  PredRef ref;
  unsigned ready = 0;
};

/// One scheduling run over a fixed CDFG.
class Run {
public:
  Run(const Composition& comp, const SchedulerOptions& opts, const Cdfg& g,
      const RoutingInfo* routing, Trace* trace)
      : comp_(comp), opts_(opts), g_(g), routing_(routing), trace_(trace) {}

  ScheduleReport execute() {
    using Clock = std::chrono::steady_clock;
    const auto ms = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };

    ScheduleReport report;
    const auto wallStart = Clock::now();
    auto setupEnd = wallStart;
    auto planEnd = wallStart;

    // Malformed graphs are programmer errors: validate() throws past the
    // report path on purpose.
    g_.validate();
    limit_ = opts_.maxContexts ? opts_.maxContexts : comp_.contextMemoryLength();
    if (!routing_) {
      ownedRouting_ = RoutingInfo::build(comp_);
      routing_ = &*ownedRouting_;
    }

    // Tracks which phase span is open so a failed run still produces
    // balanced B/E pairs in the Chrome trace export.
    const char* openPhase = nullptr;
    try {
      openPhase = "setup";
      CGRA_TRACE(trace_, PhaseBegin, .detail = "setup");
      checkMappable();
      initState();
      CGRA_TRACE(trace_, PhaseEnd, .detail = "setup");
      setupEnd = Clock::now();

      openPhase = "plan";
      CGRA_TRACE(trace_, PhaseBegin, .detail = "plan");
      while (scheduledCount_ < g_.numNodes() || loopStack_.size() > 1) {
        if (t_ >= limit_) failUnmappable();
        CGRA_TRACE(trace_, StepBegin, .cycle = t_);
        tryCloseLoops();
        planStep();
        ++metrics_.steps;
        ++t_;
      }
      CGRA_TRACE(trace_, PhaseEnd, .detail = "plan");
      planEnd = Clock::now();

      openPhase = "finalize";
      CGRA_TRACE(trace_, PhaseBegin, .detail = "finalize");
      finalize();
      CGRA_TRACE(trace_, PhaseEnd, .detail = "finalize");
      openPhase = nullptr;
      report.ok = true;
    } catch (const Unmappable& u) {
      report.failure = u.failure;
      CGRA_TRACE(trace_, Failure, .reject = u.lastReject, .cycle = t_,
                 .node = u.failure.node == kNoNode
                             ? -1
                             : static_cast<std::int32_t>(u.failure.node),
                 .detail = TraceLiteral::fromStatic(
                     failureReasonName(u.failure.reason)));
      if (openPhase != nullptr)
        CGRA_TRACE(trace_, PhaseEnd,
                   .detail = TraceLiteral::fromStatic(openPhase));
    }

    const auto wallEnd = Clock::now();
    if (setupEnd == wallStart) setupEnd = wallEnd;  // failed during setup
    if (planEnd < setupEnd) planEnd = wallEnd;      // failed during planning
    stats_.wallTimeMs = ms(wallStart, wallEnd);
    metrics_.setupMs = ms(wallStart, setupEnd);
    metrics_.planMs = ms(setupEnd, planEnd);
    metrics_.finalizeMs = ms(planEnd, wallEnd);
    metrics_.totalMs = stats_.wallTimeMs;
    metrics_.copiesInserted = stats_.copiesInserted;
    metrics_.constsInserted = stats_.constsInserted;
    metrics_.fusedWrites = stats_.fusedWrites;
    metrics_.cboxOps = sched_.cboxOps.size();
    metrics_.branches = sched_.branches.size();
    report.stats = stats_;
    report.metrics = metrics_;
    if (report.ok) report.schedule = std::move(sched_);
    return report;
  }

private:
  // -- setup ------------------------------------------------------------------

  /// Rejects kernels containing an operation no PE supports.
  void checkMappable() const {
    for (NodeId id = 0; id < g_.numNodes(); ++id) {
      const Node& n = g_.node(id);
      if (n.kind != NodeKind::Operation) continue;
      if (routing_->supportingPEs[static_cast<unsigned>(n.op)].empty())
        throw Unmappable{
            ScheduleFailure{FailureReason::UnsupportedOp,
                            "composition " + comp_.name() +
                                " has no PE supporting " +
                                std::string(opName(n.op)),
                            id},
            TraceReject::Incompatible};
    }
  }

  void initState() {
    const std::size_t numNodes = g_.numNodes();
    const unsigned numPEs = comp_.numPEs();

    priorities_ = g_.longestPathWeights();
    attraction_.assign(numNodes, std::vector<double>(numPEs, 0.0));
    nodeStart_.assign(numNodes, 0);
    nodeFinish_.assign(numNodes, 0);
    nodeScheduled_.assign(numNodes, false);
    lastReject_.assign(numNodes, TraceReject::None);
    lastRejectStep_.assign(numNodes, static_cast<unsigned>(-1));
    remainingPreds_.assign(numNodes, 0);
    for (NodeId id = 0; id < numNodes; ++id)
      remainingPreds_[id] = static_cast<unsigned>(g_.inEdges(id).size());
    for (NodeId id = 0; id < numNodes; ++id)
      if (remainingPreds_[id] == 0) candidates_.insert(id);

    // Hard ceiling for every per-cycle resource map: the context budget. A
    // schedule cycle at or beyond the ceiling can never execute (finalize
    // rejects such schedules), so probes treat it as permanently occupied —
    // resource scans are bounded and can never resize unboundedly.
    const unsigned ceiling = limit_;
    nextVreg_.assign(numPEs, 0);
    peBusy_.assign(numPEs, CycleOccupancy(ceiling));
    outPort_.assign(numPEs, CycleSlots<unsigned>(ceiling));
    cboxOpAt_ = CycleOccupancy(ceiling);
    predUse_ = CycleSlots<PredRef>(ceiling);
    branchAt_ = CycleOccupancy(ceiling);
    varHomes_.assign(g_.numVariables(), std::nullopt);
    varCopies_.assign(g_.numVariables(), {});
    nodeLocs_.assign(numNodes, {});

    // Subtree node lists per loop (loop-compatibility checks).
    loopSubtree_.assign(g_.numLoops(), {});
    for (NodeId id = 0; id < numNodes; ++id)
      for (LoopId l = g_.node(id).loop;; l = g_.loop(l).parent) {
        loopSubtree_[l].push_back(id);
        if (l == kRootLoop) break;
      }

    loopStack_.push_back(OpenLoop{kRootLoop, 0});
  }

  /// The run gave up (context budget exhausted). Classifies the failure by
  /// the last recorded rejection of the first stuck node: a node that kept
  /// failing operand resolution means the operand was unroutable; a node
  /// starved of C-Box write ports means C-Box pressure; anything else —
  /// including PredUnavailable, which is the ordinary transient state of a
  /// predicated node waiting for its condition — is a budget overflow.
  [[noreturn]] void failUnmappable() const {
    std::string stuck;
    unsigned count = 0;
    NodeId firstStuck = kNoNode;
    for (NodeId id = 0; id < g_.numNodes(); ++id)
      if (!nodeScheduled_[id]) {
        if (firstStuck == kNoNode) firstStuck = id;
        if (count++ >= 8) continue;
        const Node& n = g_.node(id);
        stuck += " node" + std::to_string(id) + "(" +
                 (n.isPWrite() ? "pWRITE " + g_.variable(n.var).name
                               : std::string(opName(n.op))) +
                 ")";
      }

    const TraceReject last =
        firstStuck == kNoNode ? TraceReject::None : lastReject_[firstStuck];
    FailureReason reason = FailureReason::ContextBudget;
    if (last == TraceReject::OperandUnroutable)
      reason = FailureReason::UnroutableOperand;
    else if (last == TraceReject::CBoxWritePortBusy)
      reason = FailureReason::CBoxCapacity;
    throw Unmappable{
        ScheduleFailure{reason,
                        "kernel does not fit in " + std::to_string(limit_) +
                            " contexts on " + comp_.name() +
                            "; unscheduled:" + stuck,
                        firstStuck},
        last};
  }

  // -- resource helpers -------------------------------------------------------

  bool peBusy(PEId pe, unsigned from, unsigned dur) const {
    return peBusy_[pe].anyBusy(from, dur);
  }

  void markPeBusy(PEId pe, unsigned from, unsigned dur) {
    peBusy_[pe].mark(from, dur);
  }

  /// Checks/claims a source PE's output port at a cycle for a register.
  bool outPortFree(PEId pe, unsigned cycle, unsigned vreg) const {
    return outPort_[pe].freeFor(cycle, vreg);
  }

  void claimOutPort(PEId pe, unsigned cycle, unsigned vreg) {
    outPort_[pe].claim(cycle, vreg);
  }

  unsigned freshVreg(PEId pe) { return nextVreg_[pe]++; }

  // -- value locations --------------------------------------------------------

  std::vector<Location>* locationsFor(const Operand& o) {
    switch (o.kind()) {
      case Operand::Kind::Node:
        return &nodeLocs_[o.nodeId()];
      case Operand::Kind::Variable: {
        // Home first (if assigned), then copies.
        scratchLocs_.clear();
        if (varHomes_[o.varId()])
          scratchLocs_.push_back(*varHomes_[o.varId()]);
        for (const Location& l : varCopies_[o.varId()])
          scratchLocs_.push_back(l);
        return &scratchLocs_;
      }
      case Operand::Kind::Immediate: {
        scratchLocs_.clear();
        const auto it = constLocs_.find(o.imm());
        if (it != constLocs_.end()) scratchLocs_ = it->second;
        return &scratchLocs_;
      }
    }
    return nullptr;
  }

  /// Lowest cycle at which a copy of this operand may be created so that it
  /// refreshes every iteration of any open loop that rewrites it.
  unsigned copyMinCycle(const Operand& o) const {
    if (o.kind() != Operand::Kind::Variable) return 0;
    unsigned minCycle = 0;
    for (const OpenLoop& ol : loopStack_) {
      if (ol.loop == kRootLoop) continue;
      if (g_.varWrittenInLoop(o.varId(), ol.loop))
        minCycle = std::max(minCycle, ol.start);
    }
    return minCycle;
  }

  void addLocation(const Operand& o, Location loc) {
    switch (o.kind()) {
      case Operand::Kind::Node:
        nodeLocs_[o.nodeId()].push_back(loc);
        break;
      case Operand::Kind::Variable:
        varCopies_[o.varId()].push_back(loc);
        break;
      case Operand::Kind::Immediate:
        constLocs_[o.imm()].push_back(loc);
        break;
    }
  }

  // -- condition management ---------------------------------------------------

  /// Ensures condition `c` is materialized in a C-Box slot readable at
  /// `deadline`. Inserts combine operations into free C-Box cycles when
  /// needed. Returns nullopt when impossible so far (caller delays).
  std::optional<PredRef> ensureCondition(CondId c, unsigned deadline) {
    CGRA_ASSERT(c != kCondTrue);
    if (const auto it = condSlots_.find(c); it != condSlots_.end())
      return it->second.ready <= deadline ? std::optional(it->second.ref)
                                          : std::nullopt;

    const Condition& cond = g_.condition(c);
    const auto rawIt = rawSlots_.find(cond.statusNode);
    if (rawIt == rawSlots_.end()) return std::nullopt;  // CMP not scheduled yet
    const CondSlot& raw = rawIt->second;

    if (cond.parent == kCondTrue) {
      // TRUE ∧ literal: read the raw status slot with the literal polarity.
      CondSlot slot{PredRef{raw.ref.slot, cond.polarity}, raw.ready};
      if (slot.ready > deadline) return std::nullopt;
      condSlots_[c] = slot;
      return slot.ref;
    }

    // parent ∧ literal: combine the stored parent with the stored raw status.
    if (deadline == 0) return std::nullopt;
    const auto parentRef = ensureCondition(cond.parent, deadline - 1);
    if (!parentRef) return std::nullopt;
    const unsigned parentReady = condSlots_.at(cond.parent).ready;

    const unsigned lo = std::max(parentReady, raw.ready);
    for (unsigned u = lo; u + 1 <= deadline; ++u) {
      if (cboxOpAt_.test(u)) continue;
      CBoxOp op;
      op.time = u;
      op.inputs = {
          CBoxOp::Input{CBoxOp::Input::Kind::Stored, parentRef->slot,
                        parentRef->polarity},
          CBoxOp::Input{CBoxOp::Input::Kind::Stored, raw.ref.slot,
                        cond.polarity}};
      op.logic = CBoxOp::Logic::And;
      op.writeSlot = nextCondSlot_++;
      op.cond = c;
      sched_.cboxOps.push_back(op);
      cboxOpAt_.mark(u);
      CGRA_TRACE(trace_, CBoxSlotAllocated, .cycle = u, .a = op.writeSlot,
                 .b = c, .detail = "and");
      CondSlot slot{PredRef{op.writeSlot, true}, u + 1};
      condSlots_[c] = slot;
      return slot.ref;
    }
    return std::nullopt;
  }

  /// Per-cycle single predication signal (the C-Box outPE output is one
  /// wire broadcast to all PEs).
  bool predSignalAvailable(unsigned cycle, const PredRef& ref) const {
    return predUse_.freeFor(cycle, ref);
  }

  void claimPredSignal(unsigned cycle, const PredRef& ref) {
    predUse_.claim(cycle, ref);
  }

  // -- loop management --------------------------------------------------------

  struct OpenLoop {
    LoopId loop;
    unsigned start;
  };

  LoopId currentLoop() const { return loopStack_.back().loop; }

  /// All external predecessors of the loop subtree finished by cycle `t`.
  bool loopPredsFinished(LoopId l, unsigned t) const {
    for (NodeId m : loopSubtree_[l])
      for (const Edge& e : g_.inEdges(m)) {
        if (g_.loopContains(l, g_.node(e.from).loop)) continue;  // internal
        if (!nodeScheduled_[e.from]) return false;
        const unsigned constraint = e.kind == DepKind::Anti
                                        ? nodeStart_[e.from]
                                        : nodeFinish_[e.from];
        if (constraint > t) return false;
      }
    return true;
  }

  /// Tries to close finished loops at the top of the stack (branch placed at
  /// the loop's last context).
  void tryCloseLoops() {
    while (loopStack_.size() > 1) {
      const OpenLoop& top = loopStack_.back();
      const LoopId l = top.loop;

      bool allDone = true;
      unsigned lastCycle = top.start;
      for (NodeId m : loopSubtree_[l]) {
        if (!nodeScheduled_[m]) {
          allDone = false;
          break;
        }
        lastCycle = std::max(lastCycle, nodeFinish_[m] - 1);
      }
      if (!allDone || lastCycle > t_ - 1 || t_ == 0) return;

      const Loop& loop = g_.loop(l);
      const CondId bodyCond = loop.bodyCond;
      const auto pred = ensureCondition(bodyCond, t_ - 1);
      if (!pred) return;
      // One branch (and one branch-selection read) per context; the scan is
      // bounded by the context ceiling (a saturated branch unit yields
      // nullopt instead of growing the map indefinitely).
      const auto b = branchAt_.firstFreeAtOrAfter(
          std::max(lastCycle, condSlots_.at(bodyCond).ready));
      // The branch must land strictly before the current step so outer
      // candidates can never share the back-branch context.
      if (!b || *b > t_ - 1) return;

      BranchOp br;
      br.time = *b;
      br.target = top.start;
      br.conditional = true;
      // bodyCond already encodes the continue polarity of the literal.
      br.pred = *pred;
      br.loop = l;
      sched_.branches.push_back(br);
      branchAt_.mark(*b);
      sched_.loops.push_back(LoopInterval{l, top.start, *b});
      CGRA_TRACE(trace_, BranchPlaced, .cycle = *b, .a = top.start);
      CGRA_TRACE(trace_, LoopClosed, .cycle = t_, .a = l, .b = *b);
      loopStack_.pop_back();
    }
  }

  /// Loop-compatibility (§V-C): returns true when the candidate may be
  /// planned at the current step, opening inner loops when required.
  bool loopCompatible(NodeId id) {
    const LoopId nodeLoop = g_.node(id).loop;
    const LoopId cur = currentLoop();
    if (nodeLoop == cur) return true;
    if (!g_.loopContains(cur, nodeLoop)) return false;  // outer/unrelated: wait

    // Descend one level at a time; each open requires an operation-free
    // context and all external predecessors of the whole subtree finished.
    while (currentLoop() != nodeLoop) {
      LoopId child = nodeLoop;
      while (g_.loop(child).parent != currentLoop()) child = g_.loop(child).parent;
      if (stepHasOp_) return false;
      if (!loopPredsFinished(child, t_)) return false;
      loopStack_.push_back(OpenLoop{child, t_});
      CGRA_TRACE(trace_, LoopOpened, .cycle = t_, .a = child);
      openLoopEffects(child);
    }
    return true;
  }

  /// Pre-loop copies of variables rewritten inside a freshly opened loop
  /// would not refresh per iteration; invalidate them for later readers.
  void openLoopEffects(LoopId child) {
    const unsigned cap = t_ == 0 ? 0 : t_ - 1;
    for (VarId v = 0; v < g_.numVariables(); ++v)
      if (g_.varWrittenInLoop(v, child))
        for (Location& copy : varCopies_[v])
          copy.validUntil = std::min(copy.validUntil, cap);
  }

  // -- candidate planning -----------------------------------------------------

  /// Dependency-imposed earliest start of a node.
  unsigned earliestStart(NodeId id) const {
    unsigned earliest = 0;
    for (const Edge& e : g_.inEdges(id)) {
      const unsigned c = e.kind == DepKind::Anti ? nodeStart_[e.from]
                                                 : nodeFinish_[e.from];
      earliest = std::max(earliest, c);
    }
    return earliest;
  }

  std::vector<NodeId> sortedCandidates() const {
    std::vector<NodeId> out(candidates_.begin(), candidates_.end());
    if (opts_.longestPathPriority) {
      std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
        if (priorities_[a] != priorities_[b])
          return priorities_[a] > priorities_[b];
        return a < b;
      });
    }
    return out;
  }

  /// PEs ordered by the attraction criterion (§V-G).
  std::vector<PEId> sortedPEs(NodeId id) const {
    std::vector<PEId> out(comp_.numPEs());
    for (PEId p = 0; p < comp_.numPEs(); ++p) out[p] = p;
    if (!opts_.useAttraction) return out;
    const auto& att = attraction_[id];
    const auto& connectivity = routing_->connectivity;
    std::stable_sort(out.begin(), out.end(), [&](PEId a, PEId b) {
      if (att[a] != att[b]) return att[a] > att[b];
      return connectivity[a] > connectivity[b];
    });
    return out;
  }

  bool incompatible(NodeId id, PEId pe) const {
    const Node& n = g_.node(id);
    if (n.isPWrite()) {
      const auto& home = varHomes_[n.var];
      return home && home->pe != pe;
    }
    return !comp_.pe(pe).supports(n.op);
  }

  unsigned opDuration(NodeId id, PEId pe) const {
    const Node& n = g_.node(id);
    if (n.isPWrite()) {
      const Op writeOp = n.operands[0].kind() == Operand::Kind::Immediate
                             ? Op::CONST
                             : Op::MOVE;
      return comp_.pe(pe).impl(writeOp).duration;
    }
    return comp_.pe(pe).impl(n.op).duration;
  }

  /// Resolves one operand for an op on `pe` starting at `t`, inserting MOVE
  /// copies / CONST materializations when needed. `exposure` accumulates
  /// out-port claims of the consuming op (claimed on success by caller).
  std::optional<OperandSource> resolveOperand(
      const Operand& o, PEId pe, unsigned t,
      std::map<PEId, unsigned>& exposure) {
    if (o.kind() == Operand::Kind::Immediate) {
      // ALU operands come from registers: materialize the constant on the
      // consuming PE (constants are freely replicated, §V-D).
      if (const auto own = findOwn(o, pe, t)) return own;
      if (const auto loc = materializeConst(o.imm(), pe, t))
        return OperandSource{OperandSource::Kind::Own, 0, loc->vreg, 0};
      return std::nullopt;
    }

    if (const auto own = findOwn(o, pe, t)) return own;
    if (const auto routed = findRouted(o, pe, t, exposure)) return routed;
    return copyTowards(o, pe, t, exposure);
  }

  std::optional<OperandSource> findOwn(const Operand& o, PEId pe, unsigned t) {
    for (const Location& loc : *locationsFor(o))
      if (loc.pe == pe && loc.ready <= t && t <= loc.validUntil)
        return OperandSource{OperandSource::Kind::Own, 0, loc.vreg, 0};
    return std::nullopt;
  }

  std::optional<OperandSource> findRouted(const Operand& o, PEId pe,
                                          unsigned t,
                                          std::map<PEId, unsigned>& exposure) {
    for (const Location& loc : *locationsFor(o)) {
      if (loc.ready > t || t > loc.validUntil) continue;
      if (!comp_.interconnect().hasLink(loc.pe, pe)) continue;
      if (!outPortFree(loc.pe, t, loc.vreg)) continue;
      if (const auto it = exposure.find(loc.pe);
          it != exposure.end() && it->second != loc.vreg)
        continue;
      exposure[loc.pe] = loc.vreg;
      return OperandSource{OperandSource::Kind::Route, loc.pe, loc.vreg, 0};
    }
    return std::nullopt;
  }

  /// Schedules one MOVE hop from an existing location into `destPe` at a
  /// free cycle in [minCycle, t-1]; returns the new location.
  std::optional<Location> scheduleMove(const Location& src, PEId destPe,
                                       unsigned minCycle, unsigned t,
                                       const std::string& label) {
    const unsigned dur = comp_.pe(destPe).impl(Op::MOVE).duration;
    const unsigned lo = std::max(minCycle, src.ready);
    if (lo + dur > t) return std::nullopt;
    for (unsigned u = lo; u + dur <= t; ++u) {
      if (u > src.validUntil) break;
      if (peBusy(destPe, u, dur)) continue;
      if (!outPortFree(src.pe, u, src.vreg)) continue;
      const unsigned vreg = freshVreg(destPe);
      ScheduledOp op;
      op.node = kNoNode;
      op.op = Op::MOVE;
      op.pe = destPe;
      op.start = u;
      op.duration = dur;
      op.src[0] = OperandSource{OperandSource::Kind::Route, src.pe, src.vreg, 0};
      op.writesDest = true;
      op.destVreg = vreg;
      op.label = label;
      sched_.ops.push_back(op);
      markPeBusy(destPe, u, dur);
      claimOutPort(src.pe, u, src.vreg);
      ++stats_.copiesInserted;
      CGRA_TRACE(trace_, CopyInserted, .cycle = u,
                 .pe = static_cast<std::int32_t>(destPe), .a = src.pe,
                 .b = vreg, .detail = "shortest-path hop");
      return Location{destPe, vreg, u + dur, Location::kNoLimit};
    }
    return std::nullopt;
  }

  /// Copies an operand along the shortest path toward `pe` so that the op at
  /// cycle `t` can access it (§V-G: values are copied into earlier idle
  /// cycles; the node is delayed otherwise).
  std::optional<OperandSource> copyTowards(const Operand& o, PEId pe,
                                           unsigned t,
                                           std::map<PEId, unsigned>& exposure) {
    // Pick the valid location closest to pe.
    const Interconnect& ic = comp_.interconnect();
    const Location* best = nullptr;
    for (const Location& loc : *locationsFor(o)) {
      if (loc.ready > t || t > loc.validUntil) continue;
      if (ic.distance(loc.pe, pe) == kUnreachable) continue;
      if (!best || ic.distance(loc.pe, pe) < ic.distance(best->pe, pe))
        best = &loc;
    }
    if (!best) return std::nullopt;

    const unsigned minCycle = copyMinCycle(o);
    const std::string label = "copy";
    Location cur = *best;
    std::vector<PEId> path = ic.pathTo(cur.pe, pe);
    CGRA_ASSERT(path.size() >= 2);

    // Copy hop by hop up to pe's neighbour; the final access is routed.
    // When routing at cycle t fails (port conflict), copy into pe itself.
    for (std::size_t hop = 1; hop + 1 < path.size(); ++hop) {
      const auto next = scheduleMove(cur, path[hop], minCycle, t, label);
      if (!next) return std::nullopt;
      cur = *next;
      addLocation(o, cur);
    }
    // cur is now on a neighbour of pe (or was already).
    if (cur.pe != pe) {
      const bool portOk = outPortFree(cur.pe, t, cur.vreg) &&
                          (!exposure.contains(cur.pe) ||
                           exposure.at(cur.pe) == cur.vreg);
      if (portOk) {
        exposure[cur.pe] = cur.vreg;
        return OperandSource{OperandSource::Kind::Route, cur.pe, cur.vreg, 0};
      }
      const auto fin = scheduleMove(cur, pe, minCycle, t, label);
      if (!fin) return std::nullopt;
      cur = *fin;
      addLocation(o, cur);
    }
    return OperandSource{OperandSource::Kind::Own, 0, cur.vreg, 0};
  }

  /// Materializes an integer constant in `pe`'s register file before `t`.
  /// The downward search is bounded at cycle 0 by the capped occupancy scan:
  /// a PE that is busy at every cycle yields nullopt (the caller delays the
  /// consuming node) — the cycle counter can never wrap below zero and the
  /// busy map can never grow past the context ceiling.
  std::optional<Location> materializeConst(std::int32_t value, PEId pe,
                                           unsigned t) {
    const unsigned dur = comp_.pe(pe).impl(Op::CONST).duration;
    if (dur > t) return std::nullopt;
    const auto u = peBusy_[pe].lastFreeWindowAtOrBefore(t - dur, dur);
    if (!u) return std::nullopt;
    const unsigned vreg = freshVreg(pe);
    ScheduledOp op;
    op.node = kNoNode;
    op.op = Op::CONST;
    op.pe = pe;
    op.start = *u;
    op.duration = dur;
    op.src[0] = OperandSource{OperandSource::Kind::Imm, 0, 0, value};
    op.writesDest = true;
    op.destVreg = vreg;
    op.label = "const " + std::to_string(value);
    sched_.ops.push_back(op);
    markPeBusy(pe, *u, dur);
    Location loc{pe, vreg, *u + dur, Location::kNoLimit};
    constLocs_[value].push_back(loc);
    ++stats_.constsInserted;
    CGRA_TRACE(trace_, ConstInserted, .cycle = *u,
               .pe = static_cast<std::int32_t>(pe), .a = value);
    return loc;
  }

  // -- home assignment --------------------------------------------------------

  /// Assigns a variable's home register (§V-D heuristic: the PE that can
  /// provide the value to the first PE requiring it — we pin the home on
  /// that very PE). For live-in variables the host transfer is recorded.
  void assignHome(VarId var, PEId pe) {
    CGRA_ASSERT(!varHomes_[var]);
    const unsigned vreg = freshVreg(pe);
    const bool liveIn = g_.variable(var).liveIn;
    varHomes_[var] = Location{pe, vreg, 0, Location::kNoLimit};
    if (liveIn) sched_.liveIns.push_back(LiveBinding{var, pe, vreg});
  }

  /// Ensures the variable has a home; used on first read.
  const Location& homeFor(VarId var, PEId consumerPe) {
    if (!varHomes_[var]) assignHome(var, consumerPe);
    return *varHomes_[var];
  }

  // -- fusion -----------------------------------------------------------------

  /// Returns the single pWRITE consumer if `id`'s value feeds exactly one
  /// node and that node is a pWRITE (fusion candidate per §V-E).
  std::optional<NodeId> fusablePWrite(NodeId id) const {
    if (!opts_.fuseWrites) return std::nullopt;
    const Node& n = g_.node(id);
    if (n.kind != NodeKind::Operation || !writesRegister(n.op))
      return std::nullopt;
    std::optional<NodeId> writer;
    for (const Edge& e : g_.outEdges(id)) {
      if (e.kind != DepKind::Flow) continue;
      const Node& to = g_.node(e.to);
      const bool consumesValue =
          to.isPWrite()
              ? to.operands[0] == Operand::node(id)
              : std::any_of(to.operands.begin(), to.operands.end(),
                            [&](const Operand& o) {
                              return o == Operand::node(id);
                            });
      if (!consumesValue) continue;  // pure ordering edge
      if (!to.isPWrite()) return std::nullopt;  // value also read directly
      if (writer) return std::nullopt;          // multiple writers
      writer = e.to;
    }
    if (!writer) return std::nullopt;
    const Node& w = g_.node(*writer);
    if (w.loop != n.loop) return std::nullopt;
    return writer;
  }

  /// All non-producer dependencies of the pWRITE satisfied at cycle `t`?
  bool pWriteDepsMet(NodeId writer, NodeId producer, unsigned t) const {
    for (const Edge& e : g_.inEdges(writer)) {
      if (e.from == producer) continue;
      if (!nodeScheduled_[e.from]) return false;
      const unsigned c = e.kind == DepKind::Anti ? nodeStart_[e.from]
                                                 : nodeFinish_[e.from];
      if (c > t) return false;
    }
    return true;
  }

  // -- planning ---------------------------------------------------------------

  void planStep() {
    stepHasOp_ = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId id : sortedCandidates()) {
        ++metrics_.candidateIterations;
        if (nodeScheduled_[id]) continue;  // fused away mid-snapshot
        if (!loopCompatible(id)) continue;
        if (earliestStart(id) > t_) continue;
        CGRA_TRACE(trace_, CandidateSelected, .cycle = t_,
                   .node = static_cast<std::int32_t>(id),
                   .a = std::llround(priorities_[id] * 1000.0));
        for (PEId pe : sortedPEs(id)) {
          if (incompatible(id, pe)) {
            rejectPlacement(id, pe, TraceReject::Incompatible);
            continue;
          }
          const unsigned dur = opDuration(id, pe);
          if (peBusy(pe, t_, dur)) {
            rejectPlacement(id, pe, TraceReject::PeBusy);
            continue;
          }
          ++metrics_.placementAttempts;
          reject_ = TraceReject::None;
          if (planCandidate(id, pe, dur)) {
            CGRA_TRACE(trace_, NodePlaced, .cycle = t_,
                       .node = static_cast<std::int32_t>(id),
                       .pe = static_cast<std::int32_t>(pe), .a = dur);
            changed = true;
            break;
          }
          rejectPlacement(id, pe, reject_);
          ++metrics_.backtracks;
        }
      }
    }
  }

  /// Records (and traces) one rejected (node, PE) placement probe. The
  /// per-node reason feeds the typed failure classification when the run
  /// eventually gives up: within one step the most informative reason wins
  /// (an Incompatible on a later PE must not mask an OperandUnroutable);
  /// across steps the newest step wins.
  void rejectPlacement(NodeId id, PEId pe, TraceReject why) {
    const auto rank = [](TraceReject r) {
      switch (r) {
        case TraceReject::None: return 0;
        case TraceReject::Incompatible: return 1;
        case TraceReject::PeBusy: return 2;
        case TraceReject::CBoxWritePortBusy: return 3;
        case TraceReject::PredUnavailable: return 3;
        case TraceReject::OperandUnroutable: return 4;
      }
      return 0;
    };
    if (lastRejectStep_[id] != t_ || rank(why) >= rank(lastReject_[id])) {
      lastReject_[id] = why;
      lastRejectStep_[id] = t_;
    }
    CGRA_TRACE(trace_, PlacementRejected, .reject = why, .cycle = t_,
               .node = static_cast<std::int32_t>(id),
               .pe = static_cast<std::int32_t>(pe));
  }

  bool planCandidate(NodeId id, PEId pe, unsigned dur) {
    const Node& n = g_.node(id);
    if (n.isPWrite()) return planPWrite(id, pe, dur);
    return planOperation(id, pe, dur);
  }

  /// Rejects the current placement attempt with a reason planStep picks up
  /// for the trace and the per-node failure classification.
  bool fail(TraceReject why) {
    reject_ = why;
    return false;
  }

  bool planOperation(NodeId id, PEId pe, unsigned dur) {
    const Node& n = g_.node(id);
    const unsigned t = t_;

    // Comparisons feed the C-Box: one status per cycle, so the C-Box write
    // port must be free on the status cycle (§V-H).
    const unsigned statusCycle = t + dur - 1;
    if (n.isStatusProducer() && cboxOpAt_.test(statusCycle))
      return fail(TraceReject::CBoxWritePortBusy);

    // Memory operations are always predicated (§V-D).
    std::optional<PredRef> pred;
    if (n.isMemory() && n.cond != kCondTrue) {
      pred = ensureCondition(n.cond, t);
      if (!pred) return fail(TraceReject::PredUnavailable);
      if (!predSignalAvailable(t, *pred))
        return fail(TraceReject::PredUnavailable);
    }

    // Fusion: write the result directly into the variable's home register,
    // predicated on the pWRITE's condition (§V-E).
    std::optional<NodeId> fusedWriter;
    std::optional<PredRef> fusedPred;
    if (!n.isStatusProducer() && writesRegister(n.op)) {
      if (const auto writer = fusablePWrite(id)) {
        const Node& w = g_.node(*writer);
        const auto& home = varHomes_[w.var];
        const bool peOk = !home || home->pe == pe;
        // A predicated memory op may only fuse when write and access share
        // the same condition (one outPE signal gates both).
        const bool condCompatible = !n.isMemory() || n.cond == w.cond;
        if (peOk && condCompatible && pWriteDepsMet(*writer, id, t)) {
          bool condOk = true;
          if (w.cond != kCondTrue) {
            // Both the op's own memory predication (none here: fused ops are
            // pure ALU) and the single outPE wire must accommodate it.
            fusedPred = ensureCondition(w.cond, t);
            condOk = fusedPred && predSignalAvailable(t, *fusedPred);
          }
          if (condOk) fusedWriter = writer;
        }
      }
    }

    // Operand resolution (reads fused into this node, §V-E).
    std::map<PEId, unsigned> exposure;
    std::array<OperandSource, 3> srcs{};
    for (std::size_t i = 0; i < n.operands.size(); ++i) {
      // Reading a variable pins its home on first use.
      if (n.operands[i].kind() == Operand::Kind::Variable)
        homeFor(n.operands[i].varId(), pe);
      const auto src = resolveOperand(n.operands[i], pe, t, exposure);
      if (!src) return fail(TraceReject::OperandUnroutable);
      srcs[i] = *src;
    }

    // Commit.
    ScheduledOp op;
    op.node = id;
    op.op = n.op;
    op.pe = pe;
    op.start = t;
    op.duration = dur;
    op.src = srcs;
    op.emitsStatus = n.isStatusProducer();
    op.label = n.label;
    if (pred) {
      op.pred = pred;
      claimPredSignal(t, *pred);
    }

    if (fusedWriter) {
      const Node& w = g_.node(*fusedWriter);
      if (!varHomes_[w.var]) assignHome(w.var, pe);
      op.writesDest = true;
      op.destVreg = varHomes_[w.var]->vreg;
      if (fusedPred) {
        op.pred = fusedPred;
        claimPredSignal(t, *fusedPred);
      }
      ++stats_.fusedWrites;
      CGRA_TRACE(trace_, WriteFused, .cycle = t,
                 .node = static_cast<std::int32_t>(id),
                 .pe = static_cast<std::int32_t>(pe), .a = *fusedWriter);
    } else if (writesRegister(n.op)) {
      op.writesDest = true;
      op.destVreg = freshVreg(pe);
    }

    for (const auto& [srcPe, vreg] : exposure) claimOutPort(srcPe, t, vreg);
    markPeBusy(pe, t, dur);
    sched_.ops.push_back(op);
    stepHasOp_ = true;

    if (n.isStatusProducer()) {
      // Store the raw status into a fresh condition slot on the status cycle.
      CBoxOp cb;
      cb.time = statusCycle;
      cb.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
      cb.logic = CBoxOp::Logic::Pass;
      cb.writeSlot = nextCondSlot_++;
      cb.cond = kCondTrue;  // raw literal, interpreted per condition
      sched_.cboxOps.push_back(cb);
      cboxOpAt_.mark(statusCycle);
      CGRA_TRACE(trace_, CBoxSlotAllocated, .cycle = statusCycle,
                 .node = static_cast<std::int32_t>(id), .a = cb.writeSlot,
                 .detail = "status");
      rawSlots_[id] = CondSlot{PredRef{cb.writeSlot, true}, statusCycle + 1};
    }

    if (op.writesDest && !fusedWriter)
      nodeLocs_[id].push_back(Location{pe, op.destVreg, t + dur,
                                       Location::kNoLimit});

    markScheduled(id, t, dur, pe);
    if (fusedWriter) {
      commitVarWrite(g_.node(*fusedWriter).var, t + dur);
      markScheduled(*fusedWriter, t, dur, pe);
    }
    return true;
  }

  bool planPWrite(NodeId id, PEId pe, unsigned dur) {
    const Node& n = g_.node(id);
    const unsigned t = t_;

    std::optional<PredRef> pred;
    if (n.cond != kCondTrue) {
      pred = ensureCondition(n.cond, t);
      if (!pred) return fail(TraceReject::PredUnavailable);
      if (!predSignalAvailable(t, *pred))
        return fail(TraceReject::PredUnavailable);
    }

    const Operand& value = n.operands[0];
    std::map<PEId, unsigned> exposure;
    ScheduledOp op;
    op.node = id;
    op.pe = pe;
    op.start = t;
    op.duration = dur;
    op.label = n.label;

    if (value.kind() == Operand::Kind::Immediate) {
      op.op = Op::CONST;
      op.src[0] = OperandSource{OperandSource::Kind::Imm, 0, 0, value.imm()};
    } else {
      op.op = Op::MOVE;
      if (value.kind() == Operand::Kind::Variable)
        homeFor(value.varId(), pe);
      const auto src = resolveOperand(value, pe, t, exposure);
      if (!src) return fail(TraceReject::OperandUnroutable);
      op.src[0] = *src;
    }

    if (!varHomes_[n.var]) assignHome(n.var, pe);
    CGRA_ASSERT(varHomes_[n.var]->pe == pe);
    op.writesDest = true;
    op.destVreg = varHomes_[n.var]->vreg;
    if (pred) {
      op.pred = pred;
      claimPredSignal(t, *pred);
    }

    for (const auto& [srcPe, vreg] : exposure) claimOutPort(srcPe, t, vreg);
    markPeBusy(pe, t, dur);
    sched_.ops.push_back(op);
    stepHasOp_ = true;

    commitVarWrite(n.var, t + dur);
    markScheduled(id, t, dur, pe);
    return true;
  }

  /// A committed write to `var` at finish cycle: home becomes ready, all
  /// copies become stale for later readers.
  void commitVarWrite(VarId var, unsigned finish) {
    Location& home = *varHomes_[var];
    home.ready = std::max(home.ready, finish);
    for (Location& copy : varCopies_[var])
      copy.validUntil = std::min(copy.validUntil, finish - 1);
  }

  void markScheduled(NodeId id, unsigned start, unsigned dur, PEId pe) {
    nodeScheduled_[id] = true;
    nodeStart_[id] = start;
    nodeFinish_[id] = start + dur;
    ++scheduledCount_;
    ++metrics_.nodesScheduled;
    candidates_.erase(id);

    // Attraction update (§V-G): successors are drawn toward PEs that can
    // access this result's register file. The sink lists come from the
    // shared routing tables (the seed re-scanned the interconnect here).
    for (const Edge& e : g_.outEdges(id)) {
      if (!nodeScheduled_[e.to]) {
        attraction_[e.to][pe] += 1.0;
        for (PEId q : routing_->sinks[pe]) attraction_[e.to][q] += 1.0;
      }
      if (--remainingPreds_[e.to] == 0) candidates_.insert(e.to);
    }
  }

  // -- loop invalidation on open ----------------------------------------------

  // (called from loopCompatible via loopStack_ push — see openLoopEffects)

  // -- finalize ----------------------------------------------------------------

  void finalize() {
    unsigned maxCycle = 0;
    for (const ScheduledOp& op : sched_.ops)
      maxCycle = std::max(maxCycle, op.lastCycle());
    for (const CBoxOp& op : sched_.cboxOps) maxCycle = std::max(maxCycle, op.time);
    for (const BranchOp& b : sched_.branches)
      maxCycle = std::max(maxCycle, b.time);
    sched_.length = maxCycle + 1;
    if (sched_.length > limit_)
      throw Unmappable{
          ScheduleFailure{FailureReason::ContextBudget,
                          "schedule length " + std::to_string(sched_.length) +
                              " exceeds context memory of " + comp_.name(),
                          kNoNode},
          TraceReject::None};

    sched_.vregsPerPE = nextVreg_;
    sched_.cboxSlotsUsed = nextCondSlot_;

    for (VarId v = 0; v < g_.numVariables(); ++v) {
      if (!varHomes_[v]) continue;
      sched_.varHomes.push_back(
          LiveBinding{v, varHomes_[v]->pe, varHomes_[v]->vreg});
      if (g_.variable(v).liveOut)
        sched_.liveOuts.push_back(
            LiveBinding{v, varHomes_[v]->pe, varHomes_[v]->vreg});
    }

    stats_.contextsUsed = sched_.length;
    stats_.cboxSlotsUsed = nextCondSlot_;
  }

  // -- members ----------------------------------------------------------------

  const Composition& comp_;
  const SchedulerOptions& opts_;
  const Cdfg& g_;
  /// Shared composition tables; points at ownedRouting_ when the caller did
  /// not supply a cache entry.
  const RoutingInfo* routing_ = nullptr;
  std::optional<RoutingInfo> ownedRouting_;
  /// Per-run decision trace; null when the request disabled tracing (every
  /// instrumentation point then costs one predicted-not-taken branch).
  Trace* trace_ = nullptr;

  Schedule sched_;
  ScheduleStats stats_;
  SchedulerMetrics metrics_;

  unsigned t_ = 0;
  unsigned limit_ = 0;
  bool stepHasOp_ = false;
  std::size_t scheduledCount_ = 0;
  /// Why the in-flight placement attempt failed (set via fail()).
  TraceReject reject_ = TraceReject::None;

  std::vector<double> priorities_;
  std::vector<std::vector<double>> attraction_;
  std::vector<unsigned> nodeStart_, nodeFinish_;
  std::vector<bool> nodeScheduled_;
  /// Per node: most informative rejection of its newest attempt step.
  std::vector<TraceReject> lastReject_;
  std::vector<unsigned> lastRejectStep_;
  std::vector<unsigned> remainingPreds_;
  std::set<NodeId> candidates_;

  std::vector<CycleOccupancy> peBusy_;
  std::vector<CycleSlots<unsigned>> outPort_;
  CycleOccupancy cboxOpAt_;
  CycleSlots<PredRef> predUse_;
  CycleOccupancy branchAt_;

  std::vector<unsigned> nextVreg_;
  unsigned nextCondSlot_ = 0;

  std::vector<std::optional<Location>> varHomes_;
  std::vector<std::vector<Location>> varCopies_;
  std::vector<std::vector<Location>> nodeLocs_;
  std::map<std::int32_t, std::vector<Location>> constLocs_;
  std::vector<Location> scratchLocs_;

  std::map<CondId, CondSlot> condSlots_;
  std::map<NodeId, CondSlot> rawSlots_;

  std::vector<OpenLoop> loopStack_;
  std::vector<std::vector<NodeId>> loopSubtree_;
};

}  // namespace

const char* failureReasonName(FailureReason reason) {
  switch (reason) {
    case FailureReason::None: return "none";
    case FailureReason::UnsupportedOp: return "unsupported-op";
    case FailureReason::UnroutableOperand: return "unroutable-operand";
    case FailureReason::ContextBudget: return "context-budget";
    case FailureReason::CBoxCapacity: return "cbox-capacity";
    case FailureReason::Internal: return "internal";
  }
  CGRA_UNREACHABLE("bad FailureReason");
}

const ScheduleReport& ScheduleReport::orThrow() const& {
  if (!ok) throw Error(failure.message);
  return *this;
}

ScheduleReport&& ScheduleReport::orThrow() && {
  if (!ok) throw Error(failure.message);
  return std::move(*this);
}

Scheduler::Scheduler(const Composition& comp, SchedulerOptions opts)
    : comp_(&comp), opts_(opts) {}

ScheduleReport Scheduler::schedule(const ScheduleRequest& request) const {
  CGRA_ASSERT_MSG(request.graph != nullptr,
                  "ScheduleRequest carries no graph");
  const SchedulerOptions& opts = request.options ? *request.options : opts_;
  std::shared_ptr<Trace> trace;
  if (request.trace.enabled) trace = std::make_shared<Trace>(request.trace);
  Run run(*comp_, opts, *request.graph, request.routing, trace.get());
  ScheduleReport report = run.execute();
  report.trace = std::move(trace);
  return report;
}

// The deprecated shims reproduce the legacy contract exactly: throw
// cgra::Error with the failure message on unmappable kernels. Both go
// straight to the request path (not through each other) so building this
// file never touches a deprecated symbol.

SchedulingResult Scheduler::schedule(const Cdfg& graph) const {
  ScheduleReport report = schedule(ScheduleRequest(graph));
  if (!report.ok) throw Error(report.failure.message);
  return SchedulingResult{std::move(report.schedule), report.stats,
                          report.metrics};
}

SchedulingResult Scheduler::schedule(const Cdfg& graph,
                                     const RoutingInfo* routing) const {
  ScheduleRequest request(graph);
  request.routing = routing;
  ScheduleReport report = schedule(request);
  if (!report.ok) throw Error(report.failure.message);
  return SchedulingResult{std::move(report.schedule), report.stats,
                          report.metrics};
}

}  // namespace cgra
