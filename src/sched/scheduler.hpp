// The scheduler — the paper's primary contribution (§V).
//
// A list scheduler (Algorithm 1) extended with:
//  * longest-path-weight priorities (§V-F);
//  * loop-compatibility checks: every loop occupies a contiguous context
//    interval; an inner loop may only open on a context with no other
//    operation, and only once every predecessor of every loop node has
//    finished; outer-loop nodes wait until the inner loop closes (§V-C);
//  * speculation + predication: pWRITEs commit into a variable's home
//    register gated by a C-Box condition; wrong-path and dry-pass results
//    are dismissed (§V-B);
//  * fusing: reads are folded into consumers (operand resolution), and a
//    pWRITE is folded into its producer when the producer lands on the home
//    PE, the condition is already available and no other node consumes the
//    value (§V-E);
//  * data locality and routing awareness: an attraction criterion orders
//    PEs, operand accessibility is resolved by inserting MOVE copies along
//    Floyd–Warshall shortest paths into earlier idle cycles, and constants
//    are materialized per consuming PE (§V-D, §V-G);
//  * C-Box as a scheduled resource: at most one status consumed, one
//    condition write, one PE-predication read and one branch read per cycle;
//    nested conditions are conjunctions of a stored condition and a raw
//    status slot (§V-H).
//
// The implementation is an explicit pass pipeline (src/sched/passes/): each
// pass takes the shared immutable ArchModel — built once per composition —
// and a mutable RunState. Public API: build a ScheduleRequest, call
// Scheduler::schedule(request), inspect the ScheduleReport. Scheduling
// failures (a kernel the composition cannot execute) are *data* —
// ScheduleReport::failure carries a typed FailureReason — not exceptions;
// exceptions remain for programmer errors (malformed CDFGs, violated
// invariants).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cdfg/cdfg.hpp"
#include "sched/metrics.hpp"
#include "sched/schedule.hpp"
#include "sched/trace.hpp"

namespace cgra {

class ArchModel;

/// Knobs for ablation benches and tests.
struct SchedulerOptions {
  /// Order PEs by the attraction criterion (§V-G); off = index order.
  bool useAttraction = true;
  /// Fuse pWRITEs into producers when legal (§V-E).
  bool fuseWrites = true;
  /// Sort candidates by longest-path weight (§V-F); off = creation order.
  bool longestPathPriority = true;
  /// Context budget; 0 uses the composition's context memory length.
  unsigned maxContexts = 0;
};

/// Why a kernel could not be mapped. Facade-level classification: the sweep
/// engine tallies these per composition instead of string-matching
/// exception text.
enum class FailureReason : std::uint8_t {
  None,              ///< the run succeeded
  UnsupportedOp,     ///< no PE in the composition implements an operation
  UnroutableOperand, ///< an operand had no reachable/copyable location
  ContextBudget,     ///< the kernel does not fit the context memory budget
  CBoxCapacity,      ///< C-Box slot/port pressure blocked progress
  Internal,          ///< unexpected error escaped the run (a library bug)
};

inline constexpr std::size_t kNumFailureReasons = 6;

const char* failureReasonName(FailureReason reason);

/// Structured description of a scheduling failure.
struct ScheduleFailure {
  FailureReason reason = FailureReason::None;
  /// Human-readable message (what call sites using orThrow() see thrown).
  std::string message;
  /// The node that was stuck when the run gave up; kNoNode when the
  /// failure is not node-scoped (e.g. a whole-schedule budget overflow).
  NodeId node = kNoNode;
};

/// One scheduling request: everything a run consumes, in one place. The
/// pointed-to graph must outlive the schedule() call. Composition analysis
/// tables are not part of the request: the Scheduler holds its
/// composition's memoized ArchModel, so N concurrent scheduler instances
/// on one composition share one immutable copy automatically.
struct ScheduleRequest {
  ScheduleRequest() = default;
  explicit ScheduleRequest(const Cdfg& g) : graph(&g) {}

  /// The validated CDFG to map. Required.
  const Cdfg* graph = nullptr;
  /// Per-request knobs; nullopt inherits the Scheduler's constructor
  /// options (so ablation setups keep configuring the scheduler once).
  std::optional<SchedulerOptions> options;
  /// Decision-trace configuration; disabled by default (zero cost).
  TraceOptions trace;
};

/// Everything a run produces: the schedule plus statistics (Table I
/// metrics), the per-run SchedulerMetrics consumed by the sweep engine,
/// the decision trace (when requested) and structured failure info.
struct ScheduleReport {
  /// True when `schedule` is complete and valid. When false, `failure`
  /// says why, `schedule` is empty, and metrics/trace cover the partial
  /// run (that partial trace is exactly what `cgra-tool explain` prints
  /// for unmappable kernels).
  bool ok = false;
  Schedule schedule;
  ScheduleStats stats;
  SchedulerMetrics metrics;
  ScheduleFailure failure;
  /// Decision trace; null unless the request enabled tracing. One ring
  /// buffer per run — sweeps never share or contend on trace state.
  std::shared_ptr<const Trace> trace;

  /// Throws cgra::Error carrying `failure.message` when !ok; otherwise
  /// returns the report unchanged. Lets call sites that treat failure as
  /// exceptional stay one expression.
  const ScheduleReport& orThrow() const&;
  ScheduleReport&& orThrow() &&;
};

/// Maps a validated CDFG onto a composition.
class Scheduler {
public:
  /// Resolves the composition's ArchModel once (memoized per composition
  /// instance): repeated schedule() calls never recompute Floyd–Warshall
  /// or per-opcode support tables.
  Scheduler(const Composition& comp, SchedulerOptions opts = {});

  /// The canonical entry point. Never throws for unmappable kernels — the
  /// report carries the typed failure; throws only for programmer errors
  /// (null/malformed graph, violated internal invariants).
  ScheduleReport schedule(const ScheduleRequest& request) const;

  /// The immutable analysis bundle all runs of this scheduler share.
  const ArchModel& model() const { return *model_; }

private:
  const Composition* comp_;
  SchedulerOptions opts_;
  std::shared_ptr<const ArchModel> model_;
};

}  // namespace cgra
