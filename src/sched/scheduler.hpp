// The scheduler — the paper's primary contribution (§V).
//
// A list scheduler (Algorithm 1) extended with:
//  * longest-path-weight priorities (§V-F);
//  * loop-compatibility checks: every loop occupies a contiguous context
//    interval; an inner loop may only open on a context with no other
//    operation, and only once every predecessor of every loop node has
//    finished; outer-loop nodes wait until the inner loop closes (§V-C);
//  * speculation + predication: pWRITEs commit into a variable's home
//    register gated by a C-Box condition; wrong-path and dry-pass results
//    are dismissed (§V-B);
//  * fusing: reads are folded into consumers (operand resolution), and a
//    pWRITE is folded into its producer when the producer lands on the home
//    PE, the condition is already available and no other node consumes the
//    value (§V-E);
//  * data locality and routing awareness: an attraction criterion orders
//    PEs, operand accessibility is resolved by inserting MOVE copies along
//    Floyd–Warshall shortest paths into earlier idle cycles, and constants
//    are materialized per consuming PE (§V-D, §V-G);
//  * C-Box as a scheduled resource: at most one status consumed, one
//    condition write, one PE-predication read and one branch read per cycle;
//    nested conditions are conjunctions of a stored condition and a raw
//    status slot (§V-H).
#pragma once

#include "cdfg/cdfg.hpp"
#include "sched/metrics.hpp"
#include "sched/schedule.hpp"

namespace cgra {

struct RoutingInfo;

/// Knobs for ablation benches and tests.
struct SchedulerOptions {
  /// Order PEs by the attraction criterion (§V-G); off = index order.
  bool useAttraction = true;
  /// Fuse pWRITEs into producers when legal (§V-E).
  bool fuseWrites = true;
  /// Sort candidates by longest-path weight (§V-F); off = creation order.
  bool longestPathPriority = true;
  /// Context budget; 0 uses the composition's context memory length.
  unsigned maxContexts = 0;
};

/// Result bundle: the schedule plus statistics (Table I metrics) and the
/// detailed per-run metrics consumed by the sweep engine.
struct SchedulingResult {
  Schedule schedule;
  ScheduleStats stats;
  SchedulerMetrics metrics;
};

/// Maps a validated CDFG onto a composition. Throws cgra::Error when the
/// kernel cannot be mapped (missing operation support, unroutable operands,
/// context/C-Box capacity exceeded).
class Scheduler {
public:
  Scheduler(const Composition& comp, SchedulerOptions opts = {});

  SchedulingResult schedule(const Cdfg& graph) const;

  /// Schedules with precomputed composition tables (see RoutingCache): the
  /// run reads `routing` instead of rebuilding sink/connectivity/support
  /// tables, so N concurrent scheduler instances on the same composition
  /// share one immutable copy. `routing` must outlive the call and must
  /// have been built from this scheduler's composition. Results are
  /// identical with or without a cache.
  SchedulingResult schedule(const Cdfg& graph,
                            const RoutingInfo* routing) const;

private:
  const Composition* comp_;
  SchedulerOptions opts_;
};

}  // namespace cgra
