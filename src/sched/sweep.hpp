// Parallel composition-sweep engine.
//
// Many-config exploration — scheduling K kernels on C candidate
// compositions — is the dominant end-to-end workload of this toolflow
// (synthesis candidate ranking, Table/Fig. reproduction benches, the
// all-pairs correctness matrix). Each (composition × kernel) job is an
// independent pure function, so the engine runs N jobs concurrently on a
// std::thread pool, shares one immutable ArchModel per composition across
// all scheduler instances (see arch/arch_model.hpp), and aggregates the
// per-run SchedulerMetrics into a JSON-exportable report.
//
// Determinism: the scheduler is single-threaded per job and jobs share no
// mutable state, so the engine produces bit-identical schedules for any
// thread count; results are returned in job order. Tests assert equality of
// Schedule::fingerprint() across thread counts {1, 2, 8}.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "arch/composition.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/metrics.hpp"
#include "sched/scheduler.hpp"

namespace cgra {

/// One (composition × kernel) scheduling job. The pointed-to composition
/// and graph must stay alive for the duration of the sweep.
struct SweepJob {
  const Composition* comp = nullptr;
  const Cdfg* graph = nullptr;
  /// Display label, e.g. "adpcm@mesh9" (defaults to the composition name).
  std::string label;
  SchedulerOptions options;
};

/// Outcome of one job. `failure.reason` is None on success; a scheduling
/// failure (unmappable kernel, capacity exceeded) is recorded, not thrown,
/// so one infeasible pair cannot abort a sweep.
struct SweepJobResult {
  std::string label;
  bool ok = false;
  /// Content hash of (composition, graph, options) — see sched/job_key.hpp.
  /// Identical keys mean bit-identical schedules; the sweep engine
  /// schedules each distinct key once and the artifact layer uses the same
  /// key for its persistent cache.
  std::string cacheKey;
  /// True when this result was copied from an identical job in the same
  /// sweep (in-sweep dedup) or served from a persistent artifact store.
  bool fromCache = false;
  std::string error;             ///< failure.message mirror (legacy field)
  ScheduleFailure failure;       ///< typed reason + message when !ok
  Schedule schedule;             ///< empty when !ok or !keepSchedules
  ScheduleStats stats;           ///< valid when ok
  SchedulerMetrics metrics;      ///< valid when ok
  std::uint64_t fingerprint = 0; ///< Schedule::fingerprint() when ok
  /// Mean per-PE static utilization of the produced schedule (see
  /// computeScheduleQuality); 0 when !ok. Lets sweeps rank compositions by
  /// schedule quality, not just feasibility and context count.
  double staticUtilization = 0.0;
  /// Per-job decision trace; null unless SweepOptions::trace.enabled. Each
  /// job owns its ring buffer — worker threads never share trace state.
  std::shared_ptr<const Trace> trace;
};

struct SweepOptions {
  /// Worker threads; 0 selects the hardware concurrency, 1 runs inline.
  unsigned threads = 0;
  /// Drop the (potentially large) schedules and keep only stats/metrics —
  /// candidate ranking only needs lengths and fingerprints.
  bool keepSchedules = true;
  /// Per-job decision tracing (see sched/trace.hpp). Off by default.
  TraceOptions trace;
  /// When non-empty, write each job's Chrome trace-event JSON to
  /// `<traceDir>/<label>.trace.json` (label sanitized for the filesystem).
  /// Implies trace.enabled. Files are written serially after the sweep.
  std::string traceDir;
};

/// Sweep outcome: per-job results in job order plus merged metrics.
struct SweepReport {
  std::vector<SweepJobResult> results;
  SchedulerMetrics aggregate;  ///< merged over successful jobs
  double wallTimeMs = 0.0;
  unsigned threadsUsed = 1;
  std::size_t failures = 0;
  /// Failure tally by typed reason, indexed by FailureReason. A sweep over
  /// candidate compositions reads this to distinguish "too few contexts"
  /// from "missing op support" without string-matching messages.
  std::array<std::size_t, kNumFailureReasons> failuresByReason{};
  std::size_t routingCacheEntries = 0;  ///< distinct compositions seen
  /// ArchModel builds this sweep actually performed (vs. served memoized).
  /// Volatile by design: a composition whose model was already built by an
  /// earlier sweep or Scheduler contributes 0 here, so the field is only
  /// exported when `includeVolatile` — like the cache counters below.
  std::size_t archModelBuilds = 0;
  /// Wall time spent building ArchModels during the warm-up phase (ms).
  double archModelBuildMs = 0.0;
  /// Mean staticUtilization over successful jobs (0 when none succeeded).
  double meanStaticUtilization = 0.0;
  /// Jobs served by copying an identical job's result within this sweep
  /// (same cache key scheduled once). Deterministic for a given job list,
  /// so it appears in the stable JSON form.
  std::size_t dedupedJobs = 0;
  /// Persistent-cache traffic, filled by artifact::runCachedSweep. Volatile
  /// by design (a warm run differs from a cold one), so these fields are
  /// only exported when `includeVolatile` — `--stable` metrics JSON stays
  /// byte-identical between cold and warm runs.
  bool cacheEnabled = false;
  std::size_t cacheHits = 0;
  std::size_t cacheMisses = 0;
  std::size_t cacheEvictions = 0;

  /// {"threads": .., "wallTimeMs": .., "aggregate": {...}, "jobs": [...]}
  /// — the `cgra-tool sweep --metrics` schema (see DESIGN.md). Keys are
  /// sorted at every level. `includeVolatile = false` omits the fields that
  /// legitimately vary run-to-run (thread count, every wall-time field), so
  /// the output is byte-stable across thread counts and machines; tests
  /// diff these bytes directly.
  json::Value toJson(bool includeVolatile = true) const;
};

/// Schedules every job, `options.threads` at a time. Thread count affects
/// wall time only, never the schedules.
SweepReport runSweep(const std::vector<SweepJob>& jobs,
                     const SweepOptions& options = {});

}  // namespace cgra
