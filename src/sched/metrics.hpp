// Scheduler metrics: counters and per-phase wall time of one scheduling run.
//
// The composition-sweep engine aggregates these across N (composition ×
// kernel) jobs and exports them as JSON (`cgra-tool sweep --metrics`), so
// many-config explorations can be profiled without re-instrumenting the
// scheduler: where does the wall time go (planning vs. setup), how many
// candidate-loop iterations and rejected placement probes
// does a composition cost, how much copy/const/C-Box traffic it induces.
#pragma once

#include <cstdint>
#include <vector>

#include "json/json.hpp"
#include "sched/schedule.hpp"

namespace cgra {

/// Counters + timings of one scheduling run (or a merged aggregate).
struct SchedulerMetrics {
  // Work counters.
  std::uint64_t nodesScheduled = 0;     ///< CDFG nodes placed
  std::uint64_t copiesInserted = 0;     ///< routing MOVE ops
  std::uint64_t constsInserted = 0;     ///< CONST materializations
  std::uint64_t fusedWrites = 0;        ///< pWRITEs folded into producers
  std::uint64_t cboxOps = 0;            ///< C-Box context entries emitted
  std::uint64_t branches = 0;           ///< CCU back-branches emitted
  // Search-effort counters.
  std::uint64_t steps = 0;               ///< scheduling steps (contexts visited)
  std::uint64_t candidateIterations = 0; ///< candidate-loop iterations
  std::uint64_t placementAttempts = 0;   ///< candidate × PE placements tried
  std::uint64_t probeRejections = 0;     ///< probes rejected (rolled back)
  // Per-phase wall time (milliseconds).
  double setupMs = 0.0;     ///< validation + state/routing-table setup
  double planMs = 0.0;      ///< main scheduling loop
  double finalizeMs = 0.0;  ///< finalize + stats
  double totalMs = 0.0;
  // Per-pass breakdown of the planning loop (sums to ~planMs; the
  // remainder is loop bookkeeping). Volatile like every wall time: present
  // in `--metrics` JSON, excluded from the `--stable` form.
  double loopCloseMs = 0.0;  ///< tryCloseLoops: loop closure + invalidation
  double placementMs = 0.0;  ///< planStep: candidate × PE placement probes
  // Exclusive per-pass self-times from the PassTimer (DESIGN.md §13): each
  // nanosecond of the instrumented run is attributed to exactly one of the
  // nine passes (the innermost active scope), so nested calls — a placement
  // probe dipping into routing, fusing and the C-Box — never double-count.
  // Volatile like every wall time; gateable via bench_compare --gate-timing.
  double passAnalysisMs = 0.0;
  double passCandidateMs = 0.0;
  double passCostModelMs = 0.0;
  double passPlacementMs = 0.0;
  double passRoutingMs = 0.0;
  double passFusingMs = 0.0;
  double passCboxMs = 0.0;
  double passLoopMs = 0.0;
  double passFinalizeMs = 0.0;

  /// Number of runs merged into this aggregate (1 for a single run).
  std::uint64_t runs = 1;

  /// Element-wise accumulation (wall times add; `runs` adds).
  void merge(const SchedulerMetrics& other);

  /// Flat JSON object, keys matching the field names above, sorted.
  /// `includeTimings = false` omits the wall-time fields — the byte-stable
  /// form the sweep engine exports so reports diff cleanly across machines
  /// and thread counts.
  json::Value toJson(bool includeTimings = true) const;
};

/// Static quality of one PE within a schedule.
struct PEQuality {
  PEId pe = 0;
  unsigned busyCycles = 0;   ///< contexts with an op in flight on this PE
  unsigned opsIssued = 0;
  unsigned insertedOps = 0;  ///< scheduler-inserted MOVE/CONST (node==kNoNode)
  double utilization = 0.0;  ///< busyCycles / schedule length
  /// Trailing contexts after this PE's last commit: length - 1 - lastCycle
  /// (== length for a PE with no ops). A zero-slack PE bounds the schedule —
  /// it is on the critical path.
  unsigned slack = 0;
};

/// Static schedule-quality metrics: what the schedule *shape* promises,
/// before any execution (contrast SimCounters, which reports what one run
/// *achieved* — a 10-context loop body iterated 400 times dominates runtime
/// utilization regardless of its share of the context memory).
struct ScheduleQuality {
  unsigned length = 0;  ///< contexts used
  unsigned numPEs = 0;
  unsigned totalOps = 0;
  unsigned insertedOps = 0;        ///< copies + const materializations
  unsigned fusedWrites = 0;        ///< from ScheduleStats when provided
  double staticUtilization = 0.0;  ///< mean per-PE busyCycles / length
  double contextOccupancy = 0.0;   ///< fraction of contexts issuing ≥ 1 op
  double copyRatio = 0.0;          ///< insertedOps / totalOps
  double fusedRatio = 0.0;         ///< fusedWrites / totalOps (0 if unknown)
  unsigned cboxSlotsUsed = 0;
  unsigned cboxBusyCycles = 0;     ///< contexts with a C-Box entry
  std::vector<PEQuality> perPE;

  /// Nested JSON with lexicographically sorted keys (byte-stable).
  json::Value toJson() const;
};

/// Computes static quality metrics of `sched` on `comp`. `stats` (when
/// available from the scheduling run) contributes the fused-write ratio,
/// which the schedule alone no longer records.
ScheduleQuality computeScheduleQuality(const Schedule& sched,
                                       const Composition& comp,
                                       const ScheduleStats* stats = nullptr);

}  // namespace cgra
