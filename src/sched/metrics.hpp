// Scheduler metrics: counters and per-phase wall time of one scheduling run.
//
// The composition-sweep engine aggregates these across N (composition ×
// kernel) jobs and exports them as JSON (`cgra-tool sweep --metrics`), so
// many-config explorations can be profiled without re-instrumenting the
// scheduler: where does the wall time go (planning vs. setup), how many
// candidate-loop iterations and failed placement attempts ("backtracks")
// does a composition cost, how much copy/const/C-Box traffic it induces.
#pragma once

#include <cstdint>

#include "json/json.hpp"

namespace cgra {

/// Counters + timings of one scheduling run (or a merged aggregate).
struct SchedulerMetrics {
  // Work counters.
  std::uint64_t nodesScheduled = 0;     ///< CDFG nodes placed
  std::uint64_t copiesInserted = 0;     ///< routing MOVE ops
  std::uint64_t constsInserted = 0;     ///< CONST materializations
  std::uint64_t fusedWrites = 0;        ///< pWRITEs folded into producers
  std::uint64_t cboxOps = 0;            ///< C-Box context entries emitted
  std::uint64_t branches = 0;           ///< CCU back-branches emitted
  // Search-effort counters.
  std::uint64_t steps = 0;               ///< scheduling steps (contexts visited)
  std::uint64_t candidateIterations = 0; ///< candidate-loop iterations
  std::uint64_t placementAttempts = 0;   ///< candidate × PE placements tried
  std::uint64_t backtracks = 0;          ///< attempts rejected after probing
  // Per-phase wall time (milliseconds).
  double setupMs = 0.0;     ///< validation + state/routing-table setup
  double planMs = 0.0;      ///< main scheduling loop
  double finalizeMs = 0.0;  ///< finalize + stats
  double totalMs = 0.0;

  /// Number of runs merged into this aggregate (1 for a single run).
  std::uint64_t runs = 1;

  /// Element-wise accumulation (wall times add; `runs` adds).
  void merge(const SchedulerMetrics& other);

  /// Flat JSON object, keys matching the field names above.
  json::Value toJson() const;
};

}  // namespace cgra
