// Priority/analysis pass: mappability screening and run-state
// initialization (longest-path priorities §V-F, the dependence frontier,
// capped per-cycle resource maps, per-loop subtree lists).
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Populates the RunState for a fresh run. Throws Unmappable when the
/// kernel contains an operation no PE of the composition supports.
/// `st.limit` must already hold the context budget.
void runAnalysisPass(const ArchModel& model, RunState& st);

}  // namespace cgra::passes
