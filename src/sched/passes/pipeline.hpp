// Pass-pipeline driver: one scheduling run = analysis → (per step:
// loop-closure → placement, which pulls in candidate ordering, the cost
// model, C-Box allocation, fusing and routing) → finalize, all over a
// shared immutable ArchModel and a mutable RunState.
#pragma once

#include "arch/arch_model.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/scheduler.hpp"
#include "sched/trace.hpp"

namespace cgra::passes {

/// Runs the full scheduling pipeline for one kernel. `model` must have been
/// built for `comp` (the same composition the caller schedules onto).
ScheduleReport runPipeline(const ArchModel& model, const Composition& comp,
                           const SchedulerOptions& opts, const Cdfg& g,
                           Trace* trace);

}  // namespace cgra::passes
