// Finalize: derives schedule length, validates it against the context
// budget, and publishes variable homes / live-in-out bindings and resource
// totals onto the Schedule.
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

void runFinalizePass(const ArchModel& model, RunState& st);

}  // namespace cgra::passes
