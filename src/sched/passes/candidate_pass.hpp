// Candidate selection: the dependence-frontier snapshot ordered by
// longest-path priority (§V-F), ids breaking ties.
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// The current candidate set, highest priority first (creation order when
/// SchedulerOptions::longestPathPriority is off).
std::vector<NodeId> sortedCandidates(const RunState& st);

}  // namespace cgra::passes
