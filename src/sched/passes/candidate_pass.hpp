// Candidate selection: the dependence-frontier snapshot ordered by
// longest-path priority (§V-F), ids breaking ties.
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Snapshot of the current candidate frontier, highest priority first
/// (creation order when SchedulerOptions::longestPathPriority is off). The
/// frontier is kept sorted incrementally, so this is a plain copy into the
/// reusable `st.scratchCandidates` buffer — a stable iteration view while
/// placements mutate `st.candidates` underneath.
const std::vector<NodeId>& candidateSnapshot(RunState& st);

}  // namespace cgra::passes
