#include "sched/passes/fusing_pass.hpp"

#include <algorithm>

namespace cgra::passes {

std::optional<NodeId> fusablePWrite(const RunState& st, NodeId id) {
  PassScope scope(st.passTimer, PassId::Fusing);
  if (!st.opts.fuseWrites) return std::nullopt;
  const Node& n = st.g.node(id);
  if (n.kind != NodeKind::Operation || !writesRegister(n.op))
    return std::nullopt;
  std::optional<NodeId> writer;
  for (const Edge& e : st.g.outEdges(id)) {
    if (e.kind != DepKind::Flow) continue;
    const Node& to = st.g.node(e.to);
    const bool consumesValue =
        to.isPWrite()
            ? to.operands[0] == Operand::node(id)
            : std::any_of(to.operands.begin(), to.operands.end(),
                          [&](const Operand& o) {
                            return o == Operand::node(id);
                          });
    if (!consumesValue) continue;  // pure ordering edge
    if (!to.isPWrite()) return std::nullopt;  // value also read directly
    if (writer) return std::nullopt;          // multiple writers
    writer = e.to;
  }
  if (!writer) return std::nullopt;
  const Node& w = st.g.node(*writer);
  if (w.loop != n.loop) return std::nullopt;
  return writer;
}

bool pWriteDepsMet(const RunState& st, NodeId writer, NodeId producer,
                   unsigned t) {
  PassScope scope(st.passTimer, PassId::Fusing);
  for (const Edge& e : st.g.inEdges(writer)) {
    if (e.from == producer) continue;
    if (!st.nodeScheduled[e.from]) return false;
    const unsigned c = e.kind == DepKind::Anti ? st.nodeStart[e.from]
                                               : st.nodeFinish[e.from];
    if (c > t) return false;
  }
  return true;
}

}  // namespace cgra::passes
