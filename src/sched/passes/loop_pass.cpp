#include "sched/passes/loop_pass.hpp"

#include <algorithm>

#include "sched/passes/cbox_pass.hpp"

namespace cgra::passes {

namespace {

/// Pre-loop copies of variables rewritten inside a freshly opened loop
/// would not refresh per iteration; invalidate them for later readers.
void openLoopEffects(RunState& st, LoopId child) {
  const unsigned cap = st.t == 0 ? 0 : st.t - 1;
  for (VarId v = 0; v < st.g.numVariables(); ++v)
    if (st.g.varWrittenInLoop(v, child))
      for (Location& copy : st.varCopies[v])
        copy.validUntil = std::min(copy.validUntil, cap);
}

}  // namespace

bool loopPredsFinished(const RunState& st, LoopId l, unsigned t) {
  for (NodeId m : st.loopSubtree[l])
    for (const Edge& e : st.g.inEdges(m)) {
      if (st.g.loopContains(l, st.g.node(e.from).loop)) continue;  // internal
      if (!st.nodeScheduled[e.from]) return false;
      const unsigned constraint = e.kind == DepKind::Anti
                                      ? st.nodeStart[e.from]
                                      : st.nodeFinish[e.from];
      if (constraint > t) return false;
    }
  return true;
}

void tryCloseLoops(const ArchModel& model, RunState& st) {
  while (st.loopStack.size() > 1) {
    const OpenLoop& top = st.loopStack.back();
    const LoopId l = top.loop;

    bool allDone = true;
    unsigned lastCycle = top.start;
    for (NodeId m : st.loopSubtree[l]) {
      if (!st.nodeScheduled[m]) {
        allDone = false;
        break;
      }
      lastCycle = std::max(lastCycle, st.nodeFinish[m] - 1);
    }
    if (!allDone || lastCycle > st.t - 1 || st.t == 0) return;

    const Loop& loop = st.g.loop(l);
    const CondId bodyCond = loop.bodyCond;
    const auto pred = ensureCondition(model, st, bodyCond, st.t - 1);
    if (!pred) return;
    // One branch (and one branch-selection read) per context; the scan is
    // bounded by the context ceiling (a saturated branch unit yields
    // nullopt instead of growing the map indefinitely).
    const auto b = st.branchAt.firstFreeAtOrAfter(
        std::max(lastCycle, st.condSlots.at(bodyCond).ready));
    // The branch must land strictly before the current step so outer
    // candidates can never share the back-branch context.
    if (!b || *b > st.t - 1) return;

    BranchOp br;
    br.time = *b;
    br.target = top.start;
    br.conditional = true;
    // bodyCond already encodes the continue polarity of the literal.
    br.pred = *pred;
    br.loop = l;
    st.sched.branches.push_back(br);
    st.branchAt.mark(*b);
    st.sched.loops.push_back(LoopInterval{l, top.start, *b});
    CGRA_TRACE(st.trace, BranchPlaced, .cycle = *b, .a = top.start);
    CGRA_TRACE(st.trace, LoopClosed, .cycle = st.t, .a = l, .b = *b);
    st.loopStack.pop_back();
  }
}

bool loopCompatible(const ArchModel& /*model*/, RunState& st, NodeId id) {
  const LoopId nodeLoop = st.g.node(id).loop;
  const LoopId cur = st.currentLoop();
  if (nodeLoop == cur) return true;
  if (!st.g.loopContains(cur, nodeLoop)) return false;  // outer/unrelated: wait

  // Descend one level at a time; each open requires an operation-free
  // context and all external predecessors of the whole subtree finished.
  while (st.currentLoop() != nodeLoop) {
    LoopId child = nodeLoop;
    while (st.g.loop(child).parent != st.currentLoop())
      child = st.g.loop(child).parent;
    if (st.stepHasOp) return false;
    if (!loopPredsFinished(st, child, st.t)) return false;
    st.loopStack.push_back(OpenLoop{child, st.t});
    CGRA_TRACE(st.trace, LoopOpened, .cycle = st.t, .a = child);
    openLoopEffects(st, child);
  }
  return true;
}

}  // namespace cgra::passes
