// Mutable state of one scheduling run, shared by every pass.
//
// The pipeline (see pipeline.hpp) drives a sequence of focused passes —
// priority/analysis, candidate selection, placement, routing/copy
// insertion, fusing, C-Box allocation, loop closure, finalize — each taking
// `(const ArchModel&, RunState&)`. The RunState owns everything a run
// mutates: the schedule under construction, per-node bookkeeping, per-cycle
// resource maps, value locations, condition slots and the open-loop stack.
// It lives on the stack of one `Scheduler::schedule` call and is never
// shared across threads; all cross-thread sharing goes through the
// immutable ArchModel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "arch/arch_model.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/metrics.hpp"
#include "sched/passes/pass_timer.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/trace.hpp"
#include "support/occupancy.hpp"
#include "support/small_vector.hpp"

namespace cgra::passes {

/// Internal control-flow signal for "this kernel cannot be mapped". Thrown
/// deep inside a pass, caught by the pipeline driver and converted into
/// ScheduleReport::failure — it never crosses the public API. Exceptions
/// that do escape (InternalError, malformed-graph Error) are programmer
/// errors by contract.
struct Unmappable {
  ScheduleFailure failure;
  /// Last placement-rejection reason of the stuck node, for the trace's
  /// Failure event.
  TraceReject lastReject = TraceReject::None;
};

/// One place a value can be read from: a (PE, virtual register) pair with
/// the first cycle a read succeeds and the last cycle it is still valid
/// (copies of variables become stale when the home is rewritten or when a
/// loop that rewrites the variable opens — see DESIGN.md §5/§6 rationale).
struct Location {
  PEId pe = 0;
  unsigned vreg = 0;
  unsigned ready = 0;
  unsigned validUntil = kNoLimit;

  static constexpr unsigned kNoLimit = static_cast<unsigned>(-1);
};

/// Per-value location list. Values rarely exist in more than a handful of
/// places (home/result register + a few routed copies), so the inline
/// capacity absorbs nearly all lists without heap traffic.
using LocationList = SmallVector<Location, 4>;

/// Materialized condition: C-Box slot + polarity and first readable cycle.
struct CondSlot {
  PredRef ref;
  unsigned ready = 0;
};

/// One entry of the open-loop stack: the loop and its first context.
struct OpenLoop {
  LoopId loop;
  unsigned start;
};

class CostModel;

/// Append-position snapshot of every probe-journaled structure. Captured by
/// RunState::savepoint() and consumed by rollbackTo(), which undoes all
/// journaled mutations recorded after the snapshot (see the transactional
/// probe contract in DESIGN.md: a failed probe may touch only the per-node
/// rejection bookkeeping and the trace).
struct ProbeSavepoint {
  // Direct container/scalar snapshots.
  std::size_t ops = 0;
  std::size_t cboxOps = 0;
  std::size_t liveIns = 0;
  std::uint64_t copiesInserted = 0;
  std::uint64_t constsInserted = 0;
  unsigned nextCondSlot = 0;
  // Journal append positions.
  std::size_t homes = 0;
  std::size_t vregs = 0;
  std::size_t busy = 0;
  std::size_t ports = 0;
  std::size_t preds = 0;
  std::size_t conds = 0;
  std::size_t locs = 0;
};

struct RunState {
  RunState(const Composition& comp, const SchedulerOptions& opts,
           const Cdfg& g, Trace* trace)
      : comp(comp), opts(opts), g(g), trace(trace) {}

  RunState(const RunState&) = delete;
  RunState& operator=(const RunState&) = delete;

  // -- run inputs -------------------------------------------------------------

  const Composition& comp;
  const SchedulerOptions& opts;
  const Cdfg& g;
  /// Per-run decision trace; null when the request disabled tracing (every
  /// instrumentation point then costs one predicted-not-taken branch).
  Trace* trace = nullptr;
  /// Placement cost model (the attraction criterion, §V-G); set by the
  /// pipeline before planning starts.
  const CostModel* costModel = nullptr;

  // -- run outputs ------------------------------------------------------------

  Schedule sched;
  ScheduleStats stats;
  SchedulerMetrics metrics;
  /// Exclusive per-pass wall-time attribution (see pass_timer.hpp).
  /// `mutable` because it is metrics bookkeeping like `metrics` and the
  /// trace — const pass entry points (fusing feasibility checks) still
  /// charge their self-time, and the probe contract exempts it.
  mutable PassTimer passTimer;

  // -- planning cursor --------------------------------------------------------

  unsigned t = 0;
  unsigned limit = 0;
  bool stepHasOp = false;
  std::size_t scheduledCount = 0;
  /// Why the in-flight placement attempt failed (set via fail()).
  TraceReject reject = TraceReject::None;

  // -- per-node bookkeeping ---------------------------------------------------

  std::vector<double> priorities;
  std::vector<std::vector<double>> attraction;
  std::vector<unsigned> nodeStart, nodeFinish;
  std::vector<bool> nodeScheduled;
  /// Per node: most informative rejection of its newest attempt step.
  std::vector<TraceReject> lastReject;
  std::vector<unsigned> lastRejectStep;
  std::vector<unsigned> remainingPreds;
  /// Dependence frontier, maintained in probe order (priority descending,
  /// id ascending under longestPathPriority; plain ascending id otherwise).
  /// Incrementally kept sorted by insertCandidate()/eraseCandidate() — the
  /// seed re-sorted a std::set snapshot on every planStep sweep. Priorities
  /// are fixed after analysis, so a node's rank never changes while queued.
  std::vector<NodeId> candidates;

  // -- per-cycle resource maps ------------------------------------------------

  std::vector<CycleOccupancy> peBusy;
  std::vector<CycleSlots<unsigned>> outPort;
  CycleOccupancy cboxOpAt;
  CycleSlots<PredRef> predUse;
  CycleOccupancy branchAt;

  std::vector<unsigned> nextVreg;
  unsigned nextCondSlot = 0;

  // -- value locations --------------------------------------------------------

  std::vector<std::optional<Location>> varHomes;
  std::vector<LocationList> varCopies;
  std::vector<LocationList> nodeLocs;
  std::map<std::int32_t, LocationList> constLocs;
  LocationList scratchLocs;

  // -- reusable hot-loop scratch buffers --------------------------------------

  /// candidateSnapshot()'s buffer: the frontier copy one planStep sweep
  /// iterates while placements mutate `candidates`.
  std::vector<NodeId> scratchCandidates;
  /// CostModel::orderPEs()'s buffer (one PE preference order per probe).
  std::vector<PEId> scratchPEOrder;

  // -- conditions and loops ---------------------------------------------------

  std::map<CondId, CondSlot> condSlots;
  std::map<NodeId, CondSlot> rawSlots;

  std::vector<OpenLoop> loopStack;
  std::vector<std::vector<NodeId>> loopSubtree;

  // -- transactional placement probes -----------------------------------------
  //
  // A (node, PE) placement probe may fail after mutating shared run state
  // (variable homes, live-in bindings, routing copies, C-Box slots). Every
  // such mutation between beginProbe() and commitProbe()/rollbackProbe() is
  // journaled by the mutators below; rollback restores the exact pre-probe
  // state, so a rejected probe observably touches only `lastReject`,
  // `metrics` counters and the trace. savepoint()/rollbackTo() expose the
  // same mechanism for sub-transactions inside a probe (the fusion path's
  // speculative condition materialization).

  bool probeActive = false;
  ProbeSavepoint probeBase;

  struct BusyMark {
    PEId pe;
    unsigned from;
    unsigned dur;
  };
  struct PortClaim {
    PEId pe;
    unsigned cycle;
  };
  /// One location pushed into nodeLocs/varCopies/constLocs: the owning key.
  struct LocPush {
    Operand::Kind kind;
    std::uint32_t id;   ///< NodeId or VarId
    std::int32_t imm;   ///< constLocs key for Immediate
  };
  std::vector<VarId> jHomes;
  std::vector<PEId> jVregs;
  std::vector<BusyMark> jBusy;
  std::vector<PortClaim> jPorts;
  std::vector<unsigned> jPreds;
  std::vector<CondId> jConds;
  std::vector<LocPush> jLocs;

  ProbeSavepoint savepoint() const {
    ProbeSavepoint sp;
    sp.ops = sched.ops.size();
    sp.cboxOps = sched.cboxOps.size();
    sp.liveIns = sched.liveIns.size();
    sp.copiesInserted = stats.copiesInserted;
    sp.constsInserted = stats.constsInserted;
    sp.nextCondSlot = nextCondSlot;
    sp.homes = jHomes.size();
    sp.vregs = jVregs.size();
    sp.busy = jBusy.size();
    sp.ports = jPorts.size();
    sp.preds = jPreds.size();
    sp.conds = jConds.size();
    sp.locs = jLocs.size();
    return sp;
  }

  /// Undoes every journaled mutation made after `sp` (newest first).
  void rollbackTo(const ProbeSavepoint& sp) {
    while (sched.cboxOps.size() > sp.cboxOps) {
      cboxOpAt.clear(sched.cboxOps.back().time);
      sched.cboxOps.pop_back();
    }
    sched.ops.resize(sp.ops);
    sched.liveIns.resize(sp.liveIns);
    stats.copiesInserted = sp.copiesInserted;
    stats.constsInserted = sp.constsInserted;
    nextCondSlot = sp.nextCondSlot;
    while (jConds.size() > sp.conds) {
      condSlots.erase(jConds.back());
      jConds.pop_back();
    }
    while (jHomes.size() > sp.homes) {
      varHomes[jHomes.back()].reset();
      jHomes.pop_back();
    }
    while (jLocs.size() > sp.locs) {
      const LocPush& p = jLocs.back();
      switch (p.kind) {
        case Operand::Kind::Node: nodeLocs[p.id].pop_back(); break;
        case Operand::Kind::Variable: varCopies[p.id].pop_back(); break;
        case Operand::Kind::Immediate: constLocs[p.imm].pop_back(); break;
      }
      jLocs.pop_back();
    }
    while (jBusy.size() > sp.busy) {
      const BusyMark& m = jBusy.back();
      peBusy[m.pe].clear(m.from, m.dur);
      jBusy.pop_back();
    }
    while (jPorts.size() > sp.ports) {
      outPort[jPorts.back().pe].release(jPorts.back().cycle);
      jPorts.pop_back();
    }
    while (jPreds.size() > sp.preds) {
      predUse.release(jPreds.back());
      jPreds.pop_back();
    }
    while (jVregs.size() > sp.vregs) {
      --nextVreg[jVregs.back()];
      jVregs.pop_back();
    }
  }

  void beginProbe() {
    CGRA_ASSERT(!probeActive);
    probeActive = true;
    probeBase = savepoint();
  }

  void commitProbe() {
    CGRA_ASSERT(probeActive);
    probeActive = false;
    clearJournal();
  }

  void rollbackProbe() {
    CGRA_ASSERT(probeActive);
    rollbackTo(probeBase);
    probeActive = false;
    clearJournal();
  }

  void clearJournal() {
    jHomes.clear();
    jVregs.clear();
    jBusy.clear();
    jPorts.clear();
    jPreds.clear();
    jConds.clear();
    jLocs.clear();
  }

  // -- resource helpers -------------------------------------------------------

  bool busy(PEId pe, unsigned from, unsigned dur) const {
    return peBusy[pe].anyBusy(from, dur);
  }

  void markBusy(PEId pe, unsigned from, unsigned dur) {
    // Every call site verifies the range free first, so the marked range is
    // disjoint from all earlier marks and clear() restores it exactly.
    if (probeActive) jBusy.push_back(BusyMark{pe, from, dur});
    peBusy[pe].mark(from, dur);
  }

  /// Checks/claims a source PE's output port at a cycle for a register.
  bool outPortFree(PEId pe, unsigned cycle, unsigned vreg) const {
    return outPort[pe].freeFor(cycle, vreg);
  }

  void claimOutPort(PEId pe, unsigned cycle, unsigned vreg) {
    // Journal only first claims: re-claiming the same vreg on a cycle an
    // earlier committed op already exposed must survive a rollback.
    if (probeActive && outPort[pe].get(cycle) == nullptr)
      jPorts.push_back(PortClaim{pe, cycle});
    outPort[pe].claim(cycle, vreg);
  }

  unsigned freshVreg(PEId pe) {
    if (probeActive) jVregs.push_back(pe);
    return nextVreg[pe]++;
  }

  /// Per-cycle single predication signal (the C-Box outPE output is one
  /// wire broadcast to all PEs).
  bool predSignalAvailable(unsigned cycle, const PredRef& ref) const {
    return predUse.freeFor(cycle, ref);
  }

  void claimPredSignal(unsigned cycle, const PredRef& ref) {
    if (probeActive && predUse.get(cycle) == nullptr) jPreds.push_back(cycle);
    predUse.claim(cycle, ref);
  }

  /// Caches a materialized condition; the insert is undone on rollback.
  void insertCondSlot(CondId c, const CondSlot& slot) {
    const bool inserted = condSlots.emplace(c, slot).second;
    CGRA_ASSERT(inserted);
    if (probeActive) jConds.push_back(c);
  }

  /// Assigns a variable's home register (§V-D heuristic: the PE that can
  /// provide the value to the first PE requiring it — we pin the home on
  /// that very PE). For live-in variables the host transfer is recorded.
  void assignHome(VarId var, PEId pe) {
    CGRA_ASSERT(!varHomes[var]);
    const unsigned vreg = freshVreg(pe);
    if (probeActive) jHomes.push_back(var);
    varHomes[var] = Location{pe, vreg, 0, Location::kNoLimit};
    if (g.variable(var).liveIn)
      sched.liveIns.push_back(LiveBinding{var, pe, vreg});
  }

  /// Ensures the variable has a home; used on first read.
  void homeFor(VarId var, PEId consumerPe) {
    if (!varHomes[var]) assignHome(var, consumerPe);
  }

  LoopId currentLoop() const { return loopStack.back().loop; }

  // -- candidate frontier -----------------------------------------------------

  /// Strict total probe order over frontier nodes (ids are unique, so
  /// priority ties cannot make the order ambiguous). Matches the seed's
  /// stable_sort of the set snapshot bit for bit.
  bool candidateBefore(NodeId a, NodeId b) const {
    if (opts.longestPathPriority && priorities[a] != priorities[b])
      return priorities[a] > priorities[b];
    return a < b;
  }

  void insertCandidate(NodeId id) {
    const auto pos = std::lower_bound(
        candidates.begin(), candidates.end(), id,
        [this](NodeId x, NodeId y) { return candidateBefore(x, y); });
    candidates.insert(pos, id);
  }

  void eraseCandidate(NodeId id) {
    const auto pos = std::lower_bound(
        candidates.begin(), candidates.end(), id,
        [this](NodeId x, NodeId y) { return candidateBefore(x, y); });
    CGRA_ASSERT(pos != candidates.end() && *pos == id);
    candidates.erase(pos);
  }

  /// Rejects the current placement attempt with a reason the placement pass
  /// picks up for the trace and the per-node failure classification.
  bool fail(TraceReject why) {
    reject = why;
    return false;
  }

  // -- value locations --------------------------------------------------------

  LocationList* locationsFor(const Operand& o) {
    switch (o.kind()) {
      case Operand::Kind::Node:
        return &nodeLocs[o.nodeId()];
      case Operand::Kind::Variable: {
        // Home first (if assigned), then copies.
        scratchLocs.clear();
        if (varHomes[o.varId()])
          scratchLocs.push_back(*varHomes[o.varId()]);
        for (const Location& l : varCopies[o.varId()])
          scratchLocs.push_back(l);
        return &scratchLocs;
      }
      case Operand::Kind::Immediate: {
        scratchLocs.clear();
        const auto it = constLocs.find(o.imm());
        if (it != constLocs.end()) scratchLocs = it->second;
        return &scratchLocs;
      }
    }
    return nullptr;
  }

  /// Lowest cycle at which a copy of this operand may be created so that it
  /// refreshes every iteration of any open loop that rewrites it.
  unsigned copyMinCycle(const Operand& o) const {
    if (o.kind() != Operand::Kind::Variable) return 0;
    unsigned minCycle = 0;
    for (const OpenLoop& ol : loopStack) {
      if (ol.loop == kRootLoop) continue;
      if (g.varWrittenInLoop(o.varId(), ol.loop))
        minCycle = std::max(minCycle, ol.start);
    }
    return minCycle;
  }

  void addLocation(const Operand& o, Location loc) {
    switch (o.kind()) {
      case Operand::Kind::Node:
        if (probeActive)
          jLocs.push_back(LocPush{Operand::Kind::Node, o.nodeId(), 0});
        nodeLocs[o.nodeId()].push_back(loc);
        break;
      case Operand::Kind::Variable:
        if (probeActive)
          jLocs.push_back(LocPush{Operand::Kind::Variable, o.varId(), 0});
        varCopies[o.varId()].push_back(loc);
        break;
      case Operand::Kind::Immediate:
        addConstLocation(o.imm(), loc);
        break;
    }
  }

  void addConstLocation(std::int32_t value, Location loc) {
    if (probeActive)
      jLocs.push_back(LocPush{Operand::Kind::Immediate, 0, value});
    constLocs[value].push_back(loc);
  }

  /// Dependency-imposed earliest start of a node.
  unsigned earliestStart(NodeId id) const {
    unsigned earliest = 0;
    for (const Edge& e : g.inEdges(id)) {
      const unsigned c =
          e.kind == DepKind::Anti ? nodeStart[e.from] : nodeFinish[e.from];
      earliest = std::max(earliest, c);
    }
    return earliest;
  }
};

}  // namespace cgra::passes
