// Mutable state of one scheduling run, shared by every pass.
//
// The pipeline (see pipeline.hpp) drives a sequence of focused passes —
// priority/analysis, candidate selection, placement, routing/copy
// insertion, fusing, C-Box allocation, loop closure, finalize — each taking
// `(const ArchModel&, RunState&)`. The RunState owns everything a run
// mutates: the schedule under construction, per-node bookkeeping, per-cycle
// resource maps, value locations, condition slots and the open-loop stack.
// It lives on the stack of one `Scheduler::schedule` call and is never
// shared across threads; all cross-thread sharing goes through the
// immutable ArchModel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "arch/arch_model.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/metrics.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/trace.hpp"
#include "support/occupancy.hpp"

namespace cgra::passes {

/// Internal control-flow signal for "this kernel cannot be mapped". Thrown
/// deep inside a pass, caught by the pipeline driver and converted into
/// ScheduleReport::failure — it never crosses the public API. Exceptions
/// that do escape (InternalError, malformed-graph Error) are programmer
/// errors by contract.
struct Unmappable {
  ScheduleFailure failure;
  /// Last placement-rejection reason of the stuck node, for the trace's
  /// Failure event.
  TraceReject lastReject = TraceReject::None;
};

/// One place a value can be read from: a (PE, virtual register) pair with
/// the first cycle a read succeeds and the last cycle it is still valid
/// (copies of variables become stale when the home is rewritten or when a
/// loop that rewrites the variable opens — see DESIGN.md §5/§6 rationale).
struct Location {
  PEId pe = 0;
  unsigned vreg = 0;
  unsigned ready = 0;
  unsigned validUntil = kNoLimit;

  static constexpr unsigned kNoLimit = static_cast<unsigned>(-1);
};

/// Materialized condition: C-Box slot + polarity and first readable cycle.
struct CondSlot {
  PredRef ref;
  unsigned ready = 0;
};

/// One entry of the open-loop stack: the loop and its first context.
struct OpenLoop {
  LoopId loop;
  unsigned start;
};

class CostModel;

struct RunState {
  RunState(const Composition& comp, const SchedulerOptions& opts,
           const Cdfg& g, Trace* trace)
      : comp(comp), opts(opts), g(g), trace(trace) {}

  RunState(const RunState&) = delete;
  RunState& operator=(const RunState&) = delete;

  // -- run inputs -------------------------------------------------------------

  const Composition& comp;
  const SchedulerOptions& opts;
  const Cdfg& g;
  /// Per-run decision trace; null when the request disabled tracing (every
  /// instrumentation point then costs one predicted-not-taken branch).
  Trace* trace = nullptr;
  /// Placement cost model (the attraction criterion, §V-G); set by the
  /// pipeline before planning starts.
  const CostModel* costModel = nullptr;

  // -- run outputs ------------------------------------------------------------

  Schedule sched;
  ScheduleStats stats;
  SchedulerMetrics metrics;

  // -- planning cursor --------------------------------------------------------

  unsigned t = 0;
  unsigned limit = 0;
  bool stepHasOp = false;
  std::size_t scheduledCount = 0;
  /// Why the in-flight placement attempt failed (set via fail()).
  TraceReject reject = TraceReject::None;

  // -- per-node bookkeeping ---------------------------------------------------

  std::vector<double> priorities;
  std::vector<std::vector<double>> attraction;
  std::vector<unsigned> nodeStart, nodeFinish;
  std::vector<bool> nodeScheduled;
  /// Per node: most informative rejection of its newest attempt step.
  std::vector<TraceReject> lastReject;
  std::vector<unsigned> lastRejectStep;
  std::vector<unsigned> remainingPreds;
  std::set<NodeId> candidates;

  // -- per-cycle resource maps ------------------------------------------------

  std::vector<CycleOccupancy> peBusy;
  std::vector<CycleSlots<unsigned>> outPort;
  CycleOccupancy cboxOpAt;
  CycleSlots<PredRef> predUse;
  CycleOccupancy branchAt;

  std::vector<unsigned> nextVreg;
  unsigned nextCondSlot = 0;

  // -- value locations --------------------------------------------------------

  std::vector<std::optional<Location>> varHomes;
  std::vector<std::vector<Location>> varCopies;
  std::vector<std::vector<Location>> nodeLocs;
  std::map<std::int32_t, std::vector<Location>> constLocs;
  std::vector<Location> scratchLocs;

  // -- conditions and loops ---------------------------------------------------

  std::map<CondId, CondSlot> condSlots;
  std::map<NodeId, CondSlot> rawSlots;

  std::vector<OpenLoop> loopStack;
  std::vector<std::vector<NodeId>> loopSubtree;

  // -- resource helpers -------------------------------------------------------

  bool busy(PEId pe, unsigned from, unsigned dur) const {
    return peBusy[pe].anyBusy(from, dur);
  }

  void markBusy(PEId pe, unsigned from, unsigned dur) {
    peBusy[pe].mark(from, dur);
  }

  /// Checks/claims a source PE's output port at a cycle for a register.
  bool outPortFree(PEId pe, unsigned cycle, unsigned vreg) const {
    return outPort[pe].freeFor(cycle, vreg);
  }

  void claimOutPort(PEId pe, unsigned cycle, unsigned vreg) {
    outPort[pe].claim(cycle, vreg);
  }

  unsigned freshVreg(PEId pe) { return nextVreg[pe]++; }

  /// Per-cycle single predication signal (the C-Box outPE output is one
  /// wire broadcast to all PEs).
  bool predSignalAvailable(unsigned cycle, const PredRef& ref) const {
    return predUse.freeFor(cycle, ref);
  }

  void claimPredSignal(unsigned cycle, const PredRef& ref) {
    predUse.claim(cycle, ref);
  }

  LoopId currentLoop() const { return loopStack.back().loop; }

  /// Rejects the current placement attempt with a reason the placement pass
  /// picks up for the trace and the per-node failure classification.
  bool fail(TraceReject why) {
    reject = why;
    return false;
  }

  // -- value locations --------------------------------------------------------

  std::vector<Location>* locationsFor(const Operand& o) {
    switch (o.kind()) {
      case Operand::Kind::Node:
        return &nodeLocs[o.nodeId()];
      case Operand::Kind::Variable: {
        // Home first (if assigned), then copies.
        scratchLocs.clear();
        if (varHomes[o.varId()])
          scratchLocs.push_back(*varHomes[o.varId()]);
        for (const Location& l : varCopies[o.varId()])
          scratchLocs.push_back(l);
        return &scratchLocs;
      }
      case Operand::Kind::Immediate: {
        scratchLocs.clear();
        const auto it = constLocs.find(o.imm());
        if (it != constLocs.end()) scratchLocs = it->second;
        return &scratchLocs;
      }
    }
    return nullptr;
  }

  /// Lowest cycle at which a copy of this operand may be created so that it
  /// refreshes every iteration of any open loop that rewrites it.
  unsigned copyMinCycle(const Operand& o) const {
    if (o.kind() != Operand::Kind::Variable) return 0;
    unsigned minCycle = 0;
    for (const OpenLoop& ol : loopStack) {
      if (ol.loop == kRootLoop) continue;
      if (g.varWrittenInLoop(o.varId(), ol.loop))
        minCycle = std::max(minCycle, ol.start);
    }
    return minCycle;
  }

  void addLocation(const Operand& o, Location loc) {
    switch (o.kind()) {
      case Operand::Kind::Node:
        nodeLocs[o.nodeId()].push_back(loc);
        break;
      case Operand::Kind::Variable:
        varCopies[o.varId()].push_back(loc);
        break;
      case Operand::Kind::Immediate:
        constLocs[o.imm()].push_back(loc);
        break;
    }
  }

  /// Dependency-imposed earliest start of a node.
  unsigned earliestStart(NodeId id) const {
    unsigned earliest = 0;
    for (const Edge& e : g.inEdges(id)) {
      const unsigned c =
          e.kind == DepKind::Anti ? nodeStart[e.from] : nodeFinish[e.from];
      earliest = std::max(earliest, c);
    }
    return earliest;
  }
};

}  // namespace cgra::passes
