// Fusing (§V-E): a pWRITE is folded into its producer when the producer
// lands on the home PE, the condition is already available and no other
// node consumes the value. This pass answers the legality questions; the
// placement pass commits the fused op.
#pragma once

#include <optional>

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Returns the single pWRITE consumer if `id`'s value feeds exactly one
/// node and that node is a pWRITE in the same loop (fusion candidate).
std::optional<NodeId> fusablePWrite(const RunState& st, NodeId id);

/// All non-producer dependencies of the pWRITE satisfied at cycle `t`?
bool pWriteDepsMet(const RunState& st, NodeId writer, NodeId producer,
                   unsigned t);

}  // namespace cgra::passes
