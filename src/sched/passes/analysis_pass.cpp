#include "sched/passes/analysis_pass.hpp"

namespace cgra::passes {

namespace {

/// Rejects kernels containing an operation no PE supports.
void checkMappable(const ArchModel& model, const RunState& st) {
  for (NodeId id = 0; id < st.g.numNodes(); ++id) {
    const Node& n = st.g.node(id);
    if (n.kind != NodeKind::Operation) continue;
    if (model.supportingPEs[static_cast<unsigned>(n.op)].empty())
      throw Unmappable{
          ScheduleFailure{FailureReason::UnsupportedOp,
                          "composition " + st.comp.name() +
                              " has no PE supporting " +
                              std::string(opName(n.op)),
                          id},
          TraceReject::Incompatible};
  }
}

void initState(RunState& st) {
  const std::size_t numNodes = st.g.numNodes();
  const unsigned numPEs = st.comp.numPEs();

  st.priorities = st.g.longestPathWeights();
  st.attraction.assign(numNodes, std::vector<double>(numPEs, 0.0));
  st.nodeStart.assign(numNodes, 0);
  st.nodeFinish.assign(numNodes, 0);
  st.nodeScheduled.assign(numNodes, false);
  st.lastReject.assign(numNodes, TraceReject::None);
  st.lastRejectStep.assign(numNodes, static_cast<unsigned>(-1));
  st.remainingPreds.assign(numNodes, 0);
  for (NodeId id = 0; id < numNodes; ++id)
    st.remainingPreds[id] = static_cast<unsigned>(st.g.inEdges(id).size());
  st.candidates.reserve(numNodes);
  st.scratchCandidates.reserve(numNodes);
  st.scratchPEOrder.reserve(numPEs);
  for (NodeId id = 0; id < numNodes; ++id)
    if (st.remainingPreds[id] == 0) st.insertCandidate(id);

  // Every node lands in the op stream, most with a few routed copies and
  // const materializations around them; reserving up front removes the
  // ScheduledOp reallocation churn the profile attributed to push_back.
  st.sched.ops.reserve(numNodes * 2);

  // Hard ceiling for every per-cycle resource map: the context budget. A
  // schedule cycle at or beyond the ceiling can never execute (finalize
  // rejects such schedules), so probes treat it as permanently occupied —
  // resource scans are bounded and can never resize unboundedly.
  const unsigned ceiling = st.limit;
  st.nextVreg.assign(numPEs, 0);
  st.peBusy.assign(numPEs, CycleOccupancy(ceiling));
  st.outPort.assign(numPEs, CycleSlots<unsigned>(ceiling));
  st.cboxOpAt = CycleOccupancy(ceiling);
  st.predUse = CycleSlots<PredRef>(ceiling);
  st.branchAt = CycleOccupancy(ceiling);
  st.varHomes.assign(st.g.numVariables(), std::nullopt);
  st.varCopies.assign(st.g.numVariables(), {});
  st.nodeLocs.assign(numNodes, {});

  // Subtree node lists per loop (loop-compatibility checks).
  st.loopSubtree.assign(st.g.numLoops(), {});
  for (NodeId id = 0; id < numNodes; ++id)
    for (LoopId l = st.g.node(id).loop;; l = st.g.loop(l).parent) {
      st.loopSubtree[l].push_back(id);
      if (l == kRootLoop) break;
    }

  st.loopStack.push_back(OpenLoop{kRootLoop, 0});
}

}  // namespace

void runAnalysisPass(const ArchModel& model, RunState& st) {
  checkMappable(model, st);
  initState(st);
}

}  // namespace cgra::passes
