// Loop closure and loop-compatibility (§V-C): every loop occupies a
// contiguous context interval; an inner loop may only open on a context
// with no other operation, and only once every external predecessor of the
// whole loop subtree has finished; outer-loop nodes wait until the inner
// loop closes. Closing places the conditional back-branch on the loop's
// last context.
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// All external predecessors of the loop subtree finished by cycle `t`.
bool loopPredsFinished(const RunState& st, LoopId l, unsigned t);

/// Tries to close finished loops at the top of the stack (branch placed at
/// the loop's last context).
void tryCloseLoops(const ArchModel& model, RunState& st);

/// Loop-compatibility: returns true when the candidate may be planned at
/// the current step, opening inner loops when required.
bool loopCompatible(const ArchModel& model, RunState& st, NodeId id);

}  // namespace cgra::passes
