// Placement cost model: how the placement pass orders PEs for a node and
// how a committed placement feeds back into future ordering.
//
// The paper's attraction criterion (§V-G) is one implementation of this
// interface; ablation setups (SchedulerOptions::useAttraction = false) run
// the same implementation with the ordering reduced to index order, so the
// feedback bookkeeping — and therefore the schedule — matches the seed
// scheduler bit for bit in both modes.
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

class CostModel {
public:
  virtual ~CostModel() = default;

  /// PEs ordered most-preferred first for placing `id`. Written into (and
  /// returned as) `st.scratchPEOrder`: one preference order is live at a
  /// time per run, so the buffer is reused instead of allocating a fresh
  /// vector for every placement probe.
  virtual const std::vector<PEId>& orderPEs(const ArchModel& model,
                                            RunState& st, NodeId id) const = 0;

  /// Feedback after `id` committed to `pe`: update the affinities of its
  /// not-yet-scheduled successors.
  virtual void onNodePlaced(const ArchModel& model, RunState& st, NodeId id,
                            PEId pe) const = 0;
};

/// The attraction criterion (§V-G): successors are drawn toward PEs that
/// can access the placed result's register file; ties break on static
/// connectivity.
class AttractionCostModel final : public CostModel {
public:
  const std::vector<PEId>& orderPEs(const ArchModel& model, RunState& st,
                                    NodeId id) const override;
  void onNodePlaced(const ArchModel& model, RunState& st, NodeId id,
                    PEId pe) const override;
};

/// Shared immutable instance (the model keeps no state of its own).
const CostModel& attractionCostModel();

}  // namespace cgra::passes
