// C-Box allocation (§V-H): the C-Box is a scheduled resource — one status
// consumed, one condition write, one PE-predication read and one branch
// read per cycle. This pass owns every condition-slot allocation: storing a
// raw status produced by a comparison, and materializing nested conditions
// as conjunctions of a stored condition and a stored raw status.
#pragma once

#include <optional>

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Ensures condition `c` is materialized in a C-Box slot readable at
/// `deadline`. Inserts combine operations into free C-Box cycles when
/// needed. Returns nullopt when impossible so far (caller delays).
std::optional<PredRef> ensureCondition(const ArchModel& model, RunState& st,
                                       CondId c, unsigned deadline);

/// Stores the raw status emitted by comparison node `id` into a fresh
/// condition slot on `statusCycle` (the producer's last cycle).
void allocateStatusSlot(const ArchModel& model, RunState& st, NodeId id,
                        unsigned statusCycle);

}  // namespace cgra::passes
