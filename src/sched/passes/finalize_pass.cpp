#include "sched/passes/finalize_pass.hpp"

#include <algorithm>
#include <string>

namespace cgra::passes {

void runFinalizePass(const ArchModel& /*model*/, RunState& st) {
  unsigned maxCycle = 0;
  for (const ScheduledOp& op : st.sched.ops)
    maxCycle = std::max(maxCycle, op.lastCycle());
  for (const CBoxOp& op : st.sched.cboxOps)
    maxCycle = std::max(maxCycle, op.time);
  for (const BranchOp& b : st.sched.branches)
    maxCycle = std::max(maxCycle, b.time);
  st.sched.length = maxCycle + 1;
  if (st.sched.length > st.limit)
    throw Unmappable{
        ScheduleFailure{FailureReason::ContextBudget,
                        "schedule length " + std::to_string(st.sched.length) +
                            " exceeds context memory of " + st.comp.name(),
                        kNoNode},
        TraceReject::None};

  st.sched.vregsPerPE = st.nextVreg;
  st.sched.cboxSlotsUsed = st.nextCondSlot;

  for (VarId v = 0; v < st.g.numVariables(); ++v) {
    if (!st.varHomes[v]) continue;
    st.sched.varHomes.push_back(
        LiveBinding{v, st.varHomes[v]->pe, st.varHomes[v]->vreg});
    if (st.g.variable(v).liveOut)
      st.sched.liveOuts.push_back(
          LiveBinding{v, st.varHomes[v]->pe, st.varHomes[v]->vreg});
  }

  st.stats.contextsUsed = st.sched.length;
  st.stats.cboxSlotsUsed = st.nextCondSlot;
}

}  // namespace cgra::passes
