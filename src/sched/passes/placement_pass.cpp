#include "sched/passes/placement_pass.hpp"

#include <array>
#include <cmath>
#include <string>

#include "sched/passes/candidate_pass.hpp"
#include "sched/passes/cbox_pass.hpp"
#include "sched/passes/cost_model.hpp"
#include "sched/passes/fusing_pass.hpp"
#include "sched/passes/loop_pass.hpp"
#include "sched/passes/routing_pass.hpp"

namespace cgra::passes {

namespace {

bool incompatible(const ArchModel& model, const RunState& st, NodeId id,
                  PEId pe) {
  const Node& n = st.g.node(id);
  if (n.isPWrite()) {
    const auto& home = st.varHomes[n.var];
    return home && home->pe != pe;
  }
  return !model.peSupports(pe, n.op);
}

unsigned opDuration(const ArchModel& model, const RunState& st, NodeId id,
                    PEId pe) {
  const Node& n = st.g.node(id);
  const Op op = n.isPWrite()
                    ? (n.operands[0].kind() == Operand::Kind::Immediate
                           ? Op::CONST
                           : Op::MOVE)
                    : n.op;
  // Shared-model table; 0 marks unsupported, where the descriptor lookup
  // preserves the original throwing contract (reachable only for pWRITEs —
  // operations are pre-filtered by incompatible()).
  const unsigned dur = model.opDuration(pe, op);
  return dur != 0 ? dur : st.comp.pe(pe).impl(op).duration;
}

/// A committed write to `var` at finish cycle: home becomes ready, all
/// copies become stale for later readers.
void commitVarWrite(RunState& st, VarId var, unsigned finish) {
  Location& home = *st.varHomes[var];
  home.ready = std::max(home.ready, finish);
  for (Location& copy : st.varCopies[var])
    copy.validUntil = std::min(copy.validUntil, finish - 1);
}

void markScheduled(const ArchModel& model, RunState& st, NodeId id,
                   unsigned start, unsigned dur, PEId pe) {
  st.nodeScheduled[id] = true;
  st.nodeStart[id] = start;
  st.nodeFinish[id] = start + dur;
  ++st.scheduledCount;
  ++st.metrics.nodesScheduled;
  st.eraseCandidate(id);

  // Successor-affinity feedback lives in the cost model (§V-G attraction).
  st.costModel->onNodePlaced(model, st, id, pe);
  for (const Edge& e : st.g.outEdges(id))
    if (--st.remainingPreds[e.to] == 0) st.insertCandidate(e.to);
}

/// Records (and traces) one rejected (node, PE) placement probe. The
/// per-node reason feeds the typed failure classification when the run
/// eventually gives up: within one step the most informative reason wins
/// (an Incompatible on a later PE must not mask an OperandUnroutable);
/// across steps the newest step wins. Ranks are strictly distinct so the
/// winner is independent of PE iteration order: PredUnavailable ranks below
/// CBoxWritePortBusy because a missing predicate is ordinary transient
/// state (the producing CMP is simply not scheduled yet) while a busy C-Box
/// write port signals real capacity pressure (it classifies as
/// CBoxCapacity, see pipeline.cpp).
void rejectPlacement(RunState& st, NodeId id, PEId pe, TraceReject why) {
  const auto rank = [](TraceReject r) {
    switch (r) {
      case TraceReject::None: return 0;
      case TraceReject::Incompatible: return 1;
      case TraceReject::PeBusy: return 2;
      case TraceReject::PredUnavailable: return 3;
      case TraceReject::CBoxWritePortBusy: return 4;
      case TraceReject::OperandUnroutable: return 5;
    }
    CGRA_UNREACHABLE("unknown TraceReject");
  };
  if (st.lastRejectStep[id] != st.t || rank(why) >= rank(st.lastReject[id])) {
    st.lastReject[id] = why;
    st.lastRejectStep[id] = st.t;
  }
  CGRA_TRACE(st.trace, PlacementRejected, .reject = why, .cycle = st.t,
             .node = static_cast<std::int32_t>(id),
             .pe = static_cast<std::int32_t>(pe));
}

bool planOperation(const ArchModel& model, RunState& st, NodeId id, PEId pe,
                   unsigned dur) {
  const Node& n = st.g.node(id);
  const unsigned t = st.t;

  // Comparisons feed the C-Box: one status per cycle, so the C-Box write
  // port must be free on the status cycle (§V-H).
  const unsigned statusCycle = t + dur - 1;
  if (n.isStatusProducer() && st.cboxOpAt.test(statusCycle))
    return st.fail(TraceReject::CBoxWritePortBusy);

  // Memory operations are always predicated (§V-D).
  std::optional<PredRef> pred;
  if (n.isMemory() && n.cond != kCondTrue) {
    pred = ensureCondition(model, st, n.cond, t);
    if (!pred) return st.fail(TraceReject::PredUnavailable);
    if (!st.predSignalAvailable(t, *pred))
      return st.fail(TraceReject::PredUnavailable);
  }

  // Fusion: write the result directly into the variable's home register,
  // predicated on the pWRITE's condition (§V-E).
  std::optional<NodeId> fusedWriter;
  std::optional<PredRef> fusedPred;
  if (!n.isStatusProducer() && writesRegister(n.op)) {
    if (const auto writer = fusablePWrite(st, id)) {
      const Node& w = st.g.node(*writer);
      const auto& home = st.varHomes[w.var];
      const bool peOk = !home || home->pe == pe;
      // A predicated memory op may only fuse when write and access share
      // the same condition (one outPE signal gates both).
      const bool condCompatible = !n.isMemory() || n.cond == w.cond;
      if (peOk && condCompatible && pWriteDepsMet(st, *writer, id, t)) {
        bool condOk = true;
        if (w.cond != kCondTrue) {
          // Both the op's own memory predication (none here: fused ops are
          // pure ALU) and the single outPE wire must accommodate it.
          // Materializing the condition may allocate a C-Box slot; when the
          // fusion is then skipped that allocation must not outlive the
          // decision, so it runs under a savepoint.
          const ProbeSavepoint sp = st.savepoint();
          fusedPred = ensureCondition(model, st, w.cond, t);
          condOk = fusedPred && st.predSignalAvailable(t, *fusedPred);
          if (!condOk) {
            st.rollbackTo(sp);
            fusedPred.reset();
          }
        }
        if (condOk) fusedWriter = writer;
      }
    }
  }

  // Operand resolution (reads fused into this node, §V-E).
  ExposureMap exposure;
  std::array<OperandSource, 3> srcs{};
  for (std::size_t i = 0; i < n.operands.size(); ++i) {
    // Reading a variable pins its home on first use (rolled back with the
    // probe when a later operand proves unroutable).
    if (n.operands[i].kind() == Operand::Kind::Variable)
      st.homeFor(n.operands[i].varId(), pe);
    const auto src = resolveOperand(model, st, n.operands[i], pe, t, exposure);
    if (!src) return st.fail(TraceReject::OperandUnroutable);
    srcs[i] = *src;
  }

  // Commit.
  ScheduledOp op;
  op.node = id;
  op.op = n.op;
  op.pe = pe;
  op.start = t;
  op.duration = dur;
  op.src = srcs;
  op.emitsStatus = n.isStatusProducer();
  op.label = n.label;
  if (pred) {
    op.pred = pred;
    st.claimPredSignal(t, *pred);
  }

  if (fusedWriter) {
    const Node& w = st.g.node(*fusedWriter);
    st.homeFor(w.var, pe);
    op.writesDest = true;
    op.destVreg = st.varHomes[w.var]->vreg;
    if (fusedPred) {
      op.pred = fusedPred;
      st.claimPredSignal(t, *fusedPred);
    }
    ++st.stats.fusedWrites;
    CGRA_TRACE(st.trace, WriteFused, .cycle = t,
               .node = static_cast<std::int32_t>(id),
               .pe = static_cast<std::int32_t>(pe), .a = *fusedWriter);
  } else if (writesRegister(n.op)) {
    op.writesDest = true;
    op.destVreg = st.freshVreg(pe);
  }

  for (const auto& [srcPe, vreg] : exposure) st.claimOutPort(srcPe, t, vreg);
  st.markBusy(pe, t, dur);
  st.sched.ops.push_back(op);
  st.stepHasOp = true;

  if (n.isStatusProducer()) allocateStatusSlot(model, st, id, statusCycle);

  if (op.writesDest && !fusedWriter)
    st.nodeLocs[id].push_back(Location{pe, op.destVreg, t + dur,
                                       Location::kNoLimit});

  markScheduled(model, st, id, t, dur, pe);
  if (fusedWriter) {
    commitVarWrite(st, st.g.node(*fusedWriter).var, t + dur);
    markScheduled(model, st, *fusedWriter, t, dur, pe);
  }
  return true;
}

bool planPWrite(const ArchModel& model, RunState& st, NodeId id, PEId pe,
                unsigned dur) {
  const Node& n = st.g.node(id);
  const unsigned t = st.t;

  std::optional<PredRef> pred;
  if (n.cond != kCondTrue) {
    pred = ensureCondition(model, st, n.cond, t);
    if (!pred) return st.fail(TraceReject::PredUnavailable);
    if (!st.predSignalAvailable(t, *pred))
      return st.fail(TraceReject::PredUnavailable);
  }

  const Operand& value = n.operands[0];
  ExposureMap exposure;
  ScheduledOp op;
  op.node = id;
  op.pe = pe;
  op.start = t;
  op.duration = dur;
  op.label = n.label;

  if (value.kind() == Operand::Kind::Immediate) {
    op.op = Op::CONST;
    op.src[0] = OperandSource{OperandSource::Kind::Imm, 0, 0, value.imm()};
  } else {
    op.op = Op::MOVE;
    if (value.kind() == Operand::Kind::Variable)
      st.homeFor(value.varId(), pe);
    const auto src = resolveOperand(model, st, value, pe, t, exposure);
    if (!src) return st.fail(TraceReject::OperandUnroutable);
    op.src[0] = *src;
  }

  st.homeFor(n.var, pe);
  CGRA_ASSERT(st.varHomes[n.var]->pe == pe);
  op.writesDest = true;
  op.destVreg = st.varHomes[n.var]->vreg;
  if (pred) {
    op.pred = pred;
    st.claimPredSignal(t, *pred);
  }

  for (const auto& [srcPe, vreg] : exposure) st.claimOutPort(srcPe, t, vreg);
  st.markBusy(pe, t, dur);
  st.sched.ops.push_back(op);
  st.stepHasOp = true;

  commitVarWrite(st, n.var, t + dur);
  markScheduled(model, st, id, t, dur, pe);
  return true;
}

bool planCandidate(const ArchModel& model, RunState& st, NodeId id, PEId pe,
                   unsigned dur) {
  const Node& n = st.g.node(id);
  if (n.isPWrite()) return planPWrite(model, st, id, pe, dur);
  return planOperation(model, st, id, pe, dur);
}

}  // namespace

void planStep(const ArchModel& model, RunState& st) {
  st.stepHasOp = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : candidateSnapshot(st)) {
      ++st.metrics.candidateIterations;
      if (st.nodeScheduled[id]) continue;  // fused away mid-snapshot
      if (!loopCompatible(model, st, id)) continue;
      if (st.earliestStart(id) > st.t) continue;
      CGRA_TRACE(st.trace, CandidateSelected, .cycle = st.t,
                 .node = static_cast<std::int32_t>(id),
                 .a = std::llround(st.priorities[id] * 1000.0));
      for (PEId pe : st.costModel->orderPEs(model, st, id)) {
        if (incompatible(model, st, id, pe)) {
          rejectPlacement(st, id, pe, TraceReject::Incompatible);
          continue;
        }
        const unsigned dur = opDuration(model, st, id, pe);
        if (st.busy(pe, st.t, dur)) {
          rejectPlacement(st, id, pe, TraceReject::PeBusy);
          continue;
        }
        ++st.metrics.placementAttempts;
        st.reject = TraceReject::None;
        // The probe is transactional: planCandidate may mutate homes,
        // live-ins, routing copies and C-Box slots before discovering the
        // placement is infeasible; rollback restores all of it so the next
        // (node, PE) probe starts from pristine state.
        st.beginProbe();
        if (planCandidate(model, st, id, pe, dur)) {
          st.commitProbe();
          CGRA_TRACE(st.trace, NodePlaced, .cycle = st.t,
                     .node = static_cast<std::int32_t>(id),
                     .pe = static_cast<std::int32_t>(pe), .a = dur);
          changed = true;
          break;
        }
        st.rollbackProbe();
        rejectPlacement(st, id, pe, st.reject);
        ++st.metrics.probeRejections;
      }
    }
  }
}

}  // namespace cgra::passes
