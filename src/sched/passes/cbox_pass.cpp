#include "sched/passes/cbox_pass.hpp"

#include <algorithm>

namespace cgra::passes {

std::optional<PredRef> ensureCondition(const ArchModel& model, RunState& st,
                                       CondId c, unsigned deadline) {
  // Recursion for parent conditions nests CBox scopes; lap accounting
  // charges every nanosecond to CBox exactly once either way.
  PassScope scope(st.passTimer, PassId::CBox);
  CGRA_ASSERT(c != kCondTrue);
  if (const auto it = st.condSlots.find(c); it != st.condSlots.end())
    return it->second.ready <= deadline ? std::optional(it->second.ref)
                                        : std::nullopt;

  const Condition& cond = st.g.condition(c);
  const auto rawIt = st.rawSlots.find(cond.statusNode);
  if (rawIt == st.rawSlots.end()) return std::nullopt;  // CMP not scheduled yet
  const CondSlot& raw = rawIt->second;

  if (cond.parent == kCondTrue) {
    // TRUE ∧ literal: read the raw status slot with the literal polarity.
    CondSlot slot{PredRef{raw.ref.slot, cond.polarity}, raw.ready};
    if (slot.ready > deadline) return std::nullopt;
    st.insertCondSlot(c, slot);
    return slot.ref;
  }

  // parent ∧ literal: combine the stored parent with the stored raw status.
  if (deadline == 0) return std::nullopt;
  const auto parentRef = ensureCondition(model, st, cond.parent, deadline - 1);
  if (!parentRef) return std::nullopt;
  const unsigned parentReady = st.condSlots.at(cond.parent).ready;

  const unsigned lo = std::max(parentReady, raw.ready);
  for (unsigned u = lo; u + 1 <= deadline; ++u) {
    if (st.cboxOpAt.test(u)) continue;
    CBoxOp op;
    op.time = u;
    op.inputs = {
        CBoxOp::Input{CBoxOp::Input::Kind::Stored, parentRef->slot,
                      parentRef->polarity},
        CBoxOp::Input{CBoxOp::Input::Kind::Stored, raw.ref.slot,
                      cond.polarity}};
    op.logic = CBoxOp::Logic::And;
    op.writeSlot = st.nextCondSlot++;
    op.cond = c;
    st.sched.cboxOps.push_back(op);
    st.cboxOpAt.mark(u);
    CGRA_TRACE(st.trace, CBoxSlotAllocated, .cycle = u, .a = op.writeSlot,
               .b = c, .detail = "and");
    CondSlot slot{PredRef{op.writeSlot, true}, u + 1};
    st.insertCondSlot(c, slot);
    return slot.ref;
  }
  return std::nullopt;
}

void allocateStatusSlot(const ArchModel& /*model*/, RunState& st, NodeId id,
                        unsigned statusCycle) {
  PassScope scope(st.passTimer, PassId::CBox);
  // Store the raw status into a fresh condition slot on the status cycle.
  CBoxOp cb;
  cb.time = statusCycle;
  cb.inputs = {CBoxOp::Input{CBoxOp::Input::Kind::Status, 0, true}};
  cb.logic = CBoxOp::Logic::Pass;
  cb.writeSlot = st.nextCondSlot++;
  cb.cond = kCondTrue;  // raw literal, interpreted per condition
  st.sched.cboxOps.push_back(cb);
  st.cboxOpAt.mark(statusCycle);
  CGRA_TRACE(st.trace, CBoxSlotAllocated, .cycle = statusCycle,
             .node = static_cast<std::int32_t>(id), .a = cb.writeSlot,
             .detail = "status");
  st.rawSlots[id] = CondSlot{PredRef{cb.writeSlot, true}, statusCycle + 1};
}

}  // namespace cgra::passes
