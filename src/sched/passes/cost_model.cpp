#include "sched/passes/cost_model.hpp"

#include <algorithm>

namespace cgra::passes {

const std::vector<PEId>& AttractionCostModel::orderPEs(const ArchModel& model,
                                                       RunState& st,
                                                       NodeId id) const {
  PassScope scope(st.passTimer, PassId::CostModel);
  std::vector<PEId>& out = st.scratchPEOrder;
  out.resize(st.comp.numPEs());
  for (PEId p = 0; p < st.comp.numPEs(); ++p) out[p] = p;
  if (!st.opts.useAttraction) return out;
  const auto& att = st.attraction[id];
  const auto& connectivity = model.connectivity;
  std::stable_sort(out.begin(), out.end(), [&](PEId a, PEId b) {
    if (att[a] != att[b]) return att[a] > att[b];
    return connectivity[a] > connectivity[b];
  });
  return out;
}

void AttractionCostModel::onNodePlaced(const ArchModel& model, RunState& st,
                                       NodeId id, PEId pe) const {
  PassScope scope(st.passTimer, PassId::CostModel);
  // Successors are drawn toward PEs that can access this result's register
  // file. The sink lists come from the shared model tables (the seed
  // re-scanned the interconnect here).
  for (const Edge& e : st.g.outEdges(id)) {
    if (st.nodeScheduled[e.to]) continue;
    st.attraction[e.to][pe] += 1.0;
    for (PEId q : model.sinks[pe]) st.attraction[e.to][q] += 1.0;
  }
}

const CostModel& attractionCostModel() {
  static const AttractionCostModel instance;
  return instance;
}

}  // namespace cgra::passes
