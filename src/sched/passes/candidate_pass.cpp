#include "sched/passes/candidate_pass.hpp"

namespace cgra::passes {

const std::vector<NodeId>& candidateSnapshot(RunState& st) {
  st.scratchCandidates.assign(st.candidates.begin(), st.candidates.end());
  return st.scratchCandidates;
}

}  // namespace cgra::passes
