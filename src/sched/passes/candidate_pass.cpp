#include "sched/passes/candidate_pass.hpp"

#include <algorithm>

namespace cgra::passes {

std::vector<NodeId> sortedCandidates(const RunState& st) {
  std::vector<NodeId> out(st.candidates.begin(), st.candidates.end());
  if (st.opts.longestPathPriority) {
    std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
      if (st.priorities[a] != st.priorities[b])
        return st.priorities[a] > st.priorities[b];
      return a < b;
    });
  }
  return out;
}

}  // namespace cgra::passes
