#include "sched/passes/candidate_pass.hpp"

namespace cgra::passes {

const std::vector<NodeId>& candidateSnapshot(RunState& st) {
  PassScope scope(st.passTimer, PassId::Candidate);
  st.scratchCandidates.assign(st.candidates.begin(), st.candidates.end());
  return st.scratchCandidates;
}

}  // namespace cgra::passes
