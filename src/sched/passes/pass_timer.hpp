// Exclusive per-pass wall-time attribution for one scheduling run
// (DESIGN.md §13).
//
// The nine passes of the pipeline do not run as sequential phases: a single
// placement probe dips into the cost model, routing, fusing and C-Box
// passes, and C-Box condition materialization recurses into itself for
// parent conditions. A naive inclusive timer would double-count every
// nested region, so the timer uses transition-based "lap" accounting: it
// keeps a stack of active passes plus the timestamp of the last
// transition, and on every enter/exit charges the elapsed lap to the pass
// that was on top. Each nanosecond of the run is attributed to exactly one
// pass — the innermost active scope — and the per-pass times sum to the
// instrumented wall time regardless of nesting or recursion.
//
// Cost: one steady_clock read per scope transition (~20 ns via vDSO, a
// handful of transitions per placement probe), cheap enough to stay on
// unconditionally — the breakdown is volatile metrics output, never part
// of the byte-stable report forms.
#pragma once

#include <chrono>
#include <cstdint>

#include "sched/metrics.hpp"
#include "support/small_vector.hpp"

namespace cgra::passes {

/// The nine pipeline passes (DESIGN.md §11), in pipeline order.
enum class PassId : std::uint8_t {
  Analysis,   ///< priorities, attraction, loop subtrees
  Candidate,  ///< frontier snapshot for one planning sweep
  CostModel,  ///< attraction-based PE ordering + placement feedback
  Placement,  ///< planStep probe loop (self-time, minus nested passes)
  Routing,    ///< operand resolution, copy/const insertion
  Fusing,     ///< pWRITE folding into producers
  CBox,       ///< condition materialization + status slots
  Loop,       ///< loop closure, back-branches, copy invalidation
  Finalize,   ///< schedule finalize + stats
  kCount,
};

class PassTimer {
public:
  using Clock = std::chrono::steady_clock;

  void enter(PassId p) {
    const Clock::time_point now = Clock::now();
    charge(now);
    stack_.push_back(p);
  }

  void exit() {
    const Clock::time_point now = Clock::now();
    charge(now);
    stack_.pop_back();
  }

  double ms(PassId p) const {
    return static_cast<double>(ns_[static_cast<std::size_t>(p)]) * 1e-6;
  }

  /// Copies the nine accumulated self-times into the run's metrics.
  void flushInto(SchedulerMetrics& m) const {
    m.passAnalysisMs = ms(PassId::Analysis);
    m.passCandidateMs = ms(PassId::Candidate);
    m.passCostModelMs = ms(PassId::CostModel);
    m.passPlacementMs = ms(PassId::Placement);
    m.passRoutingMs = ms(PassId::Routing);
    m.passFusingMs = ms(PassId::Fusing);
    m.passCboxMs = ms(PassId::CBox);
    m.passLoopMs = ms(PassId::Loop);
    m.passFinalizeMs = ms(PassId::Finalize);
  }

private:
  /// Charges the lap since the last transition to the innermost active
  /// pass (no-op between scopes — that time belongs to the pipeline
  /// driver, reported as planMs minus the pass sum).
  void charge(Clock::time_point now) {
    if (!stack_.empty())
      ns_[static_cast<std::size_t>(stack_.back())] +=
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                   lastMark_)
                  .count());
    lastMark_ = now;
  }

  SmallVector<PassId, 16> stack_;  ///< active scopes, innermost last
  Clock::time_point lastMark_{};
  std::uint64_t ns_[static_cast<std::size_t>(PassId::kCount)] = {};
};

/// RAII pass scope. Takes a const RunState because several pass entry
/// points (fusing feasibility checks) are const over the run state; the
/// timer is `mutable` metrics bookkeeping, exempt from the probe
/// transactionality contract like the metrics counters and the trace.
class PassScope {
public:
  PassScope(PassTimer& timer, PassId p) : timer_(timer) { timer_.enter(p); }
  ~PassScope() { timer_.exit(); }

  PassScope(const PassScope&) = delete;
  PassScope& operator=(const PassScope&) = delete;

private:
  PassTimer& timer_;
};

}  // namespace cgra::passes
