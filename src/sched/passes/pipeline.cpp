#include "sched/passes/pipeline.hpp"

#include <chrono>
#include <string>

#include "sched/passes/analysis_pass.hpp"
#include "sched/passes/cost_model.hpp"
#include "sched/passes/finalize_pass.hpp"
#include "sched/passes/loop_pass.hpp"
#include "sched/passes/placement_pass.hpp"
#include "sched/passes/run_state.hpp"

namespace cgra::passes {

namespace {

/// The run gave up (context budget exhausted). Classifies the failure by
/// the last recorded rejection of the first stuck node: a node that kept
/// failing operand resolution means the operand was unroutable; a node
/// starved of C-Box write ports means C-Box pressure; anything else —
/// including PredUnavailable, which is the ordinary transient state of a
/// predicated node waiting for its condition — is a budget overflow.
[[noreturn]] void failUnmappable(const RunState& st) {
  std::string stuck;
  unsigned count = 0;
  NodeId firstStuck = kNoNode;
  for (NodeId id = 0; id < st.g.numNodes(); ++id)
    if (!st.nodeScheduled[id]) {
      if (firstStuck == kNoNode) firstStuck = id;
      if (count++ >= 8) continue;
      const Node& n = st.g.node(id);
      stuck += " node" + std::to_string(id) + "(" +
               (n.isPWrite() ? "pWRITE " + st.g.variable(n.var).name
                             : std::string(opName(n.op))) +
               ")";
    }

  const TraceReject last =
      firstStuck == kNoNode ? TraceReject::None : st.lastReject[firstStuck];
  FailureReason reason = FailureReason::ContextBudget;
  if (last == TraceReject::OperandUnroutable)
    reason = FailureReason::UnroutableOperand;
  else if (last == TraceReject::CBoxWritePortBusy)
    reason = FailureReason::CBoxCapacity;
  throw Unmappable{
      ScheduleFailure{reason,
                      "kernel does not fit in " + std::to_string(st.limit) +
                          " contexts on " + st.comp.name() +
                          "; unscheduled:" + stuck,
                      firstStuck},
      last};
}

}  // namespace

ScheduleReport runPipeline(const ArchModel& model, const Composition& comp,
                           const SchedulerOptions& opts, const Cdfg& g,
                           Trace* trace) {
  using Clock = std::chrono::steady_clock;
  const auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  ScheduleReport report;
  const auto wallStart = Clock::now();
  auto setupEnd = wallStart;
  auto planEnd = wallStart;

  // Malformed graphs are programmer errors: validate() throws past the
  // report path on purpose.
  g.validate();

  RunState st(comp, opts, g, trace);
  st.limit = opts.maxContexts ? opts.maxContexts : comp.contextMemoryLength();
  st.costModel = &attractionCostModel();

  // Tracks which phase span is open so a failed run still produces
  // balanced B/E pairs in the Chrome trace export.
  const char* openPhase = nullptr;
  try {
    openPhase = "setup";
    CGRA_TRACE(st.trace, PhaseBegin, .detail = "setup");
    {
      PassScope scope(st.passTimer, PassId::Analysis);
      runAnalysisPass(model, st);
    }
    CGRA_TRACE(st.trace, PhaseEnd, .detail = "setup");
    setupEnd = Clock::now();

    openPhase = "plan";
    CGRA_TRACE(st.trace, PhaseBegin, .detail = "plan");
    while (st.scheduledCount < g.numNodes() || st.loopStack.size() > 1) {
      if (st.t >= st.limit) failUnmappable(st);
      CGRA_TRACE(st.trace, StepBegin, .cycle = st.t);
      // Per-pass breakdown of the planning loop: two clock reads per step
      // (~ns each) against steps that cost microseconds.
      const auto stepStart = Clock::now();
      {
        PassScope scope(st.passTimer, PassId::Loop);
        tryCloseLoops(model, st);
      }
      const auto loopsClosed = Clock::now();
      {
        PassScope scope(st.passTimer, PassId::Placement);
        planStep(model, st);
      }
      st.metrics.loopCloseMs += ms(stepStart, loopsClosed);
      st.metrics.placementMs += ms(loopsClosed, Clock::now());
      ++st.metrics.steps;
      ++st.t;
    }
    CGRA_TRACE(st.trace, PhaseEnd, .detail = "plan");
    planEnd = Clock::now();

    openPhase = "finalize";
    CGRA_TRACE(st.trace, PhaseBegin, .detail = "finalize");
    {
      PassScope scope(st.passTimer, PassId::Finalize);
      runFinalizePass(model, st);
    }
    CGRA_TRACE(st.trace, PhaseEnd, .detail = "finalize");
    openPhase = nullptr;
    report.ok = true;
  } catch (const Unmappable& u) {
    report.failure = u.failure;
    CGRA_TRACE(st.trace, Failure, .reject = u.lastReject, .cycle = st.t,
               .node = u.failure.node == kNoNode
                           ? -1
                           : static_cast<std::int32_t>(u.failure.node),
               .detail = TraceLiteral::fromStatic(
                   failureReasonName(u.failure.reason)));
    if (openPhase != nullptr)
      CGRA_TRACE(st.trace, PhaseEnd,
                 .detail = TraceLiteral::fromStatic(openPhase));
  }

  const auto wallEnd = Clock::now();
  if (setupEnd == wallStart) setupEnd = wallEnd;  // failed during setup
  if (planEnd < setupEnd) planEnd = wallEnd;      // failed during planning
  st.stats.wallTimeMs = ms(wallStart, wallEnd);
  st.metrics.setupMs = ms(wallStart, setupEnd);
  st.metrics.planMs = ms(setupEnd, planEnd);
  st.metrics.finalizeMs = ms(planEnd, wallEnd);
  st.metrics.totalMs = st.stats.wallTimeMs;
  st.metrics.copiesInserted = st.stats.copiesInserted;
  st.metrics.constsInserted = st.stats.constsInserted;
  st.metrics.fusedWrites = st.stats.fusedWrites;
  st.metrics.cboxOps = st.sched.cboxOps.size();
  st.metrics.branches = st.sched.branches.size();
  st.passTimer.flushInto(st.metrics);
  report.stats = st.stats;
  report.metrics = st.metrics;
  if (report.ok) report.schedule = std::move(st.sched);
  return report;
}

}  // namespace cgra::passes
