// Placement (§V-B/§V-D/§V-E/§V-G): one planning step over the candidate
// frontier. Probes PEs in cost-model order, resolves predication through
// the C-Box pass, operands through the routing pass and fusing through the
// fusing pass, then commits operations and pWRITEs into the schedule.
#pragma once

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Plans every candidate that fits the current context, repeating the
/// frontier scan until a fixpoint (placements unlock further candidates
/// within the same step).
void planStep(const ArchModel& model, RunState& st);

}  // namespace cgra::passes
