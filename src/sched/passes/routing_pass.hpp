// Routing / copy insertion (§V-D, §V-G): operand accessibility is resolved
// by reading an own register, routing a neighbour's output port, or
// inserting MOVE copies along the ArchModel's Floyd–Warshall shortest paths
// into earlier idle cycles; constants are materialized per consuming PE.
#pragma once

#include <map>
#include <optional>

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Resolves one operand for an op on `pe` starting at `t`, inserting MOVE
/// copies / CONST materializations when needed. `exposure` accumulates
/// out-port claims of the consuming op (claimed on success by caller).
std::optional<OperandSource> resolveOperand(const ArchModel& model,
                                            RunState& st, const Operand& o,
                                            PEId pe, unsigned t,
                                            std::map<PEId, unsigned>& exposure);

/// Materializes an integer constant in `pe`'s register file before `t`.
/// The downward search is bounded at cycle 0 by the capped occupancy scan:
/// a PE that is busy at every cycle yields nullopt (the caller delays the
/// consuming node) — the cycle counter can never wrap below zero and the
/// busy map can never grow past the context ceiling.
std::optional<Location> materializeConst(const ArchModel& model, RunState& st,
                                         std::int32_t value, PEId pe,
                                         unsigned t);

}  // namespace cgra::passes
