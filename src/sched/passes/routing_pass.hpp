// Routing / copy insertion (§V-D, §V-G): operand accessibility is resolved
// by reading an own register, routing a neighbour's output port, or
// inserting MOVE copies along the ArchModel's Floyd–Warshall shortest paths
// into earlier idle cycles; constants are materialized per consuming PE.
#pragma once

#include <array>
#include <optional>

#include "sched/passes/run_state.hpp"

namespace cgra::passes {

/// Output-port exposure of one placement probe: which source PEs the op
/// reads at its issue cycle, and through which register. Each resolved
/// operand contributes at most one entry and an op has at most three
/// operands, so a fixed-capacity flat array replaces the seed's per-probe
/// std::map (whose node allocations dominated the resolve hot path).
class ExposureMap {
public:
  struct Entry {
    PEId pe = 0;
    unsigned vreg = 0;
  };

  /// The vreg `pe` is exposed as, or nullptr when unexposed.
  const unsigned* find(PEId pe) const {
    for (unsigned i = 0; i < size_; ++i)
      if (entries_[i].pe == pe) return &entries_[i].vreg;
    return nullptr;
  }

  void set(PEId pe, unsigned vreg) {
    for (unsigned i = 0; i < size_; ++i)
      if (entries_[i].pe == pe) {
        entries_[i].vreg = vreg;
        return;
      }
    CGRA_ASSERT(size_ < kCapacity);
    entries_[size_++] = Entry{pe, vreg};
  }

  const Entry* begin() const { return entries_.data(); }
  const Entry* end() const { return entries_.data() + size_; }

private:
  static constexpr unsigned kCapacity = 4;  // ≥ max operands per op (3)
  std::array<Entry, kCapacity> entries_{};
  unsigned size_ = 0;
};

/// Resolves one operand for an op on `pe` starting at `t`, inserting MOVE
/// copies / CONST materializations when needed. `exposure` accumulates
/// out-port claims of the consuming op (claimed on success by caller).
std::optional<OperandSource> resolveOperand(const ArchModel& model,
                                            RunState& st, const Operand& o,
                                            PEId pe, unsigned t,
                                            ExposureMap& exposure);

/// Materializes an integer constant in `pe`'s register file before `t`.
/// The downward search is bounded at cycle 0 by the capped occupancy scan:
/// a PE that is busy at every cycle yields nullopt (the caller delays the
/// consuming node) — the cycle counter can never wrap below zero and the
/// busy map can never grow past the context ceiling.
std::optional<Location> materializeConst(const ArchModel& model, RunState& st,
                                         std::int32_t value, PEId pe,
                                         unsigned t);

}  // namespace cgra::passes
