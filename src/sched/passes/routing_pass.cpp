#include "sched/passes/routing_pass.hpp"

#include <string>
#include <vector>

namespace cgra::passes {

namespace {

/// Latency of a scheduler-inserted op on `pe`: the shared model table in
/// the common case, falling back to the descriptor's throwing lookup for
/// the (unsupported) 0 sentinel so the error contract is unchanged.
unsigned insertedOpDuration(const ArchModel& model, const RunState& st, Op op,
                            PEId pe) {
  const unsigned dur = model.opDuration(pe, op);
  return dur != 0 ? dur : st.comp.pe(pe).impl(op).duration;
}

std::optional<OperandSource> findOwn(const LocationList& locs, PEId pe,
                                     unsigned t) {
  for (const Location& loc : locs)
    if (loc.pe == pe && loc.ready <= t && t <= loc.validUntil)
      return OperandSource{OperandSource::Kind::Own, 0, loc.vreg, 0};
  return std::nullopt;
}

std::optional<OperandSource> findRouted(const ArchModel& model, RunState& st,
                                        const LocationList& locs, PEId pe,
                                        unsigned t, ExposureMap& exposure) {
  for (const Location& loc : locs) {
    if (loc.ready > t || t > loc.validUntil) continue;
    if (!model.interconnect().hasLink(loc.pe, pe)) continue;
    if (!st.outPortFree(loc.pe, t, loc.vreg)) continue;
    if (const unsigned* vreg = exposure.find(loc.pe);
        vreg != nullptr && *vreg != loc.vreg)
      continue;
    exposure.set(loc.pe, loc.vreg);
    return OperandSource{OperandSource::Kind::Route, loc.pe, loc.vreg, 0};
  }
  return std::nullopt;
}

/// Schedules one MOVE hop from an existing location into `destPe` at a
/// free cycle in [minCycle, t-1]; returns the new location.
std::optional<Location> scheduleMove(const ArchModel& model, RunState& st,
                                     const Location& src, PEId destPe,
                                     unsigned minCycle, unsigned t,
                                     const std::string& label) {
  const unsigned dur = insertedOpDuration(model, st, Op::MOVE, destPe);
  const unsigned lo = std::max(minCycle, src.ready);
  if (lo + dur > t) return std::nullopt;
  for (unsigned u = lo; u + dur <= t; ++u) {
    if (u > src.validUntil) break;
    if (st.busy(destPe, u, dur)) continue;
    if (!st.outPortFree(src.pe, u, src.vreg)) continue;
    const unsigned vreg = st.freshVreg(destPe);
    ScheduledOp op;
    op.node = kNoNode;
    op.op = Op::MOVE;
    op.pe = destPe;
    op.start = u;
    op.duration = dur;
    op.src[0] = OperandSource{OperandSource::Kind::Route, src.pe, src.vreg, 0};
    op.writesDest = true;
    op.destVreg = vreg;
    op.label = label;
    st.sched.ops.push_back(op);
    st.markBusy(destPe, u, dur);
    st.claimOutPort(src.pe, u, src.vreg);
    ++st.stats.copiesInserted;
    CGRA_TRACE(st.trace, CopyInserted, .cycle = u,
               .pe = static_cast<std::int32_t>(destPe), .a = src.pe,
               .b = vreg, .detail = "shortest-path hop");
    return Location{destPe, vreg, u + dur, Location::kNoLimit};
  }
  return std::nullopt;
}

/// Copies an operand along the shortest path toward `pe` so that the op at
/// cycle `t` can access it (§V-G: values are copied into earlier idle
/// cycles; the node is delayed otherwise).
std::optional<OperandSource> copyTowards(const ArchModel& model, RunState& st,
                                         const Operand& o,
                                         const LocationList& locs, PEId pe,
                                         unsigned t, ExposureMap& exposure) {
  // Pick the valid location closest to pe.
  const Interconnect& ic = model.interconnect();
  const Location* best = nullptr;
  for (const Location& loc : locs) {
    if (loc.ready > t || t > loc.validUntil) continue;
    if (ic.distance(loc.pe, pe) == kUnreachable) continue;
    if (!best || ic.distance(loc.pe, pe) < ic.distance(best->pe, pe))
      best = &loc;
  }
  if (!best) return std::nullopt;

  const unsigned minCycle = st.copyMinCycle(o);
  const std::string label = "copy";
  Location cur = *best;
  std::vector<PEId> path = ic.pathTo(cur.pe, pe);
  CGRA_ASSERT(path.size() >= 2);

  // Copy hop by hop up to pe's neighbour; the final access is routed.
  // When routing at cycle t fails (port conflict), copy into pe itself.
  for (std::size_t hop = 1; hop + 1 < path.size(); ++hop) {
    const auto next = scheduleMove(model, st, cur, path[hop], minCycle, t,
                                   label);
    if (!next) return std::nullopt;
    cur = *next;
    st.addLocation(o, cur);
  }
  // cur is now on a neighbour of pe (or was already).
  if (cur.pe != pe) {
    const unsigned* exposed = exposure.find(cur.pe);
    const bool portOk = st.outPortFree(cur.pe, t, cur.vreg) &&
                        (exposed == nullptr || *exposed == cur.vreg);
    if (portOk) {
      exposure.set(cur.pe, cur.vreg);
      return OperandSource{OperandSource::Kind::Route, cur.pe, cur.vreg, 0};
    }
    const auto fin = scheduleMove(model, st, cur, pe, minCycle, t, label);
    if (!fin) return std::nullopt;
    cur = *fin;
    st.addLocation(o, cur);
  }
  return OperandSource{OperandSource::Kind::Own, 0, cur.vreg, 0};
}

}  // namespace

std::optional<Location> materializeConst(const ArchModel& model, RunState& st,
                                         std::int32_t value, PEId pe,
                                         unsigned t) {
  PassScope scope(st.passTimer, PassId::Routing);
  const unsigned dur = insertedOpDuration(model, st, Op::CONST, pe);
  if (dur > t) return std::nullopt;
  const auto u = st.peBusy[pe].lastFreeWindowAtOrBefore(t - dur, dur);
  if (!u) return std::nullopt;
  const unsigned vreg = st.freshVreg(pe);
  ScheduledOp op;
  op.node = kNoNode;
  op.op = Op::CONST;
  op.pe = pe;
  op.start = *u;
  op.duration = dur;
  op.src[0] = OperandSource{OperandSource::Kind::Imm, 0, 0, value};
  op.writesDest = true;
  op.destVreg = vreg;
  op.label = "const " + std::to_string(value);
  st.sched.ops.push_back(op);
  st.markBusy(pe, *u, dur);
  Location loc{pe, vreg, *u + dur, Location::kNoLimit};
  st.addConstLocation(value, loc);
  ++st.stats.constsInserted;
  CGRA_TRACE(st.trace, ConstInserted, .cycle = *u,
             .pe = static_cast<std::int32_t>(pe), .a = value);
  return loc;
}

std::optional<OperandSource> resolveOperand(const ArchModel& model,
                                            RunState& st, const Operand& o,
                                            PEId pe, unsigned t,
                                            ExposureMap& exposure) {
  PassScope scope(st.passTimer, PassId::Routing);
  // One location snapshot per operand: the seed rebuilt it inside each of
  // findOwn / findRouted / copyTowards. The list is only appended to after
  // the helpers finish reading it (copyTowards copies its pick by value
  // before inserting hops), so sharing the snapshot is behavior-identical.
  const LocationList& locs = *st.locationsFor(o);

  if (o.kind() == Operand::Kind::Immediate) {
    // ALU operands come from registers: materialize the constant on the
    // consuming PE (constants are freely replicated, §V-D).
    if (const auto own = findOwn(locs, pe, t)) return own;
    if (const auto loc = materializeConst(model, st, o.imm(), pe, t))
      return OperandSource{OperandSource::Kind::Own, 0, loc->vreg, 0};
    return std::nullopt;
  }

  if (const auto own = findOwn(locs, pe, t)) return own;
  if (const auto routed = findRouted(model, st, locs, pe, t, exposure))
    return routed;
  return copyTowards(model, st, o, locs, pe, t, exposure);
}

}  // namespace cgra::passes
