// Stable content hash of one scheduling job — the cache key of the artifact
// store and the dedup key of the sweep engine.
//
// The scheduler is a deterministic pure function of (composition, CDFG,
// options), so two jobs with equal keys produce bit-identical schedules.
// The key digests the *content* of those inputs (never pointers or names
// alone): the composition's canonical JSON, every CDFG node/edge/variable/
// condition/loop, the scheduler options, and a version salt that must be
// bumped whenever a scheduler change can alter any schedule — stale cached
// artifacts from an older scheduler then simply miss.
#pragma once

#include <string>

#include "sched/scheduler.hpp"

namespace cgra {

/// Invalidation salt folded into every job key. Bump the trailing number
/// when scheduler behavior changes (placement order, routing, fusing rules,
/// cost model...) so persisted artifacts from older binaries are never
/// served for the new scheduler's output. DESIGN.md §10 records the policy.
inline constexpr const char* kSchedulerVersionSalt = "cgra-sched-salt-2";

/// 64-hex-char SHA-256 over (salt, composition JSON, CDFG content, options).
/// Deterministic across platforms, processes and library versions.
std::string scheduleJobKey(const Composition& comp, const Cdfg& graph,
                           const SchedulerOptions& options,
                           const std::string& salt = kSchedulerVersionSalt);

/// SHA-256 hex of the composition's canonical JSON alone. The composition
/// contribution to a job key is this digest: sweeps and services hash many
/// jobs against few compositions and compute it once per composition.
std::string compositionDigest(const Composition& comp);
std::string compositionDigest(const std::string& compJson);

/// SHA-256 hex over the CDFG content alone (nodes, edges, variables,
/// conditions, loops). The CDFG contribution to a job key is this digest:
/// sweeps schedule many (composition × kernel) jobs against few kernel
/// graphs and hash each graph once instead of once per job.
std::string cdfgDigest(const Cdfg& graph);

/// Variant taking a precomputed compositionDigest(): only the CDFG and
/// options are hashed per call.
std::string scheduleJobKeyWithCompDigest(const std::string& compDigest,
                                         const Cdfg& graph,
                                         const SchedulerOptions& options,
                                         const std::string& salt =
                                             kSchedulerVersionSalt);

/// Variant taking both precomputed digests — the cheapest per-job form;
/// only the options are hashed per call. Every scheduleJobKey* overload
/// funnels into this recipe, so keys agree across all layers.
std::string scheduleJobKeyWithDigests(const std::string& compDigest,
                                      const std::string& cdfgDigest,
                                      const SchedulerOptions& options,
                                      const std::string& salt =
                                          kSchedulerVersionSalt);

/// Variant reusing an already-serialized composition document
/// (`comp.toJson().dump()`).
std::string scheduleJobKeyWithCompJson(const std::string& compJson,
                                       const Cdfg& graph,
                                       const SchedulerOptions& options,
                                       const std::string& salt =
                                           kSchedulerVersionSalt);

}  // namespace cgra
