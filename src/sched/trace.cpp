#include "sched/trace.hpp"

#include <algorithm>
#include <sstream>

#include "arch/composition.hpp"
#include "cdfg/cdfg.hpp"
#include "support/assert.hpp"

namespace cgra {

const char* traceEventName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::PhaseBegin: return "phase";
    case TraceEventKind::PhaseEnd: return "phase-end";
    case TraceEventKind::StepBegin: return "step";
    case TraceEventKind::CandidateSelected: return "candidate";
    case TraceEventKind::PlacementRejected: return "reject";
    case TraceEventKind::NodePlaced: return "place";
    case TraceEventKind::CopyInserted: return "copy";
    case TraceEventKind::ConstInserted: return "const";
    case TraceEventKind::WriteFused: return "fuse";
    case TraceEventKind::CBoxSlotAllocated: return "cbox-slot";
    case TraceEventKind::LoopOpened: return "loop-open";
    case TraceEventKind::LoopClosed: return "loop-close";
    case TraceEventKind::BranchPlaced: return "branch";
    case TraceEventKind::Failure: return "failure";
    case TraceEventKind::CacheLookup: return "cache";
  }
  CGRA_UNREACHABLE("bad TraceEventKind");
}

const char* traceRejectName(TraceReject reject) {
  switch (reject) {
    case TraceReject::None: return "none";
    case TraceReject::Incompatible: return "incompatible";
    case TraceReject::PeBusy: return "pe-busy";
    case TraceReject::CBoxWritePortBusy: return "cbox-write-port-busy";
    case TraceReject::PredUnavailable: return "pred-unavailable";
    case TraceReject::OperandUnroutable: return "operand-unroutable";
  }
  CGRA_UNREACHABLE("bad TraceReject");
}

Trace::Trace(const TraceOptions& opts)
    : capacity_(std::max<std::size_t>(1, opts.capacity)) {
  ring_.reserve(capacity_);
}

void Trace::emit(TraceEvent e) {
  e.seq = static_cast<std::uint32_t>(totalEmitted_);
  ++totalEmitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
}

const TraceEvent& Trace::event(std::size_t i) const {
  CGRA_ASSERT(i < ring_.size());
  return ring_[(head_ + i) % ring_.size()];
}

namespace {

/// Kind-specific args object for the Chrome trace viewer.
json::Object eventArgs(const TraceEvent& e) {
  json::Object args;
  args["cycle"] = static_cast<std::int64_t>(e.cycle);
  if (e.node >= 0) args["node"] = static_cast<std::int64_t>(e.node);
  if (e.pe >= 0) args["pe"] = static_cast<std::int64_t>(e.pe);
  if (e.a != 0) args["a"] = e.a;
  if (e.b != 0) args["b"] = e.b;
  if (e.reject != TraceReject::None)
    args["reject"] = traceRejectName(e.reject);
  if (e.detail.str[0] != '\0') args["detail"] = e.detail.str;
  return args;
}

}  // namespace

json::Value Trace::toChromeJson(const std::string& label) const {
  json::Array events;

  // Process metadata so the viewer names the track after the job.
  json::Object meta;
  meta["name"] = "process_name";
  meta["ph"] = "M";
  meta["pid"] = 0;
  meta["tid"] = 0;
  json::Object metaArgs;
  metaArgs["name"] = label;
  meta["args"] = std::move(metaArgs);
  events.emplace_back(std::move(meta));

  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    json::Object o;
    switch (e.kind) {
      case TraceEventKind::PhaseBegin:
      case TraceEventKind::PhaseEnd:
        o["name"] = e.detail.str;
        o["ph"] = e.kind == TraceEventKind::PhaseBegin ? "B" : "E";
        break;
      default:
        o["name"] = traceEventName(e.kind);
        o["ph"] = "i";
        o["s"] = "t";  // thread-scoped instant
        break;
    }
    // Logical time: the event sequence number. Deterministic across runs
    // and thread counts (never wall clock), monotone, and readable as
    // "decision index" in the viewer's microsecond axis.
    o["ts"] = static_cast<std::int64_t>(e.seq);
    o["pid"] = 0;
    o["tid"] = 0;
    o["args"] = eventArgs(e);
    events.emplace_back(std::move(o));
  }

  json::Object top;
  top["traceEvents"] = std::move(events);
  top["displayTimeUnit"] = "ms";
  json::Object other;
  other["label"] = label;
  other["eventsEmitted"] = totalEmitted();
  other["eventsDropped"] = droppedEvents();
  top["otherData"] = std::move(other);
  return top;
}

namespace {

std::string nodeName(std::int32_t node, const Cdfg* g) {
  if (node < 0) return "-";
  std::string out = "node" + std::to_string(node);
  if (g != nullptr && static_cast<NodeId>(node) < g->numNodes()) {
    const Node& n = g->node(static_cast<NodeId>(node));
    if (n.isPWrite()) {
      out += "(pWRITE ";
      out += g->variable(n.var).name;
    } else {
      out += "(";
      out += opName(n.op);
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string Trace::explain(const Cdfg* graph, const Composition* comp) const {
  std::ostringstream os;
  if (comp != nullptr) os << "composition: " << comp->name() << "\n";
  os << "events: " << totalEmitted();
  if (droppedEvents() > 0)
    os << " (" << droppedEvents() << " oldest dropped by the ring buffer)";
  os << "\n";

  for (std::size_t i = 0; i < size(); ++i) {
    const TraceEvent& e = event(i);
    os << "[t=" << e.cycle << "] ";
    switch (e.kind) {
      case TraceEventKind::PhaseBegin:
        os << "-- phase " << e.detail.str << " --";
        break;
      case TraceEventKind::PhaseEnd:
        os << "-- end " << e.detail.str << " --";
        break;
      case TraceEventKind::StepBegin:
        os << "step: context " << e.cycle << " opened";
        break;
      case TraceEventKind::CandidateSelected:
        os << "candidate " << nodeName(e.node, graph) << " weight "
           << static_cast<double>(e.a) / 1000.0;
        break;
      case TraceEventKind::PlacementRejected:
        os << "  reject " << nodeName(e.node, graph) << " on PE" << e.pe
           << ": " << traceRejectName(e.reject);
        if (e.detail.str[0] != '\0') os << " (" << e.detail.str << ")";
        break;
      case TraceEventKind::NodePlaced:
        os << "place " << nodeName(e.node, graph) << " on PE" << e.pe
           << " for " << e.a << " cycle(s)";
        break;
      case TraceEventKind::CopyInserted:
        os << "copy: MOVE PE" << e.a << " -> PE" << e.pe << " at cycle "
           << e.cycle << " (vreg " << e.b << ", " << e.detail.str << ")";
        break;
      case TraceEventKind::ConstInserted:
        os << "const " << e.a << " materialized on PE" << e.pe
           << " at cycle " << e.cycle;
        break;
      case TraceEventKind::WriteFused:
        os << "fuse: " << nodeName(e.a >= 0 ? static_cast<std::int32_t>(e.a)
                                            : -1,
                                   graph)
           << " folded into producer " << nodeName(e.node, graph) << " on PE"
           << e.pe;
        break;
      case TraceEventKind::CBoxSlotAllocated:
        os << "c-box slot " << e.a << " <- condition " << e.b << " ("
           << e.detail.str << ") at cycle " << e.cycle;
        break;
      case TraceEventKind::LoopOpened:
        os << "loop " << e.a << " opened at context " << e.cycle;
        break;
      case TraceEventKind::LoopClosed:
        os << "loop " << e.a << " closed; back-branch at context " << e.b;
        break;
      case TraceEventKind::BranchPlaced:
        os << "branch at context " << e.cycle << " -> target " << e.a;
        break;
      case TraceEventKind::Failure:
        os << "FAILED: " << e.detail.str;
        if (e.node >= 0)
          os << "; final failing node " << nodeName(e.node, graph)
             << " last rejected: " << traceRejectName(e.reject);
        break;
      case TraceEventKind::CacheLookup:
        os << "artifact cache " << e.detail.str;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cgra
