#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace cgra {

std::vector<const ScheduledOp*> Schedule::opsByTime() const {
  std::vector<const ScheduledOp*> out;
  out.reserve(ops.size());
  for (const ScheduledOp& op : ops) out.push_back(&op);
  std::sort(out.begin(), out.end(),
            [](const ScheduledOp* a, const ScheduledOp* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->pe < b->pe;
            });
  return out;
}

std::string Schedule::toString(const Composition& comp) const {
  std::ostringstream os;
  os << "schedule: " << length << " contexts on " << comp.name() << "\n";
  auto sorted = opsByTime();
  std::size_t branchIdx = 0;
  std::vector<const BranchOp*> sortedBranches;
  for (const BranchOp& b : branches) sortedBranches.push_back(&b);
  std::sort(sortedBranches.begin(), sortedBranches.end(),
            [](const BranchOp* a, const BranchOp* b) { return a->time < b->time; });
  std::vector<const CBoxOp*> sortedCbox;
  for (const CBoxOp& c : cboxOps) sortedCbox.push_back(&c);
  std::sort(sortedCbox.begin(), sortedCbox.end(),
            [](const CBoxOp* a, const CBoxOp* b) { return a->time < b->time; });
  std::size_t cboxIdx = 0;

  std::size_t i = 0;
  for (unsigned t = 0; t < length; ++t) {
    bool anything = false;
    auto header = [&]() {
      if (!anything) os << "t" << t << ":\n";
      anything = true;
    };
    for (; i < sorted.size() && sorted[i]->start == t; ++i) {
      header();
      const ScheduledOp& op = *sorted[i];
      os << "  PE" << op.pe << " " << opName(op.op);
      if (op.duration > 1) os << "(x" << op.duration << ")";
      for (const OperandSource& s : op.src) {
        switch (s.kind) {
          case OperandSource::Kind::None: break;
          case OperandSource::Kind::Own: os << " r" << s.vreg; break;
          case OperandSource::Kind::Route:
            os << " PE" << s.srcPE << ".r" << s.vreg;
            break;
          case OperandSource::Kind::Imm: os << " #" << s.imm; break;
        }
      }
      if (op.writesDest) os << " -> r" << op.destVreg;
      if (op.pred)
        os << " [pred " << (op.pred->polarity ? "" : "!") << "c"
           << op.pred->slot << "]";
      if (op.emitsStatus) os << " => status";
      if (!op.label.empty()) os << "  ; " << op.label;
      os << "\n";
    }
    for (; cboxIdx < sortedCbox.size() && sortedCbox[cboxIdx]->time == t;
         ++cboxIdx) {
      header();
      const CBoxOp& c = *sortedCbox[cboxIdx];
      os << "  CBOX c" << c.writeSlot << " = ";
      bool first = true;
      for (const CBoxOp::Input& in : c.inputs) {
        if (!first)
          os << (c.logic == CBoxOp::Logic::Or ? " | " : " & ");
        first = false;
        if (!in.polarity) os << '!';
        if (in.kind == CBoxOp::Input::Kind::Status)
          os << "status";
        else
          os << 'c' << in.slot;
      }
      os << "\n";
    }
    for (; branchIdx < sortedBranches.size() &&
           sortedBranches[branchIdx]->time == t;
         ++branchIdx) {
      header();
      const BranchOp& b = *sortedBranches[branchIdx];
      os << "  CCU ";
      if (b.conditional)
        os << "if " << (b.pred.polarity ? "" : "!") << 'c' << b.pred.slot
           << ' ';
      os << "goto t" << b.target << "\n";
    }
  }
  return os.str();
}

std::uint64_t Schedule::fingerprint() const {
  // FNV-1a, folding every field in declaration order so any divergence —
  // op placement, operand routing, predication, C-Box/CCU programs, live
  // bindings — changes the digest.
  std::uint64_t h = 14695981039346656037ull;
  auto byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto word = [&byte](std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto str = [&byte, &word](const std::string& s) {
    word(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  };
  auto pred = [&word](const std::optional<PredRef>& p) {
    word(p ? 1 : 0);
    if (p) {
      word(p->slot);
      word(p->polarity ? 1 : 0);
    }
  };

  word(length);
  word(ops.size());
  for (const ScheduledOp& op : ops) {
    word(op.node);
    word(static_cast<std::uint64_t>(op.op));
    word(op.pe);
    word(op.start);
    word(op.duration);
    for (const OperandSource& s : op.src) {
      word(static_cast<std::uint64_t>(s.kind));
      word(s.srcPE);
      word(s.vreg);
      word(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.imm)));
    }
    word(op.writesDest ? 1 : 0);
    word(op.destVreg);
    pred(op.pred);
    word(op.emitsStatus ? 1 : 0);
    str(op.label);
  }
  word(cboxOps.size());
  for (const CBoxOp& c : cboxOps) {
    word(c.time);
    word(c.inputs.size());
    for (const CBoxOp::Input& in : c.inputs) {
      word(static_cast<std::uint64_t>(in.kind));
      word(in.slot);
      word(in.polarity ? 1 : 0);
    }
    word(static_cast<std::uint64_t>(c.logic));
    word(c.writeSlot);
    word(c.cond);
  }
  word(branches.size());
  for (const BranchOp& b : branches) {
    word(b.time);
    word(b.target);
    word(b.conditional ? 1 : 0);
    word(b.pred.slot);
    word(b.pred.polarity ? 1 : 0);
    word(b.loop);
  }
  word(loops.size());
  for (const LoopInterval& l : loops) {
    word(l.loop);
    word(l.start);
    word(l.end);
  }
  auto bindings = [&word](const std::vector<LiveBinding>& v) {
    word(v.size());
    for (const LiveBinding& b : v) {
      word(b.var);
      word(b.pe);
      word(b.vreg);
    }
  };
  bindings(liveIns);
  bindings(liveOuts);
  bindings(varHomes);
  word(vregsPerPE.size());
  for (unsigned v : vregsPerPE) word(v);
  word(cboxSlotsUsed);
  return h;
}

}  // namespace cgra
