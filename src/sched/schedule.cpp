#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace cgra {

std::vector<const ScheduledOp*> Schedule::opsByTime() const {
  std::vector<const ScheduledOp*> out;
  out.reserve(ops.size());
  for (const ScheduledOp& op : ops) out.push_back(&op);
  std::sort(out.begin(), out.end(),
            [](const ScheduledOp* a, const ScheduledOp* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->pe < b->pe;
            });
  return out;
}

std::string Schedule::toString(const Composition& comp) const {
  std::ostringstream os;
  os << "schedule: " << length << " contexts on " << comp.name() << "\n";
  auto sorted = opsByTime();
  std::size_t branchIdx = 0;
  std::vector<const BranchOp*> sortedBranches;
  for (const BranchOp& b : branches) sortedBranches.push_back(&b);
  std::sort(sortedBranches.begin(), sortedBranches.end(),
            [](const BranchOp* a, const BranchOp* b) { return a->time < b->time; });
  std::vector<const CBoxOp*> sortedCbox;
  for (const CBoxOp& c : cboxOps) sortedCbox.push_back(&c);
  std::sort(sortedCbox.begin(), sortedCbox.end(),
            [](const CBoxOp* a, const CBoxOp* b) { return a->time < b->time; });
  std::size_t cboxIdx = 0;

  std::size_t i = 0;
  for (unsigned t = 0; t < length; ++t) {
    bool anything = false;
    auto header = [&]() {
      if (!anything) os << "t" << t << ":\n";
      anything = true;
    };
    for (; i < sorted.size() && sorted[i]->start == t; ++i) {
      header();
      const ScheduledOp& op = *sorted[i];
      os << "  PE" << op.pe << " " << opName(op.op);
      if (op.duration > 1) os << "(x" << op.duration << ")";
      for (const OperandSource& s : op.src) {
        switch (s.kind) {
          case OperandSource::Kind::None: break;
          case OperandSource::Kind::Own: os << " r" << s.vreg; break;
          case OperandSource::Kind::Route:
            os << " PE" << s.srcPE << ".r" << s.vreg;
            break;
          case OperandSource::Kind::Imm: os << " #" << s.imm; break;
        }
      }
      if (op.writesDest) os << " -> r" << op.destVreg;
      if (op.pred)
        os << " [pred " << (op.pred->polarity ? "" : "!") << "c"
           << op.pred->slot << "]";
      if (op.emitsStatus) os << " => status";
      if (!op.label.empty()) os << "  ; " << op.label;
      os << "\n";
    }
    for (; cboxIdx < sortedCbox.size() && sortedCbox[cboxIdx]->time == t;
         ++cboxIdx) {
      header();
      const CBoxOp& c = *sortedCbox[cboxIdx];
      os << "  CBOX c" << c.writeSlot << " = ";
      bool first = true;
      for (const CBoxOp::Input& in : c.inputs) {
        if (!first)
          os << (c.logic == CBoxOp::Logic::Or ? " | " : " & ");
        first = false;
        if (!in.polarity) os << '!';
        if (in.kind == CBoxOp::Input::Kind::Status)
          os << "status";
        else
          os << 'c' << in.slot;
      }
      os << "\n";
    }
    for (; branchIdx < sortedBranches.size() &&
           sortedBranches[branchIdx]->time == t;
         ++branchIdx) {
      header();
      const BranchOp& b = *sortedBranches[branchIdx];
      os << "  CCU ";
      if (b.conditional)
        os << "if " << (b.pred.polarity ? "" : "!") << 'c' << b.pred.slot
           << ' ';
      os << "goto t" << b.target << "\n";
    }
  }
  return os.str();
}

}  // namespace cgra
