#include "sched/analysis.hpp"

#include <algorithm>
#include <map>
#include <cctype>
#include <sstream>

namespace cgra {

ScheduleAnalysis analyzeSchedule(const Schedule& sched,
                                 const Composition& comp) {
  ScheduleAnalysis out;
  out.perPE.resize(comp.numPEs());
  std::vector<unsigned> inFlight(std::max(1u, sched.length), 0);
  for (PEId p = 0; p < comp.numPEs(); ++p) out.perPE[p].pe = p;

  for (const ScheduledOp& op : sched.ops) {
    PEUtilization& pe = out.perPE[op.pe];
    pe.busyCycles += op.duration;
    ++pe.opsIssued;
    ++out.totalOps;
    if (op.node == kNoNode) {
      ++pe.copsIssued;
      ++out.insertedOps;
    }
    for (unsigned c = op.start; c <= op.lastCycle(); ++c) ++inFlight[c];
  }
  double totalUtil = 0.0;
  for (PEUtilization& pe : out.perPE) {
    pe.utilization =
        sched.length ? static_cast<double>(pe.busyCycles) / sched.length : 0.0;
    totalUtil += pe.utilization;
  }
  out.avgUtilization = comp.numPEs() ? totalUtil / comp.numPEs() : 0.0;
  out.peakParallelism =
      *std::max_element(inFlight.begin(), inFlight.end());
  out.cboxBusyCycles = static_cast<unsigned>(sched.cboxOps.size());
  return out;
}

namespace {

char opSymbol(const ScheduledOp& op) {
  char c;
  if (producesStatus(op.op))
    c = '?';
  else if (isMemoryOp(op.op))
    c = 'd';
  else if (op.op == Op::IMUL)
    c = 'm';
  else if (op.op == Op::MOVE || op.op == Op::CONST)
    c = 'c';
  else
    c = 'a';
  return op.pred ? static_cast<char>(std::toupper(c)) : c;
}

}  // namespace

std::string ganttChart(const Schedule& sched, const Composition& comp) {
  std::ostringstream os;
  std::vector<std::string> rows(comp.numPEs(), std::string(sched.length, '.'));
  for (const ScheduledOp& op : sched.ops) {
    rows[op.pe][op.start] = opSymbol(op);
    for (unsigned c = op.start + 1; c <= op.lastCycle(); ++c)
      rows[op.pe][c] = '-';
  }
  for (PEId p = 0; p < comp.numPEs(); ++p)
    os << "PE" << p << (p < 10 ? "  |" : " |") << rows[p] << "|\n";

  std::string cbox(sched.length, '.');
  for (const CBoxOp& op : sched.cboxOps)
    cbox[op.time] = op.inputs.size() > 1 ? '&' : 's';
  os << "CBOX |" << cbox << "|\n";
  std::string ccu(sched.length, '.');
  for (const BranchOp& b : sched.branches) ccu[b.time] = '^';
  os << "CCU  |" << ccu << "|\n";

  // Loop intervals underneath, innermost-last for readability.
  for (const LoopInterval& li : sched.loops) {
    std::string row(sched.length, ' ');
    for (unsigned c = li.start; c <= li.end; ++c) row[c] = '=';
    row[li.start] = '[';
    row[li.end] = ']';
    os << "L" << li.loop << "   |" << row << "|\n";
  }
  return os.str();
}

std::vector<LoopMii> computeMiiBounds(const Cdfg& graph, const Schedule& sched,
                                      const Composition& comp) {
  std::vector<LoopMii> out;
  std::map<LoopId, LoopInterval> intervals;
  for (const LoopInterval& li : sched.loops) intervals[li.loop] = li;

  for (LoopId l = 1; l < graph.numLoops(); ++l) {
    LoopMii mii;
    mii.loop = l;
    if (const auto it = intervals.find(l); it != intervals.end())
      mii.achievedInterval = it->second.end - it->second.start + 1;

    // Direct members of this loop (nested loops pipeline separately).
    std::vector<NodeId> members;
    for (NodeId id = 0; id < graph.numNodes(); ++id)
      if (graph.node(id).loop == l) members.push_back(id);

    // ResMII per resource class.
    double aluWork = 0.0, mulWork = 0.0, memWork = 0.0, statusWork = 0.0;
    for (NodeId id : members) {
      const Node& n = graph.node(id);
      if (n.kind == NodeKind::PWrite) {
        aluWork += 1.0;  // a MOVE/CONST issue slot when not fused
        continue;
      }
      const double dur = defaultDuration(n.op);
      if (n.isMemory())
        memWork += dur;
      else if (n.isStatusProducer())
        statusWork += 1.0;
      else if (n.op == Op::IMUL)
        mulWork += dur;
      else
        aluWork += dur;
    }
    const double numPEs = comp.numPEs();
    const double mulPEs =
        std::max<std::size_t>(1, comp.pesSupporting(Op::IMUL).size());
    const double dmaPEs = std::max<std::size_t>(1, comp.dmaPEs().size());
    mii.resMii = std::max({(aluWork + mulWork + memWork) / numPEs,
                           mulWork / mulPEs, memWork / dmaPEs,
                           statusWork /* one status per cycle */});

    // RecMII: longest latency chain (Flow edges, within the loop) from any
    // reader of a loop-written variable to a pWRITE of that variable —
    // every loop-carried recurrence in this IR runs through a home register
    // with iteration distance 1.
    std::vector<double> longestTo(graph.numNodes(), -1.0);
    // Topological relaxation over members (ids ascend topologically within
    // a lowering, but be safe: iterate until fixpoint; graphs are small).
    bool changed = true;
    auto inLoop = [&](NodeId id) { return graph.node(id).loop == l; };
    // Seed: readers of loop-written variables.
    for (NodeId id : members) {
      const Node& n = graph.node(id);
      for (const Operand& o : n.operands)
        if (o.kind() == Operand::Kind::Variable &&
            graph.varWrittenInLoop(o.varId(), l))
          longestTo[id] = n.kind == NodeKind::Operation
                              ? defaultDuration(n.op)
                              : 1.0;
    }
    while (changed) {
      changed = false;
      for (NodeId id : members) {
        if (longestTo[id] < 0) continue;
        for (const Edge& e : graph.outEdges(id)) {
          if (e.kind != DepKind::Flow || !inLoop(e.to)) continue;
          const Node& to = graph.node(e.to);
          const double cost = to.kind == NodeKind::Operation
                                  ? defaultDuration(to.op)
                                  : 1.0;
          if (longestTo[id] + cost > longestTo[e.to]) {
            longestTo[e.to] = longestTo[id] + cost;
            changed = true;
          }
        }
      }
    }
    for (NodeId id : members)
      if (graph.node(id).isPWrite() &&
          graph.varWrittenInLoop(graph.node(id).var, l))
        mii.recMii = std::max(mii.recMii, longestTo[id]);
    mii.recMii = std::max(mii.recMii, 1.0);

    out.push_back(mii);
  }
  return out;
}

}  // namespace cgra
