// Per-composition routing tables, computed once and shared read-only.
//
// Every scheduling run needs the same composition-derived lookups: the
// sink list of each PE (who can read my output port — an O(PEs·links) scan
// in the seed, re-run on every attraction update), per-PE connectivity
// scores for the §V-G tie-break, and the per-operation supporting-PE sets
// used by the mappability check. Combined with the interconnect's
// Floyd–Warshall distance/next-hop matrices (already computed once per
// composition), these make up everything the scheduler derives from the
// architecture alone. During a composition sweep, N scheduler instances on
// the same composition share one immutable RoutingInfo instead of each run
// rebuilding the tables — the same memoization that ILP-based mappers apply
// to per-architecture connectivity tables.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/composition.hpp"

namespace cgra {

/// Immutable composition-derived lookup tables (safe to share across
/// threads; all fields are populated by build() and never mutated after).
struct RoutingInfo {
  /// Per PE: the PEs that can read its output port, ascending id.
  std::vector<std::vector<PEId>> sinks;
  /// Per PE: |sources| + |sinks| (§V-G "the PE with more connections").
  std::vector<unsigned> connectivity;
  /// Per operation (indexed by static_cast<unsigned>(Op)): supporting PEs.
  std::vector<std::vector<PEId>> supportingPEs;
  /// Per PE: number of PEs it can reach (kUnreachable-free distance rows).
  std::vector<unsigned> reachCount;

  static RoutingInfo build(const Composition& comp);
};

/// Thread-safe cache of RoutingInfo keyed by composition identity. Entries
/// are shared_ptr so lookups stay valid independent of cache lifetime; the
/// caller must keep each Composition alive while its entry is in use (the
/// sweep engine owns both for the duration of a run).
class RoutingCache {
public:
  /// Returns the cached tables for `comp`, building them on first use.
  std::shared_ptr<const RoutingInfo> lookup(const Composition& comp);

  std::size_t size() const;

private:
  mutable std::mutex mu_;
  std::map<const Composition*, std::shared_ptr<const RoutingInfo>> entries_;
};

}  // namespace cgra
