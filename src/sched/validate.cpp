#include "sched/validate.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace cgra {

namespace {

struct Checker {
  const Schedule& s;
  const Cdfg& g;
  const Composition& comp;
  std::vector<std::string> issues;

  template <typename... Args>
  void issue(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    issues.push_back(os.str());
  }

  void run() {
    checkNodeCoverage();
    checkPEOccupancy();
    checkRouting();
    checkDependencies();
    checkPredication();
    checkCBox();
    checkLoops();
    checkCapacity();
  }

  std::map<NodeId, const ScheduledOp*> nodeOps;

  void checkNodeCoverage() {
    for (const ScheduledOp& op : s.ops) {
      if (op.node == kNoNode) {
        if (op.op != Op::MOVE && op.op != Op::CONST)
          issue("inserted op at t", op.start, " is ", opName(op.op),
                ", expected MOVE/CONST");
        continue;
      }
      if (nodeOps.contains(op.node))
        issue("node ", op.node, " scheduled twice");
      nodeOps[op.node] = &op;
    }
    for (NodeId id = 0; id < g.numNodes(); ++id)
      if (!nodeOps.contains(id)) {
        // Fused pWRITEs share their producer's ScheduledOp; accept a pWRITE
        // without its own op when its producer's op writes the home register.
        const Node& n = g.node(id);
        bool fused = false;
        if (n.isPWrite() && n.operands[0].kind() == Operand::Kind::Node) {
          const auto it = nodeOps.find(n.operands[0].nodeId());
          fused = it != nodeOps.end() && it->second->writesDest;
        }
        if (fused)
          nodeOps[id] = nodeOps.at(n.operands[0].nodeId());
        else
          issue("node ", id, " not scheduled");
      }
  }

  void checkPEOccupancy() {
    std::map<std::pair<PEId, unsigned>, const ScheduledOp*> busy;
    for (const ScheduledOp& op : s.ops) {
      if (op.pe >= comp.numPEs()) {
        issue("op at t", op.start, " on invalid PE ", op.pe);
        continue;
      }
      if (!comp.pe(op.pe).supports(op.op))
        issue("PE ", op.pe, " does not support ", opName(op.op));
      for (unsigned c = op.start; c <= op.lastCycle(); ++c) {
        const auto key = std::make_pair(op.pe, c);
        if (busy.contains(key))
          issue("PE ", op.pe, " double-booked at t", c);
        busy[key] = &op;
      }
      if (op.writesDest && op.pe < s.vregsPerPE.size() &&
          op.destVreg >= s.vregsPerPE[op.pe])
        issue("op at t", op.start, " writes vreg ", op.destVreg,
              " beyond PE ", op.pe, " count");
    }
  }

  void checkRouting() {
    // Per (PE, cycle): the register exposed on the output port.
    std::map<std::pair<PEId, unsigned>, unsigned> exposed;
    for (const ScheduledOp& op : s.ops)
      for (const OperandSource& src : op.src) {
        if (src.kind != OperandSource::Kind::Route) continue;
        if (!comp.interconnect().hasLink(src.srcPE, op.pe))
          issue("op at t", op.start, " on PE ", op.pe,
                " routes from non-source PE ", src.srcPE);
        const auto key = std::make_pair(src.srcPE, op.start);
        const auto it = exposed.find(key);
        if (it != exposed.end() && it->second != src.vreg)
          issue("PE ", src.srcPE, " output port exposes two registers at t",
                op.start);
        exposed[key] = src.vreg;
      }
  }

  void checkDependencies() {
    for (const Edge& e : g.edges()) {
      const auto fi = nodeOps.find(e.from);
      const auto ti = nodeOps.find(e.to);
      if (fi == nodeOps.end() || ti == nodeOps.end()) continue;
      const ScheduledOp& from = *fi->second;
      const ScheduledOp& to = *ti->second;
      const unsigned fromFinish = from.start + from.duration;
      switch (e.kind) {
        case DepKind::Flow:
        case DepKind::Output:
          // Fused producer/writer pairs share one op; identity is fine.
          if (&from != &to && to.start < fromFinish)
            issue("edge ", e.from, "->", e.to, " (",
                  e.kind == DepKind::Flow ? "flow" : "output",
                  ") violated: ", to.start, " < ", fromFinish);
          break;
        case DepKind::Anti:
          if (to.start < from.start)
            issue("anti edge ", e.from, "->", e.to, " violated: ", to.start,
                  " < ", from.start);
          break;
        case DepKind::Control:
          if (&from != &to && to.start < fromFinish)
            issue("control edge ", e.from, "->", e.to,
                  " violated: condition producer finishes at ", fromFinish,
                  ", consumer starts at ", to.start);
          break;
      }
    }
  }

  void checkPredication() {
    // Single outPE wire: at most one distinct (slot, polarity) per cycle.
    std::map<unsigned, PredRef> predPerCycle;
    for (const ScheduledOp& op : s.ops) {
      if (op.pred) {
        const auto it = predPerCycle.find(op.start);
        if (it != predPerCycle.end() && !(it->second == *op.pred))
          issue("two distinct predication signals read at t", op.start);
        predPerCycle.emplace(op.start, *op.pred);
        if (op.pred->slot >= s.cboxSlotsUsed)
          issue("op at t", op.start, " reads condition slot ", op.pred->slot,
                " beyond used count");
      }
      // pWRITE / memory nodes with a non-TRUE condition must be predicated.
      if (op.node != kNoNode) {
        const Node& n = g.node(op.node);
        const bool needsPred =
            (n.isPWrite() || n.isMemory()) && n.cond != kCondTrue;
        // A fused producer op carries the writer's predication; we can only
        // check presence for ops that directly represent the node.
        if (needsPred && !op.pred &&
            (n.isPWrite() || n.isMemory()))
          issue("node ", op.node, " (cond ", n.cond,
                ") scheduled without predication at t", op.start);
      }
    }
  }

  void checkCBox() {
    std::set<unsigned> cboxCycles;
    std::map<unsigned, unsigned> statusAt;  // cycle -> count
    for (const CBoxOp& op : s.cboxOps) {
      if (!cboxCycles.insert(op.time).second)
        issue("two C-Box operations at t", op.time);
      unsigned statusInputs = 0;
      for (const CBoxOp::Input& in : op.inputs) {
        if (in.kind == CBoxOp::Input::Kind::Status) ++statusInputs;
        else if (in.slot >= s.cboxSlotsUsed)
          issue("C-Box op at t", op.time, " reads slot ", in.slot,
                " beyond used count");
      }
      if (statusInputs > 1)
        issue("C-Box op at t", op.time, " consumes two statuses");
      if (statusInputs) ++statusAt[op.time];
      if (op.inputs.empty() || op.inputs.size() > 2)
        issue("C-Box op at t", op.time, " has ", op.inputs.size(), " inputs");
      if (op.writeSlot >= s.cboxSlotsUsed)
        issue("C-Box op at t", op.time, " writes slot beyond used count");
    }
    // Every comparison must have its status consumed in its last cycle.
    for (const ScheduledOp& op : s.ops) {
      if (!op.emitsStatus) continue;
      const unsigned cycle = op.lastCycle();
      const bool consumed =
          std::any_of(s.cboxOps.begin(), s.cboxOps.end(), [&](const CBoxOp& c) {
            if (c.time != cycle) return false;
            return std::any_of(c.inputs.begin(), c.inputs.end(),
                               [](const CBoxOp::Input& in) {
                                 return in.kind == CBoxOp::Input::Kind::Status;
                               });
          });
      if (!consumed)
        issue("status of comparison at t", op.start, " never consumed");
    }
    for (const auto& [cycle, count] : statusAt)
      if (count > 1) issue("two statuses consumed at t", cycle);
  }

  void checkLoops() {
    std::map<unsigned, unsigned> branchCount;
    for (const BranchOp& b : s.branches) {
      ++branchCount[b.time];
      if (b.target > b.time)
        issue("forward branch at t", b.time, " (target ", b.target, ")");
    }
    for (const auto& [cycle, count] : branchCount)
      if (count > 1) issue("two branches at t", cycle);

    std::map<LoopId, LoopInterval> intervals;
    for (const LoopInterval& li : s.loops) {
      if (intervals.contains(li.loop)) issue("loop ", li.loop, " closed twice");
      intervals[li.loop] = li;
      if (li.start > li.end)
        issue("loop ", li.loop, " interval inverted");
      const bool hasBranch = std::any_of(
          s.branches.begin(), s.branches.end(), [&](const BranchOp& b) {
            return b.loop == li.loop && b.time == li.end &&
                   b.target == li.start && b.conditional;
          });
      if (!hasBranch)
        issue("loop ", li.loop, " missing conditional back-branch at t",
              li.end);
    }
    for (LoopId l = 1; l < g.numLoops(); ++l)
      if (!intervals.contains(l)) issue("loop ", l, " never closed");

    // Nesting: child interval strictly inside parent's; sibling intervals
    // disjoint.
    for (const auto& [l, li] : intervals) {
      const LoopId parent = g.loop(l).parent;
      if (parent != kRootLoop) {
        const auto pi = intervals.find(parent);
        if (pi != intervals.end() &&
            (li.start < pi->second.start || li.end >= pi->second.end))
          issue("loop ", l, " interval [", li.start, ",", li.end,
                "] not nested in parent [", pi->second.start, ",",
                pi->second.end, "]");
      }
    }
    for (const auto& [l1, i1] : intervals)
      for (const auto& [l2, i2] : intervals) {
        if (l1 >= l2) continue;
        if (g.loopContains(l1, l2) || g.loopContains(l2, l1)) continue;
        const bool disjoint = i1.end < i2.start || i2.end < i1.start;
        if (!disjoint)
          issue("sibling loops ", l1, " and ", l2, " overlap");
      }

    // Ownership: an op of loop l must lie inside l's interval and outside
    // any non-ancestor loop's interval.
    for (const ScheduledOp& op : s.ops) {
      if (op.node == kNoNode) continue;  // copies/constants may backfill
      const LoopId l = g.node(op.node).loop;
      if (l != kRootLoop) {
        const auto it = intervals.find(l);
        if (it != intervals.end() &&
            (op.start < it->second.start || op.lastCycle() > it->second.end))
          issue("node ", op.node, " of loop ", l, " at [", op.start, ",",
                op.lastCycle(), "] escapes interval [", it->second.start, ",",
                it->second.end, "]");
      }
      for (const auto& [other, oi] : intervals) {
        if (g.loopContains(other, l)) continue;  // own loop or its ancestors
        const bool inside = op.start >= oi.start && op.start <= oi.end;
        if (inside)
          issue("node ", op.node, " of loop ", l, " scheduled at t", op.start,
                " inside foreign loop ", other, " interval");
      }
    }
  }

  void checkCapacity() {
    if (s.length > comp.contextMemoryLength())
      issue("schedule length ", s.length, " exceeds context memory ",
            comp.contextMemoryLength());
    for (const ScheduledOp& op : s.ops)
      if (op.lastCycle() >= s.length)
        issue("op at t", op.start, " extends past schedule length");
    for (const BranchOp& b : s.branches)
      if (b.time >= s.length) issue("branch past schedule length");
  }
};

}  // namespace

std::vector<std::string> validateSchedule(const Schedule& sched,
                                          const Cdfg& graph,
                                          const Composition& comp) {
  Checker checker{sched, graph, comp, {}, {}};
  checker.run();
  return std::move(checker.issues);
}

void checkSchedule(const Schedule& sched, const Cdfg& graph,
                   const Composition& comp) {
  const auto issues = validateSchedule(sched, graph, comp);
  if (issues.empty()) return;
  std::string msg = "schedule validation failed:";
  for (const std::string& s : issues) msg += "\n  " + s;
  throw Error(msg);
}

}  // namespace cgra
