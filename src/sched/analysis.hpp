// Schedule analysis: utilization statistics, a textual Gantt rendering, and
// minimum-initiation-interval (MII) bounds per loop.
//
// The MII analysis is the groundwork for the paper's future work ("we want
// to improve the scheduler to employ modulo scheduling", §VII): for every
// loop it computes the classic lower bounds
//  * ResMII — resource-constrained: for each resource class (ALU issue
//    slots, multiplier-capable PEs for IMUL, DMA ports for memory ops, the
//    C-Box's one-status-per-cycle port) the per-iteration demand divided by
//    the available capacity;
//  * RecMII — recurrence-constrained: the longest latency of a dependency
//    chain feeding a loop-carried variable write (distance 1 in this IR:
//    every loop-carried value flows through a variable's home register);
// and compares max(ResMII, RecMII) with the achieved interval length of the
// list schedule — the headroom modulo scheduling could reclaim.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace cgra {

/// Per-PE occupancy statistics.
struct PEUtilization {
  PEId pe = 0;
  unsigned busyCycles = 0;    ///< cycles with an op in flight
  unsigned opsIssued = 0;
  unsigned copsIssued = 0;    ///< scheduler-inserted MOVE/CONST
  double utilization = 0.0;   ///< busyCycles / schedule length
};

/// Whole-schedule statistics.
struct ScheduleAnalysis {
  std::vector<PEUtilization> perPE;
  double avgUtilization = 0.0;
  unsigned peakParallelism = 0;  ///< max ops in flight in one cycle
  unsigned cboxBusyCycles = 0;
  unsigned totalOps = 0;
  unsigned insertedOps = 0;
};

ScheduleAnalysis analyzeSchedule(const Schedule& sched,
                                 const Composition& comp);

/// Text Gantt chart: one row per PE, one column per context. `.` idle,
/// lowercase letter = op class (a=alu, c=const/move, m=mul, d=dma, ?=cmp),
/// uppercase marks predicated commits; C-Box and branch rows appended.
std::string ganttChart(const Schedule& sched, const Composition& comp);

/// MII bounds for one loop.
struct LoopMii {
  LoopId loop = kRootLoop;
  double resMii = 0.0;
  double recMii = 0.0;
  unsigned achievedInterval = 0;  ///< list-schedule interval length
  double mii() const { return std::max(resMii, recMii); }
  double headroom() const {
    return mii() > 0 ? achievedInterval / mii() : 0.0;
  }
};

/// Computes bounds for every loop of the graph against a schedule on `comp`.
std::vector<LoopMii> computeMiiBounds(const Cdfg& graph,
                                      const Schedule& sched,
                                      const Composition& comp);

}  // namespace cgra
