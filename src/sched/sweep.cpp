#include "sched/sweep.hpp"

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "arch/arch_model.hpp"
#include "sched/job_key.hpp"
#include "support/thread_pool.hpp"

namespace cgra {

namespace {

SweepJobResult runJob(const SweepJob& job, bool keepSchedule,
                      const TraceOptions& trace) {
  SweepJobResult out;
  out.label = !job.label.empty() ? job.label
                                 : (job.comp ? job.comp->name() : "?");
  try {
    CGRA_ASSERT(job.comp != nullptr && job.graph != nullptr);
    // The Scheduler resolves its composition's memoized ArchModel — built
    // once in the serial warm-up below, so this never rebuilds tables.
    const Scheduler scheduler(*job.comp, job.options);
    ScheduleRequest request(*job.graph);
    request.options = job.options;
    request.trace = trace;
    ScheduleReport report = scheduler.schedule(request);
    out.ok = report.ok;
    out.failure = std::move(report.failure);
    out.error = out.failure.message;
    out.stats = report.stats;
    out.metrics = report.metrics;
    out.trace = std::move(report.trace);
    if (report.ok) {
      out.fingerprint = report.schedule.fingerprint();
      out.staticUtilization =
          computeScheduleQuality(report.schedule, *job.comp, &report.stats)
              .staticUtilization;
      if (keepSchedule) out.schedule = std::move(report.schedule);
    }
  } catch (const std::exception& e) {
    // Programmer errors (malformed graphs, violated invariants) still land
    // here so one bad job cannot abort a long sweep; they are tallied as
    // Internal rather than a kernel-capacity mismatch.
    out.ok = false;
    out.failure.reason = FailureReason::Internal;
    out.failure.message = e.what();
    out.error = out.failure.message;
  }
  return out;
}

/// Turns a job label into a safe filename component ("adpcm@mesh 9" ->
/// "adpcm_mesh_9"): portable across filesystems and shell-quoting-free.
std::string sanitizeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    out += keep ? c : '_';
  }
  if (out.empty()) out = "job";
  return out;
}

}  // namespace

SweepReport runSweep(const std::vector<SweepJob>& jobs,
                     const SweepOptions& options) {
  const auto wallStart = std::chrono::steady_clock::now();

  SweepReport report;
  report.threadsUsed =
      options.threads == 0 ? ThreadPool::defaultThreads() : options.threads;
  report.results.resize(jobs.size());

  TraceOptions trace = options.trace;
  if (!options.traceDir.empty()) trace.enabled = true;

  // Warm the ArchModel memo serially: one immutable analysis bundle per
  // distinct composition, shared read-only by every scheduler instance.
  // Jobs then only read shared_ptrs — no locking on the hot path.
  {
    const auto buildStart = std::chrono::steady_clock::now();
    const std::uint64_t buildsBefore = ArchModel::buildsPerformed();
    std::set<const ArchModel*> distinctModels;
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (jobs[i].comp != nullptr)
        distinctModels.insert(ArchModel::get(*jobs[i].comp).get());
    report.routingCacheEntries = distinctModels.size();
    report.archModelBuilds =
        static_cast<std::size_t>(ArchModel::buildsPerformed() - buildsBefore);
    report.archModelBuildMs = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - buildStart)
                                  .count();
  }

  // In-sweep dedup: the scheduler is a pure function of (composition,
  // graph, options), so jobs with equal content keys produce bit-identical
  // results — schedule each distinct key once and fan the result out.
  // Composition digests are memoized on the ArchModel and CDFG digests per
  // graph instance below, so an N-comp × M-kernel matrix hashes each
  // composition JSON and each kernel graph once — not once per job (the
  // per-job hashCdfg was the single hottest sweep-engine function).
  std::vector<std::string> keys(jobs.size());
  std::vector<std::size_t> representative(jobs.size());
  std::vector<std::size_t> uniqueJobs;
  {
    std::unordered_map<const Cdfg*, std::string> graphDigests;
    std::unordered_map<std::string, std::size_t> firstByKey;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].comp == nullptr || jobs[i].graph == nullptr) {
        // Malformed job: never dedup — runJob records the failure per job.
        representative[i] = i;
        uniqueJobs.push_back(i);
        continue;
      }
      std::string& graphDigest = graphDigests[jobs[i].graph];
      if (graphDigest.empty()) graphDigest = cdfgDigest(*jobs[i].graph);
      keys[i] = scheduleJobKeyWithDigests(
          ArchModel::get(*jobs[i].comp)->digest(), graphDigest,
          jobs[i].options);
      const auto [keyIt, inserted] = firstByKey.emplace(keys[i], i);
      representative[i] = keyIt->second;
      if (inserted) uniqueJobs.push_back(i);
    }
  }

  parallelFor(uniqueJobs.size(), report.threadsUsed, [&](std::size_t u) {
    const std::size_t i = uniqueJobs[u];
    report.results[i] = runJob(jobs[i], options.keepSchedules, trace);
    report.results[i].cacheKey = keys[i];
  });

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (representative[i] == i) continue;
    report.results[i] = report.results[representative[i]];
    report.results[i].label = !jobs[i].label.empty()
                                  ? jobs[i].label
                                  : jobs[i].comp->name();
    report.results[i].fromCache = true;
    ++report.dedupedJobs;
  }

  report.aggregate.runs = 0;
  double utilSum = 0.0;
  std::size_t okCount = 0;
  for (const SweepJobResult& r : report.results) {
    if (r.ok) {
      report.aggregate.merge(r.metrics);
      utilSum += r.staticUtilization;
      ++okCount;
    } else {
      ++report.failures;
      report.failuresByReason[static_cast<std::size_t>(r.failure.reason)]++;
    }
  }
  if (okCount > 0) report.meanStaticUtilization = utilSum / okCount;

  // Trace files are written serially after the parallel section: job order
  // (and content — logical timestamps only) is deterministic, so the set of
  // files is byte-identical for any thread count.
  if (!options.traceDir.empty()) {
    std::filesystem::create_directories(options.traceDir);
    for (const SweepJobResult& r : report.results) {
      if (r.trace == nullptr) continue;
      const std::filesystem::path path =
          std::filesystem::path(options.traceDir) /
          (sanitizeLabel(r.label) + ".trace.json");
      json::writeFile(path.string(), r.trace->toChromeJson(r.label));
    }
  }

  report.wallTimeMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
  return report;
}

json::Value SweepReport::toJson(bool includeVolatile) const {
  json::Object o;
  if (includeVolatile) o["threads"] = static_cast<std::int64_t>(threadsUsed);
  o["jobsTotal"] = static_cast<std::int64_t>(results.size());
  o["jobsFailed"] = static_cast<std::int64_t>(failures);
  {
    json::Object byReason;
    for (std::size_t i = 0; i < failuresByReason.size(); ++i)
      if (failuresByReason[i] > 0)
        byReason[failureReasonName(static_cast<FailureReason>(i))] =
            static_cast<std::int64_t>(failuresByReason[i]);
    o["failuresByReason"] = std::move(byReason);
  }
  o["routingCacheEntries"] = static_cast<std::int64_t>(routingCacheEntries);
  if (includeVolatile) {
    // Builds actually performed vary with memo warmth (an earlier sweep on
    // the same Composition instance leaves the model built), so they stay
    // out of the stable form like every other run-dependent counter.
    o["archModelBuilds"] = static_cast<std::int64_t>(archModelBuilds);
    o["archModelBuildMs"] = archModelBuildMs;
  }
  o["dedupedJobs"] = static_cast<std::int64_t>(dedupedJobs);
  o["meanStaticUtilization"] = meanStaticUtilization;
  if (includeVolatile) o["wallTimeMs"] = wallTimeMs;
  if (includeVolatile && cacheEnabled) {
    // Persistent-cache traffic is inherently run-dependent (a warm run hits
    // where a cold run missed), so it never appears in the stable form.
    json::Object c;
    c["hits"] = static_cast<std::int64_t>(cacheHits);
    c["misses"] = static_cast<std::int64_t>(cacheMisses);
    c["evictions"] = static_cast<std::int64_t>(cacheEvictions);
    o["cache"] = std::move(c);
  }
  o["aggregate"] = aggregate.toJson(includeVolatile);
  json::Array jobs;
  for (const SweepJobResult& r : results) {
    json::Object j;
    j["label"] = r.label;
    j["ok"] = r.ok;
    if (r.ok) {
      j["contexts"] = static_cast<std::int64_t>(r.stats.contextsUsed);
      j["fingerprint"] = std::to_string(r.fingerprint);  // 64-bit safe
      j["staticUtilization"] = r.staticUtilization;
      j["metrics"] = r.metrics.toJson(includeVolatile);
    } else {
      j["error"] = r.error;
      j["failureReason"] = failureReasonName(r.failure.reason);
    }
    jobs.emplace_back(std::move(j));
  }
  o["jobs"] = std::move(jobs);
  return json::sortKeys(json::Value(std::move(o)));
}

}  // namespace cgra
