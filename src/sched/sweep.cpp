#include "sched/sweep.hpp"

#include <chrono>
#include <memory>

#include "sched/routing_cache.hpp"
#include "support/thread_pool.hpp"

namespace cgra {

namespace {

SweepJobResult runJob(const SweepJob& job,
                      const std::shared_ptr<const RoutingInfo>& routing,
                      bool keepSchedule) {
  SweepJobResult out;
  out.label = !job.label.empty() ? job.label
                                 : (job.comp ? job.comp->name() : "?");
  try {
    CGRA_ASSERT(job.comp != nullptr && job.graph != nullptr);
    const Scheduler scheduler(*job.comp, job.options);
    SchedulingResult result = scheduler.schedule(*job.graph, routing.get());
    out.ok = true;
    out.stats = result.stats;
    out.metrics = result.metrics;
    out.fingerprint = result.schedule.fingerprint();
    if (keepSchedule) out.schedule = std::move(result.schedule);
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

}  // namespace

SweepReport runSweep(const std::vector<SweepJob>& jobs,
                     const SweepOptions& options) {
  const auto wallStart = std::chrono::steady_clock::now();

  SweepReport report;
  report.threadsUsed =
      options.threads == 0 ? ThreadPool::defaultThreads() : options.threads;
  report.results.resize(jobs.size());

  // Warm the routing cache serially: one immutable table set per distinct
  // composition, shared read-only by every scheduler instance. Jobs then
  // only read shared_ptrs — no locking on the hot path.
  RoutingCache cache;
  std::vector<std::shared_ptr<const RoutingInfo>> routing(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (jobs[i].comp != nullptr) routing[i] = cache.lookup(*jobs[i].comp);
  report.routingCacheEntries = cache.size();

  parallelFor(jobs.size(), report.threadsUsed, [&](std::size_t i) {
    report.results[i] = runJob(jobs[i], routing[i], options.keepSchedules);
  });

  report.aggregate.runs = 0;
  for (const SweepJobResult& r : report.results) {
    if (r.ok)
      report.aggregate.merge(r.metrics);
    else
      ++report.failures;
  }

  report.wallTimeMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
  return report;
}

json::Value SweepReport::toJson() const {
  json::Object o;
  o["threads"] = static_cast<std::int64_t>(threadsUsed);
  o["jobsTotal"] = static_cast<std::int64_t>(results.size());
  o["jobsFailed"] = static_cast<std::int64_t>(failures);
  o["routingCacheEntries"] = static_cast<std::int64_t>(routingCacheEntries);
  o["wallTimeMs"] = wallTimeMs;
  o["aggregate"] = aggregate.toJson();
  json::Array jobs;
  for (const SweepJobResult& r : results) {
    json::Object j;
    j["label"] = r.label;
    j["ok"] = r.ok;
    if (r.ok) {
      j["contexts"] = static_cast<std::int64_t>(r.stats.contextsUsed);
      j["fingerprint"] = std::to_string(r.fingerprint);  // 64-bit safe
      j["metrics"] = r.metrics.toJson();
    } else {
      j["error"] = r.error;
    }
    jobs.emplace_back(std::move(j));
  }
  o["jobs"] = std::move(jobs);
  return o;
}

}  // namespace cgra
