// Host heap memory shared between the baseline processor, the reference
// interpreter and the CGRA's DMA ports.
//
// In the paper's system the heap (arrays and object fields) lives in the
// AMIDAR processor and the CGRA reaches it via DMA using handle + offset
// pairs (§III, §IV-A.1). We model the heap as a table of integer arrays
// addressed by handle; bounds are checked on every access so an
// *unpredicated* speculative access with a garbage index is caught in tests
// (predicated-off DMA ops never reach the heap — that is exactly why the
// paper always predicates them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace cgra {

/// Handle of a heap array (index into the heap's array table).
using Handle = std::int32_t;

/// Heap of integer arrays addressed by handle.
class HostMemory {
public:
  /// Allocates an array of `size` zeros; returns its handle.
  Handle alloc(std::size_t size);
  /// Allocates an array with the given contents.
  Handle alloc(std::vector<std::int32_t> contents);

  std::int32_t load(Handle h, std::int32_t index) const;
  void store(Handle h, std::int32_t index, std::int32_t value);

  std::size_t size(Handle h) const;
  const std::vector<std::int32_t>& array(Handle h) const;
  std::vector<std::int32_t>& array(Handle h);

  std::size_t numArrays() const { return arrays_.size(); }

  /// Number of load/store calls since construction (DMA traffic statistics).
  std::uint64_t loadCount() const { return loads_; }
  std::uint64_t storeCount() const { return stores_; }

  bool operator==(const HostMemory& other) const {
    return arrays_ == other.arrays_;
  }

private:
  const std::vector<std::int32_t>& checked(Handle h) const;

  std::vector<std::vector<std::int32_t>> arrays_;
  mutable std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace cgra
