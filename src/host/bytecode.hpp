// Stack bytecode for the AMIDAR-like baseline processor.
//
// The paper's host is an AMIDAR processor executing Java bytecode directly
// (§III): each bytecode is broken into tokens that are distributed to
// functional units. We model the instruction set subset the evaluated
// kernels need (integer stack ops, locals, array access, compare-and-branch)
// — close to the corresponding Java bytecodes — so the KIR frontend can
// lower the *same kernel* both to the CGRA scheduler (via the CDFG) and to
// this baseline, making the speedup comparison of Table II meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/memory.hpp"

namespace cgra {

/// Baseline bytecode opcodes (names follow the JVM where applicable).
enum class Bc : std::uint8_t {
  ICONST,   ///< push immediate
  ILOAD,    ///< push locals[a]
  ISTORE,   ///< locals[a] = pop
  IADD,
  ISUB,
  IMUL,
  INEG,
  IAND,
  IOR,
  IXOR,
  ISHL,
  ISHR,
  IUSHR,
  IALOAD,   ///< index = pop, handle = pop; push heap[handle][index]
  IASTORE,  ///< value = pop, index = pop, handle = pop
  GOTO,     ///< pc = a
  IF_ICMPEQ,  ///< b = pop, a' = pop; branch to a when a' == b
  IF_ICMPNE,
  IF_ICMPLT,
  IF_ICMPGE,
  IF_ICMPGT,
  IF_ICMPLE,
  /// Patched instruction (paper Fig. 1: "Patch original bytecode sequence"):
  /// forwards execution to the CGRA accelerator identified by `arg`. The
  /// machine delegates to a registered AcceleratorHook; the hook transfers
  /// live-ins, runs the schedule, writes live-outs back and returns the
  /// invocation's cycle cost.
  INVOKE_CGRA,
  HALT,
};

/// Instruction: opcode plus one immediate (constant / local index / target).
struct BcInstr {
  Bc op = Bc::HALT;
  std::int32_t arg = 0;
};

/// A compiled bytecode function.
struct BytecodeFunction {
  std::string name;
  unsigned numLocals = 0;
  std::vector<BcInstr> code;
};

/// Human-readable opcode name.
const char* bcName(Bc op);

/// Disassembles to one instruction per line.
std::string disassemble(const BytecodeFunction& fn);

}  // namespace cgra
