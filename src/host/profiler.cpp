#include "host/profiler.hpp"

#include <algorithm>

#include "arch/operation.hpp"
#include "support/assert.hpp"

namespace cgra {

void Profiler::profile(const BytecodeFunction& fn,
                       std::vector<std::int32_t> initialLocals,
                       HostMemory& heap, std::uint64_t maxBytecodes) {
  // A lean re-implementation of the interpreter loop: the TokenMachine does
  // not expose per-branch hooks, and the profiler intentionally observes
  // *architectural* behaviour (taken branches) rather than timing.
  std::vector<std::int32_t> locals = std::move(initialLocals);
  locals.resize(fn.numLocals, 0);
  std::vector<std::int32_t> stack;
  auto pop = [&]() -> std::int32_t {
    CGRA_ASSERT(!stack.empty());
    const std::int32_t v = stack.back();
    stack.pop_back();
    return v;
  };

  std::uint64_t executed = 0;
  std::size_t pc = 0;
  while (pc < fn.code.size()) {
    if (++executed > maxBytecodes)
      throw Error("profiler: bytecode budget exceeded in " + fn.name);
    const BcInstr in = fn.code[pc];
    const std::size_t curPc = pc;
    ++pc;
    switch (in.op) {
      case Bc::ICONST: stack.push_back(in.arg); break;
      case Bc::ILOAD: stack.push_back(locals[static_cast<unsigned>(in.arg)]); break;
      case Bc::ISTORE: locals[static_cast<unsigned>(in.arg)] = pop(); break;
      case Bc::INEG: stack.push_back(evalArith(Op::INEG, pop(), 0)); break;
      case Bc::IADD:
      case Bc::ISUB:
      case Bc::IMUL:
      case Bc::IAND:
      case Bc::IOR:
      case Bc::IXOR:
      case Bc::ISHL:
      case Bc::ISHR:
      case Bc::IUSHR: {
        const std::int32_t b = pop();
        const std::int32_t a = pop();
        Op op = Op::IADD;
        switch (in.op) {
          case Bc::ISUB: op = Op::ISUB; break;
          case Bc::IMUL: op = Op::IMUL; break;
          case Bc::IAND: op = Op::IAND; break;
          case Bc::IOR: op = Op::IOR; break;
          case Bc::IXOR: op = Op::IXOR; break;
          case Bc::ISHL: op = Op::ISHL; break;
          case Bc::ISHR: op = Op::ISHR; break;
          case Bc::IUSHR: op = Op::IUSHR; break;
          default: break;
        }
        stack.push_back(evalArith(op, a, b));
        break;
      }
      case Bc::IALOAD: {
        const std::int32_t index = pop();
        const std::int32_t handle = pop();
        stack.push_back(heap.load(handle, index));
        break;
      }
      case Bc::IASTORE: {
        const std::int32_t value = pop();
        const std::int32_t index = pop();
        const std::int32_t handle = pop();
        heap.store(handle, index, value);
        break;
      }
      case Bc::GOTO:
        pc = static_cast<std::size_t>(in.arg);
        if (pc <= curPc) ++counts_[{pc, curPc}];
        break;
      case Bc::IF_ICMPEQ:
      case Bc::IF_ICMPNE:
      case Bc::IF_ICMPLT:
      case Bc::IF_ICMPGE:
      case Bc::IF_ICMPGT:
      case Bc::IF_ICMPLE: {
        const std::int32_t b = pop();
        const std::int32_t a = pop();
        Op op = Op::IFEQ;
        switch (in.op) {
          case Bc::IF_ICMPNE: op = Op::IFNE; break;
          case Bc::IF_ICMPLT: op = Op::IFLT; break;
          case Bc::IF_ICMPGE: op = Op::IFGE; break;
          case Bc::IF_ICMPGT: op = Op::IFGT; break;
          case Bc::IF_ICMPLE: op = Op::IFLE; break;
          default: break;
        }
        if (evalCompare(op, a, b)) {
          pc = static_cast<std::size_t>(in.arg);
          if (pc <= curPc) ++counts_[{pc, curPc}];
        }
        break;
      }
      case Bc::HALT: return;
      case Bc::INVOKE_CGRA:
        throw Error("profiler: cannot profile patched code in " + fn.name);
    }
  }
  throw Error("profiler: fell off code in " + fn.name);
}

std::vector<HotRegion> Profiler::hotRegions() const {
  std::vector<HotRegion> out;
  for (const auto& [key, count] : counts_)
    if (count >= threshold_)
      out.push_back(HotRegion{key.first, key.second, count});
  std::sort(out.begin(), out.end(), [](const HotRegion& a, const HotRegion& b) {
    return a.executions > b.executions;
  });
  return out;
}

}  // namespace cgra
