#include "host/memory.hpp"

namespace cgra {

Handle HostMemory::alloc(std::size_t size) {
  arrays_.emplace_back(size, 0);
  return static_cast<Handle>(arrays_.size() - 1);
}

Handle HostMemory::alloc(std::vector<std::int32_t> contents) {
  arrays_.push_back(std::move(contents));
  return static_cast<Handle>(arrays_.size() - 1);
}

const std::vector<std::int32_t>& HostMemory::checked(Handle h) const {
  if (h < 0 || static_cast<std::size_t>(h) >= arrays_.size())
    throw Error("heap access with invalid handle " + std::to_string(h));
  return arrays_[static_cast<std::size_t>(h)];
}

std::int32_t HostMemory::load(Handle h, std::int32_t index) const {
  const auto& arr = checked(h);
  if (index < 0 || static_cast<std::size_t>(index) >= arr.size())
    throw Error("heap load out of bounds: handle " + std::to_string(h) +
                ", index " + std::to_string(index) + ", size " +
                std::to_string(arr.size()));
  ++loads_;
  return arr[static_cast<std::size_t>(index)];
}

void HostMemory::store(Handle h, std::int32_t index, std::int32_t value) {
  auto& arr = const_cast<std::vector<std::int32_t>&>(checked(h));
  if (index < 0 || static_cast<std::size_t>(index) >= arr.size())
    throw Error("heap store out of bounds: handle " + std::to_string(h) +
                ", index " + std::to_string(index) + ", size " +
                std::to_string(arr.size()));
  ++stores_;
  arr[static_cast<std::size_t>(index)] = value;
}

std::size_t HostMemory::size(Handle h) const { return checked(h).size(); }

const std::vector<std::int32_t>& HostMemory::array(Handle h) const {
  return checked(h);
}

std::vector<std::int32_t>& HostMemory::array(Handle h) {
  return const_cast<std::vector<std::int32_t>&>(checked(h));
}

}  // namespace cgra
