// AMIDAR-like baseline executor with a token-dispatch cycle cost model.
//
// AMIDAR breaks each bytecode into tokens carrying operation, data-version
// tag and destination, distributed to functional units (§III). We do not
// model the token network structurally; we charge each bytecode the cycles
// its token sequence occupies the machine (dispatch + FU latency +
// writeback), with constants chosen so the ADPCM decoder lands near the
// paper's 926 k-cycle baseline. DESIGN.md records this substitution; the
// speedup comparison only needs the baseline's *scale*, which a
// few-cycles-per-bytecode sequential processor captures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "host/bytecode.hpp"

namespace cgra {

/// Callback invoked for INVOKE_CGRA instructions: receives the accelerator
/// id, the live local-variable frame and the heap; performs the invocation
/// (live-in transfer, run, live-out write-back) and returns its cycle cost.
/// The host module stays independent of the CGRA implementation — the
/// simulator side registers this hook (paper §III: "the combination of the
/// scheduler and the CGRA can operate as a hardware accelerator for any
/// processor. Only the data exchange between host and CGRA have to be
/// adapted").
using AcceleratorHook = std::function<std::uint64_t(
    std::int32_t id, std::vector<std::int32_t>& locals, HostMemory& heap)>;

/// Per-bytecode-class cycle costs of the token machine.
struct TokenCostModel {
  unsigned constOp = 2;    ///< ICONST: decode + operand dispatch
  unsigned localOp = 3;    ///< ILOAD/ISTORE: local-variable FU round trip
  unsigned aluOp = 4;      ///< arithmetic/logic: dispatch + ALU + writeback
  unsigned mulOp = 6;      ///< IMUL: multi-cycle ALU
  unsigned branchOp = 5;   ///< compare + branch-selection round trip
  unsigned arrayOp = 9;    ///< heap FU access with handle resolution
  unsigned gotoOp = 3;
};

/// Result of one baseline run.
struct TokenRunResult {
  std::vector<std::int32_t> locals;  ///< final local variable values
  std::uint64_t cycles = 0;
  std::uint64_t bytecodes = 0;
};

/// Sequential baseline machine executing BytecodeFunction against a heap.
class TokenMachine {
public:
  explicit TokenMachine(TokenCostModel costs = {}) : costs_(costs) {}

  /// Runs to HALT; throws cgra::Error when `maxBytecodes` is exceeded
  /// (runaway loop), on stack/pc corruption, or when an INVOKE_CGRA is hit
  /// without a registered accelerator hook.
  TokenRunResult run(const BytecodeFunction& fn,
                     std::vector<std::int32_t> initialLocals, HostMemory& heap,
                     std::uint64_t maxBytecodes = 100'000'000,
                     const AcceleratorHook& accelerator = {}) const;

  const TokenCostModel& costs() const { return costs_; }

private:
  TokenCostModel costs_;
};

}  // namespace cgra
