#include "host/token_machine.hpp"

#include "arch/operation.hpp"
#include "support/assert.hpp"

namespace cgra {

TokenRunResult TokenMachine::run(const BytecodeFunction& fn,
                                 std::vector<std::int32_t> initialLocals,
                                 HostMemory& heap, std::uint64_t maxBytecodes,
                                 const AcceleratorHook& accelerator) const {
  TokenRunResult result;
  result.locals = std::move(initialLocals);
  result.locals.resize(fn.numLocals, 0);

  std::vector<std::int32_t> stack;
  stack.reserve(32);
  auto pop = [&]() -> std::int32_t {
    if (stack.empty()) throw Error("baseline: stack underflow in " + fn.name);
    const std::int32_t v = stack.back();
    stack.pop_back();
    return v;
  };

  std::size_t pc = 0;
  while (true) {
    if (pc >= fn.code.size())
      throw Error("baseline: pc out of range in " + fn.name);
    if (++result.bytecodes > maxBytecodes)
      throw Error("baseline: bytecode budget exceeded in " + fn.name);
    const BcInstr in = fn.code[pc];
    ++pc;
    switch (in.op) {
      case Bc::ICONST:
        stack.push_back(in.arg);
        result.cycles += costs_.constOp;
        break;
      case Bc::ILOAD:
        CGRA_ASSERT(static_cast<unsigned>(in.arg) < result.locals.size());
        stack.push_back(result.locals[static_cast<unsigned>(in.arg)]);
        result.cycles += costs_.localOp;
        break;
      case Bc::ISTORE:
        CGRA_ASSERT(static_cast<unsigned>(in.arg) < result.locals.size());
        result.locals[static_cast<unsigned>(in.arg)] = pop();
        result.cycles += costs_.localOp;
        break;
      case Bc::IADD:
      case Bc::ISUB:
      case Bc::IAND:
      case Bc::IOR:
      case Bc::IXOR:
      case Bc::ISHL:
      case Bc::ISHR:
      case Bc::IUSHR: {
        const std::int32_t b = pop();
        const std::int32_t a = pop();
        Op op;
        switch (in.op) {
          case Bc::IADD: op = Op::IADD; break;
          case Bc::ISUB: op = Op::ISUB; break;
          case Bc::IAND: op = Op::IAND; break;
          case Bc::IOR: op = Op::IOR; break;
          case Bc::IXOR: op = Op::IXOR; break;
          case Bc::ISHL: op = Op::ISHL; break;
          case Bc::ISHR: op = Op::ISHR; break;
          default: op = Op::IUSHR; break;
        }
        stack.push_back(evalArith(op, a, b));
        result.cycles += costs_.aluOp;
        break;
      }
      case Bc::IMUL: {
        const std::int32_t b = pop();
        const std::int32_t a = pop();
        stack.push_back(evalArith(Op::IMUL, a, b));
        result.cycles += costs_.mulOp;
        break;
      }
      case Bc::INEG:
        stack.push_back(evalArith(Op::INEG, pop(), 0));
        result.cycles += costs_.aluOp;
        break;
      case Bc::IALOAD: {
        const std::int32_t index = pop();
        const std::int32_t handle = pop();
        stack.push_back(heap.load(handle, index));
        result.cycles += costs_.arrayOp;
        break;
      }
      case Bc::IASTORE: {
        const std::int32_t value = pop();
        const std::int32_t index = pop();
        const std::int32_t handle = pop();
        heap.store(handle, index, value);
        result.cycles += costs_.arrayOp;
        break;
      }
      case Bc::GOTO:
        pc = static_cast<std::size_t>(in.arg);
        result.cycles += costs_.gotoOp;
        break;
      case Bc::INVOKE_CGRA:
        if (!accelerator)
          throw Error("baseline: INVOKE_CGRA without accelerator hook in " +
                      fn.name);
        // The AMIDAR processor is idle during the run (§III); the hook's
        // cycle count covers transfers and execution.
        result.cycles += accelerator(in.arg, result.locals, heap);
        break;
      case Bc::IF_ICMPEQ:
      case Bc::IF_ICMPNE:
      case Bc::IF_ICMPLT:
      case Bc::IF_ICMPGE:
      case Bc::IF_ICMPGT:
      case Bc::IF_ICMPLE: {
        const std::int32_t b = pop();
        const std::int32_t a = pop();
        Op op;
        switch (in.op) {
          case Bc::IF_ICMPEQ: op = Op::IFEQ; break;
          case Bc::IF_ICMPNE: op = Op::IFNE; break;
          case Bc::IF_ICMPLT: op = Op::IFLT; break;
          case Bc::IF_ICMPGE: op = Op::IFGE; break;
          case Bc::IF_ICMPGT: op = Op::IFGT; break;
          default: op = Op::IFLE; break;
        }
        if (evalCompare(op, a, b)) pc = static_cast<std::size_t>(in.arg);
        result.cycles += costs_.branchOp;
        break;
      }
      case Bc::HALT:
        if (!stack.empty())
          throw Error("baseline: stack not empty at HALT in " + fn.name);
        return result;
    }
  }
}

}  // namespace cgra
