#include "host/bytecode.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace cgra {

const char* bcName(Bc op) {
  switch (op) {
    case Bc::ICONST: return "iconst";
    case Bc::ILOAD: return "iload";
    case Bc::ISTORE: return "istore";
    case Bc::IADD: return "iadd";
    case Bc::ISUB: return "isub";
    case Bc::IMUL: return "imul";
    case Bc::INEG: return "ineg";
    case Bc::IAND: return "iand";
    case Bc::IOR: return "ior";
    case Bc::IXOR: return "ixor";
    case Bc::ISHL: return "ishl";
    case Bc::ISHR: return "ishr";
    case Bc::IUSHR: return "iushr";
    case Bc::IALOAD: return "iaload";
    case Bc::IASTORE: return "iastore";
    case Bc::GOTO: return "goto";
    case Bc::INVOKE_CGRA: return "invoke_cgra";
    case Bc::IF_ICMPEQ: return "if_icmpeq";
    case Bc::IF_ICMPNE: return "if_icmpne";
    case Bc::IF_ICMPLT: return "if_icmplt";
    case Bc::IF_ICMPGE: return "if_icmpge";
    case Bc::IF_ICMPGT: return "if_icmpgt";
    case Bc::IF_ICMPLE: return "if_icmple";
    case Bc::HALT: return "halt";
  }
  CGRA_UNREACHABLE("bad opcode");
}

namespace {

bool hasArg(Bc op) {
  switch (op) {
    case Bc::ICONST:
    case Bc::ILOAD:
    case Bc::ISTORE:
    case Bc::GOTO:
    case Bc::INVOKE_CGRA:
    case Bc::IF_ICMPEQ:
    case Bc::IF_ICMPNE:
    case Bc::IF_ICMPLT:
    case Bc::IF_ICMPGE:
    case Bc::IF_ICMPGT:
    case Bc::IF_ICMPLE:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string disassemble(const BytecodeFunction& fn) {
  std::ostringstream os;
  os << fn.name << " (" << fn.numLocals << " locals, " << fn.code.size()
     << " instructions)\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    const BcInstr& in = fn.code[pc];
    os << "  " << pc << ": " << bcName(in.op);
    if (hasArg(in.op)) os << ' ' << in.arg;
    os << '\n';
  }
  return os.str();
}

}  // namespace cgra
