// Hardware-profiler analog (paper §III, ref [17]): AMIDAR detects bytecode
// sequences whose execution count exceeds a threshold; those sequences are
// then synthesized onto the CGRA. We profile backward branches (loop
// headers) of a bytecode function and report the hottest candidate region,
// which is what drives the synthesis decision in the paper's Fig. 1 flow.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "host/bytecode.hpp"

namespace cgra {

/// A candidate acceleration region: a pc range executed repeatedly.
struct HotRegion {
  std::size_t startPc = 0;  ///< branch target (loop header)
  std::size_t endPc = 0;    ///< backward branch instruction
  std::uint64_t executions = 0;
};

/// Execution-counting profiler over the baseline machine's traces.
class Profiler {
public:
  /// Threshold above which a region becomes an acceleration candidate.
  explicit Profiler(std::uint64_t threshold = 1000) : threshold_(threshold) {}

  /// Runs `fn` on a *copy* of the interpreter loop while counting backward
  /// branches; heap effects are applied to `heap` exactly as a normal run.
  void profile(const BytecodeFunction& fn,
               std::vector<std::int32_t> initialLocals, HostMemory& heap,
               std::uint64_t maxBytecodes = 100'000'000);

  /// Regions exceeding the threshold, hottest first.
  std::vector<HotRegion> hotRegions() const;

  /// All backward-branch counters (target pc, branch pc) → count.
  const std::map<std::pair<std::size_t, std::size_t>, std::uint64_t>&
  branchCounts() const {
    return counts_;
  }

private:
  std::uint64_t threshold_;
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> counts_;
};

}  // namespace cgra
