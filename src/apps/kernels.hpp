// Bundled application kernels written in KIR.
//
// The paper's evaluation kernel is an ADPCM decoder (§VI-A): "a large while
// loop [containing] several nested loops. Some of them are executed under
// certain conditions, dependent on the input data, while some nested loops
// contain conditional code in the loop body." Our decoder implements the
// IMA ADPCM algorithm with exactly that control-flow shape: the per-sample
// while loop, a data-dependent nested bit-scan loop guarded by a condition,
// if/else ladders for clamping and sign handling, and table lookups plus
// output writes via DMA.
//
// The remaining kernels exercise individual scheduler features and serve as
// examples, tests and secondary benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/memory.hpp"
#include "kir/kir.hpp"

namespace cgra::apps {

/// A ready-to-run kernel: function + initial locals + pre-filled heap.
struct Workload {
  std::string name;
  kir::Function fn;
  std::vector<std::int32_t> initialLocals;
  HostMemory heap;
};

/// IMA ADPCM decoder over `numSamples` packed 4-bit codes (paper workload;
/// the evaluation uses 416 samples).
Workload makeAdpcm(unsigned numSamples = 416, std::uint64_t seed = 1);

/// Stereo IMA ADPCM decoder: two independent channels interleaved per
/// iteration (one byte = left nibble + right nibble). Twice the
/// instruction-level parallelism of the mono decoder — the workload where
/// larger arrays pay off (extension study; see bench_stereo_scaling).
Workload makeAdpcmStereo(unsigned framesPerChannel = 208,
                         std::uint64_t seed = 1);

/// sum += a[i] * b[i] — single loop, multiplier pressure.
Workload makeDotProduct(unsigned n = 16, std::uint64_t seed = 2);

/// FIR filter y[i] = Σ h[k]·x[i+k] — two nested loops with DMA in the inner.
Workload makeFir(unsigned n = 12, unsigned taps = 4, std::uint64_t seed = 3);

/// Dense matrix multiply C = A·B — three nested loops.
Workload makeMatMul(unsigned dim = 4, std::uint64_t seed = 4);

/// Euclid's subtraction GCD — data-dependent loop with if/else body, no DMA.
Workload makeGcd(std::int32_t a = 546, std::int32_t b = 2394);

/// Bubble sort — nested loops with a conditional swap (predicated stores).
Workload makeBubbleSort(unsigned n = 8, std::uint64_t seed = 5);

/// Exponentially weighted moving average with saturation — if/else ladder
/// inside a loop, no nested loop.
Workload makeEwmaClip(unsigned n = 16, std::uint64_t seed = 6);

/// Counts values above a threshold, and for each hit runs a data-dependent
/// halving loop — a *conditionally executed* nested loop.
Workload makeConditionalHalving(unsigned n = 12, std::uint64_t seed = 7);

/// Sobel horizontal gradient magnitude over a 2D image (row-major) — doubly
/// nested loops with 6-point stencils and an absolute-value branch.
Workload makeSobel(unsigned width = 6, unsigned height = 5,
                   std::uint64_t seed = 8);

/// Bitwise CRC-32 (reflected, polynomial 0xEDB88320) over a byte buffer —
/// a nested fixed 8-iteration bit loop with a condition in the body.
Workload makeCrc32(unsigned n = 8, std::uint64_t seed = 9);

/// 8-bin histogram with read-modify-write DMA traffic on the bin array.
Workload makeHistogram(unsigned n = 16, std::uint64_t seed = 10);

/// All bundled workloads at test-friendly sizes.
std::vector<Workload> allWorkloads(std::uint64_t seed = 42);

/// Reference IMA ADPCM encoder used to produce meaningful decoder inputs
/// (host-side; the kernel under test is the decoder).
std::vector<std::uint8_t> adpcmEncode(const std::vector<std::int16_t>& pcm);

}  // namespace cgra::apps
