#include "apps/kernels.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace cgra::apps {

using kir::FunctionBuilder;
using kir::LocalId;
using kir::StmtId;

namespace {

/// IMA ADPCM tables (Intel/DVI reference).
const std::vector<std::int32_t> kIndexTable = {-1, -1, -1, -1, 2, 4, 6, 8,
                                               -1, -1, -1, -1, 2, 4, 6, 8};

const std::vector<std::int32_t> kStepsizeTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

}  // namespace

std::vector<std::uint8_t> adpcmEncode(const std::vector<std::int16_t>& pcm) {
  std::vector<std::uint8_t> out((pcm.size() + 1) / 2, 0);
  std::int32_t valpred = 0;
  std::int32_t index = 0;
  bool high = false;
  std::size_t bytePos = 0;
  for (std::int16_t sample : pcm) {
    const std::int32_t step = kStepsizeTable[static_cast<std::size_t>(index)];
    std::int32_t diff = sample - valpred;
    std::int32_t delta = 0;
    if (diff < 0) {
      delta = 8;
      diff = -diff;
    }
    std::int32_t vpdiff = step >> 3;
    std::int32_t stepLocal = step;
    for (int bit = 4; bit >= 1; bit >>= 1) {
      if (diff >= stepLocal) {
        delta |= bit;
        diff -= stepLocal;
        vpdiff += stepLocal;
      }
      stepLocal >>= 1;
    }
    if (delta & 8)
      valpred -= vpdiff;
    else
      valpred += vpdiff;
    valpred = std::min(32767, std::max(-32768, valpred));
    index += kIndexTable[static_cast<std::size_t>(delta)];
    index = std::min(88, std::max(0, index));
    if (!high) {
      out[bytePos] = static_cast<std::uint8_t>(delta & 0x0F);
    } else {
      out[bytePos] |= static_cast<std::uint8_t>((delta & 0x0F) << 4);
      ++bytePos;
    }
    high = !high;
  }
  return out;
}

Workload makeAdpcm(unsigned numSamples, std::uint64_t seed) {
  FunctionBuilder b("adpcm_decode");
  // Parameters (live-in).
  const LocalId inbuf = b.param("inbuf");
  const LocalId outbuf = b.param("outbuf");
  const LocalId indexTable = b.param("indexTable");
  const LocalId stepTable = b.param("stepsizeTable");
  const LocalId n = b.param("n");
  const LocalId valpred = b.param("valpred");
  const LocalId index = b.param("index");
  const LocalId gain = b.param("gain");
  // Working locals.
  const LocalId step = b.localVar("step");
  const LocalId bufferstep = b.localVar("bufferstep");
  const LocalId inputbuffer = b.localVar("inputbuffer");
  const LocalId i = b.localVar("i");
  const LocalId delta = b.localVar("delta");
  const LocalId sign = b.localVar("sign");
  const LocalId dmag = b.localVar("dmag");
  const LocalId vpdiff = b.localVar("vpdiff");
  const LocalId bit = b.localVar("bit");
  const LocalId sh = b.localVar("sh");

  // Inner bit-scan loop: executed only when the magnitude is non-zero
  // ("nested loops executed under certain conditions") and containing an if
  // in its body ("control flow in the loop body").
  const StmtId bitBody = b.block({
      b.ifElse(b.ne(b.band(b.use(dmag), b.use(bit)), b.cint(0)),
               b.assign(vpdiff, b.add(b.use(vpdiff),
                                      b.shr(b.use(step), b.use(sh))))),
      b.assign(bit, b.shr(b.use(bit), b.cint(1))),
      b.assign(sh, b.add(b.use(sh), b.cint(1))),
  });
  const StmtId bitLoop = b.whileLoop(b.ge(b.use(bit), b.cint(1)), bitBody);

  const StmtId body = b.block({
      // Unpack the next 4-bit code (alternating nibbles of each byte).
      b.ifElse(
          b.eq(b.use(bufferstep), b.cint(0)),
          b.block({
              b.assign(inputbuffer,
                       b.load(b.use(inbuf), b.shr(b.use(i), b.cint(1)))),
              b.assign(delta, b.band(b.use(inputbuffer), b.cint(15))),
              b.assign(bufferstep, b.cint(1)),
          }),
          b.block({
              b.assign(delta,
                       b.band(b.shr(b.use(inputbuffer), b.cint(4)),
                              b.cint(15))),
              b.assign(bufferstep, b.cint(0)),
          })),
      // Step-index update with clamping.
      b.assign(index,
               b.add(b.use(index), b.load(b.use(indexTable), b.use(delta)))),
      b.ifElse(b.lt(b.use(index), b.cint(0)), b.assign(index, b.cint(0))),
      b.ifElse(b.gt(b.use(index), b.cint(88)), b.assign(index, b.cint(88))),
      // Magnitude / sign split and difference reconstruction.
      b.assign(sign, b.band(b.use(delta), b.cint(8))),
      b.assign(dmag, b.band(b.use(delta), b.cint(7))),
      b.assign(vpdiff, b.shr(b.use(step), b.cint(3))),
      b.ifElse(b.ne(b.use(dmag), b.cint(0)),
               b.block({
                   b.assign(bit, b.cint(4)),
                   b.assign(sh, b.cint(0)),
                   bitLoop,
               })),
      // Predicted value update with saturation.
      b.ifElse(b.ne(b.use(sign), b.cint(0)),
               b.assign(valpred, b.sub(b.use(valpred), b.use(vpdiff))),
               b.assign(valpred, b.add(b.use(valpred), b.use(vpdiff)))),
      b.ifElse(b.gt(b.use(valpred), b.cint(32767)),
               b.assign(valpred, b.cint(32767))),
      b.ifElse(b.lt(b.use(valpred), b.cint(-32768)),
               b.assign(valpred, b.cint(-32768))),
      // Next step size and gain-scaled output (the multiply makes the
      // block-vs-single-cycle multiplier experiments of Tables III/IV
      // meaningful, as in the paper's decoder).
      b.assign(step, b.load(b.use(stepTable), b.use(index))),
      b.arrayStore(b.use(outbuf), b.use(i),
                   b.shr(b.mul(b.use(valpred), b.use(gain)), b.cint(12))),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });

  const StmtId program = b.block({
      b.assign(step, b.load(b.use(stepTable), b.use(index))),
      b.assign(bufferstep, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(n)), body),
  });

  Workload w;
  w.name = "adpcm";
  w.fn = b.finish(program);

  // Input: an encoded swept sine so the decoder sees realistic step-index
  // trajectories (the number of inner-loop iterations is data dependent).
  Rng rng(seed);
  std::vector<std::int16_t> pcm(numSamples);
  for (unsigned k = 0; k < numSamples; ++k) {
    const double t = static_cast<double>(k) / 40.0;
    const double amp = 6000.0 + 5000.0 * std::sin(t / 7.0);
    pcm[k] = static_cast<std::int16_t>(
        amp * std::sin(t) + static_cast<double>(rng.range(-300, 300)));
  }
  const std::vector<std::uint8_t> encoded = adpcmEncode(pcm);

  std::vector<std::int32_t> inData(encoded.begin(), encoded.end());
  const Handle hIn = w.heap.alloc(std::move(inData));
  const Handle hOut = w.heap.alloc(numSamples);
  const Handle hIdxTab = w.heap.alloc(kIndexTable);
  const Handle hStepTab = w.heap.alloc(kStepsizeTable);

  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[inbuf] = hIn;
  w.initialLocals[outbuf] = hOut;
  w.initialLocals[indexTable] = hIdxTab;
  w.initialLocals[stepTable] = hStepTab;
  w.initialLocals[n] = static_cast<std::int32_t>(numSamples);
  w.initialLocals[valpred] = 0;
  w.initialLocals[index] = 0;
  w.initialLocals[gain] = 4519;  // ~1.10x volume in Q12
  return w;
}

Workload makeAdpcmStereo(unsigned framesPerChannel, std::uint64_t seed) {
  FunctionBuilder b("adpcm_stereo_decode");
  const LocalId inbuf = b.param("inbuf");
  const LocalId outL = b.param("outL");
  const LocalId outR = b.param("outR");
  const LocalId indexTable = b.param("indexTable");
  const LocalId stepTable = b.param("stepsizeTable");
  const LocalId n = b.param("n");
  const LocalId i = b.localVar("i");
  const LocalId byte = b.localVar("byte");

  // Per-channel decoder state and scratch, suffixed L/R. The two chains
  // share nothing but the input byte, giving the scheduler two independent
  // dependence graphs per iteration.
  struct Channel {
    LocalId valpred, index, step, delta, sign, dmag, vpdiff, bit, sh;
  };
  auto makeChannel = [&](const char* suffix) {
    Channel c;
    c.valpred = b.param(std::string("valpred") + suffix);
    c.index = b.param(std::string("index") + suffix);
    c.step = b.localVar(std::string("step") + suffix);
    c.delta = b.localVar(std::string("delta") + suffix);
    c.sign = b.localVar(std::string("sign") + suffix);
    c.dmag = b.localVar(std::string("dmag") + suffix);
    c.vpdiff = b.localVar(std::string("vpdiff") + suffix);
    c.bit = b.localVar(std::string("bit") + suffix);
    c.sh = b.localVar(std::string("sh") + suffix);
    return c;
  };
  const Channel L = makeChannel("L");
  const Channel R = makeChannel("R");

  auto decode = [&](const Channel& c, kir::ExprId nibble, LocalId out) {
    const StmtId bitBody = b.block({
        b.ifElse(b.ne(b.band(b.use(c.dmag), b.use(c.bit)), b.cint(0)),
                 b.assign(c.vpdiff, b.add(b.use(c.vpdiff),
                                          b.shr(b.use(c.step), b.use(c.sh))))),
        b.assign(c.bit, b.shr(b.use(c.bit), b.cint(1))),
        b.assign(c.sh, b.add(b.use(c.sh), b.cint(1))),
    });
    return b.block({
        b.assign(c.delta, nibble),
        b.assign(c.index, b.add(b.use(c.index),
                                b.load(b.use(indexTable), b.use(c.delta)))),
        b.ifElse(b.lt(b.use(c.index), b.cint(0)), b.assign(c.index, b.cint(0))),
        b.ifElse(b.gt(b.use(c.index), b.cint(88)),
                 b.assign(c.index, b.cint(88))),
        b.assign(c.sign, b.band(b.use(c.delta), b.cint(8))),
        b.assign(c.dmag, b.band(b.use(c.delta), b.cint(7))),
        b.assign(c.vpdiff, b.shr(b.use(c.step), b.cint(3))),
        b.ifElse(b.ne(b.use(c.dmag), b.cint(0)),
                 b.block({
                     b.assign(c.bit, b.cint(4)),
                     b.assign(c.sh, b.cint(0)),
                     b.whileLoop(b.ge(b.use(c.bit), b.cint(1)), bitBody),
                 })),
        b.ifElse(b.ne(b.use(c.sign), b.cint(0)),
                 b.assign(c.valpred, b.sub(b.use(c.valpred), b.use(c.vpdiff))),
                 b.assign(c.valpred, b.add(b.use(c.valpred), b.use(c.vpdiff)))),
        b.ifElse(b.gt(b.use(c.valpred), b.cint(32767)),
                 b.assign(c.valpred, b.cint(32767))),
        b.ifElse(b.lt(b.use(c.valpred), b.cint(-32768)),
                 b.assign(c.valpred, b.cint(-32768))),
        b.assign(c.step, b.load(b.use(stepTable), b.use(c.index))),
        b.arrayStore(b.use(out), b.use(i), b.use(c.valpred)),
    });
  };

  const StmtId body = b.block({
      b.assign(byte, b.load(b.use(inbuf), b.use(i))),
      decode(L, b.band(b.use(byte), b.cint(15)), outL),
      decode(R, b.band(b.shr(b.use(byte), b.cint(4)), b.cint(15)), outR),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(L.step, b.load(b.use(stepTable), b.use(L.index))),
      b.assign(R.step, b.load(b.use(stepTable), b.use(R.index))),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(n)), body),
  });

  Workload w;
  w.name = "adpcm_stereo";
  w.fn = b.finish(program);

  // Two independently encoded channels packed nibble-wise per frame.
  Rng rng(seed);
  auto encodeChannel = [&](double phase) {
    std::vector<std::int16_t> pcm(framesPerChannel);
    for (unsigned k = 0; k < framesPerChannel; ++k) {
      const double t = static_cast<double>(k) / 31.0 + phase;
      pcm[k] = static_cast<std::int16_t>(
          7000.0 * std::sin(t) + static_cast<double>(rng.range(-250, 250)));
    }
    // Encode each sample into one nibble per frame (one nibble stream).
    std::vector<std::uint8_t> nibbles;
    const std::vector<std::uint8_t> packed = adpcmEncode(pcm);
    for (unsigned k = 0; k < framesPerChannel; ++k) {
      const std::uint8_t byteVal = packed[k / 2];
      nibbles.push_back(k % 2 == 0 ? (byteVal & 0x0F) : (byteVal >> 4));
    }
    return nibbles;
  };
  const auto left = encodeChannel(0.0);
  const auto right = encodeChannel(1.7);
  std::vector<std::int32_t> interleaved(framesPerChannel);
  for (unsigned k = 0; k < framesPerChannel; ++k)
    interleaved[k] = static_cast<std::int32_t>(left[k] | (right[k] << 4));

  const Handle hIn = w.heap.alloc(std::move(interleaved));
  const Handle hOutL = w.heap.alloc(framesPerChannel);
  const Handle hOutR = w.heap.alloc(framesPerChannel);
  const Handle hIdxTab = w.heap.alloc(kIndexTable);
  const Handle hStepTab = w.heap.alloc(kStepsizeTable);
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[inbuf] = hIn;
  w.initialLocals[outL] = hOutL;
  w.initialLocals[outR] = hOutR;
  w.initialLocals[indexTable] = hIdxTab;
  w.initialLocals[stepTable] = hStepTab;
  w.initialLocals[n] = static_cast<std::int32_t>(framesPerChannel);
  return w;
}

Workload makeDotProduct(unsigned n, std::uint64_t seed) {
  FunctionBuilder b("dot_product");
  const LocalId ha = b.param("a");
  const LocalId hb = b.param("b");
  const LocalId len = b.param("n");
  const LocalId sum = b.localVar("sum");
  const LocalId i = b.localVar("i");

  const StmtId body = b.block({
      b.assign(sum, b.add(b.use(sum),
                          b.mul(b.load(b.use(ha), b.use(i)),
                                b.load(b.use(hb), b.use(i))))),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(sum, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(len)), body),
  });

  Workload w;
  w.name = "dotprod";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> va(n), vb(n);
  for (unsigned k = 0; k < n; ++k) {
    va[k] = static_cast<std::int32_t>(rng.range(-100, 100));
    vb[k] = static_cast<std::int32_t>(rng.range(-100, 100));
  }
  const Handle a = w.heap.alloc(std::move(va));
  const Handle hb2 = w.heap.alloc(std::move(vb));
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[ha] = a;
  w.initialLocals[hb] = hb2;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  return w;
}

Workload makeFir(unsigned n, unsigned taps, std::uint64_t seed) {
  FunctionBuilder b("fir");
  const LocalId hx = b.param("x");
  const LocalId hh = b.param("h");
  const LocalId hy = b.param("y");
  const LocalId len = b.param("n");
  const LocalId ntaps = b.param("taps");
  const LocalId i = b.localVar("i");
  const LocalId k = b.localVar("k");
  const LocalId acc = b.localVar("acc");

  const StmtId inner = b.block({
      b.assign(acc, b.add(b.use(acc),
                          b.mul(b.load(b.use(hh), b.use(k)),
                                b.load(b.use(hx),
                                       b.add(b.use(i), b.use(k)))))),
      b.assign(k, b.add(b.use(k), b.cint(1))),
  });
  const StmtId body = b.block({
      b.assign(acc, b.cint(0)),
      b.assign(k, b.cint(0)),
      b.whileLoop(b.lt(b.use(k), b.use(ntaps)), inner),
      b.arrayStore(b.use(hy), b.use(i), b.use(acc)),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(len)), body),
  });

  Workload w;
  w.name = "fir";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> x(n + taps), h(taps);
  for (auto& v : x) v = static_cast<std::int32_t>(rng.range(-50, 50));
  for (auto& v : h) v = static_cast<std::int32_t>(rng.range(-8, 8));
  const Handle hx2 = w.heap.alloc(std::move(x));
  const Handle hh2 = w.heap.alloc(std::move(h));
  const Handle hy2 = w.heap.alloc(n);
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[hx] = hx2;
  w.initialLocals[hh] = hh2;
  w.initialLocals[hy] = hy2;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  w.initialLocals[ntaps] = static_cast<std::int32_t>(taps);
  return w;
}

Workload makeMatMul(unsigned dim, std::uint64_t seed) {
  FunctionBuilder b("matmul");
  const LocalId ha = b.param("A");
  const LocalId hb = b.param("B");
  const LocalId hc = b.param("C");
  const LocalId nn = b.param("n");
  const LocalId i = b.localVar("i");
  const LocalId j = b.localVar("j");
  const LocalId k = b.localVar("k");
  const LocalId acc = b.localVar("acc");

  const StmtId kBody = b.block({
      b.assign(acc,
               b.add(b.use(acc),
                     b.mul(b.load(b.use(ha),
                                  b.add(b.mul(b.use(i), b.use(nn)), b.use(k))),
                           b.load(b.use(hb),
                                  b.add(b.mul(b.use(k), b.use(nn)),
                                        b.use(j)))))),
      b.assign(k, b.add(b.use(k), b.cint(1))),
  });
  const StmtId jBody = b.block({
      b.assign(acc, b.cint(0)),
      b.assign(k, b.cint(0)),
      b.whileLoop(b.lt(b.use(k), b.use(nn)), kBody),
      b.arrayStore(b.use(hc), b.add(b.mul(b.use(i), b.use(nn)), b.use(j)),
                   b.use(acc)),
      b.assign(j, b.add(b.use(j), b.cint(1))),
  });
  const StmtId iBody = b.block({
      b.assign(j, b.cint(0)),
      b.whileLoop(b.lt(b.use(j), b.use(nn)), jBody),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(nn)), iBody),
  });

  Workload w;
  w.name = "matmul";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> A(dim * dim), B(dim * dim);
  for (auto& v : A) v = static_cast<std::int32_t>(rng.range(-9, 9));
  for (auto& v : B) v = static_cast<std::int32_t>(rng.range(-9, 9));
  const Handle a = w.heap.alloc(std::move(A));
  const Handle bb = w.heap.alloc(std::move(B));
  const Handle c = w.heap.alloc(dim * dim);
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[ha] = a;
  w.initialLocals[hb] = bb;
  w.initialLocals[hc] = c;
  w.initialLocals[nn] = static_cast<std::int32_t>(dim);
  return w;
}

Workload makeGcd(std::int32_t a, std::int32_t b0) {
  FunctionBuilder b("gcd");
  const LocalId x = b.param("x");
  const LocalId y = b.param("y");
  // GCD needs a heap array only because every composition has DMA PEs; the
  // kernel itself is DMA-free and exercises pure control flow.
  const StmtId body = b.ifElse(b.gt(b.use(x), b.use(y)),
                               b.assign(x, b.sub(b.use(x), b.use(y))),
                               b.assign(y, b.sub(b.use(y), b.use(x))));
  const StmtId program =
      b.block({b.whileLoop(b.ne(b.use(x), b.use(y)), body)});

  Workload w;
  w.name = "gcd";
  w.fn = b.finish(program);
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[x] = a;
  w.initialLocals[y] = b0;
  return w;
}

Workload makeBubbleSort(unsigned n, std::uint64_t seed) {
  FunctionBuilder b("bubble_sort");
  const LocalId ha = b.param("a");
  const LocalId len = b.param("n");
  const LocalId i = b.localVar("i");
  const LocalId j = b.localVar("j");
  const LocalId u = b.localVar("u");
  const LocalId v = b.localVar("v");

  const StmtId swap = b.block({
      b.arrayStore(b.use(ha), b.use(j), b.use(v)),
      b.arrayStore(b.use(ha), b.add(b.use(j), b.cint(1)), b.use(u)),
  });
  const StmtId jBody = b.block({
      b.assign(u, b.load(b.use(ha), b.use(j))),
      b.assign(v, b.load(b.use(ha), b.add(b.use(j), b.cint(1)))),
      b.ifElse(b.gt(b.use(u), b.use(v)), swap),
      b.assign(j, b.add(b.use(j), b.cint(1))),
  });
  const StmtId iBody = b.block({
      b.assign(j, b.cint(0)),
      b.whileLoop(b.lt(b.use(j), b.sub(b.sub(b.use(len), b.use(i)),
                                       b.cint(1))),
                  jBody),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.sub(b.use(len), b.cint(1))), iBody),
  });

  Workload w;
  w.name = "bubble";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> a(n);
  for (auto& val : a) val = static_cast<std::int32_t>(rng.range(-1000, 1000));
  const Handle h = w.heap.alloc(std::move(a));
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[ha] = h;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  return w;
}

Workload makeEwmaClip(unsigned n, std::uint64_t seed) {
  FunctionBuilder b("ewma_clip");
  const LocalId hx = b.param("x");
  const LocalId hy = b.param("y");
  const LocalId len = b.param("n");
  const LocalId avg = b.localVar("avg");
  const LocalId i = b.localVar("i");
  const LocalId s = b.localVar("s");

  const StmtId body = b.block({
      b.assign(s, b.load(b.use(hx), b.use(i))),
      // avg = (3*avg + s) / 4, via shifts.
      b.assign(avg, b.shr(b.add(b.add(b.shl(b.use(avg), b.cint(1)),
                                      b.use(avg)),
                                b.use(s)),
                          b.cint(2))),
      b.ifElse(b.gt(b.use(avg), b.cint(255)), b.assign(avg, b.cint(255)),
               b.ifElse(b.lt(b.use(avg), b.cint(-256)),
                        b.assign(avg, b.cint(-256)))),
      b.arrayStore(b.use(hy), b.use(i), b.use(avg)),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(avg, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(len)), body),
  });

  Workload w;
  w.name = "ewma";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> x(n);
  for (auto& val : x) val = static_cast<std::int32_t>(rng.range(-600, 600));
  const Handle hx2 = w.heap.alloc(std::move(x));
  const Handle hy2 = w.heap.alloc(n);
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[hx] = hx2;
  w.initialLocals[hy] = hy2;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  return w;
}

Workload makeConditionalHalving(unsigned n, std::uint64_t seed) {
  FunctionBuilder b("cond_halving");
  const LocalId hx = b.param("x");
  const LocalId len = b.param("n");
  const LocalId thresh = b.param("thresh");
  const LocalId count = b.localVar("count");
  const LocalId i = b.localVar("i");
  const LocalId v = b.localVar("v");
  const LocalId steps = b.localVar("steps");

  // For each element above the threshold, count halvings until it drops
  // below — a nested loop whose execution *and* trip count are data
  // dependent ("executed under certain conditions, dependent on the input").
  const StmtId halving = b.block({
      b.assign(v, b.shr(b.use(v), b.cint(1))),
      b.assign(steps, b.add(b.use(steps), b.cint(1))),
  });
  const StmtId body = b.block({
      b.assign(v, b.load(b.use(hx), b.use(i))),
      b.ifElse(b.gt(b.use(v), b.use(thresh)),
               b.block({
                   b.assign(steps, b.cint(0)),
                   b.whileLoop(b.gt(b.use(v), b.use(thresh)), halving),
                   b.assign(count, b.add(b.use(count), b.use(steps))),
               })),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(count, b.cint(0)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(len)), body),
  });

  Workload w;
  w.name = "cond_halving";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> x(n);
  for (auto& val : x) val = static_cast<std::int32_t>(rng.range(0, 5000));
  const Handle hx2 = w.heap.alloc(std::move(x));
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[hx] = hx2;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  w.initialLocals[thresh] = 40;
  return w;
}

Workload makeSobel(unsigned width, unsigned height, std::uint64_t seed) {
  FunctionBuilder b("sobel_gx");
  const LocalId img = b.param("img");
  const LocalId out = b.param("out");
  const LocalId w = b.param("w");
  const LocalId h = b.param("h");
  const LocalId x = b.localVar("x");
  const LocalId y = b.localVar("y");
  const LocalId gx = b.localVar("gx");
  const LocalId row = b.localVar("row");

  // gx = (NE + 2E + SE) - (NW + 2W + SW) at (x, y), borders skipped.
  auto at = [&](std::int32_t dy, std::int32_t dx) {
    return b.load(b.use(img),
                  b.add(b.add(b.use(row),
                              b.mul(b.cint(dy), b.use(w))),
                        b.add(b.use(x), b.cint(dx))));
  };
  const StmtId xBody = b.block({
      b.assign(gx, b.sub(b.add(b.add(at(-1, 1), b.shl(at(0, 1), b.cint(1))),
                               at(1, 1)),
                         b.add(b.add(at(-1, -1), b.shl(at(0, -1), b.cint(1))),
                               at(1, -1)))),
      b.ifElse(b.lt(b.use(gx), b.cint(0)), b.assign(gx, b.neg(b.use(gx)))),
      b.arrayStore(b.use(out), b.add(b.use(row), b.use(x)), b.use(gx)),
      b.assign(x, b.add(b.use(x), b.cint(1))),
  });
  const StmtId yBody = b.block({
      b.assign(row, b.mul(b.use(y), b.use(w))),
      b.assign(x, b.cint(1)),
      b.whileLoop(b.lt(b.use(x), b.sub(b.use(w), b.cint(1))), xBody),
      b.assign(y, b.add(b.use(y), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(y, b.cint(1)),
      b.whileLoop(b.lt(b.use(y), b.sub(b.use(h), b.cint(1))), yBody),
  });

  Workload wl;
  wl.name = "sobel";
  wl.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> image(width * height);
  for (auto& v : image) v = static_cast<std::int32_t>(rng.range(0, 255));
  const Handle hImg = wl.heap.alloc(std::move(image));
  const Handle hOut = wl.heap.alloc(width * height);
  wl.initialLocals.assign(wl.fn.numLocals(), 0);
  wl.initialLocals[img] = hImg;
  wl.initialLocals[out] = hOut;
  wl.initialLocals[w] = static_cast<std::int32_t>(width);
  wl.initialLocals[h] = static_cast<std::int32_t>(height);
  return wl;
}

Workload makeCrc32(unsigned n, std::uint64_t seed) {
  FunctionBuilder b("crc32");
  const LocalId buf = b.param("buf");
  const LocalId len = b.param("n");
  const LocalId crc = b.localVar("crc");
  const LocalId i = b.localVar("i");
  const LocalId k = b.localVar("k");

  // crc = crc ^ byte; 8x { crc = (crc >>> 1) ^ (poly if lsb set) }.
  const StmtId bitBody = b.block({
      b.ifElse(b.ne(b.band(b.use(crc), b.cint(1)), b.cint(0)),
               b.assign(crc, b.bxor(b.ushr(b.use(crc), b.cint(1)),
                                    b.cint(static_cast<std::int32_t>(
                                        0xEDB88320u)))),
               b.assign(crc, b.ushr(b.use(crc), b.cint(1)))),
      b.assign(k, b.add(b.use(k), b.cint(1))),
  });
  const StmtId body = b.block({
      b.assign(crc, b.bxor(b.use(crc), b.load(b.use(buf), b.use(i)))),
      b.assign(k, b.cint(0)),
      b.whileLoop(b.lt(b.use(k), b.cint(8)), bitBody),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(crc, b.cint(-1)),
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(len)), body),
      b.assign(crc, b.bxor(b.use(crc), b.cint(-1))),
  });

  Workload w;
  w.name = "crc32";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> data(n);
  for (auto& v : data) v = static_cast<std::int32_t>(rng.range(0, 255));
  const Handle hBuf = w.heap.alloc(std::move(data));
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[buf] = hBuf;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  return w;
}

Workload makeHistogram(unsigned n, std::uint64_t seed) {
  FunctionBuilder b("histogram");
  const LocalId data = b.param("data");
  const LocalId bins = b.param("bins");
  const LocalId len = b.param("n");
  const LocalId i = b.localVar("i");
  const LocalId bin = b.localVar("bin");

  const StmtId body = b.block({
      b.assign(bin, b.band(b.shr(b.load(b.use(data), b.use(i)), b.cint(5)),
                           b.cint(7))),
      // Read-modify-write on the bin array: load + store to the same index
      // must stay ordered (memory dependency stress).
      b.arrayStore(b.use(bins), b.use(bin),
                   b.add(b.load(b.use(bins), b.use(bin)), b.cint(1))),
      b.assign(i, b.add(b.use(i), b.cint(1))),
  });
  const StmtId program = b.block({
      b.assign(i, b.cint(0)),
      b.whileLoop(b.lt(b.use(i), b.use(len)), body),
  });

  Workload w;
  w.name = "histogram";
  w.fn = b.finish(program);
  Rng rng(seed);
  std::vector<std::int32_t> values(n);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.range(0, 255));
  const Handle hData = w.heap.alloc(std::move(values));
  const Handle hBins = w.heap.alloc(8);
  w.initialLocals.assign(w.fn.numLocals(), 0);
  w.initialLocals[data] = hData;
  w.initialLocals[bins] = hBins;
  w.initialLocals[len] = static_cast<std::int32_t>(n);
  return w;
}

std::vector<Workload> allWorkloads(std::uint64_t seed) {
  std::vector<Workload> out;
  out.push_back(makeAdpcm(24, seed));
  out.push_back(makeDotProduct(12, seed + 1));
  out.push_back(makeFir(8, 3, seed + 2));
  out.push_back(makeMatMul(3, seed + 3));
  out.push_back(makeGcd(546, 2394));
  out.push_back(makeBubbleSort(7, seed + 4));
  out.push_back(makeEwmaClip(10, seed + 5));
  out.push_back(makeConditionalHalving(9, seed + 6));
  out.push_back(makeSobel(6, 4, seed + 7));
  out.push_back(makeCrc32(5, seed + 8));
  out.push_back(makeHistogram(10, seed + 9));
  out.push_back(makeAdpcmStereo(16, seed + 10));
  return out;
}

}  // namespace cgra::apps
