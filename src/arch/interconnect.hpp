// Interconnect model: for each PE, the list of source PEs whose register-file
// output port it can read (paper §IV-B: "mainly a list of available sources
// for each PE"). The structure is directed and may be arbitrarily irregular.
//
// The scheduler needs all-pairs shortest paths to insert copy chains between
// non-adjacent PEs; the paper uses Floyd's algorithm [19], implemented here
// with next-hop reconstruction.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "json/json.hpp"

namespace cgra {

/// Index of a PE within a composition.
using PEId = unsigned;

/// Marker for "no path exists".
inline constexpr unsigned kUnreachable = std::numeric_limits<unsigned>::max();

/// Directed interconnect between PEs of one composition.
class Interconnect {
public:
  Interconnect() = default;
  explicit Interconnect(unsigned numPEs) : sources_(numPEs) {}

  unsigned numPEs() const { return static_cast<unsigned>(sources_.size()); }

  /// Declares that `to` can read the output port of `from`.
  void addLink(PEId from, PEId to);
  /// Adds links in both directions.
  void addBidirectional(PEId a, PEId b);

  /// PEs whose output port `pe` can read.
  const std::vector<PEId>& sources(PEId pe) const;
  /// PEs that can read `pe`'s output port (computed on demand).
  std::vector<PEId> sinks(PEId pe) const;

  bool hasLink(PEId from, PEId to) const;

  /// Total number of directed links.
  std::size_t numLinks() const;

  /// Computes hop distances and next-hop matrix (Floyd–Warshall). Must be
  /// called after the link set is final and before distance()/pathTo().
  void computeShortestPaths();

  /// Hop count of the shortest path from `from` to `to`; kUnreachable when
  /// disconnected; 0 when from == to.
  unsigned distance(PEId from, PEId to) const;

  /// Shortest path from `from` to `to` as the PE sequence including both
  /// endpoints; empty when unreachable.
  std::vector<PEId> pathTo(PEId from, PEId to) const;

  /// True when every PE can (transitively) reach every other PE.
  bool stronglyConnected() const;

  json::Value toJson() const;
  static Interconnect fromJson(const json::Value& v, unsigned expectedPEs);

private:
  std::vector<std::vector<PEId>> sources_;
  // dist_[from * n + to]; nextHop_[from * n + to] is the next PE on the
  // shortest from→to path.
  std::vector<unsigned> dist_;
  std::vector<PEId> nextHop_;
  bool pathsComputed_ = false;
};

}  // namespace cgra
