// A CGRA *composition*: the infrastructure and operation spectrum of one
// concrete CGRA instance (paper §IV-B) — the PE set with their descriptors,
// the interconnect, the context memory depth and the C-Box condition-memory
// size. Compositions round-trip through the paper's JSON description shape
// (Fig. 8) and validate the paper's structural constraints (≤4 DMA PEs,
// strongly connected interconnect, positive memory sizes).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/interconnect.hpp"
#include "arch/pe.hpp"

namespace cgra {

class ArchModel;

namespace detail {
struct ArchModelSlot;
}  // namespace detail

/// One concrete CGRA instance description.
class Composition {
public:
  Composition() = default;
  Composition(std::string name, std::vector<PEDescriptor> pes, Interconnect ic,
              unsigned contextMemoryLength, unsigned cboxSlots);

  const std::string& name() const { return name_; }
  unsigned numPEs() const { return static_cast<unsigned>(pes_.size()); }
  const PEDescriptor& pe(PEId id) const;
  const std::vector<PEDescriptor>& pes() const { return pes_; }
  const Interconnect& interconnect() const { return ic_; }

  /// Depth of each context memory (max schedule length).
  unsigned contextMemoryLength() const { return contextMemoryLength_; }
  /// Number of condition slots in the C-Box (limits parallel branches).
  unsigned cboxSlots() const { return cboxSlots_; }

  /// PEs with a DMA interface.
  std::vector<PEId> dmaPEs() const;

  /// PEs supporting a given op, cheapest-energy first.
  std::vector<PEId> pesSupporting(Op op) const;

  /// Throws cgra::Error describing the first violated structural constraint.
  void validate() const;

  /// Serializes composition + inline PE descriptors + interconnect into one
  /// self-contained JSON document (the paper splits these across referenced
  /// files; `toJson` inlines them, `fromJson` accepts both inline objects and
  /// repeated type names).
  json::Value toJson() const;
  static Composition fromJson(const json::Value& v);

  /// Loads a Fig. 8-style description where PE entries and the interconnect
  /// may be *paths* to separate JSON files ("0": "cgras/PE_mem.json", ...),
  /// resolved relative to the composition file's directory. Repeated
  /// references to the same file share one parse. Inline objects still work.
  static Composition fromJsonFile(const std::string& path);

  /// GraphViz rendering of the PE array and links (Fig. 13/14 style).
  std::string toDot() const;

private:
  friend class ArchModel;

  std::string name_;
  std::vector<PEDescriptor> pes_;
  Interconnect ic_;
  unsigned contextMemoryLength_ = 256;
  unsigned cboxSlots_ = 32;
  /// Lazily created memo slot for the composition's ArchModel (see
  /// arch/arch_model.hpp). A composition is immutable after construction,
  /// so copies may share the slot: the cached analyses stay valid for every
  /// copy and the model is built at most once per original instance.
  mutable std::shared_ptr<detail::ArchModelSlot> archModelSlot_;
};

}  // namespace cgra
