#include "arch/interconnect.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace cgra {

void Interconnect::addLink(PEId from, PEId to) {
  CGRA_ASSERT(from < numPEs() && to < numPEs());
  if (from == to) return;  // a PE always reads its own RF; no link needed
  auto& src = sources_[to];
  if (std::find(src.begin(), src.end(), from) == src.end()) src.push_back(from);
  pathsComputed_ = false;
}

void Interconnect::addBidirectional(PEId a, PEId b) {
  addLink(a, b);
  addLink(b, a);
}

const std::vector<PEId>& Interconnect::sources(PEId pe) const {
  CGRA_ASSERT(pe < numPEs());
  return sources_[pe];
}

std::vector<PEId> Interconnect::sinks(PEId pe) const {
  std::vector<PEId> out;
  for (PEId to = 0; to < numPEs(); ++to)
    if (hasLink(pe, to)) out.push_back(to);
  return out;
}

bool Interconnect::hasLink(PEId from, PEId to) const {
  CGRA_ASSERT(from < numPEs() && to < numPEs());
  const auto& src = sources_[to];
  return std::find(src.begin(), src.end(), from) != src.end();
}

std::size_t Interconnect::numLinks() const {
  std::size_t n = 0;
  for (const auto& src : sources_) n += src.size();
  return n;
}

void Interconnect::computeShortestPaths() {
  const unsigned n = numPEs();
  dist_.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  nextHop_.assign(static_cast<std::size_t>(n) * n, n);
  auto d = [&](PEId i, PEId j) -> unsigned& {
    return dist_[static_cast<std::size_t>(i) * n + j];
  };
  auto nh = [&](PEId i, PEId j) -> PEId& {
    return nextHop_[static_cast<std::size_t>(i) * n + j];
  };

  for (PEId i = 0; i < n; ++i) {
    d(i, i) = 0;
    nh(i, i) = i;
  }
  for (PEId to = 0; to < n; ++to)
    for (PEId from : sources_[to]) {
      d(from, to) = 1;
      nh(from, to) = to;
    }

  // Floyd's algorithm [Floyd 1962], as cited by the paper for routing.
  for (PEId k = 0; k < n; ++k)
    for (PEId i = 0; i < n; ++i) {
      if (d(i, k) == kUnreachable) continue;
      for (PEId j = 0; j < n; ++j) {
        if (d(k, j) == kUnreachable) continue;
        const unsigned through = d(i, k) + d(k, j);
        if (through < d(i, j)) {
          d(i, j) = through;
          nh(i, j) = nh(i, k);
        }
      }
    }
  pathsComputed_ = true;
}

unsigned Interconnect::distance(PEId from, PEId to) const {
  CGRA_ASSERT_MSG(pathsComputed_, "call computeShortestPaths() first");
  CGRA_ASSERT(from < numPEs() && to < numPEs());
  return dist_[static_cast<std::size_t>(from) * numPEs() + to];
}

std::vector<PEId> Interconnect::pathTo(PEId from, PEId to) const {
  CGRA_ASSERT_MSG(pathsComputed_, "call computeShortestPaths() first");
  if (distance(from, to) == kUnreachable) return {};
  std::vector<PEId> path{from};
  PEId cur = from;
  while (cur != to) {
    cur = nextHop_[static_cast<std::size_t>(cur) * numPEs() + to];
    path.push_back(cur);
  }
  return path;
}

bool Interconnect::stronglyConnected() const {
  CGRA_ASSERT_MSG(pathsComputed_, "call computeShortestPaths() first");
  for (PEId i = 0; i < numPEs(); ++i)
    for (PEId j = 0; j < numPEs(); ++j)
      if (distance(i, j) == kUnreachable) return false;
  return true;
}

json::Value Interconnect::toJson() const {
  json::Object obj;
  json::Array perPE;
  for (PEId pe = 0; pe < numPEs(); ++pe) {
    json::Array srcs;
    for (PEId s : sources_[pe]) srcs.emplace_back(static_cast<std::int64_t>(s));
    perPE.emplace_back(std::move(srcs));
  }
  obj["sources"] = std::move(perPE);
  return obj;
}

Interconnect Interconnect::fromJson(const json::Value& v, unsigned expectedPEs) {
  const json::Array& perPE = v.asObject().at("sources").asArray();
  if (perPE.size() != expectedPEs)
    throw Error("interconnect lists " + std::to_string(perPE.size()) +
                " PEs, composition has " + std::to_string(expectedPEs));
  Interconnect ic(expectedPEs);
  for (PEId pe = 0; pe < expectedPEs; ++pe)
    for (const json::Value& s : perPE[pe].asArray()) {
      const std::int64_t src = s.asInt();
      if (src < 0 || src >= static_cast<std::int64_t>(expectedPEs))
        throw Error("interconnect source " + std::to_string(src) +
                    " out of range for PE " + std::to_string(pe));
      ic.addLink(static_cast<PEId>(src), pe);
    }
  ic.computeShortestPaths();
  return ic;
}

}  // namespace cgra
