#include "arch/factory.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace cgra {

namespace {

/// Builds the PE vector: full-integer PEs, DMA on the listed ids, and MUL
/// removed from PEs not in `mulPEs` (empty = all PEs multiply).
std::vector<PEDescriptor> makePEs(unsigned n, const FactoryOptions& opts,
                                  const std::vector<PEId>& dmaPEs,
                                  const std::vector<PEId>& mulPEs = {}) {
  std::vector<PEDescriptor> pes;
  pes.reserve(n);
  for (PEId i = 0; i < n; ++i) {
    const bool dma = std::find(dmaPEs.begin(), dmaPEs.end(), i) != dmaPEs.end();
    PEDescriptor pe = PEDescriptor::fullInteger(
        std::string("PE") + (dma ? "_mem" : "_no_mem") + std::to_string(i),
        opts.regfileSize, dma, opts.blockMultiplier);
    if (!mulPEs.empty() &&
        std::find(mulPEs.begin(), mulPEs.end(), i) == mulPEs.end())
      pe.removeOp(Op::IMUL);
    pes.push_back(std::move(pe));
  }
  return pes;
}

Interconnect meshLinks(unsigned rows, unsigned cols) {
  Interconnect ic(rows * cols);
  auto id = [cols](unsigned r, unsigned c) { return r * cols + c; };
  for (unsigned r = 0; r < rows; ++r)
    for (unsigned c = 0; c < cols; ++c) {
      if (c + 1 < cols) ic.addBidirectional(id(r, c), id(r, c + 1));
      if (r + 1 < rows) ic.addBidirectional(id(r, c), id(r + 1, c));
    }
  ic.computeShortestPaths();
  return ic;
}

/// DMA placement mirroring the grey PEs in Fig. 13: spread over the array,
/// never more than four.
std::vector<PEId> defaultMeshDma(unsigned numPEs) {
  switch (numPEs) {
    case 4: return {0, 3};
    case 6: return {0, 5};
    case 8: return {0, 5};
    case 9: return {0, 4, 8};
    case 12: return {0, 5, 10};
    case 16: return {0, 5, 10, 15};
    default: CGRA_UNREACHABLE("unsupported mesh size");
  }
}

std::pair<unsigned, unsigned> meshShape(unsigned numPEs) {
  switch (numPEs) {
    case 4: return {2, 2};
    case 6: return {2, 3};
    case 8: return {2, 4};
    case 9: return {3, 3};
    case 12: return {3, 4};
    case 16: return {4, 4};
    default:
      throw Error("makeMesh: unsupported PE count " + std::to_string(numPEs) +
                  " (Fig. 13 sizes are 4, 6, 8, 9, 12, 16)");
  }
}

}  // namespace

Composition makeMeshGrid(unsigned rows, unsigned cols,
                         const FactoryOptions& opts, std::vector<PEId> dmaPEs) {
  const unsigned n = rows * cols;
  if (dmaPEs.empty()) dmaPEs = {0};
  return Composition("mesh" + std::to_string(rows) + "x" + std::to_string(cols),
                     makePEs(n, opts, dmaPEs), meshLinks(rows, cols),
                     opts.contextMemoryLength, opts.cboxSlots);
}

Composition makeMesh(unsigned numPEs, const FactoryOptions& opts) {
  const auto [rows, cols] = meshShape(numPEs);
  Composition c = makeMeshGrid(rows, cols, opts, defaultMeshDma(numPEs));
  return Composition("mesh" + std::to_string(numPEs),
                     std::vector<PEDescriptor>(c.pes().begin(), c.pes().end()),
                     c.interconnect(), opts.contextMemoryLength, opts.cboxSlots);
}

Composition makeIrregular(char which, const FactoryOptions& opts) {
  const unsigned n = 8;
  Interconnect ic(n);
  std::vector<PEId> dma{0, 5};
  std::vector<PEId> mulPEs;  // empty = all PEs multiply

  switch (which) {
    case 'A': {
      // 2×4 mesh with two row links removed and one diagonal added: mildly
      // irregular, mid-field performance.
      ic.addBidirectional(0, 1);
      ic.addBidirectional(2, 3);
      ic.addBidirectional(4, 5);
      ic.addBidirectional(5, 6);
      ic.addBidirectional(6, 7);
      ic.addBidirectional(0, 4);
      ic.addBidirectional(1, 5);
      ic.addBidirectional(2, 6);
      ic.addBidirectional(3, 7);
      ic.addBidirectional(1, 6);
      break;
    }
    case 'B': {
      // Minimal interconnect: a single unidirectional ring ("little
      // interconnect is available" — worst performer in Table II).
      for (PEId i = 0; i < n; ++i) ic.addLink(i, (i + 1) % n);
      break;
    }
    case 'C': {
      // Bidirectional ring plus two cross chords: nearly as fast as D.
      for (PEId i = 0; i < n; ++i) ic.addBidirectional(i, (i + 1) % n);
      ic.addBidirectional(0, 4);
      ic.addBidirectional(2, 6);
      ic.addBidirectional(1, 5);
      break;
    }
    case 'D': {
      // Rich interconnect: 2×4 mesh plus diagonals and wrap links — the
      // fastest irregular composition.
      ic.addBidirectional(0, 1);
      ic.addBidirectional(1, 2);
      ic.addBidirectional(2, 3);
      ic.addBidirectional(4, 5);
      ic.addBidirectional(5, 6);
      ic.addBidirectional(6, 7);
      ic.addBidirectional(0, 4);
      ic.addBidirectional(1, 5);
      ic.addBidirectional(2, 6);
      ic.addBidirectional(3, 7);
      ic.addBidirectional(0, 5);
      ic.addBidirectional(1, 6);
      ic.addBidirectional(2, 7);
      ic.addBidirectional(1, 4);
      ic.addBidirectional(2, 5);
      ic.addBidirectional(3, 6);
      ic.addBidirectional(0, 3);
      ic.addBidirectional(4, 7);
      break;
    }
    case 'E': {
      // Two fully connected 4-PE clusters joined by a single bridge:
      // locally rich, globally constrained.
      for (PEId i = 0; i < 4; ++i)
        for (PEId j = i + 1; j < 4; ++j) ic.addBidirectional(i, j);
      for (PEId i = 4; i < 8; ++i)
        for (PEId j = i + 1; j < 8; ++j) ic.addBidirectional(i, j);
      ic.addBidirectional(3, 4);
      break;
    }
    case 'F': {
      // Same topology as D, but only two PEs support multiplication
      // ("only the black PEs support multiplication"; DSP utilization drops
      // by 75 % in Table II).
      Composition base = makeIrregular('D', opts);
      mulPEs = {1, 6};
      return Composition("irregularF", makePEs(n, opts, dma, mulPEs),
                         base.interconnect(), opts.contextMemoryLength,
                         opts.cboxSlots);
    }
    default:
      throw Error(std::string("makeIrregular: unknown composition '") + which +
                  "' (expected A..F)");
  }
  ic.computeShortestPaths();
  return Composition(std::string("irregular") + which, makePEs(n, opts, dma),
                     std::move(ic), opts.contextMemoryLength, opts.cboxSlots);
}

Composition makeRing(unsigned numPEs, bool bidirectional,
                     const FactoryOptions& opts) {
  if (numPEs < 2) throw Error("makeRing: need at least 2 PEs");
  Interconnect ic(numPEs);
  for (PEId i = 0; i < numPEs; ++i) {
    if (bidirectional)
      ic.addBidirectional(i, (i + 1) % numPEs);
    else
      ic.addLink(i, (i + 1) % numPEs);
  }
  ic.computeShortestPaths();
  const std::vector<PEId> dma{0, static_cast<PEId>(numPEs / 2)};
  return Composition(
      std::string(bidirectional ? "ring" : "uniring") + std::to_string(numPEs),
      makePEs(numPEs, opts, numPEs > 2 ? dma : std::vector<PEId>{0}),
      std::move(ic), opts.contextMemoryLength, opts.cboxSlots);
}

Composition makeTorus(unsigned rows, unsigned cols,
                      const FactoryOptions& opts) {
  if (rows < 2 || cols < 2) throw Error("makeTorus: need at least 2x2");
  const unsigned n = rows * cols;
  Interconnect ic(n);
  auto id = [cols](unsigned r, unsigned c) { return r * cols + c; };
  for (unsigned r = 0; r < rows; ++r)
    for (unsigned c = 0; c < cols; ++c) {
      ic.addBidirectional(id(r, c), id(r, (c + 1) % cols));
      ic.addBidirectional(id(r, c), id((r + 1) % rows, c));
    }
  ic.computeShortestPaths();
  return Composition("torus" + std::to_string(rows) + "x" + std::to_string(cols),
                     makePEs(n, opts, {0, static_cast<PEId>(n - 1)}),
                     std::move(ic), opts.contextMemoryLength, opts.cboxSlots);
}

Composition makeStar(unsigned numPEs, const FactoryOptions& opts) {
  if (numPEs < 2) throw Error("makeStar: need at least 2 PEs");
  Interconnect ic(numPEs);
  for (PEId i = 1; i < numPEs; ++i) ic.addBidirectional(0, i);
  ic.computeShortestPaths();
  return Composition("star" + std::to_string(numPEs),
                     makePEs(numPEs, opts, {0}), std::move(ic),
                     opts.contextMemoryLength, opts.cboxSlots);
}

Composition makeTopology(const std::string& name, const std::string& topology,
                         unsigned rows, unsigned cols,
                         const FactoryOptions& opts,
                         const std::vector<PEId>& dmaPEs,
                         const std::vector<PEId>& mulPEs) {
  const unsigned n = rows * cols;
  if (n == 0)
    throw Error("makeTopology: \"" + name + "\": zero-PE array (" +
                std::to_string(rows) + "x" + std::to_string(cols) + ")");
  if (dmaPEs.empty())
    throw Error("makeTopology: \"" + name + "\": at least one DMA PE required");
  for (PEId id : dmaPEs)
    if (id >= n)
      throw Error("makeTopology: \"" + name + "\": DMA PE " +
                  std::to_string(id) + " out of range (array has " +
                  std::to_string(n) + " PEs)");
  for (PEId id : mulPEs)
    if (id >= n)
      throw Error("makeTopology: \"" + name + "\": MUL PE " +
                  std::to_string(id) + " out of range (array has " +
                  std::to_string(n) + " PEs)");

  Interconnect ic(n);
  if (topology == "mesh") {
    ic = meshLinks(rows, cols);
  } else if (topology == "torus") {
    if (rows < 2 || cols < 2)
      throw Error("makeTopology: \"" + name + "\": torus needs at least 2x2");
    auto id = [cols](unsigned r, unsigned c) { return r * cols + c; };
    for (unsigned r = 0; r < rows; ++r)
      for (unsigned c = 0; c < cols; ++c) {
        ic.addBidirectional(id(r, c), id(r, (c + 1) % cols));
        ic.addBidirectional(id(r, c), id((r + 1) % rows, c));
      }
  } else if (topology == "ring" || topology == "uniring") {
    if (n < 2)
      throw Error("makeTopology: \"" + name + "\": ring needs at least 2 PEs");
    for (PEId i = 0; i < n; ++i) {
      if (topology == "ring")
        ic.addBidirectional(i, (i + 1) % n);
      else
        ic.addLink(i, (i + 1) % n);
    }
  } else if (topology == "star") {
    if (n < 2)
      throw Error("makeTopology: \"" + name + "\": star needs at least 2 PEs");
    for (PEId i = 1; i < n; ++i) ic.addBidirectional(0, i);
  } else {
    throw Error("makeTopology: \"" + name + "\": unknown topology \"" +
                topology + "\" (mesh|torus|ring|uniring|star)");
  }
  ic.computeShortestPaths();
  return Composition(name, makePEs(n, opts, dmaPEs, mulPEs), std::move(ic),
                     opts.contextMemoryLength, opts.cboxSlots);
}

const std::vector<unsigned>& meshSizes() {
  static const std::vector<unsigned> kSizes{4, 6, 8, 9, 12, 16};
  return kSizes;
}

const std::vector<char>& irregularLabels() {
  static const std::vector<char> kLabels{'A', 'B', 'C', 'D', 'E', 'F'};
  return kLabels;
}

}  // namespace cgra
