#include "arch/resource_model.hpp"

#include <cmath>

namespace cgra {

namespace {

// Calibration constants (see header). Derived by fitting Table II rows.
constexpr double kLutBase = 420.0;        // CCU + C-Box + run control
constexpr double kLutPerPE = 830.0;       // ALU + decode + RF ports
constexpr double kLutPerLink = 36.0;      // input-mux tree per directed link
constexpr double kLutPerDmaPE = 180.0;    // DMA port + third RF read port
constexpr double kLutMemBase = 360.0;     // C-Box condition memory
constexpr double kLutMemPerEntryPE = 1.372;  // distributed-RAM cost per RF word
constexpr unsigned kDspPerMulPE = 3;      // 32×32 block multiplier

constexpr double kF0 = 163.1;             // intrinsic template speed (MHz)
constexpr double kFreqPerPE = 0.01686;    // CCNT/status fan-out growth
constexpr double kFreqPerLogRf = 0.0439;  // RF address decode depth
constexpr double kFreqPerFanin = 0.1;     // input-mux depth
constexpr double kFreqSingleCycleMul = 0.26;  // combinational multiplier path

}  // namespace

ResourceEstimate estimateResources(const Composition& comp) {
  const unsigned n = comp.numPEs();
  const std::size_t links = comp.interconnect().numLinks();

  unsigned mulPEs = 0;
  unsigned dmaPEs = 0;
  bool singleCycleMul = false;
  double sumRfEntries = 0;
  double maxLogRf = 0;
  for (PEId i = 0; i < n; ++i) {
    const PEDescriptor& pe = comp.pe(i);
    if (pe.supports(Op::IMUL)) {
      ++mulPEs;
      if (pe.impl(Op::IMUL).duration == 1) singleCycleMul = true;
    }
    if (pe.hasDma()) ++dmaPEs;
    sumRfEntries += pe.regfileSize();
    maxLogRf = std::max(maxLogRf, std::log2(static_cast<double>(pe.regfileSize())));
  }
  const double avgFanin = n > 0 ? static_cast<double>(links) / n : 0.0;

  ResourceEstimate est;
  est.lutLogic = kLutBase + kLutPerPE * n +
                 kLutPerLink * static_cast<double>(links) +
                 kLutPerDmaPE * dmaPEs;
  est.lutMemory = kLutMemBase + kLutMemPerEntryPE * sumRfEntries;
  est.dsp = kDspPerMulPE * mulPEs;
  est.bram = n + 1;  // one context memory per PE + C-Box/predication memory

  double denom = 1.0 + kFreqPerPE * n + kFreqPerLogRf * maxLogRf +
                 kFreqPerFanin * avgFanin;
  if (singleCycleMul) denom += kFreqSingleCycleMul;
  est.frequencyMHz = kF0 / denom;
  return est;
}

}  // namespace cgra
