#include "arch/operation.hpp"

#include <array>

#include "support/assert.hpp"

namespace cgra {

namespace {

struct OpInfo {
  const char* name;
  unsigned operands;
  unsigned duration;
  double energy;
  bool status;
  bool memory;
  bool writesRf;
};

// Energies loosely follow the Fig. 9 example scale (NOP 0.7 ... IMUL 1.7).
constexpr std::array<OpInfo, kNumOps> kOpInfo = {{
    /* NOP      */ {"NOP", 0, 1, 0.7, false, false, false},
    /* MOVE     */ {"MOVE", 1, 1, 0.8, false, false, true},
    /* CONST    */ {"CONST", 1, 1, 0.8, false, false, true},
    /* IADD     */ {"IADD", 2, 1, 1.0, false, false, true},
    /* ISUB     */ {"ISUB", 2, 1, 1.3, false, false, true},
    /* IMUL     */ {"IMUL", 2, 2, 1.7, false, false, true},
    /* INEG     */ {"INEG", 1, 1, 0.9, false, false, true},
    /* IAND     */ {"IAND", 2, 1, 0.9, false, false, true},
    /* IOR      */ {"IOR", 2, 1, 0.9, false, false, true},
    /* IXOR     */ {"IXOR", 2, 1, 0.9, false, false, true},
    /* ISHL     */ {"ISHL", 2, 1, 1.0, false, false, true},
    /* ISHR     */ {"ISHR", 2, 1, 1.0, false, false, true},
    /* IUSHR    */ {"IUSHR", 2, 1, 1.0, false, false, true},
    /* IFEQ     */ {"IFEQ", 2, 1, 1.1, true, false, false},
    /* IFNE     */ {"IFNE", 2, 1, 1.1, true, false, false},
    /* IFLT     */ {"IFLT", 2, 1, 1.1, true, false, false},
    /* IFGE     */ {"IFGE", 2, 1, 1.1, true, false, false},
    /* IFGT     */ {"IFGT", 2, 1, 1.1, true, false, false},
    /* IFLE     */ {"IFLE", 2, 1, 1.1, true, false, false},
    /* DMA_LOAD */ {"DMA_LOAD", 2, 2, 2.0, false, true, true},
    /* DMA_STORE*/ {"DMA_STORE", 3, 2, 2.2, false, true, false},
}};

const OpInfo& info(Op op) {
  const auto idx = static_cast<unsigned>(op);
  CGRA_ASSERT(idx < kNumOps);
  return kOpInfo[idx];
}

}  // namespace

bool producesStatus(Op op) { return info(op).status; }
bool isMemoryOp(Op op) { return info(op).memory; }
bool writesRegister(Op op) { return info(op).writesRf; }
unsigned operandCount(Op op) { return info(op).operands; }
const char* opName(Op op) { return info(op).name; }
unsigned defaultDuration(Op op) { return info(op).duration; }
double defaultEnergy(Op op) { return info(op).energy; }

std::optional<Op> opFromName(const std::string& name) {
  for (unsigned i = 0; i < kNumOps; ++i)
    if (name == kOpInfo[i].name) return static_cast<Op>(i);
  return std::nullopt;
}

bool evalCompare(Op op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case Op::IFEQ: return a == b;
    case Op::IFNE: return a != b;
    case Op::IFLT: return a < b;
    case Op::IFGE: return a >= b;
    case Op::IFGT: return a > b;
    case Op::IFLE: return a <= b;
    default: CGRA_UNREACHABLE("not a comparison op");
  }
}

std::int32_t evalArith(Op op, std::int32_t a, std::int32_t b) {
  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  switch (op) {
    case Op::MOVE: return a;
    case Op::IADD: return static_cast<std::int32_t>(ua + ub);
    case Op::ISUB: return static_cast<std::int32_t>(ua - ub);
    case Op::IMUL: return static_cast<std::int32_t>(ua * ub);
    case Op::INEG: return static_cast<std::int32_t>(0u - ua);
    case Op::IAND: return static_cast<std::int32_t>(ua & ub);
    case Op::IOR: return static_cast<std::int32_t>(ua | ub);
    case Op::IXOR: return static_cast<std::int32_t>(ua ^ ub);
    case Op::ISHL: return static_cast<std::int32_t>(ua << (ub & 31u));
    case Op::ISHR: return a >> (ub & 31);
    case Op::IUSHR: return static_cast<std::int32_t>(ua >> (ub & 31u));
    default: CGRA_UNREACHABLE("not an arithmetic op");
  }
}

}  // namespace cgra
