// Analytical FPGA resource and timing model for generated compositions.
//
// The paper reports Vivado synthesis results on a Virtex-7 XC7VX690 (Table
// II/III): LUT, LUT-as-memory, DSP and BRAM utilization plus the maximum
// clock frequency. We cannot run Vivado, so this model reproduces the
// *shapes* the paper demonstrates, calibrated against Table II:
//   * BRAM: one block per PE context memory plus one for C-Box/CCU
//     (Table II fits numPEs + 1 exactly for every composition).
//   * DSP: three DSP slices per multiplier-capable PE (Table II fits
//     3·multPEs exactly, including composition F's 75 % drop).
//   * LUT / LUT-memory: affine in PE count with an interconnect-mux term
//     (LUT-memory fits Table II within 1 %).
//   * Frequency: F0 / (1 + a·N + b·log2(RF entries) + d·fan-in), calibrated
//     so that 4→16 PEs degrades 103.6→86.9 MHz and shrinking the RF from
//     128 to 32 entries gains 7.2 % (both stated in §VI-B); single-cycle
//     multipliers lengthen the critical path (Table III).
// DESIGN.md records this substitution.
#pragma once

#include "arch/composition.hpp"

namespace cgra {

/// Device capacities of the paper's target FPGA (Virtex-7 XC7VX690T).
struct FpgaDevice {
  const char* name = "XC7VX690T";
  unsigned luts = 433200;
  unsigned lutram = 174200;
  unsigned dsps = 3600;
  unsigned bram36 = 1470;
};

/// Synthesis estimate for one composition.
struct ResourceEstimate {
  double lutLogic = 0;   ///< LUTs used as logic
  double lutMemory = 0;  ///< LUTs used as distributed memory (register files)
  unsigned dsp = 0;
  unsigned bram = 0;
  double frequencyMHz = 0;

  double lutLogicPct(const FpgaDevice& dev = {}) const {
    return 100.0 * lutLogic / dev.luts;
  }
  double lutMemoryPct(const FpgaDevice& dev = {}) const {
    return 100.0 * lutMemory / dev.lutram;
  }
  double dspPct(const FpgaDevice& dev = {}) const {
    return 100.0 * dsp / dev.dsps;
  }
  double bramPct(const FpgaDevice& dev = {}) const {
    return 100.0 * bram / dev.bram36;
  }
};

/// Estimates synthesis results for `comp` on the paper's Virtex-7 device.
ResourceEstimate estimateResources(const Composition& comp);

}  // namespace cgra
