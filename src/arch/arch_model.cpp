#include "arch/arch_model.hpp"

#include <atomic>
#include <mutex>

#include "support/sha256.hpp"

namespace cgra {

namespace {

/// Serializes slot creation and first builds across threads. Held only for
/// the duration of a lookup or build — every read of a built model is
/// lock-free through the returned shared_ptr.
std::mutex g_slotMutex;

std::atomic<std::uint64_t> g_builds{0};

}  // namespace

ArchModel ArchModel::build(const Composition& comp) {
  g_builds.fetch_add(1, std::memory_order_relaxed);

  const unsigned n = comp.numPEs();
  const Interconnect& ic = comp.interconnect();

  ArchModel model;
  model.ic_ = ic;
  model.digest_ = digestCompositionJson(comp.toJson().dump());
  model.cboxSlots = comp.cboxSlots();
  model.contextMemoryLength = comp.contextMemoryLength();

  model.sinks.assign(n, {});
  model.sources.assign(n, {});
  model.connectivity.assign(n, 0);
  model.reachCount.assign(n, 0);
  for (PEId from = 0; from < n; ++from) {
    model.sinks[from] = ic.sinks(from);
    model.sources[from] = ic.sources(from);
    model.connectivity[from] = static_cast<unsigned>(
        model.sources[from].size() + model.sinks[from].size());
    for (PEId to = 0; to < n; ++to)
      if (ic.distance(from, to) != kUnreachable) ++model.reachCount[from];
  }

  model.supportingPEs.assign(kNumOps, {});
  for (unsigned op = 0; op < kNumOps; ++op)
    model.supportingPEs[op] = comp.pesSupporting(static_cast<Op>(op));

  // Flattened via the descriptor's supports()/impl() so the tables carry
  // their full semantics: structural ops (NOP/MOVE/CONST) every PE decodes,
  // DMA ops gated on the DMA port, default latencies for ops a descriptor
  // supports without an explicit implementation entry.
  static_assert(kNumOps <= 64, "opSupportMask packs one bit per op");
  model.opSupportMask.assign(n, 0);
  model.opDurations.assign(static_cast<std::size_t>(n) * kNumOps, 0);
  for (PEId p = 0; p < n; ++p) {
    const PEDescriptor& pe = comp.pe(p);
    for (unsigned op = 0; op < kNumOps; ++op) {
      if (!pe.supports(static_cast<Op>(op))) continue;
      model.opSupportMask[p] |= std::uint64_t{1} << op;
      model.opDurations[p * kNumOps + op] =
          pe.impl(static_cast<Op>(op)).duration;
    }
  }

  model.peHasDma.assign(n, false);
  model.dmaPEs = comp.dmaPEs();
  for (PEId pe : model.dmaPEs) model.peHasDma[pe] = true;
  return model;
}

std::shared_ptr<const ArchModel> ArchModel::get(const Composition& comp) {
  std::lock_guard<std::mutex> lock(g_slotMutex);
  if (!comp.archModelSlot_)
    comp.archModelSlot_ = std::make_shared<detail::ArchModelSlot>();
  detail::ArchModelSlot& slot = *comp.archModelSlot_;
  if (!slot.model)
    slot.model = std::make_shared<const ArchModel>(build(comp));
  return slot.model;
}

std::uint64_t ArchModel::buildsPerformed() {
  return g_builds.load(std::memory_order_relaxed);
}

std::string ArchModel::digestCompositionJson(const std::string& compJson) {
  Sha256 h;
  h.update("comp:");
  h.updateU64(compJson.size());
  h.update(compJson);
  return h.hex();
}

}  // namespace cgra
