// Processing-element descriptor (paper Fig. 3 / Fig. 9).
//
// A PE descriptor names the PE type, gives its register-file size and the
// set of supported operations with per-implementation energy and duration
// (the same operation may be implemented differently in different PEs —
// e.g. a 2-cycle block multiplier vs. a 1-cycle multiplier). PEs may
// additionally carry a DMA interface into host heap memory; such PEs get a
// third RF read port for the index operand (paper §IV-A.1).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "arch/operation.hpp"
#include "json/json.hpp"

namespace cgra {

/// One implementation of an operation inside a PE.
struct OpImpl {
  double energy = 0.0;    ///< relative energy per execution
  unsigned duration = 1;  ///< latency in cycles (PE is busy the whole time)
};

/// Static description of one processing element.
class PEDescriptor {
public:
  PEDescriptor() = default;
  PEDescriptor(std::string name, unsigned regfileSize, bool hasDma)
      : name_(std::move(name)), regfileSize_(regfileSize), hasDma_(hasDma) {}

  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  unsigned regfileSize() const { return regfileSize_; }
  void setRegfileSize(unsigned n) { regfileSize_ = n; }

  bool hasDma() const { return hasDma_; }
  void setHasDma(bool v) { hasDma_ = v; }

  /// Registers an operation implementation (replacing any existing one).
  void addOp(Op op, OpImpl impl) { ops_[op] = impl; }
  void addOp(Op op) { ops_[op] = OpImpl{defaultEnergy(op), defaultDuration(op)}; }
  void removeOp(Op op) { ops_.erase(op); }

  bool supports(Op op) const;
  /// Implementation parameters; throws cgra::Error if unsupported.
  const OpImpl& impl(Op op) const;
  /// Latency of the op in this PE; throws if unsupported.
  unsigned duration(Op op) const { return impl(op).duration; }

  const std::map<Op, OpImpl>& ops() const { return ops_; }

  /// Serializes to the paper's Fig. 9 JSON shape.
  json::Value toJson() const;
  /// Parses a Fig. 9-shaped descriptor; throws cgra::Error on bad fields.
  static PEDescriptor fromJson(const json::Value& v);

  /// A PE supporting the full default integer + control-flow spectrum.
  /// `blockMultiplier` selects the paper's 2-cycle block IMUL (default) or a
  /// 1-cycle implementation (Table III variant).
  static PEDescriptor fullInteger(std::string name, unsigned regfileSize,
                                  bool hasDma, bool blockMultiplier = true);

private:
  std::string name_;
  unsigned regfileSize_ = 32;
  bool hasDma_ = false;
  std::map<Op, OpImpl> ops_;
};

}  // namespace cgra
