#include "arch/composition.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"
#include "support/dot.hpp"

namespace cgra {

Composition::Composition(std::string name, std::vector<PEDescriptor> pes,
                         Interconnect ic, unsigned contextMemoryLength,
                         unsigned cboxSlots)
    : name_(std::move(name)),
      pes_(std::move(pes)),
      ic_(std::move(ic)),
      contextMemoryLength_(contextMemoryLength),
      cboxSlots_(cboxSlots) {
  validate();
}

const PEDescriptor& Composition::pe(PEId id) const {
  CGRA_ASSERT(id < pes_.size());
  return pes_[id];
}

std::vector<PEId> Composition::dmaPEs() const {
  std::vector<PEId> out;
  for (PEId i = 0; i < numPEs(); ++i)
    if (pes_[i].hasDma()) out.push_back(i);
  return out;
}

std::vector<PEId> Composition::pesSupporting(Op op) const {
  std::vector<PEId> out;
  for (PEId i = 0; i < numPEs(); ++i)
    if (pes_[i].supports(op)) out.push_back(i);
  std::stable_sort(out.begin(), out.end(), [&](PEId a, PEId b) {
    return pes_[a].impl(op).energy < pes_[b].impl(op).energy;
  });
  return out;
}

void Composition::validate() const {
  if (pes_.empty()) throw Error("composition \"" + name_ + "\" has no PEs");
  if (ic_.numPEs() != numPEs())
    throw Error("composition \"" + name_ + "\": interconnect covers " +
                std::to_string(ic_.numPEs()) + " PEs, composition has " +
                std::to_string(numPEs()));
  if (contextMemoryLength_ == 0)
    throw Error("composition \"" + name_ + "\": context memory length is 0");
  if (cboxSlots_ < 2)
    throw Error("composition \"" + name_ + "\": C-Box needs at least 2 slots");
  // The paper allows up to four PEs with a DMA interface (§IV-A.1).
  if (dmaPEs().size() > 4)
    throw Error("composition \"" + name_ + "\": more than 4 DMA PEs");
  if (dmaPEs().empty())
    throw Error("composition \"" + name_ + "\": at least one DMA PE required");
  if (!ic_.stronglyConnected())
    throw Error("composition \"" + name_ + "\": interconnect is not strongly connected");
  for (const PEDescriptor& pe : pes_) {
    if (pe.regfileSize() < 4)
      throw Error("composition \"" + name_ + "\": PE \"" + pe.name() +
                  "\" register file too small");
    // An op-less PE can never host an operation or a route endpoint; such
    // descriptors are reachable via PEDescriptor::fromJson and via careless
    // mutation of op sets, so reject them here rather than failing deep in
    // the scheduler.
    if (pe.ops().empty())
      throw Error("composition \"" + name_ + "\": PE \"" + pe.name() +
                  "\" supports no operations");
  }
}

json::Value Composition::toJson() const {
  json::Object obj;
  obj["name"] = name_;
  obj["Number_of_PEs"] = static_cast<std::int64_t>(numPEs());
  json::Object peObj;
  for (PEId i = 0; i < numPEs(); ++i)
    peObj[std::to_string(i)] = pes_[i].toJson();
  obj["PEs"] = std::move(peObj);
  obj["Interconnect"] = ic_.toJson();
  obj["Context_memory_length"] = static_cast<std::int64_t>(contextMemoryLength_);
  obj["CBox_slots"] = static_cast<std::int64_t>(cboxSlots_);
  return obj;
}

Composition Composition::fromJson(const json::Value& v) {
  const json::Object& obj = v.asObject();
  const std::string name = obj.at("name").asString();
  const std::int64_t n = obj.at("Number_of_PEs").asInt();
  if (n <= 0 || n > 1024)
    throw Error("composition \"" + name + "\": Number_of_PEs out of range");

  std::vector<PEDescriptor> pes;
  const json::Object& peObj = obj.at("PEs").asObject();
  for (std::int64_t i = 0; i < n; ++i) {
    const json::Value* entry = peObj.find(std::to_string(i));
    if (!entry)
      throw Error("composition \"" + name + "\": missing PE " + std::to_string(i));
    pes.push_back(PEDescriptor::fromJson(*entry));
  }

  Interconnect ic = Interconnect::fromJson(obj.at("Interconnect"),
                                           static_cast<unsigned>(n));

  const std::int64_t ctx = obj.at("Context_memory_length").asInt();
  const std::int64_t cbox = obj.at("CBox_slots").asInt();
  if (ctx <= 0 || ctx > 1 << 20)
    throw Error("composition \"" + name + "\": Context_memory_length out of range");
  if (cbox <= 0 || cbox > 1 << 16)
    throw Error("composition \"" + name + "\": CBox_slots out of range");

  return Composition(name, std::move(pes), std::move(ic),
                     static_cast<unsigned>(ctx), static_cast<unsigned>(cbox));
}

Composition Composition::fromJsonFile(const std::string& path) {
  json::Value doc = json::parseFile(path);
  json::Object& obj = doc.asObject();

  // Directory of the composition file for relative references.
  const std::size_t slash = path.find_last_of('/');
  const std::string baseDir =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
  std::map<std::string, json::Value> cache;
  auto loadRef = [&](const std::string& ref) -> const json::Value& {
    const auto it = cache.find(ref);
    if (it != cache.end()) return it->second;
    const std::string full =
        ref.rfind('/', 0) == 0 ? ref : baseDir + ref;  // absolute or relative
    return cache.emplace(ref, json::parseFile(full)).first->second;
  };

  // Resolve PE references (paper Fig. 8: "0": "cgras/CGRA/SOME_PE.json").
  if (obj.contains("PEs")) {
    for (auto& [key, value] : obj["PEs"].asObject())
      if (value.isString()) value = loadRef(value.asString());
  }
  // Resolve the interconnect reference.
  if (const json::Value* ic = obj.find("Interconnect"); ic && ic->isString())
    obj["Interconnect"] = loadRef(ic->asString());

  return fromJson(doc);
}

std::string Composition::toDot() const {
  DotWriter dot(name_);
  for (PEId i = 0; i < numPEs(); ++i) {
    std::string label = "PE" + std::to_string(i);
    if (pes_[i].hasDma()) label += "\\nDMA";
    if (!pes_[i].supports(Op::IMUL)) label += "\\nno-MUL";
    dot.addNode("pe" + std::to_string(i), label,
                {{"shape", "box"},
                 {"style", pes_[i].hasDma() ? "filled" : "solid"},
                 {"fillcolor", "lightgrey"}});
  }
  for (PEId to = 0; to < numPEs(); ++to)
    for (PEId from : ic_.sources(to))
      dot.addEdge("pe" + std::to_string(from), "pe" + std::to_string(to));
  return dot.str();
}

}  // namespace cgra
