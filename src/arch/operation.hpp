// Operation set of the CGRA processing elements.
//
// The paper's PEs execute word-level integer and control-flow operations
// (Java-bytecode-flavoured names in the PE descriptor JSON, Fig. 9: IADD,
// ISUB, IMUL, IFGE, IFLT, NOP, ...). Floating point and division are
// explicitly out of scope ("currently only integer and control flow
// operations are supported, excluding division"); we define the same
// spectrum. Condition-producing operations (IF*) route their result to the
// C-Box as a status bit instead of writing the register file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace cgra {

/// Opcode of a PE ALU operation.
enum class Op : std::uint8_t {
  // No operation (PE idle this context).
  NOP,
  // Copy a routed or local value into the local RF (the scheduler's data
  // transport primitive).
  MOVE,
  // Load an immediate constant into the local RF.
  CONST,
  // Integer arithmetic.
  IADD,
  ISUB,
  IMUL,
  INEG,
  // Bitwise logic.
  IAND,
  IOR,
  IXOR,
  // Shifts (arithmetic right, logical right, left).
  ISHL,
  ISHR,
  IUSHR,
  // Comparisons producing a status bit for the C-Box. Semantics follow the
  // Java if<cond> bytecodes: the status is the *truth of the comparison*
  // between operand A and operand B.
  IFEQ,
  IFNE,
  IFLT,
  IFGE,
  IFGT,
  IFLE,
  // Direct-memory-access ops into host heap memory (arrays / object fields).
  // Operands: handle (base) and index; DMA_STORE additionally takes the data
  // value. Always predicated (paper §V-D).
  DMA_LOAD,
  DMA_STORE,
};

/// Number of distinct opcodes (for tables indexed by Op).
inline constexpr unsigned kNumOps = static_cast<unsigned>(Op::DMA_STORE) + 1;

/// True for comparison ops whose result is a status bit routed to the C-Box.
bool producesStatus(Op op);

/// True for DMA_LOAD / DMA_STORE.
bool isMemoryOp(Op op);

/// True when the op writes a result word into the local register file.
bool writesRegister(Op op);

/// Number of data operands the op consumes (excluding immediates).
unsigned operandCount(Op op);

/// Canonical descriptor-file spelling ("IADD", "IFGE", ...).
const char* opName(Op op);

/// Parses a descriptor-file spelling; nullopt when unknown.
std::optional<Op> opFromName(const std::string& name);

/// Default single-issue latency of the op in cycles (block multiplier: 2).
unsigned defaultDuration(Op op);

/// Default relative energy per execution (arbitrary units, from Fig. 9 scale).
double defaultEnergy(Op op);

/// Evaluates a two-operand comparison op; `a` is compared against `b`.
bool evalCompare(Op op, std::int32_t a, std::int32_t b);

/// Evaluates an arithmetic/logic op on 32-bit two's-complement words.
std::int32_t evalArith(Op op, std::int32_t a, std::int32_t b);

}  // namespace cgra
