#include "arch/pe.hpp"

#include "support/assert.hpp"

namespace cgra {

bool PEDescriptor::supports(Op op) const {
  if (isMemoryOp(op) && !hasDma_) return false;
  // NOP, MOVE and CONST are structural abilities of every PE (context
  // decode + RF write path), not ALU operators, so they are always present.
  if (op == Op::NOP || op == Op::MOVE || op == Op::CONST) return true;
  if (isMemoryOp(op)) return hasDma_;
  return ops_.contains(op);
}

const OpImpl& PEDescriptor::impl(Op op) const {
  if (auto it = ops_.find(op); it != ops_.end()) return it->second;
  if (supports(op)) {
    // Structural ops fall back to their defaults.
    static const OpImpl kMove{defaultEnergy(Op::MOVE), defaultDuration(Op::MOVE)};
    static const OpImpl kNop{defaultEnergy(Op::NOP), defaultDuration(Op::NOP)};
    static const OpImpl kConst{defaultEnergy(Op::CONST), defaultDuration(Op::CONST)};
    static const OpImpl kLoad{defaultEnergy(Op::DMA_LOAD), defaultDuration(Op::DMA_LOAD)};
    static const OpImpl kStore{defaultEnergy(Op::DMA_STORE), defaultDuration(Op::DMA_STORE)};
    switch (op) {
      case Op::MOVE: return kMove;
      case Op::NOP: return kNop;
      case Op::CONST: return kConst;
      case Op::DMA_LOAD: return kLoad;
      case Op::DMA_STORE: return kStore;
      default: break;
    }
  }
  throw Error("PE \"" + name_ + "\" does not support operation " + opName(op));
}

json::Value PEDescriptor::toJson() const {
  json::Object obj;
  obj["name"] = name_;
  obj["Regfile_size"] = static_cast<std::int64_t>(regfileSize_);
  obj["DMA"] = hasDma_;
  for (const auto& [op, impl] : ops_) {
    json::Object entry;
    entry["energy"] = impl.energy;
    entry["duration"] = static_cast<std::int64_t>(impl.duration);
    obj[opName(op)] = std::move(entry);
  }
  return obj;
}

PEDescriptor PEDescriptor::fromJson(const json::Value& v) {
  const json::Object& obj = v.asObject();
  PEDescriptor pe;
  pe.setName(obj.at("name").asString());
  const std::int64_t rf = obj.at("Regfile_size").asInt();
  if (rf <= 0 || rf > 4096)
    throw Error("PE \"" + pe.name() + "\": Regfile_size out of range");
  pe.setRegfileSize(static_cast<unsigned>(rf));
  if (const json::Value* dma = obj.find("DMA")) pe.setHasDma(dma->asBool());
  for (const auto& [key, value] : obj) {
    if (key == "name" || key == "Regfile_size" || key == "DMA") continue;
    const std::optional<Op> op = opFromName(key);
    if (!op) throw Error("PE \"" + pe.name() + "\": unknown operation \"" + key + '"');
    OpImpl impl;
    const json::Object& entry = value.asObject();
    impl.energy = entry.at("energy").asDouble();
    const std::int64_t dur = entry.at("duration").asInt();
    if (dur <= 0 || dur > 64)
      throw Error("PE \"" + pe.name() + "\": duration out of range for " + key);
    impl.duration = static_cast<unsigned>(dur);
    pe.addOp(*op, impl);
  }
  return pe;
}

PEDescriptor PEDescriptor::fullInteger(std::string name, unsigned regfileSize,
                                       bool hasDma, bool blockMultiplier) {
  PEDescriptor pe(std::move(name), regfileSize, hasDma);
  for (unsigned i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    if (op == Op::NOP || op == Op::MOVE || op == Op::CONST || isMemoryOp(op))
      continue;  // structural / DMA ops handled by supports()
    OpImpl impl{defaultEnergy(op), defaultDuration(op)};
    if (op == Op::IMUL && !blockMultiplier) impl.duration = 1;
    pe.addOp(op, impl);
  }
  return pe;
}

}  // namespace cgra
