// Immutable per-composition analysis bundle, built once and shared
// read-only by every scheduler layer.
//
// Everything the toolflow derives from the architecture alone lives here:
// the Floyd–Warshall distance/next-hop tables (via the interconnect copy),
// per-opcode candidate-PE lists, operand-accessibility tables (sources and
// sinks of each PE's register-file output port), DMA and C-Box capability
// summaries, and the memoized SHA-256 digest of the composition's canonical
// JSON (the composition contribution to every job key). The scheduler's
// passes take `(const ArchModel&, RunState&)`; the sweep engine, the
// artifact layers and `cgra-tool` all resolve their model through
// `ArchModel::get`, so a sweep of N kernels over one composition builds
// these analyses exactly once — the memoization ILP-based mappers apply to
// per-architecture connectivity tables, extended to the digest that the
// seed recomputed per job batch.
//
// Thread-safety: `get` memoizes into a slot stored inside the Composition
// (shared by copies — a composition is immutable after construction) under
// a global mutex; the returned model is deeply immutable and safe to read
// from any number of sweep threads without further locking.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/composition.hpp"

namespace cgra {

/// Immutable composition-derived lookup tables and capability summaries.
/// All fields are populated by build() and never mutated after; instances
/// are shared across threads as `shared_ptr<const ArchModel>`.
class ArchModel {
public:
  /// Per PE: the PEs that can read its output port, ascending id.
  std::vector<std::vector<PEId>> sinks;
  /// Per PE: the PEs whose output port it can read (operand accessibility).
  std::vector<std::vector<PEId>> sources;
  /// Per PE: |sources| + |sinks| (§V-G "the PE with more connections").
  std::vector<unsigned> connectivity;
  /// Per operation (indexed by static_cast<unsigned>(Op)): candidate PEs,
  /// cheapest-energy first — the placement pass probes them in this order.
  std::vector<std::vector<PEId>> supportingPEs;
  /// Per PE: bit `static_cast<unsigned>(op)` set iff the PE implements the
  /// op. The placement hot loop answers "can this PE run this op" with one
  /// shift instead of a std::map lookup in the PE descriptor.
  std::vector<std::uint64_t> opSupportMask;
  /// Flattened (PE × op) latency table, `opDurations[pe * kNumOps + op]`;
  /// 0 marks an unsupported pair (real latencies are ≥ 1).
  std::vector<unsigned> opDurations;
  /// Per PE: number of PEs it can reach (kUnreachable-free distance rows).
  std::vector<unsigned> reachCount;
  /// Per PE: whether it has a DMA interface (memory-capable, §IV-B).
  std::vector<bool> peHasDma;
  /// The DMA-capable PEs, ascending id (at most 4 per the paper).
  std::vector<PEId> dmaPEs;
  /// C-Box condition-slot budget of the composition.
  unsigned cboxSlots = 0;
  /// Context-memory depth (default schedule-length budget).
  unsigned contextMemoryLength = 0;

  unsigned numPEs() const { return static_cast<unsigned>(sinks.size()); }

  /// O(1) equivalent of `comp.pe(pe).supports(op)`.
  bool peSupports(PEId pe, Op op) const {
    return (opSupportMask[pe] >> static_cast<unsigned>(op)) & 1u;
  }

  /// O(1) latency of `op` on `pe`; 0 when the PE does not implement it
  /// (callers needing the descriptor's throwing contract fall back to
  /// `comp.pe(pe).impl(op)` on 0).
  unsigned opDuration(PEId pe, Op op) const {
    return opDurations[pe * kNumOps + static_cast<unsigned>(op)];
  }

  /// The composition's interconnect with its Floyd–Warshall distance and
  /// next-hop tables. A copy, not a reference: the model (shared through
  /// the memo slot by composition copies) may outlive the instance it was
  /// built from.
  const Interconnect& interconnect() const { return ic_; }

  /// Memoized SHA-256 of the composition's canonical JSON — the
  /// composition contribution to every schedule job key.
  const std::string& digest() const { return digest_; }

  /// Returns the composition's model, building it on first use. Copies of
  /// a composition share one cached model; distinct instances (even with
  /// equal content) build their own, mirroring identity-keyed caching.
  static std::shared_ptr<const ArchModel> get(const Composition& comp);

  /// Unconditional build (no memoization); exposed for tests and tools
  /// that want a private instance.
  static ArchModel build(const Composition& comp);

  /// Process-wide count of build() executions (memoized `get` hits do not
  /// count). Tests assert one build per composition per sweep with this.
  static std::uint64_t buildsPerformed();

  /// Canonical digest recipe over a serialized composition document
  /// (`comp.toJson().dump()`); `digest()` is this, memoized.
  static std::string digestCompositionJson(const std::string& compJson);

private:
  Interconnect ic_;
  std::string digest_;
};

namespace detail {
/// Memo slot lazily attached to a Composition by ArchModel::get.
struct ArchModelSlot {
  std::shared_ptr<const ArchModel> model;
};
}  // namespace detail

}  // namespace cgra
