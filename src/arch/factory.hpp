// Built-in composition factories reproducing the paper's evaluated CGRAs:
// the homogeneous meshes of Fig. 13 (4, 6, 8, 9, 12 and 16 PEs, grey PEs
// with DMA) and the irregular/inhomogeneous 8-PE compositions A–F of
// Fig. 14 (B: sparse interconnect, D: rich interconnect, F: like D but only
// two multiplier-capable PEs).
//
// The paper prints only small schematic drawings of the irregular
// topologies; the factories encode link sets that match every property the
// text states (B has "little interconnect", C/D/F rich and near-equal, E in
// between, F saves 75 % of the DSPs). DESIGN.md records this substitution.
#pragma once

#include <string>
#include <vector>

#include "arch/composition.hpp"

namespace cgra {

/// Options shared by all factory compositions.
struct FactoryOptions {
  unsigned regfileSize = 128;        ///< paper §VI-B: "RF size of 128"
  unsigned contextMemoryLength = 256;  ///< paper §VI-B: "context size of 256"
  unsigned cboxSlots = 32;
  bool blockMultiplier = true;  ///< 2-cycle IMUL (Table II) vs 1-cycle (Table III)
};

/// Rectangular mesh with bidirectional 4-neighbour links.
/// `numPEs` must be one of {4, 6, 8, 9, 12, 16} (Fig. 13); DMA PEs are
/// spread over the array like the grey PEs in the figure.
Composition makeMesh(unsigned numPEs, const FactoryOptions& opts = {});

/// Rows × cols mesh for arbitrary shapes (used by tests and ablations).
Composition makeMeshGrid(unsigned rows, unsigned cols,
                         const FactoryOptions& opts = {},
                         std::vector<PEId> dmaPEs = {});

/// Irregular 8-PE composition `which` ∈ {'A'..'F'} of Fig. 14.
Composition makeIrregular(char which, const FactoryOptions& opts = {});

/// Ring of `numPEs` (uni- or bidirectional links); minimal interconnect in
/// the style of composition B.
Composition makeRing(unsigned numPEs, bool bidirectional = true,
                     const FactoryOptions& opts = {});

/// Torus: mesh with wrap-around links in both dimensions.
Composition makeTorus(unsigned rows, unsigned cols,
                      const FactoryOptions& opts = {});

/// Star: one hub (PE 0, with DMA) bidirectionally linked to every spoke —
/// the crossbar-like extreme the related work discusses ([11]); cheap
/// routing, hub contention.
Composition makeStar(unsigned numPEs, const FactoryOptions& opts = {});

/// General builder over the named topology families, used by the
/// design-space explorer (src/explore) to materialize arbitrary points of a
/// CompositionSpace. `topology` ∈ {"mesh", "torus", "ring", "uniring",
/// "star"}; `rows`×`cols` PEs (ring/star treat the product as the PE
/// count); `dmaPEs` lists the DMA-capable PEs (required, ≤ 4 per the
/// paper); `mulPEs` restricts IMUL to the listed PEs (empty = all PEs
/// multiply). Throws a typed Error on any degenerate input — zero-PE
/// arrays, out-of-range DMA/MUL ids, torus smaller than 2×2, unknown
/// topology — and Composition::validate() re-checks the result, so a
/// returned Composition is always schedulable-shaped.
Composition makeTopology(const std::string& name, const std::string& topology,
                         unsigned rows, unsigned cols,
                         const FactoryOptions& opts,
                         const std::vector<PEId>& dmaPEs,
                         const std::vector<PEId>& mulPEs = {});

/// All Fig. 13 mesh sizes in paper order: {4, 6, 8, 9, 12, 16}.
const std::vector<unsigned>& meshSizes();

/// All Fig. 14 labels in paper order: {'A'..'F'}.
const std::vector<char>& irregularLabels();

}  // namespace cgra
