// Verilog generation (paper §IV-B, Fig. 7): a code generator emits one
// Verilog description per composition because a single generic description
// is unreasonable for irregular and inhomogeneous CGRAs.
//
// Mirroring the paper's split:
//  * variable structures — the per-PE modules (each supported operation is
//    realized separately in the ALU), and the top-level module whose
//    interconnect is an array of wires driven by each PE's output port and
//    selected by per-PE input multiplexers — are generated individually from
//    templates;
//  * static structures — CCU, context memory, register file and C-Box — are
//    parameterized modules emitted once.
//
// The output is self-consistent synthesizable-style RTL; we cannot run
// Vivado here, so the companion resource model (arch/resource_model.hpp)
// stands in for the synthesis numbers (see DESIGN.md).
#pragma once

#include <string>

#include "arch/composition.hpp"

namespace cgra {

/// Options controlling the emitted RTL.
struct VerilogOptions {
  unsigned dataWidth = 32;
  bool emitComments = true;
};

/// Generates the complete Verilog description of a composition: static
/// modules (ccu, context_memory, regfile, cbox) followed by one module per
/// PE and the top-level array module.
std::string generateVerilog(const Composition& comp,
                            const VerilogOptions& opts = {});

/// Rough structural statistics of generated RTL (used in tests/benches).
struct VerilogStats {
  std::size_t modules = 0;
  std::size_t lines = 0;
  std::size_t alwaysBlocks = 0;
};

VerilogStats analyzeVerilog(const std::string& rtl);

}  // namespace cgra
