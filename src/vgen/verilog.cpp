#include "vgen/verilog.hpp"

#include <sstream>

#include "support/bitvector.hpp"

namespace cgra {

namespace {

/// Emits the per-operation datapath statement of one ALU case arm.
std::string aluCaseArm(Op op, const std::string& a, const std::string& b) {
  switch (op) {
    case Op::MOVE: return a;
    case Op::CONST: return "imm";
    case Op::IADD: return a + " + " + b;
    case Op::ISUB: return a + " - " + b;
    case Op::IMUL: return a + " * " + b;
    case Op::INEG: return "-" + a;
    case Op::IAND: return a + " & " + b;
    case Op::IOR: return a + " | " + b;
    case Op::IXOR: return a + " ^ " + b;
    case Op::ISHL: return a + " << " + b + "[4:0]";
    case Op::ISHR: return "$signed(" + a + ") >>> " + b + "[4:0]";
    case Op::IUSHR: return a + " >> " + b + "[4:0]";
    default: return "32'h0";
  }
}

std::string statusCaseArm(Op op, const std::string& a, const std::string& b) {
  switch (op) {
    case Op::IFEQ: return a + " == " + b;
    case Op::IFNE: return a + " != " + b;
    case Op::IFLT: return "$signed(" + a + ") < $signed(" + b + ")";
    case Op::IFGE: return "$signed(" + a + ") >= $signed(" + b + ")";
    case Op::IFGT: return "$signed(" + a + ") > $signed(" + b + ")";
    case Op::IFLE: return "$signed(" + a + ") <= $signed(" + b + ")";
    default: return "1'b0";
  }
}

void emitStaticModules(std::ostringstream& os, const Composition& comp,
                       const VerilogOptions& opts) {
  const unsigned W = opts.dataWidth;
  const unsigned ctxAddrBits = bitsFor(comp.contextMemoryLength());
  const unsigned condAddrBits = bitsFor(comp.cboxSlots());

  if (opts.emitComments)
    os << "// ---- static structures: parameterized, shared by all "
          "compositions ----\n\n";

  // Context memory (one instance per PE plus C-Box and CCU streams).
  os << "module context_memory #(parameter WIDTH = 32, parameter DEPTH = "
     << comp.contextMemoryLength() << ") (\n"
     << "  input  wire                      clk,\n"
     << "  input  wire [" << ctxAddrBits - 1 << ":0]            ccnt,\n"
     << "  input  wire                      wr_en,\n"
     << "  input  wire [" << ctxAddrBits - 1 << ":0]            wr_addr,\n"
     << "  input  wire [WIDTH-1:0]          wr_data,\n"
     << "  output reg  [WIDTH-1:0]          context_word\n"
     << ");\n"
     << "  (* ram_style = \"block\" *) reg [WIDTH-1:0] mem [0:DEPTH-1];\n"
     << "  always @(posedge clk) begin\n"
     << "    if (wr_en) mem[wr_addr] <= wr_data;\n"
     << "    context_word <= mem[ccnt];\n"
     << "  end\n"
     << "endmodule\n\n";

  // Register file: two ALU read ports, one transfer output port, one
  // optional DMA index port (Fig. 3).
  os << "module regfile #(parameter ADDR = 7) (\n"
     << "  input  wire            clk,\n"
     << "  input  wire            wr_en,\n"
     << "  input  wire [ADDR-1:0] wr_addr,\n"
     << "  input  wire [" << W - 1 << ":0]     wr_data,\n"
     << "  input  wire [ADDR-1:0] rd_addr_a,\n"
     << "  input  wire [ADDR-1:0] rd_addr_b,\n"
     << "  input  wire [ADDR-1:0] rd_addr_out,\n"
     << "  input  wire [ADDR-1:0] rd_addr_idx,\n"
     << "  output wire [" << W - 1 << ":0]     rd_a,\n"
     << "  output wire [" << W - 1 << ":0]     rd_b,\n"
     << "  output wire [" << W - 1 << ":0]     rd_out,\n"
     << "  output wire [" << W - 1 << ":0]     rd_idx\n"
     << ");\n"
     << "  reg [" << W - 1 << ":0] mem [0:(1<<ADDR)-1];\n"
     << "  always @(posedge clk) if (wr_en) mem[wr_addr] <= wr_data;\n"
     << "  assign rd_a   = mem[rd_addr_a];\n"
     << "  assign rd_b   = mem[rd_addr_b];\n"
     << "  assign rd_out = mem[rd_addr_out];\n"
     << "  assign rd_idx = mem[rd_addr_idx];\n"
     << "endmodule\n\n";

  // C-Box (Fig. 4): one status input per cycle, condition memory with one
  // write and two stored-read ports, predication and branch outputs.
  os << "module cbox #(parameter SLOTS = " << comp.cboxSlots() << ") (\n"
     << "  input  wire                 clk,\n"
     << "  input  wire                 status,\n"
     << "  input  wire                 status_valid,\n"
     << "  input  wire                 in_a_stored,\n"
     << "  input  wire [" << condAddrBits - 1 << ":0]           addr_a,\n"
     << "  input  wire                 inv_a,\n"
     << "  input  wire                 use_b,\n"
     << "  input  wire [" << condAddrBits - 1 << ":0]           addr_b,\n"
     << "  input  wire                 inv_b,\n"
     << "  input  wire [1:0]           logic_op,\n"
     << "  input  wire                 wr_en,\n"
     << "  input  wire [" << condAddrBits - 1 << ":0]           addr_wr,\n"
     << "  input  wire [" << condAddrBits - 1 << ":0]           addr_pe,\n"
     << "  input  wire                 inv_pe,\n"
     << "  input  wire [" << condAddrBits - 1 << ":0]           addr_ctrl,\n"
     << "  input  wire                 inv_ctrl,\n"
     << "  output wire                 out_pe,\n"
     << "  output wire                 out_ctrl\n"
     << ");\n"
     << "  reg mem [0:SLOTS-1];\n"
     << "  wire a = (in_a_stored ? mem[addr_a] : (status & status_valid)) ^ inv_a;\n"
     << "  wire b = (mem[addr_b]) ^ inv_b;\n"
     << "  wire combined = (logic_op == 2'd0) ? a :\n"
     << "                  (logic_op == 2'd1) ? (a & (use_b ? b : 1'b1)) :\n"
     << "                                        (a | (use_b ? b : 1'b0));\n"
     << "  always @(posedge clk) if (wr_en) mem[addr_wr] <= combined;\n"
     << "  assign out_pe   = mem[addr_pe] ^ inv_pe;\n"
     << "  assign out_ctrl = mem[addr_ctrl] ^ inv_ctrl;\n"
     << "endmodule\n\n";

  // CCU (Fig. 5): incrementing context counter with conditional and
  // unconditional jumps; locks on the last context until re-initialized.
  os << "module ccu #(parameter ADDR = " << ctxAddrBits << ") (\n"
     << "  input  wire            clk,\n"
     << "  input  wire            rst,\n"
     << "  input  wire            run,\n"
     << "  input  wire [ADDR-1:0] start_ccnt,\n"
     << "  input  wire            branch_present,\n"
     << "  input  wire            branch_conditional,\n"
     << "  input  wire            branch_sel,\n"
     << "  input  wire [ADDR-1:0] branch_target,\n"
     << "  input  wire [ADDR-1:0] last_context,\n"
     << "  output reg  [ADDR-1:0] ccnt,\n"
     << "  output wire            done\n"
     << ");\n"
     << "  wire take = branch_present & (~branch_conditional | branch_sel);\n"
     << "  assign done = ccnt == last_context;\n"
     << "  always @(posedge clk) begin\n"
     << "    if (rst)            ccnt <= start_ccnt;\n"
     << "    else if (run & ~done) ccnt <= take ? branch_target : ccnt + 1'b1;\n"
     << "  end\n"
     << "endmodule\n\n";
}

void emitPeModule(std::ostringstream& os, const Composition& comp, PEId pe,
                  const VerilogOptions& opts) {
  const PEDescriptor& desc = comp.pe(pe);
  const unsigned W = opts.dataWidth;
  const unsigned rfAddr = bitsFor(desc.regfileSize());
  const auto& sources = comp.interconnect().sources(pe);
  const unsigned selBits = bitsFor(std::max<std::size_t>(1, sources.size()));

  if (opts.emitComments)
    os << "// ---- PE " << pe << " (" << desc.name() << "): "
       << (desc.hasDma() ? "with DMA, " : "") << desc.ops().size()
       << " operations, " << sources.size() << " input sources ----\n";

  os << "module pe" << pe << " (\n"
     << "  input  wire        clk,\n"
     << "  input  wire        rst,\n";
  for (unsigned i = 0; i < sources.size(); ++i)
    os << "  input  wire [" << W - 1 << ":0] in" << i << ",  // from PE "
       << sources[i] << "\n";
  os << "  input  wire [" << W - 1 << ":0] livein,\n"
     << "  input  wire        livein_valid,\n"
     << "  input  wire [" << rfAddr - 1 << ":0]  livein_addr,\n"
     << "  input  wire        pred,\n"
     << "  input  wire [63:0] context_word,\n";
  if (desc.hasDma())
    os << "  output wire [" << W - 1 << ":0] dma_addr,\n"
       << "  output wire [" << W - 1 << ":0] dma_wdata,\n"
       << "  output wire        dma_req,\n"
       << "  output wire        dma_we,\n"
       << "  input  wire [" << W - 1 << ":0] dma_rdata,\n"
       << "  input  wire        dma_ack,\n";
  os << "  output wire [" << W - 1 << ":0] rf_out,\n"
     << "  output wire [" << W - 1 << ":0] liveout,\n"
     << "  output wire        status\n"
     << ");\n";

  // Context decode (fields follow the bit-mask layout of the context
  // generator; see ctx/contexts.cpp).
  os << "  wire        op_present = context_word[0];\n"
     << "  wire [4:0]  opcode     = context_word[5:1];\n"
     << "  wire [1:0]  sel_kind_a = context_word[7:6];\n"
     << "  wire [" << selBits - 1 << ":0]  sel_src_a  = context_word["
     << 8 + selBits - 1 << ":8];\n"
     << "  wire [" << rfAddr - 1 << ":0]  rf_addr_a  = context_word["
     << 8 + selBits + rfAddr - 1 << ":" << 8 + selBits << "];\n"
     << "  // ... remaining operand/dest/pred fields decoded equivalently\n";

  // Input multiplexer over the source array (the interconnect is realized
  // in the top module as an array of wires; §IV-B).
  os << "  reg [" << W - 1 << ":0] route_a;\n"
     << "  always @(*) begin\n"
     << "    case (sel_src_a)\n";
  for (unsigned i = 0; i < sources.size(); ++i)
    os << "      " << selBits << "'d" << i << ": route_a = in" << i << ";\n";
  os << "      default: route_a = {" << W << "{1'b0}};\n"
     << "    endcase\n"
     << "  end\n";

  os << "  wire [" << W - 1 << ":0] rf_a, rf_b, rf_idx;\n"
     << "  wire [" << W - 1 << ":0] op_a = (sel_kind_a == 2'd2) ? route_a : rf_a;\n"
     << "  wire [" << W - 1 << ":0] op_b = rf_b;\n"
     << "  wire [" << W - 1 << ":0] imm  = context_word[63:32];\n";

  // ALU: each operation realized separately (the paper's generator cannot
  // express an inhomogeneous operator set with parameters).
  os << "  reg [" << W - 1 << ":0] alu_y;\n"
     << "  reg        alu_status;\n"
     << "  always @(*) begin\n"
     << "    alu_y = {" << W << "{1'b0}};\n"
     << "    alu_status = 1'b0;\n"
     << "    case (opcode)\n";
  for (unsigned opIdx = 0; opIdx < kNumOps; ++opIdx) {
    const Op op = static_cast<Op>(opIdx);
    if (!desc.supports(op) || op == Op::NOP || isMemoryOp(op)) continue;
    if (producesStatus(op))
      os << "      5'd" << opIdx << ": alu_status = "
         << statusCaseArm(op, "op_a", "op_b") << ";  // " << opName(op) << "\n";
    else
      os << "      5'd" << opIdx << ": alu_y = "
         << aluCaseArm(op, "op_a", "op_b") << ";  // " << opName(op) << "\n";
  }
  os << "      default: ;\n"
     << "    endcase\n"
     << "  end\n";

  if (desc.hasDma())
    os << "  assign dma_req   = op_present & (opcode == 5'd"
       << static_cast<unsigned>(Op::DMA_LOAD) << " || opcode == 5'd"
       << static_cast<unsigned>(Op::DMA_STORE) << ") & pred;\n"
       << "  assign dma_we    = opcode == 5'd"
       << static_cast<unsigned>(Op::DMA_STORE) << ";\n"
       << "  assign dma_addr  = op_a + rf_idx;\n"
       << "  assign dma_wdata = op_b;\n";

  // Register file instance: write enable optionally gated by the C-Box
  // predication output (§IV-A.2).
  os << "  wire rf_we = op_present & pred"
     << (desc.hasDma() ? " & ~dma_req | (dma_ack & ~dma_we)" : "") << ";\n"
     << "  wire [" << W - 1 << ":0] wr_data = livein_valid ? livein : "
     << (desc.hasDma() ? "(dma_ack ? dma_rdata : alu_y)" : "alu_y") << ";\n"
     << "  regfile #(.ADDR(" << rfAddr << ")) rf (\n"
     << "    .clk(clk), .wr_en(rf_we | livein_valid),\n"
     << "    .wr_addr(livein_valid ? livein_addr : context_word["
     << 8 + selBits + rfAddr << "+:" << rfAddr << "]),\n"
     << "    .wr_data(wr_data),\n"
     << "    .rd_addr_a(rf_addr_a), .rd_addr_b(rf_addr_a), .rd_addr_out(rf_addr_a), .rd_addr_idx(rf_addr_a),\n"
     << "    .rd_a(rf_a), .rd_b(rf_b), .rd_out(rf_out), .rd_idx(rf_idx));\n"
     << "  assign liveout = rf_out;\n"
     << "  assign status  = alu_status;\n"
     << "endmodule\n\n";
}

void emitTopModule(std::ostringstream& os, const Composition& comp,
                   const VerilogOptions& opts) {
  const unsigned W = opts.dataWidth;
  const unsigned n = comp.numPEs();
  const unsigned ctxAddrBits = bitsFor(comp.contextMemoryLength());

  if (opts.emitComments)
    os << "// ---- top level: interconnect as an array of wires (§IV-B) ----\n";
  os << "module " << comp.name() << "_top (\n"
     << "  input  wire clk,\n"
     << "  input  wire rst,\n"
     << "  input  wire run,\n"
     << "  input  wire [" << ctxAddrBits - 1 << ":0] start_ccnt,\n"
     << "  output wire done\n"
     << ");\n"
     << "  wire [" << W - 1 << ":0] rf_out [0:" << n - 1 << "];\n"
     << "  wire status [0:" << n - 1 << "];\n"
     << "  wire [" << ctxAddrBits - 1 << ":0] ccnt;\n"
     << "  wire out_pe, out_ctrl;\n";

  for (PEId p = 0; p < n; ++p) {
    const auto& sources = comp.interconnect().sources(p);
    os << "  wire [63:0] ctx" << p << ";\n"
       << "  context_memory #(.WIDTH(64)) cm" << p
       << " (.clk(clk), .ccnt(ccnt), .wr_en(1'b0), .wr_addr(" << ctxAddrBits
       << "'d0), .wr_data(64'd0), .context_word(ctx" << p << "));\n"
       << "  pe" << p << " u_pe" << p << " (.clk(clk), .rst(rst),\n    ";
    for (unsigned i = 0; i < sources.size(); ++i)
      os << ".in" << i << "(rf_out[" << sources[i] << "]), ";
    os << "\n    .livein({" << W << "{1'b0}}), .livein_valid(1'b0), "
       << ".livein_addr('d0), .pred(out_pe),\n"
       << "    .context_word(ctx" << p << "),";
    if (comp.pe(p).hasDma())
      os << " .dma_addr(), .dma_wdata(), .dma_req(), .dma_we(), "
         << ".dma_rdata({" << W << "{1'b0}}), .dma_ack(1'b0),";
    os << "\n    .rf_out(rf_out[" << p << "]), .liveout(), .status(status["
       << p << "]));\n";
  }

  // Status selection into the C-Box (one status per cycle, Fig. 5).
  os << "  wire [63:0] ctx_cbox;\n"
     << "  context_memory #(.WIDTH(64)) cm_cbox (.clk(clk), .ccnt(ccnt), "
        ".wr_en(1'b0), .wr_addr('d0), .wr_data(64'd0), "
        ".context_word(ctx_cbox));\n"
     << "  reg status_mux;\n"
     << "  always @(*) begin\n"
     << "    case (ctx_cbox[" << bitsFor(n) + 1 << ":2])\n";
  for (PEId p = 0; p < n; ++p)
    os << "      " << bitsFor(n) << "'d" << p << ": status_mux = status[" << p
       << "];\n";
  os << "      default: status_mux = 1'b0;\n"
     << "    endcase\n"
     << "  end\n"
     << "  cbox u_cbox (.clk(clk), .status(status_mux), "
        ".status_valid(ctx_cbox[0]),\n"
     << "    .in_a_stored(ctx_cbox[1]), .addr_a('d0), .inv_a(1'b0), "
        ".use_b(1'b0), .addr_b('d0), .inv_b(1'b0),\n"
     << "    .logic_op(2'd0), .wr_en(ctx_cbox[0]), .addr_wr('d0), "
        ".addr_pe('d0), .inv_pe(1'b0), .addr_ctrl('d0), .inv_ctrl(1'b0),\n"
     << "    .out_pe(out_pe), .out_ctrl(out_ctrl));\n";

  os << "  wire [63:0] ctx_ccu;\n"
     << "  context_memory #(.WIDTH(64)) cm_ccu (.clk(clk), .ccnt(ccnt), "
        ".wr_en(1'b0), .wr_addr('d0), .wr_data(64'd0), "
        ".context_word(ctx_ccu));\n"
     << "  ccu u_ccu (.clk(clk), .rst(rst), .run(run), "
        ".start_ccnt(start_ccnt),\n"
     << "    .branch_present(ctx_ccu[0]), .branch_conditional(ctx_ccu[1]), "
        ".branch_sel(out_ctrl),\n"
     << "    .branch_target(ctx_ccu[2+:" << ctxAddrBits << "]), "
        ".last_context({" << ctxAddrBits << "{1'b1}}), .ccnt(ccnt), "
        ".done(done));\n"
     << "endmodule\n";
}

}  // namespace

std::string generateVerilog(const Composition& comp,
                            const VerilogOptions& opts) {
  std::ostringstream os;
  if (opts.emitComments)
    os << "// Generated CGRA composition \"" << comp.name() << "\": "
       << comp.numPEs() << " PEs, " << comp.interconnect().numLinks()
       << " links, context depth " << comp.contextMemoryLength()
       << ", C-Box slots " << comp.cboxSlots() << "\n"
       << "// Generator: cgra-scheduler reproduction (IPDPSW'16 toolflow)\n\n";
  emitStaticModules(os, comp, opts);
  for (PEId p = 0; p < comp.numPEs(); ++p) emitPeModule(os, comp, p, opts);
  emitTopModule(os, comp, opts);
  return os.str();
}

VerilogStats analyzeVerilog(const std::string& rtl) {
  VerilogStats stats;
  std::istringstream in(rtl);
  std::string line;
  while (std::getline(in, line)) {
    ++stats.lines;
    if (line.rfind("module ", 0) == 0) ++stats.modules;
    if (line.find("always @") != std::string::npos) ++stats.alwaysBlocks;
  }
  return stats;
}

}  // namespace cgra
