// Fixed-footprint latency histogram for the compile service's live metrics
// (DESIGN.md §12).
//
// Samples are microseconds bucketed by bit width (bucket i covers
// [2^i, 2^(i+1)) µs, bucket 0 covers 0–1 µs), so recording is O(1), the
// whole structure is a few hundred bytes, and it never allocates — safe to
// update under the service's stats mutex on every request. Quantiles are
// estimated by linear interpolation inside the containing bucket, which is
// exact enough for p50/p99 service-latency reporting (the error is bounded
// by one bucket's width) and, unlike a reservoir, never degrades under
// millions of samples.
#pragma once

#include <array>
#include <cstdint>

namespace cgra {

class LatencyHistogram {
public:
  static constexpr std::size_t kBuckets = 40;  ///< covers up to ~2^40 µs

  void record(std::uint64_t us) {
    ++buckets_[bucketFor(us)];
    ++count_;
    sumUs_ += us;
    if (us > maxUs_) maxUs_ = us;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t maxUs() const { return maxUs_; }
  double meanUs() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sumUs_) /
                             static_cast<double>(count_);
  }

  /// Estimated value at quantile `q` in [0, 1]: the sample rank is located
  /// in its bucket and interpolated linearly across the bucket's span.
  double quantileUs(double q) const {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based; q=0 maps to the first sample.
    const double rank = q * static_cast<double>(count_ - 1) + 1.0;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      const std::uint64_t lo = i == 0 ? 0 : (1ull << i);
      const std::uint64_t hi = (1ull << (i + 1)) - 1;
      if (rank <= static_cast<double>(seen + buckets_[i])) {
        const double within =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(buckets_[i]);
        double v = static_cast<double>(lo) +
                   within * static_cast<double>(hi - lo);
        const double cap = static_cast<double>(maxUs_);
        return v > cap ? cap : v;
      }
      seen += buckets_[i];
    }
    return static_cast<double>(maxUs_);
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sumUs_ += other.sumUs_;
    if (other.maxUs_ > maxUs_) maxUs_ = other.maxUs_;
  }

private:
  static std::size_t bucketFor(std::uint64_t us) {
    std::size_t b = 0;
    while (us > 1 && b + 1 < kBuckets) {
      us >>= 1;
      ++b;
    }
    return b;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sumUs_ = 0;
  std::uint64_t maxUs_ = 0;
};

}  // namespace cgra
