// Deterministic pseudo-random generator (xoshiro256**) for workload
// generation and property-test sweeps. std::mt19937 would also work, but a
// self-contained generator guarantees identical streams across standard
// library implementations, which keeps golden benchmark inputs stable.
#pragma once

#include <cstdint>

namespace cgra {

/// Deterministic 64-bit PRNG (xoshiro256**), seedable and copyable.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform 32-bit signed value.
  std::int32_t nextI32() { return static_cast<std::int32_t>(next()); }

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return next() % den < num; }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace cgra
