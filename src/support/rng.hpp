// Deterministic pseudo-random generator (xoshiro256**) for workload
// generation, property-test sweeps and the design-space explorer.
// std::mt19937 would also work, but a self-contained generator guarantees
// identical streams across standard library implementations, which keeps
// golden benchmark inputs and Pareto fronts stable.
//
// Seeding convention: every randomized path in the repo derives its stream
// from one user-visible seed through `splitmix64`/`deriveSeed`. Purposes
// (workload data, random kernels, explore search) get distinct stream ids,
// so one `--seed` flag governs them all without the streams aliasing.
#pragma once

#include <cstdint>

namespace cgra {

/// One SplitMix64 step: advances `state` and returns the stream's next
/// value. This is the repo-wide seeding primitive — Rng's state expansion
/// and deriveSeed() below both route through it.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Derives the seed of a named sub-stream from one user seed. Distinct
/// `streamId`s yield statistically independent streams, so `--seed 42`
/// can feed workload-input data, random-kernel generation and the explore
/// search loop without correlation between them.
inline std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t streamId) {
  std::uint64_t state = seed ^ (streamId * 0xBF58476D1CE4E5B9ull);
  return splitmix64(state);
}

/// Deterministic 64-bit PRNG (xoshiro256**), seedable and copyable.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    for (auto& word : s_) word = splitmix64(seed);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform 32-bit signed value.
  std::int32_t nextI32() { return static_cast<std::int32_t>(next()); }

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return next() % den < num; }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace cgra
