// Small-buffer vector for the scheduler's per-node location lists.
//
// Value-location lists (nodeLocs / varCopies / constLocs) are overwhelmingly
// short — one result register plus at most a few routed copies — yet the
// seed kept each in a std::vector, so every scheduled node paid a heap
// allocation on its first location and the probe hot loop churned the
// allocator. SmallVector keeps the first N elements inline and only spills
// to the heap past that, preserving the exact subset of the std::vector API
// the passes use.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace cgra {

/// Vector with inline storage for the first `N` elements. Requires `T` to
/// be default-constructible and copyable (Location is a POD). Not a general
/// container: only the operations the scheduler passes need are provided.
template <typename T, std::size_t N>
class SmallVector {
public:
  SmallVector() = default;

  void push_back(const T& v) {
    if (!spilled_) {
      if (size_ < N) {
        inline_[size_++] = v;
        return;
      }
      spill();
    }
    heap_.push_back(v);
  }

  void pop_back() {
    CGRA_ASSERT(!empty());
    if (spilled_)
      heap_.pop_back();
    else
      --size_;
  }

  void clear() {
    heap_.clear();
    spilled_ = false;
    size_ = 0;
  }

  std::size_t size() const { return spilled_ ? heap_.size() : size_; }
  bool empty() const { return size() == 0; }

  T* begin() { return spilled_ ? heap_.data() : inline_.data(); }
  T* end() { return begin() + size(); }
  const T* begin() const { return spilled_ ? heap_.data() : inline_.data(); }
  const T* end() const { return begin() + size(); }

  T& operator[](std::size_t i) { return begin()[i]; }
  const T& operator[](std::size_t i) const { return begin()[i]; }
  T& back() { return begin()[size() - 1]; }
  const T& back() const { return begin()[size() - 1]; }

private:
  void spill() {
    heap_.reserve(2 * N);
    heap_.assign(inline_.begin(), inline_.begin() + size_);
    spilled_ = true;
    size_ = 0;
  }

  std::array<T, N> inline_{};
  std::size_t size_ = 0;
  bool spilled_ = false;
  std::vector<T> heap_;
};

}  // namespace cgra
