// Process-wide telemetry primitives (DESIGN.md §13): named atomic counters,
// gauges, and mergeable log2 histograms collected in a `MetricsRegistry`
// with Prometheus-style text exposition.
//
// Two histogram flavours share one bucket layout (bucket i covers
// [2^i, 2^(i+1)) µs, bucket 0 covers 0–1 µs, 40 buckets ≈ 2^40 µs):
//
//  - `Log2Histogram` is the plain single-writer structure (the former
//    `LatencyHistogram`): O(1) record, a few hundred bytes, never allocates,
//    mergeable across threads that each own a local copy. Quantiles are
//    estimated by linear interpolation inside the containing bucket —
//    exact enough for p50/p99 reporting and, unlike a reservoir, never
//    degrades under millions of samples.
//  - `AtomicHistogram` is the shared multi-writer flavour: every field is a
//    relaxed atomic so hot paths record without taking any lock, and
//    `snapshot()` materialises a `Log2Histogram` for quantile queries.
//    Snapshots are racy-consistent (fields are read independently), which
//    is the standard contract for scrape-style metrics.
//
// The registry hands out stable references (deque-backed) so callers can
// cache `Counter&`/`AtomicHistogram&` at setup and record lock-free
// forever after; registration itself is mutex-guarded and idempotent by
// name.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace cgra {

class Log2Histogram {
public:
  static constexpr std::size_t kBuckets = 40;  ///< covers up to ~2^40 µs

  void record(std::uint64_t us) {
    ++buckets_[bucketFor(us)];
    ++count_;
    sumUs_ += us;
    if (us > maxUs_) maxUs_ = us;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t maxUs() const { return maxUs_; }
  std::uint64_t sumUs() const { return sumUs_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  double meanUs() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sumUs_) /
                             static_cast<double>(count_);
  }

  /// Estimated value at quantile `q` in [0, 1]: the sample rank is located
  /// in its bucket and interpolated linearly across the bucket's span.
  double quantileUs(double q) const {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based; q=0 maps to the first sample.
    const double rank = q * static_cast<double>(count_ - 1) + 1.0;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      const std::uint64_t lo = i == 0 ? 0 : (1ull << i);
      const std::uint64_t hi = (1ull << (i + 1)) - 1;
      if (rank <= static_cast<double>(seen + buckets_[i])) {
        const double within =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(buckets_[i]);
        double v = static_cast<double>(lo) +
                   within * static_cast<double>(hi - lo);
        const double cap = static_cast<double>(maxUs_);
        return v > cap ? cap : v;
      }
      seen += buckets_[i];
    }
    return static_cast<double>(maxUs_);
  }

  void merge(const Log2Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sumUs_ += other.sumUs_;
    if (other.maxUs_ > maxUs_) maxUs_ = other.maxUs_;
  }

  static std::size_t bucketFor(std::uint64_t us) {
    std::size_t b = 0;
    while (us > 1 && b + 1 < kBuckets) {
      us >>= 1;
      ++b;
    }
    return b;
  }

private:
  friend class AtomicHistogram;  // snapshot() bulk-loads bucket images

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sumUs_ = 0;
  std::uint64_t maxUs_ = 0;
};

/// Transitional alias: `LatencyHistogram` was the pre-registry name for the
/// single-writer log2 histogram; existing call sites keep compiling.
using LatencyHistogram = Log2Histogram;

/// Multi-writer histogram: record() is lock-free (relaxed atomics), safe to
/// call concurrently from every worker thread on every request.
class AtomicHistogram {
public:
  void record(std::uint64_t us) {
    buckets_[Log2Histogram::bucketFor(us)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumUs_.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t prev = maxUs_.load(std::memory_order_relaxed);
    while (prev < us && !maxUs_.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Racy-consistent copy for quantile queries and exposition: each field
  /// is read independently with relaxed loads, so a snapshot taken during
  /// concurrent record() calls may be off by in-flight samples but is
  /// always a valid histogram.
  Log2Histogram snapshot() const {
    Log2Histogram out;
    std::uint64_t bucketTotal = 0;
    for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      out.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
      bucketTotal += out.buckets_[i];
    }
    // Keep count consistent with the bucket image we actually read (the
    // independent count_ cell may be ahead or behind by in-flight records).
    out.count_ = bucketTotal;
    out.sumUs_ = sumUs_.load(std::memory_order_relaxed);
    out.maxUs_ = maxUs_.load(std::memory_order_relaxed);
    return out;
  }

private:
  std::array<std::atomic<std::uint64_t>, Log2Histogram::kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sumUs_{0};
  std::atomic<std::uint64_t> maxUs_{0};
};

class Counter {
public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> v_{0};
};

/// Named metric registry with Prometheus text exposition. Registration is
/// mutex-guarded and idempotent by name; returned references stay valid for
/// the registry's lifetime (deque storage), so hot paths cache them once.
class MetricsRegistry {
public:
  Counter& counter(const std::string& name, const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : counters_)
      if (e.name == name) return e.metric;
    counters_.emplace_back(name, help);
    return counters_.back().metric;
  }

  Gauge& gauge(const std::string& name, const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : gauges_)
      if (e.name == name) return e.metric;
    gauges_.emplace_back(name, help);
    return gauges_.back().metric;
  }

  AtomicHistogram& histogram(const std::string& name,
                             const std::string& help) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& e : histograms_)
      if (e.name == name) return e.metric;
    histograms_.emplace_back(name, help);
    return histograms_.back().metric;
  }

  /// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
  /// preamble per metric; histograms expand to cumulative `_bucket{le=...}`
  /// series plus `_sum` and `_count`. Empty trailing buckets are elided
  /// (only buckets up to the highest populated one, then `+Inf`).
  std::string renderPrometheus() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    for (const auto& e : counters_) {
      out << "# HELP " << e.name << ' ' << e.help << '\n';
      out << "# TYPE " << e.name << " counter\n";
      out << e.name << ' ' << e.metric.value() << '\n';
    }
    for (const auto& e : gauges_) {
      out << "# HELP " << e.name << ' ' << e.help << '\n';
      out << "# TYPE " << e.name << " gauge\n";
      out << e.name << ' ' << e.metric.value() << '\n';
    }
    for (const auto& e : histograms_) {
      const Log2Histogram snap = e.metric.snapshot();
      out << "# HELP " << e.name << ' ' << e.help << '\n';
      out << "# TYPE " << e.name << " histogram\n";
      std::size_t top = 0;
      for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i)
        if (snap.bucket(i) != 0) top = i;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= top; ++i) {
        cumulative += snap.bucket(i);
        out << e.name << "_bucket{le=\"" << ((1ull << (i + 1)) - 1) << "\"} "
            << cumulative << '\n';
      }
      out << e.name << "_bucket{le=\"+Inf\"} " << snap.count() << '\n';
      out << e.name << "_sum " << snap.sumUs() << '\n';
      out << e.name << "_count " << snap.count() << '\n';
    }
    return out.str();
  }

private:
  template <typename M>
  struct Entry {
    // In-place constructible: atomic-backed metrics are non-copyable, so
    // the deque must emplace entries rather than push temporaries.
    Entry(std::string n, std::string h)
        : name(std::move(n)), help(std::move(h)) {}
    std::string name;
    std::string help;
    M metric;
  };

  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<AtomicHistogram>> histograms_;
};

}  // namespace cgra
