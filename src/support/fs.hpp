// Filesystem helpers shared by the artifact store and cgra-tool: atomic
// file publication and fail-fast writability probes.
//
// The artifact cache is written concurrently by sweep worker threads (and
// potentially by several processes sharing one cache directory). POSIX
// rename(2) within one filesystem is atomic, so "write to a unique temp
// name, then rename onto the final name" guarantees readers only ever see
// complete files; when two writers race on one content-addressed key the
// contents are identical and the last rename wins harmlessly.
#pragma once

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "support/assert.hpp"

namespace cgra::fs {

/// Process-wide unique suffix for temp names: thread id hash + a counter.
/// Uniqueness matters across threads *and* across processes sharing one
/// cache directory, so the thread-id hash is mixed with this_process's
/// address-space entropy (the counter's address).
inline std::string uniqueTempSuffix() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::uint64_t pid =
      reinterpret_cast<std::uintptr_t>(&counter) ^ (tid << 1);
  return std::to_string(pid % 0xffffffu) + "." + std::to_string(n);
}

/// Writes `content` to `path` atomically: the data lands under a unique
/// temporary name in the destination directory first and is renamed onto
/// `path` only after a successful close. Concurrent writers of the same
/// path never interleave bytes; readers never observe a partial file.
/// Throws cgra::Error when the directory is missing or not writable.
inline void atomicWriteFile(const std::string& path,
                            const std::string& content) {
  namespace sfs = std::filesystem;
  const sfs::path target(path);
  const sfs::path tmp =
      target.parent_path() /
      (target.filename().string() + ".tmp." + uniqueTempSuffix());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot write " + tmp.string());
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      sfs::remove(tmp, ec);
      throw Error("failed writing " + tmp.string());
    }
  }
  std::error_code ec;
  sfs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ec2;
    sfs::remove(tmp, ec2);
    throw Error("cannot publish " + path + ": " + ec.message());
  }
}

/// Creates `dir` (and parents) if needed and proves it is writable by
/// atomically creating and removing a probe file. Throws cgra::Error with a
/// message naming the directory and the failing step, so cgra-tool can fail
/// fast *before* hours of scheduling work instead of at the final write.
inline void ensureWritableDir(const std::string& dir) {
  namespace sfs = std::filesystem;
  std::error_code ec;
  sfs::create_directories(dir, ec);
  if (ec)
    throw Error("directory " + dir + " cannot be created: " + ec.message());
  if (!sfs::is_directory(dir, ec))
    throw Error(dir + " is not a directory");
  const sfs::path probe =
      sfs::path(dir) / (".cgra-probe." + uniqueTempSuffix());
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("directory " + dir + " is not writable");
  }
  sfs::remove(probe, ec);
}

/// Proves the *parent directory* of an output file path is writable (the
/// file itself need not exist yet). Empty parent means the cwd.
inline void ensureWritableParent(const std::string& filePath) {
  namespace sfs = std::filesystem;
  const sfs::path parent = sfs::path(filePath).parent_path();
  ensureWritableDir(parent.empty() ? std::string(".") : parent.string());
}

}  // namespace cgra::fs
