// Minimal fixed-size worker pool for the composition-sweep engine.
//
// Many-config exploration (synthesis candidates × kernels, bench sweeps) is
// embarrassingly parallel: each scheduling run is independent and pure. The
// pool runs submitted tasks on N std::threads; `wait()` blocks until every
// submitted task has finished. Tasks must not throw — callers that can fail
// capture their own errors (the sweep engine stores per-job error strings).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace cgra {

class ThreadPool {
public:
  /// `numThreads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned numThreads = 0) {
    if (numThreads == 0) numThreads = defaultThreads();
    workers_.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
      workers_.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  static unsigned defaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// Enqueues a task; it may start immediately on an idle worker.
  void submit(std::function<void()> task) {
    CGRA_ASSERT(task != nullptr);
    {
      std::unique_lock<std::mutex> lock(mu_);
      CGRA_ASSERT_MSG(!stopping_, "submit after shutdown");
      queue_.push_back(std::move(task));
      ++pending_;
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted task has completed.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, n) across `threads` workers (0 = hardware
/// concurrency; 1 runs inline without spawning). Blocks until all complete.
template <typename Fn>
void parallelFor(std::size_t n, unsigned threads, Fn&& fn) {
  if (threads == 0) threads = ThreadPool::defaultThreads();
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  const unsigned spawned = static_cast<unsigned>(
      std::min<std::size_t>(n, threads));
  for (unsigned w = 0; w < spawned; ++w)
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1))
        fn(i);
    });
  pool.wait();
}

}  // namespace cgra
