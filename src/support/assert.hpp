// Assertion and error-reporting primitives shared by all cgra modules.
//
// Two failure categories are distinguished:
//   * CGRA_ASSERT / CGRA_UNREACHABLE guard internal invariants. A violated
//     invariant is a bug in this library, so it throws InternalError with
//     file/line context (throwing instead of aborting keeps failures testable).
//   * cgra::Error is for malformed *user* input: unparsable JSON, compositions
//     that reference unknown PEs, kernels the target composition cannot
//     execute, and so on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cgra {

/// Error caused by invalid user input (bad descriptions, unmappable kernels).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error caused by a violated internal invariant (a library bug).
class InternalError : public std::logic_error {
public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void assertFail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace cgra

#define CGRA_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::cgra::detail::assertFail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define CGRA_ASSERT_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream cgra_assert_os;                               \
      cgra_assert_os << msg;                                           \
      ::cgra::detail::assertFail(#expr, __FILE__, __LINE__,            \
                                 cgra_assert_os.str());                \
    }                                                                  \
  } while (false)

#define CGRA_UNREACHABLE(msg) \
  ::cgra::detail::assertFail("unreachable", __FILE__, __LINE__, msg)
