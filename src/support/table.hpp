// Plain-text table formatter for benchmark harnesses: every bench binary
// prints the same row/column layout as the paper's tables, which makes the
// paper-vs-measured comparison in EXPERIMENTS.md mechanical.
#pragma once

#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace cgra {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto printRow = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        os << "| " << std::left << std::setw(static_cast<int>(widths[i]))
           << (i < row.size() ? row[i] : std::string()) << ' ';
      }
      os << "|\n";
    };
    printRow(header_);
    for (std::size_t i = 0; i < widths.size(); ++i)
      os << "|-" << std::string(widths[i], '-') << '-';
    os << "|\n";
    for (const auto& r : rows_) printRow(r);
  }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` fractional digits.
inline std::string fmt(double v, int prec = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

/// Formats a cycle count as "123.4k" like the paper's tables.
inline std::string fmtKilo(std::uint64_t cycles) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << static_cast<double>(cycles) / 1000.0 << 'k';
  return os.str();
}

}  // namespace cgra
