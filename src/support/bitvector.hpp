// Dynamic bit vector plus sequential bit-field packer/reader.
//
// Context memories in the generated CGRA are bit-mask packed (paper §IV-B:
// "to minimize the width of each context, a bit-mask is created for each
// context"). BitPacker/BitReader implement the field-by-field encoding that
// the context generator and the context-level simulator share, so an
// encode/decode round trip is testable bit-exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace cgra {

/// Growable vector of bits with word-level storage.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(std::size_t size, bool value = false)
      : size_(size), words_((size + 63) / 64, value ? ~0ull : 0ull) {
    trimTail();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    CGRA_ASSERT(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i, bool v) {
    CGRA_ASSERT(i < size_);
    const std::uint64_t mask = 1ull << (i % 64);
    if (v)
      words_[i / 64] |= mask;
    else
      words_[i / 64] &= ~mask;
  }

  void pushBack(bool v) {
    if (size_ % 64 == 0) words_.push_back(0);
    ++size_;
    set(size_ - 1, v);
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

private:
  void trimTail() {
    if (size_ % 64 != 0 && !words_.empty())
      words_.back() &= (1ull << (size_ % 64)) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Appends fixed-width little-endian bit fields to a BitVector.
class BitPacker {
public:
  /// Appends the low `width` bits of `value`. `value` must fit.
  void write(std::uint64_t value, unsigned width) {
    CGRA_ASSERT_MSG(width <= 64, "field width " << width);
    CGRA_ASSERT_MSG(width == 64 || value < (1ull << width),
                    "value " << value << " does not fit in " << width << " bits");
    for (unsigned i = 0; i < width; ++i) bits_.pushBack((value >> i) & 1u);
  }

  void writeBool(bool v) { bits_.pushBack(v); }

  const BitVector& bits() const { return bits_; }
  std::size_t sizeBits() const { return bits_.size(); }

private:
  BitVector bits_;
};

/// Reads fixed-width bit fields sequentially from a BitVector.
class BitReader {
public:
  explicit BitReader(const BitVector& bits) : bits_(&bits) {}

  std::uint64_t read(unsigned width) {
    CGRA_ASSERT(width <= 64);
    CGRA_ASSERT_MSG(pos_ + width <= bits_->size(), "bit stream exhausted");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < width; ++i)
      v |= static_cast<std::uint64_t>(bits_->get(pos_++)) << i;
    return v;
  }

  bool readBool() { return read(1) != 0; }
  bool exhausted() const { return pos_ == bits_->size(); }
  std::size_t position() const { return pos_; }

private:
  const BitVector* bits_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to encode values in [0, n-1]; at least 1.
inline unsigned bitsFor(std::size_t n) {
  unsigned w = 1;
  while ((1ull << w) < n) ++w;
  return w;
}

}  // namespace cgra
