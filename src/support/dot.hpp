// Tiny GraphViz DOT writer used for the paper's figure-style graph dumps
// (Fig. 11 CDFG, Fig. 12 control flow, Fig. 13/14 compositions).
#pragma once

#include <map>
#include <sstream>
#include <string>

namespace cgra {

/// Incremental builder for a directed GraphViz graph.
class DotWriter {
public:
  explicit DotWriter(std::string name) : name_(std::move(name)) {}

  void addNode(const std::string& id, const std::string& label,
               const std::map<std::string, std::string>& attrs = {}) {
    body_ << "  \"" << escape(id) << "\" [label=\"" << escape(label) << '"';
    for (const auto& [k, v] : attrs) body_ << ", " << k << "=\"" << escape(v) << '"';
    body_ << "];\n";
  }

  void addEdge(const std::string& from, const std::string& to,
               const std::map<std::string, std::string>& attrs = {}) {
    body_ << "  \"" << escape(from) << "\" -> \"" << escape(to) << '"';
    if (!attrs.empty()) {
      body_ << " [";
      bool first = true;
      for (const auto& [k, v] : attrs) {
        if (!first) body_ << ", ";
        first = false;
        body_ << k << "=\"" << escape(v) << '"';
      }
      body_ << ']';
    }
    body_ << ";\n";
  }

  void beginCluster(const std::string& id, const std::string& label) {
    body_ << "  subgraph \"cluster_" << escape(id) << "\" {\n"
          << "  label=\"" << escape(label) << "\";\n";
  }
  void endCluster() { body_ << "  }\n"; }

  std::string str() const {
    std::ostringstream os;
    os << "digraph \"" << escape(name_) << "\" {\n" << body_.str() << "}\n";
    return os.str();
  }

private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::ostringstream body_;
};

}  // namespace cgra
