// Capped per-cycle occupancy structures for schedule resources.
//
// The scheduler tracks one busy/free (or one-value-per-cycle) resource map
// per PE busy table, output port, C-Box write port, predication wire and
// branch unit. The seed used bare `std::vector` + resize-on-probe helpers,
// which had two failure modes: probing grows the vector without bound, and
// an unsigned downward scan that misses its 0 guard wraps to UINT_MAX and
// resizes toward 4G entries. These types make both impossible structurally:
// every structure carries a hard ceiling (the composition's context-memory
// length plus op-duration slack); probes beyond the ceiling report the
// resource as taken ("a slot that can never exist is never free"), and
// marking beyond the ceiling is a hard error.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/assert.hpp"

namespace cgra {

/// Bitset-backed busy map over schedule cycles with a hard capacity ceiling.
class CycleOccupancy {
public:
  CycleOccupancy() = default;
  explicit CycleOccupancy(unsigned capacity) : cap_(capacity) {}

  unsigned capacity() const { return cap_; }

  /// Busy state of one cycle; cycles at or beyond the ceiling are
  /// permanently "busy" so resource probes can never place work there.
  bool test(unsigned cycle) const {
    if (cycle >= cap_) return true;
    const std::size_t w = cycle / 64;
    if (w >= words_.size()) return false;
    return (words_[w] >> (cycle % 64)) & 1u;
  }

  /// True when any cycle of [from, from+dur) is busy or out of range.
  bool anyBusy(unsigned from, unsigned dur) const {
    if (dur == 0) return false;
    if (from >= cap_ || dur > cap_ - from) return true;
    for (unsigned c = from; c < from + dur; ++c) {
      const std::size_t w = c / 64;
      if (w >= words_.size()) return false;  // tail never marked yet
      if ((words_[w] >> (c % 64)) & 1u) return true;
    }
    return false;
  }

  void mark(unsigned from, unsigned dur = 1) {
    CGRA_ASSERT_MSG(from < cap_ && dur <= cap_ - from,
                    "occupancy mark [" << from << ", " << from + dur
                                       << ") beyond ceiling " << cap_);
    const std::size_t needWords = (static_cast<std::size_t>(from) + dur + 63) / 64;
    if (words_.size() < needWords) words_.resize(needWords, 0);
    for (unsigned c = from; c < from + dur; ++c)
      words_[c / 64] |= 1ull << (c % 64);
  }

  /// Reverts a prior mark of exactly [from, from+dur) — the undo arm of a
  /// transactional placement probe (see passes/run_state.hpp). The caller
  /// guarantees the range was marked by the probe being rolled back, which
  /// the mark() precondition made disjoint from all earlier marks.
  void clear(unsigned from, unsigned dur = 1) {
    CGRA_ASSERT_MSG(from < cap_ && dur <= cap_ - from,
                    "occupancy clear [" << from << ", " << from + dur
                                        << ") beyond ceiling " << cap_);
    for (unsigned c = from; c < from + dur; ++c) {
      const std::size_t w = c / 64;
      if (w < words_.size()) words_[w] &= ~(1ull << (c % 64));
    }
  }

  /// First free cycle at or after `from`; nullopt when every cycle up to the
  /// ceiling is taken. The scan is bounded by the ceiling — it cannot grow
  /// storage and cannot loop forever on a saturated resource.
  std::optional<unsigned> firstFreeAtOrAfter(unsigned from) const {
    for (unsigned c = from; c < cap_; ++c)
      if (!test(c)) return c;
    return std::nullopt;
  }

  /// Latest start u <= hi with [u, u+dur) entirely free, scanning downward
  /// and terminating at cycle 0 (never wrapping). nullopt when no window of
  /// `dur` cycles is free in [0, hi].
  std::optional<unsigned> lastFreeWindowAtOrBefore(unsigned hi,
                                                   unsigned dur) const {
    if (dur == 0 || cap_ == 0) return std::nullopt;
    for (unsigned u = hi + 1; u-- > 0;)
      if (!anyBusy(u, dur)) return u;
    return std::nullopt;
  }

private:
  unsigned cap_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Per-cycle single-value slots (output-port register, predication wire):
/// each cycle holds at most one T; a cycle is usable for value `v` when it
/// is empty or already carries `v`. Probes beyond the ceiling are never
/// usable; claims beyond the ceiling are hard errors. Storage growth is
/// bounded by the ceiling.
template <typename T>
class CycleSlots {
public:
  CycleSlots() = default;
  explicit CycleSlots(unsigned capacity) : cap_(capacity) {}

  unsigned capacity() const { return cap_; }

  /// Value held at `cycle`, or nullptr when the cycle is empty.
  const T* get(unsigned cycle) const {
    if (cycle >= slots_.size()) return nullptr;
    return slots_[cycle] ? &*slots_[cycle] : nullptr;
  }

  /// Usable for `v`: within the ceiling and empty or already equal to `v`.
  bool freeFor(unsigned cycle, const T& v) const {
    if (cycle >= cap_) return false;
    const T* cur = get(cycle);
    return cur == nullptr || *cur == v;
  }

  void claim(unsigned cycle, const T& v) {
    CGRA_ASSERT_MSG(cycle < cap_,
                    "slot claim at cycle " << cycle << " beyond ceiling "
                                           << cap_);
    if (slots_.size() <= cycle) slots_.resize(cycle + 1);
    slots_[cycle] = v;
  }

  /// Empties one cycle's slot — the undo arm of a transactional placement
  /// probe. Only cycles the probe itself claimed (previously empty, recorded
  /// in the probe journal) are released, so a shared claim made by an
  /// earlier committed probe is never dropped.
  void release(unsigned cycle) {
    if (cycle < slots_.size()) slots_[cycle].reset();
  }

private:
  unsigned cap_ = 0;
  std::vector<std::optional<T>> slots_;
};

}  // namespace cgra
