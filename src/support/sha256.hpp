// Self-contained SHA-256 (FIPS 180-4) for content-addressed cache keys.
//
// The artifact store names cached schedules by a cryptographic digest of
// their inputs (composition JSON, CDFG, scheduler options, version salt), so
// key stability across platforms and processes matters more than speed: the
// digest of a given byte stream must never depend on endianness, word size
// or library version. This implementation is pure C++17-and-later code over
// uint32 arithmetic — no OS or third-party dependency — and is exercised
// against the FIPS test vectors in test_support.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace cgra {

/// Incremental SHA-256 hasher: feed bytes with update(), read the digest
/// with digest()/hex(). A finalized hasher keeps returning the same digest;
/// update() after finalization is a programmer error (asserted).
class Sha256 {
public:
  Sha256() { reset(); }

  void reset() {
    state_ = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
              0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
    bufferLen_ = 0;
    totalBytes_ = 0;
    finalized_ = false;
  }

  Sha256& update(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    totalBytes_ += len;
    while (len > 0) {
      const std::size_t take =
          len < (64 - bufferLen_) ? len : (64 - bufferLen_);
      std::memcpy(buffer_.data() + bufferLen_, bytes, take);
      bufferLen_ += take;
      bytes += take;
      len -= take;
      if (bufferLen_ == 64) {
        compress(buffer_.data());
        bufferLen_ = 0;
      }
    }
    return *this;
  }

  Sha256& update(const std::string& s) { return update(s.data(), s.size()); }

  /// Convenience for hashing integral fields in a fixed (little-endian)
  /// byte order regardless of host endianness.
  Sha256& updateU64(std::uint64_t v) {
    unsigned char b[8];
    for (unsigned i = 0; i < 8; ++i)
      b[i] = static_cast<unsigned char>(v >> (8 * i));
    return update(b, 8);
  }

  /// The 32-byte digest. Finalizes on first call (idempotent after).
  std::array<std::uint8_t, 32> digest() {
    if (!finalized_) finalize();
    return digest_;
  }

  /// Lowercase hex form of the digest (64 chars).
  std::string hex() {
    static const char* kHex = "0123456789abcdef";
    const auto d = digest();
    std::string out(64, '0');
    for (std::size_t i = 0; i < 32; ++i) {
      out[2 * i] = kHex[d[i] >> 4];
      out[2 * i + 1] = kHex[d[i] & 0xf];
    }
    return out;
  }

  /// One-shot helper.
  static std::string hexOf(const std::string& data) {
    Sha256 h;
    h.update(data);
    return h.hex();
  }

private:
  static std::uint32_t rotr(std::uint32_t x, unsigned n) {
    return (x >> n) | (x << (32 - n));
  }

  void compress(const unsigned char* block) {
    static constexpr std::uint32_t k[64] = {
        0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
        0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
        0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
        0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
        0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
        0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
        0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
        0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
        0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
        0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
        0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
        0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
        0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};
    std::uint32_t w[64];
    for (unsigned i = 0; i < 16; ++i)
      w[i] = (std::uint32_t(block[4 * i]) << 24) |
             (std::uint32_t(block[4 * i + 1]) << 16) |
             (std::uint32_t(block[4 * i + 2]) << 8) |
             std::uint32_t(block[4 * i + 3]);
    for (unsigned i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (unsigned i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + k[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
  }

  void finalize() {
    const std::uint64_t bitLen = totalBytes_ * 8;
    // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length.
    unsigned char pad[72] = {0x80};
    const std::size_t padLen =
        (bufferLen_ < 56) ? (56 - bufferLen_) : (120 - bufferLen_);
    update(pad, padLen);
    unsigned char lenBytes[8];
    for (unsigned i = 0; i < 8; ++i)
      lenBytes[i] = static_cast<unsigned char>(bitLen >> (8 * (7 - i)));
    // update() counts these padding bytes into totalBytes_, but bitLen was
    // latched before padding, so the encoded length stays correct.
    update(lenBytes, 8);
    for (unsigned i = 0; i < 8; ++i) {
      digest_[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
      digest_[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
      digest_[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
      digest_[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    finalized_ = true;
  }

  std::array<std::uint32_t, 8> state_{};
  std::array<unsigned char, 64> buffer_{};
  std::size_t bufferLen_ = 0;
  std::uint64_t totalBytes_ = 0;
  std::array<std::uint8_t, 32> digest_{};
  bool finalized_ = false;
};

}  // namespace cgra
