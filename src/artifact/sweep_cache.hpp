// Cache-aware sweep: runSweep with a persistent ArtifactStore in front.
//
// The wrapper computes each job's content-addressed key (the same
// sched/job_key.hpp hash the in-sweep dedup uses), serves hits from the
// store without touching a scheduler, dispatches the misses to the regular
// parallel sweep engine, and publishes their results — successes and typed
// failures alike — back into the store. Results come back in job order, so
// a cached sweep is a drop-in replacement for runSweep: the `--stable`
// metrics JSON of a warm run is byte-identical to a cold one (artifacts
// store no wall times, and cache counters only appear in the volatile JSON
// section).
#pragma once

#include <vector>

#include "artifact/store.hpp"
#include "sched/sweep.hpp"

namespace cgra::artifact {

/// Runs `jobs` through `store`: hits are deserialized artifacts (their
/// fingerprint and staticUtilization recomputed from the stored schedule),
/// misses are scheduled by runSweep and inserted. Hit results carry
/// `fromCache = true` and, when tracing is enabled, a one-event CacheLookup
/// trace; `options.traceDir` files are written for scheduled jobs only.
/// `report.cacheEnabled/cacheHits/cacheMisses/cacheEvictions` are filled.
SweepReport runCachedSweep(const std::vector<SweepJob>& jobs,
                           const SweepOptions& options, ArtifactStore& store);

}  // namespace cgra::artifact
