#include "artifact/sweep_cache.hpp"

#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "arch/arch_model.hpp"
#include "sched/job_key.hpp"

namespace cgra::artifact {

namespace {

/// Strips the volatile (wall-time) fields so the artifact's content is a
/// pure function of the scheduling inputs.
SchedulerMetrics stripTimings(SchedulerMetrics m) {
  m.setupMs = m.planMs = m.finalizeMs = m.totalMs = 0.0;
  m.loopCloseMs = m.placementMs = 0.0;
  return m;
}

/// Rehydrates a SweepJobResult from a stored artifact. Fingerprint and
/// staticUtilization are recomputed from the deserialized schedule — not
/// copied — so a warm result is provably equivalent to a fresh one.
SweepJobResult resultFromArtifact(const SweepJob& job,
                                  const ScheduleArtifact& art,
                                  bool keepSchedule,
                                  const TraceOptions& trace) {
  SweepJobResult r;
  r.label = !job.label.empty() ? job.label : job.comp->name();
  r.cacheKey = art.key;
  r.fromCache = true;
  r.ok = art.ok;
  r.stats = art.stats;
  r.metrics = art.metrics;
  if (art.ok) {
    r.fingerprint = art.schedule.fingerprint();
    r.staticUtilization =
        computeScheduleQuality(art.schedule, *job.comp, &r.stats)
            .staticUtilization;
    if (keepSchedule) r.schedule = art.schedule;
  } else {
    r.failure = art.failure;
    r.error = r.failure.message;
  }
  if (trace.enabled) {
    Trace t(trace);
    CGRA_TRACE(&t, CacheLookup, .detail = "hit");
    r.trace = std::make_shared<const Trace>(std::move(t));
  }
  return r;
}

ScheduleArtifact artifactFromResult(const SweepJobResult& r) {
  ScheduleArtifact art;
  art.key = r.cacheKey;
  art.ok = r.ok;
  art.stats = r.stats;
  art.stats.wallTimeMs = 0.0;
  art.metrics = stripTimings(r.metrics);
  if (r.ok) {
    art.schedule = r.schedule;
    art.fingerprint = r.fingerprint;
  } else {
    art.failure = r.failure;
  }
  return art;
}

}  // namespace

SweepReport runCachedSweep(const std::vector<SweepJob>& jobs,
                           const SweepOptions& options, ArtifactStore& store) {
  const auto wallStart = std::chrono::steady_clock::now();
  const std::uint64_t evictionsBefore = store.counters().evictions;

  SweepReport report;
  report.results.resize(jobs.size());
  report.cacheEnabled = true;

  TraceOptions trace = options.trace;
  if (!options.traceDir.empty()) trace.enabled = true;

  // Key every job (composition digests are memoized on the ArchModel, so
  // probing also warms the models the miss sweep will reuse) and probe the
  // store. Hits rehydrate in place; misses queue for the inner sweep.
  const std::uint64_t buildsBefore = ArchModel::buildsPerformed();
  const auto keyStart = std::chrono::steady_clock::now();
  std::vector<SweepJob> missJobs;
  std::vector<std::size_t> missIndex;  ///< miss position → job index
  std::size_t duplicateHits = 0;
  {
    std::unordered_map<const Cdfg*, std::string> graphDigests;
    std::unordered_set<std::string> seenKeys;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].comp == nullptr || jobs[i].graph == nullptr) {
        missJobs.push_back(jobs[i]);  // uncacheable; runJob records failure
        missIndex.push_back(i);
        continue;
      }
      // Same per-graph digest memo as runSweep's dedup loop: hash each
      // distinct kernel graph once, not once per (comp × kernel) job.
      std::string& graphDigest = graphDigests[jobs[i].graph];
      if (graphDigest.empty()) graphDigest = cdfgDigest(*jobs[i].graph);
      const std::string key = scheduleJobKeyWithDigests(
          ArchModel::get(*jobs[i].comp)->digest(), graphDigest,
          jobs[i].options);
      const bool duplicate = !seenKeys.insert(key).second;
      if (const auto art = store.lookup(key)) {
        report.results[i] =
            resultFromArtifact(jobs[i], *art, options.keepSchedules, trace);
        ++report.cacheHits;
        // Keep dedupedJobs a pure function of the job list: a duplicate
        // served from the store on a warm run counts the same as one the
        // inner sweep deduped on the cold run — so the stable JSON of cold
        // and warm sweeps stays byte-identical.
        if (duplicate) ++duplicateHits;
      } else {
        // A duplicate of a missed key also misses here (the first
        // occurrence is not inserted until after the inner sweep) and is
        // counted by the inner sweep's own dedup.
        missJobs.push_back(jobs[i]);
        missIndex.push_back(i);
        ++report.cacheMisses;
      }
    }
  }
  const double keyMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - keyStart)
                           .count();

  // Schedule the misses on the regular engine. keepSchedules is forced on
  // so artifacts can be built; the caller's preference is applied after.
  SweepOptions inner = options;
  inner.keepSchedules = true;
  SweepReport missReport = runSweep(missJobs, inner);
  report.threadsUsed = missReport.threadsUsed;
  report.dedupedJobs = missReport.dedupedJobs + duplicateHits;

  // Like dedupedJobs, routingCacheEntries must not depend on cache warmth
  // (it lives in the stable JSON): report the distinct arch models of the
  // full job list — exactly what a cold runSweep counts — rather than the
  // inner sweep's miss-only tally. The volatile build counters cover the
  // whole cached sweep: keying above builds any model the memo was missing,
  // so the inner sweep's own tally alone would under-report.
  {
    std::unordered_set<const ArchModel*> models;
    for (const SweepJob& job : jobs)
      if (job.comp != nullptr) models.insert(ArchModel::get(*job.comp).get());
    report.routingCacheEntries = models.size();
  }
  report.archModelBuilds =
      static_cast<std::size_t>(ArchModel::buildsPerformed() - buildsBefore);
  report.archModelBuildMs = keyMs + missReport.archModelBuildMs;

  for (std::size_t m = 0; m < missIndex.size(); ++m) {
    SweepJobResult& r = missReport.results[m];
    // In-sweep duplicates share one artifact; empty keys are uncacheable
    // malformed jobs.
    if (!r.fromCache && !r.cacheKey.empty())
      store.insert(
          std::make_shared<const ScheduleArtifact>(artifactFromResult(r)));
    if (!options.keepSchedules) r.schedule = Schedule{};
    report.results[missIndex[m]] = std::move(r);
  }

  report.aggregate.runs = 0;
  double utilSum = 0.0;
  std::size_t okCount = 0;
  for (const SweepJobResult& r : report.results) {
    if (r.ok) {
      report.aggregate.merge(r.metrics);
      utilSum += r.staticUtilization;
      ++okCount;
    } else {
      ++report.failures;
      report.failuresByReason[static_cast<std::size_t>(r.failure.reason)]++;
    }
  }
  if (okCount > 0) report.meanStaticUtilization = utilSum / okCount;

  report.cacheEvictions = store.counters().evictions - evictionsBefore;
  report.wallTimeMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count();
  return report;
}

}  // namespace cgra::artifact
