#include "artifact/artifact.hpp"

#include <cstdint>

#include "ctx/serialize.hpp"

namespace cgra::artifact {

namespace {

// -- small field helpers ----------------------------------------------------

std::int64_t getInt(const json::Object& o, const char* key) {
  const json::Value* v = o.find(key);
  if (v == nullptr || !v->isInt())
    throw Error(std::string("artifact: missing/non-integer field '") + key +
                "'");
  return v->asInt();
}

unsigned getUnsigned(const json::Object& o, const char* key) {
  const std::int64_t v = getInt(o, key);
  if (v < 0 || v > 0xffffffffll)
    throw Error(std::string("artifact: field '") + key + "' out of range");
  return static_cast<unsigned>(v);
}

bool getBool(const json::Object& o, const char* key) {
  const json::Value* v = o.find(key);
  if (v == nullptr || !v->isBool())
    throw Error(std::string("artifact: missing/non-bool field '") + key +
                "'");
  return v->asBool();
}

const std::string& getString(const json::Object& o, const char* key) {
  const json::Value* v = o.find(key);
  if (v == nullptr || !v->isString())
    throw Error(std::string("artifact: missing/non-string field '") + key +
                "'");
  return v->asString();
}

const json::Array& getArray(const json::Object& o, const char* key) {
  const json::Value* v = o.find(key);
  if (v == nullptr || !v->isArray())
    throw Error(std::string("artifact: missing/non-array field '") + key +
                "'");
  return v->asArray();
}

// -- schedule pieces --------------------------------------------------------

json::Value operandSourceToJson(const OperandSource& s) {
  json::Object o;
  o["kind"] = static_cast<std::int64_t>(s.kind);
  o["srcPE"] = static_cast<std::int64_t>(s.srcPE);
  o["vreg"] = static_cast<std::int64_t>(s.vreg);
  o["imm"] = static_cast<std::int64_t>(s.imm);
  return o;
}

OperandSource operandSourceFromJson(const json::Value& v) {
  const json::Object& o = v.asObject();
  OperandSource s;
  const std::int64_t kind = getInt(o, "kind");
  if (kind < 0 || kind > static_cast<std::int64_t>(OperandSource::Kind::Imm))
    throw Error("artifact: operand source kind out of range");
  s.kind = static_cast<OperandSource::Kind>(kind);
  s.srcPE = static_cast<PEId>(getUnsigned(o, "srcPE"));
  s.vreg = getUnsigned(o, "vreg");
  const std::int64_t imm = getInt(o, "imm");
  if (imm < INT32_MIN || imm > INT32_MAX)
    throw Error("artifact: operand immediate out of range");
  s.imm = static_cast<std::int32_t>(imm);
  return s;
}

json::Value predToJson(const PredRef& p) {
  json::Object o;
  o["slot"] = static_cast<std::int64_t>(p.slot);
  o["polarity"] = p.polarity;
  return o;
}

PredRef predFromJson(const json::Value& v) {
  const json::Object& o = v.asObject();
  PredRef p;
  p.slot = getUnsigned(o, "slot");
  p.polarity = getBool(o, "polarity");
  return p;
}

json::Value bindingsToJson(const std::vector<LiveBinding>& bindings) {
  json::Array arr;
  for (const LiveBinding& b : bindings) {
    json::Object o;
    o["var"] = static_cast<std::int64_t>(b.var);
    o["pe"] = static_cast<std::int64_t>(b.pe);
    o["vreg"] = static_cast<std::int64_t>(b.vreg);
    arr.emplace_back(std::move(o));
  }
  return arr;
}

std::vector<LiveBinding> bindingsFromJson(const json::Array& arr) {
  std::vector<LiveBinding> out;
  out.reserve(arr.size());
  for (const json::Value& v : arr) {
    const json::Object& o = v.asObject();
    LiveBinding b;
    b.var = static_cast<VarId>(getUnsigned(o, "var"));
    b.pe = static_cast<PEId>(getUnsigned(o, "pe"));
    b.vreg = getUnsigned(o, "vreg");
    out.push_back(b);
  }
  return out;
}

}  // namespace

json::Value scheduleToJson(const Schedule& sched) {
  json::Object doc;
  doc["length"] = static_cast<std::int64_t>(sched.length);
  doc["cboxSlotsUsed"] = static_cast<std::int64_t>(sched.cboxSlotsUsed);

  json::Array ops;
  for (const ScheduledOp& op : sched.ops) {
    json::Object o;
    // kNoNode (the inserted-MOVE/CONST marker) is 0xffffffff; the raw
    // uint32 value round-trips through int64 unchanged.
    o["node"] = static_cast<std::int64_t>(op.node);
    o["op"] = static_cast<std::int64_t>(op.op);
    o["pe"] = static_cast<std::int64_t>(op.pe);
    o["start"] = static_cast<std::int64_t>(op.start);
    o["duration"] = static_cast<std::int64_t>(op.duration);
    json::Array src;
    for (const OperandSource& s : op.src)
      src.emplace_back(operandSourceToJson(s));
    o["src"] = std::move(src);
    o["writesDest"] = op.writesDest;
    o["destVreg"] = static_cast<std::int64_t>(op.destVreg);
    if (op.pred) o["pred"] = predToJson(*op.pred);
    o["emitsStatus"] = op.emitsStatus;
    o["label"] = op.label;
    ops.emplace_back(std::move(o));
  }
  doc["ops"] = std::move(ops);

  json::Array cbox;
  for (const CBoxOp& c : sched.cboxOps) {
    json::Object o;
    o["time"] = static_cast<std::int64_t>(c.time);
    json::Array inputs;
    for (const CBoxOp::Input& in : c.inputs) {
      json::Object i;
      i["kind"] = static_cast<std::int64_t>(in.kind);
      i["slot"] = static_cast<std::int64_t>(in.slot);
      i["polarity"] = in.polarity;
      inputs.emplace_back(std::move(i));
    }
    o["inputs"] = std::move(inputs);
    o["logic"] = static_cast<std::int64_t>(c.logic);
    o["writeSlot"] = static_cast<std::int64_t>(c.writeSlot);
    o["cond"] = static_cast<std::int64_t>(c.cond);
    cbox.emplace_back(std::move(o));
  }
  doc["cboxOps"] = std::move(cbox);

  json::Array branches;
  for (const BranchOp& b : sched.branches) {
    json::Object o;
    o["time"] = static_cast<std::int64_t>(b.time);
    o["target"] = static_cast<std::int64_t>(b.target);
    o["conditional"] = b.conditional;
    o["pred"] = predToJson(b.pred);
    o["loop"] = static_cast<std::int64_t>(b.loop);
    branches.emplace_back(std::move(o));
  }
  doc["branches"] = std::move(branches);

  json::Array loops;
  for (const LoopInterval& l : sched.loops) {
    json::Object o;
    o["loop"] = static_cast<std::int64_t>(l.loop);
    o["start"] = static_cast<std::int64_t>(l.start);
    o["end"] = static_cast<std::int64_t>(l.end);
    loops.emplace_back(std::move(o));
  }
  doc["loops"] = std::move(loops);

  doc["liveIns"] = bindingsToJson(sched.liveIns);
  doc["liveOuts"] = bindingsToJson(sched.liveOuts);
  doc["varHomes"] = bindingsToJson(sched.varHomes);
  json::Array vregs;
  for (unsigned v : sched.vregsPerPE)
    vregs.emplace_back(static_cast<std::int64_t>(v));
  doc["vregsPerPE"] = std::move(vregs);
  return doc;
}

Schedule scheduleFromJson(const json::Value& docValue) {
  if (!docValue.isObject()) throw Error("artifact: schedule is not an object");
  const json::Object& doc = docValue.asObject();
  Schedule sched;
  sched.length = getUnsigned(doc, "length");
  sched.cboxSlotsUsed = getUnsigned(doc, "cboxSlotsUsed");

  for (const json::Value& v : getArray(doc, "ops")) {
    const json::Object& o = v.asObject();
    ScheduledOp op;
    op.node = static_cast<NodeId>(getUnsigned(o, "node"));
    const std::int64_t opcode = getInt(o, "op");
    if (opcode < 0 || opcode >= static_cast<std::int64_t>(kNumOps))
      throw Error("artifact: opcode out of range");
    op.op = static_cast<Op>(opcode);
    op.pe = static_cast<PEId>(getUnsigned(o, "pe"));
    op.start = getUnsigned(o, "start");
    op.duration = getUnsigned(o, "duration");
    const json::Array& src = getArray(o, "src");
    if (src.size() != op.src.size())
      throw Error("artifact: op must carry exactly 3 operand sources");
    for (std::size_t i = 0; i < src.size(); ++i)
      op.src[i] = operandSourceFromJson(src[i]);
    op.writesDest = getBool(o, "writesDest");
    op.destVreg = getUnsigned(o, "destVreg");
    if (const json::Value* pred = o.find("pred"); pred != nullptr)
      op.pred = predFromJson(*pred);
    op.emitsStatus = getBool(o, "emitsStatus");
    op.label = getString(o, "label");
    sched.ops.push_back(std::move(op));
  }

  for (const json::Value& v : getArray(doc, "cboxOps")) {
    const json::Object& o = v.asObject();
    CBoxOp c;
    c.time = getUnsigned(o, "time");
    for (const json::Value& iv : getArray(o, "inputs")) {
      const json::Object& io = iv.asObject();
      CBoxOp::Input in;
      const std::int64_t kind = getInt(io, "kind");
      if (kind < 0 ||
          kind > static_cast<std::int64_t>(CBoxOp::Input::Kind::Stored))
        throw Error("artifact: C-Box input kind out of range");
      in.kind = static_cast<CBoxOp::Input::Kind>(kind);
      in.slot = getUnsigned(io, "slot");
      in.polarity = getBool(io, "polarity");
      c.inputs.push_back(in);
    }
    const std::int64_t logic = getInt(o, "logic");
    if (logic < 0 || logic > static_cast<std::int64_t>(CBoxOp::Logic::Or))
      throw Error("artifact: C-Box logic out of range");
    c.logic = static_cast<CBoxOp::Logic>(logic);
    c.writeSlot = getUnsigned(o, "writeSlot");
    c.cond = static_cast<CondId>(getUnsigned(o, "cond"));
    sched.cboxOps.push_back(std::move(c));
  }

  for (const json::Value& v : getArray(doc, "branches")) {
    const json::Object& o = v.asObject();
    BranchOp b;
    b.time = getUnsigned(o, "time");
    b.target = getUnsigned(o, "target");
    b.conditional = getBool(o, "conditional");
    const json::Value* pred = o.find("pred");
    if (pred == nullptr) throw Error("artifact: branch missing pred");
    b.pred = predFromJson(*pred);
    b.loop = static_cast<LoopId>(getUnsigned(o, "loop"));
    sched.branches.push_back(b);
  }

  for (const json::Value& v : getArray(doc, "loops")) {
    const json::Object& o = v.asObject();
    LoopInterval l;
    l.loop = static_cast<LoopId>(getUnsigned(o, "loop"));
    l.start = getUnsigned(o, "start");
    l.end = getUnsigned(o, "end");
    sched.loops.push_back(l);
  }

  sched.liveIns = bindingsFromJson(getArray(doc, "liveIns"));
  sched.liveOuts = bindingsFromJson(getArray(doc, "liveOuts"));
  sched.varHomes = bindingsFromJson(getArray(doc, "varHomes"));
  for (const json::Value& v : getArray(doc, "vregsPerPE")) {
    if (!v.isInt() || v.asInt() < 0)
      throw Error("artifact: vregsPerPE entry out of range");
    sched.vregsPerPE.push_back(static_cast<unsigned>(v.asInt()));
  }
  return sched;
}

namespace {

json::Value statsToJson(const ScheduleStats& s) {
  json::Object o;
  o["contextsUsed"] = static_cast<std::int64_t>(s.contextsUsed);
  o["cboxSlotsUsed"] = static_cast<std::int64_t>(s.cboxSlotsUsed);
  o["copiesInserted"] = static_cast<std::int64_t>(s.copiesInserted);
  o["constsInserted"] = static_cast<std::int64_t>(s.constsInserted);
  o["fusedWrites"] = static_cast<std::int64_t>(s.fusedWrites);
  // wallTimeMs is volatile by definition and intentionally not persisted.
  return o;
}

ScheduleStats statsFromJson(const json::Value& v) {
  const json::Object& o = v.asObject();
  ScheduleStats s;
  s.contextsUsed = getUnsigned(o, "contextsUsed");
  s.cboxSlotsUsed = getUnsigned(o, "cboxSlotsUsed");
  s.copiesInserted = getUnsigned(o, "copiesInserted");
  s.constsInserted = getUnsigned(o, "constsInserted");
  s.fusedWrites = getUnsigned(o, "fusedWrites");
  return s;
}

SchedulerMetrics metricsFromJson(const json::Value& v) {
  const json::Object& o = v.asObject();
  SchedulerMetrics m;
  auto u64 = [&o](const char* key) {
    return static_cast<std::uint64_t>(getInt(o, key));
  };
  m.nodesScheduled = u64("nodesScheduled");
  m.copiesInserted = u64("copiesInserted");
  m.constsInserted = u64("constsInserted");
  m.fusedWrites = u64("fusedWrites");
  m.cboxOps = u64("cboxOps");
  m.branches = u64("branches");
  m.steps = u64("steps");
  m.candidateIterations = u64("candidateIterations");
  m.placementAttempts = u64("placementAttempts");
  m.probeRejections = u64("probeRejections");
  m.runs = u64("runs");
  return m;
}

}  // namespace

json::Value ScheduleArtifact::toJson() const {
  json::Object doc;
  doc["format"] = kArtifactFormat;
  doc["key"] = key;
  doc["ok"] = ok;
  if (ok) {
    doc["schedule"] = scheduleToJson(schedule);
    doc["fingerprint"] = std::to_string(fingerprint);  // 64-bit safe
  } else {
    json::Object f;
    f["reason"] = failureReasonName(failure.reason);
    f["message"] = failure.message;
    f["node"] = static_cast<std::int64_t>(failure.node);
    doc["failure"] = std::move(f);
  }
  doc["stats"] = statsToJson(stats);
  doc["metrics"] = metrics.toJson(/*includeTimings=*/false);
  if (contexts) doc["contexts"] = contextImagesToJson(*contexts);
  return json::sortKeys(json::Value(std::move(doc)));
}

ScheduleArtifact ScheduleArtifact::fromJson(const json::Value& docValue) {
  if (!docValue.isObject()) throw Error("artifact: document is not an object");
  const json::Object& doc = docValue.asObject();
  if (getString(doc, "format") != kArtifactFormat)
    throw Error("artifact: unknown format tag '" + getString(doc, "format") +
                "'");
  ScheduleArtifact a;
  a.key = getString(doc, "key");
  a.ok = getBool(doc, "ok");
  const json::Value* stats = doc.find("stats");
  if (stats == nullptr) throw Error("artifact: missing stats");
  a.stats = statsFromJson(*stats);
  const json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr) throw Error("artifact: missing metrics");
  a.metrics = metricsFromJson(*metrics);
  if (a.ok) {
    const json::Value* sched = doc.find("schedule");
    if (sched == nullptr) throw Error("artifact: missing schedule");
    a.schedule = scheduleFromJson(*sched);
    const std::string& fp = getString(doc, "fingerprint");
    a.fingerprint = std::stoull(fp);
    if (a.schedule.fingerprint() != a.fingerprint)
      throw Error("artifact: fingerprint mismatch (corrupt or tampered "
                  "schedule payload)");
  } else {
    const json::Value* failure = doc.find("failure");
    if (failure == nullptr) throw Error("artifact: missing failure");
    const json::Object& f = failure->asObject();
    const std::string& reason = getString(f, "reason");
    a.failure.reason = FailureReason::Internal;
    for (std::size_t i = 0; i < kNumFailureReasons; ++i)
      if (reason == failureReasonName(static_cast<FailureReason>(i)))
        a.failure.reason = static_cast<FailureReason>(i);
    a.failure.message = getString(f, "message");
    a.failure.node = static_cast<NodeId>(getUnsigned(f, "node"));
  }
  if (const json::Value* ctx = doc.find("contexts"); ctx != nullptr)
    a.contexts = contextImagesFromJson(*ctx);
  return a;
}

ScheduleArtifact ScheduleArtifact::fromReport(std::string key,
                                              const ScheduleReport& report) {
  ScheduleArtifact a;
  a.key = std::move(key);
  a.ok = report.ok;
  a.stats = report.stats;
  a.stats.wallTimeMs = 0.0;
  a.metrics = report.metrics;
  a.metrics.setupMs = a.metrics.planMs = a.metrics.finalizeMs =
      a.metrics.totalMs = a.metrics.loopCloseMs = a.metrics.placementMs = 0.0;
  if (report.ok) {
    a.schedule = report.schedule;
    a.fingerprint = report.schedule.fingerprint();
  } else {
    a.failure = report.failure;
  }
  return a;
}

}  // namespace cgra::artifact
