// Batch compile service: JSONL schedule requests in, artifact responses out
// (`cgra-tool serve`, DESIGN.md §10).
//
// A driver (design-space explorer, CI harness, another process on the same
// box) streams one JSON request per line:
//
//   {"id": 7, "comp": "mesh9", "kernel": "adpcm", "unroll": 2,
//    "maxContexts": 16, "artifact": true}
//
// and receives one JSON response per line, in request order:
//
//   {"id": 7, "ok": true, "key": "3fb2...", "cached": false,
//    "contexts": 14, "fingerprint": "1234...", ...}
//
// The service fronts an ArtifactStore: hits answer without scheduling,
// misses are dispatched to a worker pool, and concurrent requests for one
// cache key are deduplicated — the first occurrence schedules, the rest
// wait on its completion and answer from the shared result. A bounded
// in-flight window applies backpressure: when `maxInFlight` requests are
// pending, reading stops until the oldest completes and its response has
// been written.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "artifact/store.hpp"
#include "json/json.hpp"

namespace cgra::artifact {

struct ServiceOptions {
  /// Worker threads for cache misses; 0 selects hardware concurrency.
  unsigned threads = 0;
  /// Maximum requests in flight (parsed but not yet answered). Reading
  /// stalls — never drops — past this bound.
  std::size_t maxInFlight = 64;
  /// Attach the full artifact document to every successful response
  /// (per-request `"artifact": true` overrides this default).
  bool includeArtifact = false;
};

/// Traffic counters for one serve session, reported on shutdown.
struct ServiceStats {
  std::uint64_t requests = 0;     ///< lines read
  std::uint64_t parseErrors = 0;  ///< malformed lines (answered with ok=false)
  std::uint64_t scheduled = 0;    ///< jobs actually run on the scheduler
  std::uint64_t cacheHits = 0;    ///< answered straight from the store
  std::uint64_t deduped = 0;      ///< waited on an identical in-flight job

  json::Value toJson() const;
};

/// Serves JSONL requests from `in` until EOF, streaming responses to `out`
/// in request order. Thread-safe with respect to `store` (which other
/// threads/processes may share).
ServiceStats serveJsonl(std::istream& in, std::ostream& out,
                        ArtifactStore& store, const ServiceOptions& options);

/// Binds a unix domain socket at `path` (unlinking any stale socket file)
/// and serves one connection at a time, each as a JSONL session. Runs until
/// `maxConnections` sessions finished (0 = forever). Throws cgra::Error on
/// socket errors.
ServiceStats serveUnixSocket(const std::string& path, ArtifactStore& store,
                             const ServiceOptions& options,
                             std::uint64_t maxConnections = 0);

}  // namespace cgra::artifact
